// Command hamsrecover demonstrates the HAMS persistency control end to
// end (Figure 15): it writes records into the MoS space, forces
// evictions so NVMe writes are in flight, cuts the power mid-DMA,
// recovers by replaying the journal-tagged submission-queue entries out
// of the persisted NVDIMM image, and verifies every record.
//
// Usage:
//
//	hamsrecover [-records 64] [-skip-recovery]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hams"
)

func main() {
	records := flag.Int("records", 64, "number of records to write before the power failure")
	skip := flag.Bool("skip-recovery", false, "skip the journal replay to show what would be lost")
	flag.Parse()
	os.Exit(run(*records, *skip, os.Stdout, os.Stderr))
}

// run is the demo body with injectable streams (smoke-tested; main
// only parses flags). It returns the process exit code: 0 when every
// record survives the power cycle, 1 on failure or data loss.
func run(records int, skip bool, stdout, stderr io.Writer) int {
	cfg := hams.DefaultConfig(hams.Extend, hams.Tight)
	// A small instance keeps the demo fast while still forcing
	// evictions: 32 MiB NVDIMM, 64 KiB pages.
	cfg.NVDIMM.DRAM.Capacity = 32 * hams.MiB
	cfg.PinnedBytes = 8 * hams.MiB
	cfg.PageBytes = 64 * hams.KiB
	cfg.SSD.Geometry.BlocksPerPln = 256
	m, err := hams.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "hamsrecover:", err)
		return 1
	}
	fmt.Fprintf(stdout, "MoS space: %.1f GB over a %d-entry NVDIMM cache\n",
		float64(m.Capacity())/float64(hams.GiB), (cfg.NVDIMM.DRAM.Capacity-cfg.PinnedBytes)/cfg.PageBytes)

	record := func(i int) (uint64, []byte) {
		addr := uint64(i) * 3 * cfg.PageBytes * 8 // spread across entries
		return addr % (m.Capacity() - 64), []byte(fmt.Sprintf("record-%04d", i))
	}

	for i := 0; i < records; i++ {
		addr, data := record(i)
		if _, err := m.Write(addr, data); err != nil {
			fmt.Fprintln(stderr, "write:", err)
			return 1
		}
	}
	fmt.Fprintf(stdout, "wrote %d records; controller stats: %d misses, %d evictions\n",
		records, m.Stats().Misses, m.Stats().Evictions)

	rep := m.PowerFail()
	fmt.Fprintf(stdout, "POWER FAILURE at t=%v: %d NVMe command(s) in flight, %d torn write(s), NVDIMM backup took %v\n",
		m.Now(), rep.InFlight, rep.TornWrites, rep.BackupTime)

	if skip {
		fmt.Fprintln(stdout, "skipping recovery (-skip-recovery)")
	} else {
		rec, err := m.Recover()
		if err != nil {
			fmt.Fprintln(stderr, "recover:", err)
			return 1
		}
		fmt.Fprintf(stdout, "RECOVERY: restore %v, %d journal-tagged command(s) found, %d replayed\n",
			rec.RestoreTime, rec.Pending, rec.Replayed)
	}

	bad := 0
	for i := 0; i < records; i++ {
		addr, want := record(i)
		got := make([]byte, len(want))
		m.Peek(addr, got)
		if string(got) != string(want) {
			bad++
		}
	}
	if bad == 0 {
		fmt.Fprintf(stdout, "verified: all %d records intact after the power cycle\n", records)
		return 0
	}
	fmt.Fprintf(stdout, "DATA LOSS: %d of %d records corrupted or missing\n", bad, records)
	return 1
}
