package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRecoveryDemoSmoke drives the demo end to end: write, power
// failure with in-flight NVMe traffic, journal replay, verification.
// Exit 0 and the "verified" line mean every record survived.
func TestRecoveryDemoSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(32, false, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	s := out.String()
	for _, want := range []string{"POWER FAILURE", "RECOVERY", "verified: all 32 records intact"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if errb.Len() != 0 {
		t.Fatalf("unexpected stderr: %s", errb.String())
	}
}

// TestRecoveryDemoSkipRecovery: skipping the journal replay after a
// mid-DMA power cut is expected to surface as either data loss (exit
// 1) or — when no eviction happened to be in flight at the cut — a
// clean verify; the demo must report one of the two, not crash.
func TestRecoveryDemoSkipRecovery(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(32, true, &out, &errb)
	s := out.String()
	if !strings.Contains(s, "skipping recovery") {
		t.Fatalf("skip path not taken:\n%s", s)
	}
	loss := strings.Contains(s, "DATA LOSS")
	if loss != (code == 1) {
		t.Fatalf("exit %d inconsistent with output:\n%s", code, s)
	}
}
