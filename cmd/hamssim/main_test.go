package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFlagValidation: malformed input must exit 2 before any
// simulation runs — the error text names the offending flag.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"no args", nil, "usage"},
		{"one arg", []string{"hams-LE"}, "usage"},
		{"three args", []string{"hams-LE", "seqRd", "extra"}, "usage"},
		{"bad policy", []string{"-policy", "mru", "hams-LE", "seqRd"}, "replacement policy"},
		{"negative mshrs", []string{"-mshrs", "-2", "hams-LE", "seqRd"}, "-mshrs"},
		{"negative qd", []string{"-qd", "-1", "hams-LE", "seqRd"}, "-qd"},
		{"bad qos mask", []string{"-qos-mask", "zz", "hams-LE", "seqRd"}, "-qos-mask"},
		{"negative mbps", []string{"-qos-mbps", "-4", "hams-LE", "seqRd"}, "-qos-mbps"},
		{"unparseable flag", []string{"-scale", "x", "hams-LE", "seqRd"}, "invalid"},
		{"bad qos policy syntax", []string{"-qos-policy", "zz", "hams-LE", "seqRd"}, "-qos-policy"},
		{"qos policy at t=0", []string{"-qos-policy", "0s:workload:0x3:100", "hams-LE", "seqRd"}, "t=0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := realMain(tc.args, &out, &errb)
			if code != 2 {
				t.Fatalf("exit %d, want 2\nstderr: %s", code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Fatalf("stderr missing %q:\n%s", tc.want, errb.String())
			}
			if out.Len() != 0 {
				t.Fatalf("validation failure wrote to stdout: %s", out.String())
			}
		})
	}
}

// TestUnknownPlatformExit2: an unknown platform name is caught by the
// shared JobSpec validator before anything runs (exit 2) — the same
// field error hamsd returns as HTTP 400, named after the positional.
func TestUnknownPlatformExit2(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-scale", "1e-9", "no-such-platform", "seqRd"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2\nstderr: %s", code, errb.String())
	}
	if s := errb.String(); !strings.Contains(s, "platform") || !strings.Contains(s, "no-such-platform") {
		t.Fatalf("diagnostic does not name the platform: %s", s)
	}
}

// TestSmoke runs a tiny simulation end to end and checks the report.
func TestSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := realMain([]string{"-scale", "1e-8", "-mshrs", "4", "hams-LE", "seqRd"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"platform     hams-LE", "workload     seqRd", "instructions", "energy (J)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	if errb.Len() != 0 {
		t.Fatalf("unexpected stderr: %s", errb.String())
	}
}
