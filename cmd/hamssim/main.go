// Command hamssim runs one workload on one platform and dumps the full
// statistics: throughput, IPC, latency decomposition, cache behaviour
// and the energy breakdown.
//
// Usage:
//
//	hamssim [-scale 3e-6] [-seed 42] [-page 131072] [-ways 1] [-banks 1]
//	        [-policy lru|clock|random] [-mshrs 1] [-qd 0]
//	        [-qos-mask 0xf] [-qos-mbps N]
//	        [-qos-policy at:class:mask:mbps,...] <platform> <workload>
//
// Platforms: mmap optane-P optane-M flatflash-P flatflash-M nvdimm-C
// hams-LP hams-LE hams-TP hams-TE oracle ull-direct ull-buff
// Workloads: seqRd rndRd seqWr rndWr seqSel rndSel seqIns rndIns
// update BFS KMN NN
//
// -mshrs sizes each HAMS bank's miss-status-register file (>= 2
// enables the non-blocking miss pipeline: deferred writebacks, miss
// coalescing, hit-under-miss) and -qd caps the outstanding NVMe
// commands per bank queue pair (0 = unbounded).
// -qos-mask confines the workload's MoS-cache installs to the given
// ways (a CAT capacity mask over -ways; hex or 0b binary) and
// -qos-mbps caps its archive bandwidth (MBA throttle) — the whole
// workload runs as one class of service, so the flags bound how much
// of the cache and archive this workload could take from a neighbor.
// -qos-policy schedules runtime reprogrammings of that class on the
// simulated clock: comma-separated at:class:mask:mbps entries (e.g.
// "2ms:workload:0x3:100,4ms:workload:full:0"), each strictly after
// t=0 and nondecreasing. Mask changes take effect at the next victim
// selection; throttle changes keep accrued debt.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hams/internal/api"
	"hams/internal/cpu"
	"hams/internal/experiments"
	"hams/internal/qos"
)

// simFlags maps JobSpec field names to this CLI's flag spellings for
// validation-error rendering (see api.RenderFlagErrors).
var simFlags = map[string]string{
	"platform":    "platform", // positional
	"workload":    "workload", // positional
	"page_bytes":  "-page",
	"queue_depth": "-qd",
	"qos_masks":   "-qos-mask",
	"qos_mbps":    "-qos-mbps",
	"qos_policy":  "-qos-policy",
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable args and streams (testable; exit
// codes: 0 ok, 1 runtime failure, 2 usage/validation error). All
// input validation happens before anything runs.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hamssim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 3e-6, "instruction-count scale vs Table III")
	seed := fs.Int64("seed", 42, "workload random seed")
	page := fs.Uint64("page", 0, "HAMS MoS page bytes (0 = 128 KiB default)")
	ways := fs.Int("ways", 0, "HAMS tag-array associativity (0 = direct-mapped)")
	banks := fs.Int("banks", 0, "HAMS controller banks (0 = single bank)")
	policy := fs.String("policy", "lru", "HAMS replacement policy: lru|clock|random")
	mshrs := fs.Int("mshrs", 0, "HAMS per-bank MSHR depth (0/1 = blocking pipeline, >= 2 = non-blocking)")
	qd := fs.Int("qd", 0, "HAMS per-bank NVMe queue-depth cap (0 = unbounded)")
	qosMask := fs.String("qos-mask", "", "confine MoS installs to these ways (CAT mask, e.g. 0x3; empty = all ways)")
	qosMBps := fs.Float64("qos-mbps", 0, "cap archive bandwidth in MB/s (MBA throttle; 0 = unthrottled)")
	qosPolicy := fs.String("qos-policy", "", "schedule runtime class reprogrammings: at:class:mask:mbps[,...] (e.g. 2ms:workload:0x3:100)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: hamssim [flags] <platform> <workload>")
		return 2
	}
	// Assemble the flags into the same JobSpec a POST /v1/jobs body
	// decodes to; one validator covers both roads.
	spec := api.JobSpec{
		Kind: api.KindRun, Platform: fs.Arg(0), Workload: fs.Arg(1),
		Scale: *scale, Seed: *seed,
		PageBytes: *page, Ways: *ways, Banks: *banks, Policy: *policy,
		MSHRs: *mshrs, QueueDepth: *qd,
	}
	if *qosMask != "" {
		spec.QoSMasks = map[string]string{"workload": *qosMask}
	}
	if *qosMBps != 0 {
		spec.QoSMBps = map[string]float64{"workload": *qosMBps}
	}
	if *qosPolicy != "" {
		entries, err := qos.ParseSchedule(*qosPolicy)
		if err != nil {
			fmt.Fprintf(stderr, "hamssim: -qos-policy: %v\n", err)
			return 2
		}
		for _, e := range entries {
			spec.QoSPolicy = append(spec.QoSPolicy, api.PolicyChangeSpec{
				AtNS: int64(e.At), Class: e.Class, WayMask: qos.FormatMask(e.Mask), MBps: e.MBps,
			})
		}
	}
	if err := api.Validate(spec); err != nil {
		api.RenderFlagErrors(stderr, "hamssim", err, simFlags)
		return 2
	}
	popt, err := spec.PlatformOptions()
	if err != nil {
		api.RenderFlagErrors(stderr, "hamssim", err, simFlags)
		return 2
	}
	o, err := spec.ExperimentOptions()
	if err != nil {
		api.RenderFlagErrors(stderr, "hamssim", err, simFlags)
		return 2
	}
	r, err := experiments.RunOne(o, spec.Platform, spec.Workload, popt)
	if err != nil {
		fmt.Fprintf(stderr, "hamssim: %v\n", err)
		return 1
	}
	st := r.CPU
	fmt.Fprintf(stdout, "platform     %s\nworkload     %s\n", r.Platform, r.Workload)
	fmt.Fprintf(stdout, "instructions %d\n", st.Instructions)
	fmt.Fprintf(stdout, "elapsed      %v\n", st.Elapsed)
	fmt.Fprintf(stdout, "IPC          %.4f\n", st.IPC(cpu.DefaultConfig()))
	fmt.Fprintf(stdout, "MIPS         %.1f\n", st.MIPS())
	fmt.Fprintf(stdout, "work units   %d (%.0f/s)\n", r.Units, r.UnitsPerSec())
	fmt.Fprintf(stdout, "mem accesses %d (L1 %.1f%%, L2 %.1f%% hit)\n", st.MemAccesses,
		pct(st.L1Hits, st.L1Hits+st.L1Misses), pct(st.L2Hits, st.L2Hits+st.L2Misses))
	fmt.Fprintf(stdout, "mem stall    %v (%v overlapped across cores)\n", st.MemStall, st.OverlapStall)
	fmt.Fprintf(stdout, "breakdown    OS=%v mem=%v DMA=%v SSD=%v\n", st.OSTime, st.MemTime, st.DMATime, st.SSDTime)
	e := r.Energy
	fmt.Fprintf(stdout, "energy (J)   CPU=%.3f NVDIMM=%.3f intDRAM=%.3f ZNAND=%.3f total=%.3f\n",
		e.CPU, e.NVDIMM, e.InternalDRAM, e.ZNAND, e.Total())
	return 0
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}
