// Command hamssim runs one workload on one platform and dumps the full
// statistics: throughput, IPC, latency decomposition, cache behaviour
// and the energy breakdown.
//
// Usage:
//
//	hamssim [-scale 3e-6] [-seed 42] [-page 131072] [-ways 1] [-banks 1]
//	        [-policy lru|clock|random] [-qos-mask 0xf] [-qos-mbps N]
//	        <platform> <workload>
//
// Platforms: mmap optane-P optane-M flatflash-P flatflash-M nvdimm-C
// hams-LP hams-LE hams-TP hams-TE oracle ull-direct ull-buff
// Workloads: seqRd rndRd seqWr rndWr seqSel rndSel seqIns rndIns
// update BFS KMN NN
//
// -qos-mask confines the workload's MoS-cache installs to the given
// ways (a CAT capacity mask over -ways; hex or 0b binary) and
// -qos-mbps caps its archive bandwidth (MBA throttle) — the whole
// workload runs as one class of service, so the flags bound how much
// of the cache and archive this workload could take from a neighbor.
package main

import (
	"flag"
	"fmt"
	"os"

	"hams/internal/core/tagstore"
	"hams/internal/cpu"
	"hams/internal/experiments"
	"hams/internal/platform"
	"hams/internal/qos"
)

func main() {
	scale := flag.Float64("scale", 3e-6, "instruction-count scale vs Table III")
	seed := flag.Int64("seed", 42, "workload random seed")
	page := flag.Uint64("page", 0, "HAMS MoS page bytes (0 = 128 KiB default)")
	ways := flag.Int("ways", 0, "HAMS tag-array associativity (0 = direct-mapped)")
	banks := flag.Int("banks", 0, "HAMS controller banks (0 = single bank)")
	policy := flag.String("policy", "lru", "HAMS replacement policy: lru|clock|random")
	qosMask := flag.String("qos-mask", "", "confine MoS installs to these ways (CAT mask, e.g. 0x3; empty = all ways)")
	qosMBps := flag.Float64("qos-mbps", 0, "cap archive bandwidth in MB/s (MBA throttle; 0 = unthrottled)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: hamssim [flags] <platform> <workload>")
		os.Exit(2)
	}
	pol, err := tagstore.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hamssim: %v\n", err)
		os.Exit(2)
	}
	mask, err := qos.ParseMask(*qosMask)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hamssim: -qos-mask: %v\n", err)
		os.Exit(2)
	}
	if *qosMBps < 0 {
		fmt.Fprintf(os.Stderr, "hamssim: -qos-mbps: want a non-negative MB/s value, got %g\n", *qosMBps)
		os.Exit(2)
	}
	platName, wlName := flag.Arg(0), flag.Arg(1)
	o := experiments.Options{Scale: *scale, Seed: *seed}
	popt := platform.Options{HAMSPage: *page, HAMSWays: *ways, HAMSBanks: *banks, HAMSPolicy: pol}
	if mask != 0 || *qosMBps > 0 {
		// The whole workload runs as one CLOS with the given budget.
		popt.HAMSQoS = &qos.Table{Classes: []qos.Class{
			{Name: "workload", WayMask: mask, MBps: *qosMBps},
		}}
	}
	r, err := experiments.Run(platName, wlName, o, popt, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hamssim: %v\n", err)
		os.Exit(1)
	}
	st := r.CPU
	fmt.Printf("platform     %s\nworkload     %s\n", r.Platform, r.Workload)
	fmt.Printf("instructions %d\n", st.Instructions)
	fmt.Printf("elapsed      %v\n", st.Elapsed)
	fmt.Printf("IPC          %.4f\n", st.IPC(cpu.DefaultConfig()))
	fmt.Printf("MIPS         %.1f\n", st.MIPS())
	fmt.Printf("work units   %d (%.0f/s)\n", r.Units, r.UnitsPerSec())
	fmt.Printf("mem accesses %d (L1 %.1f%%, L2 %.1f%% hit)\n", st.MemAccesses,
		pct(st.L1Hits, st.L1Hits+st.L1Misses), pct(st.L2Hits, st.L2Hits+st.L2Misses))
	fmt.Printf("mem stall    %v\n", st.MemStall)
	fmt.Printf("breakdown    OS=%v mem=%v DMA=%v SSD=%v\n", st.OSTime, st.MemTime, st.DMATime, st.SSDTime)
	e := r.Energy
	fmt.Printf("energy (J)   CPU=%.3f NVDIMM=%.3f intDRAM=%.3f ZNAND=%.3f total=%.3f\n",
		e.CPU, e.NVDIMM, e.InternalDRAM, e.ZNAND, e.Total())
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}
