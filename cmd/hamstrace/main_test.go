package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestUsageAndValidation: malformed input exits 2 before anything
// records or replays.
func TestUsageAndValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no args", nil},
		{"unknown subcommand", []string{"frobnicate"}},
		{"record no args", []string{"record"}},
		{"record one arg", []string{"record", "seqRd"}},
		{"record bad threads", []string{"record", "-threads", "x", "seqRd", "out.trace"}},
		{"replay no file", []string{"replay"}},
		{"replay negative mshrs", []string{"replay", "-mshrs", "-3", "f.trace"}},
		{"replay bad qos policy", []string{"replay", "-qos-policy", "zz", "f.trace"}},
		{"replay qos policy at t=0", []string{"replay", "-qos-policy", "0s:trace:0x3:100", "f.trace"}},
		{"info no file", []string{"info"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != 2 {
				t.Fatalf("exit %d, want 2\nstderr: %s", code, errb.String())
			}
		})
	}
}

// TestRecordUnknownWorkload: the workload name is validated before
// the output file is created — a typo must not truncate anything.
func TestRecordUnknownWorkload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.trace")
	var out, errb bytes.Buffer
	if code := run([]string{"record", "no-such-workload", path}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2\nstderr: %s", code, errb.String())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("output file was created before workload validation (stat err: %v)", err)
	}
	if strings.Contains(errb.String(), "usage") {
		t.Fatalf("unknown workload reported as usage error:\n%s", errb.String())
	}
}

// TestRecordInfoReplayRoundTrip drives the three subcommands end to
// end on a tiny trace, including a non-blocking (-mshrs 4) replay.
func TestRecordInfoReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seqrd.trace")
	var out, errb bytes.Buffer
	if code := run([]string{"record", "-scale", "1e-8", "seqRd", path}, &out, &errb); code != 0 {
		t.Fatalf("record exit %d\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "recorded") {
		t.Fatalf("record output: %s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"info", path}, &out, &errb); code != 0 {
		t.Fatalf("info exit %d\nstderr: %s", code, errb.String())
	}
	for _, want := range []string{"version      2", "threads      1", "accesses"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("info output missing %q:\n%s", want, out.String())
		}
	}

	for _, mshrs := range []string{"0", "4"} {
		out.Reset()
		errb.Reset()
		if code := run([]string{"replay", "-mshrs", mshrs, path}, &out, &errb); code != 0 {
			t.Fatalf("replay -mshrs %s exit %d\nstderr: %s", mshrs, code, errb.String())
		}
		for _, want := range []string{"platform     hams-LE", "Per-tenant latency breakdown", "seqRd"} {
			if !strings.Contains(out.String(), want) {
				t.Fatalf("replay output missing %q:\n%s", want, out.String())
			}
		}
	}
}

// TestReplayMissingFile: a vanished input is a runtime failure (1).
func TestReplayMissingFile(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"replay", filepath.Join(t.TempDir(), "gone.trace")}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errb.String())
	}
}

// TestCheckpointInfoRestoreRoundTrip drives the checkpoint flow end to
// end: warm-up + save, info on the image (the same subcommand that
// reads traces — it sniffs the magic), and a restored measured phase
// with real work in it.
func TestCheckpointInfoRestoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "warm.ckpt")
	var out, errb bytes.Buffer
	// seqRd at the default 1e-6 scale runs ~300 steps/thread: a
	// 100-step warm-up leaves a real measured phase behind.
	if code := run([]string{"checkpoint", "-warmup", "100", "seqRd", path}, &out, &errb); code != 0 {
		t.Fatalf("checkpoint exit %d\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "checkpointed seqRd") {
		t.Fatalf("checkpoint output: %s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"info", path}, &out, &errb); code != 0 {
		t.Fatalf("info exit %d\nstderr: %s", code, errb.String())
	}
	for _, want := range []string{"checkpoint   v1", "platform     hams-LE",
		"warmup       100 steps/thread", "sim/engine", "mem/nvdimm", "payload"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("info output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"restore", "seqRd", path}, &out, &errb); code != 0 {
		t.Fatalf("restore exit %d\nstderr: %s", code, errb.String())
	}
	for _, want := range []string{"restored     seqRd", "100 steps/thread of warm-up",
		"Per-tenant latency breakdown"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("restore output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "work units   0 ") {
		t.Fatalf("restored measured phase is empty:\n%s", out.String())
	}

	// A structurally different platform refuses the image up front.
	out.Reset()
	errb.Reset()
	if code := run([]string{"restore", "-platform", "hams-TE", "seqRd", path}, &out, &errb); code != 1 {
		t.Fatalf("cross-platform restore exit %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "hams-TE") {
		t.Fatalf("mismatch error does not name the platform:\n%s", errb.String())
	}
}

// TestCheckpointValidation: malformed checkpoint/restore input exits 2
// before any file is created or any simulation runs.
func TestCheckpointValidation(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "never.ckpt")
	cases := []struct {
		name string
		args []string
	}{
		{"checkpoint no args", []string{"checkpoint"}},
		{"checkpoint missing warmup", []string{"checkpoint", "seqRd", out}},
		{"checkpoint negative warmup", []string{"checkpoint", "-warmup", "-5", "seqRd", out}},
		{"checkpoint unknown workload", []string{"checkpoint", "-warmup", "100", "nope", out}},
		{"checkpoint unknown platform", []string{"checkpoint", "-warmup", "100", "-platform", "pdp11", "seqRd", out}},
		{"restore no args", []string{"restore"}},
		{"restore unknown workload", []string{"restore", "nope", out}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var o, e bytes.Buffer
			if code := run(tc.args, &o, &e); code != 2 {
				t.Fatalf("exit %d, want 2\nstderr: %s", code, e.String())
			}
			if _, err := os.Stat(out); !os.IsNotExist(err) {
				t.Fatalf("output file created before validation (stat err: %v)", err)
			}
		})
	}

	// A truncated image is a runtime failure (1) with a decode error,
	// reported before any simulation work.
	bad := filepath.Join(dir, "trunc.ckpt")
	if err := os.WriteFile(bad, []byte("HAMC\x01\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	var o, e bytes.Buffer
	if code := run([]string{"restore", "seqRd", bad}, &o, &e); code != 2 {
		t.Fatalf("truncated image exit %d, want 2\nstderr: %s", code, e.String())
	}
}
