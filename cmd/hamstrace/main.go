// Command hamstrace records Table III workload streams into the binary
// trace container, inspects existing traces, and replays them through
// any platform — so experiment inputs can be frozen once and re-run
// bit-identically.
//
// Usage:
//
//	hamstrace record [-scale 1e-6] [-seed 42] [-threads all] <workload> <file>
//	hamstrace replay [-platform hams-LE] [-mshrs D] [-qos-mask 0xf]
//	          [-qos-mbps N] [-qos-policy at:trace:mask:mbps,...] <file>
//	hamstrace checkpoint [-scale S] [-seed N] [-platform P] [-mshrs D]
//	          [-warmup K] <workload> <file>
//	hamstrace restore [-scale S] [-seed N] [-platform P] [-mshrs D]
//	          <workload> <file>
//	hamstrace info <file>
//
// record writes a v2 container: one labeled stream per thread plus the
// workload's warm (steady-state) regions, which replay re-installs so
// a replayed trace reproduces the live run's simulated statistics
// bit-for-bit. -threads selects "all" (the default) or a single
// 0-based thread index. replay's -mshrs replays the trace under the
// non-blocking miss pipeline at that per-bank depth (0/1 = the
// blocking default). info and replay decode v1 traces too.
//
// replay's QoS flags bound the whole trace as one class of service
// named "trace": -qos-mask confines its MoS installs (CAT), -qos-mbps
// caps its archive bandwidth (MBA), and -qos-policy schedules runtime
// reprogrammings of that class on the simulated clock (comma-separated
// at:trace:mask:mbps entries, each strictly after t=0 and
// nondecreasing; mask changes apply at the next victim selection,
// throttle changes keep accrued debt).
//
// checkpoint runs a workload's first K per-thread steps as a warm-up,
// quiesces the platform and freezes it into a versioned checkpoint
// image; restore rebuilds the same scenario from the same flags,
// overlays the image and runs only the measured remainder — the
// restored run's statistics are bit-identical to the live phase-split
// run's (the determinism contract the replay package pins). info
// recognizes checkpoint images by magic and prints the header plus
// per-layer section sizes; a malformed image exits 2 before any work.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"hams/internal/api"
	"hams/internal/checkpoint"
	"hams/internal/mem"
	"hams/internal/qos"
	"hams/internal/replay"
	"hams/internal/stats"
	"hams/internal/trace"
	"hams/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams (testable; exit codes:
// 0 ok, 1 runtime failure, 2 usage/validation error). Malformed input
// exits 2 before any recording or simulation runs.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return usage(stderr)
	}
	switch args[0] {
	case "record":
		return record(args[1:], stdout, stderr)
	case "replay":
		return replayCmd(args[1:], stdout, stderr)
	case "checkpoint":
		return checkpointCmd(args[1:], stdout, stderr)
	case "restore":
		return restoreCmd(args[1:], stdout, stderr)
	case "info":
		return info(args[1:], stdout, stderr)
	default:
		return usage(stderr)
	}
}

func usage(w io.Writer) int {
	fmt.Fprintln(w, "usage: hamstrace record [-scale S] [-seed N] [-threads all|K] <workload> <file>")
	fmt.Fprintln(w, "       hamstrace replay [-platform P] [-mshrs D] [-qos-mask M] [-qos-mbps N] [-qos-policy S] <file>")
	fmt.Fprintln(w, "       hamstrace checkpoint [-scale S] [-seed N] [-platform P] [-mshrs D] [-warmup K] <workload> <file>")
	fmt.Fprintln(w, "       hamstrace restore [-scale S] [-seed N] [-platform P] [-mshrs D] <workload> <file>")
	fmt.Fprintln(w, "       hamstrace info <file>")
	return 2
}

// checkpointSpec assembles the single-tenant phase-split scenario the
// checkpoint/restore pair shares: the same JobSpec shape a
// POST /v1/jobs scenario body decodes to, so both CLI subcommands and
// the HTTP path validate and build identically. The tenant is named
// after its workload; restore must rebuild the exact scenario the
// image was saved from, so every knob lives in the flags both
// subcommands repeat.
func checkpointSpec(plat string, mshrs int, wl string) api.JobSpec {
	return api.JobSpec{
		Kind:     api.KindScenario,
		Platform: plat,
		MSHRs:    mshrs,
		Name:     wl,
		Tenants:  []api.TenantSpec{{Name: wl, Workload: wl}},
	}
}

func checkpointCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("checkpoint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 1e-6, "instruction-count scale vs Table III")
	seed := fs.Int64("seed", 42, "workload random seed")
	plat := fs.String("platform", "hams-LE", "platform to warm up")
	mshrs := fs.Int("mshrs", 0, "HAMS per-bank MSHR depth (0/1 = blocking pipeline, >= 2 = non-blocking)")
	warmup := fs.Int64("warmup", 0, "warm-up length in per-thread steps (required, positive)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 2 {
		return usage(stderr)
	}
	if *warmup <= 0 {
		fmt.Fprintf(stderr, "hamstrace: -warmup must be positive (the image freezes the platform after that many per-thread steps), got %d\n", *warmup)
		return 2
	}
	spec := checkpointSpec(*plat, *mshrs, fs.Arg(0))
	spec.Warmup = *warmup
	if err := api.Validate(spec); err != nil {
		api.RenderFlagErrors(stderr, "hamstrace", err, map[string]string{
			"platform": "-platform",
			"warmup":   "-warmup",
		})
		return 2
	}
	sc, err := spec.Scenario(nil, nil)
	if err != nil {
		fmt.Fprintf(stderr, "hamstrace: %v\n", err)
		return 2
	}
	// Validation done; only now create (and truncate) the output file.
	f, err := os.Create(fs.Arg(1))
	if err != nil {
		return fatal(stderr, err)
	}
	img, err := replay.Warmup(sc, replay.Options{Scale: *scale, Seed: *seed})
	if err == nil {
		err = checkpoint.Encode(f, img)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fatal(stderr, err)
	}
	fmt.Fprintf(stdout, "checkpointed %s on %s after %d steps/thread to %s (%d sections)\n",
		fs.Arg(0), img.Platform, img.Warmup, fs.Arg(1), len(img.Sections))
	return 0
}

func restoreCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("restore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 1e-6, "instruction-count scale vs Table III")
	seed := fs.Int64("seed", 42, "workload random seed")
	plat := fs.String("platform", "hams-LE", "platform to restore onto")
	mshrs := fs.Int("mshrs", 0, "HAMS per-bank MSHR depth (0/1 = blocking pipeline, >= 2 = non-blocking)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 2 {
		return usage(stderr)
	}
	spec := checkpointSpec(*plat, *mshrs, fs.Arg(0))
	spec.Checkpoint = fs.Arg(1)
	if err := api.Validate(spec); err != nil {
		api.RenderFlagErrors(stderr, "hamstrace", err, map[string]string{
			"platform":   "-platform",
			"checkpoint": "file", // positional
		})
		return 2
	}
	// The builder resolves (opens, decodes, bounds-checks) the image:
	// a malformed container fails here, before any simulation — the
	// same exit-2 contract info applies to it.
	sc, err := spec.Scenario(api.FileTraces{}, api.FileCheckpoints{})
	if err != nil {
		fmt.Fprintf(stderr, "hamstrace: %v\n", err)
		return 2
	}
	res, err := replay.Run(sc, replay.Options{Scale: *scale, Seed: *seed})
	if err != nil {
		return fatal(stderr, err)
	}
	st := res.CPU
	fmt.Fprintf(stdout, "restored     %s from %s (v%d, %d steps/thread of warm-up, quiesced at %dns)\n",
		fs.Arg(0), fs.Arg(1), sc.Checkpoint.Version, sc.Checkpoint.Warmup, sc.Checkpoint.SimTime)
	fmt.Fprintf(stdout, "platform     %s\n", res.Platform)
	fmt.Fprintf(stdout, "instructions %d (measured phase)\n", st.Instructions)
	fmt.Fprintf(stdout, "elapsed      %v\n", st.Elapsed)
	fmt.Fprintf(stdout, "work units   %d (%.0f/s)\n", res.Units, res.UnitsPerSec())
	fmt.Fprintf(stdout, "energy (J)   %.3f\n\n", res.Energy.Total())
	fmt.Fprintln(stdout, tenantTable(res))
	return 0
}

// tenantTable renders the per-tenant latency table replay and restore
// share.
func tenantTable(res replay.Result) *stats.Table {
	t := stats.NewTable("Per-tenant latency breakdown",
		"tenant", "threads", "units", "accesses", "mean", "p50", "p95", "p99", "max")
	for _, ten := range res.Tenants {
		t.AddRow(ten.Name, fmt.Sprint(ten.Threads), fmt.Sprint(ten.Units), fmt.Sprint(ten.Accesses),
			fmt.Sprintf("%dns", ten.Mean), fmt.Sprintf("%dns", ten.P50),
			fmt.Sprintf("%dns", ten.P95), fmt.Sprintf("%dns", ten.P99), fmt.Sprintf("%dns", ten.Max))
	}
	return t
}

func record(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 1e-6, "instruction-count scale vs Table III")
	seed := fs.Int64("seed", 42, "workload random seed")
	threads := fs.String("threads", "all", `threads to record: "all" or a 0-based index`)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 2 {
		return usage(stderr)
	}
	o := workload.DefaultOptions()
	o.Scale = *scale
	o.Seed = *seed
	thread := replay.AllThreads
	if *threads != "all" {
		idx, err := strconv.Atoi(*threads)
		if err != nil {
			fmt.Fprintf(stderr, "hamstrace: -threads must be \"all\" or a 0-based index, got %q\n", *threads)
			return 2
		}
		thread = idx
	}
	// Validate the workload name before creating (and truncating) the
	// output file.
	if _, err := workload.ByName(fs.Arg(0)); err != nil {
		fmt.Fprintf(stderr, "hamstrace: %v\n", err)
		return 2
	}
	f, err := os.Create(fs.Arg(1))
	if err != nil {
		return fatal(stderr, err)
	}
	defer f.Close()
	// RecordWorkload writes a v2 container whose warm regions travel
	// with the trace: replay re-installs the same steady-state
	// residency the live harness warms, which is what makes a replayed
	// run bit-identical to the live one.
	n, err := replay.RecordWorkload(f, fs.Arg(0), o, thread)
	if err != nil {
		return fatal(stderr, err)
	}
	fmt.Fprintf(stdout, "recorded %d steps of %s to %s\n", n, fs.Arg(0), fs.Arg(1))
	return 0
}

func replayCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	plat := fs.String("platform", "hams-LE", "platform to replay against")
	mshrs := fs.Int("mshrs", 0, "HAMS per-bank MSHR depth (0/1 = blocking pipeline, >= 2 = non-blocking)")
	qosMask := fs.String("qos-mask", "", "confine the trace's MoS installs to these ways (CAT mask, e.g. 0x3; empty = all ways)")
	qosMBps := fs.Float64("qos-mbps", 0, "cap the trace's archive bandwidth in MB/s (MBA throttle; 0 = unthrottled)")
	qosPolicy := fs.String("qos-policy", "", `schedule runtime class reprogrammings: at:class:mask:mbps[,...] (the trace runs as class "trace")`)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		return usage(stderr)
	}
	// The flag set assembles into the same scenario JobSpec a
	// POST /v1/jobs body decodes to — the sole unnamed trace tenant is
	// the "expand by recorded label" shape.
	spec := api.JobSpec{
		Kind:     api.KindScenario,
		Platform: *plat,
		MSHRs:    *mshrs,
		Name:     filepath.Base(fs.Arg(0)),
		Tenants:  []api.TenantSpec{{Trace: fs.Arg(0)}},
	}
	// Any QoS flag folds the whole trace into one class of service named
	// "trace" — the single-class shape hamssim uses for run jobs, carried
	// here as a one-row CLOS table so the scenario validator and the
	// policy timeline see a declared class.
	if *qosMask != "" || *qosMBps != 0 || *qosPolicy != "" {
		spec.QoS = []api.ClassSpec{{Name: "trace", WayMask: *qosMask, MBps: *qosMBps}}
		spec.Tenants[0].Class = "trace"
	}
	if *qosPolicy != "" {
		entries, err := qos.ParseSchedule(*qosPolicy)
		if err != nil {
			fmt.Fprintf(stderr, "hamstrace: -qos-policy: %v\n", err)
			return 2
		}
		for _, e := range entries {
			spec.QoSPolicy = append(spec.QoSPolicy, api.PolicyChangeSpec{
				AtNS: int64(e.At), Class: e.Class, WayMask: qos.FormatMask(e.Mask), MBps: e.MBps,
			})
		}
	}
	if err := api.Validate(spec); err != nil {
		api.RenderFlagErrors(stderr, "hamstrace", err, map[string]string{
			"platform":   "-platform",
			"qos":        "-qos-mask",
			"qos_policy": "-qos-policy",
		})
		return 2
	}
	sc, err := spec.Scenario(api.FileTraces{}, api.FileCheckpoints{})
	if err != nil {
		return fatal(stderr, err)
	}
	res, err := replay.Run(sc, replay.Options{})
	if err != nil {
		return fatal(stderr, err)
	}
	// Every tenant replays the same container; reopen it once for the
	// header line.
	tf := sc.Tenants[0].Trace
	st := res.CPU
	fmt.Fprintf(stdout, "trace        %s (v%d, %d thread(s), %d step(s))\n", sc.Name, tf.Version, len(tf.Threads), tf.Steps())
	fmt.Fprintf(stdout, "platform     %s\n", res.Platform)
	fmt.Fprintf(stdout, "instructions %d\n", st.Instructions)
	fmt.Fprintf(stdout, "elapsed      %v\n", st.Elapsed)
	fmt.Fprintf(stdout, "work units   %d (%.0f/s)\n", res.Units, res.UnitsPerSec())
	fmt.Fprintf(stdout, "mem accesses %d (L1 %.1f%%, L2 %.1f%% hit)\n", st.MemAccesses,
		pct(st.L1Hits, st.L1Hits+st.L1Misses), pct(st.L2Hits, st.L2Hits+st.L2Misses))
	fmt.Fprintf(stdout, "breakdown    OS=%v mem=%v DMA=%v SSD=%v\n", st.OSTime, st.MemTime, st.DMATime, st.SSDTime)
	fmt.Fprintf(stdout, "energy (J)   %.3f\n\n", res.Energy.Total())
	fmt.Fprintln(stdout, tenantTable(res))
	return 0
}

func info(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		return usage(stderr)
	}
	f, err := os.Open(args[0])
	if err != nil {
		return fatal(stderr, err)
	}
	defer f.Close()
	// Sniff the magic: info understands both container families. A
	// checkpoint image is fully bounds-checked by Decode, so a
	// malformed one exits 2 here, before any work.
	var magic [4]byte
	n, _ := io.ReadFull(f, magic[:])
	if checkpoint.IsMagic(magic[:n]) {
		img, err := checkpoint.Decode(io.MultiReader(bytes.NewReader(magic[:n]), f))
		if err != nil {
			fmt.Fprintf(stderr, "hamstrace: %v\n", err)
			return 2
		}
		return checkpointInfo(img, stdout)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fatal(stderr, err)
	}
	tf, err := trace.Decode(f)
	if err != nil {
		return fatal(stderr, err)
	}
	fmt.Fprintf(stdout, "version      %d\n", tf.Version)
	if tf.Name != "" {
		fmt.Fprintf(stdout, "name         %s\n", tf.Name)
	}
	fmt.Fprintf(stdout, "threads      %d\n", len(tf.Threads))
	fmt.Fprintf(stdout, "warm regions %d\n", len(tf.Warm))
	var steps, accesses, loads, stores, compute int64
	var bytes uint64
	minAddr, maxAddr := ^uint64(0), uint64(0)
	for ti, th := range tf.Threads {
		var tAcc int64
		for _, s := range th.Steps {
			steps++
			compute += s.Compute
			for _, a := range s.Acc {
				accesses++
				tAcc++
				bytes += uint64(a.Size)
				if a.Op == mem.Read {
					loads++
				} else {
					stores++
				}
				if a.Addr < minAddr {
					minAddr = a.Addr
				}
				if a.End() > maxAddr {
					maxAddr = a.End()
				}
			}
		}
		label := th.Label
		if label == "" {
			label = "-"
		}
		fmt.Fprintf(stdout, "  thread %-3d %-16s %7d steps %9d accesses\n", ti, label, len(th.Steps), tAcc)
	}
	fmt.Fprintf(stdout, "steps        %d\n", steps)
	fmt.Fprintf(stdout, "accesses     %d (%d loads, %d stores)\n", accesses, loads, stores)
	fmt.Fprintf(stdout, "compute      %d instructions\n", compute)
	fmt.Fprintf(stdout, "bytes moved  %d\n", bytes)
	if accesses > 0 {
		fmt.Fprintf(stdout, "addr range   [%#x, %#x)\n", minAddr, maxAddr)
	}
	return 0
}

// checkpointInfo renders a checkpoint image's header and per-layer
// section sizes (payloads stay opaque — the sizes are the point: they
// say where a fat image's bytes live without info having to understand
// eight subsystems' wire layouts).
func checkpointInfo(img *checkpoint.Image, stdout io.Writer) int {
	fmt.Fprintf(stdout, "checkpoint   v%d\n", img.Version)
	fmt.Fprintf(stdout, "platform     %s\n", img.Platform)
	fmt.Fprintf(stdout, "sim time     %dns\n", img.SimTime)
	fmt.Fprintf(stdout, "warmup       %d steps/thread\n", img.Warmup)
	fmt.Fprintf(stdout, "sections     %d\n", len(img.Sections))
	var total int
	for _, sec := range img.Sections {
		fmt.Fprintf(stdout, "  %-12s %10d bytes\n", sec.Name, len(sec.Data))
		total += len(sec.Data)
	}
	fmt.Fprintf(stdout, "payload      %d bytes\n", total)
	return 0
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}

func fatal(w io.Writer, err error) int {
	fmt.Fprintln(w, "hamstrace:", err)
	return 1
}
