// Command hamstrace records Table III workload streams into the binary
// trace container, inspects existing traces, and replays them through
// any platform — so experiment inputs can be frozen once and re-run
// bit-identically.
//
// Usage:
//
//	hamstrace record [-scale 1e-6] [-seed 42] [-threads all] <workload> <file>
//	hamstrace replay [-platform hams-LE] [-mshrs D] [-qos-mask 0xf]
//	          [-qos-mbps N] [-qos-policy at:trace:mask:mbps,...] <file>
//	hamstrace info <file>
//
// record writes a v2 container: one labeled stream per thread plus the
// workload's warm (steady-state) regions, which replay re-installs so
// a replayed trace reproduces the live run's simulated statistics
// bit-for-bit. -threads selects "all" (the default) or a single
// 0-based thread index. replay's -mshrs replays the trace under the
// non-blocking miss pipeline at that per-bank depth (0/1 = the
// blocking default). info and replay decode v1 traces too.
//
// replay's QoS flags bound the whole trace as one class of service
// named "trace": -qos-mask confines its MoS installs (CAT), -qos-mbps
// caps its archive bandwidth (MBA), and -qos-policy schedules runtime
// reprogrammings of that class on the simulated clock (comma-separated
// at:trace:mask:mbps entries, each strictly after t=0 and
// nondecreasing; mask changes apply at the next victim selection,
// throttle changes keep accrued debt).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"hams/internal/api"
	"hams/internal/mem"
	"hams/internal/qos"
	"hams/internal/replay"
	"hams/internal/stats"
	"hams/internal/trace"
	"hams/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams (testable; exit codes:
// 0 ok, 1 runtime failure, 2 usage/validation error). Malformed input
// exits 2 before any recording or simulation runs.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return usage(stderr)
	}
	switch args[0] {
	case "record":
		return record(args[1:], stdout, stderr)
	case "replay":
		return replayCmd(args[1:], stdout, stderr)
	case "info":
		return info(args[1:], stdout, stderr)
	default:
		return usage(stderr)
	}
}

func usage(w io.Writer) int {
	fmt.Fprintln(w, "usage: hamstrace record [-scale S] [-seed N] [-threads all|K] <workload> <file>")
	fmt.Fprintln(w, "       hamstrace replay [-platform P] [-mshrs D] [-qos-mask M] [-qos-mbps N] [-qos-policy S] <file>")
	fmt.Fprintln(w, "       hamstrace info <file>")
	return 2
}

func record(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 1e-6, "instruction-count scale vs Table III")
	seed := fs.Int64("seed", 42, "workload random seed")
	threads := fs.String("threads", "all", `threads to record: "all" or a 0-based index`)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 2 {
		return usage(stderr)
	}
	o := workload.DefaultOptions()
	o.Scale = *scale
	o.Seed = *seed
	thread := replay.AllThreads
	if *threads != "all" {
		idx, err := strconv.Atoi(*threads)
		if err != nil {
			fmt.Fprintf(stderr, "hamstrace: -threads must be \"all\" or a 0-based index, got %q\n", *threads)
			return 2
		}
		thread = idx
	}
	// Validate the workload name before creating (and truncating) the
	// output file.
	if _, err := workload.ByName(fs.Arg(0)); err != nil {
		fmt.Fprintf(stderr, "hamstrace: %v\n", err)
		return 2
	}
	f, err := os.Create(fs.Arg(1))
	if err != nil {
		return fatal(stderr, err)
	}
	defer f.Close()
	// RecordWorkload writes a v2 container whose warm regions travel
	// with the trace: replay re-installs the same steady-state
	// residency the live harness warms, which is what makes a replayed
	// run bit-identical to the live one.
	n, err := replay.RecordWorkload(f, fs.Arg(0), o, thread)
	if err != nil {
		return fatal(stderr, err)
	}
	fmt.Fprintf(stdout, "recorded %d steps of %s to %s\n", n, fs.Arg(0), fs.Arg(1))
	return 0
}

func replayCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	plat := fs.String("platform", "hams-LE", "platform to replay against")
	mshrs := fs.Int("mshrs", 0, "HAMS per-bank MSHR depth (0/1 = blocking pipeline, >= 2 = non-blocking)")
	qosMask := fs.String("qos-mask", "", "confine the trace's MoS installs to these ways (CAT mask, e.g. 0x3; empty = all ways)")
	qosMBps := fs.Float64("qos-mbps", 0, "cap the trace's archive bandwidth in MB/s (MBA throttle; 0 = unthrottled)")
	qosPolicy := fs.String("qos-policy", "", `schedule runtime class reprogrammings: at:class:mask:mbps[,...] (the trace runs as class "trace")`)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		return usage(stderr)
	}
	// The flag set assembles into the same scenario JobSpec a
	// POST /v1/jobs body decodes to — the sole unnamed trace tenant is
	// the "expand by recorded label" shape.
	spec := api.JobSpec{
		Kind:     api.KindScenario,
		Platform: *plat,
		MSHRs:    *mshrs,
		Name:     filepath.Base(fs.Arg(0)),
		Tenants:  []api.TenantSpec{{Trace: fs.Arg(0)}},
	}
	// Any QoS flag folds the whole trace into one class of service named
	// "trace" — the single-class shape hamssim uses for run jobs, carried
	// here as a one-row CLOS table so the scenario validator and the
	// policy timeline see a declared class.
	if *qosMask != "" || *qosMBps != 0 || *qosPolicy != "" {
		spec.QoS = []api.ClassSpec{{Name: "trace", WayMask: *qosMask, MBps: *qosMBps}}
		spec.Tenants[0].Class = "trace"
	}
	if *qosPolicy != "" {
		entries, err := qos.ParseSchedule(*qosPolicy)
		if err != nil {
			fmt.Fprintf(stderr, "hamstrace: -qos-policy: %v\n", err)
			return 2
		}
		for _, e := range entries {
			spec.QoSPolicy = append(spec.QoSPolicy, api.PolicyChangeSpec{
				AtNS: int64(e.At), Class: e.Class, WayMask: qos.FormatMask(e.Mask), MBps: e.MBps,
			})
		}
	}
	if err := api.Validate(spec); err != nil {
		api.RenderFlagErrors(stderr, "hamstrace", err, map[string]string{
			"platform":   "-platform",
			"qos":        "-qos-mask",
			"qos_policy": "-qos-policy",
		})
		return 2
	}
	sc, err := spec.Scenario(api.FileTraces{})
	if err != nil {
		return fatal(stderr, err)
	}
	res, err := replay.Run(sc, replay.Options{})
	if err != nil {
		return fatal(stderr, err)
	}
	// Every tenant replays the same container; reopen it once for the
	// header line.
	tf := sc.Tenants[0].Trace
	st := res.CPU
	fmt.Fprintf(stdout, "trace        %s (v%d, %d thread(s), %d step(s))\n", sc.Name, tf.Version, len(tf.Threads), tf.Steps())
	fmt.Fprintf(stdout, "platform     %s\n", res.Platform)
	fmt.Fprintf(stdout, "instructions %d\n", st.Instructions)
	fmt.Fprintf(stdout, "elapsed      %v\n", st.Elapsed)
	fmt.Fprintf(stdout, "work units   %d (%.0f/s)\n", res.Units, res.UnitsPerSec())
	fmt.Fprintf(stdout, "mem accesses %d (L1 %.1f%%, L2 %.1f%% hit)\n", st.MemAccesses,
		pct(st.L1Hits, st.L1Hits+st.L1Misses), pct(st.L2Hits, st.L2Hits+st.L2Misses))
	fmt.Fprintf(stdout, "breakdown    OS=%v mem=%v DMA=%v SSD=%v\n", st.OSTime, st.MemTime, st.DMATime, st.SSDTime)
	fmt.Fprintf(stdout, "energy (J)   %.3f\n\n", res.Energy.Total())
	t := stats.NewTable("Per-tenant latency breakdown",
		"tenant", "threads", "units", "accesses", "mean", "p50", "p95", "p99", "max")
	for _, ten := range res.Tenants {
		t.AddRow(ten.Name, fmt.Sprint(ten.Threads), fmt.Sprint(ten.Units), fmt.Sprint(ten.Accesses),
			fmt.Sprintf("%dns", ten.Mean), fmt.Sprintf("%dns", ten.P50),
			fmt.Sprintf("%dns", ten.P95), fmt.Sprintf("%dns", ten.P99), fmt.Sprintf("%dns", ten.Max))
	}
	fmt.Fprintln(stdout, t)
	return 0
}

func info(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		return usage(stderr)
	}
	f, err := os.Open(args[0])
	if err != nil {
		return fatal(stderr, err)
	}
	defer f.Close()
	tf, err := trace.Decode(f)
	if err != nil {
		return fatal(stderr, err)
	}
	fmt.Fprintf(stdout, "version      %d\n", tf.Version)
	if tf.Name != "" {
		fmt.Fprintf(stdout, "name         %s\n", tf.Name)
	}
	fmt.Fprintf(stdout, "threads      %d\n", len(tf.Threads))
	fmt.Fprintf(stdout, "warm regions %d\n", len(tf.Warm))
	var steps, accesses, loads, stores, compute int64
	var bytes uint64
	minAddr, maxAddr := ^uint64(0), uint64(0)
	for ti, th := range tf.Threads {
		var tAcc int64
		for _, s := range th.Steps {
			steps++
			compute += s.Compute
			for _, a := range s.Acc {
				accesses++
				tAcc++
				bytes += uint64(a.Size)
				if a.Op == mem.Read {
					loads++
				} else {
					stores++
				}
				if a.Addr < minAddr {
					minAddr = a.Addr
				}
				if a.End() > maxAddr {
					maxAddr = a.End()
				}
			}
		}
		label := th.Label
		if label == "" {
			label = "-"
		}
		fmt.Fprintf(stdout, "  thread %-3d %-16s %7d steps %9d accesses\n", ti, label, len(th.Steps), tAcc)
	}
	fmt.Fprintf(stdout, "steps        %d\n", steps)
	fmt.Fprintf(stdout, "accesses     %d (%d loads, %d stores)\n", accesses, loads, stores)
	fmt.Fprintf(stdout, "compute      %d instructions\n", compute)
	fmt.Fprintf(stdout, "bytes moved  %d\n", bytes)
	if accesses > 0 {
		fmt.Fprintf(stdout, "addr range   [%#x, %#x)\n", minAddr, maxAddr)
	}
	return 0
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}

func fatal(w io.Writer, err error) int {
	fmt.Fprintln(w, "hamstrace:", err)
	return 1
}
