// Command hamstrace records Table III workload streams into the binary
// trace container, inspects existing traces, and replays them through
// any platform — so experiment inputs can be frozen once and re-run
// bit-identically.
//
// Usage:
//
//	hamstrace record [-scale 1e-6] [-seed 42] [-threads all] <workload> <file>
//	hamstrace replay [-platform hams-LE] <file>
//	hamstrace info <file>
//
// record writes a v2 container: one labeled stream per thread plus the
// workload's warm (steady-state) regions, which replay re-installs so
// a replayed trace reproduces the live run's simulated statistics
// bit-for-bit. -threads selects "all" (the default) or a single
// 0-based thread index. info and replay decode v1 traces too.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"hams/internal/mem"
	"hams/internal/replay"
	"hams/internal/stats"
	"hams/internal/trace"
	"hams/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replayCmd(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hamstrace record [-scale S] [-seed N] [-threads all|K] <workload> <file>")
	fmt.Fprintln(os.Stderr, "       hamstrace replay [-platform P] <file>")
	fmt.Fprintln(os.Stderr, "       hamstrace info <file>")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	scale := fs.Float64("scale", 1e-6, "instruction-count scale vs Table III")
	seed := fs.Int64("seed", 42, "workload random seed")
	threads := fs.String("threads", "all", `threads to record: "all" or a 0-based index`)
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	o := workload.DefaultOptions()
	o.Scale = *scale
	o.Seed = *seed
	thread := replay.AllThreads
	if *threads != "all" {
		idx, err := strconv.Atoi(*threads)
		if err != nil {
			fatal(fmt.Errorf("-threads must be \"all\" or a 0-based index, got %q", *threads))
		}
		thread = idx
	}
	f, err := os.Create(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	// RecordWorkload writes a v2 container whose warm regions travel
	// with the trace: replay re-installs the same steady-state
	// residency the live harness warms, which is what makes a replayed
	// run bit-identical to the live one.
	n, err := replay.RecordWorkload(f, fs.Arg(0), o, thread)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d steps of %s to %s\n", n, fs.Arg(0), fs.Arg(1))
}

func replayCmd(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	plat := fs.String("platform", "hams-LE", "platform to replay against")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	tf, err := trace.Decode(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	sc := replay.Scenario{
		Name:     filepath.Base(fs.Arg(0)),
		Platform: *plat,
		Tenants:  replay.FromFile(tf),
	}
	res, err := replay.Run(sc, replay.Options{})
	if err != nil {
		fatal(err)
	}
	st := res.CPU
	fmt.Printf("trace        %s (v%d, %d thread(s), %d step(s))\n", sc.Name, tf.Version, len(tf.Threads), tf.Steps())
	fmt.Printf("platform     %s\n", res.Platform)
	fmt.Printf("instructions %d\n", st.Instructions)
	fmt.Printf("elapsed      %v\n", st.Elapsed)
	fmt.Printf("work units   %d (%.0f/s)\n", res.Units, res.UnitsPerSec())
	fmt.Printf("mem accesses %d (L1 %.1f%%, L2 %.1f%% hit)\n", st.MemAccesses,
		pct(st.L1Hits, st.L1Hits+st.L1Misses), pct(st.L2Hits, st.L2Hits+st.L2Misses))
	fmt.Printf("breakdown    OS=%v mem=%v DMA=%v SSD=%v\n", st.OSTime, st.MemTime, st.DMATime, st.SSDTime)
	fmt.Printf("energy (J)   %.3f\n\n", res.Energy.Total())
	t := stats.NewTable("Per-tenant latency breakdown",
		"tenant", "threads", "units", "accesses", "mean", "p50", "p95", "p99", "max")
	for _, ten := range res.Tenants {
		t.AddRow(ten.Name, fmt.Sprint(ten.Threads), fmt.Sprint(ten.Units), fmt.Sprint(ten.Accesses),
			fmt.Sprintf("%dns", ten.Mean), fmt.Sprintf("%dns", ten.P50),
			fmt.Sprintf("%dns", ten.P95), fmt.Sprintf("%dns", ten.P99), fmt.Sprintf("%dns", ten.Max))
	}
	fmt.Println(t)
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tf, err := trace.Decode(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("version      %d\n", tf.Version)
	if tf.Name != "" {
		fmt.Printf("name         %s\n", tf.Name)
	}
	fmt.Printf("threads      %d\n", len(tf.Threads))
	fmt.Printf("warm regions %d\n", len(tf.Warm))
	var steps, accesses, loads, stores, compute int64
	var bytes uint64
	minAddr, maxAddr := ^uint64(0), uint64(0)
	for ti, th := range tf.Threads {
		var tAcc int64
		for _, s := range th.Steps {
			steps++
			compute += s.Compute
			for _, a := range s.Acc {
				accesses++
				tAcc++
				bytes += uint64(a.Size)
				if a.Op == mem.Read {
					loads++
				} else {
					stores++
				}
				if a.Addr < minAddr {
					minAddr = a.Addr
				}
				if a.End() > maxAddr {
					maxAddr = a.End()
				}
			}
		}
		label := th.Label
		if label == "" {
			label = "-"
		}
		fmt.Printf("  thread %-3d %-16s %7d steps %9d accesses\n", ti, label, len(th.Steps), tAcc)
	}
	fmt.Printf("steps        %d\n", steps)
	fmt.Printf("accesses     %d (%d loads, %d stores)\n", accesses, loads, stores)
	fmt.Printf("compute      %d instructions\n", compute)
	fmt.Printf("bytes moved  %d\n", bytes)
	if accesses > 0 {
		fmt.Printf("addr range   [%#x, %#x)\n", minAddr, maxAddr)
	}
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b) * 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hamstrace:", err)
	os.Exit(1)
}
