// Command hamstrace records Table III workload streams into the binary
// trace format and inspects existing traces, so experiment inputs can
// be frozen and replayed bit-identically.
//
// Usage:
//
//	hamstrace record [-scale 1e-6] [-seed 42] [-thread 0] <workload> <file>
//	hamstrace info <file>
package main

import (
	"flag"
	"fmt"
	"os"

	"hams/internal/mem"
	"hams/internal/trace"
	"hams/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hamstrace record [-scale S] [-seed N] [-thread K] <workload> <file>")
	fmt.Fprintln(os.Stderr, "       hamstrace info <file>")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	scale := fs.Float64("scale", 1e-6, "instruction-count scale vs Table III")
	seed := fs.Int64("seed", 42, "workload random seed")
	thread := fs.Int("thread", 0, "which thread's stream to record")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	spec, err := workload.ByName(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	o := workload.DefaultOptions()
	o.Scale = *scale
	o.Seed = *seed
	streams := spec.Streams(o)
	if *thread < 0 || *thread >= len(streams) {
		fatal(fmt.Errorf("thread %d out of range (workload has %d)", *thread, len(streams)))
	}
	f, err := os.Create(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	n, err := trace.Record(f, streams[*thread])
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d steps of %s (thread %d) to %s\n", n, spec.Name, *thread, fs.Arg(1))
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	var steps, accesses, loads, stores, compute int64
	var bytes uint64
	minAddr, maxAddr := ^uint64(0), uint64(0)
	for {
		s, ok := r.Next()
		if !ok {
			break
		}
		steps++
		compute += s.Compute
		for _, a := range s.Acc {
			accesses++
			bytes += uint64(a.Size)
			if a.Op == mem.Read {
				loads++
			} else {
				stores++
			}
			if a.Addr < minAddr {
				minAddr = a.Addr
			}
			if a.End() > maxAddr {
				maxAddr = a.End()
			}
		}
	}
	if err := r.Err(); err != nil {
		fatal(err)
	}
	fmt.Printf("steps        %d\n", steps)
	fmt.Printf("accesses     %d (%d loads, %d stores)\n", accesses, loads, stores)
	fmt.Printf("compute      %d instructions\n", compute)
	fmt.Printf("bytes moved  %d\n", bytes)
	if accesses > 0 {
		fmt.Printf("addr range   [%#x, %#x)\n", minAddr, maxAddr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hamstrace:", err)
	os.Exit(1)
}
