// Command hamsbench regenerates the paper's tables and figures and
// serializes machine-readable BENCH artifacts.
//
// Usage:
//
//	hamsbench [-scale 3e-6] [-seed 42] [-parallel N] [-json out.json] <target> [target...]
//	hamsbench compare [-threshold 0.15] [-summary file.md] baseline.json new.json
//
// Targets: table1 table2 table3 fig5 fig6 fig7 fig10 fig16 fig17
// fig18 fig19 fig20 headline ablation sweep replay mixed all
//
// sweep runs the associativity × shard grid (MoS cache geometry) on
// the random microbenchmarks and rndIns. replay runs the record→replay
// determinism matrix: each cell records a workload through the v2
// trace codec, replays it, and fails unless the replayed simulated
// stats match the live run bit-for-bit. mixed runs the built-in
// multi-tenant scenarios with per-tenant latency percentiles.
// -parallel sets the engine worker count (0 = GOMAXPROCS, 1 = serial);
// results are bit-identical for any value. -json writes a versioned
// BENCH artifact with one record per experiment cell; compare diffs
// two artifacts and exits nonzero when any cell's simulated throughput
// regressed beyond the threshold (the CI perf gate); -summary appends
// the markdown delta table to a file ($GITHUB_STEP_SUMMARY in CI).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hams/internal/experiments"
	"hams/internal/report"
	"hams/internal/stats"
)

var allTargets = []string{"table1", "table2", "table3", "fig5", "fig6", "fig7",
	"fig10", "fig16", "fig17", "fig18", "fig19", "fig20", "headline", "ablation", "sweep",
	"replay", "mixed"}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	scale := flag.Float64("scale", 3e-6, "instruction-count scale vs Table III")
	seed := flag.Int64("seed", 42, "workload random seed")
	parallel := flag.Int("parallel", 0, "experiment engine workers (0 = GOMAXPROCS, 1 = serial)")
	jsonOut := flag.String("json", "", "write a BENCH artifact (one record per cell) to this file")
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 {
		usage()
		os.Exit(2)
	}
	targets = expand(targets)
	// Validate every name up front: CI must not discover a typo only
	// after minutes of earlier targets have already run.
	var unknown []string
	for _, tgt := range targets {
		if !known(tgt) {
			unknown = append(unknown, tgt)
		}
	}
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "hamsbench: unknown target(s): %s\n", strings.Join(unknown, ", "))
		usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	o := experiments.Options{Scale: *scale, Seed: *seed, Parallel: *parallel, Ctx: ctx}
	if *jsonOut != "" {
		o.Recorder = &report.Recorder{}
	}
	for _, tgt := range targets {
		if err := run(tgt, o); err != nil {
			fmt.Fprintf(os.Stderr, "hamsbench: %s: %v\n", tgt, err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		art := o.Recorder.Artifact(strings.Join(targets, "+"), *scale, *seed, *parallel)
		if err := report.WriteFile(*jsonOut, art); err != nil {
			fmt.Fprintf(os.Stderr, "hamsbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d cells)\n", *jsonOut, len(art.Cells))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: hamsbench [-scale S] [-seed N] [-parallel N] [-json out.json] <%s|all>\n",
		strings.Join(allTargets, "|"))
	fmt.Fprintln(os.Stderr, "       hamsbench compare [-threshold 0.15] [-summary file.md] baseline.json new.json")
}

// expand resolves "all" and drops repeats (first occurrence wins): a
// target run twice would record duplicate cell keys into the artifact,
// breaking the key-uniqueness the compare gate relies on.
func expand(targets []string) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(t string) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, tgt := range targets {
		if tgt == "all" {
			for _, t := range allTargets {
				add(t)
			}
			continue
		}
		add(tgt)
	}
	return out
}

func known(tgt string) bool {
	for _, t := range allTargets {
		if t == tgt {
			return true
		}
	}
	return false
}

func run(target string, o experiments.Options) error {
	start := time.Now()
	var tables []*stats.Table
	var err error
	one := func(t *stats.Table, e error) ([]*stats.Table, error) {
		return []*stats.Table{t}, e
	}
	switch target {
	case "table1", "table2", "table3":
		tables, err = experiments.StaticTables(o, target)
	case "fig5":
		tables, err = experiments.Fig5(o)
	case "fig6":
		tables, err = experiments.Fig6(o)
	case "fig7":
		tables, err = experiments.Fig7(o)
	case "fig10":
		tables, err = one(experiments.Fig10(o))
	case "fig16":
		tables, err = experiments.Fig16(o)
	case "fig17":
		tables, err = one(experiments.Fig17(o))
	case "fig18":
		tables, err = one(experiments.Fig18(o))
	case "fig19":
		tables, err = one(experiments.Fig19(o))
	case "fig20":
		tables, err = experiments.Fig20(o)
	case "headline":
		tables, err = one(experiments.Headline(o))
	case "ablation":
		tables, err = one(experiments.Ablation(o))
	case "sweep":
		tables, err = experiments.AssocShardSweep(o)
	case "replay":
		tables, err = experiments.Replay(o)
	case "mixed":
		tables, err = experiments.Mixed(o)
	}
	if err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Println(t)
	}
	fmt.Printf("(%s generated in %v)\n\n", target, time.Since(start).Round(time.Millisecond))
	return nil
}

// runCompare is the CI perf gate: diff two BENCH artifacts and fail
// on per-cell throughput regressions beyond the threshold. -summary
// appends the full markdown delta table to a file — pointed at
// $GITHUB_STEP_SUMMARY, the per-cell deltas land on the workflow run
// page so a regression is readable without rerunning anything.
func runCompare(args []string) int {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.15, "max tolerated fractional throughput drop per cell")
	summary := fs.String("summary", "", "append a markdown delta table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
		return 2
	}
	base, err := report.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hamsbench compare: %v\n", err)
		return 2
	}
	cur, err := report.Load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hamsbench compare: %v\n", err)
		return 2
	}
	deltas, err := report.Deltas(base, cur)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hamsbench compare: %v\n", err)
		return 2
	}
	if *summary != "" {
		md := report.Markdown(fmt.Sprintf("Bench gate: %s vs %s", fs.Arg(0), fs.Arg(1)), deltas, *threshold)
		f, err := os.OpenFile(*summary, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hamsbench compare: summary: %v\n", err)
			return 2
		}
		_, werr := f.WriteString(md)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "hamsbench compare: summary: %v\n", werr)
			return 2
		}
	}
	regs := report.Threshold(deltas, *threshold)
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "hamsbench compare: %d cell(s) regressed beyond %.0f%%:\n", len(regs), *threshold*100)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return 1
	}
	fmt.Printf("compare: %d baseline cells, no regression beyond %.0f%%\n", len(base.Cells), *threshold*100)
	return 0
}
