// Command hamsbench regenerates the paper's tables and figures and
// serializes machine-readable BENCH artifacts.
//
// Usage:
//
//	hamsbench [-scale 3e-6] [-seed 42] [-parallel N] [-json out.json]
//	          [-progress] [-mshrs D] [-qos-masks name=mask,...]
//	          [-qos-mbps name=N,...] [-qos-summary file.md]
//	          [-slo-p99 40us] [-checkpoint img] [-from-checkpoint img]
//	          [-sampled-summary file.md] <target> [target...]
//	hamsbench compare [-threshold 0.15] [-summary file.md] baseline.json new.json
//
// Targets: table1 table2 table3 fig5 fig6 fig7 fig10 fig16 fig17
// fig18 fig19 fig20 headline ablation sweep replay mixed qos autoqos
// mlp sampled all
//
// sweep runs the associativity × shard grid (MoS cache geometry) on
// the random microbenchmarks and rndIns. replay runs the record→replay
// determinism matrix: each cell records a workload through the v2
// trace codec, replays it, and fails unless the replayed simulated
// stats match the live run bit-for-bit. mixed runs the built-in
// multi-tenant scenarios with per-tenant latency percentiles.
// mlp sweeps the non-blocking miss pipeline: MSHR depth 1/2/4/8 (×
// NVMe queue-depth caps) on miss-heavy workloads, reporting mean
// access latency, coalescing/hit-under-miss activity and the peak
// NVMe queue depth per cell; -mshrs overrides the MSHR depth of every
// other HAMS cell (0 keeps each target's own configuration). qos
// runs the RDT-style isolation sweep — a streaming tenant co-located
// with a latency-sensitive service under shared / cat / mba / cat+mba
// CLOS policies — with per-tenant percentiles plus MBM occupancy and
// bandwidth counters; -qos-masks and -qos-mbps override the isolated
// policy's way masks (hex, e.g. latency=0xfc) and throttles (MB/s),
// and -qos-summary appends the victim-delta markdown table to a file
// ($GITHUB_STEP_SUMMARY in CI). autoqos reruns the qos co-location
// with the AIMD feedback controller holding the victim's rolling p99
// to an SLO while maximizing the streamer's throughput, compared
// against all four static policies; -slo-p99 overrides the p99
// objective and -qos-summary also collects its delta table.
// sampled is the checkpointed-simulation gate: a split cell pins the
// SMARTS-style interval-sampling error against the full measured phase
// (mean and p50 within 10% per tenant), and a fan-out cell restores N
// measured cells from one warm-up checkpoint, demands bit-identity
// with N live warm-ups, and fails unless the amortization beats the
// 2x wall-clock floor. -checkpoint writes the sampled scenario's
// warm-up image to a file before any target runs; -from-checkpoint
// feeds such an image back so the fan-out cells restore without
// re-warming (same -seed, or every restore fails the match check);
// -sampled-summary appends the warm-up amortization markdown table to
// a file ($GITHUB_STEP_SUMMARY in CI).
// compare fails (exit 1) when the two artifacts' cell sets diverge —
// cells present on only one side were never gated, so the divergence
// is reported key-by-key instead of silently skipped.
// -parallel sets the engine worker count (0 = GOMAXPROCS, 1 = serial);
// results are bit-identical for any value. -progress prints one stderr
// line per experiment cell as it completes (the same per-cell hook
// hamsd streams over HTTP). -json writes a versioned
// BENCH artifact with one record per experiment cell; compare diffs
// two artifacts and exits nonzero when any cell's simulated throughput
// regressed beyond the threshold (the CI perf gate); -summary appends
// the markdown delta table to a file.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hams/internal/api"
	"hams/internal/checkpoint"
	"hams/internal/experiments"
	"hams/internal/qos"
	"hams/internal/report"
	"hams/internal/stats"
)

// benchFlags maps JobSpec field names to this CLI's flag spellings for
// validation-error rendering (see api.RenderFlagErrors).
var benchFlags = map[string]string{
	"targets": "target", // positional
}

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable args and streams (testable; exit
// codes: 0 ok, 1 runtime failure, 2 usage/validation error).
func realMain(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "compare" {
		return runCompare(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("hamsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 3e-6, "instruction-count scale vs Table III")
	seed := fs.Int64("seed", 42, "workload random seed")
	parallel := fs.Int("parallel", 0, "experiment engine workers (0 = GOMAXPROCS, 1 = serial)")
	jsonOut := fs.String("json", "", "write a BENCH artifact (one record per cell) to this file")
	qosMasks := fs.String("qos-masks", "", "qos target: override isolated-policy way masks, e.g. latency=0xfc,stream=0x03")
	qosMBps := fs.String("qos-mbps", "", "qos target: override isolated-policy throttles in MB/s, e.g. stream=100")
	qosSummary := fs.String("qos-summary", "", "append the qos isolation delta table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	sloP99 := fs.Duration("slo-p99", 0, "autoqos target: victim rolling-p99 objective for the feedback controller (0 = built-in default)")
	ckptOut := fs.String("checkpoint", "", "write the sampled scenario's warm-up checkpoint image to this file before any target runs")
	ckptIn := fs.String("from-checkpoint", "", "sampled target: restore fan-out cells from this image instead of warming up live (must match -seed)")
	sampledSummary := fs.String("sampled-summary", "", "append the sampled target's warm-up amortization table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	mshrs := fs.Int("mshrs", 0, "override the per-bank MSHR depth of HAMS cells (0 = each target's own; >= 2 enables the non-blocking miss pipeline)")
	progress := fs.Bool("progress", false, "print one line per completed cell to stderr as it finishes")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile (taken after the run) to this file")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() == 0 {
		usage(stderr)
		return 2
	}
	// Assemble the flag set into the same JobSpec a POST /v1/jobs body
	// decodes to and validate it the same way: CI must not discover a
	// typo only after minutes of earlier targets have already run
	// (PR 2's convention: malformed input exits 2 before any cell runs).
	masks, mbps, err := splitQoSFlags(*qosMasks, *qosMBps)
	if err != nil {
		fmt.Fprintf(stderr, "hamsbench: %v\n", err)
		return 2
	}
	spec := api.JobSpec{
		Kind: api.KindTarget, Targets: fs.Args(),
		Scale: *scale, Seed: *seed, Parallel: *parallel, MSHRs: *mshrs,
		QoSMasks: masks, QoSMBps: mbps,
	}
	if *sloP99 != 0 {
		spec.SLO = &api.SLOSpec{TargetP99NS: sloP99.Nanoseconds()}
	}
	if err := api.Validate(spec); err != nil {
		api.RenderFlagErrors(stderr, "hamsbench", err, benchFlags)
		return 2
	}
	targets := experiments.ExpandTargets(spec.Targets)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Profiles are validated up front (the exit-2 convention): a CPU
	// profile that cannot be created must not be discovered after the
	// run it was meant to capture has already burned its minutes.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "hamsbench: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "hamsbench: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(stderr, "hamsbench: -memprofile: %v\n", err)
			return 2
		}
		// The heap profile is written after the last target (see below);
		// creating the file now surfaces a bad path before any cell runs.
		defer f.Close()
		defer func() {
			runtime.GC() // flush recent frees so in-use numbers are exact
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "hamsbench: -memprofile: %v\n", err)
			}
		}()
	}
	o, err := spec.ExperimentOptions()
	if err != nil {
		fmt.Fprintf(stderr, "hamsbench: %v\n", err)
		return 2
	}
	o.Ctx = ctx
	// Checkpoint plumbing follows the validation-first convention: a
	// malformed image (or an uncreatable output path) must surface as
	// exit 2 before any cell has burned its minutes. A well-formed
	// image that does not match the scenario fails later, at restore.
	if *ckptIn != "" {
		img, err := api.FileCheckpoints{}.Checkpoint(*ckptIn)
		if err != nil {
			fmt.Fprintf(stderr, "hamsbench: -from-checkpoint: %v\n", err)
			return 2
		}
		o.Checkpoint = img
	}
	if *ckptOut != "" {
		f, err := os.Create(*ckptOut)
		if err != nil {
			fmt.Fprintf(stderr, "hamsbench: -checkpoint: %v\n", err)
			return 2
		}
		img, err := experiments.SampledCheckpoint(o)
		if err == nil {
			err = checkpoint.Encode(f, img)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "hamsbench: -checkpoint: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (platform %s, %d steps/thread of warm-up)\n", *ckptOut, img.Platform, img.Warmup)
	}
	if *jsonOut != "" {
		o.Recorder = &report.Recorder{}
	}
	if *progress {
		// One Fprintf per cell: a single Write under the hood, so lines
		// from concurrent workers do not shear.
		o.Progress = func(c report.Cell) {
			fmt.Fprintf(stderr, "cell %-44s %9.1fms\n", c.Key, float64(c.WallNS)/1e6)
		}
	}
	for _, tgt := range targets {
		if err := run(tgt, o, *qosSummary, *sampledSummary, stdout); err != nil {
			fmt.Fprintf(stderr, "hamsbench: %s: %v\n", tgt, err)
			return 1
		}
	}
	if *jsonOut != "" {
		art := o.Recorder.Artifact(strings.Join(targets, "+"), *scale, *seed, *parallel)
		if err := report.WriteFile(*jsonOut, art); err != nil {
			fmt.Fprintf(stderr, "hamsbench: writing %s: %v\n", *jsonOut, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d cells)\n", *jsonOut, len(art.Cells))
	}
	return 0
}

// splitQoSFlags parses the -qos-masks/-qos-mbps assignment-list syntax
// (name=value,...); mask values and class names are validated by
// api.Validate like any JSON body's.
func splitQoSFlags(masksArg, mbpsArg string) (map[string]string, map[string]float64, error) {
	masks, err := qos.ParseAssignments(masksArg)
	if err != nil {
		return nil, nil, fmt.Errorf("-qos-masks: %w", err)
	}
	if len(masks) == 0 {
		masks = nil
	}
	var mbps map[string]float64
	asn, err := qos.ParseAssignments(mbpsArg)
	if err != nil {
		return nil, nil, fmt.Errorf("-qos-mbps: %w", err)
	}
	for name, v := range asn {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("-qos-mbps: class %q: want a MB/s number, got %q", name, v)
		}
		if mbps == nil {
			mbps = make(map[string]float64, len(asn))
		}
		mbps[name] = f
	}
	return masks, mbps, nil
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: hamsbench [-scale S] [-seed N] [-parallel N] [-json out.json] [-progress] [-qos-masks a=0xf,...] [-qos-mbps a=N,...] [-qos-summary f.md] [-slo-p99 D] [-checkpoint img] [-from-checkpoint img] [-sampled-summary f.md] <%s|all>\n",
		strings.Join(experiments.TargetNames(), "|"))
	fmt.Fprintln(w, "       hamsbench compare [-threshold 0.15] [-summary file.md] baseline.json new.json")
}

func run(target string, o experiments.Options, qosSummary, sampledSummary string, stdout io.Writer) error {
	start := time.Now()
	var tables []*stats.Table
	var err error
	switch target {
	case "qos":
		// The CLI-flavored targets: their markdown summaries can land
		// in $GITHUB_STEP_SUMMARY.
		var md string
		tables, md, err = experiments.QoSWithSummary(o)
		if err == nil && qosSummary != "" {
			if werr := appendFile(qosSummary, md); werr != nil {
				return fmt.Errorf("qos summary: %w", werr)
			}
		}
	case "autoqos":
		var md string
		tables, md, err = experiments.AutoQoSWithSummary(o)
		if err == nil && qosSummary != "" {
			if werr := appendFile(qosSummary, md); werr != nil {
				return fmt.Errorf("autoqos summary: %w", werr)
			}
		}
	case "sampled":
		var md string
		tables, md, err = experiments.SampledWithSummary(o)
		if err == nil && sampledSummary != "" {
			if werr := appendFile(sampledSummary, md); werr != nil {
				return fmt.Errorf("sampled summary: %w", werr)
			}
		}
	default:
		tables, err = experiments.RunTarget(target, o)
	}
	if err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Fprintln(stdout, t)
	}
	fmt.Fprintf(stdout, "(%s generated in %v)\n\n", target, time.Since(start).Round(time.Millisecond))
	return nil
}

// setDiffMarkdown renders the compare gate's cell-set divergence as a
// markdown section ("" when the sets match).
func setDiffMarkdown(added, removed []string) string {
	if len(added)+len(removed) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\n### Cell sets diverge (%d added, %d removed)\n\n", len(added), len(removed))
	for _, k := range added {
		fmt.Fprintf(&b, "- `+ %s`\n", k)
	}
	for _, k := range removed {
		fmt.Fprintf(&b, "- `- %s`\n", k)
	}
	b.WriteString("\nbaseline and candidate must cover the same cells; regenerate the baseline if the change is intentional\n")
	return b.String()
}

// appendFile appends text to path, creating it if needed.
func appendFile(path, text string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.WriteString(text)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// runCompare is the CI perf gate: diff two BENCH artifacts and fail
// on per-cell throughput regressions beyond the threshold. -summary
// appends the full markdown delta table to a file — pointed at
// $GITHUB_STEP_SUMMARY, the per-cell deltas land on the workflow run
// page so a regression is readable without rerunning anything.
// -host-threshold additionally gates the host-side (wall-clock)
// throughput channel: loose by design (host timing is noisy), it
// compares only hermetic cells — serial artifacts where both sides
// recorded a host reading — and fails on regressions only, never on
// improvements or missing readings. 0 disables the host gate.
func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.15, "max tolerated fractional simulated-throughput drop per cell")
	hostThreshold := fs.Float64("host-threshold", 0, "max tolerated fractional host-throughput (wall clock) drop per cell; 0 disables the host gate")
	summary := fs.String("summary", "", "append a markdown delta table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 2 {
		usage(stderr)
		return 2
	}
	if *hostThreshold < 0 {
		fmt.Fprintf(stderr, "hamsbench compare: -host-threshold: want a non-negative fraction, got %g\n", *hostThreshold)
		return 2
	}
	base, err := report.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "hamsbench compare: %v\n", err)
		return 2
	}
	cur, err := report.Load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "hamsbench compare: %v\n", err)
		return 2
	}
	deltas, err := report.Deltas(base, cur)
	if err != nil {
		fmt.Fprintf(stderr, "hamsbench compare: %v\n", err)
		return 2
	}
	// Cell-set divergence is a gate failure in its own right, not a
	// silent skip: a cell present on only one side means the gate never
	// compared it, so a regression there would pass unexamined. Report
	// every added/removed key and fail; regenerating the baseline is the
	// fix when the divergence is intentional.
	added, removed := report.SetDiff(base, cur)
	var hostDeltas []report.Delta
	if *hostThreshold > 0 {
		hostDeltas, err = report.HostDeltas(base, cur)
		if err != nil {
			fmt.Fprintf(stderr, "hamsbench compare: %v\n", err)
			return 2
		}
	}
	if *summary != "" {
		md := report.Markdown(fmt.Sprintf("Bench gate: %s vs %s", fs.Arg(0), fs.Arg(1)), deltas, *threshold)
		if *hostThreshold > 0 {
			md += report.Markdown(fmt.Sprintf("Host-throughput gate (wall clock): %s vs %s", fs.Arg(0), fs.Arg(1)), hostDeltas, *hostThreshold)
		}
		md += setDiffMarkdown(added, removed)
		if err := appendFile(*summary, md); err != nil {
			fmt.Fprintf(stderr, "hamsbench compare: summary: %v\n", err)
			return 2
		}
	}
	if len(added)+len(removed) > 0 {
		fmt.Fprintf(stderr, "hamsbench compare: cell sets diverge (%d added, %d removed):\n", len(added), len(removed))
		for _, k := range added {
			fmt.Fprintf(stderr, "  + %s\n", k)
		}
		for _, k := range removed {
			fmt.Fprintf(stderr, "  - %s\n", k)
		}
		fmt.Fprintln(stderr, "baseline and candidate must cover the same cells; regenerate the baseline if the change is intentional")
		return 1
	}
	regs := report.Threshold(deltas, *threshold)
	if len(regs) > 0 {
		fmt.Fprintf(stderr, "hamsbench compare: %d cell(s) regressed beyond %.0f%%:\n", len(regs), *threshold*100)
		for _, r := range regs {
			fmt.Fprintf(stderr, "  %s\n", r)
		}
		return 1
	}
	if hregs := report.Threshold(hostDeltas, *hostThreshold); *hostThreshold > 0 && len(hregs) > 0 {
		fmt.Fprintf(stderr, "hamsbench compare: %d cell(s) lost host throughput beyond %.0f%%:\n", len(hregs), *hostThreshold*100)
		for _, r := range hregs {
			fmt.Fprintf(stderr, "  %s\n", r)
		}
		return 1
	}
	fmt.Fprintf(stdout, "compare: %d baseline cells, no regression beyond %.0f%%\n", len(base.Cells), *threshold*100)
	if *hostThreshold > 0 {
		fmt.Fprintf(stdout, "compare: %d hermetic cell(s), host throughput within %.0f%%\n", len(hostDeltas), *hostThreshold*100)
	}
	return 0
}
