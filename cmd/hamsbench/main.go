// Command hamsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	hamsbench [-scale 3e-6] [-seed 42] <target> [target...]
//
// Targets: table1 table2 table3 fig5 fig6 fig7 fig10 fig16 fig17
// fig18 fig19 fig20 headline sweep all
//
// sweep runs the associativity × shard grid (MoS cache geometry) on
// the random microbenchmarks and rndIns.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hams/internal/experiments"
	"hams/internal/stats"
)

func main() {
	scale := flag.Float64("scale", 3e-6, "instruction-count scale vs Table III")
	seed := flag.Int64("seed", 42, "workload random seed")
	flag.Parse()
	targets := flag.Args()
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "usage: hamsbench [-scale S] [-seed N] <table1|table2|table3|fig5|fig6|fig7|fig10|fig16|fig17|fig18|fig19|fig20|headline|ablation|sweep|all>")
		os.Exit(2)
	}
	o := experiments.Options{Scale: *scale, Seed: *seed}
	for _, tgt := range targets {
		if tgt == "all" {
			for _, t := range []string{"table1", "table2", "table3", "fig5", "fig6", "fig7",
				"fig10", "fig16", "fig17", "fig18", "fig19", "fig20", "headline", "ablation", "sweep"} {
				run(t, o)
			}
			continue
		}
		run(tgt, o)
	}
}

func run(target string, o experiments.Options) {
	start := time.Now()
	var tables []*stats.Table
	var err error
	switch target {
	case "table1":
		tables = []*stats.Table{experiments.Table1()}
	case "table2":
		tables = []*stats.Table{experiments.Table2()}
	case "table3":
		tables = []*stats.Table{experiments.Table3()}
	case "fig5":
		tables = experiments.Fig5(o)
	case "fig6":
		tables, err = experiments.Fig6(o)
	case "fig7":
		tables, err = experiments.Fig7(o)
	case "fig10":
		var t *stats.Table
		t, err = experiments.Fig10(o)
		tables = []*stats.Table{t}
	case "fig16":
		tables, err = experiments.Fig16(o)
	case "fig17":
		var t *stats.Table
		t, err = experiments.Fig17(o)
		tables = []*stats.Table{t}
	case "fig18":
		var t *stats.Table
		t, err = experiments.Fig18(o)
		tables = []*stats.Table{t}
	case "fig19":
		var t *stats.Table
		t, err = experiments.Fig19(o)
		tables = []*stats.Table{t}
	case "fig20":
		tables, err = experiments.Fig20(o)
	case "headline":
		var t *stats.Table
		t, err = experiments.Headline(o)
		tables = []*stats.Table{t}
	case "ablation":
		var t *stats.Table
		t, err = experiments.Ablation(o)
		tables = []*stats.Table{t}
	case "sweep":
		tables, err = experiments.AssocShardSweep(o)
	default:
		fmt.Fprintf(os.Stderr, "hamsbench: unknown target %q\n", target)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hamsbench: %s: %v\n", target, err)
		os.Exit(1)
	}
	for _, t := range tables {
		fmt.Println(t)
	}
	fmt.Printf("(%s generated in %v)\n\n", target, time.Since(start).Round(time.Millisecond))
}
