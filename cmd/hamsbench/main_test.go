package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hams/internal/api"
	"hams/internal/report"
)

// exec runs realMain with captured streams.
func exec(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestQoSFlagValidationExitsTwo pins PR 2's up-front validation
// convention on the new qos flags: malformed masks, throttles and
// unknown class names must exit 2 before any cell runs.
func TestQoSFlagValidationExitsTwo(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"malformed mask", []string{"-qos-masks", "latency=zz", "qos"}},
		{"empty mask value", []string{"-qos-masks", "latency=0x0", "qos"}},
		{"mask missing name", []string{"-qos-masks", "=0x3", "qos"}},
		{"mask repeated name", []string{"-qos-masks", "latency=0x3,latency=0xc", "qos"}},
		{"unknown mask class", []string{"-qos-masks", "nobody=0x3", "qos"}},
		{"mbps not a number", []string{"-qos-mbps", "stream=fast", "qos"}},
		{"mbps negative", []string{"-qos-mbps", "stream=-5", "qos"}},
		{"unknown mbps class", []string{"-qos-mbps", "nobody=100", "qos"}},
	}
	for _, tc := range cases {
		code, _, errOut := exec(tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, errOut)
		}
		if errOut == "" {
			t.Errorf("%s: no diagnostic on stderr", tc.name)
		}
	}
}

// TestTargetValidationExitsTwo: unknown targets and empty invocations
// fail before anything runs (pre-existing convention, re-pinned after
// the realMain refactor).
func TestTargetValidationExitsTwo(t *testing.T) {
	if code, _, errOut := exec("no-such-target"); code != 2 || !strings.Contains(errOut, "no-such-target") {
		t.Fatalf("unknown target: exit %d, stderr %q", code, errOut)
	}
	if code, _, _ := exec(); code != 2 {
		t.Fatalf("no targets: exit %d, want 2", code)
	}
	if code, _, _ := exec("compare", "only-one.json"); code != 2 {
		t.Fatalf("compare arity: exit %d, want 2", code)
	}
}

// TestCheckpointFlagValidationExitsTwo: the checkpoint flags follow
// the same up-front convention — a missing or malformed image and an
// uncreatable output path exit 2 before any cell runs.
func TestCheckpointFlagValidationExitsTwo(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "trunc.ckpt")
	if err := os.WriteFile(bad, []byte("HAMC\x01\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
	}{
		{"from-checkpoint missing file", []string{"-from-checkpoint", filepath.Join(dir, "gone.ckpt"), "sampled"}},
		{"from-checkpoint truncated image", []string{"-from-checkpoint", bad, "sampled"}},
		{"checkpoint uncreatable path", []string{"-checkpoint", filepath.Join(dir, "no", "such", "dir.ckpt"), "sampled"}},
	}
	for _, tc := range cases {
		code, _, errOut := exec(tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, errOut)
		}
		if errOut == "" {
			t.Errorf("%s: no diagnostic on stderr", tc.name)
		}
	}
}

// TestStaticTargetRuns: a full realMain pass over a static table —
// the cheapest end-to-end run — exits 0 and renders the table.
func TestStaticTargetRuns(t *testing.T) {
	code, out, errOut := exec("-scale", "1e-8", "table1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "Table I") {
		t.Fatalf("table not rendered:\n%s", out)
	}
}

// TestSplitQoSFlagsValues: the accepted assignment-list syntax maps to
// the JobSpec fields api.Validate then checks like any JSON body's.
func TestSplitQoSFlagsValues(t *testing.T) {
	masks, mbps, err := splitQoSFlags("latency=0xf0, stream=0b11", "stream=250")
	if err != nil {
		t.Fatal(err)
	}
	if masks["latency"] != "0xf0" || masks["stream"] != "0b11" || mbps["stream"] != 250 {
		t.Fatalf("parsed masks=%v mbps=%v", masks, mbps)
	}
	// "full" is legal mask syntax (the all-ways convention) and must
	// survive the flag split for Validate to accept downstream.
	masks, _, err = splitQoSFlags("latency=full", "")
	if err != nil || masks["latency"] != "full" {
		t.Fatalf("full mask: masks=%v err=%v", masks, err)
	}
	if m, b, err := splitQoSFlags("", ""); err != nil || m != nil || b != nil {
		t.Fatalf("empty flags: %v %v %v", m, b, err)
	}
}

// TestCLIMatchesAPI is the hamsbench half of the parity acceptance
// gate: the flag set and the equivalent POST /v1/jobs body must
// produce byte-identical canonical cell sets, because both roads lead
// through the same JobSpec builders and target dispatch.
func TestCLIMatchesAPI(t *testing.T) {
	artPath := filepath.Join(t.TempDir(), "cli.json")
	code, _, errOut := exec("-scale", "1e-7", "-seed", "7", "-parallel", "2",
		"-json", artPath, "mixed")
	if code != 0 {
		t.Fatalf("CLI exit %d, stderr: %s", code, errOut)
	}
	art, err := report.Load(artPath)
	if err != nil {
		t.Fatal(err)
	}
	spec := api.JobSpec{Kind: api.KindTarget, Targets: []string{"mixed"},
		Scale: 1e-7, Seed: 7, Parallel: 2}
	if err := api.Validate(spec); err != nil {
		t.Fatal(err)
	}
	cells, err := api.Execute(spec, api.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cli, apiCells := report.CanonicalCells(art.Cells), report.CanonicalCells(cells)
	if len(cli) == 0 || !reflect.DeepEqual(cli, apiCells) {
		t.Fatalf("CLI and API cells differ:\nCLI: %+v\nAPI: %+v", cli, apiCells)
	}
}

// TestProgressFlagStreamsCells: -progress emits one stderr line per
// cell without perturbing the result tables.
func TestProgressFlagStreamsCells(t *testing.T) {
	code, out, errOut := exec("-scale", "1e-8", "-progress", "table1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "Table I") {
		t.Fatalf("table not rendered:\n%s", out)
	}
	if !strings.Contains(errOut, "cell tables/table1") {
		t.Fatalf("no progress line on stderr:\n%s", errOut)
	}
}

// TestProfileFlagValidationExitsTwo pins the same up-front convention
// on the profiling flags: an uncreatable profile path must exit 2
// before any cell runs, not after the run it was meant to capture.
func TestProfileFlagValidationExitsTwo(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "p.out")
	for _, flag := range []string{"-cpuprofile", "-memprofile"} {
		code, _, errOut := exec(flag, bad, "table1")
		if code != 2 {
			t.Errorf("%s bad path: exit %d, want 2 (stderr: %s)", flag, code, errOut)
		}
		if !strings.Contains(errOut, flag) {
			t.Errorf("%s bad path: diagnostic %q does not name the flag", flag, errOut)
		}
	}
}

// TestProfileFlagsWriteProfiles: a real run with both profile flags
// exits 0 and leaves non-empty pprof files behind.
func TestProfileFlagsWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	heap := filepath.Join(dir, "heap.pprof")
	code, _, errOut := exec("-scale", "1e-8", "-cpuprofile", cpu, "-memprofile", heap, "table1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, p := range []string{cpu, heap} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// writeArtifact serializes a minimal single-cell artifact for compare
// tests.
func writeArtifact(t *testing.T, path string, workers int, simTP, hostTP float64) {
	t.Helper()
	art := report.Artifact{
		Schema: report.SchemaVersion, Name: "t", Scale: 1e-8, Seed: 42, Workers: workers,
		Cells: []report.Cell{{Key: "t/cell", Target: "t", UnitsPerSec: simTP, HostUnitsPerSec: hostTP}},
	}
	if err := report.WriteFile(path, art); err != nil {
		t.Fatal(err)
	}
}

// TestCompareHostThreshold: the wall-clock gate is off by default,
// rejects negative thresholds up front, fails only on regressions
// beyond the bar, and demands hermetic (serial) artifacts.
func TestCompareHostThreshold(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	slow := filepath.Join(dir, "slow.json")
	fast := filepath.Join(dir, "fast.json")
	par := filepath.Join(dir, "par.json")
	writeArtifact(t, base, 1, 100, 1000)
	writeArtifact(t, slow, 1, 100, 500) // 50% host regression, simulated unchanged
	writeArtifact(t, fast, 1, 100, 2000)
	writeArtifact(t, par, 4, 100, 1000)

	if code, _, errOut := exec("compare", "-host-threshold", "-0.1", base, slow); code != 2 {
		t.Fatalf("negative threshold: exit %d, want 2 (stderr: %s)", code, errOut)
	}
	// Off by default: a huge host regression alone must not fail.
	if code, _, errOut := exec("compare", base, slow); code != 0 {
		t.Fatalf("default compare: exit %d, stderr: %s", code, errOut)
	}
	if code, _, _ := exec("compare", "-host-threshold", "0.3", base, slow); code != 1 {
		t.Fatalf("50%% regression under 30%% bar: exit %d, want 1", code)
	}
	if code, _, errOut := exec("compare", "-host-threshold", "0.3", base, fast); code != 0 {
		t.Fatalf("improvement: exit %d, stderr: %s", code, errOut)
	}
	// Parallel artifacts are not hermetic; the gate must refuse them.
	if code, _, errOut := exec("compare", "-host-threshold", "0.3", base, par); code == 0 || !strings.Contains(errOut, "serial") {
		t.Fatalf("parallel artifact: exit %d, stderr %q", code, errOut)
	}
}

// TestCompareRejectsDivergentCellSets: a baseline whose cell set no
// longer matches the candidate's (targets added or removed) must fail
// with a diagnostic naming every stray key — never silently skip the
// unmatched cells and report a pass over the intersection.
func TestCompareRejectsDivergentCellSets(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cand := filepath.Join(dir, "cand.json")
	writeArtifact(t, base, 1, 100, 1000)
	art := report.Artifact{
		Schema: report.SchemaVersion, Name: "t", Scale: 1e-8, Seed: 42, Workers: 1,
		Cells: []report.Cell{
			{Key: "t/cell", Target: "t", UnitsPerSec: 100, HostUnitsPerSec: 1000},
			{Key: "autoqos/new", Target: "autoqos", UnitsPerSec: 50, HostUnitsPerSec: 500},
		},
	}
	if err := report.WriteFile(cand, art); err != nil {
		t.Fatal(err)
	}

	code, _, errOut := exec("compare", base, cand)
	if code != 1 {
		t.Fatalf("divergent cell sets: exit %d, want 1 (stderr: %s)", code, errOut)
	}
	if !strings.Contains(errOut, "diverge") || !strings.Contains(errOut, "+ autoqos/new") {
		t.Fatalf("diagnostic does not name the stray cell:\n%s", errOut)
	}
	if !strings.Contains(errOut, "regenerate the baseline") {
		t.Fatalf("diagnostic does not say how to fix it:\n%s", errOut)
	}

	// The reverse direction — a cell the baseline has but the candidate
	// lost — fails the same way.
	code, _, errOut = exec("compare", cand, base)
	if code != 1 || !strings.Contains(errOut, "- autoqos/new") {
		t.Fatalf("removed cell: exit %d, stderr:\n%s", code, errOut)
	}
}

// TestHelpExitsZero: -h prints usage and exits 0 (the ExitOnError
// behavior scripts rely on, preserved across the FlagSet refactor).
func TestHelpExitsZero(t *testing.T) {
	if code, _, _ := exec("-h"); code != 0 {
		t.Fatalf("-h exit %d, want 0", code)
	}
	if code, _, _ := exec("compare", "-h"); code != 0 {
		t.Fatalf("compare -h exit %d, want 0", code)
	}
}
