package main

import (
	"bytes"
	"strings"
	"testing"
)

// exec runs realMain with captured streams.
func exec(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = realMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestQoSFlagValidationExitsTwo pins PR 2's up-front validation
// convention on the new qos flags: malformed masks, throttles and
// unknown class names must exit 2 before any cell runs.
func TestQoSFlagValidationExitsTwo(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"malformed mask", []string{"-qos-masks", "latency=zz", "qos"}},
		{"empty mask value", []string{"-qos-masks", "latency=0x0", "qos"}},
		{"mask missing name", []string{"-qos-masks", "=0x3", "qos"}},
		{"mask repeated name", []string{"-qos-masks", "latency=0x3,latency=0xc", "qos"}},
		{"unknown mask class", []string{"-qos-masks", "nobody=0x3", "qos"}},
		{"mbps not a number", []string{"-qos-mbps", "stream=fast", "qos"}},
		{"mbps negative", []string{"-qos-mbps", "stream=-5", "qos"}},
		{"unknown mbps class", []string{"-qos-mbps", "nobody=100", "qos"}},
	}
	for _, tc := range cases {
		code, _, errOut := exec(tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, errOut)
		}
		if errOut == "" {
			t.Errorf("%s: no diagnostic on stderr", tc.name)
		}
	}
}

// TestTargetValidationExitsTwo: unknown targets and empty invocations
// fail before anything runs (pre-existing convention, re-pinned after
// the realMain refactor).
func TestTargetValidationExitsTwo(t *testing.T) {
	if code, _, errOut := exec("no-such-target"); code != 2 || !strings.Contains(errOut, "no-such-target") {
		t.Fatalf("unknown target: exit %d, stderr %q", code, errOut)
	}
	if code, _, _ := exec(); code != 2 {
		t.Fatalf("no targets: exit %d, want 2", code)
	}
	if code, _, _ := exec("compare", "only-one.json"); code != 2 {
		t.Fatalf("compare arity: exit %d, want 2", code)
	}
}

// TestStaticTargetRuns: a full realMain pass over a static table —
// the cheapest end-to-end run — exits 0 and renders the table.
func TestStaticTargetRuns(t *testing.T) {
	code, out, errOut := exec("-scale", "1e-8", "table1")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "Table I") {
		t.Fatalf("table not rendered:\n%s", out)
	}
}

// TestParseQoSFlagsValues: the accepted syntax maps to the override
// tables the qos target consumes.
func TestParseQoSFlagsValues(t *testing.T) {
	masks, mbps, err := parseQoSFlags("latency=0xf0, stream=0b11", "stream=250")
	if err != nil {
		t.Fatal(err)
	}
	if masks["latency"] != 0xf0 || masks["stream"] != 0b11 || mbps["stream"] != 250 {
		t.Fatalf("parsed masks=%v mbps=%v", masks, mbps)
	}
	// "full" un-partitions one class (0 = the all-ways convention).
	masks, _, err = parseQoSFlags("latency=full", "")
	if err != nil || masks["latency"] != 0 {
		t.Fatalf("full mask: masks=%v err=%v", masks, err)
	}
	if m, b, err := parseQoSFlags("", ""); err != nil || len(m) != 0 || len(b) != 0 {
		t.Fatalf("empty flags: %v %v %v", m, b, err)
	}
}

// TestHelpExitsZero: -h prints usage and exits 0 (the ExitOnError
// behavior scripts rely on, preserved across the FlagSet refactor).
func TestHelpExitsZero(t *testing.T) {
	if code, _, _ := exec("-h"); code != 0 {
		t.Fatalf("-h exit %d, want 0", code)
	}
	if code, _, _ := exec("compare", "-h"); code != 0 {
		t.Fatalf("compare -h exit %d, want 0", code)
	}
}
