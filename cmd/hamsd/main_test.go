package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hams/internal/api"
	"hams/internal/checkpoint"
	"hams/internal/replay"
	"hams/internal/report"
	"hams/internal/workload"
)

// newTestServer spins up the production handler over httptest.
func newTestServer(t *testing.T, cfg managerConfig) (*httptest.Server, *manager) {
	t.Helper()
	if cfg.Log == nil {
		cfg.Log = newLogger(io.Discard, "text")
	}
	m := newManager(cfg)
	ts := httptest.NewServer(newServer(m, cfg.Log).handler())
	t.Cleanup(func() {
		ts.Close()
		m.Drain()
		m.Wait()
	})
	return ts, m
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// submit posts a spec and returns the accepted status.
func submit(t *testing.T, ts *httptest.Server, spec api.JobSpec) api.JobStatus {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	var st api.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, ts *httptest.Server, id string) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st api.JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
		if terminal(st.State) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return api.JobStatus{}
}

// fetchCells reads the job's NDJSON cell stream to completion.
func fetchCells(t *testing.T, ts *httptest.Server, id string) []report.Cell {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/cells")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cells: status %d", resp.StatusCode)
	}
	var cells []report.Cell
	dec := json.NewDecoder(resp.Body)
	for {
		var c report.Cell
		if err := dec.Decode(&c); err == io.EOF {
			return cells
		} else if err != nil {
			t.Fatal(err)
		}
		cells = append(cells, c)
	}
}

// TestJobMatchesDirectExecution is the acceptance gate: a mixed job
// submitted over HTTP yields cells byte-identical to a direct
// api.Execute with the same spec.
func TestJobMatchesDirectExecution(t *testing.T) {
	ts, _ := newTestServer(t, managerConfig{})
	spec := api.JobSpec{Kind: api.KindTarget, Targets: []string{"mixed"},
		Scale: 1e-7, Seed: 42, Client: "ci"}
	st := submit(t, ts, spec)
	if st.State != api.StateQueued && st.State != api.StateRunning {
		t.Fatalf("fresh job state %q", st.State)
	}
	final := waitJob(t, ts, st.ID)
	if final.State != api.StateDone {
		t.Fatalf("job %s: %s (%s)", st.ID, final.State, final.Error)
	}
	got := fetchCells(t, ts, st.ID)
	want, err := api.Execute(spec, api.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || !reflect.DeepEqual(report.CanonicalCells(got), report.CanonicalCells(want)) {
		t.Fatalf("HTTP cells != direct cells:\nHTTP: %+v\ndirect: %+v", got, want)
	}
	if final.Cells != len(want) {
		t.Fatalf("status cells = %d, want %d", final.Cells, len(want))
	}
}

// TestConcurrentBurstUnderDrain is the second acceptance gate: >= 8
// concurrent submissions all complete correctly, and a drain afterward
// 503s new work while the accepted jobs' results stay intact.
func TestConcurrentBurstUnderDrain(t *testing.T) {
	ts, m := newTestServer(t, managerConfig{MaxActive: 3})
	const n = 9
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := api.JobSpec{Kind: api.KindRun, Platform: "hams-LE",
				Workload: "seqRd", Scale: 1e-8, Seed: int64(i + 1),
				Client: fmt.Sprintf("c%d", i%3)}
			ids[i] = submit(t, ts, spec).ID
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		st := waitJob(t, ts, id)
		if st.State != api.StateDone {
			t.Fatalf("job %d (%s): %s (%s)", i, id, st.State, st.Error)
		}
		cells := fetchCells(t, ts, id)
		if len(cells) != 1 || cells[0].Key != "run/seqRd@hams-LE" {
			t.Fatalf("job %d cells: %+v", i, cells)
		}
	}
	m.Drain()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", api.JobSpec{
		Kind: api.KindRun, Platform: "hams-LE", Workload: "seqRd", Scale: 1e-8})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d: %s", resp.StatusCode, body)
	}
	// Accepted results survive the drain flag.
	if st := waitJob(t, ts, ids[0]); st.State != api.StateDone {
		t.Fatalf("drain clobbered job state: %s", st.State)
	}
}

// TestGracefulDrainFinishesInFlight: a job mid-run when the drain
// starts still completes, its stream delivering every cell.
func TestGracefulDrainFinishesInFlight(t *testing.T) {
	ts, m := newTestServer(t, managerConfig{})
	release := make(chan struct{})
	m.exec = func(spec api.JobSpec, eo api.ExecOptions) ([]report.Cell, error) {
		cells := []report.Cell{{Key: "fake/a"}, {Key: "fake/b"}}
		if eo.Progress != nil {
			eo.Progress(cells[0])
		}
		<-release
		if eo.Progress != nil {
			eo.Progress(cells[1])
		}
		return cells, nil
	}
	st := submit(t, ts, api.JobSpec{Kind: api.KindRun, Platform: "hams-LE", Workload: "seqRd"})

	// Open the live stream before the job can finish.
	streamed := make(chan []report.Cell, 1)
	go func() {
		var cells []report.Cell
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/cells")
		if err == nil {
			dec := json.NewDecoder(resp.Body)
			for {
				var c report.Cell
				if dec.Decode(&c) != nil {
					break
				}
				cells = append(cells, c)
			}
			resp.Body.Close()
		}
		streamed <- cells
	}()
	// Let the stream attach, then drain while the job is blocked
	// mid-flight, then release it.
	time.Sleep(20 * time.Millisecond)
	m.Drain()
	close(release)
	if got := waitJob(t, ts, st.ID); got.State != api.StateDone {
		t.Fatalf("in-flight job after drain: %s (%s)", got.State, got.Error)
	}
	select {
	case cells := <-streamed:
		if len(cells) != 2 || cells[0].Key != "fake/a" || cells[1].Key != "fake/b" {
			t.Fatalf("streamed cells: %+v", cells)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not terminate")
	}
	m.Wait() // must not hang with the job finished
}

// TestAdmissionCap: per-client in-flight caps 429 the overflow while
// other clients stay admitted.
func TestAdmissionCap(t *testing.T) {
	ts, m := newTestServer(t, managerConfig{
		DefaultCap: 0, ClientCaps: map[string]int{"ci": 2},
	})
	release := make(chan struct{})
	m.exec = func(spec api.JobSpec, eo api.ExecOptions) ([]report.Cell, error) {
		<-release
		return []report.Cell{{Key: "fake"}}, nil
	}
	defer close(release)
	spec := api.JobSpec{Kind: api.KindRun, Platform: "hams-LE", Workload: "seqRd", Client: "ci"}
	a, b := submit(t, ts, spec), submit(t, ts, spec)
	resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third ci job: %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "in-flight") {
		t.Fatalf("429 body: %s", body)
	}
	// A different client (unlimited default) is still admitted.
	other := spec
	other.Client = "adhoc"
	c := submit(t, ts, other)
	for _, id := range []string{a.ID, b.ID, c.ID} {
		if id == "" {
			t.Fatal("missing job id")
		}
	}
}

// TestCancelQueuedJob: a canceled queued job never runs a cell.
func TestCancelQueuedJob(t *testing.T) {
	ts, m := newTestServer(t, managerConfig{MaxActive: 1})
	release := make(chan struct{})
	var ran sync.Map
	m.exec = func(spec api.JobSpec, eo api.ExecOptions) ([]report.Cell, error) {
		ran.Store(spec.Seed, true)
		<-release
		return nil, nil
	}
	defer close(release)
	spec := api.JobSpec{Kind: api.KindRun, Platform: "hams-LE", Workload: "seqRd"}
	blocker := submit(t, ts, spec)
	queued := spec
	queued.Seed = 7
	victim := submit(t, ts, queued)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+victim.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := waitJob(t, ts, victim.ID); st.State != api.StateCanceled {
		t.Fatalf("canceled job state: %s", st.State)
	}
	if _, ok := ran.Load(int64(7)); ok {
		t.Fatal("canceled queued job still executed")
	}
	_ = blocker
}

// TestTraceUploadAndScenario: an uploaded container is addressable by
// ID from a scenario job's tenants.
func TestTraceUploadAndScenario(t *testing.T) {
	ts, _ := newTestServer(t, managerConfig{})
	var buf bytes.Buffer
	o := workload.DefaultOptions()
	o.Scale = 1e-7
	o.Seed = 42
	if _, err := replay.RecordWorkload(&buf, "seqRd", o, replay.AllThreads); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d: %s", resp.StatusCode, body)
	}
	var up struct {
		ID      string `json:"id"`
		Steps   int64  `json:"steps"`
		Threads int    `json:"threads"`
	}
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.ID == "" || up.Steps == 0 || up.Threads == 0 {
		t.Fatalf("upload response: %s", body)
	}
	st := submit(t, ts, api.JobSpec{Kind: api.KindScenario, Platform: "hams-LE",
		Name: "replayed", Tenants: []api.TenantSpec{{Trace: up.ID}}})
	final := waitJob(t, ts, st.ID)
	if final.State != api.StateDone {
		t.Fatalf("scenario job: %s (%s)", final.State, final.Error)
	}
	cells := fetchCells(t, ts, st.ID)
	if len(cells) != 1 || cells[0].Key != "mixed/replayed@hams-LE" {
		t.Fatalf("scenario cells: %+v", cells)
	}
	// A bogus reference fails the job with a useful error, not a hang.
	bad := submit(t, ts, api.JobSpec{Kind: api.KindScenario, Platform: "hams-LE",
		Tenants: []api.TenantSpec{{Trace: "upload-999"}}})
	if final := waitJob(t, ts, bad.ID); final.State != api.StateFailed ||
		!strings.Contains(final.Error, "unknown trace") {
		t.Fatalf("bogus trace job: %s (%s)", final.State, final.Error)
	}
}

// TestCheckpointUploadAndRestore: an uploaded checkpoint image is
// addressable by ID from a scenario job, and the restored job's cell
// is byte-identical to the same scenario run live with a warm-up
// phase — the restore≡live guarantee through the whole HTTP stack.
func TestCheckpointUploadAndRestore(t *testing.T) {
	ts, _ := newTestServer(t, managerConfig{})
	// Explicit tenant seeds keep the engine's per-cell seed derivation
	// out of the picture: the in-process warm-up below and the hamsd
	// job rebuild identical streams from the spec alone.
	spec := api.JobSpec{Kind: api.KindScenario, Platform: "hams-LE",
		Name: "restored", Scale: 1e-6,
		Tenants: []api.TenantSpec{{Name: "seqRd", Workload: "seqRd", Seed: 7}}}
	// seqRd at this scale runs ~300 steps/thread: warm up a third,
	// leaving a real measured phase to compare.
	const warmup = 100
	warmSpec := spec
	warmSpec.Warmup = warmup
	sc, err := warmSpec.Scenario(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	img, err := replay.Warmup(sc, replay.Options{Scale: spec.Scale})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := checkpoint.Encode(&buf, img); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/checkpoints", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d: %s", resp.StatusCode, body)
	}
	var up struct {
		ID       string `json:"id"`
		Platform string `json:"platform"`
		Warmup   int64  `json:"warmup"`
		Sections int    `json:"sections"`
	}
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.ID == "" || up.Platform != "hams-LE" || up.Warmup != warmup || up.Sections == 0 {
		t.Fatalf("upload response: %s", body)
	}

	restoredSpec := spec
	restoredSpec.Checkpoint = up.ID
	restored := waitJob(t, ts, submit(t, ts, restoredSpec).ID)
	if restored.State != api.StateDone {
		t.Fatalf("restored job: %s (%s)", restored.State, restored.Error)
	}
	live := waitJob(t, ts, submit(t, ts, warmSpec).ID)
	if live.State != api.StateDone {
		t.Fatalf("live job: %s (%s)", live.State, live.Error)
	}
	rc := fetchCells(t, ts, restored.ID)
	lc := fetchCells(t, ts, live.ID)
	if len(rc) != 1 || rc[0].Key != "mixed/restored@hams-LE" {
		t.Fatalf("restored cells: %+v", rc)
	}
	if rc[0].Extra["units:seqRd"] == 0 {
		t.Fatalf("restored cell has an empty measured phase: %+v", rc[0])
	}
	// Host wall-clock and its derived throughput are the only
	// nondeterministic cell fields.
	rc[0].WallNS, lc[0].WallNS = 0, 0
	rc[0].HostUnitsPerSec, lc[0].HostUnitsPerSec = 0, 0
	if !reflect.DeepEqual(rc, lc) {
		t.Fatalf("restored cell diverged from live phase-split run:\nrestored: %+v\nlive:     %+v", rc, lc)
	}

	// A bogus reference fails the job with a useful error, not a hang.
	badSpec := spec
	badSpec.Checkpoint = "ckpt-999"
	if final := waitJob(t, ts, submit(t, ts, badSpec).ID); final.State != api.StateFailed ||
		!strings.Contains(final.Error, "unknown checkpoint") {
		t.Fatalf("bogus checkpoint job: %s (%s)", final.State, final.Error)
	}

	// A malformed image is a 400 at upload time, never stored.
	resp, err = http.Post(ts.URL+"/v1/checkpoints", "application/octet-stream",
		strings.NewReader("HAMCgarbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed upload: %d", resp.StatusCode)
	}
}

// TestValidationReturns400: malformed bodies and specs produce the
// structured field-error JSON.
func TestValidationReturns400(t *testing.T) {
	ts, _ := newTestServer(t, managerConfig{})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", api.JobSpec{Kind: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad kind: %d", resp.StatusCode)
	}
	var eb struct {
		Errors []struct {
			Field string `json:"field"`
			Error string `json:"error"`
		} `json:"errors"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || len(eb.Errors) == 0 {
		t.Fatalf("400 body not structured: %s (%v)", body, err)
	}
	if eb.Errors[0].Field != "kind" {
		t.Fatalf("field = %q, want kind", eb.Errors[0].Field)
	}
	// A policy timeline scheduled at t=0 (or in the past) is rejected
	// up front — the initial table IS the t=0 state.
	spec := api.JobSpec{Kind: api.KindScenario, Platform: "hams-LE", Name: "pair",
		Tenants: []api.TenantSpec{{Name: "a", Workload: "rndRd", Class: "bulk"}},
		QoS:     []api.ClassSpec{{Name: "bulk"}},
		QoSPolicy: []api.PolicyChangeSpec{
			{AtNS: 0, Class: "bulk", WayMask: "0x1"},
		}}
	resp, body = postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("t=0 policy change: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "qos_policy[0].at_ns") {
		t.Fatalf("400 body does not name the timeline field: %s", body)
	}
	// Unknown JSON fields are schema violations, not silently dropped.
	r2, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"run","platform":"hams-LE","workload":"seqRd","bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", r2.StatusCode)
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/job-999"); code != http.StatusNotFound {
		t.Fatalf("missing job: %d", code)
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestStatsAndMetrics: both views exist and carry job counts and
// worker utilization.
func TestStatsAndMetrics(t *testing.T) {
	ts, _ := newTestServer(t, managerConfig{Workers: 2})
	st := submit(t, ts, api.JobSpec{Kind: api.KindRun, Platform: "hams-LE",
		Workload: "seqRd", Scale: 1e-8, Client: "ci"})
	waitJob(t, ts, st.ID)
	var stats statsSnapshot
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Jobs[api.StateDone] != 1 || stats.Workers != 2 {
		t.Fatalf("stats: %+v", stats)
	}
	cs, ok := stats.Clients["ci"]
	if !ok || cs.Done != 1 || cs.P50MS < 0 {
		t.Fatalf("client stats: %+v", stats.Clients)
	}
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		`hamsd_jobs{state="done"} 1`,
		"hamsd_workers 2",
		"hamsd_cells_completed_total",
		`hamsd_job_duration_ms{client="ci",quantile="0.5"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", code, body)
	}
}

// TestExampleSpecsValidate: the committed walkthrough bodies stay
// valid and decodable under DisallowUnknownFields.
func TestExampleSpecsValidate(t *testing.T) {
	paths, err := filepath.Glob("../../examples/hamsd/*.json")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example specs found: %v", err)
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		dec := json.NewDecoder(f)
		dec.DisallowUnknownFields()
		var spec api.JobSpec
		if err := dec.Decode(&spec); err != nil {
			t.Errorf("%s: %v", path, err)
		}
		f.Close()
		if err := api.Validate(spec); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}

// TestEnvConfig: defaults, overrides, and malformed values.
func TestEnvConfig(t *testing.T) {
	env := func(m map[string]string) func(string) string {
		return func(k string) string { return m[k] }
	}
	cfg, err := envConfig(env(nil))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Addr != ":8080" || cfg.StatsPeriod != 10*time.Second ||
		cfg.DrainTimeout != 30*time.Second || cfg.LogFormat != "json" {
		t.Fatalf("defaults: %+v", cfg)
	}
	cfg, err = envConfig(env(map[string]string{
		"HAMSD_ADDR": ":9090", "HAMSD_WORKERS": "4", "HAMSD_MAX_JOBS": "2",
		"HAMSD_CLIENT_CAP": "8", "HAMSD_CLIENT_CAPS": "ci=8,adhoc=2",
		"HAMSD_STATS_PERIOD": "1s", "HAMSD_DRAIN_TIMEOUT": "5s", "HAMSD_LOG": "text",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 4 || cfg.MaxJobs != 2 || cfg.ClientCap != 8 ||
		cfg.ClientCaps["ci"] != 8 || cfg.ClientCaps["adhoc"] != 2 ||
		cfg.StatsPeriod != time.Second || cfg.LogFormat != "text" {
		t.Fatalf("overrides: %+v", cfg)
	}
	for name, bad := range map[string]map[string]string{
		"workers":     {"HAMSD_WORKERS": "-1"},
		"caps syntax": {"HAMSD_CLIENT_CAPS": "ci"},
		"caps value":  {"HAMSD_CLIENT_CAPS": "ci=lots"},
		"period":      {"HAMSD_STATS_PERIOD": "soon"},
		"log":         {"HAMSD_LOG": "xml"},
	} {
		if _, err := envConfig(env(bad)); err == nil {
			t.Errorf("%s: bad env accepted", name)
		}
	}
}
