package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"hams/internal/api"
	"hams/internal/checkpoint"
	"hams/internal/report"
	"hams/internal/runner"
	"hams/internal/trace"
)

// Submission-time admission errors; the HTTP layer maps them to 503
// and 429.
var (
	errDraining = errors.New("hamsd: draining, not accepting new jobs")
	errOverCap  = errors.New("hamsd: client over its in-flight job cap")
)

// job is one submitted JobSpec's lifecycle. Cells arrive twice: in
// completion order while running (streamed, the live NDJSON feed) and
// in canonical order once done (final, what a late GET serves — the
// byte-identical-to-CLI ordering). Both hold the same set.
type job struct {
	id string

	mu       sync.Mutex
	changed  chan struct{} // closed and replaced on every update
	spec     api.JobSpec
	client   string
	state    string
	errMsg   string
	submit   time.Time
	started  time.Time
	finished time.Time
	streamed []report.Cell
	final    []report.Cell
	cancel   context.CancelFunc
}

// notify must be called with j.mu held.
func (j *job) notify() {
	close(j.changed)
	j.changed = make(chan struct{})
}

func (j *job) addCell(c report.Cell) {
	j.mu.Lock()
	j.streamed = append(j.streamed, c)
	j.notify()
	j.mu.Unlock()
}

func terminal(state string) bool {
	return state == api.StateDone || state == api.StateFailed || state == api.StateCanceled
}

func (j *job) status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := len(j.streamed)
	if j.final != nil {
		n = len(j.final)
	}
	return api.JobStatus{
		ID: j.id, State: j.state, Kind: j.spec.Kind, Client: j.client,
		Cells: n, Submitted: j.submit, Started: j.started, Finished: j.finished,
		Error: j.errMsg,
	}
}

// next returns the cells past index i, whether the job is terminal,
// and a channel that closes on the next update — the snapshot a
// streaming handler loops on.
func (j *job) next(i int) (cells []report.Cell, done bool, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i == 0 && j.final != nil {
		// Nothing streamed yet and the job already finished: serve the
		// canonical ordering directly.
		return append([]report.Cell(nil), j.final...), true, j.changed
	}
	if i < len(j.streamed) {
		cells = append(cells, j.streamed[i:]...)
	}
	return cells, terminal(j.state), j.changed
}

// traceStore holds uploaded trace containers by ID — the hamsd side
// of api.TraceResolver. IDs, not paths: a job body must not be able to
// read arbitrary daemon-filesystem files.
type traceStore struct {
	mu   sync.Mutex
	seq  int
	byID map[string]*trace.File
}

func newTraceStore() *traceStore { return &traceStore{byID: make(map[string]*trace.File)} }

func (s *traceStore) Put(tf *trace.File) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id := fmt.Sprintf("upload-%d", s.seq)
	s.byID[id] = tf
	return id
}

func (s *traceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

func (s *traceStore) Trace(ref string) (*trace.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tf, ok := s.byID[ref]
	if !ok {
		return nil, fmt.Errorf("hamsd: unknown trace %q (upload it via POST /v1/traces first)", ref)
	}
	return tf, nil
}

// checkpointStore holds uploaded checkpoint images by ID — the hamsd
// side of api.CheckpointResolver. IDs, not paths, exactly like traces:
// a job body must not be able to read arbitrary daemon-filesystem
// files.
type checkpointStore struct {
	mu   sync.Mutex
	seq  int
	byID map[string]*checkpoint.Image
}

func newCheckpointStore() *checkpointStore {
	return &checkpointStore{byID: make(map[string]*checkpoint.Image)}
}

func (s *checkpointStore) Put(img *checkpoint.Image) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id := fmt.Sprintf("ckpt-%d", s.seq)
	s.byID[id] = img
	return id
}

func (s *checkpointStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

func (s *checkpointStore) Checkpoint(ref string) (*checkpoint.Image, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	img, ok := s.byID[ref]
	if !ok {
		return nil, fmt.Errorf("hamsd: unknown checkpoint %q (upload it via POST /v1/checkpoints first)", ref)
	}
	return img, nil
}

// managerConfig sizes the manager; see envConfig for the variables.
type managerConfig struct {
	Workers    int            // shared cell pool size (<=0 = GOMAXPROCS)
	MaxActive  int            // jobs simulating concurrently (<=0 = 4)
	DefaultCap int            // per-client queued+running cap (<=0 = unlimited)
	ClientCaps map[string]int // per-client overrides of DefaultCap
	Log        *slog.Logger
}

// manager owns the job table, the shared worker pool and admission
// control. One pool serves every job — per-job worker counts in specs
// are ignored server-side — so N concurrent jobs multiplex onto a
// fixed simulation capacity instead of oversubscribing the host.
type manager struct {
	log         *slog.Logger
	pool        *runner.Pool
	traces      *traceStore
	checkpoints *checkpointStore
	sem         chan struct{}
	defCap      int
	caps        map[string]int

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string
	seq       int
	inflight  map[string]int       // queued+running per client
	durations map[string][]float64 // finished-job wall ms per client
	draining  bool
	wg        sync.WaitGroup

	// exec is the job executor (api.Execute), swappable in tests to
	// pin scheduling behavior without simulating anything.
	exec func(api.JobSpec, api.ExecOptions) ([]report.Cell, error)
}

func newManager(cfg managerConfig) *manager {
	maxActive := cfg.MaxActive
	if maxActive <= 0 {
		maxActive = 4
	}
	log := cfg.Log
	if log == nil {
		log = slog.Default()
	}
	return &manager{
		log:         log,
		pool:        runner.NewPool(cfg.Workers),
		traces:      newTraceStore(),
		checkpoints: newCheckpointStore(),
		sem:         make(chan struct{}, maxActive),
		defCap:      cfg.DefaultCap,
		caps:        cfg.ClientCaps,
		jobs:        make(map[string]*job),
		inflight:    make(map[string]int),
		durations:   make(map[string][]float64),
		exec:        api.Execute,
	}
}

func clientName(spec api.JobSpec) string {
	if spec.Client == "" {
		return "default"
	}
	return spec.Client
}

func (m *manager) capFor(client string) int {
	if c, ok := m.caps[client]; ok {
		return c
	}
	return m.defCap
}

// Submit validates admission (drain state, per-client cap), registers
// the job and starts its lifecycle goroutine. The spec must already
// have passed api.Validate.
func (m *manager) Submit(spec api.JobSpec) (*job, error) {
	client := clientName(spec)
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, errDraining
	}
	if c := m.capFor(client); c > 0 && m.inflight[client] >= c {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d in flight)", errOverCap, m.inflight[client])
	}
	m.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:      fmt.Sprintf("job-%d", m.seq),
		changed: make(chan struct{}),
		spec:    spec,
		client:  client,
		state:   api.StateQueued,
		submit:  time.Now(),
		cancel:  cancel,
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.inflight[client]++
	m.wg.Add(1)
	m.mu.Unlock()
	m.log.Info("job submitted", "job", j.id, "kind", spec.Kind, "client", client)
	go m.run(ctx, j)
	return j, nil
}

func (m *manager) run(ctx context.Context, j *job) {
	defer m.wg.Done()
	// Queued until a running slot frees up; a cancel while queued never
	// simulates a cell.
	select {
	case m.sem <- struct{}{}:
	case <-ctx.Done():
		m.finish(j, nil, ctx.Err())
		return
	}
	defer func() { <-m.sem }()

	j.mu.Lock()
	if terminal(j.state) { // canceled between slot grant and start
		j.mu.Unlock()
		return
	}
	j.state = api.StateRunning
	j.started = time.Now()
	j.notify()
	j.mu.Unlock()

	cells, err := m.exec(j.spec, api.ExecOptions{
		Ctx:         ctx,
		Runner:      m.pool,
		Traces:      m.traces,
		Checkpoints: m.checkpoints,
		Progress:    j.addCell,
	})
	m.finish(j, cells, err)
}

// finish moves a job to its terminal state and releases its admission
// slot.
func (m *manager) finish(j *job, cells []report.Cell, err error) {
	j.mu.Lock()
	if terminal(j.state) {
		j.mu.Unlock()
		return
	}
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = api.StateDone
		j.final = cells
	case errors.Is(err, context.Canceled):
		j.state = api.StateCanceled
		j.errMsg = "canceled"
	default:
		j.state = api.StateFailed
		j.errMsg = err.Error()
	}
	state, client := j.state, j.client
	var wallMS float64
	if !j.started.IsZero() {
		wallMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	j.notify()
	j.mu.Unlock()

	m.mu.Lock()
	m.inflight[client]--
	if m.inflight[client] <= 0 {
		delete(m.inflight, client)
	}
	if state == api.StateDone {
		m.durations[client] = append(m.durations[client], wallMS)
	}
	m.mu.Unlock()
	if err != nil && state == api.StateFailed {
		m.log.Warn("job failed", "job", j.id, "client", client, "err", err)
	} else {
		m.log.Info("job "+state, "job", j.id, "client", client, "cells", len(cells), "wall_ms", int64(wallMS))
	}
}

func (m *manager) Get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns every job's status in submission order.
func (m *manager) Jobs() []api.JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*job, len(ids))
	for i, id := range ids {
		jobs[i] = m.jobs[id]
	}
	m.mu.Unlock()
	out := make([]api.JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// Cancel stops a job: a queued job never runs; a running job stops
// dispatching new cells (in-flight cells complete — the simulator core
// does not poll the context).
func (m *manager) Cancel(id string) bool {
	j, ok := m.Get(id)
	if !ok {
		return false
	}
	j.cancel()
	return true
}

// Drain refuses new submissions; already-accepted jobs keep running.
func (m *manager) Drain() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

func (m *manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Wait blocks until every accepted job reaches a terminal state, then
// shuts the worker pool down.
func (m *manager) Wait() {
	m.wg.Wait()
	m.pool.Close()
}

// quantile is the nearest-rank percentile of an unsorted sample set.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// clientStats is one client's admission and service-latency view.
type clientStats struct {
	Inflight int     `json:"inflight"`
	Cap      int     `json:"cap,omitempty"` // 0 = unlimited
	Done     int     `json:"done"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// statsSnapshot is the GET /v1/stats body and the 10s log line's
// source.
type statsSnapshot struct {
	Jobs        map[string]int         `json:"jobs"` // state -> count
	Workers     int                    `json:"workers"`
	Busy        int                    `json:"workers_busy"`
	Cells       int64                  `json:"cells_completed"`
	Traces      int                    `json:"traces"`
	Checkpoints int                    `json:"checkpoints"`
	Clients     map[string]clientStats `json:"clients"`
	Draining    bool                   `json:"draining"`
}

func (m *manager) Stats() statsSnapshot {
	s := statsSnapshot{
		Jobs: map[string]int{
			api.StateQueued: 0, api.StateRunning: 0, api.StateDone: 0,
			api.StateFailed: 0, api.StateCanceled: 0,
		},
		Workers:     m.pool.Workers(),
		Busy:        m.pool.Busy(),
		Cells:       m.pool.Completed(),
		Traces:      m.traces.Len(),
		Checkpoints: m.checkpoints.Len(),
		Clients:     make(map[string]clientStats),
	}
	for _, st := range m.Jobs() {
		s.Jobs[st.State]++
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s.Draining = m.draining
	seen := make(map[string]bool)
	for c := range m.inflight {
		seen[c] = true
	}
	for c := range m.durations {
		seen[c] = true
	}
	for c := range seen {
		ds := append([]float64(nil), m.durations[c]...)
		sort.Float64s(ds)
		s.Clients[c] = clientStats{
			Inflight: m.inflight[c],
			Cap:      m.capFor(c),
			Done:     len(ds),
			P50MS:    quantile(ds, 0.50),
			P95MS:    quantile(ds, 0.95),
			P99MS:    quantile(ds, 0.99),
		}
	}
	return s
}
