package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"time"

	"hams/internal/api"
	"hams/internal/checkpoint"
	"hams/internal/trace"
)

// maxBodyBytes bounds request bodies: job specs are small; trace
// containers can be larger but a daemon must not buffer arbitrary
// uploads.
const maxBodyBytes = 64 << 20

// server wires the manager to the HTTP API. It is handler-first so
// httptest drives the identical mux production serves.
type server struct {
	m   *manager
	log *slog.Logger
}

func newServer(m *manager, log *slog.Logger) *server {
	if log == nil {
		log = slog.Default()
	}
	return &server{m: m, log: log}
}

// handler builds the versioned route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/cells", s.handleCells)
	mux.HandleFunc("POST /v1/traces", s.handleTraceUpload)
	mux.HandleFunc("POST /v1/checkpoints", s.handleCheckpointUpload)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is every non-2xx JSON response: the same field-error shape
// the CLIs render to stderr.
type errorBody struct {
	Errors api.Errors `json:"errors"`
}

func writeErrors(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Errors: api.AsErrors(err)})
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec api.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErrors(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	if err := api.Validate(spec); err != nil {
		writeErrors(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.m.Submit(spec)
	switch {
	case errors.Is(err, errDraining):
		writeErrors(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, errOverCap):
		writeErrors(w, http.StatusTooManyRequests, err)
		return
	case err != nil:
		writeErrors(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Jobs())
}

func (s *server) job(w http.ResponseWriter, r *http.Request) (*job, bool) {
	j, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeErrors(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
	}
	return j, ok
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	s.m.Cancel(j.id)
	writeJSON(w, http.StatusOK, j.status())
}

// handleCells streams the job's result cells as NDJSON: everything
// produced so far immediately, then one line per cell as it completes,
// ending when the job reaches a terminal state. A request arriving
// after completion gets the canonical (CLI-identical) ordering in one
// response.
func (s *server) handleCells(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	i := 0
	for {
		cells, done, changed := j.next(i)
		for _, c := range cells {
			if err := enc.Encode(c); err != nil {
				return
			}
			i++
		}
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleTraceUpload decodes a v2 container from the request body and
// stores it under a fresh ID scenario jobs can reference as
// tenants[i].trace.
func (s *server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	tf, err := trace.Decode(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErrors(w, http.StatusBadRequest, fmt.Errorf("decoding trace container: %w", err))
		return
	}
	id := s.m.traces.Put(tf)
	s.log.Info("trace uploaded", "trace", id, "name", tf.Name, "threads", len(tf.Threads), "steps", tf.Steps())
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":      id,
		"name":    tf.Name,
		"version": tf.Version,
		"threads": len(tf.Threads),
		"steps":   tf.Steps(),
	})
}

// handleCheckpointUpload decodes a checkpoint image from the request
// body and stores it under a fresh ID scenario jobs can reference as
// their checkpoint field — resolved by ID only, never as a daemon-side
// file path (the trace-upload rule).
func (s *server) handleCheckpointUpload(w http.ResponseWriter, r *http.Request) {
	img, err := checkpoint.Decode(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeErrors(w, http.StatusBadRequest, fmt.Errorf("decoding checkpoint image: %w", err))
		return
	}
	id := s.m.checkpoints.Put(img)
	s.log.Info("checkpoint uploaded", "checkpoint", id, "platform", img.Platform, "warmup", img.Warmup, "sections", len(img.Sections))
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":       id,
		"version":  img.Version,
		"platform": img.Platform,
		"sim_ns":   img.SimTime,
		"warmup":   img.Warmup,
		"sections": len(img.Sections),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Stats())
}

// handleMetrics renders the same snapshot in Prometheus text format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.m.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP hamsd_jobs Jobs by state.\n# TYPE hamsd_jobs gauge\n")
	states := make([]string, 0, len(st.Jobs))
	for state := range st.Jobs {
		states = append(states, state)
	}
	sort.Strings(states)
	for _, state := range states {
		fmt.Fprintf(w, "hamsd_jobs{state=%q} %d\n", state, st.Jobs[state])
	}
	fmt.Fprintf(w, "# HELP hamsd_workers Worker goroutines in the shared cell pool.\n# TYPE hamsd_workers gauge\nhamsd_workers %d\n", st.Workers)
	fmt.Fprintf(w, "# HELP hamsd_workers_busy Workers currently simulating a cell.\n# TYPE hamsd_workers_busy gauge\nhamsd_workers_busy %d\n", st.Busy)
	fmt.Fprintf(w, "# HELP hamsd_cells_completed_total Experiment cells completed since start.\n# TYPE hamsd_cells_completed_total counter\nhamsd_cells_completed_total %d\n", st.Cells)
	fmt.Fprintf(w, "# HELP hamsd_traces Uploaded trace containers held in memory.\n# TYPE hamsd_traces gauge\nhamsd_traces %d\n", st.Traces)
	fmt.Fprintf(w, "# HELP hamsd_checkpoints Uploaded checkpoint images held in memory.\n# TYPE hamsd_checkpoints gauge\nhamsd_checkpoints %d\n", st.Checkpoints)
	drain := 0
	if st.Draining {
		drain = 1
	}
	fmt.Fprintf(w, "# HELP hamsd_draining Whether the daemon refuses new jobs.\n# TYPE hamsd_draining gauge\nhamsd_draining %d\n", drain)
	clients := make([]string, 0, len(st.Clients))
	for c := range st.Clients {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	fmt.Fprintf(w, "# HELP hamsd_job_duration_ms Completed-job wall time quantiles per client.\n# TYPE hamsd_job_duration_ms summary\n")
	for _, c := range clients {
		cs := st.Clients[c]
		fmt.Fprintf(w, "hamsd_job_duration_ms{client=%q,quantile=\"0.5\"} %g\n", c, cs.P50MS)
		fmt.Fprintf(w, "hamsd_job_duration_ms{client=%q,quantile=\"0.95\"} %g\n", c, cs.P95MS)
		fmt.Fprintf(w, "hamsd_job_duration_ms{client=%q,quantile=\"0.99\"} %g\n", c, cs.P99MS)
		fmt.Fprintf(w, "hamsd_jobs_inflight{client=%q} %d\n", c, cs.Inflight)
	}
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.m.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// logStats emits the periodic aggregate line until stop closes.
func (s *server) logStats(period time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			st := s.m.Stats()
			s.log.Info("stats",
				"queued", st.Jobs[api.StateQueued],
				"running", st.Jobs[api.StateRunning],
				"done", st.Jobs[api.StateDone],
				"failed", st.Jobs[api.StateFailed],
				"workers", st.Workers,
				"busy", st.Busy,
				"cells", st.Cells,
			)
		case <-stop:
			return
		}
	}
}
