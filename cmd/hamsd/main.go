// Command hamsd serves HAMS as a long-running HTTP service: clients
// POST versioned JobSpec bodies (the same schema the CLIs assemble
// from flags — see internal/api), upload recorded trace containers,
// and stream per-cell results as they complete. One shared worker
// pool multiplexes every job; per-client in-flight caps provide
// admission control.
//
// API (see EXPERIMENTS.md for the walkthrough):
//
//	POST   /v1/jobs             submit an api.JobSpec        → 202 JobStatus
//	GET    /v1/jobs             list job statuses
//	GET    /v1/jobs/{id}        one job's status
//	DELETE /v1/jobs/{id}        cancel (queued never runs; running stops dispatch)
//	GET    /v1/jobs/{id}/cells  NDJSON stream of report.Cell results
//	POST   /v1/traces           upload a trace-v2 container  → 201 {"id": ...}
//	GET    /v1/stats            JSON aggregate statistics
//	GET    /metrics             Prometheus text format
//	GET    /healthz             liveness (503 while draining)
//
// Configuration is environment-only (twelve-factor style):
//
//	HAMSD_ADDR          listen address            (default ":8080")
//	HAMSD_WORKERS       shared pool worker count  (default 0 = GOMAXPROCS)
//	HAMSD_MAX_JOBS      jobs simulating at once   (default 4)
//	HAMSD_CLIENT_CAP    default per-client in-flight job cap (default 0 = unlimited)
//	HAMSD_CLIENT_CAPS   per-client overrides, e.g. "ci=8,adhoc=2"
//	HAMSD_STATS_PERIOD  aggregate-stats log period (default 10s)
//	HAMSD_DRAIN_TIMEOUT graceful-shutdown bound    (default 30s)
//	HAMSD_LOG           "json" (default) or "text"
//
// On SIGINT/SIGTERM the daemon drains: new submissions get 503,
// in-flight jobs and open streams finish (up to HAMSD_DRAIN_TIMEOUT),
// then the worker pool shuts down.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"hams/internal/qos"
)

type config struct {
	Addr         string
	Workers      int
	MaxJobs      int
	ClientCap    int
	ClientCaps   map[string]int
	StatsPeriod  time.Duration
	DrainTimeout time.Duration
	LogFormat    string
}

// envConfig reads the HAMSD_* environment; malformed values are
// validation errors (the daemon refuses to start half-configured).
func envConfig(getenv func(string) string) (config, error) {
	cfg := config{
		Addr:         ":8080",
		StatsPeriod:  10 * time.Second,
		DrainTimeout: 30 * time.Second,
		LogFormat:    "json",
	}
	if v := getenv("HAMSD_ADDR"); v != "" {
		cfg.Addr = v
	}
	for _, iv := range []struct {
		name string
		dst  *int
	}{
		{"HAMSD_WORKERS", &cfg.Workers},
		{"HAMSD_MAX_JOBS", &cfg.MaxJobs},
		{"HAMSD_CLIENT_CAP", &cfg.ClientCap},
	} {
		v := getenv(iv.name)
		if v == "" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return cfg, fmt.Errorf("%s: want a non-negative integer, got %q", iv.name, v)
		}
		*iv.dst = n
	}
	if v := getenv("HAMSD_CLIENT_CAPS"); v != "" {
		asn, err := qos.ParseAssignments(v)
		if err != nil {
			return cfg, fmt.Errorf("HAMSD_CLIENT_CAPS: %w", err)
		}
		cfg.ClientCaps = make(map[string]int, len(asn))
		for name, raw := range asn {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("HAMSD_CLIENT_CAPS: client %q: want a non-negative integer, got %q", name, raw)
			}
			cfg.ClientCaps[name] = n
		}
	}
	for _, dv := range []struct {
		name string
		dst  *time.Duration
	}{
		{"HAMSD_STATS_PERIOD", &cfg.StatsPeriod},
		{"HAMSD_DRAIN_TIMEOUT", &cfg.DrainTimeout},
	} {
		v := getenv(dv.name)
		if v == "" {
			continue
		}
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return cfg, fmt.Errorf("%s: want a positive duration (e.g. \"10s\"), got %q", dv.name, v)
		}
		*dv.dst = d
	}
	switch v := getenv("HAMSD_LOG"); v {
	case "", "json", "text":
		if v != "" {
			cfg.LogFormat = v
		}
	default:
		return cfg, fmt.Errorf("HAMSD_LOG: want \"json\" or \"text\", got %q", v)
	}
	return cfg, nil
}

func newLogger(w io.Writer, format string) *slog.Logger {
	if format == "text" {
		return slog.New(slog.NewTextHandler(w, nil))
	}
	return slog.New(slog.NewJSONHandler(w, nil))
}

func main() {
	os.Exit(realMain(os.Getenv, os.Stderr))
}

// realMain is main with injectable environment and log stream. It
// blocks until a termination signal completes the drain.
func realMain(getenv func(string) string, logw io.Writer) int {
	cfg, err := envConfig(getenv)
	if err != nil {
		fmt.Fprintf(logw, "hamsd: %v\n", err)
		return 2
	}
	log := newLogger(logw, cfg.LogFormat)

	m := newManager(managerConfig{
		Workers: cfg.Workers, MaxActive: cfg.MaxJobs,
		DefaultCap: cfg.ClientCap, ClientCaps: cfg.ClientCaps,
		Log: log,
	})
	srv := newServer(m, log)
	httpServer := &http.Server{
		Addr:              cfg.Addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	stop := make(chan struct{})
	go srv.logStats(cfg.StatsPeriod, stop)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	log.Info("hamsd listening", "addr", cfg.Addr, "workers", m.pool.Workers(),
		"max_jobs", cap(m.sem), "caps", fmt.Sprint(cfg.ClientCaps))

	select {
	case err := <-errCh:
		close(stop)
		log.Error("listen failed", "err", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting, let HTTP connections and accepted
	// jobs finish within the bound, then release the pool.
	log.Info("draining", "timeout", cfg.DrainTimeout.String())
	m.Drain()
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancelShutdown()
	if err := httpServer.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("shutdown", "err", err)
	}
	jobsDone := make(chan struct{})
	go func() { m.Wait(); close(jobsDone) }()
	select {
	case <-jobsDone:
	case <-shutdownCtx.Done():
		log.Warn("drain timeout: exiting with jobs still running")
		close(stop)
		return 1
	}
	close(stop)
	log.Info("hamsd stopped")
	return 0
}
