// Seeded maporder violation: the collected keys are never sorted, so
// callers observe randomized order.
package core

func Names(m map[string]int) []string {
	var names []string
	for name := range m {
		names = append(names, name)
	}
	return names
}
