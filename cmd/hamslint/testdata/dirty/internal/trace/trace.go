// Seeded wirebound violation: an allocation sized straight from a
// wire-read count with no bounds check.
package trace

import "encoding/binary"

type dec struct {
	buf []byte
	off int
}

func (d *dec) u32() uint32 {
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func Decode(buf []byte) []uint64 {
	d := &dec{buf: buf}
	n := d.u32()
	out := make([]uint64, n)
	return out
}
