// Seeded hostclock violation: wall-clock read inside the simulator.
package sim

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
