module dirty

go 1.24
