// Clean counterpart: virtual time advances from a config-carried
// seedable source, never the host clock.
package sim

import "math/rand"

type Config struct{ Seed int64 }

type Sim struct {
	now int64
	rng *rand.Rand
}

func New(cfg Config) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(cfg.Seed))}
}

func (s *Sim) Advance(ns int64) int64 {
	s.now += ns
	return s.now
}
