// The same shape as the dirty module's core package, written the way
// the contract asks: collect, then sort.
package core

import "sort"

func Names(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
