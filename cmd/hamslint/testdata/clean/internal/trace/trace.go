// Clean counterpart: the wire-read count is bounds-checked against
// the remaining buffer before it sizes an allocation.
package trace

import (
	"encoding/binary"
	"fmt"
)

type dec struct {
	buf []byte
	off int
}

func (d *dec) u32() uint32 {
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func Decode(buf []byte) ([]uint64, error) {
	d := &dec{buf: buf}
	n := d.u32()
	if int(n) > len(d.buf)/8 {
		return nil, fmt.Errorf("trace: count %d exceeds remaining payload", n)
	}
	out := make([]uint64, n)
	return out, nil
}
