package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// Protocol branches, in-process via realMain.

func TestProtocolVersion(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("-V=full exit %d, stderr %s", code, errb.String())
	}
	// cmd/go parses `<name> version <vers> buildID=<id>` (one line,
	// four fields) for its action cache key.
	fields := strings.Fields(strings.TrimSpace(out.String()))
	if len(fields) != 4 || fields[0] != "hamslint" || fields[1] != "version" ||
		!strings.HasPrefix(fields[3], "buildID=") {
		t.Fatalf("-V=full output %q does not match the vettool handshake", out.String())
	}
}

func TestProtocolFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-flags"}, &out, &errb); code != 0 {
		t.Fatalf("-flags exit %d", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("-flags output %q, want []", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain(nil, &out, &errb); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := realMain([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("unknown flag: exit %d, want 2", code)
	}
	out.Reset()
	if code := realMain([]string{"help"}, &out, &errb); code != 0 {
		t.Fatalf("help: exit %d", code)
	}
	for _, a := range []string{"maporder", "hostclock", "wirebound", "validatefirst", "statszero"} {
		if !strings.Contains(out.String(), a) {
			t.Errorf("help output missing analyzer %s", a)
		}
	}
}

// End-to-end: the built binary, standalone mode, against tiny
// self-contained modules under testdata/.

var buildOnce = struct {
	sync.Once
	bin string
	err error
}{}

func hamslintBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "hamslint-smoke")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "hamslint")
		out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
		if err != nil {
			buildOnce.err = err
			os.RemoveAll(dir)
			return
		}
		_ = out
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatalf("building hamslint: %v", buildOnce.err)
	}
	return buildOnce.bin
}

// runSmoke runs `hamslint ./...` inside the named testdata module,
// hermetically (no network, no parent module).
func runSmoke(t *testing.T, module string) (int, string) {
	t.Helper()
	cmd := exec.Command(hamslintBin(t), "./...")
	cmd.Dir = filepath.Join("testdata", module)
	cmd.Env = append(os.Environ(), "GOPROXY=off", "GOFLAGS=-mod=mod")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running hamslint in %s: %v\n%s", module, err, buf.String())
	}
	return code, buf.String()
}

func TestSmokeDirtyModuleFails(t *testing.T) {
	code, out := runSmoke(t, "dirty")
	if code != 1 {
		t.Fatalf("dirty module: exit %d, want 1\n%s", code, out)
	}
	// Each seeded violation produces a pointed file:line diagnostic
	// naming its analyzer.
	for _, want := range []struct{ file, analyzer string }{
		{"internal/core/core.go", "maporder"},
		{"internal/sim/sim.go", "hostclock"},
		{"internal/trace/trace.go", "wirebound"},
	} {
		hit := false
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, want.file+":") && strings.Contains(line, want.analyzer+":") {
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("no %s finding pointing at %s in:\n%s", want.analyzer, want.file, out)
		}
	}
}

func TestSmokeCleanModulePasses(t *testing.T) {
	code, out := runSmoke(t, "clean")
	if code != 0 {
		t.Fatalf("clean module: exit %d, want 0\n%s", code, out)
	}
}
