// Command hamslint is the repo's contract linter: a multichecker over
// the analyzers in internal/analysis/... (maporder, hostclock,
// wirebound, validatefirst, statszero) that machine-checks the
// determinism and wire-safety invariants every golden test assumes.
//
// It speaks the `go vet -vettool` protocol, so the canonical
// invocation — what CI runs — is:
//
//	go build -o /tmp/hamslint ./cmd/hamslint
//	go vet -vettool=/tmp/hamslint ./...
//
// vet hands the tool one type-checked compilation unit at a time (a
// JSON .cfg file naming sources and export data) and caches results
// per package, so incremental runs are cheap. Run directly with
// package patterns, hamslint re-invokes `go vet` on itself:
//
//	hamslint ./...
//
// Exit codes follow the repo convention: 0 clean, 1 findings (or
// failed build), 2 usage error. Suppressions are
// `//hamslint:allow <analyzer> — <reason>` on or above the offending
// line; see EXPERIMENTS.md "The determinism contract".
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"hams/internal/analysis"
	"hams/internal/analysis/suite"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with injectable args and streams (testable; exit
// codes: 0 clean, 1 findings or build failure, 2 usage error).
func realMain(args []string, stdout, stderr io.Writer) int {
	// The three vettool protocol entry points, exactly as cmd/go
	// drives them (see go/src/cmd/go/internal/vet/vetflag.go and
	// work/buildid.go): -V=full for cache keying, -flags for flag
	// discovery, and a single *.cfg argument per compilation unit.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			fmt.Fprintf(stdout, "hamslint version devel buildID=%s\n", selfID())
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnit(args[0], stderr)
		case args[0] == "help" || args[0] == "-h" || args[0] == "--help":
			usage(stdout)
			return 0
		}
	}
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			fmt.Fprintf(stderr, "hamslint: unknown flag %s\n", a)
			usage(stderr)
			return 2
		}
	}
	return runStandalone(args, stdout, stderr)
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: hamslint <packages>    # e.g. hamslint ./...
   or: go vet -vettool=$(which hamslint) <packages>

analyzers:
`)
	for _, a := range suite.Analyzers {
		fmt.Fprintf(w, "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprint(w, "\nsuppress a finding with: //hamslint:allow <analyzer> — <reason>\n")
}

// selfID hashes the executable so go vet's result cache invalidates
// whenever an analyzer changes (a fixed version string would let a
// stale cache mask new findings).
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// runStandalone re-invokes go vet with this binary as the vettool, so
// package loading, export data, and caching are all cmd/go's problem.
func runStandalone(patterns []string, stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "hamslint: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	if err := cmd.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); ok {
			return 1
		}
		fmt.Fprintf(stderr, "hamslint: running go vet: %v\n", err)
		return 1
	}
	return 0
}

// vetConfig mirrors the fields of cmd/go's vet .cfg JSON that the
// checker needs (see go/src/cmd/go/internal/work/exec.go vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one compilation unit described by a vet .cfg file.
func runUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "hamslint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "hamslint: decoding %s: %v\n", cfgPath, err)
		return 1
	}
	// Always write the facts file: cmd/go records it for downstream
	// vet runs, and its absence fails the build. hamslint's analyzers
	// are package-local, so the file is an empty placeholder.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "hamslint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler will report it better
			}
			fmt.Fprintf(stderr, "hamslint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Types come from the export data cmd/go already compiled —
	// exactly the unitchecker arrangement.
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compImp.Import(path)
	})
	tc := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "hamslint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	findings, err := analysis.RunPackage(fset, files, pkg, info, cfg.ModulePath, suite.Analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "hamslint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
