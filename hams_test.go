package hams

import (
	"bytes"
	"testing"
)

func smallConfig(m Mode, t Topology) Config {
	cfg := DefaultConfig(m, t)
	cfg.PageBytes = 16 * KiB
	cfg.PinnedBytes = 2 * MiB
	cfg.NVDIMM.DRAM.Capacity = 8 * MiB
	cfg.SSD.Geometry.BlocksPerPln = 64 // shrink the archive for tests
	cfg.SSD.BufferBytes = 1 * MiB
	if t == Tight {
		cfg.SSD.BufferBytes = 0
	}
	return cfg
}

func TestMoSReadWrite(t *testing.T) {
	m, err := New(smallConfig(Extend, Tight))
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("public API round trip")
	if _, err := m.Write(4096, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := m.Read(4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	if m.Now() <= 0 {
		t.Fatal("clock did not advance")
	}
	if m.Stats().Accesses != 2 {
		t.Fatalf("accesses = %d", m.Stats().Accesses)
	}
}

func TestMoSCapacityExceedsNVDIMM(t *testing.T) {
	m, err := New(smallConfig(Extend, Loose))
	if err != nil {
		t.Fatal(err)
	}
	if m.Capacity() <= uint64(8*MiB) {
		t.Fatalf("capacity %d does not expand beyond the NVDIMM", m.Capacity())
	}
}

func TestMoSPowerFailRecover(t *testing.T) {
	m, err := New(smallConfig(Extend, Tight))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("durable")
	if _, err := m.Write(0, payload); err != nil {
		t.Fatal(err)
	}
	// Conflict-evict page 0 so an NVMe write is in flight.
	entries := uint64((8*MiB - 2*MiB) / (16 * KiB))
	if _, err := m.Write(entries*16*KiB, []byte{1}); err != nil {
		t.Fatal(err)
	}
	m.PowerFail()
	rep, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
	got := make([]byte, len(payload))
	if _, err := m.Read(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("after recovery got %q", got)
	}
}

func TestMoSAdvanceNeverRewinds(t *testing.T) {
	m, err := New(smallConfig(Persist, Loose))
	if err != nil {
		t.Fatal(err)
	}
	m.Advance(100)
	m.Advance(-50)
	if m.Now() != 100 {
		t.Fatalf("Now = %v", m.Now())
	}
	if m.String() == "" {
		t.Fatal("String")
	}
}
