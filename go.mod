module hams

go 1.24
