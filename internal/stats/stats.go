// Package stats provides the result-presentation utilities shared by
// the experiment harness: fixed-width table rendering (the rows the
// paper's figures plot), latency histograms, and normalized-breakdown
// helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"hams/internal/sim"
)

// Table renders aligned rows for the harness output.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %g
// niceties applied by the caller via Fmt helpers.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "## %s\n", t.title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// F formats a float with 3 significant-ish decimals.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Ratio formats "x1.97"-style speedups.
func Ratio(v float64) string { return fmt.Sprintf("x%.2f", v) }

// Histogram accumulates latency samples into exponential buckets.
type Histogram struct {
	buckets []int64
	count   int64
	sum     sim.Time
	max     sim.Time
	samples []sim.Time // reservoir for percentiles
	sorted  []sim.Time // sorted reservoir, cached between observations
}

const histBuckets = 40

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]int64, histBuckets)}
}

// Add records one latency sample.
func (h *Histogram) Add(v sim.Time) {
	if v < 0 {
		v = 0
	}
	b := 0
	for x := v; x > 0 && b < histBuckets-1; x >>= 1 {
		b++
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < 4096 {
		h.samples = append(h.samples, v)
	} else {
		// Deterministic reservoir: overwrite pseudo-randomly.
		h.samples[int(h.count)%4096] = v
	}
	h.sorted = nil // invalidate the percentile cache
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the average latency.
func (h *Histogram) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Max returns the maximum sample.
func (h *Histogram) Max() sim.Time { return h.max }

// Percentile returns the nearest-rank percentile from the sample
// reservoir: the smallest sample x such that at least p% of the
// reservoir is <= x (rank = ceil(p/100 * n)). p is clamped to
// [0, 100]: p <= 0 returns the minimum sample, p >= 100 the maximum.
// An empty histogram returns 0.
//
// The sorted reservoir is cached between observations, so reading
// several percentiles (p50/p95/p99 per tenant per cell) sorts once,
// not once per call; the next Add invalidates the cache.
func (h *Histogram) Percentile(p float64) sim.Time {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if h.sorted == nil {
		h.sorted = append(h.sorted, h.samples...)
		sort.Slice(h.sorted, func(i, j int) bool { return h.sorted[i] < h.sorted[j] })
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1 // p <= 0: the minimum sample
	}
	if rank > n {
		rank = n // p >= 100: the maximum sample
	}
	return h.sorted[rank-1]
}

// Normalize scales values so that base maps to 1.0; used by the
// "normalized to mmap" figures.
func Normalize(values []float64, base float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		if base != 0 {
			out[i] = v / base
		}
	}
	return out
}

// Shares converts components to fractions of their sum.
func Shares(parts ...float64) []float64 {
	var sum float64
	for _, p := range parts {
		sum += p
	}
	out := make([]float64, len(parts))
	if sum <= 0 {
		return out
	}
	for i, p := range parts {
		out[i] = p / sum
	}
	return out
}
