package stats

import (
	"strings"
	"testing"

	"hams/internal/sim"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig. X", "workload", "mmap", "hams-TE")
	tb.AddRow("seqRd", "43.1", "109.4")
	tb.AddRow("rndWr", "12.0", "40.2")
	out := tb.String()
	if !strings.Contains(out, "## Fig. X") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: every data line must be at least as wide as the
	// header line's first column width.
	if !strings.HasPrefix(lines[3], "seqRd") {
		t.Fatalf("row mangled: %q", lines[3])
	}
}

func TestFormatters(t *testing.T) {
	if F(0) != "0" {
		t.Fatal("F(0)")
	}
	if F(12345) != "12345" {
		t.Fatalf("F(12345) = %s", F(12345))
	}
	if F(42.123) != "42.1" {
		t.Fatalf("F(42.123) = %s", F(42.123))
	}
	if F(1.23456) != "1.235" {
		t.Fatalf("F(1.23456) = %s", F(1.23456))
	}
	if Pct(0.943) != "94.3%" {
		t.Fatalf("Pct = %s", Pct(0.943))
	}
	if Ratio(1.97) != "x1.97" {
		t.Fatalf("Ratio = %s", Ratio(1.97))
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Add(sim.Time(i * 10))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != sim.Time(505) {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %v", h.Max())
	}
	p50 := h.Percentile(50)
	if p50 < 400 || p50 > 600 {
		t.Fatalf("P50 = %v", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 900 {
		t.Fatalf("P99 = %v", p99)
	}
	if h.Percentile(0) > h.Percentile(100) {
		t.Fatal("percentiles not monotone")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Add(-5)
	if h.Max() != 0 {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestHistogramEmptyPercentile(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must return zeros")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8}, 2)
	if out[0] != 1 || out[1] != 2 || out[2] != 4 {
		t.Fatalf("out = %v", out)
	}
	z := Normalize([]float64{1}, 0)
	if z[0] != 0 {
		t.Fatal("zero base must yield zeros")
	}
}

func TestShares(t *testing.T) {
	s := Shares(1, 1, 2)
	if s[0] != 0.25 || s[1] != 0.25 || s[2] != 0.5 {
		t.Fatalf("s = %v", s)
	}
	z := Shares(0, 0)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero-sum shares must be zeros")
	}
}
