package stats

import (
	"strings"
	"testing"

	"hams/internal/sim"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig. X", "workload", "mmap", "hams-TE")
	tb.AddRow("seqRd", "43.1", "109.4")
	tb.AddRow("rndWr", "12.0", "40.2")
	out := tb.String()
	if !strings.Contains(out, "## Fig. X") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: every data line must be at least as wide as the
	// header line's first column width.
	if !strings.HasPrefix(lines[3], "seqRd") {
		t.Fatalf("row mangled: %q", lines[3])
	}
}

func TestFormatters(t *testing.T) {
	if F(0) != "0" {
		t.Fatal("F(0)")
	}
	if F(12345) != "12345" {
		t.Fatalf("F(12345) = %s", F(12345))
	}
	if F(42.123) != "42.1" {
		t.Fatalf("F(42.123) = %s", F(42.123))
	}
	if F(1.23456) != "1.235" {
		t.Fatalf("F(1.23456) = %s", F(1.23456))
	}
	if Pct(0.943) != "94.3%" {
		t.Fatalf("Pct = %s", Pct(0.943))
	}
	if Ratio(1.97) != "x1.97" {
		t.Fatalf("Ratio = %s", Ratio(1.97))
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Add(sim.Time(i * 10))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != sim.Time(505) {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %v", h.Max())
	}
	p50 := h.Percentile(50)
	if p50 < 400 || p50 > 600 {
		t.Fatalf("P50 = %v", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 900 {
		t.Fatalf("P99 = %v", p99)
	}
	if h.Percentile(0) > h.Percentile(100) {
		t.Fatal("percentiles not monotone")
	}
}

// TestPercentileNearestRank pins the nearest-rank contract: the
// returned value is the smallest sample with at least p% of the
// reservoir at or below it — no truncation bias on small reservoirs.
func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		name string
		n    int // samples are 10, 20, ..., n*10
		p    float64
		want sim.Time
	}{
		// The old int(p/100*(n-1)) truncation returned 90 for p95 and
		// p99 on a 10-sample reservoir — biased a full rank low.
		{"p95 of 10", 10, 95, 100},
		{"p99 of 10", 10, 99, 100},
		{"p90 of 10", 10, 90, 90},
		{"p50 of 10", 10, 50, 50},
		{"p50 of 4", 4, 50, 20},
		{"p51 of 4", 4, 51, 30},
		{"p25 of 4", 4, 25, 10},
		{"p1 of 100", 100, 1, 10},
		{"p50 of 100", 100, 50, 500},
		{"p95 of 100", 100, 95, 950},
		{"p99 of 100", 100, 99, 990},
		{"p100 of 3", 3, 100, 30},
		{"single sample p1", 1, 1, 10},
		{"single sample p99", 1, 99, 10},
		// Clamped domain: p <= 0 is the minimum sample, p >= 100 the
		// maximum — out-of-range requests never panic or extrapolate.
		{"p0 is min", 10, 0, 10},
		{"negative p is min", 10, -5, 10},
		{"p100 is max", 10, 100, 100},
		{"p>100 is max", 10, 150, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram()
			for i := 1; i <= tc.n; i++ {
				h.Add(sim.Time(i * 10))
			}
			if got := h.Percentile(tc.p); got != tc.want {
				t.Fatalf("Percentile(%g) over %d samples = %v, want %v", tc.p, tc.n, got, tc.want)
			}
		})
	}
}

// TestPercentileCacheInvalidation: the sorted reservoir is cached
// across Percentile calls and must be rebuilt after the next Add.
func TestPercentileCacheInvalidation(t *testing.T) {
	h := NewHistogram()
	h.Add(10)
	h.Add(30)
	if got := h.Percentile(100); got != 30 {
		t.Fatalf("max = %v, want 30", got)
	}
	h.Add(50) // must invalidate the cached sort
	if got := h.Percentile(100); got != 50 {
		t.Fatalf("max after Add = %v, want 50 (stale percentile cache)", got)
	}
	if got := h.Percentile(0); got != 10 {
		t.Fatalf("min = %v, want 10", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Add(-5)
	if h.Max() != 0 {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestHistogramEmptyPercentile(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must return zeros")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 8}, 2)
	if out[0] != 1 || out[1] != 2 || out[2] != 4 {
		t.Fatalf("out = %v", out)
	}
	z := Normalize([]float64{1}, 0)
	if z[0] != 0 {
		t.Fatal("zero base must yield zeros")
	}
}

func TestShares(t *testing.T) {
	s := Shares(1, 1, 2)
	if s[0] != 0.25 || s[1] != 0.25 || s[2] != 0.5 {
		t.Fatalf("s = %v", s)
	}
	z := Shares(0, 0)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero-sum shares must be zeros")
	}
}
