package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// poolCells builds n cells computing i*i with stable keys.
func poolCells(prefix string, n int) []Cell {
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = Cell{
			Key: fmt.Sprintf("%s/%d", prefix, i),
			Fn:  func(ctx context.Context) (any, error) { return i * i, nil },
		}
	}
	return cells
}

// TestPoolMatchesEngine: a batch run on a shared pool returns exactly
// what a per-batch Engine returns — canonical order, same values.
func TestPoolMatchesEngine(t *testing.T) {
	cells := poolCells("sq", 17)
	want, err := Engine{Workers: 4}.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(3)
	defer p.Close()
	got, err := p.RunCells(context.Background(), cells, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pool returned %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || got[i].Value != want[i].Value {
			t.Fatalf("result %d = (%s, %v), want (%s, %v)", i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
}

// TestPoolConcurrentBatches: many batches share one pool without
// cross-talk; each batch's results stay canonical and complete.
func TestPoolConcurrentBatches(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const batches = 9
	var wg sync.WaitGroup
	errs := make([]error, batches)
	for b := 0; b < batches; b++ {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			cells := poolCells(fmt.Sprintf("b%d", b), 11)
			res, err := p.RunCells(context.Background(), cells, nil)
			if err != nil {
				errs[b] = err
				return
			}
			for i, r := range res {
				if r.Value != i*i {
					errs[b] = fmt.Errorf("batch %d cell %d = %v, want %d", b, i, r.Value, i*i)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Completed(); got != batches*11 {
		t.Fatalf("Completed() = %d, want %d", got, batches*11)
	}
}

// TestPoolBatchIsolation: one batch's error cancels its own remaining
// cells but leaves a concurrent batch untouched.
func TestPoolBatchIsolation(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	boom := errors.New("boom")
	bad := []Cell{
		{Key: "ok", Fn: func(ctx context.Context) (any, error) { return 1, nil }},
		{Key: "bad", Fn: func(ctx context.Context) (any, error) { return nil, boom }},
	}
	if _, err := p.RunCells(context.Background(), bad, nil); !errors.Is(err, boom) {
		t.Fatalf("bad batch error = %v, want %v", err, boom)
	}
	good, err := p.RunCells(context.Background(), poolCells("g", 5), nil)
	if err != nil {
		t.Fatalf("good batch after failed batch: %v", err)
	}
	if len(good) != 5 || good[4].Value != 16 {
		t.Fatalf("good batch results corrupted: %+v", good)
	}
}

// TestPoolOnResultFiresPerCell: the completion hook runs exactly once
// per cell and sees the stored result.
func TestPoolOnResultFiresPerCell(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var fired atomic.Int64
	res, err := p.RunCells(context.Background(), poolCells("h", 13), func(r Result) {
		if r.Err != nil {
			t.Errorf("hook saw error: %v", r.Err)
		}
		fired.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 13 || fired.Load() != 13 {
		t.Fatalf("results %d, hook fired %d, want 13/13", len(res), fired.Load())
	}
}

// TestPoolClosedRefusesWork: RunCells on a closed pool errors instead
// of deadlocking, and Close is idempotent.
func TestPoolClosedRefusesWork(t *testing.T) {
	p := NewPool(1)
	p.Close()
	p.Close()
	if _, err := p.RunCells(context.Background(), poolCells("x", 1), nil); err == nil {
		t.Fatal("RunCells on closed pool succeeded")
	}
}

// TestPoolCancelledContextStopsDispatch: a cancelled batch context
// stops dispatch and reports ctx.Err without wedging the pool.
func TestPoolCancelledContextStopsDispatch(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	cells := []Cell{
		{Key: "slow", Fn: func(ctx context.Context) (any, error) {
			close(started)
			<-release
			return 1, nil
		}},
		{Key: "never", Fn: func(ctx context.Context) (any, error) { return 2, nil }},
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.RunCells(ctx, cells, nil)
		done <- err
	}()
	<-started
	cancel()
	close(release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Pool must still serve new batches.
	if _, err := p.RunCells(context.Background(), poolCells("y", 3), nil); err != nil {
		t.Fatalf("pool wedged after cancelled batch: %v", err)
	}
}

// TestEngineOnResultHook: the per-batch Engine fires the same hook
// (the hamsbench -progress path) without changing results.
func TestEngineOnResultHook(t *testing.T) {
	var fired atomic.Int64
	res, err := Engine{Workers: 2}.RunCells(context.Background(), poolCells("e", 7), func(r Result) {
		fired.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 7 || fired.Load() != 7 {
		t.Fatalf("results %d, hook fired %d, want 7/7", len(res), fired.Load())
	}
	for i, r := range res {
		if r.Value != i*i {
			t.Fatalf("hook changed results: cell %d = %v", i, r.Value)
		}
	}
}
