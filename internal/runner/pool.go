package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a long-lived worker pool shared by many concurrent cell
// batches — the daemon-side counterpart of Engine, which spins up a
// fresh pool per Run call. hamsd submits every job's cells through one
// Pool so N simultaneous clients multiplex onto a fixed number of
// simulator workers instead of oversubscribing the host N-fold.
//
// The determinism contract is inherited from the package: a cell's
// output is a pure function of its inputs, so sharing workers across
// batches cannot change any batch's results — only their wall times.
// Each RunCells call keeps Engine's batch semantics (duplicate-key
// rejection, canonical-order results, first error cancels the batch's
// remaining undispatched cells, a cancelled ctx stops dispatch);
// batches are isolated: one batch's error or cancellation never
// affects another's cells.
type Pool struct {
	workers int
	items   chan func()

	mu     sync.Mutex
	closed bool
	subs   sync.WaitGroup // active RunCells calls
	wg     sync.WaitGroup // worker goroutines

	busy atomic.Int64 // cells executing right now
	done atomic.Int64 // cells completed over the pool's lifetime
}

// NewPool starts a pool with the given number of workers (<= 0 means
// GOMAXPROCS). Callers own the pool's lifecycle and must Close it.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, items: make(chan func())}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for run := range p.items {
				p.busy.Add(1)
				run()
				p.busy.Add(-1)
				p.done.Add(1)
			}
		}()
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Busy reports how many cells are executing right now (worker
// utilization for /v1/stats and /metrics).
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// Completed reports how many cells the pool has finished in total.
func (p *Pool) Completed() int64 { return p.done.Load() }

// RunCells implements CellRunner on the shared pool: it dispatches the
// batch to the pool's workers, blocks until every dispatched cell has
// drained, and returns results in canonical order. Concurrent RunCells
// calls interleave their cells on the same workers. onResult fires per
// cell on completion (see CellRunner). Calling RunCells on a closed
// pool is an error.
func (p *Pool) RunCells(ctx context.Context, cells []Cell, onResult func(Result)) ([]Result, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	seen := make(map[string]struct{}, len(cells))
	for _, c := range cells {
		if _, dup := seen[c.Key]; dup {
			return nil, fmt.Errorf("runner: duplicate cell key %q", c.Key)
		}
		seen[c.Key] = struct{}{}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("runner: pool is closed")
	}
	p.subs.Add(1)
	p.mu.Unlock()
	defer p.subs.Done()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]Result, len(cells))
	var pending sync.WaitGroup
	var once sync.Once
	var firstErr error
dispatch:
	for i := range cells {
		// Poll ctx before offering the cell (same rationale as
		// Engine.Run: select picks randomly among ready cases, so a
		// cancelled context could keep losing the coin flip against an
		// idle worker and leak extra dispatches).
		select {
		case <-ctx.Done():
			break dispatch
		default:
		}
		i := i
		pending.Add(1)
		run := func() {
			defer pending.Done()
			c := cells[i]
			start := time.Now()
			v, err := c.Fn(ctx)
			results[i] = Result{Key: c.Key, Value: v, Wall: time.Since(start), Err: err}
			if err != nil {
				once.Do(func() { firstErr = err; cancel() })
			}
			if onResult != nil {
				onResult(results[i])
			}
		}
		select {
		case p.items <- run:
		case <-ctx.Done():
			pending.Done()
			break dispatch
		}
	}
	pending.Wait()
	if firstErr != nil {
		return results, firstErr
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// Close drains the pool: it refuses new RunCells calls, waits for
// in-flight batches to finish, then stops the workers. Idempotent.
// The caller is responsible for cancelling or completing outstanding
// batches first if it wants Close to return promptly.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.subs.Wait()
	close(p.items)
	p.wg.Wait()
}
