// Package runner is the concurrent experiment engine: it executes a
// set of independent experiment cells — one (platform, workload,
// config) point of a table or figure — across a worker pool and
// reassembles the results in canonical (input) order.
//
// Determinism is the package contract: a cell's output may depend only
// on its own inputs (including a seed derived from the cell's stable
// identity via DeriveSeed), never on which worker ran it, how many
// workers exist, or the order in which cells complete. Under that
// contract Run returns bit-identical results for Workers=1,
// Workers=GOMAXPROCS, and any dispatch permutation — pinned by tests
// in this package and in internal/experiments.
package runner

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// Cell is one independent unit of work. Key is the cell's stable
// identity: unique within a Run call, used for result labeling and
// (by callers) for seed derivation.
type Cell struct {
	Key string
	Fn  func(ctx context.Context) (any, error)
}

// Result pairs a cell's output with its identity and host-side cost.
type Result struct {
	Key   string
	Value any
	Wall  time.Duration // host wall time of the cell (not simulated time)
	Err   error
}

// CellRunner executes a batch of cells and returns their results in
// canonical (input) order. onResult, when non-nil, is invoked once per
// cell as it completes — from whichever goroutine ran the cell, in
// completion order, concurrently with other cells — the mid-run
// progress hook that hamsd streaming and `hamsbench -progress` build
// on. The hook observes results; it must not mutate them, and the
// determinism contract is unchanged: the returned slice is identical
// whether or not a hook is installed. Implemented by Engine (one pool
// per batch) and Pool (a long-lived shared pool for daemon use).
type CellRunner interface {
	RunCells(ctx context.Context, cells []Cell, onResult func(Result)) ([]Result, error)
}

// Engine executes cells across a worker pool.
type Engine struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// ShuffleSeed, when nonzero, deterministically permutes the order
	// cells are dispatched to workers. Results still come back in
	// canonical order — the knob exists so tests can prove completion
	// order does not leak into results.
	ShuffleSeed int64
}

// Run executes every cell and returns results in input order. The
// first cell error cancels the context passed to still-pending cells
// and is returned after all in-flight cells drain; completed cells
// keep their results. A cancelled ctx stops dispatch and returns
// ctx.Err().
func (e Engine) Run(ctx context.Context, cells []Cell) ([]Result, error) {
	return e.RunCells(ctx, cells, nil)
}

// RunCells is Run with a per-cell completion hook (see CellRunner).
func (e Engine) RunCells(ctx context.Context, cells []Cell, onResult func(Result)) ([]Result, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	seen := make(map[string]struct{}, len(cells))
	for _, c := range cells {
		if _, dup := seen[c.Key]; dup {
			return nil, fmt.Errorf("runner: duplicate cell key %q", c.Key)
		}
		seen[c.Key] = struct{}{}
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	if e.ShuffleSeed != 0 {
		rng := rand.New(rand.NewSource(e.ShuffleSeed))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]Result, len(cells))
	idx := make(chan int)
	var wg sync.WaitGroup
	var once sync.Once
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				c := cells[i]
				start := time.Now()
				v, err := c.Fn(ctx)
				results[i] = Result{Key: c.Key, Value: v, Wall: time.Since(start), Err: err}
				if err != nil {
					once.Do(func() { firstErr = err; cancel() })
				}
				if onResult != nil {
					onResult(results[i])
				}
			}
		}()
	}
dispatch:
	for _, i := range order {
		// Poll ctx before offering the cell: select chooses randomly
		// among ready cases, so without this a cancelled context could
		// keep losing the coin flip against a ready worker and leak
		// extra dispatches.
		select {
		case <-ctx.Done():
			break dispatch
		default:
		}
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return results, firstErr
	}
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, nil
}

// DeriveSeed maps (base seed, stable cell identity) to a per-cell
// workload seed. The derivation depends only on its arguments, so a
// cell draws the same stream no matter which worker runs it or when;
// cells that must stay paired for a comparison (e.g. the same workload
// across platforms) pass the same key.
func DeriveSeed(base int64, key string) int64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
