package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// squareCells builds n cells whose value depends only on their index,
// with an optional artificial delay profile to skew completion order.
func squareCells(n int, delay func(i int) time.Duration) []Cell {
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		cells[i] = Cell{
			Key: fmt.Sprintf("cell%03d", i),
			Fn: func(ctx context.Context) (any, error) {
				if delay != nil {
					time.Sleep(delay(i))
				}
				return i * i, nil
			},
		}
	}
	return cells
}

func values(t *testing.T, res []Result) []int {
	t.Helper()
	out := make([]int, len(res))
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("cell %s: %v", r.Key, r.Err)
		}
		out[i] = r.Value.(int)
	}
	return out
}

// Results must come back in input order even when later cells finish
// first (early cells sleep longest).
func TestCanonicalOrderUnderSkewedCompletion(t *testing.T) {
	n := 32
	cells := squareCells(n, func(i int) time.Duration {
		return time.Duration(n-i) * time.Millisecond
	})
	res, err := Engine{Workers: 8}.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values(t, res) {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
		if res[i].Key != cells[i].Key {
			t.Fatalf("result[%d] key %q, want %q", i, res[i].Key, cells[i].Key)
		}
	}
}

// The same cells must yield identical results for any worker count and
// any dispatch permutation.
func TestWorkerCountAndDispatchOrderInvariance(t *testing.T) {
	cells := squareCells(50, nil)
	ref, err := Engine{Workers: 1}.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	want := values(t, ref)
	for _, e := range []Engine{
		{Workers: 2}, {Workers: 8}, {Workers: 0},
		{Workers: 8, ShuffleSeed: 1}, {Workers: 8, ShuffleSeed: 99}, {Workers: 3, ShuffleSeed: 7},
	} {
		res, err := e.Run(context.Background(), cells)
		if err != nil {
			t.Fatalf("%+v: %v", e, err)
		}
		for i, v := range values(t, res) {
			if v != want[i] {
				t.Fatalf("%+v: result[%d] = %d, want %d", e, i, v, want[i])
			}
		}
	}
}

func TestFirstErrorCancelsAndIsReturned(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	cells := make([]Cell, 64)
	for i := range cells {
		fail := i == 3
		cells[i] = Cell{
			Key: fmt.Sprintf("c%d", i),
			Fn: func(ctx context.Context) (any, error) {
				ran.Add(1)
				if fail {
					return nil, boom
				}
				time.Sleep(time.Millisecond)
				return i, nil
			},
		}
	}
	_, err := Engine{Workers: 2}.Run(context.Background(), cells)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := ran.Load(); n == int32(len(cells)) {
		t.Fatalf("error did not cancel dispatch: all %d cells ran", n)
	}
}

func TestCancelledContextStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Engine{Workers: 4}.Run(ctx, squareCells(100, nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Dispatch polls ctx before every send, so a pre-cancelled context
	// dispatches nothing at all.
	for _, r := range res {
		if r.Value != nil {
			t.Fatalf("cell %s ran after cancellation", r.Key)
		}
	}
}

func TestDuplicateKeysRejected(t *testing.T) {
	cells := squareCells(2, nil)
	cells[1].Key = cells[0].Key
	if _, err := (Engine{}).Run(context.Background(), cells); err == nil {
		t.Fatal("duplicate keys accepted")
	}
}

func TestEmptyCellSet(t *testing.T) {
	res, err := (Engine{}).Run(context.Background(), nil)
	if err != nil || res != nil {
		t.Fatalf("empty run: res=%v err=%v", res, err)
	}
}

func TestDeriveSeed(t *testing.T) {
	a := DeriveSeed(42, "rndWr")
	if a != DeriveSeed(42, "rndWr") {
		t.Fatal("DeriveSeed not stable")
	}
	if a == DeriveSeed(42, "rndRd") {
		t.Fatal("different keys collided")
	}
	if a == DeriveSeed(43, "rndWr") {
		t.Fatal("different base seeds collided")
	}
	if a < 0 {
		t.Fatalf("derived seed %d negative (breaks rand.NewSource conventions downstream)", a)
	}
}

// Wall times are per-cell host measurements, not shared accumulators.
func TestWallTimesRecorded(t *testing.T) {
	cells := squareCells(4, func(i int) time.Duration { return 2 * time.Millisecond })
	res, err := Engine{Workers: 4}.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Wall < time.Millisecond {
			t.Fatalf("cell %s wall %v implausibly small", r.Key, r.Wall)
		}
	}
}
