package core

import (
	"hams/internal/mem"
	"hams/internal/nvme"
	"hams/internal/sim"
)

// PowerFailReport summarizes what happened at the instant of failure.
type PowerFailReport struct {
	InFlight     int      // NVMe commands caught mid-service (all banks)
	TornWrites   int      // write DMAs lost on the device side
	BackupTime   sim.Time // NVDIMM supercap backup stream duration
	DirtyFlushed int      // SSD-internal dirty pages saved by its supercap
}

// RecoverReport summarizes the power-up procedure (Figure 15).
type RecoverReport struct {
	RestoreTime sim.Time
	Pending     int // journal-tagged commands found across every bank's SQ
	Replayed    int
	Done        sim.Time
}

// PowerFail models a sudden power loss at time t:
//
//   - every in-flight DMA dies; write commands leave torn pages on the
//     device (we trim them so they are unreadable until replayed);
//   - the NVDIMM supercap streams the DRAM image — including the
//     pinned region with every bank's SQ/CQ bytes and journal tags —
//     to its private flash;
//   - the ULL-Flash supercap flushes its internal DRAM (loose
//     topology; the tight device has no buffer);
//   - all controller SRAM state (per-bank in-flight tables, PRP free
//     lists, busy bits) is lost.
func (c *Controller) PowerFail(t sim.Time) PowerFailReport {
	c.engine.AdvanceTo(t)
	var rep PowerFailReport
	for _, b := range c.banks {
		rep.InFlight += len(b.live)
		for i := range b.live {
			if b.live[i].cmd.Opcode == nvme.OpWrite {
				rep.TornWrites++
				devPage := c.dev.PageBytes()
				for off := uint64(0); off < uint64(b.live[i].cmd.Length); off += devPage {
					c.dev.Trim((b.live[i].cmd.LBA + off) / devPage)
				}
			}
		}
	}
	rep.BackupTime = c.nvdimm.PowerFail()
	rep.DirtyFlushed = c.dev.PowerFail()

	// Volatile controller state dies with the power.
	c.engine = sim.NewEngine()
	c.engine.AdvanceTo(t)
	for _, b := range c.banks {
		b.live = b.live[:0]
		b.tags.ClearVolatile()
		if b.mshrs != nil {
			b.mshrs.Reset() // registers are controller SRAM
		}
		b.lastIODone = 0
		b.lastArrival = 0
	}
	c.lockFreeAt = 0
	return rep
}

// Recover performs the power-up procedure of Figure 15: restore the
// NVDIMM image, then for every bank scan the persisted SQ bytes for
// journal tags that are still set, re-create a fresh SQ/CQ pair,
// re-issue each pending command to the ULL-Flash, and clear the
// journal. Banks replay in bank order; Recover returns when the last
// replayed command completes.
func (c *Controller) Recover(t sim.Time) (RecoverReport, error) {
	var rep RecoverReport
	rep.RestoreTime = c.nvdimm.Restore()
	now := t + rep.RestoreTime
	c.engine.AdvanceTo(now)

	for _, b := range c.banks {
		// Phase 2: scan the bank's restored pinned region.
		pending := b.qp.PendingJournal()
		rep.Pending += len(pending)

		// Phase 3: allocate a fresh SQ/CQ pair over the same pinned
		// bytes and re-issue the incomplete commands.
		layout := nvme.DefaultLayout(b.qBase)
		fresh := nvme.NewQueuePair(c.nvdimm.Store(), layout)
		// Zeroing the rings clears every stale journal tag.
		fresh.SQ.Reset()
		fresh.CQ.Reset()
		b.qp = fresh

		for _, cmd := range pending {
			cid, err := b.qp.Submit(cmd)
			if err != nil {
				return rep, err
			}
			switch cmd.Opcode {
			case nvme.OpWrite:
				// Replay the write from the PRP clone, which survived
				// in the pinned region of the NVDIMM.
				data := make([]byte, cmd.Length)
				c.nvdimm.Store().ReadAt(cmd.PRP, data)
				done, err := c.devWrite(now, cmd.LBA, data, cmd.FUA)
				if err != nil {
					return rep, err
				}
				now = done
			case nvme.OpRead:
				// Replay the fill: the data lands back in the cache page.
				data := make([]byte, cmd.Length)
				done := c.devReadInto(now, cmd.LBA, data)
				landDone := c.nvdimm.Bulk(done, cmd.PRP, cmd.Length, mem.Write)
				c.nvdimm.Store().WriteAt(cmd.PRP, data)
				now = landDone
			}
			_ = b.qp.DeviceComplete(cid, 0)
			_, _ = b.qp.HostReap()
			rep.Replayed++
			c.stats.Replayed++
		}

		// The PRP free list is SRAM: rebuild it (replayed clones retired).
		b.prp = nvme.NewPRPPool(b.prp.Base(), c.cfg.PageBytes, c.cfg.PRPSlots)
	}

	rep.Done = now
	c.engine.AdvanceTo(now)
	return rep, nil
}
