package core

import (
	"bytes"
	"testing"

	"hams/internal/mem"
	"hams/internal/sim"
)

// forceInflightEvict writes a page, then misses the same entry so an
// eviction NVMe write is in flight, and returns just before its
// completion event would fire.
func forceInflightEvict(t *testing.T, c *Controller, payload []byte) (victim uint64, failAt sim.Time) {
	t.Helper()
	victim = uint64(0)
	w, err := c.Write(0, victim, payload)
	if err != nil {
		t.Fatal(err)
	}
	entries := uint64(c.CacheEntries())
	conflict := entries * c.PageBytes()
	// Miss on the same entry: submits the evict command. The access
	// returns when the fill lands, but the power is cut just after
	// submission, while the eviction DMA and its 100 us program are
	// still in flight.
	if _, err := c.Access(w.Done, mem.Access{Addr: conflict, Size: 64, Op: mem.Write}); err != nil {
		t.Fatal(err)
	}
	if c.Outstanding() == 0 {
		t.Fatal("expected an in-flight command")
	}
	return victim, w.Done + 1
}

func TestPowerFailureLosesInFlightWriteWithoutRecovery(t *testing.T) {
	// Tight topology: the bufferless device programs flash directly
	// (100 us), so the evict DMA is reliably still in flight when the
	// power fails. (In loose topology the SSD-internal DRAM absorbs
	// the write quickly and its supercap preserves it — §IV-B.)
	c := mustNew(t, testConfig(Extend, Tight))
	payload := []byte("must survive the power failure")
	victim, failAt := forceInflightEvict(t, c, payload)

	rep := c.PowerFail(failAt)
	if rep.InFlight == 0 || rep.TornWrites == 0 {
		t.Fatalf("report %+v: expected torn in-flight write", rep)
	}
	// WITHOUT replay, the victim page is torn on the device: this
	// demonstrates the journal is load-bearing.
	got := make([]byte, len(payload))
	c.PeekData(victim, got)
	if bytes.Equal(got, payload) {
		t.Fatal("torn write still readable; power-failure model broken")
	}
}

func TestPowerFailureRecoveryReplaysJournal(t *testing.T) {
	for _, tp := range []Topology{Loose, Tight} {
		c := mustNew(t, testConfig(Extend, tp))
		payload := []byte("must survive the power failure")
		victim, failAt := forceInflightEvict(t, c, payload)

		rep := c.PowerFail(failAt)
		if rep.BackupTime <= 0 {
			t.Fatalf("%v: backup must take time", tp)
		}
		rec, err := c.Recover(failAt + sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Pending == 0 || rec.Replayed != rec.Pending {
			t.Fatalf("%v: recovery %+v", tp, rec)
		}
		got := make([]byte, len(payload))
		c.PeekData(victim, got)
		if !bytes.Equal(got, payload) {
			t.Fatalf("%v: after recovery got %q, want %q", tp, got, payload)
		}
		if c.Stats().Replayed == 0 {
			t.Fatalf("%v: Replayed stat not bumped", tp)
		}
	}
}

func TestRecoveryClearsJournal(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Loose))
	payload := []byte("x")
	_, failAt := forceInflightEvict(t, c, payload)
	c.PowerFail(failAt)
	if _, err := c.Recover(failAt + 1); err != nil {
		t.Fatal(err)
	}
	// A second failure right after recovery must find nothing pending.
	c.PowerFail(failAt + 2*sim.Second)
	rec, err := c.Recover(failAt + 3*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Pending != 0 {
		t.Fatalf("journal not cleared: %d pending", rec.Pending)
	}
}

func TestCleanShutdownRecoverIsNoop(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Loose))
	w, _ := c.Write(0, 100, []byte{7})
	// Let all completions retire before failing.
	quiesce := w.Done + 10*sim.Second
	c.PowerFail(quiesce)
	rec, err := c.Recover(quiesce + sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Pending != 0 || rec.Replayed != 0 {
		t.Fatalf("quiesced recovery replayed %d", rec.Replayed)
	}
	// Dirty-but-resident data survives via the NVDIMM backup.
	got := make([]byte, 1)
	c.PeekData(100, got)
	if got[0] != 7 {
		t.Fatalf("resident dirty data lost: %d", got[0])
	}
}

func TestPersistModeHasNothingToReplay(t *testing.T) {
	// Persist mode serializes with FUA: by the time an access returns
	// there is no in-flight write to lose.
	c := mustNew(t, testConfig(Persist, Loose))
	payload := []byte("fua serialized")
	w, err := c.Write(0, 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	entries := uint64(c.CacheEntries())
	r, err := c.Access(w.Done, mem.Access{Addr: entries * c.PageBytes(), Size: 64, Op: mem.Write})
	if err != nil {
		t.Fatal(err)
	}
	c.PowerFail(r.Done)
	rec, err := c.Recover(r.Done + 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = rec // journal may contain the just-completed commands' tags cleared
	got := make([]byte, len(payload))
	c.PeekData(0, got)
	if !bytes.Equal(got, payload) {
		t.Fatalf("persist-mode data lost: %q", got)
	}
}

func TestWorkContinuesAfterRecovery(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Tight))
	_, failAt := forceInflightEvict(t, c, []byte("v1"))
	c.PowerFail(failAt)
	rec, err := c.Recover(failAt + sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The MoS space must be fully usable after the power cycle.
	payload := []byte("post-recovery write")
	w, err := c.Write(rec.Done, 777, payload)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := c.Read(w.Done, 777, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}
