package core

import (
	"testing"

	"hams/internal/mem"
	"hams/internal/sim"
)

// The tagstore/bank refactor must not change the timing of the paper's
// configuration: DefaultConfig (one bank, one way, direct-mapped) has
// to reproduce the pre-refactor controller bit-for-bit. The goldens
// below were recorded by running this exact sequence — mixed
// hits/misses, dirty evictions, busy-bit waits, a straddling access, a
// full-page write, a power failure with journal replay, and
// post-recovery traffic — against the seed implementation (commit
// 99b542d) on DefaultConfig in all three mode/topology combinations.
//
// One deliberate counter change post-seed: RedundantSquashed used to
// increment in lockstep with WaitQ, counting busy-victim waits where
// no eviction was actually suppressed. It now counts only waits on a
// slot whose in-flight work included a dirty writeback (the true
// Figure 14 squash), so the loose goldens carry 2 instead of the
// seed's 4 — two of the four parked misses waited on fill-only slots.
// Every timing field is still the seed's, bit for bit.

type parityStep struct {
	label  string
	done   sim.Time
	hit    bool
	wait   sim.Time
	nvdimm sim.Time
	dma    sim.Time
	ssd    sim.Time
}

type parityGolden struct {
	steps [8]parityStep

	pfInFlight, pfTorn, pfDirtyFlushed int
	pfBackup                           sim.Time

	recRestore sim.Time
	recPending int
	recReplay  int
	recDone    sim.Time

	post [2]parityStep

	stats Stats
}

var parityGoldens = map[string]parityGolden{
	"extend/loose": {
		steps: [8]parityStep{
			{"w0", 51027, false, 0, 32, 34938, 16047},
			{"r-hit", 51055, true, 0, 18, 0, 0},
			{"w-conflict", 158080, false, 230, 13182, 117688, 35337},
			{"w-conflict2", 265147, false, 271, 13182, 117688, 35337},
			{"r-straddle", 420802, false, 272, 13242, 152626, 48917},
			{"w-fullpage", 457928, false, 0, 37116, 0, 0},
			{"w5", 508969, false, 0, 46, 34938, 16047},
			{"w5-conflict", 616008, false, 243, 13182, 117688, 35337},
		},
		pfInFlight: 1, pfTorn: 0, pfBackup: 10737418240, pfDirtyFlushed: 128,
		recRestore: 10737418240, recPending: 1, recReplay: 1, recDone: 11738052171,
		post: [2]parityStep{
			{"w-post", 11738103212, false, 0, 46, 34938, 16047},
			{"r-post", 11738103240, true, 0, 18, 0, 0},
		},
		stats: Stats{
			Accesses: 10, Hits: 2, Misses: 8, Evictions: 4,
			RedundantSquashed: 2, WaitQ: 4, Fills: 8, FullPageWrites: 1,
			NVDIMMTime: 90064, DMATime: 610504, SSDTime: 203069,
			WaitTime: 1016, TotalTime: 667075, Replayed: 1,
		},
	},
	"persist/loose": {
		steps: [8]parityStep{
			{"w0", 51027, false, 0, 32, 34938, 16047},
			{"r-hit", 51055, true, 0, 18, 0, 0},
			{"w-conflict", 360635, false, 230, 13182, 117688, 447601},
			{"w-conflict2", 668977, false, 271, 13182, 117688, 446321},
			{"r-straddle", 1024409, false, 530, 13242, 352145, 258626},
			{"w-fullpage", 1061779, false, 244, 37116, 0, 0},
			{"w5", 1112820, false, 0, 46, 34938, 16047},
			{"w5-conflict", 1421988, false, 243, 13182, 117688, 447175},
		},
		pfInFlight: 1, pfTorn: 0, pfBackup: 10737418240, pfDirtyFlushed: 0,
		recRestore: 10737418240, recPending: 1, recReplay: 1, recDone: 11738858151,
		post: [2]parityStep{
			{"w-post", 11738909192, false, 0, 46, 34938, 16047},
			{"r-post", 11738909220, true, 0, 18, 0, 0},
		},
		stats: Stats{
			Accesses: 10, Hits: 2, Misses: 8, Evictions: 4,
			RedundantSquashed: 2, WaitQ: 4, Fills: 8, FullPageWrites: 1,
			NVDIMMTime: 90064, DMATime: 810023, SSDTime: 1647864,
			WaitTime: 1518, TotalTime: 1473055, Replayed: 1,
		},
	},
	"extend/tight": {
		steps: [8]parityStep{
			{"w0", 19333, false, 0, 32, 6584, 12707},
			{"r-hit", 19361, true, 0, 18, 0, 0},
			{"w-conflict", 265933, false, 0, 13182, 32876, 439181},
			{"w-conflict2", 512506, false, 0, 13182, 32876, 439181},
			{"r-straddle", 762520, false, 0, 13242, 39460, 435969},
			{"w-fullpage", 799646, false, 0, 37116, 0, 0},
			{"w5", 818993, false, 0, 46, 6584, 12707},
			{"w5-conflict", 1068980, false, 0, 13182, 32876, 442595},
		},
		pfInFlight: 0, pfTorn: 0, pfBackup: 10737418240, pfDirtyFlushed: 0,
		recRestore: 10737418240, recPending: 0, recReplay: 0, recDone: 11738487221,
		post: [2]parityStep{
			{"w-post", 11738506568, false, 0, 46, 6584, 12707},
			{"r-post", 11738506596, true, 0, 18, 0, 0},
		},
		stats: Stats{
			Accesses: 10, Hits: 2, Misses: 8, Evictions: 4,
			RedundantSquashed: 0, WaitQ: 0, Fills: 8, FullPageWrites: 1,
			NVDIMMTime: 90064, DMATime: 157840, SSDTime: 1795047,
			WaitTime: 0, TotalTime: 1088353, Replayed: 0,
		},
	},
}

func TestSeedParityDefaultConfig(t *testing.T) {
	combos := []struct {
		m  Mode
		tp Topology
	}{{Extend, Loose}, {Persist, Loose}, {Extend, Tight}}
	for _, combo := range combos {
		name := combo.m.String() + "/" + combo.tp.String()
		t.Run(name, func(t *testing.T) {
			golden, ok := parityGoldens[name]
			if !ok {
				t.Fatalf("no golden for %s", name)
			}
			cfg := DefaultConfig(combo.m, combo.tp)
			if cfg.Banks != 1 || cfg.Ways != 1 {
				t.Fatalf("DefaultConfig must stay 1 bank / 1 way, got %d/%d", cfg.Banks, cfg.Ways)
			}
			c := mustNew(t, cfg)
			if c.CacheEntries() != 61440 {
				t.Fatalf("entry count changed: %d", c.CacheEntries())
			}
			P := c.PageBytes()
			E := uint64(c.CacheEntries())

			var now sim.Time
			check := func(i int, r AccessResult, err error, want parityStep) {
				t.Helper()
				if err != nil {
					t.Fatalf("step %d (%s): %v", i, want.label, err)
				}
				got := parityStep{want.label, r.Done, r.Hit, r.Wait, r.NVDIMM, r.DMA, r.SSD}
				if got != want {
					t.Fatalf("step %d (%s):\n got %+v\nwant %+v", i, want.label, got, want)
				}
				now = r.Done
			}

			r, err := c.Write(now, 0, []byte("seed parity payload A"))
			check(0, r, err, golden.steps[0])
			r, err = c.Read(now, 64, make([]byte, 64))
			check(1, r, err, golden.steps[1])
			r, err = c.Write(now, E*P, []byte("conflict B"))
			check(2, r, err, golden.steps[2])
			r, err = c.Write(now+1, 2*E*P+128, []byte("conflict C"))
			check(3, r, err, golden.steps[3])
			r, err = c.Read(now, P-32, make([]byte, 64))
			check(4, r, err, golden.steps[4])
			r, err = c.Write(now, 3*P, make([]byte, P))
			check(5, r, err, golden.steps[5])
			r, err = c.Write(now, 5*P, []byte("D"))
			check(6, r, err, golden.steps[6])
			r, err = c.Write(now+1, (5+E)*P, []byte("E"))
			check(7, r, err, golden.steps[7])

			failAt := now + 1
			pf := c.PowerFail(failAt)
			if pf.InFlight != golden.pfInFlight || pf.TornWrites != golden.pfTorn ||
				pf.BackupTime != golden.pfBackup || pf.DirtyFlushed != golden.pfDirtyFlushed {
				t.Fatalf("power-fail report %+v, want {%d %d %v %d}", pf,
					golden.pfInFlight, golden.pfTorn, golden.pfBackup, golden.pfDirtyFlushed)
			}
			rec, err := c.Recover(failAt + sim.Second)
			if err != nil {
				t.Fatal(err)
			}
			if rec.RestoreTime != golden.recRestore || rec.Pending != golden.recPending ||
				rec.Replayed != golden.recReplay || rec.Done != golden.recDone {
				t.Fatalf("recover report %+v, want {%v %d %d %v}", rec,
					golden.recRestore, golden.recPending, golden.recReplay, golden.recDone)
			}
			now = rec.Done

			r, err = c.Write(now, 7*P+9, []byte("post-recovery"))
			check(8, r, err, golden.post[0])
			r, err = c.Read(now, 7*P+9, make([]byte, 13))
			check(9, r, err, golden.post[1])

			if st := c.Stats(); st != golden.stats {
				t.Fatalf("stats drifted:\n got %+v\nwant %+v", st, golden.stats)
			}
			buf := make([]byte, 21)
			c.PeekData(0, buf)
			if string(buf) != "seed parity payload A" {
				t.Fatalf("functional content drifted: %q", buf)
			}
			_ = mem.KiB
		})
	}
}
