package core

import (
	"hams/internal/sim"
)

// This file implements the per-bank MSHR (miss-status holding
// register) file that turns the miss path non-blocking when
// Config.MSHRs > 1. Each register tracks one outstanding fill: the
// page on its way in, the tag-array slot it lands in, the instant the
// data is resident (secondary, coalesced accesses resume there), and
// the instant the last NVMe command composed for the miss retires
// (the register frees). The file's depth bounds the bank's
// memory-level parallelism: a primary miss arriving with every
// register live parks in the wait queue until the earliest one
// retires — exactly the "truly conflicting" stall of the issue's
// contract (same set all ways busy, or MSHR file full).
//
// The registers are controller SRAM: a power failure clears the file
// (PowerFail), and recovery replays in-flight commands from the
// journal tags instead (Figure 15) — the MSHR file carries no
// persistency obligations.

// mshr is one miss-status holding register, stored by value in the
// file's live slice. Only the identity of the in-flight page and the
// retirement instant live here: secondaries resume from the tag
// entry's ReadyAt and slot reuse is gated by the entry's FreeAt, so
// the register's job is bounding outstanding misses and answering
// "is this page already being filled?". The seq tag names a specific
// allocation so retirement events survive re-misses of the same page
// (a stale seq simply finds nothing).
type mshr struct {
	page uint64   // MoS page the fill targets
	seq  int64    // allocation identity for retirement events
	done sim.Time // last command for this miss retires; register frees
}

// mshrFile is one bank's register file: a flat value slice bounded by
// depth (a handful of entries), scanned linearly. Iteration order is
// allocation order, hence deterministic.
type mshrFile struct {
	depth   int
	nextSeq int64
	live    []mshr
}

func newMSHRFile(depth int) *mshrFile {
	return &mshrFile{depth: depth}
}

// Live returns the number of registers in flight.
func (f *mshrFile) Live() int { return len(f.live) }

// Full reports whether a new primary miss must park.
func (f *mshrFile) Full() bool { return len(f.live) >= f.depth }

// HasPage reports whether a live register is filling page.
func (f *mshrFile) HasPage(page uint64) bool {
	for i := len(f.live) - 1; i >= 0; i-- {
		if f.live[i].page == page {
			return true
		}
	}
	return false
}

// Insert registers a primary miss and returns its retirement tag.
func (f *mshrFile) Insert(page uint64, done sim.Time) int64 {
	f.nextSeq++
	f.live = append(f.live, mshr{page: page, seq: f.nextSeq, done: done})
	return f.nextSeq
}

// RetireSeq frees the register allocated with tag seq. A stale tag
// (register already cleared by a power-failure reset) finds nothing
// and is a no-op.
func (f *mshrFile) RetireSeq(seq int64) {
	for i := range f.live {
		if f.live[i].seq == seq {
			f.live = append(f.live[:i], f.live[i+1:]...)
			return
		}
	}
}

// EarliestDone returns the earliest retirement instant among live
// registers, or sim.MaxTime when the file is empty.
func (f *mshrFile) EarliestDone() sim.Time {
	earliest := sim.MaxTime
	for i := range f.live {
		if f.live[i].done < earliest {
			earliest = f.live[i].done
		}
	}
	return earliest
}

// Reset clears the file (power failure: MSHRs are controller SRAM).
func (f *mshrFile) Reset() {
	f.live = f.live[:0]
}
