package core

import (
	"hams/internal/sim"
)

// This file implements the per-bank MSHR (miss-status holding
// register) file that turns the miss path non-blocking when
// Config.MSHRs > 1. Each register tracks one outstanding fill: the
// page on its way in, the tag-array slot it lands in, the instant the
// data is resident (secondary, coalesced accesses resume there), and
// the instant the last NVMe command composed for the miss retires
// (the register frees). The file's depth bounds the bank's
// memory-level parallelism: a primary miss arriving with every
// register live parks in the wait queue until the earliest one
// retires — exactly the "truly conflicting" stall of the issue's
// contract (same set all ways busy, or MSHR file full).
//
// The registers are controller SRAM: a power failure clears the file
// (PowerFail), and recovery replays in-flight commands from the
// journal tags instead (Figure 15) — the MSHR file carries no
// persistency obligations.

// mshr is one miss-status holding register. Only the identity of the
// in-flight page and the retirement instant live here: secondaries
// resume from the tag entry's ReadyAt and slot reuse is gated by the
// entry's FreeAt, so the register's job is bounding outstanding
// misses and answering "is this page already being filled?".
type mshr struct {
	page uint64   // MoS page the fill targets
	done sim.Time // last command for this miss retires; register frees
}

// mshrFile is one bank's register file. Lookups by page serve miss
// coalescing; the live slice (bounded by depth, a handful of entries)
// serves the full-file stall and keeps iteration deterministic.
type mshrFile struct {
	depth  int
	live   []*mshr
	byPage map[uint64]*mshr
}

func newMSHRFile(depth int) *mshrFile {
	return &mshrFile{depth: depth, byPage: make(map[uint64]*mshr)}
}

// Live returns the number of registers in flight.
func (f *mshrFile) Live() int { return len(f.live) }

// Full reports whether a new primary miss must park.
func (f *mshrFile) Full() bool { return len(f.live) >= f.depth }

// ByPage returns the live register filling page, or nil.
func (f *mshrFile) ByPage(page uint64) *mshr { return f.byPage[page] }

// Insert registers a primary miss. If an older register for the same
// page is still draining (its page was since evicted and re-missed),
// the newer one owns the page key.
func (f *mshrFile) Insert(m *mshr) {
	f.live = append(f.live, m)
	f.byPage[m.page] = m
}

// Retire frees a register. Idempotent: the retirement event may race
// a power-failure reset.
func (f *mshrFile) Retire(m *mshr) {
	for i, x := range f.live {
		if x == m {
			f.live = append(f.live[:i], f.live[i+1:]...)
			break
		}
	}
	if f.byPage[m.page] == m {
		delete(f.byPage, m.page)
	}
}

// EarliestDone returns the earliest retirement instant among live
// registers, or sim.MaxTime when the file is empty.
func (f *mshrFile) EarliestDone() sim.Time {
	earliest := sim.MaxTime
	for _, m := range f.live {
		if m.done < earliest {
			earliest = m.done
		}
	}
	return earliest
}

// Reset clears the file (power failure: MSHRs are controller SRAM).
func (f *mshrFile) Reset() {
	f.live = nil
	f.byPage = make(map[uint64]*mshr)
}
