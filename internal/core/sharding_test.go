package core

import (
	"bytes"
	"fmt"
	"testing"

	"hams/internal/core/tagstore"
	"hams/internal/mem"
	"hams/internal/qos"
	"hams/internal/sim"
)

// assocConfig returns the scaled-down test config with the given cache
// organization.
func assocConfig(m Mode, tp Topology, ways, banks int, pol tagstore.Policy) Config {
	cfg := testConfig(m, tp)
	cfg.Ways = ways
	cfg.Banks = banks
	cfg.Replacement = pol
	return cfg
}

func TestSetAssociativityAbsorbsConflictMisses(t *testing.T) {
	// Two pages that map to the same direct-mapped set, accessed
	// alternately: direct-mapped thrashes, 2-way holds both.
	run := func(ways int) Stats {
		c := mustNew(t, assocConfig(Extend, Loose, ways, 1, tagstore.LRU))
		entries := uint64(c.CacheEntries())
		// Same set in both geometries: stride by entries pages keeps
		// the set index equal for ways=1, and entries/2 sets still
		// collide for ways=2 (entries % sets == 0).
		a0, a1 := uint64(0), entries*c.PageBytes()
		var now sim.Time
		for i := 0; i < 20; i++ {
			addr := a0
			if i%2 == 1 {
				addr = a1
			}
			r, err := c.Access(now, mem.Access{Addr: addr, Size: 64, Op: mem.Write})
			if err != nil {
				t.Fatal(err)
			}
			now = r.Done
		}
		return c.Stats()
	}
	direct := run(1)
	assoc := run(2)
	if direct.Hits >= assoc.Hits {
		t.Fatalf("2-way hits (%d) must beat direct-mapped (%d) on a ping-pong conflict",
			assoc.Hits, direct.Hits)
	}
	if assoc.Misses != 2 {
		t.Fatalf("2-way must miss only compulsorily: %d misses", assoc.Misses)
	}
	if direct.Evictions == 0 || assoc.Evictions != 0 {
		t.Fatalf("evictions: direct %d (want >0), 2-way %d (want 0)",
			direct.Evictions, assoc.Evictions)
	}
}

func TestBankRoutingPageInterleaves(t *testing.T) {
	c := mustNew(t, assocConfig(Extend, Loose, 1, 4, tagstore.LRU))
	if c.Banks() != 4 {
		t.Fatalf("banks = %d", c.Banks())
	}
	for page := uint64(0); page < 16; page++ {
		b := c.bankOf(page)
		if b.id != int(page%4) {
			t.Fatalf("page %d routed to bank %d", page, b.id)
		}
	}
}

func TestShardedDataRoundTrip(t *testing.T) {
	// Functional correctness with every geometry knob turned: write
	// more distinct pages than the cache holds (guaranteeing dirty
	// evictions by pigeonhole), reading back along the way.
	for _, pol := range []tagstore.Policy{tagstore.LRU, tagstore.Clock, tagstore.Random} {
		c := mustNew(t, assocConfig(Extend, Loose, 4, 4, pol))
		P := c.PageBytes()
		spanPages := c.Capacity() / P
		shadow := make(map[uint64]byte)
		var now sim.Time
		n := c.CacheEntries() + 64 // > every slot in the cache
		addrOf := func(i int) uint64 {
			// Stride 7 pages is coprime with the 1920-page MoS space:
			// every iteration hits a distinct page.
			return (uint64(i) * 7 % spanPages) * P
		}
		for i := 0; i < n; i++ {
			addr := addrOf(i)
			buf := []byte(fmt.Sprintf("payload-%d-%v", i, pol))
			r, err := c.Write(now, addr, buf)
			if err != nil {
				t.Fatalf("%v: %v", pol, err)
			}
			now = r.Done
			for j, bt := range buf {
				shadow[addr+uint64(j)] = bt
			}
			if i%4 == 3 {
				back := addrOf(i - 2)
				buf := make([]byte, 24)
				r, err := c.Read(now, back, buf)
				if err != nil {
					t.Fatalf("%v: %v", pol, err)
				}
				now = r.Done
				for j, bt := range buf {
					if want := shadow[back+uint64(j)]; bt != want {
						t.Fatalf("%v: byte %d at %#x = %d, want %d", pol, j, back, bt, want)
					}
				}
			}
		}
		if c.Stats().Evictions == 0 {
			t.Fatalf("%v: wrote %d distinct pages into a %d-slot cache but no evictions",
				pol, n, c.CacheEntries())
		}
	}
}

func TestPerBankPersistSerialization(t *testing.T) {
	// In persist mode misses serialize per bank: three back-to-back
	// misses land on bank 0, bank 1, bank 0. The bank-1 miss slips
	// past bank 0's outstanding I/O (the seed's global serialization
	// point would have parked it); the second bank-0 miss must wait.
	cfg := assocConfig(Persist, Loose, 1, 2, tagstore.LRU)
	c := mustNew(t, cfg)
	P := c.PageBytes()

	if _, err := c.Access(0, mem.Access{Addr: 0, Size: 64, Op: mem.Write}); err != nil {
		t.Fatal(err)
	}
	rB, err := c.Access(1, mem.Access{Addr: P, Size: 64, Op: mem.Write})
	if err != nil {
		t.Fatal(err)
	}
	if rB.Wait != 0 {
		t.Fatalf("cross-bank persist miss waited %v behind bank 0's I/O", rB.Wait)
	}
	r2, err := c.Access(2, mem.Access{Addr: 2 * P, Size: 64, Op: mem.Write})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Wait == 0 {
		t.Fatal("same-bank persist miss did not serialize")
	}
}

func TestRouterClampsPerBankArrivals(t *testing.T) {
	// The router guarantees each bank sees nondecreasing arrivals even
	// if interleaved cross-bank traffic jitters slightly backwards.
	c := mustNew(t, assocConfig(Extend, Loose, 1, 2, tagstore.LRU))
	P := c.PageBytes()
	r, err := c.Access(100, mem.Access{Addr: 0, Size: 64, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	// Same bank, earlier timestamp: completion must not precede the
	// earlier request's observable state.
	r2, err := c.Access(r.Done, mem.Access{Addr: 2 * P, Size: 64, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Done < r.Done {
		t.Fatalf("bank time went backwards: %v then %v", r.Done, r2.Done)
	}
}

func TestMultiBankRecoveryReplaysEveryBank(t *testing.T) {
	// Force an in-flight dirty eviction on several banks, fail, and
	// verify the journal replay restores every bank's victim page.
	cfg := assocConfig(Extend, Tight, 1, 2, tagstore.LRU)
	c := mustNew(t, cfg)
	P := c.PageBytes()
	entriesPerBank := uint64(c.CacheEntries() / c.Banks())

	payload0 := []byte("bank zero dirty page")
	payload1 := []byte("bank one dirty page")
	w0, err := c.Write(0, 0, payload0) // page 0 -> bank 0
	if err != nil {
		t.Fatal(err)
	}
	w1, err := c.Write(w0.Done, P, payload1) // page 1 -> bank 1
	if err != nil {
		t.Fatal(err)
	}
	// Conflict in each bank: same bank, same set. For bank 0 that is
	// page 2*entriesPerBank (key = entriesPerBank ≡ 0 mod sets), for
	// bank 1 page 2*entriesPerBank+1.
	conflict0 := 2 * entriesPerBank * P
	conflict1 := conflict0 + P
	// Issue the conflicting misses back to back (the router keeps each
	// bank's arrivals nondecreasing) so both banks' eviction DMAs are
	// still in flight when the power dies.
	if _, err := c.Access(w1.Done, mem.Access{Addr: conflict0, Size: 64, Op: mem.Write}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Access(w1.Done+1, mem.Access{Addr: conflict1, Size: 64, Op: mem.Write}); err != nil {
		t.Fatal(err)
	}
	if c.Outstanding() < 2 {
		t.Fatalf("outstanding = %d, want in-flight evictions on both banks", c.Outstanding())
	}

	failAt := w1.Done + 2
	pf := c.PowerFail(failAt)
	if pf.TornWrites < 2 {
		t.Fatalf("torn writes = %d, want both banks' evictions torn", pf.TornWrites)
	}
	rec, err := c.Recover(failAt + sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Pending < 2 || rec.Replayed != rec.Pending {
		t.Fatalf("recovery %+v: want >= 2 pending, all replayed", rec)
	}
	got0 := make([]byte, len(payload0))
	c.PeekData(0, got0)
	if !bytes.Equal(got0, payload0) {
		t.Fatalf("bank 0 victim lost: %q", got0)
	}
	got1 := make([]byte, len(payload1))
	c.PeekData(P, got1)
	if !bytes.Equal(got1, payload1) {
		t.Fatalf("bank 1 victim lost: %q", got1)
	}
}

func TestPowerCycleWithAssociativityAndBanks(t *testing.T) {
	// Full power cycle on a 2-way, 2-bank instance: the system keeps
	// working and the journal clears.
	c := mustNew(t, assocConfig(Extend, Tight, 2, 2, tagstore.LRU))
	w, err := c.Write(0, 12345, []byte("assoc+bank survivor"))
	if err != nil {
		t.Fatal(err)
	}
	c.PowerFail(w.Done + 1)
	rec, err := c.Recover(w.Done + sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	// A second cycle finds a clean journal.
	c.PowerFail(rec.Done + sim.Second)
	rec2, err := c.Recover(rec.Done + 2*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Pending != 0 {
		t.Fatalf("journal not cleared across banks: %d pending", rec2.Pending)
	}
	got := make([]byte, 19)
	c.PeekData(12345, got)
	if string(got) != "assoc+bank survivor" {
		t.Fatalf("data lost: %q", got)
	}
}

func TestWaysBanksAccessors(t *testing.T) {
	c := mustNew(t, assocConfig(Extend, Loose, 4, 2, tagstore.Clock))
	if c.Ways() != 4 || c.Banks() != 2 {
		t.Fatalf("ways=%d banks=%d", c.Ways(), c.Banks())
	}
	if c.String() == "" {
		t.Fatal("String")
	}
	// Geometry must divide the cache exactly across banks.
	if c.CacheEntries()%2 != 0 {
		t.Fatalf("entries %d not divisible across banks", c.CacheEntries())
	}
}

func TestBankGeometryValidation(t *testing.T) {
	cfg := testConfig(Extend, Loose)
	cfg.Banks = 1 << 20 // more banks than cache pages
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for more banks than pages")
	}
}

// policyStats runs a mixed hit/miss/evict sequence on the given
// geometry and returns the stats plus every AccessResult — the
// fingerprint the determinism and parity tests below compare.
func policyStats(t *testing.T, cfg Config) (Stats, []AccessResult) {
	t.Helper()
	c := mustNew(t, cfg)
	P := c.PageBytes()
	spanPages := c.Capacity() / P
	var out []AccessResult
	var now sim.Time
	n := c.CacheEntries() + 96 // force evictions by pigeonhole
	for i := 0; i < n; i++ {
		addr := (uint64(i) * 7 % spanPages) * P
		op := mem.Write
		if i%3 == 0 {
			op = mem.Read
		}
		r, err := c.Access(now, mem.Access{Addr: addr, Size: 64, Op: op})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
		now = r.Done
		if i%5 == 4 { // revisit: exercise hits and recency updates
			r, err := c.Access(now, mem.Access{Addr: addr, Size: 64, Op: mem.Read})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r)
			now = r.Done
		}
	}
	return c.Stats(), out
}

// TestClockRandomMultiWayMultiBank pins the clock and random policies
// under sharded, set-associative geometry (they were previously
// exercised mainly via LRU): the sequence must evict, stay
// deterministic run to run, and differ across policies only in
// replacement choice, never in accounting identities.
func TestClockRandomMultiWayMultiBank(t *testing.T) {
	for _, pol := range []tagstore.Policy{tagstore.Clock, tagstore.Random} {
		cfg := assocConfig(Extend, Loose, 4, 2, pol)
		st1, res1 := policyStats(t, cfg)
		st2, res2 := policyStats(t, cfg)
		if st1 != st2 {
			t.Fatalf("%v: stats not deterministic:\n%+v\n%+v", pol, st1, st2)
		}
		if len(res1) != len(res2) {
			t.Fatalf("%v: result count %d vs %d", pol, len(res1), len(res2))
		}
		for i := range res1 {
			if res1[i] != res2[i] {
				t.Fatalf("%v: access %d diverged: %+v vs %+v", pol, i, res1[i], res2[i])
			}
		}
		if st1.Evictions == 0 {
			t.Fatalf("%v: no evictions under overcommit", pol)
		}
		if st1.Hits+st1.Misses != st1.Accesses {
			t.Fatalf("%v: hit/miss accounting broken: %+v", pol, st1)
		}
	}
}

// TestQoSFullMaskTimingParity: a QoS table whose classes all carry
// full way masks and no throttle must leave the controller's timing
// bit-for-bit unchanged — for every replacement policy, on a
// multi-way, multi-bank geometry. This is the controller-level half
// of the subsystem's parity guarantee (the scenario-level half lives
// in replay's TestQoSFullMaskParity).
func TestQoSFullMaskTimingParity(t *testing.T) {
	for _, pol := range []tagstore.Policy{tagstore.LRU, tagstore.Clock, tagstore.Random} {
		plain := assocConfig(Extend, Loose, 4, 2, pol)
		qosed := plain
		qosed.QoS = &qos.Table{Classes: []qos.Class{
			{Name: "a"}, {Name: "b"},
		}}
		stP, resP := policyStats(t, plain)
		stQ, resQ := policyStats(t, qosed)
		stQ.ThrottleTime = stP.ThrottleTime // identical anyway (both zero)
		if stP != stQ {
			t.Fatalf("%v: full-mask QoS changed stats:\nplain %+v\nqos   %+v", pol, stP, stQ)
		}
		for i := range resP {
			if resP[i] != resQ[i] {
				t.Fatalf("%v: access %d: full-mask QoS changed timing: %+v vs %+v", pol, i, resP[i], resQ[i])
			}
		}
	}
}

// TestMaskedReplacementConfinement drives one class through a
// restrictive CAT mask on a multi-way, multi-bank controller and
// verifies (a) its installs never leave the permitted ways, (b) the
// monitor's occupancy agrees, and (c) pages outside the partition
// survive a sweep by the masked class.
func TestMaskedReplacementConfinement(t *testing.T) {
	for _, pol := range []tagstore.Policy{tagstore.LRU, tagstore.Clock, tagstore.Random} {
		cfg := assocConfig(Extend, Loose, 4, 2, pol)
		cfg.QoS = &qos.Table{Classes: []qos.Class{
			{Name: "victim", WayMask: 0xc},  // ways 2-3
			{Name: "sweeper", WayMask: 0x3}, // ways 0-1
		}}
		c := mustNew(t, cfg)
		P := c.PageBytes()
		spanPages := c.Capacity() / P

		// The victim class installs a small working set.
		var now sim.Time
		victPages := make([]uint64, 0, 8)
		for i := 0; i < 8; i++ {
			page := uint64(i)
			victPages = append(victPages, page)
			r, err := c.Access(now, mem.Access{Addr: page * P, Size: 64, Op: mem.Write, Class: 0})
			if err != nil {
				t.Fatal(err)
			}
			now = r.Done
		}
		// The sweeper writes more pages than the whole cache holds.
		for i := 0; i < c.CacheEntries()*3; i++ {
			page := (uint64(i)*7 + 512) % spanPages
			r, err := c.Access(now, mem.Access{Addr: page * P, Size: 64, Op: mem.Write, Class: 1})
			if err != nil {
				t.Fatal(err)
			}
			now = r.Done
		}

		// (a,c) Every victim page is still resident: the sweeper could
		// not evict outside its partition.
		for _, page := range victPages {
			b, set := c.route(page)
			slot, ok := b.tags.Lookup(set, page)
			if !ok {
				t.Fatalf("%v: victim page %d evicted by masked sweeper", pol, page)
			}
			if way := slot % c.Ways(); way < 2 {
				t.Fatalf("%v: victim page %d installed in way %d outside mask 0xc", pol, page, way)
			}
		}
		// (b) Monitoring: occupancy respects the partition bounds and
		// the victim still owns its installs.
		qs := c.QoSStats()
		if qs[0].Occupancy != int64(len(victPages)) {
			t.Fatalf("%v: victim occupancy %d, want %d", pol, qs[0].Occupancy, len(victPages))
		}
		// The sweeper can never own more than its 2 of 4 ways.
		if max := int64(c.CacheEntries() / 2); qs[1].Occupancy > max {
			t.Fatalf("%v: sweeper occupancy %d exceeds its partition (%d)", pol, qs[1].Occupancy, max)
		}
		if qs[1].Misses == 0 || qs[1].WBBytes == 0 {
			t.Fatalf("%v: sweeper monitoring empty: %+v", pol, qs[1])
		}
	}
}

// TestThrottleDebtIsReportedNotInjected: the MBA throttle must pace
// via AccessResult.Throttle — physical completion times (Done) stay
// identical to the unthrottled run, so the debt can never stall other
// classes through shared resources.
func TestThrottleDebtIsReportedNotInjected(t *testing.T) {
	run := func(mbps float64) []AccessResult {
		cfg := assocConfig(Extend, Loose, 2, 1, tagstore.LRU)
		cfg.QoS = &qos.Table{Classes: []qos.Class{{Name: "w", MBps: mbps}}}
		c := mustNew(t, cfg)
		P := c.PageBytes()
		var out []AccessResult
		var now sim.Time
		for i := 0; i < 32; i++ {
			r, err := c.Access(now, mem.Access{Addr: uint64(i) * P, Size: 64, Op: mem.Write})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r)
			now = r.Done // physical pacing only; debt is the caller's
		}
		return out
	}
	free := run(0)
	capped := run(1) // 1 MB/s: brutally throttled
	var debt sim.Time
	for i := range free {
		if capped[i].Done != free[i].Done {
			t.Fatalf("access %d: throttle changed physical completion %v -> %v",
				i, free[i].Done, capped[i].Done)
		}
		if free[i].Throttle != 0 {
			t.Fatalf("access %d: unthrottled run reports debt %v", i, free[i].Throttle)
		}
		debt += capped[i].Throttle
	}
	if debt == 0 {
		t.Fatal("capped run accrued no throttle debt")
	}
}
