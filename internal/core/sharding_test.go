package core

import (
	"bytes"
	"fmt"
	"testing"

	"hams/internal/core/tagstore"
	"hams/internal/mem"
	"hams/internal/sim"
)

// assocConfig returns the scaled-down test config with the given cache
// organization.
func assocConfig(m Mode, tp Topology, ways, banks int, pol tagstore.Policy) Config {
	cfg := testConfig(m, tp)
	cfg.Ways = ways
	cfg.Banks = banks
	cfg.Replacement = pol
	return cfg
}

func TestSetAssociativityAbsorbsConflictMisses(t *testing.T) {
	// Two pages that map to the same direct-mapped set, accessed
	// alternately: direct-mapped thrashes, 2-way holds both.
	run := func(ways int) Stats {
		c := mustNew(t, assocConfig(Extend, Loose, ways, 1, tagstore.LRU))
		entries := uint64(c.CacheEntries())
		// Same set in both geometries: stride by entries pages keeps
		// the set index equal for ways=1, and entries/2 sets still
		// collide for ways=2 (entries % sets == 0).
		a0, a1 := uint64(0), entries*c.PageBytes()
		var now sim.Time
		for i := 0; i < 20; i++ {
			addr := a0
			if i%2 == 1 {
				addr = a1
			}
			r, err := c.Access(now, mem.Access{Addr: addr, Size: 64, Op: mem.Write})
			if err != nil {
				t.Fatal(err)
			}
			now = r.Done
		}
		return c.Stats()
	}
	direct := run(1)
	assoc := run(2)
	if direct.Hits >= assoc.Hits {
		t.Fatalf("2-way hits (%d) must beat direct-mapped (%d) on a ping-pong conflict",
			assoc.Hits, direct.Hits)
	}
	if assoc.Misses != 2 {
		t.Fatalf("2-way must miss only compulsorily: %d misses", assoc.Misses)
	}
	if direct.Evictions == 0 || assoc.Evictions != 0 {
		t.Fatalf("evictions: direct %d (want >0), 2-way %d (want 0)",
			direct.Evictions, assoc.Evictions)
	}
}

func TestBankRoutingPageInterleaves(t *testing.T) {
	c := mustNew(t, assocConfig(Extend, Loose, 1, 4, tagstore.LRU))
	if c.Banks() != 4 {
		t.Fatalf("banks = %d", c.Banks())
	}
	for page := uint64(0); page < 16; page++ {
		b := c.bankOf(page)
		if b.id != int(page%4) {
			t.Fatalf("page %d routed to bank %d", page, b.id)
		}
	}
}

func TestShardedDataRoundTrip(t *testing.T) {
	// Functional correctness with every geometry knob turned: write
	// more distinct pages than the cache holds (guaranteeing dirty
	// evictions by pigeonhole), reading back along the way.
	for _, pol := range []tagstore.Policy{tagstore.LRU, tagstore.Clock, tagstore.Random} {
		c := mustNew(t, assocConfig(Extend, Loose, 4, 4, pol))
		P := c.PageBytes()
		spanPages := c.Capacity() / P
		shadow := make(map[uint64]byte)
		var now sim.Time
		n := c.CacheEntries() + 64 // > every slot in the cache
		addrOf := func(i int) uint64 {
			// Stride 7 pages is coprime with the 1920-page MoS space:
			// every iteration hits a distinct page.
			return (uint64(i) * 7 % spanPages) * P
		}
		for i := 0; i < n; i++ {
			addr := addrOf(i)
			buf := []byte(fmt.Sprintf("payload-%d-%v", i, pol))
			r, err := c.Write(now, addr, buf)
			if err != nil {
				t.Fatalf("%v: %v", pol, err)
			}
			now = r.Done
			for j, bt := range buf {
				shadow[addr+uint64(j)] = bt
			}
			if i%4 == 3 {
				back := addrOf(i - 2)
				buf := make([]byte, 24)
				r, err := c.Read(now, back, buf)
				if err != nil {
					t.Fatalf("%v: %v", pol, err)
				}
				now = r.Done
				for j, bt := range buf {
					if want := shadow[back+uint64(j)]; bt != want {
						t.Fatalf("%v: byte %d at %#x = %d, want %d", pol, j, back, bt, want)
					}
				}
			}
		}
		if c.Stats().Evictions == 0 {
			t.Fatalf("%v: wrote %d distinct pages into a %d-slot cache but no evictions",
				pol, n, c.CacheEntries())
		}
	}
}

func TestPerBankPersistSerialization(t *testing.T) {
	// In persist mode misses serialize per bank: three back-to-back
	// misses land on bank 0, bank 1, bank 0. The bank-1 miss slips
	// past bank 0's outstanding I/O (the seed's global serialization
	// point would have parked it); the second bank-0 miss must wait.
	cfg := assocConfig(Persist, Loose, 1, 2, tagstore.LRU)
	c := mustNew(t, cfg)
	P := c.PageBytes()

	if _, err := c.Access(0, mem.Access{Addr: 0, Size: 64, Op: mem.Write}); err != nil {
		t.Fatal(err)
	}
	rB, err := c.Access(1, mem.Access{Addr: P, Size: 64, Op: mem.Write})
	if err != nil {
		t.Fatal(err)
	}
	if rB.Wait != 0 {
		t.Fatalf("cross-bank persist miss waited %v behind bank 0's I/O", rB.Wait)
	}
	r2, err := c.Access(2, mem.Access{Addr: 2 * P, Size: 64, Op: mem.Write})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Wait == 0 {
		t.Fatal("same-bank persist miss did not serialize")
	}
}

func TestRouterClampsPerBankArrivals(t *testing.T) {
	// The router guarantees each bank sees nondecreasing arrivals even
	// if interleaved cross-bank traffic jitters slightly backwards.
	c := mustNew(t, assocConfig(Extend, Loose, 1, 2, tagstore.LRU))
	P := c.PageBytes()
	r, err := c.Access(100, mem.Access{Addr: 0, Size: 64, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	// Same bank, earlier timestamp: completion must not precede the
	// earlier request's observable state.
	r2, err := c.Access(r.Done, mem.Access{Addr: 2 * P, Size: 64, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Done < r.Done {
		t.Fatalf("bank time went backwards: %v then %v", r.Done, r2.Done)
	}
}

func TestMultiBankRecoveryReplaysEveryBank(t *testing.T) {
	// Force an in-flight dirty eviction on several banks, fail, and
	// verify the journal replay restores every bank's victim page.
	cfg := assocConfig(Extend, Tight, 1, 2, tagstore.LRU)
	c := mustNew(t, cfg)
	P := c.PageBytes()
	entriesPerBank := uint64(c.CacheEntries() / c.Banks())

	payload0 := []byte("bank zero dirty page")
	payload1 := []byte("bank one dirty page")
	w0, err := c.Write(0, 0, payload0) // page 0 -> bank 0
	if err != nil {
		t.Fatal(err)
	}
	w1, err := c.Write(w0.Done, P, payload1) // page 1 -> bank 1
	if err != nil {
		t.Fatal(err)
	}
	// Conflict in each bank: same bank, same set. For bank 0 that is
	// page 2*entriesPerBank (key = entriesPerBank ≡ 0 mod sets), for
	// bank 1 page 2*entriesPerBank+1.
	conflict0 := 2 * entriesPerBank * P
	conflict1 := conflict0 + P
	// Issue the conflicting misses back to back (the router keeps each
	// bank's arrivals nondecreasing) so both banks' eviction DMAs are
	// still in flight when the power dies.
	if _, err := c.Access(w1.Done, mem.Access{Addr: conflict0, Size: 64, Op: mem.Write}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Access(w1.Done+1, mem.Access{Addr: conflict1, Size: 64, Op: mem.Write}); err != nil {
		t.Fatal(err)
	}
	if c.Outstanding() < 2 {
		t.Fatalf("outstanding = %d, want in-flight evictions on both banks", c.Outstanding())
	}

	failAt := w1.Done + 2
	pf := c.PowerFail(failAt)
	if pf.TornWrites < 2 {
		t.Fatalf("torn writes = %d, want both banks' evictions torn", pf.TornWrites)
	}
	rec, err := c.Recover(failAt + sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Pending < 2 || rec.Replayed != rec.Pending {
		t.Fatalf("recovery %+v: want >= 2 pending, all replayed", rec)
	}
	got0 := make([]byte, len(payload0))
	c.PeekData(0, got0)
	if !bytes.Equal(got0, payload0) {
		t.Fatalf("bank 0 victim lost: %q", got0)
	}
	got1 := make([]byte, len(payload1))
	c.PeekData(P, got1)
	if !bytes.Equal(got1, payload1) {
		t.Fatalf("bank 1 victim lost: %q", got1)
	}
}

func TestPowerCycleWithAssociativityAndBanks(t *testing.T) {
	// Full power cycle on a 2-way, 2-bank instance: the system keeps
	// working and the journal clears.
	c := mustNew(t, assocConfig(Extend, Tight, 2, 2, tagstore.LRU))
	w, err := c.Write(0, 12345, []byte("assoc+bank survivor"))
	if err != nil {
		t.Fatal(err)
	}
	c.PowerFail(w.Done + 1)
	rec, err := c.Recover(w.Done + sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	// A second cycle finds a clean journal.
	c.PowerFail(rec.Done + sim.Second)
	rec2, err := c.Recover(rec.Done + 2*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Pending != 0 {
		t.Fatalf("journal not cleared across banks: %d pending", rec2.Pending)
	}
	got := make([]byte, 19)
	c.PeekData(12345, got)
	if string(got) != "assoc+bank survivor" {
		t.Fatalf("data lost: %q", got)
	}
}

func TestWaysBanksAccessors(t *testing.T) {
	c := mustNew(t, assocConfig(Extend, Loose, 4, 2, tagstore.Clock))
	if c.Ways() != 4 || c.Banks() != 2 {
		t.Fatalf("ways=%d banks=%d", c.Ways(), c.Banks())
	}
	if c.String() == "" {
		t.Fatal("String")
	}
	// Geometry must divide the cache exactly across banks.
	if c.CacheEntries()%2 != 0 {
		t.Fatalf("entries %d not divisible across banks", c.CacheEntries())
	}
}

func TestBankGeometryValidation(t *testing.T) {
	cfg := testConfig(Extend, Loose)
	cfg.Banks = 1 << 20 // more banks than cache pages
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for more banks than pages")
	}
}
