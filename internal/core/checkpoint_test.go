package core

import (
	"errors"
	"testing"

	"hams/internal/checkpoint"
	"hams/internal/mem"
	"hams/internal/sim"
)

// driveMixed issues a deterministic read/write mix and returns the
// completion times, so two controllers can be compared access by
// access.
func driveMixed(t *testing.T, c *Controller, start sim.Time, n int) []sim.Time {
	t.Helper()
	P := c.PageBytes()
	E := uint64(c.CacheEntries())
	out := make([]sim.Time, 0, n)
	now := start
	for i := 0; i < n; i++ {
		op := mem.Read
		if i%3 == 0 {
			op = mem.Write
		}
		// Stride past the cache every few accesses to keep misses,
		// fills and evictions in play.
		page := uint64(i) % (E + E/2 + 1)
		r, err := c.Access(now, mem.Access{Addr: page * P, Size: 64, Op: op})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r.Done)
		now += sim.Microsecond
	}
	return out
}

// TestCheckpointRestoreContinues: a controller saved mid-workload and
// restored onto a fresh instance continues bit-for-bit — same
// completion times, same stats, same data bytes.
func TestCheckpointRestoreContinues(t *testing.T) {
	cfg := DefaultConfig(Extend, Tight)
	cfg.MSHRs = 4
	a := mustNew(t, cfg)
	driveMixed(t, a, 0, 64)

	img := &checkpoint.Image{Version: checkpoint.SchemaVersion}
	if err := a.SaveCheckpoint(img); err != nil {
		t.Fatal(err)
	}
	b := mustNew(t, cfg)
	if err := b.RestoreCheckpoint(img); err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged after restore:\nlive     %+v\nrestored %+v", a.Stats(), b.Stats())
	}
	if a.Now() != b.Now() {
		t.Fatalf("clock diverged: %d vs %d", a.Now(), b.Now())
	}

	// Continue both on the same schedule: every completion time and the
	// final stats must match.
	resume := a.Now() + sim.Microsecond
	ta := driveMixed(t, a, resume, 64)
	tb := driveMixed(t, b, resume, 64)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("access %d completed at %d live, %d restored", i, ta[i], tb[i])
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged after continuation:\nlive     %+v\nrestored %+v", a.Stats(), b.Stats())
	}
}

// TestCheckpointAfterPowerFailRecovery: the checkpoint boundary
// composes with the durability path — an image taken right after
// PowerFail + journal-replay Recover captures the recovered state
// exactly (victim bytes restored, SRAM MSHR files and busy bits
// re-zeroed), and a restore of it behaves identically to the
// recovered controller.
func TestCheckpointAfterPowerFailRecovery(t *testing.T) {
	cfg := DefaultConfig(Extend, Tight)
	cfg.MSHRs = 4
	a := mustNew(t, cfg)
	E := uint64(a.CacheEntries())
	P := a.PageBytes()

	payload := []byte("dirty victim payload")
	if _, err := a.Write(0, 0, payload); err != nil {
		t.Fatal(err)
	}
	r, err := a.Write(sim.Microsecond, E*P, []byte("incoming"))
	if err != nil {
		t.Fatal(err)
	}
	pf := a.PowerFail(sim.Microsecond + r.Wait + 10)
	if pf.InFlight == 0 {
		t.Fatal("no commands in flight at the cut — test lost its window")
	}
	rec, err := a.Recover(sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed == 0 {
		t.Fatal("journal replay found nothing to re-issue")
	}

	img := &checkpoint.Image{Version: checkpoint.SchemaVersion}
	if err := a.SaveCheckpoint(img); err != nil {
		t.Fatal(err)
	}
	b := mustNew(t, cfg)
	if err := b.RestoreCheckpoint(img); err != nil {
		t.Fatal(err)
	}

	// The recovered victim bytes travel with the image.
	got := make([]byte, len(payload))
	b.PeekData(0, got)
	if string(got) != string(payload) {
		t.Fatalf("victim bytes lost through the checkpoint: %q", got)
	}
	// SRAM state is empty on both sides of the boundary.
	for _, bank := range b.banks {
		if bank.mshrs.Live() != 0 {
			t.Fatalf("bank %d: restored MSHR file has %d live entries", bank.id, bank.mshrs.Live())
		}
		if len(bank.live) != 0 {
			t.Fatalf("bank %d: restored in-flight table has %d entries", bank.id, len(bank.live))
		}
	}
	// And the recovered pair behaves identically from here on.
	resume := a.Now() + sim.Microsecond
	ta := driveMixed(t, a, resume, 32)
	tb := driveMixed(t, b, resume, 32)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("access %d completed at %d recovered, %d restored", i, ta[i], tb[i])
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestRestoreGeometryMismatch: an image restores only onto the
// hardware it was saved from.
func TestRestoreGeometryMismatch(t *testing.T) {
	cfg := DefaultConfig(Extend, Loose)
	a := mustNew(t, cfg)
	driveMixed(t, a, 0, 8)
	img := &checkpoint.Image{Version: checkpoint.SchemaVersion}
	if err := a.SaveCheckpoint(img); err != nil {
		t.Fatal(err)
	}

	for name, mut := range map[string]func(*Config){
		"ways":  func(c *Config) { c.Ways = 4 },
		"banks": func(c *Config) { c.Banks = 4 },
		"mshrs": func(c *Config) { c.MSHRs = 8 },
	} {
		other := DefaultConfig(Extend, Loose)
		mut(&other)
		b := mustNew(t, other)
		if err := b.RestoreCheckpoint(img); !errors.Is(err, checkpoint.ErrMismatch) {
			t.Errorf("%s mismatch: err = %v, want ErrMismatch", name, err)
		}
	}

	// Topology mismatch (Tight has no PCIe link): also refused.
	other := DefaultConfig(Extend, Tight)
	b := mustNew(t, other)
	if err := b.RestoreCheckpoint(img); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Errorf("topology mismatch: err = %v, want ErrMismatch", err)
	}
}

// TestRestoreCorruptSection: a truncated layer payload is refused
// with ErrCorrupt, never a panic.
func TestRestoreCorruptSection(t *testing.T) {
	cfg := DefaultConfig(Extend, Loose)
	a := mustNew(t, cfg)
	driveMixed(t, a, 0, 8)
	img := &checkpoint.Image{Version: checkpoint.SchemaVersion}
	if err := a.SaveCheckpoint(img); err != nil {
		t.Fatal(err)
	}
	for i := range img.Sections {
		mutilated := &checkpoint.Image{Version: img.Version, Sections: make([]checkpoint.Section, len(img.Sections))}
		copy(mutilated.Sections, img.Sections)
		s := &mutilated.Sections[i]
		if len(s.Data) < 4 {
			continue
		}
		s.Data = s.Data[:len(s.Data)/2]
		b := mustNew(t, cfg)
		if err := b.RestoreCheckpoint(mutilated); err == nil {
			t.Errorf("truncated section %q restored without error", s.Name)
		}
	}
}
