package core

import (
	"hams/internal/mem"
	"hams/internal/sim"
)

// Read performs a timed MMU read of len(p) bytes at addr and copies
// the data into p. The per-page functional copy happens immediately
// after each page's access so that pages which later get evicted by a
// conflicting part of the same request are read before they leave.
func (c *Controller) Read(t sim.Time, addr uint64, p []byte) (AccessResult, error) {
	a := mem.Access{Addr: addr, Size: uint32(len(p)), Op: mem.Read}
	return c.run(t, a, func(part mem.Access, cacheAddr uint64) {
		off := part.Addr - addr
		c.nvdimm.Store().ReadAt(cacheAddr, p[off:off+uint64(part.Size)])
	})
}

// Write performs a timed MMU write of p at addr. The functional bytes
// land in the NVDIMM cache page (write-back; eviction moves them to
// the archive later).
func (c *Controller) Write(t sim.Time, addr uint64, p []byte) (AccessResult, error) {
	a := mem.Access{Addr: addr, Size: uint32(len(p)), Op: mem.Write}
	return c.run(t, a, func(part mem.Access, cacheAddr uint64) {
		off := part.Addr - addr
		c.nvdimm.Store().WriteAt(cacheAddr, p[off:off+uint64(part.Size)])
	})
}

// run is the shared timed-access loop: it serves each page-part and
// invokes fn with the NVDIMM cache address holding that part.
func (c *Controller) run(t sim.Time, a mem.Access, fn func(part mem.Access, cacheAddr uint64)) (AccessResult, error) {
	if a.End() > c.Capacity() {
		return AccessResult{}, errBeyondCapacity(a, c.Capacity())
	}
	c.engine.AdvanceTo(t)
	var res AccessResult
	res.Hit = true
	first := true
	c.split = mem.AppendSplit(c.split[:0], a, c.cfg.PageBytes)
	for _, part := range c.split {
		r, cacheAddr, err := c.accessPage(t, part)
		if err != nil {
			return res, err
		}
		if fn != nil {
			fn(part, cacheAddr+part.Addr%c.cfg.PageBytes)
		}
		res.Done = r.Done
		if first {
			res.Hit = r.Hit
			first = false
		} else {
			res.Hit = res.Hit && r.Hit
		}
		res.Wait += r.Wait
		res.NVDIMM += r.NVDIMM
		res.DMA += r.DMA
		res.SSD += r.SSD
		res.Throttle += r.Throttle
		t = r.Done
	}
	c.stats.Accesses++
	if res.Hit {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	c.stats.WaitTime += res.Wait
	c.stats.NVDIMMTime += res.NVDIMM
	c.stats.DMATime += res.DMA
	c.stats.SSDTime += res.SSD
	return res, nil
}

// PeekData returns the current functional content of the MoS address
// range without any timing effect — reads through the NVDIMM cache to
// the archive. The tag-array probe does not update replacement state.
// Used by verification and examples.
func (c *Controller) PeekData(addr uint64, p []byte) {
	for _, part := range mem.SplitByPage(mem.Access{Addr: addr, Size: uint32(len(p)), Op: mem.Read}, c.cfg.PageBytes) {
		off := part.Addr - addr
		page := part.Addr / c.cfg.PageBytes
		b, set := c.route(page)
		if slot, ok := b.tags.Lookup(set, page); ok {
			cacheAddr := c.cacheAddr(b, slot) + part.Addr%c.cfg.PageBytes
			c.nvdimm.Store().ReadAt(cacheAddr, p[off:off+uint64(part.Size)])
			continue
		}
		// Not resident: read the archive functionally.
		devPage := c.dev.PageBytes()
		remain := p[off : off+uint64(part.Size)]
		cur := part.Addr
		for len(remain) > 0 {
			page := c.dev.Peek(cur / devPage)
			po := cur % devPage
			n := devPage - po
			if n > uint64(len(remain)) {
				n = uint64(len(remain))
			}
			copy(remain[:n], page[po:po+n])
			remain = remain[n:]
			cur += n
		}
	}
}
