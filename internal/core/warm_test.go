package core

import (
	"testing"

	"hams/internal/mem"
	"hams/internal/sim"
)

func TestWarmMakesRangeHit(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Tight))
	span := uint64(8) * c.PageBytes()
	c.Warm(0, span)
	var now sim.Time
	for addr := uint64(0); addr < span; addr += c.PageBytes() {
		r, err := c.Access(now, mem.Access{Addr: addr, Size: 64, Op: mem.Read})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Hit {
			t.Fatalf("warmed page at %#x missed", addr)
		}
		now = r.Done
	}
	if c.Stats().Misses != 0 {
		t.Fatalf("misses = %d after warm", c.Stats().Misses)
	}
}

func TestWarmDoesNotClobberDirtyState(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Tight))
	payload := []byte("dirty before warm")
	w, err := c.Write(0, 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	// Warming the conflicting tag must not replace a dirty entry (the
	// data would be silently lost).
	conflict := uint64(c.CacheEntries()) * c.PageBytes()
	c.Warm(conflict, c.PageBytes())
	got := make([]byte, len(payload))
	r, err := c.Read(w.Done, 0, got)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Hit {
		t.Fatal("dirty page displaced by Warm")
	}
	if string(got) != string(payload) {
		t.Fatalf("data lost: %q", got)
	}
}

func TestWarmDoesNotClobberBusyEntry(t *testing.T) {
	// An entry with an in-flight NVMe command (busy bit set) must be
	// left alone by Warm: re-tagging it would detach the completion
	// event from the entry it updates.
	c := mustNew(t, testConfig(Extend, Tight))
	payload := []byte("dirty then evicted")
	w, err := c.Write(0, 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	conflict := uint64(c.CacheEntries()) * c.PageBytes()
	// Miss on the same entry: the eviction is in flight and the entry
	// is busy with the conflict tag installed.
	r, err := c.Access(w.Done, mem.Access{Addr: conflict, Size: 64, Op: mem.Write})
	if err != nil {
		t.Fatal(err)
	}
	if c.Outstanding() == 0 {
		t.Fatal("expected in-flight command")
	}
	// Warming the original page targets the busy entry: it must skip.
	c.Warm(0, c.PageBytes())
	r2, err := c.Access(r.Done+sim.Second, mem.Access{Addr: conflict, Size: 8, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Hit {
		t.Fatal("busy entry was re-tagged by Warm")
	}
	// The original page must have been genuinely evicted, not faked
	// resident by Warm.
	r3, err := c.Access(r2.Done, mem.Access{Addr: 0, Size: 8, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Hit {
		t.Fatal("Warm installed a stale mapping over a busy entry")
	}
	got := make([]byte, len(payload))
	c.PeekData(0, got)
	if string(got) != string(payload) {
		t.Fatalf("evicted data lost: %q", got)
	}
}

func TestWarmClampsToCapacity(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Loose))
	c.Warm(c.Capacity()-c.PageBytes(), 100*c.PageBytes()) // overruns capacity
	c.Warm(0, 0)                                          // no-op
}

func TestPRPPoolPressureDrains(t *testing.T) {
	// With a tiny PRP pool, a burst of dirty evictions must drain the
	// oldest in-flight command instead of failing.
	cfg := testConfig(Extend, Loose)
	cfg.PRPSlots = 2
	c := mustNew(t, cfg)
	entries := uint64(c.CacheEntries())
	var now sim.Time
	// Dirty many conflicting entries, then force back-to-back evicts.
	for round := uint64(0); round < 6; round++ {
		for i := uint64(0); i < 4; i++ {
			addr := (round*entries + i) * c.PageBytes()
			if addr >= c.Capacity() {
				break
			}
			r, err := c.Write(now, addr, []byte{byte(round)})
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			now = r.Done
		}
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("no evictions exercised")
	}
}

func TestMultiCoreInterleavedAccess(t *testing.T) {
	// Emulate the 4-core driver: interleaved in-order arrivals from
	// four logical cores with overlapping working sets.
	c := mustNew(t, testConfig(Extend, Tight))
	times := make([]sim.Time, 4)
	span := uint64(32) * c.PageBytes()
	for step := 0; step < 200; step++ {
		// Pick the core with the smallest local time.
		core := 0
		for i, ct := range times {
			if ct < times[core] {
				core = i
			}
			_ = ct
		}
		addr := (uint64(step*97+core*13) % (span - 64))
		op := mem.Read
		if step%3 == 0 {
			op = mem.Write
		}
		r, err := c.Access(times[core], mem.Access{Addr: addr, Size: 64, Op: op})
		if err != nil {
			t.Fatal(err)
		}
		if r.Done < times[core] {
			t.Fatalf("time went backwards: %v -> %v", times[core], r.Done)
		}
		times[core] = r.Done
	}
	st := c.Stats()
	if st.Accesses != 200 {
		t.Fatalf("accesses = %d", st.Accesses)
	}
}

func TestPersistModeWaitAccounting(t *testing.T) {
	c := mustNew(t, testConfig(Persist, Loose))
	// Back-to-back misses at nearly the same time: the second must
	// record wait time from serialization.
	r1, err := c.Access(0, mem.Access{Addr: 0, Size: 64, Op: mem.Write})
	if err != nil {
		t.Fatal(err)
	}
	_ = r1
	r2, err := c.Access(1, mem.Access{Addr: c.PageBytes(), Size: 64, Op: mem.Write})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Wait == 0 {
		t.Fatal("persist-mode serialization recorded no wait")
	}
	if c.Stats().WaitTime == 0 {
		t.Fatal("WaitTime not accumulated")
	}
}

func TestFullPageWriteSkipsFill(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Tight))
	buf := make([]byte, c.PageBytes())
	if _, err := c.Write(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.FullPageWrites != 1 {
		t.Fatalf("FullPageWrites = %d", st.FullPageWrites)
	}
	if st.Fills != 0 {
		t.Fatalf("full-page write still filled: %d", st.Fills)
	}
}
