package core

import (
	"strings"
	"testing"

	"hams/internal/mem"
	"hams/internal/qos"
	"hams/internal/sim"
)

// TestReprogramValidation: runtime mutation is validated exactly like
// construction — no table, bad class, out-of-array mask and negative
// throttles are refused before anything changes.
func TestReprogramValidation(t *testing.T) {
	bare := mustNew(t, DefaultConfig(Extend, Loose))
	if err := bare.Reprogram(0, 0, 0); err == nil {
		t.Fatal("Reprogram without a QoS table accepted")
	}

	cfg := DefaultConfig(Extend, Loose)
	cfg.Ways = 4
	cfg.QoS = &qos.Table{Classes: []qos.Class{{Name: "a"}, {Name: "b"}}}
	c := mustNew(t, cfg)
	if err := c.Reprogram(5, 0, 0); err == nil {
		t.Fatal("out-of-range class accepted")
	}
	if err := c.Reprogram(0, 0x10, 0); err == nil {
		t.Fatal("mask beyond the 4-way array accepted")
	}
	if err := c.Reprogram(0, 0x3, -1); err == nil {
		t.Fatal("negative throttle accepted")
	}
	if n := c.QoSReconfigs(); n != 0 {
		t.Fatalf("rejected Reprograms still counted: %d", n)
	}
	if err := c.Reprogram(1, 0x3, 100); err != nil {
		t.Fatal(err)
	}
	if n := c.QoSReconfigs(); n != 1 {
		t.Fatalf("QoSReconfigs = %d, want 1", n)
	}
	cur := c.QoSCurrent()
	if cur[1].WayMask != 0x3 || cur[1].MBps != 100 {
		t.Fatalf("QoSCurrent[1] = %+v", cur[1])
	}
	// The caller's table is never mutated — the controller works on a
	// clone.
	if cfg.QoS.Classes[1].WayMask != 0 || cfg.QoS.Classes[1].MBps != 0 {
		t.Fatalf("Reprogram leaked into Config.QoS: %+v", cfg.QoS.Classes[1])
	}
}

// TestMaskShrinkWithInFlightFill: shrinking a class's mask while one of
// its fills is in flight into a now-forbidden way must (a) let the fill
// complete into the slot reserved at victim-selection time, (b) keep
// the resident page hittable afterwards — CAT masks gate victim
// selection, never residency — and (c) confine every later install to
// the shrunken mask.
func TestMaskShrinkWithInFlightFill(t *testing.T) {
	cfg := DefaultConfig(Extend, Loose)
	cfg.Ways = 4
	cfg.MSHRs = 4
	cfg.QoS = &qos.Table{Classes: []qos.Class{{Name: "only"}}} // full mask
	c := mustNew(t, cfg)
	E := uint64(c.CacheEntries())
	P := c.PageBytes()
	sets := E / 4

	// Miss A starts a fill; under LRU on an empty set it reserves way 0.
	rA, err := c.Access(0, mem.Access{Addr: 0, Size: 64, Op: mem.Write})
	if err != nil {
		t.Fatal(err)
	}
	if rA.Hit {
		t.Fatal("first access must miss")
	}
	// While that fill is still in flight, forbid ways 0-1.
	if rA.Done <= sim.Microsecond {
		t.Fatalf("fill finished too fast (%d) to be in flight at the reprogram", rA.Done)
	}
	if err := c.Reprogram(0, 0b1100, 0); err != nil {
		t.Fatal(err)
	}

	// (a)+(b): after the fill lands, page A is resident and hittable
	// even though it sits in a forbidden way.
	now := rA.Done + sim.Second
	rA2, err := c.Access(now, mem.Access{Addr: 0, Size: 64, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	if !rA2.Hit {
		t.Fatal("page filled into a now-forbidden way must stay hittable")
	}

	// (c): three more same-set misses must victimize only within ways
	// 2-3; page A in way 0 is never evicted.
	for i := 1; i <= 3; i++ {
		now += sim.Second
		r, err := c.Access(now, mem.Access{Addr: uint64(i) * sets * P, Size: 64, Op: mem.Write})
		if err != nil {
			t.Fatal(err)
		}
		if r.Hit {
			t.Fatalf("miss %d unexpectedly hit", i)
		}
	}
	now += sim.Second
	b := c.banks[0]
	if e := b.tags.Entry(0); !e.Valid || e.Tag != 0 {
		t.Fatalf("way 0 lost page A: %+v", e)
	}
	if e := b.tags.Entry(1); e.Valid {
		t.Fatalf("way 1 (forbidden) was filled after the shrink: %+v", e)
	}
	for w := 2; w < 4; w++ {
		if e := b.tags.Entry(w); !e.Valid {
			t.Fatalf("way %d (allowed) empty after 3 post-shrink misses", w)
		}
	}
	rA3, err := c.Access(now, mem.Access{Addr: 0, Size: 64, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	if !rA3.Hit {
		t.Fatal("page A evicted by post-shrink victim selection")
	}
}

// TestThrottleLowerKeepsDebt: lowering a class's MBA cap mid-run keeps
// the leaky bucket's accrued debt — the next transfer still waits out
// the backlog admitted under the old rate, and only bytes admitted
// after the change drain at the new slope.
func TestThrottleLowerKeepsDebt(t *testing.T) {
	mk := func() *Controller {
		cfg := DefaultConfig(Extend, Loose)
		cfg.QoS = &qos.Table{Classes: []qos.Class{{Name: "s", MBps: 1000}}}
		return mustNew(t, cfg)
	}
	keep, lower := mk(), mk()
	P := keep.PageBytes()

	// One miss accrues a page worth of fill debt (at 1000 MB/s ≈ 1
	// byte/ns that is PageBytes ns of backlog).
	step := func(c *Controller, now sim.Time, page uint64) AccessResult {
		t.Helper()
		r, err := c.Access(now, mem.Access{Addr: page * P, Size: 64, Op: mem.Write})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1k, r1l := step(keep, 0, 0), step(lower, 0, 0)
	if r1k != r1l {
		t.Fatalf("identical first misses diverged: %+v vs %+v", r1k, r1l)
	}

	// Halve one controller's cap while the debt is outstanding.
	if err := lower.Reprogram(0, 0, 500); err != nil {
		t.Fatal(err)
	}

	// The second miss pays the same admission debt in both runs: the
	// backlog was accrued under the old rate and is never forgiven (nor
	// re-priced) by the cap change.
	now := r1k.Done + sim.Microsecond
	r2k, r2l := step(keep, now, 1), step(lower, now, 1)
	if r2k.Throttle == 0 {
		t.Fatal("second miss saw no throttle: debt did not accrue")
	}
	if r2l.Throttle != r2k.Throttle {
		t.Fatalf("cap change re-priced accrued debt: %d vs %d", r2l.Throttle, r2k.Throttle)
	}

	// The second transfer's own bytes drain at the new slope, so the
	// third miss waits strictly longer under the halved cap.
	now = r2k.Done + sim.Microsecond
	if now < r2l.Done {
		now = r2l.Done + sim.Microsecond
	}
	r3k, r3l := step(keep, now, 2), step(lower, now, 2)
	if r3l.Throttle <= r3k.Throttle {
		t.Fatalf("halved cap did not slow the post-change drain: %d vs %d", r3l.Throttle, r3k.Throttle)
	}
}

// TestPolicyTimelineLatching: scheduled changes are latched at the
// first request at or after their time — deterministically on the
// simulated clock, never retroactively.
func TestPolicyTimelineLatching(t *testing.T) {
	cfg := DefaultConfig(Extend, Loose)
	cfg.Ways = 4
	cfg.QoS = &qos.Table{Classes: []qos.Class{{Name: "a"}}}
	cfg.QoSPolicy = []qos.TimedChange{
		{At: 2 * sim.Microsecond, Class: 0, Mask: 0b0011},
		{At: 4 * sim.Microsecond, Class: 0, Mask: 0b0011, MBps: 100},
	}
	c := mustNew(t, cfg)
	P := c.PageBytes()

	if _, err := c.Access(sim.Microsecond, mem.Access{Addr: 0, Size: 64, Op: mem.Read}); err != nil {
		t.Fatal(err)
	}
	if n := c.QoSReconfigs(); n != 0 {
		t.Fatalf("change latched before its time: %d reconfigs", n)
	}
	// A request past both timestamps latches both, in order.
	if _, err := c.Access(5*sim.Microsecond, mem.Access{Addr: P, Size: 64, Op: mem.Read}); err != nil {
		t.Fatal(err)
	}
	if n := c.QoSReconfigs(); n != 2 {
		t.Fatalf("QoSReconfigs = %d, want both scheduled changes latched", n)
	}
	cur := c.QoSCurrent()
	if cur[0].WayMask != 0b0011 || cur[0].MBps != 100 {
		t.Fatalf("final class state = %+v", cur[0])
	}
}

// TestPolicyConfigValidation: a timeline without a table, or one that
// fails schedule validation (t=0 entries, bad class/mask), is refused
// at construction.
func TestPolicyConfigValidation(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig(Extend, Loose)
		cfg.Ways = 4
		return cfg
	}

	cfg := base()
	cfg.QoSPolicy = []qos.TimedChange{{At: sim.Microsecond, Class: 0}}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "table") {
		t.Fatalf("timeline without a table: err = %v", err)
	}

	cfg = base()
	cfg.QoS = &qos.Table{Classes: []qos.Class{{Name: "a"}}}
	cfg.QoSPolicy = []qos.TimedChange{{At: 0, Class: 0}}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "t=0") {
		t.Fatalf("t=0 change: err = %v", err)
	}

	cfg = base()
	cfg.QoSController = &qos.Controller{}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "table") {
		t.Fatalf("controller without a table: err = %v", err)
	}
}
