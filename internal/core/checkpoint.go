package core

import (
	"fmt"

	"hams/internal/checkpoint"
	"hams/internal/sim"
)

// Checkpoint section names. One section per platform layer, so
// `hamstrace info` reports per-layer sizes and a future schema can add
// layers without disturbing these.
const (
	secEngine = "sim/engine"
	secCtl    = "core/ctl"
	secBanks  = "core/banks"
	secNVDIMM = "mem/nvdimm"
	secSSD    = "ssd/device"
	secIO     = "io/interconnect"
)

// Quiesce drives the platform to the checkpointable boundary: every
// pending event fires (advancing the clock to the last one), which
// retires every in-flight NVMe command and MSHR fill. It returns
// ErrNotQuiesced if any in-flight state survives — a wiring bug, since
// draining the event heap completes everything the pipeline issued.
func (c *Controller) Quiesce() error {
	c.engine.Drain()
	if n := c.engine.Pending(); n != 0 {
		return fmt.Errorf("%w: %d events still pending after drain", checkpoint.ErrNotQuiesced, n)
	}
	for _, b := range c.banks {
		if len(b.live) != 0 {
			return fmt.Errorf("%w: bank %d has %d in-flight commands", checkpoint.ErrNotQuiesced, b.id, len(b.live))
		}
		if b.mshrs != nil && b.mshrs.Live() != 0 {
			return fmt.Errorf("%w: bank %d has %d live MSHRs", checkpoint.ErrNotQuiesced, b.id, b.mshrs.Live())
		}
	}
	return nil
}

// Now returns the platform's simulated clock — after Quiesce, the
// instant the last in-flight event retired.
func (c *Controller) Now() sim.Time { return c.engine.Now() }

// AdvanceTo moves the quiesced platform's clock forward to t (never
// backward). A phase-split run aligns the platform clock with the
// cores' warm-up horizon before checkpointing, so the measured phase
// resumes on one timeline whether it continues live or from a restore.
func (c *Controller) AdvanceTo(t sim.Time) { c.engine.AdvanceTo(t) }

// SaveCheckpoint quiesces the platform and appends one section per
// layer to img. The NVDIMM section carries the full functional store,
// which includes every bank's queue rings and persisted head/tail
// pointers; the bank section carries only the SRAM-side state
// (tag arrays, counters, cursors).
func (c *Controller) SaveCheckpoint(img *checkpoint.Image) error {
	if err := c.Quiesce(); err != nil {
		return err
	}
	img.SimTime = int64(c.engine.Now())

	var eng checkpoint.Enc
	c.engine.SaveState(&eng)
	img.Add(secEngine, &eng)

	var ctl checkpoint.Enc
	c.saveCtl(&ctl)
	img.Add(secCtl, &ctl)

	var banks checkpoint.Enc
	banks.Count(len(c.banks))
	for _, b := range c.banks {
		b.saveState(&banks)
	}
	img.Add(secBanks, &banks)

	var nv checkpoint.Enc
	c.nvdimm.SaveState(&nv)
	img.Add(secNVDIMM, &nv)

	var dev checkpoint.Enc
	c.dev.SaveState(&dev)
	img.Add(secSSD, &dev)

	var io checkpoint.Enc
	io.Bool(c.link != nil)
	if c.link != nil {
		c.link.SaveState(&io)
	}
	io.Bool(c.dbus != nil)
	if c.dbus != nil {
		c.dbus.SaveState(&io)
	}
	img.Add(secIO, &io)
	return nil
}

// RestoreCheckpoint overlays img onto a freshly built controller with
// the same configuration. Order matters: the NVDIMM store is restored
// before the banks so the queue-ring pointer caches reload from the
// restored bytes, not the fresh ones.
func (c *Controller) RestoreCheckpoint(img *checkpoint.Image) error {
	sec := func(name string) (*checkpoint.Dec, error) { return img.Section(name) }

	d, err := sec(secEngine)
	if err != nil {
		return err
	}
	if err := c.engine.RestoreState(d); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}

	d, err = sec(secNVDIMM)
	if err != nil {
		return err
	}
	if err := c.nvdimm.RestoreState(d); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}

	d, err = sec(secSSD)
	if err != nil {
		return err
	}
	if err := c.dev.RestoreState(d); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}

	d, err = sec(secIO)
	if err != nil {
		return err
	}
	hasLink := d.Bool()
	if d.Err() == nil && hasLink != (c.link != nil) {
		return fmt.Errorf("%w: topology mismatch (link)", checkpoint.ErrMismatch)
	}
	if c.link != nil {
		if err := c.link.RestoreState(d); err != nil {
			return err
		}
	}
	hasBus := d.Bool()
	if d.Err() == nil && hasBus != (c.dbus != nil) {
		return fmt.Errorf("%w: topology mismatch (bus)", checkpoint.ErrMismatch)
	}
	if c.dbus != nil {
		if err := c.dbus.RestoreState(d); err != nil {
			return err
		}
	}
	if err := d.Finish(); err != nil {
		return err
	}

	d, err = sec(secCtl)
	if err != nil {
		return err
	}
	if err := c.restoreCtl(d); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}

	d, err = sec(secBanks)
	if err != nil {
		return err
	}
	n := d.Count(len(c.banks))
	if derr := d.Err(); derr != nil {
		return derr
	}
	if n != len(c.banks) {
		return fmt.Errorf("%w: controller has %d banks, image has %d", checkpoint.ErrMismatch, len(c.banks), n)
	}
	for _, b := range c.banks {
		if err := b.restoreState(d); err != nil {
			return err
		}
	}
	return d.Finish()
}

// saveCtl serializes controller-level state: a geometry stanza the
// restore side verifies, the stats, the persist/lock horizons and the
// whole QoS layer (masks, throttle, monitor, table, policy cursor,
// feedback controller).
func (c *Controller) saveCtl(enc *checkpoint.Enc) {
	enc.U64(c.cfg.PageBytes)
	enc.I64(int64(c.cfg.Banks))
	enc.I64(int64(c.cfg.Ways))
	enc.I64(int64(c.cfg.MSHRs))
	enc.U64(c.cacheBytes)
	enc.U64(c.pinnedBase)

	s := &c.stats
	enc.I64(s.Accesses)
	enc.I64(s.Hits)
	enc.I64(s.Misses)
	enc.I64(s.Evictions)
	enc.I64(s.RedundantSquashed)
	enc.I64(s.WaitQ)
	enc.I64(s.Fills)
	enc.I64(s.FullPageWrites)
	enc.I64(s.Coalesced)
	enc.I64(s.HitUnderMiss)
	enc.I64(s.MSHRStalls)
	enc.I64(int64(s.NVDIMMTime))
	enc.I64(int64(s.DMATime))
	enc.I64(int64(s.SSDTime))
	enc.I64(int64(s.WaitTime))
	enc.I64(int64(s.TotalTime))
	enc.I64(int64(s.ThrottleTime))
	enc.I64(s.Replayed)

	enc.I64(int64(c.lockFreeAt))

	enc.Bool(c.qosMon != nil)
	if c.qosMon != nil {
		enc.Count(len(c.qosMasks))
		for _, m := range c.qosMasks {
			enc.U64(m)
		}
		c.qosThr.SaveState(enc)
		c.qosMon.SaveState(enc)
		c.qosTab.SaveState(enc)
		enc.I64(int64(c.qosPolIdx))
		enc.I64(c.qosReconfigs)
		enc.Bool(c.qosCtl != nil)
		if c.qosCtl != nil {
			c.qosCtl.SaveState(enc)
		}
	}
}

func (c *Controller) restoreCtl(d *checkpoint.Dec) error {
	pageBytes := d.U64()
	banks := d.I64()
	ways := d.I64()
	mshrs := d.I64()
	cacheBytes := d.U64()
	pinnedBase := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if pageBytes != c.cfg.PageBytes || int(banks) != c.cfg.Banks || int(ways) != c.cfg.Ways ||
		int(mshrs) != c.cfg.MSHRs || cacheBytes != c.cacheBytes || pinnedBase != c.pinnedBase {
		return fmt.Errorf("%w: geometry differs (image: page=%d banks=%d ways=%d mshrs=%d cache=%d pinned=%d)",
			checkpoint.ErrMismatch, pageBytes, banks, ways, mshrs, cacheBytes, pinnedBase)
	}

	s := &c.stats
	s.Accesses = d.I64()
	s.Hits = d.I64()
	s.Misses = d.I64()
	s.Evictions = d.I64()
	s.RedundantSquashed = d.I64()
	s.WaitQ = d.I64()
	s.Fills = d.I64()
	s.FullPageWrites = d.I64()
	s.Coalesced = d.I64()
	s.HitUnderMiss = d.I64()
	s.MSHRStalls = d.I64()
	s.NVDIMMTime = sim.Time(d.I64())
	s.DMATime = sim.Time(d.I64())
	s.SSDTime = sim.Time(d.I64())
	s.WaitTime = sim.Time(d.I64())
	s.TotalTime = sim.Time(d.I64())
	s.ThrottleTime = sim.Time(d.I64())
	s.Replayed = d.I64()

	c.lockFreeAt = sim.Time(d.I64())

	hasQoS := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if hasQoS != (c.qosMon != nil) {
		return fmt.Errorf("%w: QoS layer presence differs", checkpoint.ErrMismatch)
	}
	if c.qosMon != nil {
		nm := d.Count(len(c.qosMasks))
		if err := d.Err(); err != nil {
			return err
		}
		if nm != len(c.qosMasks) {
			return fmt.Errorf("%w: %d class masks, image has %d", checkpoint.ErrMismatch, len(c.qosMasks), nm)
		}
		for i := range c.qosMasks {
			c.qosMasks[i] = d.U64()
		}
		if err := c.qosThr.RestoreState(d); err != nil {
			return err
		}
		if err := c.qosMon.RestoreState(d); err != nil {
			return err
		}
		if err := c.qosTab.RestoreState(d); err != nil {
			return err
		}
		c.qosPolIdx = int(d.I64())
		c.qosReconfigs = d.I64()
		hasCtl := d.Bool()
		if err := d.Err(); err != nil {
			return err
		}
		if hasCtl != (c.qosCtl != nil) {
			return fmt.Errorf("%w: SLO controller presence differs", checkpoint.ErrMismatch)
		}
		if c.qosCtl != nil {
			if err := c.qosCtl.RestoreState(d); err != nil {
				return err
			}
		}
	}
	return d.Err()
}

// saveState serializes a bank's SRAM-side state. The queue rings and
// their persisted pointers live in the NVDIMM store section; in-flight
// tables are empty at the quiesced boundary (enforced by Quiesce).
func (b *bank) saveState(enc *checkpoint.Enc) {
	b.tags.SaveState(enc)
	b.qp.SaveState(enc)
	b.prp.SaveState(enc)
	enc.Bool(b.mshrs != nil)
	if b.mshrs != nil {
		enc.I64(b.mshrs.nextSeq)
	}
	enc.Bool(b.owner != nil)
	if b.owner != nil {
		enc.Count(len(b.owner))
		for _, o := range b.owner {
			enc.U64(uint64(o))
		}
	}
	enc.I64(int64(b.lastIODone))
	enc.I64(int64(b.lastArrival))
}

func (b *bank) restoreState(d *checkpoint.Dec) error {
	if err := b.tags.RestoreState(d); err != nil {
		return fmt.Errorf("bank %d tags: %w", b.id, err)
	}
	if err := b.qp.RestoreState(d); err != nil {
		return fmt.Errorf("bank %d queue pair: %w", b.id, err)
	}
	if err := b.prp.RestoreState(d); err != nil {
		return fmt.Errorf("bank %d PRP pool: %w", b.id, err)
	}
	hasMSHR := d.Bool()
	if d.Err() == nil && hasMSHR != (b.mshrs != nil) {
		return fmt.Errorf("%w: bank %d MSHR file presence differs", checkpoint.ErrMismatch, b.id)
	}
	if b.mshrs != nil {
		b.mshrs.nextSeq = d.I64()
		b.mshrs.Reset()
	}
	hasOwner := d.Bool()
	if d.Err() == nil && hasOwner != (b.owner != nil) {
		return fmt.Errorf("%w: bank %d owner table presence differs", checkpoint.ErrMismatch, b.id)
	}
	if b.owner != nil {
		n := d.Count(len(b.owner))
		if err := d.Err(); err != nil {
			return err
		}
		if n != len(b.owner) {
			return fmt.Errorf("%w: bank %d owner table is %d slots, image has %d", checkpoint.ErrMismatch, b.id, len(b.owner), n)
		}
		for i := range b.owner {
			b.owner[i] = uint8(d.U64())
		}
	}
	b.live = b.live[:0]
	b.lastIODone = sim.Time(d.I64())
	b.lastArrival = sim.Time(d.I64())
	return d.Err()
}
