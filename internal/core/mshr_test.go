package core

import (
	"testing"

	"hams/internal/mem"
	"hams/internal/qos"
	"hams/internal/sim"
)

// conflictConvoy drives N dirty same-set misses with tightly spaced
// arrivals — the worst case for a blocking miss pipeline: every miss
// must reuse the one slot its set owns, and under the blocking
// pipeline each one parks until the predecessor's writeback AND fill
// both retire. It returns the total request latency (sum of
// Done - arrival) and the controller.
func conflictConvoy(t *testing.T, cfg Config, n int) (sim.Time, *Controller) {
	t.Helper()
	c := mustNew(t, cfg)
	E := uint64(c.CacheEntries())
	P := c.PageBytes()
	var now, total sim.Time
	for i := 0; i < n; i++ {
		r, err := c.Access(now, mem.Access{Addr: uint64(i) * E * P, Size: 64, Op: mem.Write})
		if err != nil {
			t.Fatal(err)
		}
		total += r.Done - now
		now += sim.Microsecond
	}
	return total, c
}

// TestMLPOverlapGolden pins the non-blocking pipeline's win: at MSHR
// depth >= 4 the demand fill composes ahead of the deferred victim
// writeback, so a convoy of conflicting dirty misses overlaps each
// miss's fill with its predecessor's writeback. Mean miss latency
// and the peak NVMe queue depth must both improve over depth 1 (the
// paper's blocking pipeline), and the depth-1 numbers must stay
// bit-for-bit the seed's. Goldens recorded from this implementation;
// they change only if the device/interconnect models change.
func TestMLPOverlapGolden(t *testing.T) {
	const n = 16
	goldens := map[Topology]struct{ total1, total4 sim.Time }{
		Loose: {total1: 13544262, total4: 8430102},
		Tight: {total1: 29775598, total4: 25277353},
	}
	for tp, want := range goldens {
		cfg1 := DefaultConfig(Extend, tp) // MSHRs zero value = blocking
		total1, c1 := conflictConvoy(t, cfg1, n)

		cfg4 := DefaultConfig(Extend, tp)
		cfg4.MSHRs = 4
		total4, c4 := conflictConvoy(t, cfg4, n)

		if total1 != want.total1 {
			t.Errorf("%v: blocking total latency %d, want golden %d", tp, total1, want.total1)
		}
		if total4 != want.total4 {
			t.Errorf("%v: depth-4 total latency %d, want golden %d", tp, total4, want.total4)
		}
		// Depth >= 4 must measurably overlap fills with writebacks:
		// at least 15% lower mean miss latency...
		if total4*100 >= total1*85 {
			t.Errorf("%v: depth 4 did not overlap: mean %d vs blocking %d",
				tp, total4/n, total1/n)
		}
		// ...and a deeper NVMe queue actually driven.
		if p1, p4 := c1.PeakQueueDepth(), c4.PeakQueueDepth(); p4 <= p1 {
			t.Errorf("%v: peak queue depth %d at depth 4, want > blocking %d", tp, p4, p1)
		}
		// The work done is identical — only the schedule changed.
		s1, s4 := c1.Stats(), c4.Stats()
		if s1.Fills != s4.Fills || s1.Evictions != s4.Evictions || s1.Misses != s4.Misses {
			t.Errorf("%v: work drifted: blocking %+v vs depth4 %+v", tp, s1, s4)
		}
		if s4.MSHRStalls != 0 {
			// One slot serializes the convoy before the file ever
			// fills: a full-file stall here means the file is leaking.
			t.Errorf("%v: unexpected MSHR-full stalls: %d", tp, s4.MSHRStalls)
		}
	}
}

// TestMissCoalescing: a second access to a page whose fill is in
// flight coalesces onto the primary's MSHR — exactly one fill is
// composed, the secondary parks only until the data is resident, and
// the coalesced counter records it.
func TestMissCoalescing(t *testing.T) {
	cfg := DefaultConfig(Extend, Loose)
	cfg.MSHRs = 4
	c := mustNew(t, cfg)
	P := c.PageBytes()

	r1, err := c.Access(0, mem.Access{Addr: 7 * P, Size: 64, Op: mem.Write})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hit {
		t.Fatal("first access must miss")
	}
	// Concurrent miss to the same page, 1us later: long before the
	// fill lands.
	r2, err := c.Access(sim.Microsecond, mem.Access{Addr: 7*P + 128, Size: 64, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Fills != 1 {
		t.Fatalf("composed %d fills for concurrent misses to one page, want exactly 1", st.Fills)
	}
	if st.Coalesced != 1 {
		t.Fatalf("Coalesced = %d, want 1", st.Coalesced)
	}
	if !r2.Hit {
		t.Fatal("coalesced secondary must count as a hit (no second fill)")
	}
	if r2.Wait == 0 {
		t.Fatal("secondary must park until the primary's data is resident")
	}
	// The secondary resumes when the primary's data lands — it must
	// finish within the demand-access epsilon of the primary, not a
	// second fill later.
	if r2.Done > r1.Done+sim.Microsecond {
		t.Fatalf("secondary finished at %v, a fill after the primary's %v", r2.Done, r1.Done)
	}
}

// TestHitUnderMiss: with fills outstanding, a hit to a resident page
// is served immediately — no wait — and counted.
func TestHitUnderMiss(t *testing.T) {
	cfg := DefaultConfig(Extend, Loose)
	cfg.MSHRs = 4
	c := mustNew(t, cfg)
	P := c.PageBytes()

	// Make page 3 resident (miss completes, nothing else in flight).
	r, err := c.Access(0, mem.Access{Addr: 3 * P, Size: 64, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	now := r.Done
	// Launch a miss to another set, then hit page 3 while it flies.
	if _, err := c.Access(now, mem.Access{Addr: 9 * P, Size: 64, Op: mem.Read}); err != nil {
		t.Fatal(err)
	}
	rh, err := c.Access(now+sim.Microsecond, mem.Access{Addr: 3 * P, Size: 64, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	if !rh.Hit || rh.Wait != 0 {
		t.Fatalf("hit under miss parked: hit=%v wait=%v", rh.Hit, rh.Wait)
	}
	if st := c.Stats(); st.HitUnderMiss != 1 {
		t.Fatalf("HitUnderMiss = %d, want 1", st.HitUnderMiss)
	}
}

// TestMSHRFileFullParks: more concurrent primary misses than
// registers — the excess parks in the wait queue and the stall
// counter records it; the blocking pipeline (depth 1) composes them
// all without MSHR stalls.
func TestMSHRFileFullParks(t *testing.T) {
	cfg := DefaultConfig(Extend, Loose)
	cfg.MSHRs = 2
	c := mustNew(t, cfg)
	P := c.PageBytes()

	// Four clean misses to four different sets, 1us apart: fills take
	// tens of microseconds, so the 3rd and 4th find the file full.
	var now sim.Time
	for i := 0; i < 4; i++ {
		if _, err := c.Access(now, mem.Access{Addr: uint64(i) * P, Size: 64, Op: mem.Read}); err != nil {
			t.Fatal(err)
		}
		now += sim.Microsecond
	}
	st := c.Stats()
	if st.MSHRStalls != 2 {
		t.Fatalf("MSHRStalls = %d, want 2 (3rd and 4th miss)", st.MSHRStalls)
	}
	if st.WaitQ != 2 {
		t.Fatalf("WaitQ = %d, want 2", st.WaitQ)
	}
	if st.WaitTime == 0 {
		t.Fatal("full-file parks charged no wait time")
	}
}

// TestSquashCounterSplit pins the WaitQ / RedundantSquashed split: a
// wait on a victim whose in-flight work was fill-only suppresses no
// eviction (WaitQ alone); a wait on a victim with a dirty writeback
// in flight is the Figure 14 squash (both counters).
func TestSquashCounterSplit(t *testing.T) {
	cfg := DefaultConfig(Extend, Loose) // blocking pipeline
	c := mustNew(t, cfg)
	E := uint64(c.CacheEntries())
	P := c.PageBytes()

	// Miss 1: clean fill of page 0 (slot was invalid — no writeback).
	if _, err := c.Access(0, mem.Access{Addr: 0, Size: 64, Op: mem.Write}); err != nil {
		t.Fatal(err)
	}
	// Miss 2, same set, 1us later: parks on the fill-only busy slot.
	if _, err := c.Access(sim.Microsecond, mem.Access{Addr: E * P, Size: 64, Op: mem.Write}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.WaitQ != 1 || st.RedundantSquashed != 0 {
		t.Fatalf("fill-only wait: WaitQ=%d squashed=%d, want 1/0", st.WaitQ, st.RedundantSquashed)
	}
	// Miss 3, same set again: miss 2 evicted dirty page 0, so its
	// in-flight work includes a writeback — a true squash.
	if _, err := c.Access(2*sim.Microsecond, mem.Access{Addr: 2 * E * P, Size: 64, Op: mem.Write}); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.WaitQ != 2 || st.RedundantSquashed != 1 {
		t.Fatalf("writeback wait: WaitQ=%d squashed=%d, want 2/1", st.WaitQ, st.RedundantSquashed)
	}
}

// TestMSHRQoSFullMaskTimingParity: the non-blocking pipeline under a
// full-mask, unthrottled QoS table must be bit-for-bit the
// non-blocking pipeline without QoS — MSHR occupancy respects CAT
// masks through the same VictimMasked path the blocking pipeline
// uses, and a full mask must not perturb it.
func TestMSHRQoSFullMaskTimingParity(t *testing.T) {
	mk := func(withQoS bool) *Controller {
		cfg := DefaultConfig(Extend, Loose)
		cfg.Ways = 4
		cfg.MSHRs = 4
		if withQoS {
			cfg.QoS = &qos.Table{Classes: []qos.Class{{Name: "a"}, {Name: "b"}}}
		}
		return mustNew(t, cfg)
	}
	a, b := mk(false), mk(true)
	E := uint64(a.CacheEntries())
	P := a.PageBytes()
	var now sim.Time
	for i := 0; i < 24; i++ {
		acc := mem.Access{Addr: (uint64(i%6) * E / 4) * P, Size: 64, Op: mem.Write, Class: uint8(i % 2)}
		ra, err := a.Access(now, acc)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Access(now, acc)
		if err != nil {
			t.Fatal(err)
		}
		// The QoS run reports zero throttle (unthrottled classes); all
		// physical timings must match exactly.
		rb.Throttle = 0
		if ra != rb {
			t.Fatalf("step %d: no-QoS %+v != full-mask QoS %+v", i, ra, rb)
		}
		now = ra.Done + sim.Microsecond
	}
}

// TestMSHRMaskedConfinement: under the non-blocking pipeline a
// partitioned class's misses still install only into its permitted
// ways — outstanding fills never leak across the CAT boundary.
func TestMSHRMaskedConfinement(t *testing.T) {
	cfg := DefaultConfig(Extend, Loose)
	cfg.Ways = 4
	cfg.MSHRs = 4
	cfg.QoS = &qos.Table{Classes: []qos.Class{
		{Name: "left", WayMask: 0b0011},
		{Name: "right", WayMask: 0b1100},
	}}
	c := mustNew(t, cfg)
	E := uint64(c.CacheEntries())
	P := c.PageBytes()
	sets := E / 4

	// Class 0 misses many pages of set 0 back to back (in-flight
	// overlap included), then class 1 does the same.
	var now sim.Time
	for i := 0; i < 8; i++ {
		cls := uint8(i / 4)
		r, err := c.Access(now, mem.Access{Addr: uint64(i) * sets * P, Size: 64, Op: mem.Write, Class: cls})
		if err != nil {
			t.Fatal(err)
		}
		_ = r
		now += sim.Microsecond
	}
	// Drain everything, then verify residency: set 0's ways 0-1 hold
	// class-0 pages, ways 2-3 class-1 pages.
	now += sim.Second
	b := c.banks[0]
	for w := 0; w < 4; w++ {
		e := b.tags.Entry(w)
		if !e.Valid {
			t.Fatalf("way %d empty after 8 installs", w)
		}
		idx := e.Tag / sets // which access installed this page
		if w < 2 && idx >= 4 {
			t.Fatalf("way %d (left partition) holds class-1 page %d", w, e.Tag)
		}
		if w >= 2 && idx < 4 {
			t.Fatalf("way %d (right partition) holds class-0 page %d", w, e.Tag)
		}
	}
}

// TestMSHRPowerFailRecovery: a power cut with a deferred writeback
// and fills in flight must recover through the journal exactly like
// the blocking pipeline — the MSHR file is SRAM and resets, and the
// replayed clone restores the victim's bytes.
func TestMSHRPowerFailRecovery(t *testing.T) {
	cfg := DefaultConfig(Extend, Tight)
	cfg.MSHRs = 4
	c := mustNew(t, cfg)
	E := uint64(c.CacheEntries())
	P := c.PageBytes()

	payload := []byte("dirty victim payload")
	if _, err := c.Write(0, 0, payload); err != nil {
		t.Fatal(err)
	}
	// Conflict miss: page 0 is cloned and its writeback deferred
	// behind the fill of page E.
	r, err := c.Write(sim.Microsecond, E*P, []byte("incoming"))
	if err != nil {
		t.Fatal(err)
	}
	// Cut the power while the deferred writeback is still in flight.
	pf := c.PowerFail(sim.Microsecond + r.Wait + 10)
	if pf.InFlight == 0 {
		t.Fatal("no commands in flight at the cut — test lost its window")
	}
	rec, err := c.Recover(sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replayed == 0 {
		t.Fatal("journal replay found nothing to re-issue")
	}
	got := make([]byte, len(payload))
	c.PeekData(0, got)
	if string(got) != string(payload) {
		t.Fatalf("victim bytes lost across power failure: %q", got)
	}
	// The MSHR file must be empty after the cut.
	for _, b := range c.banks {
		if b.mshrs.Live() != 0 {
			t.Fatalf("bank %d: %d MSHRs survived the power cut", b.id, b.mshrs.Live())
		}
	}
}

// TestQueueDepthCap: a queue-depth cap delays composition until a
// completion reaps a slot; the peak outstanding never exceeds it.
func TestQueueDepthCap(t *testing.T) {
	run := func(qd int) (*Controller, sim.Time) {
		cfg := DefaultConfig(Extend, Loose)
		cfg.MSHRs = 8
		cfg.QueueDepth = qd
		c := mustNew(t, cfg)
		P := c.PageBytes()
		var now, total sim.Time
		for i := 0; i < 12; i++ {
			r, err := c.Access(now, mem.Access{Addr: uint64(i) * P, Size: 64, Op: mem.Read})
			if err != nil {
				t.Fatal(err)
			}
			total += r.Done - now
			now += sim.Microsecond
		}
		return c, total
	}
	free, _ := run(0)
	capped, _ := run(2)
	if p := capped.PeakQueueDepth(); p > 2 {
		t.Fatalf("peak queue depth %d exceeds cap 2", p)
	}
	if free.PeakQueueDepth() <= 2 {
		t.Fatalf("uncapped run drove only %d outstanding — cap test has no headroom", free.PeakQueueDepth())
	}
}
