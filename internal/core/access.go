package core

import (
	"fmt"

	"hams/internal/mem"
	"hams/internal/nvme"
	"hams/internal/qos"
	"hams/internal/sim"
)

// AccessResult reports the timing of one MMU request.
type AccessResult struct {
	Done   sim.Time
	Hit    bool
	Wait   sim.Time // time parked behind busy bits / persist serialization
	NVDIMM sim.Time // NVDIMM array time on the critical path
	DMA    sim.Time // interface/DMA transfer time on the critical path
	SSD    sim.Time // device-internal (HIL/buffer/flash) time

	// Throttle is the MBA pacing debt the QoS throttle charged this
	// request's class. It is deliberately NOT folded into Done: the
	// driver applies it to the issuing core at its next scheduling
	// boundary, so throttling paces the offender without inflating
	// the arrival timestamps of its in-flight work (which would stall
	// other classes behind an idle bank router — the inversion the
	// throttle exists to prevent).
	Throttle sim.Time
}

// Access serves one MMU memory request arriving at time t, timing
// only (no data movement into caller buffers). Requests must be
// presented in nondecreasing arrival order (the multi-core driver
// guarantees this); the front-end router additionally clamps each
// bank's arrivals so every bank observes nondecreasing times. The
// returned AccessResult carries the completion time and the latency
// decomposition used by Fig. 18.
func (c *Controller) Access(t sim.Time, a mem.Access) (AccessResult, error) {
	return c.run(t, a, nil)
}

func errBeyondCapacity(a mem.Access, cap uint64) error {
	return fmt.Errorf("core: access %v beyond MoS capacity %d", a, cap)
}

// accessPage serves one page-granular part of a request on the bank
// that owns it. It returns the timing result and the NVDIMM byte
// address of the cache page that served the part (for functional
// copies).
func (c *Controller) accessPage(t sim.Time, a mem.Access) (AccessResult, uint64, error) {
	start := t
	// Dynamic QoS: latch every scheduled policy change due by this
	// arrival. Arrivals are globally nondecreasing (the multi-core
	// driver's contract), so the timeline is applied at deterministic
	// step boundaries before any routing or victim selection.
	if c.qosPolIdx < len(c.qosPolicy) {
		c.applyPolicy(t)
	}
	page := a.Addr / c.cfg.PageBytes
	b, set := c.route(page)

	// Front-end router: each bank sees nondecreasing arrival times.
	if t < b.lastArrival {
		t = b.lastArrival
	}
	b.lastArrival = t

	// QoS: resolve the request's class of service. The monitor samples
	// on simulated time as traffic flows through the router.
	cls := qos.ClassID(0)
	if c.qosMon != nil {
		cls = qos.ClassID(c.classIndex(a.Class))
		c.qosMon.Tick(t)
	}

	var res AccessResult

	if slot, ok := b.tags.Lookup(set, page); ok {
		e := b.tags.Entry(slot)
		// Hit — but another core's fill for this tag may still be in
		// flight; the request parks until the data is resident. With
		// MSHRs this is miss coalescing: the secondary rides the
		// primary's register instead of composing a redundant fill.
		if e.ReadyAt > t {
			c.stats.WaitQ++
			if b.mshrs != nil && b.mshrs.HasPage(page) {
				c.stats.Coalesced++
			}
			res.Wait += e.ReadyAt - t
			t = e.ReadyAt
			c.engine.AdvanceTo(t)
		} else if b.mshrs != nil && b.mshrs.Live() > 0 {
			// Hit-under-miss: served immediately while the bank has
			// fills outstanding.
			c.stats.HitUnderMiss++
		}
		res.Hit = true
		cacheAddr := c.cacheAddr(b, slot)
		done := c.demandAccess(t, cacheAddr+a.Addr%c.cfg.PageBytes, a.Size, a.Op)
		if a.Op == mem.Write {
			e.Dirty = true
		}
		b.tags.Touch(slot)
		if c.qosMon != nil {
			c.qosMon.OnHit(cls)
		}
		res.NVDIMM += done - t
		res.Done = done + c.cfg.NotifyLat
		c.stats.TotalTime += res.Done - start
		return res, cacheAddr, nil
	}

	// Miss: pick the victim way within the class's permitted ways (the
	// CAT capacity mask; the default full mask considers every way).
	// When every permitted way in the set is busy the request parks in
	// the wait queue until the earliest slot is reusable (Figure 14).
	// Under the blocking pipeline that is the slot's last command
	// completion; under the MSHR pipeline an in-flight eviction drains
	// from its PRP clone, so the slot frees at fill completion. The
	// wait suppresses a redundant eviction only when the in-flight
	// work included a dirty writeback (EvictBusy) — a fill-only busy
	// slot elides nothing, so it counts toward WaitQ alone.
	var slot int
	if c.qosMasks != nil {
		slot = b.tags.VictimMasked(set, c.qosMasks[cls])
	} else {
		slot = b.tags.Victim(set)
	}
	e := b.tags.Entry(slot)
	if e.Busy && e.FreeAt > t {
		c.stats.WaitQ++
		if e.EvictBusy {
			c.stats.RedundantSquashed++
		}
		res.Wait += e.FreeAt - t
		t = e.FreeAt
		c.engine.AdvanceTo(t)
	}

	// MSHR allocation: a primary miss arriving with every register
	// live parks until the earliest outstanding miss retires.
	for b.mshrs != nil && b.mshrs.Full() {
		w := b.mshrs.EarliestDone()
		if w <= t {
			// Retirement events up to t have not fired yet; flush them.
			c.engine.AdvanceTo(t)
			if b.mshrs.Full() {
				break // defensive: never livelock on a stuck register
			}
			continue
		}
		c.stats.WaitQ++
		c.stats.MSHRStalls++
		res.Wait += w - t
		t = w
		c.engine.AdvanceTo(t)
	}

	// Persist mode serializes per bank: wait for the bank's previous
	// I/O to retire.
	if c.cfg.Mode == Persist && b.lastIODone > t {
		res.Wait += b.lastIODone - t
		t = b.lastIODone
		c.engine.AdvanceTo(t)
	}

	// The write covering the whole page skips the fill.
	fullPageWrite := a.Op == mem.Write && uint64(a.Size) >= c.cfg.PageBytes &&
		a.Addr%c.cfg.PageBytes == 0

	// QoS: the MBA-style throttle meters the archive traffic this miss
	// generates (dirty-victim writeback + fill). The pacing debt is
	// charged to the requesting class's completion below — never to
	// the shared command/DMA path, which would reserve the NVDIMM bus
	// at future instants and stall other classes behind an idle
	// reservation. An unthrottled class accrues no debt.
	if c.qosThr != nil {
		var xfer int64
		if e.Valid && e.Dirty {
			xfer += int64(c.cfg.PageBytes)
		}
		if !fullPageWrite {
			xfer += int64(c.cfg.PageBytes)
		}
		if adm := c.qosThr.Admit(cls, t, xfer); adm > t {
			res.Throttle = adm - t
			c.qosMon.OnThrottle(cls, res.Throttle)
			c.stats.ThrottleTime += res.Throttle
		}
	}

	now := t
	dirtyVictim := e.Valid && e.Dirty
	var evictComplete sim.Time

	// Blocking pipeline: the writeback is composed before the fill,
	// so the demand fill queues behind the entire victim transfer —
	// interface, device HIL and flash programs included.
	if dirtyVictim && b.mshrs == nil {
		d, r, err := c.evict(b, now, slot)
		if err != nil {
			return res, 0, err
		}
		evictComplete = d
		res.DMA += r.DMA
		res.NVDIMM += r.NVDIMM
		res.SSD += r.SSD
		c.stats.Evictions++
		if c.qosMon != nil {
			c.qosMon.OnWriteback(cls, int64(c.cfg.PageBytes))
		}
	}

	// Non-blocking pipeline: snapshot the victim into the PRP pool
	// now (the Figure 14 clone — in-place fills can never corrupt the
	// in-flight writeback), compose the demand fill first, and defer
	// the writeback behind it, off the demand's critical path.
	var prpAddr, victimAddr uint64
	fillStart := now
	if dirtyVictim && b.mshrs != nil {
		victimAddr = e.Tag * c.cfg.PageBytes
		var d sim.Time
		var r pathCost
		var err error
		prpAddr, d, r, err = c.cloneVictim(b, now, slot)
		if err != nil {
			return res, 0, err
		}
		fillStart = d
		res.NVDIMM += r.NVDIMM
	}

	// Fill the target page, unless the write covers the whole page.
	fillDone := fillStart
	var fillComplete sim.Time
	if fullPageWrite {
		c.stats.FullPageWrites++
	} else {
		d, cp, r, err := c.fill(b, fillStart, slot, page)
		if err != nil {
			return res, 0, err
		}
		fillDone = d
		fillComplete = cp
		res.DMA += r.DMA
		res.NVDIMM += r.NVDIMM
		res.SSD += r.SSD
		c.stats.Fills++
		if c.qosMon != nil {
			c.qosMon.OnFill(cls, int64(c.cfg.PageBytes))
		}
	}

	// Compose the deferred writeback: it drains from the clone while
	// the demand (and, under MSHRs, younger misses) proceed.
	if dirtyVictim && b.mshrs != nil {
		d, r, err := c.composeEvict(b, fillStart, slot, prpAddr, victimAddr)
		if err != nil {
			return res, 0, err
		}
		evictComplete = d
		res.DMA += r.DMA
		res.NVDIMM += r.NVDIMM
		res.SSD += r.SSD
		c.stats.Evictions++
		if c.qosMon != nil {
			c.qosMon.OnWriteback(cls, int64(c.cfg.PageBytes))
		}
	}

	// Install the new mapping. The entry stays busy until every
	// in-flight command for it completes; the data itself is usable
	// from fillDone.
	busyUntil := fillComplete
	if evictComplete > busyUntil {
		busyUntil = evictComplete
	}
	if c.qosMon != nil {
		c.qosMon.OnMiss(cls)
		c.qosMon.Install(cls, b.owner[slot], e.Valid)
		b.owner[slot] = cls
	}
	e.Tag = page
	e.Valid = true
	e.Dirty = a.Op == mem.Write
	e.ReadyAt = fillDone
	e.Busy = busyUntil > now
	e.BusyUntil = busyUntil
	// The in-flight eviction pins the slot only under the blocking
	// pipeline; with MSHRs the writeback drains from its PRP clone and
	// the slot frees when the inbound fill retires.
	e.FreeAt = busyUntil
	if b.mshrs != nil {
		e.FreeAt = now
		if fillComplete > e.FreeAt {
			e.FreeAt = fillComplete
		}
	}
	e.EvictBusy = e.Busy && evictComplete > now
	b.tags.Touch(slot)
	if e.Busy {
		c.engine.ScheduleCall(busyUntil, b, evBusyClear, int64(slot))
		if b.mshrs != nil {
			seq := b.mshrs.Insert(page, busyUntil)
			c.engine.ScheduleCall(busyUntil, b, evMSHRRetire, seq)
		}
	}
	if c.cfg.Mode == Persist && busyUntil > b.lastIODone {
		b.lastIODone = busyUntil
	}

	// The MMU resumes once the fill data is in NVDIMM: perform the
	// demand access against the cache page. Res carries any MBA debt
	// separately (res.Throttle) — the installed entry's ReadyAt and
	// BusyUntil stay physical, so other classes touching the page are
	// never penalized for this class's throttle.
	cacheAddr := c.cacheAddr(b, slot)
	done := c.demandAccess(fillDone, cacheAddr+a.Addr%c.cfg.PageBytes, a.Size, a.Op)
	res.NVDIMM += done - fillDone
	res.Done = done + c.cfg.NotifyLat
	c.stats.TotalTime += res.Done - start
	return res, cacheAddr, nil
}

// demandAccess is an MMU-side NVDIMM access; in tight topology it must
// wait for any NVMe-controller DMA holding the lock register.
func (c *Controller) demandAccess(t sim.Time, addr uint64, size uint32, op mem.Op) sim.Time {
	if c.cfg.Topology == Tight && c.lockFreeAt > t {
		t = c.lockFreeAt
	}
	return c.nvdimm.Access(t, addr, size, op)
}

type pathCost struct {
	NVDIMM sim.Time
	DMA    sim.Time
	SSD    sim.Time
}

// evict clones the victim page into the bank's PRP pool, composes an
// NVMe write, and transfers the clone to the device. In extend mode
// the transfer runs in the background (the caller only waits if it
// touches the same entry again); in persist mode it carries FUA. The
// blocking pipeline uses it whole; the MSHR pipeline calls the two
// halves separately so the demand fill composes between them.
func (c *Controller) evict(b *bank, t sim.Time, slot int) (sim.Time, pathCost, error) {
	e := b.tags.Entry(slot)
	victimAddr := e.Tag * c.cfg.PageBytes
	prpAddr, cloneDone, pc, err := c.cloneVictim(b, t, slot)
	if err != nil {
		return t, pc, err
	}
	complete, cpc, err := c.composeEvict(b, cloneDone, slot, prpAddr, victimAddr)
	pc.NVDIMM += cpc.NVDIMM
	pc.DMA += cpc.DMA
	pc.SSD += cpc.SSD
	return complete, pc, err
}

// cloneVictim snapshots the victim page into the bank's PRP pool
// (read + write inside the NVDIMM): once the clone is taken, the slot
// may be overwritten without corrupting the outgoing data (Figure 14).
func (c *Controller) cloneVictim(b *bank, t sim.Time, slot int) (uint64, sim.Time, pathCost, error) {
	var pc pathCost
	cacheAddr := c.cacheAddr(b, slot)
	prpAddr, ok := b.prp.Alloc()
	if !ok {
		// Pool exhausted: wait for the bank's oldest in-flight command.
		t = c.drainOldest(b, t)
		prpAddr, ok = b.prp.Alloc()
		if !ok {
			return 0, t, pc, fmt.Errorf("core: PRP pool exhausted")
		}
	}
	rd := c.nvdimm.Bulk(t, cacheAddr, uint32(c.cfg.PageBytes), mem.Read)
	wr := c.nvdimm.Bulk(rd, prpAddr, uint32(c.cfg.PageBytes), mem.Write)
	c.nvdimm.Store().Copy(prpAddr, cacheAddr, c.cfg.PageBytes)
	pc.NVDIMM += wr - t
	return prpAddr, wr, pc, nil
}

// composeEvict submits the NVMe write that moves an already-taken PRP
// clone to the device, scheduling its completion.
func (c *Controller) composeEvict(b *bank, t sim.Time, slot int, prpAddr, victimAddr uint64) (sim.Time, pathCost, error) {
	var pc pathCost
	t = c.reserveQueueSlot(b, t)
	cmd := nvme.Command{
		Opcode: nvme.OpWrite,
		PRP:    prpAddr,
		LBA:    victimAddr,
		Length: uint32(c.cfg.PageBytes),
		FUA:    c.cfg.Mode == Persist,
	}
	cid, err := b.qp.Submit(cmd)
	if err != nil {
		return t, pc, fmt.Errorf("core: submit evict: %w", err)
	}
	// The device fetches the SQE as soon as the doorbell lands; the
	// journal tag stays set in the persisted slot until completion.
	b.qp.DeviceFetch()
	cmdDelivered := c.deliverCommand(t + c.cfg.ComposeLat)
	pc.DMA += cmdDelivered - t - c.cfg.ComposeLat

	// Device pulls the clone from NVDIMM (DMA), then programs flash.
	// The content is frozen by the PRP clone, so the functional write
	// can happen now; a power failure before the completion event
	// models the lost DMA by tearing these LBAs (see recovery.go). The
	// device copies what it is handed, so the controller-wide scratch
	// buffer carries every eviction without allocating.
	xferDone := c.dmaHostToDev(cmdDelivered, int64(c.cfg.PageBytes))
	pc.DMA += xferDone - cmdDelivered
	c.nvdimm.Store().ReadAt(prpAddr, c.evictBuf)
	devDone, err := c.devWrite(xferDone, victimAddr, c.evictBuf, cmd.FUA)
	if err != nil {
		return t, pc, err
	}
	pc.SSD += devDone - xferDone
	complete := c.notifyCompletion(devDone)

	inf := inflight{cmd: cmd, slot: slot, prpAddr: prpAddr, done: complete}
	inf.cmd.CID = cid
	b.live = append(b.live, inf)
	c.engine.ScheduleCall(complete, b, evCompleteWrite, int64(cid))
	return complete, pc, nil
}

// fill composes an NVMe read that moves the target page from the
// device into the NVDIMM cache slot. It returns the time the data is
// resident (the MMU may resume) and the time the command retires (CQ
// posted, journal cleared).
func (c *Controller) fill(b *bank, t sim.Time, slot int, page uint64) (sim.Time, sim.Time, pathCost, error) {
	var pc pathCost
	t = c.reserveQueueSlot(b, t)
	pageAddr := page * c.cfg.PageBytes
	cacheAddr := c.cacheAddr(b, slot)

	cmd := nvme.Command{
		Opcode: nvme.OpRead,
		PRP:    cacheAddr,
		LBA:    pageAddr,
		Length: uint32(c.cfg.PageBytes),
	}
	cid, err := b.qp.Submit(cmd)
	if err != nil {
		return t, t, pc, fmt.Errorf("core: submit fill: %w", err)
	}
	b.qp.DeviceFetch()
	cmdDelivered := c.deliverCommand(t + c.cfg.ComposeLat)
	pc.DMA += cmdDelivered - t

	// Device reads the page (timing + data), DMA to NVDIMM. The DMA
	// stream and the NVDIMM write pipeline TLP by TLP: in tight
	// topology the bus transfer IS the NVDIMM write; in loose
	// topology the DDR4 landing overlaps the PCIe stream.
	devDone := c.devReadInto(cmdDelivered, pageAddr, c.fillBuf)
	pc.SSD += devDone - cmdDelivered
	xferDone := c.dmaDevToHost(devDone, int64(c.cfg.PageBytes))
	landDone := xferDone
	if c.cfg.Topology == Loose {
		bulkDone := c.nvdimm.Bulk(devDone, cacheAddr, uint32(c.cfg.PageBytes), mem.Write)
		if bulkDone > landDone {
			landDone = bulkDone
		}
	}
	pc.DMA += landDone - devDone
	c.nvdimm.Store().WriteAt(cacheAddr, c.fillBuf)

	complete := c.notifyCompletion(landDone)
	inf := inflight{cmd: cmd, slot: slot, prpAddr: cacheAddr, done: complete}
	inf.cmd.CID = cid
	b.live = append(b.live, inf)
	c.engine.ScheduleCall(complete, b, evCompleteRead, int64(cid))
	return landDone, complete, pc, nil
}

// completeWrite fires at a write command's completion time: the CQ
// entry posts, the journal tag clears and the PRP clone is released.
func (c *Controller) completeWrite(b *bank, cid uint16) {
	inf, ok := b.removeInflight(cid)
	if !ok {
		return
	}
	_ = b.qp.DeviceComplete(cid, 0)
	_, _ = b.qp.HostReap()
	b.prp.Free(inf.prpAddr)
}

// completeRead fires at a fill's completion: post CQ + clear journal.
func (c *Controller) completeRead(b *bank, cid uint16) {
	if _, ok := b.removeInflight(cid); !ok {
		return
	}
	_ = b.qp.DeviceComplete(cid, 0)
	_, _ = b.qp.HostReap()
}

// reserveQueueSlot enforces Config.QueueDepth: composing a command
// once the bank's outstanding cap is reached waits for the earliest
// in-flight completion to reap a slot (the delay shifts the compose
// time, like PRP-pool pressure — it is not attributed to any latency
// component). A zero cap never waits.
func (c *Controller) reserveQueueSlot(b *bank, t sim.Time) sim.Time {
	for c.cfg.QueueDepth > 0 && b.qp.Outstanding() >= c.cfg.QueueDepth {
		nt := c.drainOldest(b, t)
		if nt == t && b.qp.Outstanding() >= c.cfg.QueueDepth {
			break // defensive: nothing in flight to wait for
		}
		t = nt
	}
	return t
}

// drainOldest advances time to the bank's earliest in-flight
// completion to free a PRP slot under pool pressure.
func (c *Controller) drainOldest(b *bank, t sim.Time) sim.Time {
	var oldest sim.Time = sim.MaxTime
	for i := range b.live {
		if b.live[i].done < oldest {
			oldest = b.live[i].done
		}
	}
	if oldest == sim.MaxTime {
		return t
	}
	if oldest > t {
		t = oldest
	}
	c.engine.AdvanceTo(t)
	return t
}

// deliverCommand charges the cost of getting a 64 B NVMe command (and
// its doorbell) to the device.
func (c *Controller) deliverCommand(t sim.Time) sim.Time {
	switch c.cfg.Topology {
	case Tight:
		return c.dbus.SendCommand(t)
	default:
		return c.link.MMIOWrite(t) // doorbell; device then fetches the SQE
	}
}

// dmaHostToDev moves bytes NVDIMM -> device.
func (c *Controller) dmaHostToDev(t sim.Time, bytes int64) sim.Time {
	switch c.cfg.Topology {
	case Tight:
		c.dbus.SetLock(t)
		done := c.dbus.DMA(t, bytes)
		c.dbus.ReleaseLock(done)
		if done > c.lockFreeAt {
			c.lockFreeAt = done
		}
		return done
	default:
		// The NVDIMM read-out overlaps the PCIe stream (per-TLP
		// store-and-forward), so the transfer completes at the later
		// of the two pipelines.
		rd := c.nvdimm.Bulk(t, 0, uint32(bytes), mem.Read)
		ld := c.link.ToDevice(t, bytes)
		if rd > ld {
			return rd
		}
		return ld
	}
}

// dmaDevToHost moves bytes device -> NVDIMM.
func (c *Controller) dmaDevToHost(t sim.Time, bytes int64) sim.Time {
	switch c.cfg.Topology {
	case Tight:
		c.dbus.SetLock(t)
		done := c.dbus.DMA(t, bytes)
		c.dbus.ReleaseLock(done)
		if done > c.lockFreeAt {
			c.lockFreeAt = done
		}
		return done
	default:
		return c.link.ToHost(t, bytes)
	}
}

// notifyCompletion charges the completion signal (MSI over PCIe, or a
// register poll on the DDR4 bus).
func (c *Controller) notifyCompletion(t sim.Time) sim.Time {
	switch c.cfg.Topology {
	case Tight:
		return t + c.cfg.NotifyLat
	default:
		return c.link.MSI(t)
	}
}

// devReadInto performs the device read (timing and data) for a fill,
// landing the bytes in dst — one device page per sub-read, issued in
// parallel on the device.
func (c *Controller) devReadInto(t sim.Time, mosAddr uint64, dst []byte) sim.Time {
	devPage := c.dev.PageBytes()
	done := t
	for off := uint64(0); off < uint64(len(dst)); off += devPage {
		end := off + devPage
		if end > uint64(len(dst)) {
			end = uint64(len(dst))
		}
		d := c.dev.ReadInto(t, (mosAddr+off)/devPage, 0, dst[off:end])
		if d > done {
			done = d
		}
	}
	return done
}

// devWrite programs one MoS page as PageBytes/devPage device pages;
// the HIL splits the request and the FTL stripes the sub-pages across
// channels, so they largely overlap (§II-C).
func (c *Controller) devWrite(t sim.Time, mosAddr uint64, data []byte, fua bool) (sim.Time, error) {
	devPage := c.dev.PageBytes()
	done := t
	for off := uint64(0); off < uint64(len(data)); off += devPage {
		end := off + devPage
		if end > uint64(len(data)) {
			end = uint64(len(data))
		}
		d, err := c.dev.Write(t, (mosAddr+off)/devPage, data[off:end], fua)
		if err != nil {
			return done, fmt.Errorf("core: device write: %w", err)
		}
		if d > done {
			done = d
		}
	}
	return done, nil
}
