package tagstore

import (
	"testing"

	"hams/internal/sim"
)

func mustNew(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Entries: 2, Ways: 4}); err == nil {
		t.Fatal("expected error: 2 entries cannot hold a 4-way set")
	}
	s := mustNew(t, Config{Entries: 8, Ways: 0}) // 0 ways = direct-mapped
	if s.Ways() != 1 || s.Sets() != 8 || s.Len() != 8 {
		t.Fatalf("geometry %d×%d", s.Sets(), s.Ways())
	}
	// Non-divisible entry counts truncate.
	s = mustNew(t, Config{Entries: 10, Ways: 4})
	if s.Len() != 8 || s.Sets() != 2 {
		t.Fatalf("truncation: len=%d sets=%d", s.Len(), s.Sets())
	}
}

func TestDirectMappedMatchesModulo(t *testing.T) {
	s := mustNew(t, Config{Entries: 16, Ways: 1})
	for page := uint64(0); page < 64; page++ {
		set := s.SetFor(page)
		if set != int(page%16) {
			t.Fatalf("page %d -> set %d, want %d", page, set, page%16)
		}
		if v := s.Victim(set); v != set {
			t.Fatalf("direct-mapped victim %d != set %d", v, set)
		}
	}
}

func TestLookupFindsAnyWay(t *testing.T) {
	s := mustNew(t, Config{Entries: 8, Ways: 4})
	// Install tags 10, 20, 30 into set 0 at different ways.
	for i, tag := range []uint64{10, 20, 30} {
		slot := s.Victim(0)
		if slot != i {
			t.Fatalf("install %d: victim %d, want invalid way %d", tag, slot, i)
		}
		e := s.Entry(slot)
		e.Tag = tag
		e.Valid = true
		s.Touch(slot)
	}
	for _, tag := range []uint64{10, 20, 30} {
		if _, ok := s.Lookup(0, tag); !ok {
			t.Fatalf("tag %d not found", tag)
		}
	}
	if _, ok := s.Lookup(0, 99); ok {
		t.Fatal("phantom hit")
	}
}

func fillSet(s *Store, set int, ways int) {
	for w := 0; w < ways; w++ {
		slot := set*ways + w
		e := s.Entry(slot)
		e.Tag = uint64(100 + w)
		e.Valid = true
		s.Touch(slot)
	}
}

func TestLRUVictimIsLeastRecentlyTouched(t *testing.T) {
	s := mustNew(t, Config{Entries: 4, Ways: 4, Policy: LRU})
	fillSet(s, 0, 4)
	// Touch ways 0,1,3 again: way 2 is now least recent.
	s.Touch(0)
	s.Touch(1)
	s.Touch(3)
	if v := s.Victim(0); v != 2 {
		t.Fatalf("LRU victim %d, want 2", v)
	}
}

func TestLRUSkipsBusyWays(t *testing.T) {
	s := mustNew(t, Config{Entries: 4, Ways: 4, Policy: LRU})
	fillSet(s, 0, 4)
	s.Entry(0).Busy = true // way 0 is oldest but busy
	if v := s.Victim(0); v == 0 {
		t.Fatal("victim selected a busy way while non-busy ways exist")
	}
}

func TestAllWaysBusyPicksEarliestDrain(t *testing.T) {
	s := mustNew(t, Config{Entries: 4, Ways: 4, Policy: LRU})
	fillSet(s, 0, 4)
	for w := 0; w < 4; w++ {
		e := s.Entry(w)
		e.Busy = true
		e.BusyUntil = 100 - sim.Time(w) // way 3 drains first
		e.FreeAt = e.BusyUntil
	}
	if v := s.Victim(0); v != 3 {
		t.Fatalf("victim %d, want earliest-draining way 3", v)
	}
}

func TestClockSecondChance(t *testing.T) {
	s := mustNew(t, Config{Entries: 4, Ways: 4, Policy: Clock})
	fillSet(s, 0, 4) // every ref bit set by Touch
	// First victim pass clears all refs, wraps, and evicts way 0.
	if v := s.Victim(0); v != 0 {
		t.Fatalf("clock victim %d, want 0", v)
	}
	// Re-reference way 1: the hand (now at 1) grants it a second
	// chance and takes way 2.
	s.Touch(1)
	if v := s.Victim(0); v != 2 {
		t.Fatalf("clock victim %d, want 2", v)
	}
}

func TestRandomIsDeterministicPerSeed(t *testing.T) {
	pick := func(seed int64) []int {
		s := mustNew(t, Config{Entries: 8, Ways: 8, Policy: Random, Seed: seed})
		fillSet(s, 0, 8)
		var out []int
		for i := 0; i < 16; i++ {
			out = append(out, s.Victim(0))
		}
		return out
	}
	a, b := pick(7), pick(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy not deterministic for equal seeds")
		}
	}
}

func TestWarmVictimRefusesDirtyAndBusy(t *testing.T) {
	s := mustNew(t, Config{Entries: 2, Ways: 2, Policy: LRU})
	fillSet(s, 0, 2)
	s.Entry(0).Dirty = true
	s.Entry(1).Busy = true
	if _, ok := s.WarmVictim(0); ok {
		t.Fatal("WarmVictim offered a dirty or busy way")
	}
	s.Entry(1).Busy = false
	slot, ok := s.WarmVictim(0)
	if !ok || slot != 1 {
		t.Fatalf("WarmVictim = %d,%v; want clean way 1", slot, ok)
	}
}

func TestClearVolatile(t *testing.T) {
	s := mustNew(t, Config{Entries: 4, Ways: 2})
	e := s.Entry(1)
	e.Valid = true
	e.Dirty = true
	e.Busy = true
	e.EvictBusy = true
	e.BusyUntil = 99
	e.FreeAt = 99
	e.ReadyAt = 42
	s.ClearVolatile()
	if e.Busy || e.EvictBusy || e.BusyUntil != 0 || e.FreeAt != 0 || e.ReadyAt != 0 {
		t.Fatal("volatile state survived")
	}
	if !e.Valid || !e.Dirty {
		t.Fatal("persistent V/D bits lost")
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{"": LRU, "lru": LRU, "clock": Clock, "random": Random, "rand": Random} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePolicy("fifo"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
	if LRU.String() != "lru" || Clock.String() != "clock" || Random.String() != "random" {
		t.Fatal("Policy.String")
	}
}

func TestVictimMaskedConfinement(t *testing.T) {
	// Every policy must confine victims to the permitted ways, on both
	// the install (invalid-way) path and the eviction (pick) path.
	for _, pol := range []Policy{LRU, Clock, Random} {
		s := mustNew(t, Config{Entries: 8, Ways: 8, Policy: pol, Seed: 9})
		const mask = 0b00110100 // ways 2, 4, 5
		// Install path: invalid ways abound, but only permitted ones
		// may be chosen.
		for i := 0; i < 3; i++ {
			slot := s.VictimMasked(0, mask)
			if mask&(1<<uint(slot)) == 0 {
				t.Fatalf("%v: install victim way %d outside mask %#b", pol, slot, mask)
			}
			e := s.Entry(slot)
			e.Tag = uint64(i)
			e.Valid = true
			s.Touch(slot)
		}
		// Eviction path: set full, victims still confined.
		fillSet(s, 0, s.Ways())
		for i := 0; i < 64; i++ {
			slot := s.VictimMasked(0, mask)
			if mask&(1<<uint(slot)) == 0 {
				t.Fatalf("%v: eviction victim way %d outside mask %#b", pol, slot, mask)
			}
			s.Touch(slot)
		}
	}
}

func TestVictimMaskedBusyFallback(t *testing.T) {
	// Every permitted way busy: the fallback must pick the permitted
	// way draining first — never a non-permitted idle way.
	s := mustNew(t, Config{Entries: 4, Ways: 4})
	fillSet(s, 0, 4)
	const mask = 0b1010 // ways 1, 3
	s.Entry(1).Busy = true
	s.Entry(1).BusyUntil = 500
	s.Entry(1).FreeAt = 500
	s.Entry(3).Busy = true
	s.Entry(3).BusyUntil = 300
	s.Entry(3).FreeAt = 300
	if got := s.VictimMasked(0, mask); got != 3 {
		t.Fatalf("busy fallback picked way %d, want 3 (earliest drain in mask)", got)
	}
}

func TestVictimMaskedFullEqualsVictim(t *testing.T) {
	// The full mask must reproduce the unmasked choice exactly —
	// including the Random policy's RNG consumption — so a full-mask
	// CLOS is bit-for-bit the unpartitioned store.
	for _, pol := range []Policy{LRU, Clock, Random} {
		a := mustNew(t, Config{Entries: 8, Ways: 4, Policy: pol, Seed: 7})
		b := mustNew(t, Config{Entries: 8, Ways: 4, Policy: pol, Seed: 7})
		step := func(i int, slot int, s *Store) {
			e := s.Entry(slot)
			e.Tag = uint64(i)
			e.Valid = true
			e.Dirty = i%3 == 0
			e.Busy = i%5 == 0
			e.BusyUntil = sim.Time(i)
			s.Touch(slot)
		}
		for i := 0; i < 200; i++ {
			set := i % a.Sets()
			va := a.Victim(set)
			vb := b.VictimMasked(set, b.FullMask())
			if va != vb {
				t.Fatalf("%v: step %d: Victim %d != VictimMasked(full) %d", pol, i, va, vb)
			}
			step(i, va, a)
			step(i, vb, b)
		}
	}
}

func TestWarmVictimMasked(t *testing.T) {
	s := mustNew(t, Config{Entries: 4, Ways: 4})
	fillSet(s, 0, 4)
	s.Entry(0).Dirty = true
	s.Entry(2).Dirty = true
	// Mask covering only dirty ways: warming must refuse.
	if _, ok := s.WarmVictimMasked(0, 0b0101); ok {
		t.Fatal("warm install into a dirty-only partition")
	}
	// Mask with one clean way: that way.
	slot, ok := s.WarmVictimMasked(0, 0b0011)
	if !ok || slot != 1 {
		t.Fatalf("WarmVictimMasked = %d, %v; want way 1", slot, ok)
	}
	// Degenerate masks fall back to the full mask.
	if slot := s.VictimMasked(0, 0); slot < 0 || slot > 3 {
		t.Fatalf("zero mask victim %d", slot)
	}
	if got := s.FullMask(); got != 0xf {
		t.Fatalf("FullMask = %#x", got)
	}
}
