package tagstore

import (
	"fmt"
	"math/rand"

	"hams/internal/checkpoint"
	"hams/internal/sim"
)

// SaveState serializes the tag array: every entry (tag, V/D/B bits,
// busy/free/ready horizons), the full replacement-policy state (LRU
// stamps and tick, CLOCK reference bits and hands) and, for the
// Random policy, the number of draws consumed from the seeded source.
func (s *Store) SaveState(enc *checkpoint.Enc) {
	enc.Count(len(s.entries))
	for i := range s.entries {
		e := &s.entries[i]
		enc.U64(e.Tag)
		enc.Bool(e.Valid)
		enc.Bool(e.Dirty)
		enc.Bool(e.Busy)
		enc.Bool(e.EvictBusy)
		enc.I64(int64(e.BusyUntil))
		enc.I64(int64(e.FreeAt))
		enc.I64(int64(e.ReadyAt))
	}
	for _, v := range s.stamp {
		enc.U64(v)
	}
	enc.U64(s.tick)
	enc.Bool(s.ref != nil)
	if s.ref != nil {
		for _, v := range s.ref {
			enc.Bool(v)
		}
		for _, v := range s.hand {
			enc.I64(int64(v))
		}
	}
	enc.Bool(s.src != nil)
	if s.src != nil {
		enc.I64(s.src.n)
	}
}

// RestoreState overlays the tag array. Geometry and policy are
// structural; the Random-policy RNG is re-seeded and fast-forwarded by
// the saved draw count, which reproduces its position exactly (every
// draw advances the generator one step).
func (s *Store) RestoreState(d *checkpoint.Dec) error {
	n := d.Count(len(s.entries))
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(s.entries) {
		return fmt.Errorf("%w: tag array has %d slots, image has %d", checkpoint.ErrMismatch, len(s.entries), n)
	}
	for i := range s.entries {
		e := &s.entries[i]
		e.Tag = d.U64()
		e.Valid = d.Bool()
		e.Dirty = d.Bool()
		e.Busy = d.Bool()
		e.EvictBusy = d.Bool()
		e.BusyUntil = sim.Time(d.I64())
		e.FreeAt = sim.Time(d.I64())
		e.ReadyAt = sim.Time(d.I64())
	}
	for i := range s.stamp {
		s.stamp[i] = d.U64()
	}
	s.tick = d.U64()
	hasClock := d.Bool()
	if d.Err() == nil && hasClock != (s.ref != nil) {
		return fmt.Errorf("%w: replacement policy mismatch (clock state)", checkpoint.ErrMismatch)
	}
	if s.ref != nil {
		for i := range s.ref {
			s.ref[i] = d.Bool()
		}
		for i := range s.hand {
			s.hand[i] = int(d.I64())
		}
	}
	hasRNG := d.Bool()
	if d.Err() == nil && hasRNG != (s.src != nil) {
		return fmt.Errorf("%w: replacement policy mismatch (rng state)", checkpoint.ErrMismatch)
	}
	if s.src != nil {
		draws := d.I64()
		if err := d.Err(); err != nil {
			return err
		}
		// Bound the fast-forward so a hostile image cannot spin the
		// CPU: 1<<32 draws is an order of magnitude beyond the miss
		// count of the longest runs.
		if draws < 0 || draws > 1<<32 {
			return fmt.Errorf("%w: rng draw count %d out of range", checkpoint.ErrCorrupt, draws)
		}
		src := rand.NewSource(s.seed).(rand.Source64)
		for i := int64(0); i < draws; i++ {
			src.Uint64()
		}
		s.src = &countingSource{src: src, n: draws}
		s.rng = rand.New(s.src)
	}
	return d.Err()
}
