package tagstore

import (
	"testing"

	"hams/internal/sim"
)

// benchStore returns a full 8-way store: every way valid and non-busy,
// so Victim always exercises the policy scan (never the invalid-way
// fast path).
func benchStore(b *testing.B, p Policy) *Store {
	b.Helper()
	s, err := New(Config{Entries: 4096, Ways: 8, Policy: p, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for slot := 0; slot < s.Len(); slot++ {
		e := s.Entry(slot)
		e.Valid = true
		e.Tag = uint64(slot)
		s.Touch(slot)
	}
	return s
}

// BenchmarkVictim measures replacement-victim selection on a full set
// — the per-miss tag-array scan — for each policy.
func BenchmarkVictim(b *testing.B) {
	for _, p := range []Policy{LRU, Clock, Random} {
		b.Run(p.String(), func(b *testing.B) {
			s := benchStore(b, p)
			sets := s.Sets()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slot := s.Victim(i % sets)
				s.Touch(slot)
			}
		})
	}
}

// BenchmarkLookupTouch measures the hit path: set scan for a resident
// tag plus the recency update.
func BenchmarkLookupTouch(b *testing.B) {
	s := benchStore(b, LRU)
	sets := s.Sets()
	ways := s.Ways()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := i % sets
		tag := uint64(set*ways + i%ways)
		slot, ok := s.Lookup(set, tag)
		if !ok {
			b.Fatal("tag not resident")
		}
		s.Touch(slot)
	}
}

// BenchmarkVictimAllBusy measures the congested case: every way busy,
// so selection falls through to the earliest-FreeAt scan.
func BenchmarkVictimAllBusy(b *testing.B) {
	s := benchStore(b, LRU)
	for slot := 0; slot < s.Len(); slot++ {
		e := s.Entry(slot)
		e.Busy = true
		e.FreeAt = sim.Time(slot)
	}
	sets := s.Sets()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Victim(i % sets)
	}
}

// TestVictimZeroAllocs pins the miss-path contract: victim selection
// on a full store allocates nothing for any policy.
func TestVictimZeroAllocs(t *testing.T) {
	for _, p := range []Policy{LRU, Clock, Random} {
		s, err := New(Config{Entries: 256, Ways: 8, Policy: p, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for slot := 0; slot < s.Len(); slot++ {
			e := s.Entry(slot)
			e.Valid = true
			e.Tag = uint64(slot)
			s.Touch(slot)
		}
		set := 0
		avg := testing.AllocsPerRun(200, func() {
			slot := s.Victim(set)
			s.Touch(slot)
			set = (set + 1) % s.Sets()
		})
		if avg != 0 {
			t.Fatalf("%v victim allocates %.1f/op, want 0", p, avg)
		}
	}
}
