// Package tagstore implements the MoS tag array as a configurable
// cache-organization layer. The seed hardwired a single direct-mapped
// tag array into the controller (faithful to Figure 11); production
// systems treat geometry (sets × ways) and replacement policy as
// knobs. This package generalizes the tag array along both axes while
// keeping the per-entry state (tag + V/D/B bits, busy/ready horizons)
// exactly as the paper describes, so a 1-way store is bit-for-bit the
// seed's direct-mapped array.
package tagstore

import (
	"fmt"
	"math/rand"

	"hams/internal/qos"
	"hams/internal/sim"
)

// Policy selects the replacement policy used when every way in a set
// is valid. With Ways == 1 the policy is irrelevant (direct-mapped).
type Policy int

const (
	// LRU evicts the least-recently-touched way.
	LRU Policy = iota
	// Clock runs a second-chance sweep over the set's ways.
	Clock
	// Random picks a way uniformly (deterministic, seeded).
	Random
)

func (p Policy) String() string {
	switch p {
	case Clock:
		return "clock"
	case Random:
		return "random"
	default:
		return "lru"
	}
}

// ParsePolicy maps a CLI-style name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "lru":
		return LRU, nil
	case "clock":
		return Clock, nil
	case "random", "rand":
		return Random, nil
	default:
		return LRU, fmt.Errorf("tagstore: unknown replacement policy %q", s)
	}
}

// Entry is one tag-array line: tag + V/D/B bits (Figure 11). BusyUntil
// mirrors the busy bit in time: the bit is set while an NVMe command
// for this entry is in flight and cleared by the completion event.
// ReadyAt is the instant the fill data is resident in NVDIMM.
//
// FreeAt separates "busy" from "fill-pending": it is the instant the
// slot's DATA may be overwritten by a new occupant. The blocking
// pipeline pins the slot until every in-flight command retires
// (FreeAt == BusyUntil); the MSHR pipeline releases it at the fill's
// completion — an in-flight eviction reads from its PRP clone
// (Figure 14), never from the slot, so it does not pin the data.
// EvictBusy marks that the in-flight work included a dirty writeback:
// a miss parking on such a slot is exactly the redundant-eviction
// squash of Figure 14 (parking on a fill-only slot suppresses
// nothing).
type Entry struct {
	Tag       uint64
	Valid     bool
	Dirty     bool
	Busy      bool
	EvictBusy bool
	BusyUntil sim.Time
	FreeAt    sim.Time
	ReadyAt   sim.Time
}

// Config sizes a store.
type Config struct {
	Entries int    // total slots; rounded down to a multiple of Ways
	Ways    int    // associativity; 0 or 1 = direct-mapped
	Policy  Policy // replacement policy for Ways > 1
	Seed    int64  // determinism for the Random policy
}

// Store is a set-associative tag array. Slot numbering is
// set*Ways + way; the caller maps slots to NVDIMM cache page addresses.
type Store struct {
	entries []Entry
	ways    int
	sets    int
	policy  Policy
	full    uint64 // way mask selecting every way

	stamp []uint64 // LRU recency per slot
	tick  uint64
	ref   []bool // CLOCK reference bit per slot
	hand  []int  // CLOCK hand per set
	seed  int64
	src   *countingSource
	rng   *rand.Rand
	cand  []int // Random candidate scratch (per-call reuse, never kept)
}

// countingSource wraps the seeded source so the store knows how many
// draws have been consumed — the RNG "cursor" a checkpoint carries.
// Both Int63 and Uint64 advance the underlying generator by exactly
// one step, so replaying the count with either call restores the
// position bit-for-bit.
type countingSource struct {
	src rand.Source64
	n   int64
}

func (c *countingSource) Int63() int64 { c.n++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.n++; return c.src.Uint64() }

func (c *countingSource) Seed(s int64) { c.src.Seed(s); c.n = 0 }

// New builds a store. Entries not divisible by Ways are truncated to
// the largest smaller multiple (the controller sizes the cache region
// from Len afterwards).
func New(cfg Config) (*Store, error) {
	if cfg.Ways <= 0 {
		cfg.Ways = 1
	}
	sets := cfg.Entries / cfg.Ways
	if sets <= 0 {
		return nil, fmt.Errorf("tagstore: %d entries cannot hold a %d-way set", cfg.Entries, cfg.Ways)
	}
	n := sets * cfg.Ways
	s := &Store{
		entries: make([]Entry, n),
		ways:    cfg.Ways,
		sets:    sets,
		policy:  cfg.Policy,
		full:    qos.FullMask(cfg.Ways),
		stamp:   make([]uint64, n),
	}
	switch cfg.Policy {
	case Clock:
		s.ref = make([]bool, n)
		s.hand = make([]int, sets)
	case Random:
		s.seed = cfg.Seed
		s.src = &countingSource{src: rand.NewSource(cfg.Seed).(rand.Source64)}
		s.rng = rand.New(s.src)
		s.cand = make([]int, 0, cfg.Ways)
	}
	return s, nil
}

// Len returns the total slot count (sets × ways).
func (s *Store) Len() int { return len(s.entries) }

// Sets returns the set count.
func (s *Store) Sets() int { return s.sets }

// Ways returns the associativity.
func (s *Store) Ways() int { return s.ways }

// Policy returns the replacement policy.
func (s *Store) Policy() Policy { return s.policy }

// SetFor maps a set key (the controller passes the bank-local page
// number) to its set index.
func (s *Store) SetFor(key uint64) int { return int(key % uint64(s.sets)) }

// Entry returns the entry at slot for in-place mutation.
func (s *Store) Entry(slot int) *Entry { return &s.entries[slot] }

// Lookup scans set for a valid entry holding tag. It does not update
// recency state (PeekData and recovery scans must not perturb the
// policy); callers Touch on a real hit.
func (s *Store) Lookup(set int, tag uint64) (slot int, ok bool) {
	base := set * s.ways
	for w := 0; w < s.ways; w++ {
		e := &s.entries[base+w]
		if e.Valid && e.Tag == tag {
			return base + w, true
		}
	}
	return -1, false
}

// Touch records a use of slot (hit or install) for the policy.
func (s *Store) Touch(slot int) {
	s.tick++
	s.stamp[slot] = s.tick
	if s.ref != nil {
		s.ref[slot] = true
	}
}

// FullMask returns the store's all-ways mask (qos.FullMask of the
// associativity — one definition shared with the policy layer).
func (s *Store) FullMask() uint64 { return s.full }

// Victim selects the slot a miss on set installs into, considering
// every way (no partitioning).
func (s *Store) Victim(set int) int { return s.VictimMasked(set, s.full) }

// VictimMasked selects the slot a miss on set installs into, confined
// to the ways whose mask bit is set (the requesting class's CAT
// capacity mask; the full mask reproduces Victim exactly):
//
//  1. an invalid permitted way, if any (no eviction needed);
//  2. otherwise the policy's choice among the non-busy permitted ways;
//  3. otherwise (every permitted way busy) the permitted way whose
//     in-flight commands retire first — the caller parks in the wait
//     queue until then.
//
// Mask bits beyond the associativity are ignored; an empty mask is
// treated as full (the controller validates masks up front, so this
// only defends against stray tags).
func (s *Store) VictimMasked(set int, mask uint64) int {
	mask &= s.full
	if mask == 0 {
		mask = s.full
	}
	base := set * s.ways
	for w := 0; w < s.ways; w++ {
		if mask&(1<<uint(w)) != 0 && !s.entries[base+w].Valid {
			return base + w
		}
	}
	if slot := s.pick(set, false, mask); slot >= 0 {
		return slot
	}
	// All permitted ways busy: wait for the earliest slot to become
	// reusable. FreeAt equals BusyUntil under the blocking pipeline;
	// the MSHR pipeline frees evicting slots at PRP-clone time, so
	// this prefers a slot whose writeback is still draining over one
	// whose fill is still inbound.
	best := -1
	for w := 0; w < s.ways; w++ {
		if mask&(1<<uint(w)) == 0 {
			continue
		}
		if best < 0 || s.entries[base+w].FreeAt < s.entries[best].FreeAt {
			best = base + w
		}
	}
	return best
}

// WarmVictim selects a slot Warm may install into without disturbing
// live state, considering every way.
func (s *Store) WarmVictim(set int) (slot int, ok bool) {
	return s.WarmVictimMasked(set, s.full)
}

// WarmVictimMasked selects a slot Warm may install into within the
// permitted ways: an invalid way, else a clean non-busy way by
// policy. ok is false when every permitted way is dirty or busy.
func (s *Store) WarmVictimMasked(set int, mask uint64) (slot int, ok bool) {
	mask &= s.full
	if mask == 0 {
		mask = s.full
	}
	base := set * s.ways
	for w := 0; w < s.ways; w++ {
		if mask&(1<<uint(w)) != 0 && !s.entries[base+w].Valid {
			return base + w, true
		}
	}
	if slot := s.pick(set, true, mask); slot >= 0 {
		return slot, true
	}
	return -1, false
}

// pick applies the policy over set's valid non-busy permitted ways
// (and, when cleanOnly, non-dirty ways). Returns -1 when no way
// qualifies.
func (s *Store) pick(set int, cleanOnly bool, mask uint64) int {
	base := set * s.ways
	usable := func(w int) bool {
		if mask&(1<<uint(w)) == 0 {
			return false
		}
		e := &s.entries[base+w]
		return !e.Busy && (!cleanOnly || !e.Dirty)
	}
	switch s.policy {
	case Clock:
		// Second chance: sweep up to two revolutions; the first clears
		// referenced bits, the second is guaranteed to find a victim
		// among the usable ways (if any).
		for i := 0; i < 2*s.ways; i++ {
			w := s.hand[set]
			s.hand[set] = (w + 1) % s.ways
			if !usable(w) {
				continue
			}
			if s.ref[base+w] {
				s.ref[base+w] = false
				continue
			}
			return base + w
		}
		for w := 0; w < s.ways; w++ {
			if usable(w) {
				return base + w
			}
		}
		return -1
	case Random:
		cand := s.cand[:0]
		for w := 0; w < s.ways; w++ {
			if usable(w) {
				cand = append(cand, base+w)
			}
		}
		if len(cand) == 0 {
			return -1
		}
		return cand[s.rng.Intn(len(cand))]
	default: // LRU
		best := -1
		for w := 0; w < s.ways; w++ {
			if !usable(w) {
				continue
			}
			if best < 0 || s.stamp[base+w] < s.stamp[best] {
				best = base + w
			}
		}
		return best
	}
}

// ClearVolatile resets the SRAM-held transient state of every entry
// after a power failure: busy bits and time horizons die with the
// power; tags and V/D bits survive in the NVDIMM image.
func (s *Store) ClearVolatile() {
	for i := range s.entries {
		s.entries[i].Busy = false
		s.entries[i].EvictBusy = false
		s.entries[i].BusyUntil = 0
		s.entries[i].FreeAt = 0
		s.entries[i].ReadyAt = 0
	}
}

func (s *Store) String() string {
	return fmt.Sprintf("tagstore(%d sets × %d ways, %s)", s.sets, s.ways, s.policy)
}
