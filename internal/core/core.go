// Package core implements the paper's contribution: the HAMS
// (Hardware Automated Memory-over-Storage) controller that lives in
// the memory-controller hub. It aggregates an NVDIMM-N and a ULL-Flash
// archive into one byte-addressable MoS address space, fronted by a
// direct-mapped NVDIMM cache whose tag bits (valid/dirty/busy) ride
// with the cache lines. Misses are handled entirely in hardware by
// composing NVMe commands into a pinned, MMU-invisible NVDIMM region;
// eviction hazards are avoided with PRP-pool cloning, a busy bit, and
// a wait queue; persistency is guaranteed either by FUA serialization
// (persist mode) or by journal tags replayed after power failure
// (extend mode). Loose topology moves data over PCIe; tight topology
// ("advanced HAMS") moves it over a shared DDR4 bus under a lock
// register with a buffer-less ULL-Flash.
package core

import (
	"fmt"

	"hams/internal/bus"
	"hams/internal/dram"
	"hams/internal/mem"
	"hams/internal/nvme"
	"hams/internal/pcie"
	"hams/internal/sim"
	"hams/internal/ssd"
)

// Mode selects the persistency strategy (§VI-A platforms).
type Mode int

const (
	// Extend mode: parallel NVMe usage; persistency via journal tags.
	Extend Mode = iota
	// Persist mode: FUA on every write, one I/O in flight at a time.
	Persist
)

func (m Mode) String() string {
	if m == Persist {
		return "persist"
	}
	return "extend"
}

// Topology selects the datapath (baseline vs advanced HAMS).
type Topology int

const (
	// Loose: ULL-Flash behind PCIe 3.0 x4; SSD keeps its internal DRAM.
	Loose Topology = iota
	// Tight: ULL-Flash on the shared DDR4 bus, buffer-less, lock register.
	Tight
)

func (t Topology) String() string {
	if t == Tight {
		return "tight"
	}
	return "loose"
}

// Config assembles a HAMS instance.
type Config struct {
	PageBytes   uint64 // MoS cache page (paper default 128 KB)
	PinnedBytes uint64 // MMU-invisible region (paper: ~512 MB)
	PRPSlots    int    // clone buffers in the PRP pool
	Mode        Mode
	Topology    Topology

	NVDIMM dram.NVDIMMConfig
	SSD    ssd.Config
	PCIe   pcie.Config
	Bus    bus.Config

	// NotifyLat is the cost of signalling the MMU that a stalled
	// instruction may retry (command/address bus toggle).
	NotifyLat sim.Time
	// ComposeLat is the cost of composing one NVMe command in the
	// queue engine (fills opcode/PRP/LBA/length fields).
	ComposeLat sim.Time
}

// DefaultConfig returns the paper's Table II configuration in the
// given mode/topology: 8 GB NVDIMM, ULL-Flash archive, 128 KB pages.
func DefaultConfig(m Mode, tp Topology) Config {
	c := Config{
		PageBytes:   128 * mem.KiB,
		PinnedBytes: 512 * mem.MiB,
		PRPSlots:    64,
		Mode:        m,
		Topology:    tp,
		NVDIMM:      dram.NVDIMMConfig{DRAM: dram.DefaultConfig()},
		PCIe:        pcie.Gen3x4(),
		Bus:         bus.DDR4Channel(),
		NotifyLat:   10,
		ComposeLat:  20,
	}
	if tp == Tight {
		c.SSD = ssd.ULLFlashNoBuffer()
	} else {
		c.SSD = ssd.ULLFlash()
	}
	return c
}

// tagEntry is one MoS tag-array line: tag + V/D/B bits (Figure 11).
// busyUntil mirrors the busy bit in time: the bit is set while an NVMe
// command for this entry is in flight and cleared by the completion
// event.
type tagEntry struct {
	tag       uint64
	valid     bool
	dirty     bool
	busy      bool
	busyUntil sim.Time // last in-flight command for this entry completes
	readyAt   sim.Time // fill data resident in NVDIMM from this time
}

// inflight tracks one outstanding NVMe command for hazard management
// and power-failure replay.
type inflight struct {
	cmd     nvme.Command
	entry   int
	prpAddr uint64 // clone location for writes; fill target for reads
	done    sim.Time
}

// Stats aggregates controller activity.
type Stats struct {
	Accesses          int64
	Hits              int64
	Misses            int64
	Evictions         int64
	RedundantSquashed int64 // evictions suppressed by the busy bit
	WaitQ             int64 // requests parked in the wait queue
	Fills             int64
	FullPageWrites    int64 // misses that skipped the fill (write covers page)

	// Latency decomposition (Fig. 18): time attributed to NVDIMM
	// accesses, to interface/DMA transfers, and to SSD internals.
	NVDIMMTime sim.Time
	DMATime    sim.Time
	SSDTime    sim.Time
	WaitTime   sim.Time
	TotalTime  sim.Time

	Replayed int64 // commands re-issued by power-failure recovery
}

// HitRate returns hits/accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Controller is one HAMS instance.
type Controller struct {
	cfg    Config
	engine *sim.Engine
	nvdimm *dram.NVDIMM
	dev    *ssd.Device
	link   *pcie.Link     // loose topology
	dbus   *bus.SharedBus // tight topology

	qp  *nvme.QueuePair
	prp *nvme.PRPPool

	tags       []tagEntry
	cacheBytes uint64 // NVDIMM bytes used as MoS cache
	pinnedBase uint64

	inflight   map[uint16]*inflight
	lastIODone sim.Time // persist-mode serialization point
	lockFreeAt sim.Time // tight topology: DMA holds the shared bus

	stats Stats
}

// New builds a controller. The pinned region is laid out at the top of
// the NVDIMM: queue pair first, then the PRP pool (Figure 9).
func New(cfg Config) (*Controller, error) {
	if !mem.IsPow2(cfg.PageBytes) {
		return nil, fmt.Errorf("core: page size %d is not a power of two", cfg.PageBytes)
	}
	nv := dram.NewNVDIMM(cfg.NVDIMM)
	if cfg.PinnedBytes >= nv.Capacity() {
		return nil, fmt.Errorf("core: pinned region %d exceeds NVDIMM %d", cfg.PinnedBytes, nv.Capacity())
	}
	if cfg.PRPSlots <= 0 {
		cfg.PRPSlots = 64
	}
	c := &Controller{
		cfg:      cfg,
		engine:   sim.NewEngine(),
		nvdimm:   nv,
		dev:      ssd.New(cfg.SSD),
		inflight: make(map[uint16]*inflight),
	}
	c.cacheBytes = nv.Capacity() - cfg.PinnedBytes
	c.cacheBytes = mem.AlignDown(c.cacheBytes, cfg.PageBytes)
	c.pinnedBase = c.cacheBytes
	c.tags = make([]tagEntry, c.cacheBytes/cfg.PageBytes)

	layout := nvme.DefaultLayout(c.pinnedBase)
	c.qp = nvme.NewQueuePair(nv.Store(), layout)
	prpBase := mem.AlignUp(layout.CQBase+16+8*1024, cfg.PageBytes)
	c.prp = nvme.NewPRPPool(prpBase, cfg.PageBytes, cfg.PRPSlots)
	if prpBase+c.prp.Footprint() > nv.Capacity() {
		return nil, fmt.Errorf("core: pinned region too small for PRP pool")
	}

	switch cfg.Topology {
	case Loose:
		c.link = pcie.New(cfg.PCIe)
	case Tight:
		c.dbus = bus.New(cfg.Bus)
	}
	return c, nil
}

// Capacity returns the MoS address-space size exposed to the MMU —
// the exported capacity of the ULL-Flash archive (§IV-A).
func (c *Controller) Capacity() uint64 { return c.dev.Capacity() }

// PageBytes returns the MoS cache page size.
func (c *Controller) PageBytes() uint64 { return c.cfg.PageBytes }

// CacheEntries returns the number of tag-array entries.
func (c *Controller) CacheEntries() int { return len(c.tags) }

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// Device exposes the archive (for energy accounting).
func (c *Controller) Device() *ssd.Device { return c.dev }

// NVDIMM exposes the module (for energy accounting).
func (c *Controller) NVDIMM() *dram.NVDIMM { return c.nvdimm }

// BusStats exposes lock-register statistics in tight topology.
func (c *Controller) BusStats() bus.Stats {
	if c.dbus == nil {
		return bus.Stats{}
	}
	return c.dbus.Stats()
}

// Outstanding returns in-flight NVMe command count (tests).
func (c *Controller) Outstanding() int { return len(c.inflight) }

// Warm installs the pages covering [base, base+size) into the MoS
// tag array as valid and clean, without charging time — used by the
// experiment harness to reach the steady-state residency a full-length
// (paper-scale) run would have built up.
func (c *Controller) Warm(base, size uint64) {
	if size == 0 {
		return
	}
	end := base + size
	if end > c.Capacity() {
		end = c.Capacity()
	}
	for addr := mem.AlignDown(base, c.cfg.PageBytes); addr < end; addr += c.cfg.PageBytes {
		idx, tag := c.indexOf(addr)
		e := &c.tags[idx]
		if e.busy || (e.valid && e.dirty) {
			continue // never disturb live state
		}
		e.tag = tag
		e.valid = true
		e.dirty = false
		e.readyAt = 0
		e.busyUntil = 0
	}
}

func (c *Controller) indexOf(addr uint64) (idx int, tag uint64) {
	page := addr / c.cfg.PageBytes
	return int(page % uint64(len(c.tags))), page
}

func (c *Controller) cacheAddr(idx int) uint64 {
	return uint64(idx) * c.cfg.PageBytes
}

func (c *Controller) String() string {
	return fmt.Sprintf("hams(%s,%s, %dKB pages, %d entries)",
		c.cfg.Mode, c.cfg.Topology, c.cfg.PageBytes/1024, len(c.tags))
}
