// Package core implements the paper's contribution: the HAMS
// (Hardware Automated Memory-over-Storage) controller that lives in
// the memory-controller hub. It aggregates an NVDIMM-N and a ULL-Flash
// archive into one byte-addressable MoS address space, fronted by an
// NVDIMM cache whose tag bits (valid/dirty/busy) ride with the cache
// lines. Misses are handled entirely in hardware by composing NVMe
// commands into a pinned, MMU-invisible NVDIMM region; eviction
// hazards are avoided with PRP-pool cloning, a busy bit, and a wait
// queue; persistency is guaranteed either by FUA serialization
// (persist mode) or by journal tags replayed after power failure
// (extend mode). Loose topology moves data over PCIe; tight topology
// ("advanced HAMS") moves it over a shared DDR4 bus under a lock
// register with a buffer-less ULL-Flash.
//
// The cache organization is a policy layer, not a constant: the tag
// array geometry (direct-mapped through N-way set-associative with
// LRU/CLOCK/random replacement, internal/core/tagstore) and the bank
// count (the MoS page space page-interleaved across K independent
// controller banks, each with its own tag array, NVMe queue pair and
// PRP clone pool) are Config knobs. The default — one bank, one way —
// reproduces the paper's Figure 11 organization exactly.
package core

import (
	"fmt"

	"hams/internal/bus"
	"hams/internal/core/tagstore"
	"hams/internal/dram"
	"hams/internal/mem"
	"hams/internal/nvme"
	"hams/internal/pcie"
	"hams/internal/qos"
	"hams/internal/sim"
	"hams/internal/ssd"
)

// Mode selects the persistency strategy (§VI-A platforms).
type Mode int

const (
	// Extend mode: parallel NVMe usage; persistency via journal tags.
	Extend Mode = iota
	// Persist mode: FUA on every write, one I/O in flight at a time.
	Persist
)

func (m Mode) String() string {
	if m == Persist {
		return "persist"
	}
	return "extend"
}

// Topology selects the datapath (baseline vs advanced HAMS).
type Topology int

const (
	// Loose: ULL-Flash behind PCIe 3.0 x4; SSD keeps its internal DRAM.
	Loose Topology = iota
	// Tight: ULL-Flash on the shared DDR4 bus, buffer-less, lock register.
	Tight
)

func (t Topology) String() string {
	if t == Tight {
		return "tight"
	}
	return "loose"
}

// Replacement re-exports the tagstore policy for configuration.
type Replacement = tagstore.Policy

// Replacement policy values.
const (
	LRU    = tagstore.LRU
	Clock  = tagstore.Clock
	Random = tagstore.Random
)

// Config assembles a HAMS instance.
type Config struct {
	PageBytes   uint64 // MoS cache page (paper default 128 KB)
	PinnedBytes uint64 // MMU-invisible region (paper: ~512 MB)
	PRPSlots    int    // clone buffers in each bank's PRP pool
	Mode        Mode
	Topology    Topology

	// Ways is the tag-array associativity; 0 or 1 = direct-mapped
	// (the paper's Figure 11 organization).
	Ways int
	// Replacement selects the victim policy when Ways > 1.
	Replacement Replacement
	// Banks page-interleaves the MoS space across this many
	// independent controller banks, each with its own tag array, NVMe
	// queue pair and PRP pool; 0 or 1 = the paper's single bank.
	Banks int

	// MSHRs sizes each bank's miss-status-holding-register file.
	// 0 or 1 (the default) keeps the paper's blocking miss pipeline:
	// a miss whose victim slot has in-flight commands parks until
	// every one of them retires. With MSHRs >= 2 the miss path goes
	// non-blocking: each outstanding fill holds a register, secondary
	// misses to an in-flight page coalesce onto the primary's
	// register instead of composing a redundant fill, hits are served
	// under outstanding misses, and a victim slot is reusable as soon
	// as its fill completes — an in-flight eviction drains from its
	// PRP clone (Figure 14) without pinning the slot. Only accesses
	// that truly conflict (same set with every permitted way busy, or
	// a full register file) park in the wait queue.
	MSHRs int
	// QueueDepth caps the outstanding NVMe commands per bank queue
	// pair: composing a command with the cap reached waits for the
	// bank's earliest in-flight completion. 0 = unbounded (the
	// paper's configuration).
	QueueDepth int

	// QoS enables the RDT-style isolation layer (internal/qos): each
	// request's mem.Access.Class selects a class of service whose way
	// mask confines replacement (CAT), whose MBps limit throttles
	// archive traffic at the bank router (MBA), and whose activity the
	// controller monitors (MBM). nil disables the layer entirely; a
	// table of full-mask, unthrottled classes is observationally
	// identical to nil (monitoring only).
	QoS *qos.Table
	// QoSSamplePeriod spaces the MBM monitor's samples in simulated
	// time; 0 = qos.DefaultSamplePeriod.
	QoSSamplePeriod sim.Time
	// QoSPolicy is a sim-time-scheduled timeline of runtime class
	// reprogrammings (resolved against QoS, which must be set). Each
	// change is latched deterministically at the first request arriving
	// at or after its time: the new way mask confines victim selection
	// from the next miss on (resident pages in now-forbidden ways stay
	// valid and hittable, in-flight fills complete into their reserved
	// slots — never retroactive), and the throttle is re-based at the
	// new rate without forgiving accrued debt.
	QoSPolicy []qos.TimedChange
	// QoSController is an optional SLO feedback controller driven off
	// the MBM sample ticker; its actions are applied with QoSPolicy
	// semantics. Requires QoS.
	QoSController *qos.Controller

	NVDIMM dram.NVDIMMConfig
	SSD    ssd.Config
	PCIe   pcie.Config
	Bus    bus.Config

	// NotifyLat is the cost of signalling the MMU that a stalled
	// instruction may retry (command/address bus toggle).
	NotifyLat sim.Time
	// ComposeLat is the cost of composing one NVMe command in the
	// queue engine (fills opcode/PRP/LBA/length fields).
	ComposeLat sim.Time
}

// DefaultConfig returns the paper's Table II configuration in the
// given mode/topology: 8 GB NVDIMM, ULL-Flash archive, 128 KB pages,
// one direct-mapped bank.
func DefaultConfig(m Mode, tp Topology) Config {
	c := Config{
		PageBytes:   128 * mem.KiB,
		PinnedBytes: 512 * mem.MiB,
		PRPSlots:    64,
		Mode:        m,
		Topology:    tp,
		Ways:        1,
		Banks:       1,
		NVDIMM:      dram.NVDIMMConfig{DRAM: dram.DefaultConfig()},
		PCIe:        pcie.Gen3x4(),
		Bus:         bus.DDR4Channel(),
		NotifyLat:   10,
		ComposeLat:  20,
	}
	if tp == Tight {
		c.SSD = ssd.ULLFlashNoBuffer()
	} else {
		c.SSD = ssd.ULLFlash()
	}
	return c
}

// inflight tracks one outstanding NVMe command for hazard management
// and power-failure replay. Entries live by value in the bank's live
// slice (issue order), keyed by cmd.CID.
type inflight struct {
	cmd     nvme.Command
	slot    int
	prpAddr uint64 // clone location for writes; fill target for reads
	done    sim.Time
}

// bank is one independent controller bank: a slice of the NVDIMM cache
// with its own tag array, queue pair, PRP clone pool, in-flight table
// and persist-mode serialization point. The front-end router steers
// MoS pages to banks by page-interleaving (page mod Banks).
//
// The bank is also the sim.Handler for every event the miss pipeline
// schedules (busy-bit clearing, MSHR retirement, command completion):
// one persistent object demultiplexing on the event kind, so the hot
// path never allocates a closure per event.
type bank struct {
	id        int
	c         *Controller // event dispatch back-pointer
	tags      *tagstore.Store
	qp        *nvme.QueuePair
	prp       *nvme.PRPPool
	live      []inflight
	mshrs     *mshrFile     // non-blocking miss pipeline (nil when MSHRs <= 1)
	cacheBase uint64        // NVDIMM byte offset of this bank's cache slice
	qBase     uint64        // this bank's queue-pair base in the pinned region
	owner     []qos.ClassID // per-slot installing class (QoS only)

	lastIODone  sim.Time // persist-mode serialization point (per bank)
	lastArrival sim.Time // router-enforced nondecreasing arrivals
}

// Event kinds dispatched through bank.OnEvent (ScheduleCall a0).
const (
	evBusyClear     = int64(iota) // a1 = tag-array slot; fires at BusyUntil
	evMSHRRetire                  // a1 = register seq tag
	evCompleteWrite               // a1 = NVMe CID
	evCompleteRead                // a1 = NVMe CID
)

// OnEvent demultiplexes the bank's deferred events. Events scheduled
// before a power failure die with the replaced engine, so every case
// here may also encounter state that no longer exists and must no-op.
func (b *bank) OnEvent(at sim.Time, a0, a1 int64) {
	switch a0 {
	case evBusyClear:
		// A newer install may have extended the slot's busy window; only
		// the event matching the current BusyUntil clears it.
		en := b.tags.Entry(int(a1))
		if en.BusyUntil <= at {
			en.Busy = false
			en.EvictBusy = false
		}
	case evMSHRRetire:
		b.mshrs.RetireSeq(a1)
	case evCompleteWrite:
		b.c.completeWrite(b, uint16(a1))
	case evCompleteRead:
		b.c.completeRead(b, uint16(a1))
	}
}

// removeInflight extracts the in-flight entry with the given CID,
// preserving issue order.
func (b *bank) removeInflight(cid uint16) (inflight, bool) {
	for i := range b.live {
		if b.live[i].cmd.CID == cid {
			inf := b.live[i]
			b.live = append(b.live[:i], b.live[i+1:]...)
			return inf, true
		}
	}
	return inflight{}, false
}

// Stats aggregates controller activity across all banks.
type Stats struct {
	Accesses  int64
	Hits      int64
	Misses    int64
	Evictions int64
	// RedundantSquashed counts misses that parked on a busy victim
	// way. In the 1-way organization these are exactly the redundant
	// evictions the busy bit suppresses (Figure 14); with Ways > 1 a
	// busy victim only occurs when every way is in flight, and the
	// wait may still be followed by a genuine eviction.
	RedundantSquashed int64
	WaitQ             int64 // requests parked in the wait queue
	Fills             int64
	FullPageWrites    int64 // misses that skipped the fill (write covers page)

	// Non-blocking miss-pipeline counters (all zero when MSHRs <= 1).
	// Coalesced counts secondary misses merged onto an in-flight
	// fill's MSHR (they park until the data is resident but compose
	// no command of their own); HitUnderMiss counts hits served
	// without any wait while the bank had at least one fill in
	// flight; MSHRStalls counts primary misses that parked because
	// every register in the bank's file was live.
	Coalesced    int64
	HitUnderMiss int64
	MSHRStalls   int64

	// Latency decomposition (Fig. 18): time attributed to NVDIMM
	// accesses, to interface/DMA transfers, and to SSD internals.
	NVDIMMTime sim.Time
	DMATime    sim.Time
	SSDTime    sim.Time
	WaitTime   sim.Time
	TotalTime  sim.Time

	// ThrottleTime is the total MBA pacing debt the QoS throttle
	// charged (reported via AccessResult.Throttle, applied by the
	// driver at step boundaries; zero when no class is throttled).
	ThrottleTime sim.Time

	Replayed int64 // commands re-issued by power-failure recovery
}

// HitRate returns hits/accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Controller is one HAMS instance.
type Controller struct {
	cfg    Config
	engine *sim.Engine
	nvdimm *dram.NVDIMM
	dev    *ssd.Device
	link   *pcie.Link     // loose topology
	dbus   *bus.SharedBus // tight topology

	banks      []*bank
	cacheBytes uint64 // NVDIMM bytes used as MoS cache
	pinnedBase uint64

	lockFreeAt sim.Time // tight topology: DMA holds the shared bus

	// QoS layer (nil/zero when Config.QoS is nil — the hot path pays
	// one nil check).
	qosMasks []uint64 // per-class effective way masks
	qosThr   *qos.Throttle
	qosMon   *qos.Monitor
	// Dynamic QoS: the controller mutates its private clone of the
	// table (qosTab), never Config.QoS, so the caller's scenario stays
	// reusable with its initial classes intact.
	qosTab       *qos.Table
	qosPolicy    []qos.TimedChange
	qosPolIdx    int
	qosCtl       *qos.Controller
	qosReconfigs int64

	// Steady-state scratch: the devices copy what they are handed and
	// the NVDIMM store copies what it reads out, so one page buffer per
	// role serves every miss without allocating. split backs the
	// page-splitting loop in run().
	fillBuf  []byte
	evictBuf []byte
	split    []mem.Access

	stats Stats
}

// New builds a controller. The pinned region is laid out at the top of
// the NVDIMM: each bank's queue pair, then its PRP pool (Figure 9),
// banks back to back.
func New(cfg Config) (*Controller, error) {
	if !mem.IsPow2(cfg.PageBytes) {
		return nil, fmt.Errorf("core: page size %d is not a power of two", cfg.PageBytes)
	}
	nv := dram.NewNVDIMM(cfg.NVDIMM)
	if cfg.PinnedBytes >= nv.Capacity() {
		return nil, fmt.Errorf("core: pinned region %d exceeds NVDIMM %d", cfg.PinnedBytes, nv.Capacity())
	}
	if cfg.PRPSlots <= 0 {
		cfg.PRPSlots = 64
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 1
	}
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 1
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if err := cfg.QoS.Validate(cfg.Ways); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:      cfg,
		engine:   sim.NewEngine(),
		nvdimm:   nv,
		dev:      ssd.New(cfg.SSD),
		fillBuf:  make([]byte, cfg.PageBytes),
		evictBuf: make([]byte, cfg.PageBytes),
	}
	if cfg.QoS != nil {
		c.qosTab = cfg.QoS.Clone()
		c.qosMasks = c.qosTab.Masks(cfg.Ways)
		c.qosThr = qos.NewThrottle(c.qosTab)
		c.qosMon = qos.NewMonitor(c.qosTab, cfg.QoSSamplePeriod)
	}
	if len(cfg.QoSPolicy) > 0 {
		if cfg.QoS == nil {
			return nil, fmt.Errorf("core: QoS policy timeline requires a QoS table")
		}
		if err := qos.ValidateSchedule(cfg.QoSPolicy, cfg.QoS.Len(), cfg.Ways); err != nil {
			return nil, err
		}
		c.qosPolicy = cfg.QoSPolicy
	}
	if cfg.QoSController != nil {
		if cfg.QoS == nil {
			return nil, fmt.Errorf("core: QoS feedback controller requires a QoS table")
		}
		c.qosCtl = cfg.QoSController
		c.qosMon.OnEmit(func(s qos.Sample) {
			for _, act := range c.qosCtl.OnSample(s, c.qosMon.Period()) {
				c.applyChange(act.Class, act.Mask, act.MBps)
			}
		})
	}
	c.cacheBytes = nv.Capacity() - cfg.PinnedBytes
	c.cacheBytes = mem.AlignDown(c.cacheBytes, cfg.PageBytes)
	c.pinnedBase = c.cacheBytes

	totalEntries := int(c.cacheBytes / cfg.PageBytes)
	perBank := totalEntries / cfg.Banks
	perBank -= perBank % cfg.Ways
	if perBank <= 0 {
		return nil, fmt.Errorf("core: cache of %d pages cannot host %d banks × %d ways",
			totalEntries, cfg.Banks, cfg.Ways)
	}

	qBase := c.pinnedBase
	for i := 0; i < cfg.Banks; i++ {
		tags, err := tagstore.New(tagstore.Config{
			Entries: perBank,
			Ways:    cfg.Ways,
			Policy:  cfg.Replacement,
			Seed:    int64(i) + 1,
		})
		if err != nil {
			return nil, fmt.Errorf("core: bank %d: %w", i, err)
		}
		layout := nvme.DefaultLayout(qBase)
		prpBase := mem.AlignUp(layout.CQBase+16+8*1024, cfg.PageBytes)
		pool := nvme.NewPRPPool(prpBase, cfg.PageBytes, cfg.PRPSlots)
		if prpBase+pool.Footprint() > nv.Capacity() {
			return nil, fmt.Errorf("core: pinned region too small for PRP pool")
		}
		bk := &bank{
			id:        i,
			c:         c,
			tags:      tags,
			qp:        nvme.NewQueuePair(nv.Store(), layout),
			prp:       pool,
			cacheBase: uint64(i) * uint64(perBank) * cfg.PageBytes,
			qBase:     qBase,
		}
		if cfg.QoS != nil {
			bk.owner = make([]qos.ClassID, tags.Len())
		}
		if cfg.MSHRs > 1 {
			bk.mshrs = newMSHRFile(cfg.MSHRs)
		}
		c.banks = append(c.banks, bk)
		qBase = mem.AlignUp(prpBase+pool.Footprint(), cfg.PageBytes)
	}

	switch cfg.Topology {
	case Loose:
		c.link = pcie.New(cfg.PCIe)
	case Tight:
		c.dbus = bus.New(cfg.Bus)
	}
	return c, nil
}

// Capacity returns the MoS address-space size exposed to the MMU —
// the exported capacity of the ULL-Flash archive (§IV-A).
func (c *Controller) Capacity() uint64 { return c.dev.Capacity() }

// PageBytes returns the MoS cache page size.
func (c *Controller) PageBytes() uint64 { return c.cfg.PageBytes }

// CacheEntries returns the total number of tag-array entries across
// all banks.
func (c *Controller) CacheEntries() int {
	n := 0
	for _, b := range c.banks {
		n += b.tags.Len()
	}
	return n
}

// Banks returns the controller bank count.
func (c *Controller) Banks() int { return len(c.banks) }

// MSHRs returns the per-bank miss-status-register depth (1 = the
// paper's blocking miss pipeline).
func (c *Controller) MSHRs() int { return c.cfg.MSHRs }

// PeakQueueDepth returns the highest number of NVMe commands any bank
// queue pair held in flight at once — the memory-level parallelism
// the miss pipeline actually exposed to the device.
func (c *Controller) PeakQueueDepth() int {
	peak := 0
	for _, b := range c.banks {
		if p := b.qp.PeakOutstanding(); p > peak {
			peak = p
		}
	}
	return peak
}

// Ways returns the tag-array associativity.
func (c *Controller) Ways() int { return c.banks[0].tags.Ways() }

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// Device exposes the archive (for energy accounting).
func (c *Controller) Device() *ssd.Device { return c.dev }

// NVDIMM exposes the module (for energy accounting).
func (c *Controller) NVDIMM() *dram.NVDIMM { return c.nvdimm }

// BusStats exposes lock-register statistics in tight topology.
func (c *Controller) BusStats() bus.Stats {
	if c.dbus == nil {
		return bus.Stats{}
	}
	return c.dbus.Stats()
}

// Outstanding returns in-flight NVMe command count across banks (tests).
func (c *Controller) Outstanding() int {
	n := 0
	for _, b := range c.banks {
		n += len(b.live)
	}
	return n
}

// Warm installs the pages covering [base, base+size) into the MoS
// tag arrays as valid and clean, without charging time — used by the
// experiment harness to reach the steady-state residency a full-length
// (paper-scale) run would have built up. Live state is never
// disturbed: busy entries and dirty ways survive warming. The pages
// are attributed to the default class; WarmClass warms on behalf of a
// specific class.
func (c *Controller) Warm(base, size uint64) { c.WarmClass(base, size, 0) }

// WarmClass warms [base, base+size) on behalf of class cls: installs
// are confined to the class's permitted ways (so a partitioned
// tenant's steady state lands inside its partition, exactly where the
// live run would have built it) and the monitor attributes the
// occupancy to cls. With no QoS table — or a full-mask class — this
// is Warm.
func (c *Controller) WarmClass(base, size uint64, cls qos.ClassID) {
	if size == 0 {
		return
	}
	mask := uint64(0) // 0 = full, resolved per bank below
	if c.qosMasks != nil {
		mask = c.qosMasks[c.classIndex(cls)]
	}
	end := base + size
	if end > c.Capacity() {
		end = c.Capacity()
	}
	for addr := mem.AlignDown(base, c.cfg.PageBytes); addr < end; addr += c.cfg.PageBytes {
		page := addr / c.cfg.PageBytes
		b, set := c.route(page)
		if slot, ok := b.tags.Lookup(set, page); ok {
			e := b.tags.Entry(slot)
			if e.Busy || e.Dirty {
				continue // never disturb live state
			}
			e.ReadyAt = 0
			e.BusyUntil = 0
			e.FreeAt = 0
			b.tags.Touch(slot)
			continue
		}
		var slot int
		var ok bool
		if mask == 0 {
			slot, ok = b.tags.WarmVictim(set)
		} else {
			slot, ok = b.tags.WarmVictimMasked(set, mask)
		}
		if !ok {
			continue // every (permitted) way dirty or busy
		}
		e := b.tags.Entry(slot)
		wasValid := e.Valid
		e.Tag = page
		e.Valid = true
		e.Dirty = false
		e.ReadyAt = 0
		e.BusyUntil = 0
		e.FreeAt = 0
		e.Busy = false
		e.EvictBusy = false
		b.tags.Touch(slot)
		if c.qosMon != nil {
			c.qosMon.Install(cls, b.owner[slot], wasValid)
			b.owner[slot] = cls
		}
	}
}

// classIndex clamps a request's class tag onto the table (stray tags
// fall back to the default class, never out of bounds).
func (c *Controller) classIndex(cls qos.ClassID) int {
	if int(cls) >= len(c.qosMasks) {
		return 0
	}
	return int(cls)
}

// QoSEnabled reports whether the controller carries a QoS table.
func (c *Controller) QoSEnabled() bool { return c.cfg.QoS != nil }

// QoSStats returns the MBM-style per-class counters (nil when QoS is
// disabled).
func (c *Controller) QoSStats() []qos.ClassStats {
	if c.qosMon == nil {
		return nil
	}
	return c.qosMon.Stats()
}

// QoSSamples returns the monitor's sim-time sample history (nil when
// QoS is disabled).
func (c *Controller) QoSSamples() []qos.Sample {
	if c.qosMon == nil {
		return nil
	}
	return c.qosMon.Samples()
}

// Reprogram mutates class cls's way mask and bandwidth cap at
// runtime — the validated entry point behind ad-hoc (non-timeline)
// reconfiguration. Semantics match a hardware CAT/MBA MSR rewrite:
// the new mask confines victim selection from the next miss on, but
// is never retroactive — pages resident in now-forbidden ways stay
// valid and hittable until natural eviction, and an in-flight MSHR
// fill completes into the slot it reserved even if the shrunk mask no
// longer covers that way. The throttle is re-based at the new rate
// with accrued debt intact (qos.Throttle.SetRate). mask 0 = full;
// mbps 0 = unthrottled.
func (c *Controller) Reprogram(cls qos.ClassID, mask uint64, mbps float64) error {
	if c.qosTab == nil {
		return fmt.Errorf("core: Reprogram without a QoS table")
	}
	if int(cls) >= c.qosTab.Len() {
		return fmt.Errorf("core: Reprogram class %d out of range (table has %d)", cls, c.qosTab.Len())
	}
	if mask&^qos.FullMask(c.cfg.Ways) != 0 {
		return fmt.Errorf("core: Reprogram mask %#x selects ways beyond the %d-way array", mask, c.cfg.Ways)
	}
	if mbps < 0 {
		return fmt.Errorf("core: Reprogram negative throttle %.1f MB/s", mbps)
	}
	c.applyChange(cls, mask, mbps)
	return nil
}

// applyChange installs one already-validated class reprogramming.
func (c *Controller) applyChange(cls qos.ClassID, mask uint64, mbps float64) {
	eff := mask
	if eff == 0 {
		eff = qos.FullMask(c.cfg.Ways)
	}
	c.qosMasks[cls] = eff
	c.qosThr.SetRate(cls, mbps)
	// The clone keeps the raw (0 = full) mask so reporting renders it
	// the way it was programmed.
	_ = c.qosTab.Set(cls, mask, mbps)
	c.qosReconfigs++
}

// applyPolicy latches every scheduled change due at or before t.
func (c *Controller) applyPolicy(t sim.Time) {
	for c.qosPolIdx < len(c.qosPolicy) && c.qosPolicy[c.qosPolIdx].At <= t {
		ch := c.qosPolicy[c.qosPolIdx]
		c.qosPolIdx++
		c.applyChange(ch.Class, ch.Mask, ch.MBps)
	}
}

// QoSReconfigs counts runtime class reprogrammings applied this run
// (timeline changes + feedback-controller actions).
func (c *Controller) QoSReconfigs() int64 { return c.qosReconfigs }

// QoSCurrent returns a copy of the current (possibly reprogrammed)
// class table, nil when QoS is disabled. Masks keep the 0 = full
// convention.
func (c *Controller) QoSCurrent() []qos.Class {
	if c.qosTab == nil {
		return nil
	}
	out := make([]qos.Class, len(c.qosTab.Classes))
	copy(out, c.qosTab.Classes)
	return out
}

// bankOf routes a MoS page to its bank (page-interleaved).
func (c *Controller) bankOf(page uint64) *bank {
	return c.banks[page%uint64(len(c.banks))]
}

// bankKey is the bank-local page number used for set indexing. With
// one bank it is the page number itself, matching the seed's
// direct-mapped index.
func (c *Controller) bankKey(page uint64) uint64 {
	return page / uint64(len(c.banks))
}

// route resolves a MoS page to its owning bank and tag-array set —
// the single source of truth for the front-end address mapping shared
// by the timed path, Warm and PeekData.
func (c *Controller) route(page uint64) (*bank, int) {
	b := c.bankOf(page)
	return b, b.tags.SetFor(c.bankKey(page))
}

// cacheAddr returns the NVDIMM byte address of a bank slot's page.
func (c *Controller) cacheAddr(b *bank, slot int) uint64 {
	return b.cacheBase + uint64(slot)*c.cfg.PageBytes
}

func (c *Controller) String() string {
	return fmt.Sprintf("hams(%s,%s, %dKB pages, %d entries, %d×%d-way)",
		c.cfg.Mode, c.cfg.Topology, c.cfg.PageBytes/1024, c.CacheEntries(),
		len(c.banks), c.banks[0].tags.Ways())
}
