package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"hams/internal/dram"
	"hams/internal/flash"
	"hams/internal/ftl"
	"hams/internal/mem"
	"hams/internal/sim"
	"hams/internal/ssd"
)

// testConfig returns a scaled-down HAMS: 4 MiB NVDIMM cache (64 KiB
// pinned), 16 KiB MoS pages, tiny but real ULL-Flash.
func testConfig(m Mode, tp Topology) Config {
	cfg := DefaultConfig(m, tp)
	cfg.PageBytes = 16 * mem.KiB
	cfg.PinnedBytes = 2 * mem.MiB
	cfg.PRPSlots = 16
	cfg.NVDIMM.DRAM.Capacity = 8 * mem.MiB
	g := flash.Geometry{
		Channels: 4, PackagesPerC: 1, DiesPerPkg: 2, PlanesPerDie: 1,
		BlocksPerPln: 32, PagesPerBlk: 32, PageBytes: 4096,
	}
	cfg.SSD.Geometry = g
	cfg.SSD.FTL = ftl.DefaultConfig()
	if tp == Tight {
		cfg.SSD.BufferBytes = 0
	} else {
		cfg.SSD.BufferBytes = 1 * mem.MiB
	}
	return cfg
}

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	cfg := testConfig(Extend, Loose)
	cfg.PageBytes = 3000 // not a power of two
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for non-pow2 page size")
	}
	cfg = testConfig(Extend, Loose)
	cfg.PinnedBytes = cfg.NVDIMM.DRAM.Capacity + 1
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error for oversized pinned region")
	}
}

func TestCapacityIsArchiveCapacity(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Loose))
	if c.Capacity() == 0 {
		t.Fatal("zero MoS capacity")
	}
	dev := ssd.New(testConfig(Extend, Loose).SSD)
	if c.Capacity() != dev.Capacity() {
		t.Fatalf("MoS capacity %d != archive %d", c.Capacity(), dev.Capacity())
	}
	// MoS space must exceed the NVDIMM cache: that's the expansion.
	if c.Capacity() <= uint64(c.CacheEntries())*c.PageBytes() {
		t.Fatal("MoS space does not exceed NVDIMM cache")
	}
}

func TestMissThenHit(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Loose))
	r1, err := c.Access(0, mem.Access{Addr: 0x1000, Size: 64, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Hit {
		t.Fatal("first access must miss")
	}
	r2, err := c.Access(r1.Done, mem.Access{Addr: 0x1040, Size: 64, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Hit {
		t.Fatal("second access to same page must hit")
	}
	// Hit latency must be DRAM-like: orders of magnitude below miss.
	hitLat := r2.Done - r1.Done
	missLat := r1.Done
	if hitLat*10 > missLat {
		t.Fatalf("hit %v vs miss %v: expected >10x gap", hitLat, missLat)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDataRoundTripThroughCache(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Loose))
	payload := []byte("memory over storage, byte addressable")
	w, err := c.Write(0, 0x2000, payload)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := c.Read(w.Done, 0x2000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestDataSurvivesEviction(t *testing.T) {
	cfg := testConfig(Extend, Loose)
	c := mustNew(t, cfg)
	entries := uint64(c.CacheEntries())
	payload := []byte("dirty page headed to flash")
	w, _ := c.Write(0, 0x0, payload)
	// Conflict: same index, different tag -> evicts page 0.
	conflictAddr := entries * cfg.PageBytes
	r, err := c.Access(w.Done, mem.Access{Addr: conflictAddr, Size: 64, Op: mem.Write})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
	// Read page 0 back: must be refetched from the archive intact.
	got := make([]byte, len(payload))
	rd, err := c.Read(r.Done+sim.Second, 0x0, got)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Hit {
		t.Fatal("must miss after eviction")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("post-eviction got %q", got)
	}
}

func TestCleanEvictionComposesNoWrite(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Loose))
	entries := uint64(c.CacheEntries())
	// Read-only resident page: clean.
	r1, _ := c.Access(0, mem.Access{Addr: 0, Size: 64, Op: mem.Read})
	// Conflict evicts it; clean pages need no NVMe write.
	c.Access(r1.Done, mem.Access{Addr: entries * c.PageBytes(), Size: 64, Op: mem.Read})
	if c.Stats().Evictions != 0 {
		t.Fatalf("clean replacement must not evict, got %d", c.Stats().Evictions)
	}
}

func TestPersistModeSerializesMisses(t *testing.T) {
	ce := mustNew(t, testConfig(Extend, Loose))
	cp := mustNew(t, testConfig(Persist, Loose))
	// Two concurrent misses to different entries at t=0 and t=1.
	doMisses := func(c *Controller) sim.Time {
		var last sim.Time
		for i := 0; i < 4; i++ {
			r, err := c.Access(sim.Time(i), mem.Access{Addr: uint64(i) * c.PageBytes(), Size: 64, Op: mem.Write})
			if err != nil {
				t.Fatal(err)
			}
			if r.Done > last {
				last = r.Done
			}
		}
		return last
	}
	de := doMisses(ce)
	dp := doMisses(cp)
	if dp <= de {
		t.Fatalf("persist mode (%v) must be slower than extend (%v)", dp, de)
	}
}

func TestTightTopologyFasterOnMisses(t *testing.T) {
	// Advanced HAMS moves miss data over DDR4 (20 GB/s) instead of
	// PCIe (4 GB/s): the transfer component of a miss must shrink.
	cl := mustNew(t, testConfig(Extend, Loose))
	ct := mustNew(t, testConfig(Extend, Tight))
	var dl, dt sim.Time
	var now sim.Time
	for i := 0; i < 8; i++ {
		r, err := cl.Access(now, mem.Access{Addr: uint64(i) * cl.PageBytes(), Size: 64, Op: mem.Read})
		if err != nil {
			t.Fatal(err)
		}
		dl += r.DMA
		now = r.Done
	}
	now = 0
	for i := 0; i < 8; i++ {
		r, err := ct.Access(now, mem.Access{Addr: uint64(i) * ct.PageBytes(), Size: 64, Op: mem.Read})
		if err != nil {
			t.Fatal(err)
		}
		dt += r.DMA
		now = r.Done
	}
	if dt >= dl {
		t.Fatalf("tight DMA time (%v) must beat loose (%v)", dt, dl)
	}
}

func TestBusyBitBlocksConflictingMiss(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Loose))
	entries := uint64(c.CacheEntries())
	// Dirty page 0.
	w, _ := c.Write(0, 0, []byte{1})
	// Miss on the same entry: evict in flight. A second miss on the
	// same entry immediately after must park in the wait queue.
	r1, _ := c.Access(w.Done, mem.Access{Addr: entries * c.PageBytes(), Size: 64, Op: mem.Write})
	_, _ = c.Access(w.Done+1, mem.Access{Addr: 2 * entries * c.PageBytes(), Size: 64, Op: mem.Write})
	_ = r1
	if c.Stats().WaitQ == 0 {
		t.Fatal("expected wait-queue parking on busy entry")
	}
	if c.Stats().RedundantSquashed == 0 {
		t.Fatal("expected redundant-eviction suppression")
	}
}

func TestAccessBeyondCapacityFails(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Loose))
	_, err := c.Access(0, mem.Access{Addr: c.Capacity(), Size: 64, Op: mem.Read})
	if err == nil {
		t.Fatal("expected capacity error")
	}
}

func TestHitRate(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Loose))
	var now sim.Time
	for i := 0; i < 100; i++ {
		r, err := c.Access(now, mem.Access{Addr: uint64(i%4) * 64, Size: 64, Op: mem.Read})
		if err != nil {
			t.Fatal(err)
		}
		now = r.Done
	}
	if hr := c.Stats().HitRate(); hr < 0.98 {
		t.Fatalf("hit rate %f for a 1-page working set", hr)
	}
}

func TestLatencyDecompositionSums(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Loose))
	r, err := c.Access(0, mem.Access{Addr: 0, Size: 64, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	sum := r.Wait + r.NVDIMM + r.DMA + r.SSD
	total := r.Done
	// Decomposition must cover most of the miss latency (small fixed
	// costs like compose/notify are outside the three buckets).
	if sum > total {
		t.Fatalf("components %v exceed total %v", sum, total)
	}
	if float64(sum) < 0.85*float64(total) {
		t.Fatalf("components %v cover too little of total %v", sum, total)
	}
}

func TestStraddlingAccessTouchesTwoPages(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Loose))
	addr := c.PageBytes() - 32
	r, err := c.Access(0, mem.Access{Addr: addr, Size: 64, Op: mem.Write})
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Fills != 2 {
		t.Fatalf("fills = %d, want 2 (straddle)", c.Stats().Fills)
	}
	_ = r
}

func TestPeekDataMatchesTimedRead(t *testing.T) {
	c := mustNew(t, testConfig(Extend, Loose))
	payload := []byte("peek me")
	w, _ := c.Write(0, 12345, payload)
	got := make([]byte, len(payload))
	c.PeekData(12345, got)
	if !bytes.Equal(got, payload) {
		t.Fatalf("resident peek got %q", got)
	}
	// Evict and peek again: must read through to the archive.
	entries := uint64(c.CacheEntries())
	c.Access(w.Done, mem.Access{Addr: 12345 + entries*c.PageBytes(), Size: 8, Op: mem.Write})
	got2 := make([]byte, len(payload))
	c.PeekData(12345, got2)
	if !bytes.Equal(got2, payload) {
		t.Fatalf("archive peek got %q", got2)
	}
}

// Property: HAMS behaves as a linearizable byte store under random
// single-threaded reads/writes at random addresses.
func TestMoSLinearizabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(testConfig(Extend, Loose))
		if err != nil {
			return false
		}
		span := uint64(64) * c.PageBytes() // larger than the cache
		shadow := make(map[uint64]byte)
		var now sim.Time
		for i := 0; i < 120; i++ {
			addr := uint64(rng.Intn(int(span)))
			n := rng.Intn(40) + 1
			if addr+uint64(n) > span {
				n = int(span - addr)
			}
			if rng.Intn(2) == 0 {
				buf := make([]byte, n)
				rng.Read(buf)
				r, err := c.Write(now, addr, buf)
				if err != nil {
					return false
				}
				now = r.Done
				for j, b := range buf {
					shadow[addr+uint64(j)] = b
				}
			} else {
				buf := make([]byte, n)
				r, err := c.Read(now, addr, buf)
				if err != nil {
					return false
				}
				now = r.Done
				for j, b := range buf {
					if want := shadow[addr+uint64(j)]; b != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: completion times are monotone with arrival times for
// in-order single-stream access.
func TestMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(testConfig(Extend, Tight))
		if err != nil {
			return false
		}
		span := uint64(32) * c.PageBytes()
		var now sim.Time
		for i := 0; i < 60; i++ {
			addr := uint64(rng.Intn(int(span) - 64))
			op := mem.Read
			if rng.Intn(2) == 1 {
				op = mem.Write
			}
			r, err := c.Access(now, mem.Access{Addr: addr, Size: 64, Op: op})
			if err != nil {
				return false
			}
			if r.Done < now {
				return false
			}
			now = r.Done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if Persist.String() != "persist" || Extend.String() != "extend" {
		t.Fatal("Mode.String")
	}
	if Loose.String() != "loose" || Tight.String() != "tight" {
		t.Fatal("Topology.String")
	}
	c := mustNew(t, testConfig(Extend, Tight))
	if c.String() == "" {
		t.Fatal("Controller.String")
	}
}

var _ = dram.DDR42133 // keep import for config construction below
