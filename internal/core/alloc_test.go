package core

import (
	"testing"

	"hams/internal/mem"
	"hams/internal/sim"
)

// TestHitPathZeroAllocs pins the tentpole steady-state contract: once
// a page is resident, serving cache-line hits (reads and writes)
// allocates nothing — no closures, no per-access buffers, no map
// traffic anywhere on the MMU→tag-array→NVDIMM path.
func TestHitPathZeroAllocs(t *testing.T) {
	for _, tp := range []Topology{Loose, Tight} {
		c := mustNew(t, testConfig(Extend, tp))
		pb := c.PageBytes()
		if _, err := c.Access(0, mem.Access{Addr: 0, Size: 64, Op: mem.Write}); err != nil {
			t.Fatal(err)
		}
		c.engine.Drain()
		now := c.engine.Now() + 1
		var i uint64
		avg := testing.AllocsPerRun(500, func() {
			a := mem.Access{Addr: (i * 64) % pb, Size: 64, Op: mem.Read}
			if i%2 == 1 {
				a.Op = mem.Write
			}
			if _, err := c.Access(now, a); err != nil {
				panic(err)
			}
			i++
		})
		if avg != 0 {
			t.Fatalf("%v hit path allocates %.1f/op, want 0", tp, avg)
		}
	}
}

// TestCoalescedMissZeroAllocs pins the non-blocking pipeline's
// secondary-miss contract: a request that coalesces onto an in-flight
// fill (park until ReadyAt, ride the primary's MSHR, serve from the
// just-landed page) allocates nothing — including every completion
// event the park's AdvanceTo fires.
func TestCoalescedMissZeroAllocs(t *testing.T) {
	cfg := testConfig(Extend, Loose)
	cfg.MSHRs = 16
	c := mustNew(t, cfg)
	pb := c.PageBytes()

	// Retire a throwaway miss first so every slice (heap, live table,
	// MSHR file, split scratch) has its steady-state capacity.
	if _, err := c.Access(0, mem.Access{Addr: 0, Size: 64, Op: mem.Read}); err != nil {
		t.Fatal(err)
	}
	c.engine.Drain()
	t0 := c.engine.Now() + 1

	// Prime primary misses on distinct pages; all stay in flight
	// because nothing advances the clock past their completions.
	const runs = 8
	pages := make([]uint64, runs+1) // AllocsPerRun calls f runs+1 times
	for i := range pages {
		pages[i] = uint64(i + 1)
		if _, err := c.Access(t0, mem.Access{Addr: pages[i] * pb, Size: 64, Op: mem.Read}); err != nil {
			t.Fatal(err)
		}
	}

	coalescedBefore := c.Stats().Coalesced
	var i int
	avg := testing.AllocsPerRun(runs, func() {
		res, err := c.Access(t0, mem.Access{Addr: pages[i]*pb + 64, Size: 64, Op: mem.Read})
		if err != nil {
			panic(err)
		}
		if !res.Hit {
			panic("secondary access did not hit the in-flight tag")
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("coalesced miss allocates %.1f/op, want 0", avg)
	}
	if got := c.Stats().Coalesced - coalescedBefore; got == 0 {
		t.Fatal("no access coalesced — the pin measured the wrong path")
	}
}

// BenchmarkAccessHit measures the end-to-end hit path through the
// controller front door (router, tag lookup, NVDIMM timing, stats).
func BenchmarkAccessHit(b *testing.B) {
	cfg := testConfig(Extend, Loose)
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pb := c.PageBytes()
	if _, err := c.Access(0, mem.Access{Addr: 0, Size: 64, Op: mem.Write}); err != nil {
		b.Fatal(err)
	}
	c.engine.Drain()
	now := c.engine.Now() + 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mem.Access{Addr: (uint64(i) * 64) % pb, Size: 64, Op: mem.Read}
		if _, err := c.Access(now, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessMiss measures the full miss pipeline — victim
// selection, NVMe fill composition, device read, install — with a
// working set that always misses (sequential sweep wider than the
// cache).
func BenchmarkAccessMiss(b *testing.B) {
	cfg := testConfig(Extend, Loose)
	cfg.MSHRs = 8
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pb := c.PageBytes()
	pages := c.Capacity() / pb
	var now sim.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mem.Access{Addr: (uint64(i) % pages) * pb, Size: 64, Op: mem.Read}
		res, err := c.Access(now, a)
		if err != nil {
			b.Fatal(err)
		}
		now = res.Done
	}
}
