// Package nvme implements the NVMe structures HAMS manages in hardware:
// 64-byte command encode/decode (with the paper's journal tag carried
// in a reserved byte), submission/completion rings whose slots and
// head/tail pointers live as real bytes inside a backing store (the
// pinned NVDIMM region), doorbells, and the PRP pool allocator used to
// clone pages out of the MoS cache during DMA.
package nvme

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Store is the byte-addressable medium holding the queue structures.
// *mem.SparseStore satisfies it; so does any NVDIMM functional store.
type Store interface {
	ReadAt(addr uint64, p []byte)
	WriteAt(addr uint64, p []byte)
}

// Opcode follows the NVM command set encoding.
type Opcode uint8

const (
	OpFlush Opcode = 0x00
	OpWrite Opcode = 0x01
	OpRead  Opcode = 0x02
)

func (o Opcode) String() string {
	switch o {
	case OpFlush:
		return "flush"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("op(%#x)", uint8(o))
	}
}

// CommandBytes is the NVMe submission-entry size.
const CommandBytes = 64

// CompletionBytes is the NVMe completion-entry size.
const CompletionBytes = 16

// Command is one submission-queue entry. HAMS fills the opcode, the
// NVDIMM address into PRP, the SSD address into LBA and the page size
// into Length (§V-B); FUA and the journal tag ride in flag bytes.
type Command struct {
	Opcode  Opcode
	CID     uint16 // command identifier
	FUA     bool   // force unit access (persist mode)
	Journal bool   // journal tag: 1 while the request is in flight
	PRP     uint64 // host (NVDIMM) byte address of the data buffer
	LBA     uint64 // storage logical block address (byte address here)
	Length  uint32 // transfer size in bytes
}

// Encode serializes the command into its 64-byte wire format.
//
//	offset 0   opcode
//	offset 1   flags: bit0 FUA, bit1 journal tag (reserved area per §V-C)
//	offset 2   CID (le16)
//	offset 8   PRP  (le64)
//	offset 16  LBA  (le64)
//	offset 24  Length (le32)
//	rest       reserved, zero
func (c Command) Encode() [CommandBytes]byte {
	var b [CommandBytes]byte
	b[0] = byte(c.Opcode)
	var fl byte
	if c.FUA {
		fl |= 1
	}
	if c.Journal {
		fl |= 2
	}
	b[1] = fl
	binary.LittleEndian.PutUint16(b[2:], c.CID)
	binary.LittleEndian.PutUint64(b[8:], c.PRP)
	binary.LittleEndian.PutUint64(b[16:], c.LBA)
	binary.LittleEndian.PutUint32(b[24:], c.Length)
	return b
}

// DecodeCommand parses a 64-byte submission entry.
func DecodeCommand(b []byte) Command {
	var c Command
	c.Opcode = Opcode(b[0])
	c.FUA = b[1]&1 != 0
	c.Journal = b[1]&2 != 0
	c.CID = binary.LittleEndian.Uint16(b[2:])
	c.PRP = binary.LittleEndian.Uint64(b[8:])
	c.LBA = binary.LittleEndian.Uint64(b[16:])
	c.Length = binary.LittleEndian.Uint32(b[24:])
	return c
}

// Completion is one completion-queue entry.
type Completion struct {
	CID    uint16
	Status uint8 // 0 = success
	SQHead uint16
}

// Encode serializes the completion into its 16-byte format.
func (c Completion) Encode() [CompletionBytes]byte {
	var b [CompletionBytes]byte
	binary.LittleEndian.PutUint16(b[0:], c.CID)
	b[2] = c.Status
	binary.LittleEndian.PutUint16(b[4:], c.SQHead)
	return b
}

// DecodeCompletion parses a 16-byte completion entry.
func DecodeCompletion(b []byte) Completion {
	return Completion{
		CID:    binary.LittleEndian.Uint16(b[0:]),
		Status: b[2],
		SQHead: binary.LittleEndian.Uint16(b[4:]),
	}
}

// ringHeaderBytes precedes the slots: head (le32) then tail (le32).
// Persisting the pointers in the store is what lets HAMS detect
// pending requests after a power failure (§IV-B).
const ringHeaderBytes = 16

// zeroSlot is the shared scrub payload for Reset (CommandBytes is the
// largest slot size either ring uses).
var zeroSlot [CommandBytes]byte

// Ring is a FIFO of fixed-size slots materialized in a Store. The
// head/tail pointers are persisted in the store (the recovery
// contract) and cached write-through in the struct, so steady-state
// pushes and pops read no header bytes back; hdr is the header
// serialization scratch (a stack array would escape through the Store
// interface and allocate per call).
type Ring struct {
	store     Store
	base      uint64
	slotBytes int
	entries   uint32
	hd, tl    uint32
	hdr       [4]byte
}

// NewRing lays a ring over store at base with the given slot size and
// entry count. The caller owns zeroing the region on first use; the
// pointer cache loads from whatever the store holds (after a power
// failure, the persisted pointers).
func NewRing(store Store, base uint64, slotBytes int, entries uint32) *Ring {
	if entries == 0 {
		panic("nvme: ring needs at least one entry")
	}
	r := &Ring{store: store, base: base, slotBytes: slotBytes, entries: entries}
	r.hd = r.readPtr(r.base)
	r.tl = r.readPtr(r.base + 4)
	return r
}

func (r *Ring) readPtr(addr uint64) uint32 {
	r.store.ReadAt(addr, r.hdr[:])
	return binary.LittleEndian.Uint32(r.hdr[:])
}

// Footprint returns the byte size of the ring in the store.
func (r *Ring) Footprint() uint64 {
	return ringHeaderBytes + uint64(r.slotBytes)*uint64(r.entries)
}

// Entries returns the ring capacity.
func (r *Ring) Entries() uint32 { return r.entries }

func (r *Ring) head() uint32 { return r.hd }

func (r *Ring) tail() uint32 { return r.tl }

func (r *Ring) setHead(v uint32) {
	r.hd = v % r.entries
	binary.LittleEndian.PutUint32(r.hdr[:], r.hd)
	r.store.WriteAt(r.base, r.hdr[:])
}

func (r *Ring) setTail(v uint32) {
	r.tl = v % r.entries
	binary.LittleEndian.PutUint32(r.hdr[:], r.tl)
	r.store.WriteAt(r.base+4, r.hdr[:])
}

// Head and Tail expose the persisted pointers.
func (r *Ring) Head() uint32 { return r.head() }
func (r *Ring) Tail() uint32 { return r.tail() }

func (r *Ring) slotAddr(i uint32) uint64 {
	return r.base + ringHeaderBytes + uint64(i%r.entries)*uint64(r.slotBytes)
}

// Len returns the number of occupied slots.
func (r *Ring) Len() uint32 {
	h, t := r.head(), r.tail()
	if t >= h {
		return t - h
	}
	return r.entries - h + t
}

// Full reports whether a push would overrun (one slot kept open).
func (r *Ring) Full() bool { return r.Len() == r.entries-1 }

// Empty reports whether the ring has no occupied slots.
func (r *Ring) Empty() bool { return r.head() == r.tail() }

// ErrRingFull is returned when pushing into a full ring.
var ErrRingFull = errors.New("nvme: ring full")

// Push writes a slot at the tail and advances the tail pointer.
func (r *Ring) Push(slot []byte) error {
	if len(slot) != r.slotBytes {
		return fmt.Errorf("nvme: slot size %d, ring holds %d", len(slot), r.slotBytes)
	}
	if r.Full() {
		return ErrRingFull
	}
	t := r.tail()
	r.store.WriteAt(r.slotAddr(t), slot)
	r.setTail(t + 1)
	return nil
}

// PopInto reads the slot at the head into dst (at least slotBytes
// long) and advances the head pointer. It reports whether a slot was
// available.
func (r *Ring) PopInto(dst []byte) bool {
	if r.Empty() {
		return false
	}
	h := r.head()
	r.store.ReadAt(r.slotAddr(h), dst[:r.slotBytes])
	r.setHead(h + 1)
	return true
}

// Pop reads the slot at the head and advances the head pointer.
func (r *Ring) Pop() ([]byte, bool) {
	buf := make([]byte, r.slotBytes)
	if !r.PopInto(buf) {
		return nil, false
	}
	return buf, true
}

// PeekAtInto reads slot i (absolute index) into dst without moving
// pointers. Used by recovery scans and journal-tag clearing.
func (r *Ring) PeekAtInto(i uint32, dst []byte) {
	r.store.ReadAt(r.slotAddr(i), dst[:r.slotBytes])
}

// PeekAt is the allocating form of PeekAtInto.
func (r *Ring) PeekAt(i uint32) []byte {
	buf := make([]byte, r.slotBytes)
	r.PeekAtInto(i, buf)
	return buf
}

// WriteAtSlot overwrites slot i in place (journal-tag clear).
func (r *Ring) WriteAtSlot(i uint32, slot []byte) {
	r.store.WriteAt(r.slotAddr(i), slot)
}

// Reset zeroes the pointers (used when recovery allocates a new pair)
// and scrubs every slot with the package-level zero payload.
func (r *Ring) Reset() {
	r.setHead(0)
	r.setTail(0)
	zero := zeroSlot[:]
	if r.slotBytes > len(zero) {
		zero = make([]byte, r.slotBytes)
	}
	for i := uint32(0); i < r.entries; i++ {
		r.store.WriteAt(r.slotAddr(i), zero[:r.slotBytes])
	}
}
