package nvme

import (
	"fmt"
	"sort"

	"hams/internal/checkpoint"
)

// Reload refreshes the cached head/tail pointers from the backing
// store. Checkpoint restore overlays the store bytes after the ring
// was constructed, so the write-through cache must be re-primed —
// exactly what NewRing does on a post-power-failure store.
func (r *Ring) Reload() {
	r.hd = r.readPtr(r.base)
	r.tl = r.readPtr(r.base + 4)
}

// SaveState serializes the pair's SRAM-side state: doorbell/MSI
// counters, the CID allocator cursor and the MLP high-water mark. The
// ring contents and persisted head/tail pointers live in the backing
// store and travel with its checkpoint; the CID→slot table and
// outstanding count are empty at every quiesced boundary and are
// validated as such rather than serialized.
func (qp *QueuePair) SaveState(enc *checkpoint.Enc) {
	enc.I64(qp.sqDoorbells)
	enc.I64(qp.cqDoorbells)
	enc.I64(qp.msiCount)
	enc.U64(uint64(qp.nextCID))
	enc.I64(int64(qp.outstanding))
	enc.I64(int64(qp.peak))
}

// RestoreState overlays the pair's counters and re-primes the ring
// pointer caches from the (already restored) backing store.
func (qp *QueuePair) RestoreState(d *checkpoint.Dec) error {
	qp.sqDoorbells = d.I64()
	qp.cqDoorbells = d.I64()
	qp.msiCount = d.I64()
	qp.nextCID = uint16(d.U64())
	qp.outstanding = int(d.I64())
	qp.peak = int(d.I64())
	if err := d.Err(); err != nil {
		return err
	}
	if qp.outstanding != 0 {
		return fmt.Errorf("%w: %d commands outstanding in image", checkpoint.ErrNotQuiesced, qp.outstanding)
	}
	for i := range qp.slotOf {
		qp.slotOf[i] = 0
	}
	qp.SQ.Reload()
	qp.CQ.Reload()
	return nil
}

// SaveState serializes the allocator: the free-slot LIFO (order
// matters — it decides which physical slot the next Alloc hands out)
// and the in-use table, which is empty at a quiesced boundary but
// serialized anyway so recovery-time checkpoints (taken with journal
// clones still allocated) round-trip too.
func (p *PRPPool) SaveState(enc *checkpoint.Enc) {
	enc.Count(len(p.free))
	for _, s := range p.free {
		enc.I64(int64(s))
	}
	addrs := make([]uint64, 0, len(p.inUse))
	for a := range p.inUse {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	enc.Count(len(addrs))
	for _, a := range addrs {
		enc.U64(a)
		enc.I64(int64(p.inUse[a]))
	}
}

// RestoreState overlays the allocator. Slot indices are validated
// against the pool's configured capacity.
func (p *PRPPool) RestoreState(d *checkpoint.Dec) error {
	nfree := d.Count(p.capacity)
	if err := d.Err(); err != nil {
		return err
	}
	p.free = p.free[:0]
	for i := 0; i < nfree; i++ {
		s := int(d.I64())
		if s < 0 || s >= p.capacity {
			return fmt.Errorf("%w: free PRP slot %d out of range", checkpoint.ErrCorrupt, s)
		}
		p.free = append(p.free, s)
	}
	nUse := d.Count(p.capacity)
	if err := d.Err(); err != nil {
		return err
	}
	p.inUse = make(map[uint64]int, nUse)
	for i := 0; i < nUse; i++ {
		a := d.U64()
		s := int(d.I64())
		if s < 0 || s >= p.capacity {
			return fmt.Errorf("%w: in-use PRP slot %d out of range", checkpoint.ErrCorrupt, s)
		}
		p.inUse[a] = s
	}
	return d.Err()
}
