package nvme

import "fmt"

// QueuePair couples one submission queue with its completion queue,
// matching the paper's pinned-region layout: SQ range 32 KB, CQ range
// 8 KB (Figure 9). Doorbell rings are modeled as counters; the timing
// cost of a doorbell write is charged by the caller.
type QueuePair struct {
	SQ *Ring
	CQ *Ring

	sqDoorbells int64
	cqDoorbells int64
	msiCount    int64

	nextCID uint16
	// slotOf remembers which SQ slot a CID was written to (+1; 0 means
	// not outstanding), so the completion path can clear the right
	// journal tag in place. Flat over the full 16-bit CID space — one
	// indexed load instead of a map operation per submit/reap.
	slotOf      []uint32
	outstanding int
	// peak is the high-water mark of submitted-but-unreaped commands —
	// the queue depth the host actually drove (MLP accounting).
	peak int

	// Wire-format scratch: encode/decode staging handed to the rings.
	// Struct fields rather than stack arrays — a stack array passed
	// through the Store interface escapes and allocates per call.
	cmdBuf [CommandBytes]byte
	cplBuf [CompletionBytes]byte
}

// QueueLayout sizes a pair within a pinned region.
type QueueLayout struct {
	SQBase    uint64
	CQBase    uint64
	SQEntries uint32
	CQEntries uint32
}

// DefaultLayout places a 32 KiB SQ and an 8 KiB CQ at base.
func DefaultLayout(base uint64) QueueLayout {
	sqEntries := uint32((32 * 1024) / CommandBytes)
	cqEntries := uint32((8 * 1024) / CompletionBytes)
	return QueueLayout{
		SQBase:    base,
		CQBase:    base + 32*1024 + ringHeaderBytes,
		SQEntries: sqEntries,
		CQEntries: cqEntries,
	}
}

// NewQueuePair materializes a pair in store.
func NewQueuePair(store Store, l QueueLayout) *QueuePair {
	return &QueuePair{
		SQ:     NewRing(store, l.SQBase, CommandBytes, l.SQEntries),
		CQ:     NewRing(store, l.CQBase, CompletionBytes, l.CQEntries),
		slotOf: make([]uint32, 1<<16),
	}
}

// Submit assigns a CID, sets the journal tag, writes the command into
// the SQ and rings the doorbell. It returns the assigned CID.
func (qp *QueuePair) Submit(cmd Command) (uint16, error) {
	cmd.CID = qp.nextCID
	cmd.Journal = true
	slot := qp.SQ.Tail()
	qp.cmdBuf = cmd.Encode()
	if err := qp.SQ.Push(qp.cmdBuf[:]); err != nil {
		return 0, err
	}
	qp.slotOf[cmd.CID] = slot + 1
	qp.nextCID++
	qp.sqDoorbells++
	qp.outstanding++
	if qp.outstanding > qp.peak {
		qp.peak = qp.outstanding
	}
	return cmd.CID, nil
}

// DeviceFetch pops the next command from the SQ (device side).
func (qp *QueuePair) DeviceFetch() (Command, bool) {
	if !qp.SQ.PopInto(qp.cmdBuf[:]) {
		return Command{}, false
	}
	return DecodeCommand(qp.cmdBuf[:]), true
}

// DeviceComplete posts a completion for cid and raises an MSI.
func (qp *QueuePair) DeviceComplete(cid uint16, status uint8) error {
	c := Completion{CID: cid, Status: status, SQHead: uint16(qp.SQ.Head())}
	qp.cplBuf = c.Encode()
	if err := qp.CQ.Push(qp.cplBuf[:]); err != nil {
		return err
	}
	qp.msiCount++
	return nil
}

// HostReap drains one completion: it clears the journal tag of the
// matching SQ slot in place (§V-C) and advances the CQ head, then
// rings the CQ doorbell. Returns the completion and ok.
func (qp *QueuePair) HostReap() (Completion, bool) {
	if !qp.CQ.PopInto(qp.cplBuf[:]) {
		return Completion{}, false
	}
	c := DecodeCompletion(qp.cplBuf[:])
	if s := qp.slotOf[c.CID]; s != 0 {
		slot := s - 1
		qp.SQ.PeekAtInto(slot, qp.cmdBuf[:])
		sc := DecodeCommand(qp.cmdBuf[:])
		if sc.CID == c.CID {
			sc.Journal = false
			qp.cmdBuf = sc.Encode()
			qp.SQ.WriteAtSlot(slot, qp.cmdBuf[:])
		}
		qp.slotOf[c.CID] = 0
		qp.outstanding--
	}
	qp.cqDoorbells++
	return c, true
}

// PendingJournal scans every SQ slot and returns the commands whose
// journal tag is still set — exactly the recovery scan HAMS performs
// on power-up (Figure 15, phase 2).
func (qp *QueuePair) PendingJournal() []Command {
	var out []Command
	for i := uint32(0); i < qp.SQ.Entries(); i++ {
		qp.SQ.PeekAtInto(i, qp.cmdBuf[:])
		c := DecodeCommand(qp.cmdBuf[:])
		if c.Journal && c.Opcode != OpFlush {
			out = append(out, c)
		}
	}
	return out
}

// Doorbells and MSIs report protocol activity (used for overhead
// accounting and tests).
func (qp *QueuePair) Doorbells() (sq, cq int64) { return qp.sqDoorbells, qp.cqDoorbells }
func (qp *QueuePair) MSIs() int64               { return qp.msiCount }

// Outstanding returns the number of submitted-but-unreaped commands.
func (qp *QueuePair) Outstanding() int { return qp.outstanding }

// PeakOutstanding returns the high-water mark of Outstanding over the
// pair's lifetime — the queue depth the miss pipeline actually drove.
func (qp *QueuePair) PeakOutstanding() int { return qp.peak }

func (qp *QueuePair) String() string {
	return fmt.Sprintf("qp(sq %d/%d, cq %d/%d, outstanding %d)",
		qp.SQ.Len(), qp.SQ.Entries(), qp.CQ.Len(), qp.CQ.Entries(), qp.Outstanding())
}

// PRPPool allocates fixed-size clone buffers from the pinned region.
// HAMS clones a victim page into the pool before handing its address
// to the NVMe controller, so in-place cache updates can never corrupt
// an in-flight DMA (§V-B, Figure 14).
type PRPPool struct {
	base     uint64
	slot     uint64
	capacity int
	free     []int
	inUse    map[uint64]int
}

// NewPRPPool carves capacity slots of slotBytes each from base.
func NewPRPPool(base, slotBytes uint64, capacity int) *PRPPool {
	p := &PRPPool{base: base, slot: slotBytes, capacity: capacity, inUse: make(map[uint64]int)}
	for i := capacity - 1; i >= 0; i-- {
		p.free = append(p.free, i)
	}
	return p
}

// Alloc reserves a slot, returning its byte address in the store.
func (p *PRPPool) Alloc() (uint64, bool) {
	if len(p.free) == 0 {
		return 0, false
	}
	i := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	addr := p.base + uint64(i)*p.slot
	p.inUse[addr] = i
	return addr, true
}

// Free releases a previously allocated slot. Freeing an unknown
// address is a no-op (idempotent completion paths).
func (p *PRPPool) Free(addr uint64) {
	if i, ok := p.inUse[addr]; ok {
		delete(p.inUse, addr)
		p.free = append(p.free, i)
	}
}

// InUse returns the number of live slots.
func (p *PRPPool) InUse() int { return len(p.inUse) }

// Base returns the pool's base address in the store.
func (p *PRPPool) Base() uint64 { return p.base }

// Capacity returns the slot count.
func (p *PRPPool) Capacity() int { return p.capacity }

// Footprint returns the pool's byte size.
func (p *PRPPool) Footprint() uint64 { return p.slot * uint64(p.capacity) }
