package nvme

import (
	"testing"
	"testing/quick"

	"hams/internal/mem"
)

func TestCommandCodecRoundTrip(t *testing.T) {
	f := func(op uint8, cid uint16, fua, jr bool, prp, lba uint64, n uint32) bool {
		c := Command{
			Opcode: Opcode(op), CID: cid, FUA: fua, Journal: jr,
			PRP: prp, LBA: lba, Length: n,
		}
		enc := c.Encode()
		return DecodeCommand(enc[:]) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCompletionCodecRoundTrip(t *testing.T) {
	f := func(cid uint16, st uint8, h uint16) bool {
		c := Completion{CID: cid, Status: st, SQHead: h}
		enc := c.Encode()
		return DecodeCompletion(enc[:]) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpcodeString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpFlush.String() != "flush" {
		t.Fatal("opcode strings")
	}
	if Opcode(0x99).String() == "" {
		t.Fatal("unknown opcode must still format")
	}
}

func TestRingFIFO(t *testing.T) {
	s := mem.NewSparseStore()
	r := NewRing(s, 0, CommandBytes, 8)
	for i := 0; i < 7; i++ { // capacity-1 usable
		c := Command{CID: uint16(i)}
		enc := c.Encode()
		if err := r.Push(enc[:]); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if !r.Full() {
		t.Fatal("ring should be full at entries-1")
	}
	c := Command{CID: 99}
	enc := c.Encode()
	if err := r.Push(enc[:]); err != ErrRingFull {
		t.Fatalf("push into full ring: %v", err)
	}
	for i := 0; i < 7; i++ {
		raw, ok := r.Pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if got := DecodeCommand(raw).CID; got != uint16(i) {
			t.Fatalf("pop %d: CID %d", i, got)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestRingWrapAround(t *testing.T) {
	s := mem.NewSparseStore()
	r := NewRing(s, 4096, CommandBytes, 4)
	for round := 0; round < 10; round++ {
		c := Command{CID: uint16(round)}
		enc := c.Encode()
		if err := r.Push(enc[:]); err != nil {
			t.Fatal(err)
		}
		raw, ok := r.Pop()
		if !ok || DecodeCommand(raw).CID != uint16(round) {
			t.Fatalf("round %d", round)
		}
	}
	if !r.Empty() {
		t.Fatal("ring should be empty")
	}
}

func TestRingPointersPersistInStore(t *testing.T) {
	s := mem.NewSparseStore()
	r := NewRing(s, 0, CommandBytes, 8)
	c := Command{CID: 5}
	enc := c.Encode()
	r.Push(enc[:])
	r.Push(enc[:])
	r.Pop()
	// Re-materialize a ring over the same store bytes: pointers and
	// slots must survive — this is the power-failure property.
	r2 := NewRing(s, 0, CommandBytes, 8)
	if r2.Head() != 1 || r2.Tail() != 2 {
		t.Fatalf("head=%d tail=%d, want 1,2", r2.Head(), r2.Tail())
	}
	if r2.Len() != 1 {
		t.Fatalf("Len = %d", r2.Len())
	}
}

func TestQueuePairSubmitFetchComplete(t *testing.T) {
	s := mem.NewSparseStore()
	qp := NewQueuePair(s, DefaultLayout(0))
	cid, err := qp.Submit(Command{Opcode: OpWrite, LBA: 0x1000, PRP: 0x2000, Length: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if qp.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d", qp.Outstanding())
	}
	cmd, ok := qp.DeviceFetch()
	if !ok || cmd.CID != cid || cmd.Opcode != OpWrite || !cmd.Journal {
		t.Fatalf("fetched %+v", cmd)
	}
	if err := qp.DeviceComplete(cid, 0); err != nil {
		t.Fatal(err)
	}
	comp, ok := qp.HostReap()
	if !ok || comp.CID != cid || comp.Status != 0 {
		t.Fatalf("reaped %+v", comp)
	}
	if qp.Outstanding() != 0 {
		t.Fatal("still outstanding after reap")
	}
	sq, cq := qp.Doorbells()
	if sq != 1 || cq != 1 || qp.MSIs() != 1 {
		t.Fatalf("doorbells sq=%d cq=%d msi=%d", sq, cq, qp.MSIs())
	}
}

func TestJournalTagClearedOnReap(t *testing.T) {
	s := mem.NewSparseStore()
	qp := NewQueuePair(s, DefaultLayout(0))
	cid, _ := qp.Submit(Command{Opcode: OpWrite, LBA: 1, Length: 4096})
	qp.DeviceFetch()
	if n := len(qp.PendingJournal()); n != 1 {
		t.Fatalf("pending = %d, want 1", n)
	}
	qp.DeviceComplete(cid, 0)
	qp.HostReap()
	if n := len(qp.PendingJournal()); n != 0 {
		t.Fatalf("pending after reap = %d, want 0", n)
	}
}

func TestPendingJournalSurvivesPowerFailure(t *testing.T) {
	s := mem.NewSparseStore()
	qp := NewQueuePair(s, DefaultLayout(0))
	// Three commands; complete only the middle one. (Fig. 15 phase 1.)
	c1, _ := qp.Submit(Command{Opcode: OpWrite, LBA: 100, Length: 4096})
	c2, _ := qp.Submit(Command{Opcode: OpWrite, LBA: 200, Length: 4096})
	c3, _ := qp.Submit(Command{Opcode: OpRead, LBA: 300, Length: 4096})
	_ = c1
	_ = c3
	qp.DeviceFetch()
	qp.DeviceFetch()
	qp.DeviceFetch()
	qp.DeviceComplete(c2, 0)
	qp.HostReap()

	// Power failure: the store bytes survive (NVDIMM). Rebuild the
	// pair over the same bytes and scan.
	qp2 := NewQueuePair(s, DefaultLayout(0))
	pending := qp2.PendingJournal()
	if len(pending) != 2 {
		t.Fatalf("pending = %d, want 2", len(pending))
	}
	lbas := map[uint64]bool{pending[0].LBA: true, pending[1].LBA: true}
	if !lbas[100] || !lbas[300] {
		t.Fatalf("recovered wrong commands: %+v", pending)
	}
}

func TestDefaultLayoutSizes(t *testing.T) {
	l := DefaultLayout(0)
	if l.SQEntries != 512 {
		t.Fatalf("SQ entries = %d, want 512 (32KB/64B)", l.SQEntries)
	}
	if l.CQEntries != 512 {
		t.Fatalf("CQ entries = %d, want 512 (8KB/16B)", l.CQEntries)
	}
	if l.CQBase <= l.SQBase {
		t.Fatal("CQ must follow SQ")
	}
}

func TestPRPPoolAllocFree(t *testing.T) {
	p := NewPRPPool(0x1000, 4096, 3)
	var addrs []uint64
	for i := 0; i < 3; i++ {
		a, ok := p.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		addrs = append(addrs, a)
	}
	if _, ok := p.Alloc(); ok {
		t.Fatal("alloc from empty pool succeeded")
	}
	if p.InUse() != 3 {
		t.Fatalf("InUse = %d", p.InUse())
	}
	// All addresses distinct and slot-aligned within the pool.
	seen := map[uint64]bool{}
	for _, a := range addrs {
		if seen[a] {
			t.Fatal("duplicate address")
		}
		seen[a] = true
		if (a-0x1000)%4096 != 0 {
			t.Fatalf("misaligned address %#x", a)
		}
	}
	p.Free(addrs[1])
	if p.InUse() != 2 {
		t.Fatal("free did not release")
	}
	a, ok := p.Alloc()
	if !ok || a != addrs[1] {
		t.Fatalf("realloc got %#x, want %#x", a, addrs[1])
	}
	p.Free(0xdeadbeef) // unknown address: no-op
	if p.InUse() != 3 {
		t.Fatal("bogus free changed state")
	}
}

func TestPRPPoolFootprint(t *testing.T) {
	p := NewPRPPool(0, 128*1024, 64)
	if p.Footprint() != 64*128*1024 {
		t.Fatalf("Footprint = %d", p.Footprint())
	}
	if p.Capacity() != 64 {
		t.Fatalf("Capacity = %d", p.Capacity())
	}
}

// Property: ring Len() is always consistent with push/pop history.
func TestRingLenProperty(t *testing.T) {
	f := func(ops []bool) bool {
		s := mem.NewSparseStore()
		r := NewRing(s, 0, CompletionBytes, 16)
		want := 0
		for _, push := range ops {
			if push {
				c := Completion{CID: 1}
				enc := c.Encode()
				if err := r.Push(enc[:]); err == nil {
					want++
				}
			} else {
				if _, ok := r.Pop(); ok {
					want--
				}
			}
			if int(r.Len()) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
