package osmodel

import (
	"testing"

	"hams/internal/mem"
	"hams/internal/sim"
)

func testCfg() Config {
	c := DefaultConfig()
	c.DRAM.Capacity = 64 * mem.MiB
	c.CachePages = 64
	c.ReadAhead = 4
	return c
}

func TestFaultCostDominatesMiss(t *testing.T) {
	m := New(testCfg())
	r := m.Access(0, mem.Access{Addr: 0, Size: 64, Op: mem.Read})
	if r.Hit {
		t.Fatal("first access must fault")
	}
	// The software budget (15.5+ us) must show up.
	if r.OS < 15*sim.Microsecond {
		t.Fatalf("OS time %v, want >= 15us", r.OS)
	}
	if r.Done < r.OS {
		t.Fatalf("total %v below OS time %v", r.Done, r.OS)
	}
}

func TestPageCacheHitIsCheap(t *testing.T) {
	m := New(testCfg())
	r1 := m.Access(0, mem.Access{Addr: 0, Size: 64, Op: mem.Read})
	r2 := m.Access(r1.Done, mem.Access{Addr: 64, Size: 64, Op: mem.Read})
	if !r2.Hit {
		t.Fatal("second access must hit the page cache")
	}
	if hit := r2.Done - r1.Done; hit > sim.Microsecond {
		t.Fatalf("page-cache hit took %v", hit)
	}
	if r2.OS != 0 {
		t.Fatalf("hit charged OS time %v", r2.OS)
	}
}

func TestReadAheadHelpsSequential(t *testing.T) {
	m := New(testCfg())
	var now sim.Time
	// Touch 8 consecutive pages; read-ahead (4) should amortize.
	for i := 0; i < 8; i++ {
		r := m.Access(now, mem.Access{Addr: uint64(i) * 4096, Size: 64, Op: mem.Read})
		now = r.Done
	}
	seqFaults := m.Stats().Faults

	m2 := New(testCfg())
	now = 0
	// 8 scattered pages: every one faults.
	for i := 0; i < 8; i++ {
		r := m2.Access(now, mem.Access{Addr: uint64(i*97+5) * 4096, Size: 64, Op: mem.Read})
		now = r.Done
	}
	rndFaults := m2.Stats().Faults
	if seqFaults >= rndFaults {
		t.Fatalf("sequential faults (%d) must be fewer than random (%d)", seqFaults, rndFaults)
	}
	if m.Stats().ReadAheads == 0 {
		t.Fatal("read-ahead never triggered")
	}
}

func TestLRUEvictionBounded(t *testing.T) {
	cfg := testCfg()
	cfg.CachePages = 8
	cfg.ReadAhead = 1
	m := New(cfg)
	var now sim.Time
	for i := 0; i < 50; i++ {
		r := m.Access(now, mem.Access{Addr: uint64(i) * 4096 * 3, Size: 64, Op: mem.Write})
		now = r.Done
	}
	// Re-touching an old page must fault again (it was evicted).
	before := m.Stats().Faults
	m.Access(now, mem.Access{Addr: 0, Size: 64, Op: mem.Read})
	if m.Stats().Faults != before+1 {
		t.Fatal("old page should have been evicted")
	}
	if m.Stats().Writebacks == 0 {
		t.Fatal("dirty evictions must write back")
	}
}

func TestPeriodicWriteback(t *testing.T) {
	cfg := testCfg()
	cfg.WritebackN = 4
	m := New(cfg)
	var now sim.Time
	for i := 0; i < 12; i++ {
		r := m.Access(now, mem.Access{Addr: uint64(i%2) * 4096, Size: 8, Op: mem.Write})
		now = r.Done
	}
	if m.Stats().Writebacks == 0 {
		t.Fatal("periodic persistency flush never ran")
	}
}

func TestStraddlingAccessFaultsBothPages(t *testing.T) {
	cfg := testCfg()
	cfg.ReadAhead = 1
	m := New(cfg)
	m.Access(0, mem.Access{Addr: 4090, Size: 12, Op: mem.Read})
	if m.Stats().Faults != 2 {
		t.Fatalf("faults = %d, want 2", m.Stats().Faults)
	}
}

func TestCostsTotal(t *testing.T) {
	c := DefaultCosts()
	want := c.FaultEntry + 2*c.ContextSwitch + c.Filesystem + c.BlkMq + c.Driver
	if c.Total() != want {
		t.Fatalf("Total = %v", c.Total())
	}
	if c.Total() < 15*sim.Microsecond || c.Total() > 20*sim.Microsecond {
		t.Fatalf("default software budget %v outside the paper's 15-20us", c.Total())
	}
}
