// Package osmodel models the software path the paper's mmap baseline
// pays on every page miss: page-fault handling, context switches, the
// file system, the blk-mq layer and the NVMe driver (§II-B, Figure 3),
// plus an OS page cache with sequential read-ahead and periodic dirty
// write-back. The budgets follow §III-B: MMF software operations cost
// 15–20 µs per fault and make up ~69 % of execution for data-intensive
// workloads.
package osmodel

import (
	"hams/internal/dram"
	"hams/internal/mem"
	"hams/internal/pcie"
	"hams/internal/sim"
	"hams/internal/ssd"
)

// Costs itemizes the software budgets (ns).
type Costs struct {
	FaultEntry    sim.Time // trap, VMA lookup, PTE allocation
	ContextSwitch sim.Time // schedule-out + schedule-in around the block
	Filesystem    sim.Time // inode lock, boundary/permission checks, bio setup
	BlkMq         sim.Time // software/hardware queue scheduling
	Driver        sim.Time // NVMe driver submit + interrupt service
}

// DefaultCosts matches the paper's 15–20 µs MMF software budget.
func DefaultCosts() Costs {
	return Costs{
		FaultEntry:    1500,
		ContextSwitch: 6 * sim.Microsecond, // "one of the main contributors"
		Filesystem:    3 * sim.Microsecond,
		BlkMq:         2 * sim.Microsecond,
		Driver:        1500,
	}
}

// Total returns the per-fault software time (one switch out + in).
func (c Costs) Total() sim.Time {
	return c.FaultEntry + 2*c.ContextSwitch + c.Filesystem + c.BlkMq + c.Driver
}

// Config assembles the MMF system.
type Config struct {
	Costs        Costs
	OSPageBytes  uint64 // fault granularity (4 KiB default)
	CachePages   int    // page-cache capacity in OS pages
	ReadAhead    int    // pages prefetched on a sequential fault
	WritebackN   int    // flush dirty pages every N page-cache writes
	DRAM         dram.Config
	SSD          ssd.Config
	Link         pcie.Config
	PersistFlush bool // periodically flush for persistency (mmap+MSYNC)
}

// DefaultConfig returns the evaluation baseline: 8 GB DRAM page cache
// over a ULL-Flash behind PCIe 3.0 x4.
func DefaultConfig() Config {
	d := dram.DefaultConfig()
	d.Functional = false
	return Config{
		Costs:        DefaultCosts(),
		OSPageBytes:  4 * mem.KiB,
		CachePages:   int(8 * mem.GiB / (4 * mem.KiB)),
		ReadAhead:    8,
		WritebackN:   64,
		DRAM:         d,
		SSD:          ssd.ULLFlash(),
		Link:         pcie.Gen3x4(),
		PersistFlush: true,
	}
}

// Result decomposes one access's latency for Fig. 7a / Fig. 17.
type Result struct {
	Done  sim.Time
	Hit   bool
	OS    sim.Time // total software time (Mmap + Stack)
	Mmap  sim.Time // page fault handling + context switches
	Stack sim.Time // filesystem + blk-mq + driver
	Mem   sim.Time // DRAM time
	SSD   sim.Time // device + link time
}

// Stats aggregates MMF activity.
type Stats struct {
	Accesses   int64
	Faults     int64
	CacheHits  int64
	ReadAheads int64
	Writebacks int64
	OSTime     sim.Time
	MmapTime   sim.Time
	StackTime  sim.Time
	MemTime    sim.Time
	SSDTime    sim.Time
}

// MMF is the memory-mapped-file system model. The page cache is a
// flat LRU (mem.PageLRU) with a slot-indexed dirty bit and a FIFO
// dirty queue: msync walks only the pages dirtied since the last
// flush — in first-dirtied order, which is deterministic — instead of
// scanning the whole multi-million-entry cache.
type MMF struct {
	cfg   Config
	dramC *dram.DDR4
	dev   *ssd.Device
	link  *pcie.Link

	cache    *mem.PageLRU
	dirty    []bool   // slot -> dirty
	dirtyQ   []uint64 // pages awaiting msync, first-dirtied order
	lastPage uint64   // sequential detection
	dirtyN   int

	zeroPage []byte       // reusable write-back payload (DRAM model is non-functional)
	split    []mem.Access // SplitByPage scratch

	stats Stats
}

// New builds the MMF system.
func New(cfg Config) *MMF {
	if cfg.OSPageBytes == 0 {
		cfg.OSPageBytes = 4 * mem.KiB
	}
	if cfg.CachePages <= 0 {
		cfg.CachePages = 1024
	}
	return &MMF{
		cfg:      cfg,
		dramC:    dram.New(cfg.DRAM),
		dev:      ssd.New(cfg.SSD),
		link:     pcie.New(cfg.Link),
		cache:    mem.NewPageLRU(),
		zeroPage: make([]byte, cfg.OSPageBytes),
	}
}

// Device exposes the backing SSD (energy accounting).
func (m *MMF) Device() *ssd.Device { return m.dev }

// DRAM exposes the page-cache memory (energy accounting).
func (m *MMF) DRAM() *dram.DDR4 { return m.dramC }

// Stats returns a copy of the counters.
func (m *MMF) Stats() Stats { return m.stats }

// Warm inserts the OS pages covering [base, base+size) into the page
// cache without charging time (steady-state pre-warm; see core.Warm).
func (m *MMF) Warm(base, size uint64) {
	end := base + size
	for addr := mem.AlignDown(base, m.cfg.OSPageBytes); addr < end; addr += m.cfg.OSPageBytes {
		if m.cache.Len() >= m.cfg.CachePages {
			return
		}
		m.insert(addr / m.cfg.OSPageBytes)
	}
}

// Access serves one user-level load/store against the mmap'd region.
func (m *MMF) Access(t sim.Time, a mem.Access) Result {
	var res Result
	res.Hit = true
	m.split = mem.AppendSplit(m.split[:0], a, m.cfg.OSPageBytes)
	for _, part := range m.split {
		r := m.accessPage(t, part)
		res.Done = r.Done
		res.Hit = res.Hit && r.Hit
		res.OS += r.OS
		res.Mmap += r.Mmap
		res.Stack += r.Stack
		res.Mem += r.Mem
		res.SSD += r.SSD
		t = r.Done
	}
	m.stats.Accesses++
	m.stats.OSTime += res.OS
	m.stats.MmapTime += res.Mmap
	m.stats.StackTime += res.Stack
	m.stats.MemTime += res.Mem
	m.stats.SSDTime += res.SSD
	return res
}

func (m *MMF) accessPage(t sim.Time, a mem.Access) Result {
	var res Result
	page := a.Addr / m.cfg.OSPageBytes
	slot, ok := m.cache.Get(page)
	if ok {
		m.stats.CacheHits++
		m.cache.MoveToFront(slot)
		res.Hit = true
	} else {
		res.Hit = false
		faultDone := m.fault(t, page, a.Addr)
		c := m.cfg.Costs
		res.Mmap += c.FaultEntry + 2*c.ContextSwitch
		res.Stack += c.Filesystem + c.BlkMq + c.Driver
		res.OS += m.cfg.Costs.Total()
		res.SSD += faultDone - t - m.cfg.Costs.Total()
		if res.SSD < 0 {
			res.SSD = 0
		}
		t = faultDone
		slot, ok = m.cache.Get(page)
	}
	// The access itself is served from the DRAM page cache.
	done := m.dramC.Access(t, a.Addr, a.Size, a.Op)
	res.Mem += done - t
	if a.Op == mem.Write {
		if ok && !m.dirty[slot] {
			m.dirty[slot] = true
			m.dirtyQ = append(m.dirtyQ, page)
		}
		m.dirtyN++
		if m.cfg.PersistFlush && m.cfg.WritebackN > 0 && m.dirtyN >= m.cfg.WritebackN {
			// msync blocks the caller until the dirty pages reach the
			// device — the persistency price the software design pays
			// on every sync interval (§VI-C energy discussion).
			fdone := m.writeback(done)
			res.SSD += fdone - done
			done = fdone
			m.dirtyN = 0
		}
	}
	res.Done = done
	return res
}

// fault brings one page (plus read-ahead) into the page cache.
func (m *MMF) fault(t sim.Time, page uint64, addr uint64) sim.Time {
	m.stats.Faults++
	c := m.cfg.Costs
	// Software path before the I/O is issued.
	now := t + c.FaultEntry + c.ContextSwitch + c.Filesystem + c.BlkMq + c.Driver

	n := 1
	if page == m.lastPage+1 && m.cfg.ReadAhead > 1 {
		n = m.cfg.ReadAhead
		m.stats.ReadAheads++
	}
	m.lastPage = page

	// Device read + PCIe transfer for each page; read-ahead pages are
	// fetched in parallel on the device and pipelined on the link.
	var last sim.Time
	for i := 0; i < n; i++ {
		d := m.dev.ReadInto(now, page+uint64(i), 0, nil)
		d = m.link.ToHost(d, int64(m.cfg.OSPageBytes))
		d = m.dramC.Bulk(d, (page+uint64(i))*m.cfg.OSPageBytes, uint32(m.cfg.OSPageBytes), mem.Write)
		if d > last {
			last = d
		}
		m.insert(page + uint64(i))
	}
	// Wake the process: schedule-in context switch.
	return last + c.ContextSwitch
}

func (m *MMF) insert(page uint64) {
	if slot, ok := m.cache.Get(page); ok {
		m.cache.MoveToFront(slot)
		return
	}
	for m.cache.Len() >= m.cfg.CachePages {
		vpage, vslot := m.cache.RemoveBack()
		if m.dirty[vslot] {
			m.dirty[vslot] = false
			// Asynchronous write-back occupies the device.
			m.dev.Write(0, vpage, m.zeroPage, false)
			m.stats.Writebacks++
		}
	}
	slot := m.cache.InsertFront(page)
	for int(slot) >= len(m.dirty) {
		m.dirty = append(m.dirty, false)
	}
	m.dirty[slot] = false
}

// writeback flushes dirty pages to the device (msync) and returns the
// time the last write completes. Pages are flushed in the order they
// were first dirtied (the dirty queue); entries whose page was since
// evicted (written back by insert) or re-flushed are skipped.
func (m *MMF) writeback(t sim.Time) sim.Time {
	last := t
	for _, page := range m.dirtyQ {
		slot, ok := m.cache.Get(page)
		if !ok || !m.dirty[slot] {
			continue
		}
		d, _ := m.dev.Write(t, page, m.zeroPage, false)
		d = m.link.ToDevice(d, int64(m.cfg.OSPageBytes))
		if d > last {
			last = d
		}
		m.dirty[slot] = false
		m.stats.Writebacks++
	}
	m.dirtyQ = m.dirtyQ[:0]
	return last
}
