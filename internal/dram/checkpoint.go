package dram

import (
	"fmt"

	"hams/internal/checkpoint"
	"hams/internal/mem"
	"hams/internal/sim"
)

// SaveState serializes the channel's mutable state: per-bank open rows
// and horizons, the bus server, the activity counters, and (for
// functional channels) the full backing store.
func (d *DDR4) SaveState(enc *checkpoint.Enc) {
	enc.Count(len(d.banks))
	for i := range d.banks {
		enc.I64(d.banks[i].openRow)
		enc.I64(int64(d.banks[i].nextFree))
	}
	d.bus.SaveState(enc)
	s := &d.stats
	enc.I64(s.Reads)
	enc.I64(s.Writes)
	enc.I64(s.RowHits)
	enc.I64(s.RowMisses)
	enc.I64(s.BytesRead)
	enc.I64(s.BytesWrite)
	enc.I64(s.BulkOps)
	enc.I64(int64(s.BusBusy))
	enc.I64(int64(s.TotalAccess))
	enc.Bool(d.store != nil)
	if d.store != nil {
		d.store.SaveState(enc)
	}
}

// RestoreState overlays the channel. Bank count and functionality are
// structural (from configuration), so mismatches are refused.
func (d *DDR4) RestoreState(dec *checkpoint.Dec) error {
	n := dec.Count(len(d.banks))
	if err := dec.Err(); err != nil {
		return err
	}
	if n != len(d.banks) {
		return fmt.Errorf("%w: channel has %d banks, image has %d", checkpoint.ErrMismatch, len(d.banks), n)
	}
	for i := range d.banks {
		d.banks[i].openRow = dec.I64()
		d.banks[i].nextFree = sim.Time(dec.I64())
	}
	if err := d.bus.RestoreState(dec); err != nil {
		return err
	}
	s := &d.stats
	s.Reads = dec.I64()
	s.Writes = dec.I64()
	s.RowHits = dec.I64()
	s.RowMisses = dec.I64()
	s.BytesRead = dec.I64()
	s.BytesWrite = dec.I64()
	s.BulkOps = dec.I64()
	s.BusBusy = sim.Time(dec.I64())
	s.TotalAccess = sim.Time(dec.I64())
	functional := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if functional != (d.store != nil) {
		return fmt.Errorf("%w: functional channel mismatch", checkpoint.ErrMismatch)
	}
	if d.store != nil {
		return d.store.RestoreState(dec)
	}
	return nil
}

// SaveState serializes the module: the DRAM channel plus the NVDIMM
// lifecycle state (backup image, counters).
func (n *NVDIMM) SaveState(enc *checkpoint.Enc) {
	n.DDR4.SaveState(enc)
	enc.I64(int64(n.backups))
	enc.I64(int64(n.restores))
	enc.I64(int64(n.backupTime))
	enc.Bool(n.hasImage)
	if n.hasImage {
		n.image.SaveState(enc)
	}
}

// RestoreState overlays the module.
func (n *NVDIMM) RestoreState(dec *checkpoint.Dec) error {
	if err := n.DDR4.RestoreState(dec); err != nil {
		return err
	}
	n.backups = int(dec.I64())
	n.restores = int(dec.I64())
	n.backupTime = sim.Time(dec.I64())
	n.hasImage = dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if n.hasImage {
		n.image = mem.NewSparseStore()
		return n.image.RestoreState(dec)
	}
	n.image = nil
	return nil
}
