// Package dram models a DDR4 channel with bank-level timing (row-buffer
// hits and misses, burst transfers) plus the NVDIMM-N wrapper: the same
// DRAM devices augmented with a supercapacitor and a private flash chip
// that back up / restore the full DRAM image across power failures.
package dram

import (
	"fmt"

	"hams/internal/mem"
	"hams/internal/sim"
)

// Timing carries the DDR4 device timing parameters, in nanoseconds.
// Defaults correspond to DDR4-2133 (the NVDIMM module in the paper's
// testbed) with the paper's 20 GB/s per-channel budget.
type Timing struct {
	TRCD   sim.Time // activate-to-read
	TCL    sim.Time // CAS latency
	TRP    sim.Time // precharge
	TBurst sim.Time // 8-beat burst transfer time for one 64 B line
	BusGBs float64  // channel bandwidth for streamed (DMA) transfers
}

// DDR42133 returns the timing for a DDR4-2133 RDIMM.
func DDR42133() Timing {
	return Timing{TRCD: 14, TCL: 14, TRP: 14, TBurst: 4, BusGBs: 20}
}

// Config describes one DRAM channel.
type Config struct {
	Timing      Timing
	Capacity    uint64 // bytes
	Banks       int    // banks per channel (rank-level detail folded in)
	RowBytes    uint64 // row-buffer size per bank
	LineBytes   uint64 // access granularity for demand accesses
	Functional  bool   // allocate a backing SparseStore
	OpenPagePol bool   // keep rows open between accesses (open-page policy)
}

// DefaultConfig returns the 8 GB NVDIMM channel used throughout the
// paper's evaluation (Table II).
func DefaultConfig() Config {
	return Config{
		Timing:      DDR42133(),
		Capacity:    8 * mem.GiB,
		Banks:       16,
		RowBytes:    8 * mem.KiB,
		LineBytes:   64,
		Functional:  true,
		OpenPagePol: true,
	}
}

// Stats aggregates channel activity counters used by the energy model
// and the evaluation breakdowns.
type Stats struct {
	Reads       int64
	Writes      int64
	RowHits     int64
	RowMisses   int64
	BytesRead   int64
	BytesWrite  int64
	BulkOps     int64
	BusBusy     sim.Time
	TotalAccess sim.Time // accumulated service latency (for AMAT shares)
}

type bank struct {
	openRow  int64 // -1 when closed
	nextFree sim.Time
}

// DDR4 is one DRAM channel. It is not safe for concurrent use; the
// simulation driver serializes accesses in time order.
type DDR4 struct {
	cfg   Config
	banks []bank
	bus   *sim.Resource
	store *mem.SparseStore
	stats Stats
}

// New builds a channel from cfg, applying defaults for zero fields.
func New(cfg Config) *DDR4 {
	if cfg.Banks <= 0 {
		cfg.Banks = 16
	}
	if cfg.RowBytes == 0 {
		cfg.RowBytes = 8 * mem.KiB
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 64
	}
	if cfg.Timing.BusGBs == 0 {
		cfg.Timing = DDR42133()
	}
	d := &DDR4{
		cfg:   cfg,
		banks: make([]bank, cfg.Banks),
		bus:   sim.NewResource(),
	}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	if cfg.Functional {
		d.store = mem.NewSparseStore()
	}
	return d
}

// Capacity returns the channel capacity in bytes.
func (d *DDR4) Capacity() uint64 { return d.cfg.Capacity }

// LineBytes returns the demand-access granularity.
func (d *DDR4) LineBytes() uint64 { return d.cfg.LineBytes }

// Store exposes the functional backing store (nil if not functional).
func (d *DDR4) Store() *mem.SparseStore { return d.store }

// Stats returns a copy of the accumulated counters.
func (d *DDR4) Stats() Stats { return d.stats }

// ResetStats zeroes the activity counters (bank/bus state is kept).
func (d *DDR4) ResetStats() { d.stats = Stats{} }

func (d *DDR4) bankOf(addr uint64) (idx int, row int64) {
	rowID := addr / d.cfg.RowBytes
	return int(rowID % uint64(len(d.banks))), int64(rowID / uint64(len(d.banks)))
}

// Access performs a demand access of size bytes at addr, split into
// LineBytes bursts. It returns the completion time. Data movement is
// purely a timing operation; use ReadAt/WriteAt for functional data.
func (d *DDR4) Access(t sim.Time, addr uint64, size uint32, op mem.Op) sim.Time {
	if size == 0 {
		return t
	}
	done := t
	line := d.cfg.LineBytes
	start := mem.AlignDown(addr, line)
	end := mem.AlignUp(addr+uint64(size), line)
	for a := start; a < end; a += line {
		done = d.accessLine(done, a, op)
	}
	d.stats.TotalAccess += done - t
	if op == mem.Read {
		d.stats.BytesRead += int64(size)
	} else {
		d.stats.BytesWrite += int64(size)
	}
	return done
}

func (d *DDR4) accessLine(t sim.Time, addr uint64, op mem.Op) sim.Time {
	bi, row := d.bankOf(addr)
	b := &d.banks[bi]
	at := t
	if b.nextFree > at {
		at = b.nextFree
	}
	var svc sim.Time
	switch {
	case d.cfg.OpenPagePol && b.openRow == row:
		d.stats.RowHits++
		svc = d.cfg.Timing.TCL + d.cfg.Timing.TBurst
	case b.openRow == -1:
		d.stats.RowMisses++
		svc = d.cfg.Timing.TRCD + d.cfg.Timing.TCL + d.cfg.Timing.TBurst
	default:
		d.stats.RowMisses++
		svc = d.cfg.Timing.TRP + d.cfg.Timing.TRCD + d.cfg.Timing.TCL + d.cfg.Timing.TBurst
	}
	if d.cfg.OpenPagePol {
		b.openRow = row
	} else {
		b.openRow = -1
	}
	// The data beats occupy the shared channel bus.
	_, busDone := d.bus.Acquire(at+svc-d.cfg.Timing.TBurst, d.cfg.Timing.TBurst)
	if busDone < at+svc {
		busDone = at + svc
	}
	b.nextFree = busDone
	d.stats.BusBusy += d.cfg.Timing.TBurst
	if op == mem.Read {
		d.stats.Reads++
	} else {
		d.stats.Writes++
	}
	return busDone
}

// Bulk models a streamed DMA transfer of size bytes (e.g. an NVMe PRP
// transfer into the NVDIMM or a backup flush). It charges one row
// activation plus bandwidth-limited occupancy of the channel bus.
func (d *DDR4) Bulk(t sim.Time, addr uint64, size uint32, op mem.Op) sim.Time {
	if size == 0 {
		return t
	}
	setup := d.cfg.Timing.TRCD + d.cfg.Timing.TCL
	xfer := sim.Bandwidth(int64(size), d.cfg.Timing.BusGBs)
	_, done := d.bus.Acquire(t+setup, xfer)
	d.stats.BulkOps++
	d.stats.BusBusy += xfer
	if op == mem.Read {
		d.stats.Reads++
		d.stats.BytesRead += int64(size)
	} else {
		d.stats.Writes++
		d.stats.BytesWrite += int64(size)
	}
	d.stats.TotalAccess += done - t
	return done
}

// BusPeek returns when the channel bus would be free for an arrival at t.
func (d *DDR4) BusPeek(t sim.Time) sim.Time { return d.bus.Peek(t) }

// ReadAt / WriteAt move functional data. They panic if the channel was
// built without a backing store, which indicates a wiring bug.
func (d *DDR4) ReadAt(addr uint64, p []byte) {
	if d.store == nil {
		panic("dram: ReadAt on non-functional channel")
	}
	d.store.ReadAt(addr, p)
}

func (d *DDR4) WriteAt(addr uint64, p []byte) {
	if d.store == nil {
		panic("dram: WriteAt on non-functional channel")
	}
	d.store.WriteAt(addr, p)
}

func (d *DDR4) String() string {
	return fmt.Sprintf("DDR4(%.0fGB, %d banks, %.0fGB/s)",
		float64(d.cfg.Capacity)/float64(mem.GiB), len(d.banks), d.cfg.Timing.BusGBs)
}
