package dram

import (
	"hams/internal/mem"
	"hams/internal/sim"
)

// NVDIMM is a JEDEC NVDIMM-N: DRAM devices plus a supercapacitor and a
// same-capacity private flash chip. Under normal operation it is a
// plain RDIMM; on power failure the on-board controller isolates the
// DRAM from the bus (multiplexers) and streams the full DRAM image to
// its private flash powered by the supercap. On the next boot it
// restores the image. The backup/restore path is invisible to the host
// and takes tens of seconds (§II-A).
type NVDIMM struct {
	*DDR4

	backupGBs  float64 // private flash backup stream bandwidth
	image      *mem.SparseStore
	hasImage   bool
	backups    int
	restores   int
	backupTime sim.Time
}

// NVDIMMConfig describes the module.
type NVDIMMConfig struct {
	DRAM      Config
	BackupGBs float64 // DRAM->private-flash stream rate; default 0.8 GB/s
}

// NewNVDIMM builds the module. The DRAM channel is forced functional so
// that backup/restore can carry real bytes.
func NewNVDIMM(cfg NVDIMMConfig) *NVDIMM {
	cfg.DRAM.Functional = true
	if cfg.BackupGBs == 0 {
		cfg.BackupGBs = 0.8
	}
	return &NVDIMM{DDR4: New(cfg.DRAM), backupGBs: cfg.BackupGBs}
}

// PowerFail captures the DRAM image into the private flash (supercap
// powered) and reports how long the backup stream takes. The host is
// already down, so the duration does not extend application time; it
// matters for the recovery-procedure experiments.
func (n *NVDIMM) PowerFail() sim.Time {
	n.image = n.Store().Snapshot()
	n.hasImage = true
	n.backups++
	d := sim.Bandwidth(int64(n.Capacity()), n.backupGBs)
	n.backupTime += d
	return d
}

// Restore loads the private-flash image back into DRAM on boot,
// returning the restore duration. Restoring without a prior backup is
// a no-op that returns zero (cold boot).
func (n *NVDIMM) Restore() sim.Time {
	if !n.hasImage {
		return 0
	}
	n.Store().Restore(n.image)
	n.restores++
	return sim.Bandwidth(int64(n.Capacity()), n.backupGBs)
}

// DropImage simulates losing the backup (e.g. supercap failure) so
// tests can exercise the cold-boot path.
func (n *NVDIMM) DropImage() { n.image = nil; n.hasImage = false }

// Backups and Restores report lifecycle counts.
func (n *NVDIMM) Backups() int  { return n.backups }
func (n *NVDIMM) Restores() int { return n.restores }
