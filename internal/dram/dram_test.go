package dram

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"hams/internal/mem"
	"hams/internal/sim"
)

func testCfg() Config {
	c := DefaultConfig()
	c.Capacity = 64 * mem.MiB
	return c
}

func TestRowHitFasterThanMiss(t *testing.T) {
	d := New(testCfg())
	// First access opens the row (miss).
	d1 := d.Access(0, 0, 64, mem.Read)
	// Second access to the same row at a later idle time: hit.
	t2 := d1 + 1000
	d2 := d.Access(t2, 64, 64, mem.Read)
	missLat := d1 - 0
	hitLat := d2 - t2
	if hitLat >= missLat {
		t.Fatalf("row hit (%v) must be faster than miss (%v)", hitLat, missLat)
	}
	st := d.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 {
		t.Fatalf("hits=%d misses=%d", st.RowHits, st.RowMisses)
	}
}

func TestRowConflictSlowerThanColdMiss(t *testing.T) {
	d := New(testCfg())
	rowBytes := testCfg().RowBytes
	banks := uint64(testCfg().Banks)
	d1 := d.Access(0, 0, 64, mem.Read) // opens row 0 of bank 0
	// Same bank, different row -> precharge + activate + CAS.
	t2 := d1 + 1000
	d2 := d.Access(t2, rowBytes*banks, 64, mem.Read)
	if d2-t2 <= d1 {
		t.Fatalf("row conflict (%v) must be slower than cold miss (%v)", d2-t2, d1)
	}
}

func TestMultiLineAccessSplits(t *testing.T) {
	d := New(testCfg())
	done := d.Access(0, 0, 256, mem.Read)
	st := d.Stats()
	if st.Reads != 4 {
		t.Fatalf("256B access made %d line reads, want 4", st.Reads)
	}
	single := New(testCfg()).Access(0, 0, 64, mem.Read)
	if done <= single {
		t.Fatal("4-line access must take longer than 1-line access")
	}
}

func TestUnalignedAccessTouchesBothLines(t *testing.T) {
	d := New(testCfg())
	d.Access(0, 60, 8, mem.Write) // straddles the 64 B boundary
	if st := d.Stats(); st.Writes != 2 {
		t.Fatalf("straddling access made %d line writes, want 2", st.Writes)
	}
}

func TestZeroSizeAccessIsFree(t *testing.T) {
	d := New(testCfg())
	if done := d.Access(42, 0, 0, mem.Read); done != 42 {
		t.Fatalf("zero-size access returned %v", done)
	}
}

func TestBulkBandwidthDominates(t *testing.T) {
	d := New(testCfg())
	// 128 KiB at 20 GB/s ≈ 6554 ns (plus small setup).
	done := d.Bulk(0, 0, 128*mem.KiB, mem.Write)
	want := sim.Bandwidth(128*mem.KiB, 20)
	if done < want || done > want+100 {
		t.Fatalf("bulk 128KiB done=%v, want ~%v", done, want)
	}
}

func TestBulkOccupiesBus(t *testing.T) {
	d := New(testCfg())
	d1 := d.Bulk(0, 0, 64*mem.KiB, mem.Write)
	// A second bulk issued at t=0 must queue behind the first.
	d2 := d.Bulk(0, 1*mem.MiB, 64*mem.KiB, mem.Write)
	if d2 <= d1 {
		t.Fatalf("second bulk (%v) must finish after first (%v)", d2, d1)
	}
}

func TestBanksOverlap(t *testing.T) {
	// Two accesses to different banks at t=0 overlap except for bus
	// serialization; the combined finish must be far less than 2x.
	cfg := testCfg()
	d := New(cfg)
	lat1 := d.Access(0, 0, 64, mem.Read)
	d2 := New(cfg)
	d2.Access(0, 0, 64, mem.Read)
	doneBoth := d2.Access(0, cfg.RowBytes, 64, mem.Read) // different bank
	if doneBoth >= 2*lat1 {
		t.Fatalf("bank-parallel accesses serialized: %v vs single %v", doneBoth, lat1)
	}
}

func TestFunctionalRoundTrip(t *testing.T) {
	d := New(testCfg())
	data := []byte("nvdimm line")
	d.WriteAt(4096, data)
	got := make([]byte, len(data))
	d.ReadAt(4096, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestNonFunctionalPanics(t *testing.T) {
	cfg := testCfg()
	cfg.Functional = false
	d := New(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.ReadAt(0, make([]byte, 1))
}

func TestStatsByteAccounting(t *testing.T) {
	d := New(testCfg())
	d.Access(0, 0, 100, mem.Read)
	d.Access(0, 0, 50, mem.Write)
	d.Bulk(0, 0, 4096, mem.Read)
	st := d.Stats()
	if st.BytesRead != 100+4096 || st.BytesWrite != 50 {
		t.Fatalf("bytes: read=%d write=%d", st.BytesRead, st.BytesWrite)
	}
	d.ResetStats()
	if d.Stats().BytesRead != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestNVDIMMBackupRestore(t *testing.T) {
	n := NewNVDIMM(NVDIMMConfig{DRAM: testCfg()})
	payload := []byte("persist me")
	n.WriteAt(1234, payload)

	d := n.PowerFail()
	if d <= 0 {
		t.Fatal("backup must take time")
	}
	// Host memory is lost: simulate by zeroing DRAM.
	n.Store().Zero(1234, uint64(len(payload)))

	if rd := n.Restore(); rd <= 0 {
		t.Fatal("restore must take time")
	}
	got := make([]byte, len(payload))
	n.ReadAt(1234, got)
	if !bytes.Equal(got, payload) {
		t.Fatalf("after restore got %q", got)
	}
	if n.Backups() != 1 || n.Restores() != 1 {
		t.Fatalf("backups=%d restores=%d", n.Backups(), n.Restores())
	}
}

func TestNVDIMMColdBootRestoreIsNoop(t *testing.T) {
	n := NewNVDIMM(NVDIMMConfig{DRAM: testCfg()})
	if d := n.Restore(); d != 0 {
		t.Fatalf("cold restore = %v, want 0", d)
	}
	n.WriteAt(0, []byte{1})
	n.PowerFail()
	n.DropImage()
	if d := n.Restore(); d != 0 {
		t.Fatalf("restore after DropImage = %v, want 0", d)
	}
}

func TestNVDIMMBackupDurationScalesWithCapacity(t *testing.T) {
	small := NewNVDIMM(NVDIMMConfig{DRAM: Config{Capacity: 1 * mem.MiB, Timing: DDR42133()}})
	big := NewNVDIMM(NVDIMMConfig{DRAM: Config{Capacity: 4 * mem.MiB, Timing: DDR42133()}})
	if big.PowerFail() <= small.PowerFail() {
		t.Fatal("backup time must scale with capacity")
	}
}

// Property: completion time is nondecreasing when accesses are issued
// in nondecreasing time order (no time travel through the bank model).
func TestMonotoneCompletionProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(testCfg())
		var at, prevDone sim.Time
		for i := 0; i < int(n); i++ {
			at += sim.Time(rng.Intn(40))
			addr := uint64(rng.Intn(1 << 24))
			op := mem.Read
			if rng.Intn(2) == 1 {
				op = mem.Write
			}
			done := d.Access(at, addr, 64, op)
			if done < at || done < prevDone-200 {
				// Allow small reordering across independent banks, but
				// a completion must never precede its own arrival.
				if done < at {
					return false
				}
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
