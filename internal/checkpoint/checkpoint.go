// Package checkpoint defines the versioned whole-platform state
// container: a deeper cousin of the trace v2 container that freezes a
// quiesced simulation mid-flight so one warm-up can fan out into many
// experiment cells, and so SMARTS-style interval sampling can skip
// simulated time it has already paid for once.
//
// The wire format follows the trace container's rules exactly: a fixed
// magic, an explicit schema version that readers refuse rather than
// guess around, and every count length-prefixed and bounds-checked
// before any allocation sized from it. Sections are named opaque
// payloads, one per platform layer, so `hamstrace info` can report
// per-layer sizes without understanding their contents and a future
// schema can add sections without renumbering anything.
//
// Versioning policy (mirrors trace v2): SchemaVersion bumps only on an
// incompatible layout change; readers accept exactly the versions they
// understand and fail with ErrBadHeader otherwise. Adding a new named
// section is not a version bump — decoders ignore sections they do not
// ask for; removing or re-shaping one is.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// SchemaVersion is the container layout version this package writes.
const SchemaVersion = 1

// Container limits. Every wire count is validated against these (or
// against the bytes actually remaining) before an allocation is sized
// from it, so a corrupt or hostile image cannot trigger an OOM.
const (
	MaxSections     = 64
	MaxSectionName  = 64
	MaxPlatformName = 128
	MaxSectionBytes = 1 << 31 // 2 GiB; payloads stream in 1 MiB steps
)

// Magic identifies a checkpoint container ("HAMC"; traces use "HAMS").
var Magic = [4]byte{'H', 'A', 'M', 'C'}

// Typed failures. Decode errors wrap ErrBadHeader (not a checkpoint /
// unknown version) or ErrCorrupt (truncated or inconsistent payload);
// Save refuses a non-quiesced platform with ErrNotQuiesced and a
// platform without checkpoint support with ErrUnsupported; Restore
// refuses an image built for different hardware with ErrMismatch.
var (
	ErrBadHeader   = errors.New("checkpoint: bad header")
	ErrCorrupt     = errors.New("checkpoint: corrupt container")
	ErrNotQuiesced = errors.New("checkpoint: platform not quiesced")
	ErrUnsupported = errors.New("checkpoint: platform does not support checkpointing")
	ErrMismatch    = errors.New("checkpoint: image does not match platform")
)

// IsMagic reports whether b begins with the checkpoint magic (used by
// CLI sniffing to distinguish checkpoints from traces).
func IsMagic(b []byte) bool {
	return len(b) >= 4 && b[0] == Magic[0] && b[1] == Magic[1] && b[2] == Magic[2] && b[3] == Magic[3]
}

// Checkpointer is the per-layer contract: serialize your mutable
// simulation state into an encoder, or overlay it back from a decoder
// onto an already-constructed instance. RestoreState must validate
// every geometry-dependent count against the receiver (never resize
// structure from the wire) and must leave no state half-applied only
// when it can detect the mismatch before mutating.
type Checkpointer interface {
	SaveState(*Enc)
	RestoreState(*Dec) error
}

// Section is one named opaque payload.
type Section struct {
	Name string
	Data []byte
}

// Image is a decoded checkpoint: the header fields plus per-layer
// sections in file order.
type Image struct {
	Version  int
	Platform string // platform name the image was taken on
	SimTime  int64  // engine clock at the quiesce boundary, ns
	Warmup   int64  // per-thread steps consumed before the boundary
	Sections []Section
}

// Add appends a section holding enc's bytes.
func (img *Image) Add(name string, enc *Enc) {
	img.Sections = append(img.Sections, Section{Name: name, Data: enc.Bytes()})
}

// Section returns a decoder over the named section, or an ErrCorrupt-
// wrapped error naming the missing section.
func (img *Image) Section(name string) (*Dec, error) {
	for i := range img.Sections {
		if img.Sections[i].Name == name {
			return NewDec(img.Sections[i].Data), nil
		}
	}
	return nil, fmt.Errorf("%w: missing section %q", ErrCorrupt, name)
}

// Enc accumulates little-endian primitives. The zero value is ready.
type Enc struct {
	b []byte
}

// Bytes returns the accumulated buffer (not a copy).
func (e *Enc) Bytes() []byte { return e.b }

// Len returns the number of bytes accumulated so far.
func (e *Enc) Len() int { return len(e.b) }

// U64 appends v little-endian.
func (e *Enc) U64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

// U32 appends v little-endian.
func (e *Enc) U32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }

// I64 appends v little-endian.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends v as IEEE-754 bits.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends v as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

// Count appends a non-negative element count.
func (e *Enc) Count(n int) { e.U64(uint64(n)) }

// Raw appends p verbatim (no length prefix; the reader must know the
// exact size from already-validated structure).
func (e *Enc) Raw(p []byte) { e.b = append(e.b, p...) }

// Blob appends p length-prefixed.
func (e *Enc) Blob(p []byte) { e.Count(len(p)); e.Raw(p) }

// Page appends a page payload with the all-zero case run-compressed to
// a flag plus length. Simulated stores are dominated by zero-filled
// pages (cold fills, reads of never-written addresses), so this keeps
// image sections proportional to the data actually written rather
// than the footprint touched. Decode with Dec.Page.
func (e *Enc) Page(p []byte) {
	zero := true
	for _, b := range p {
		if b != 0 {
			zero = false
			break
		}
	}
	e.Bool(zero)
	if zero {
		e.Count(len(p))
		return
	}
	e.Blob(p)
}

// String appends s length-prefixed.
func (e *Enc) String(s string) { e.Count(len(s)); e.b = append(e.b, s...) }

// Dec reads little-endian primitives from an in-memory section with a
// sticky error: after the first failure every read returns zero values
// and Err reports ErrCorrupt. Because the payload is already in
// memory, every length is validated against the bytes actually
// remaining before an allocation is sized from it.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over b.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the sticky decode error, if any.
func (d *Dec) Err() error { return d.err }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("need %d bytes, %d remain", n, len(d.b)-d.off)
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// I64 reads a little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads IEEE-754 bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads one byte; any nonzero value is true.
func (d *Dec) Bool() bool {
	p := d.take(1)
	return p != nil && p[0] != 0
}

// Count reads an element count and validates 0 <= n <= max. It fails
// the decoder (and returns 0) on violation, so callers can size
// allocations from the result without further checks.
func (d *Dec) Count(max int) int {
	v := d.U64()
	if d.err != nil {
		return 0
	}
	if v > uint64(max) {
		d.fail("count %d exceeds limit %d", v, max)
		return 0
	}
	return int(v)
}

// CountSized reads an element count for elements costing at least per
// wire bytes each, bounding it by the bytes actually remaining — the
// rule that makes it impossible to size an allocation from a count the
// payload cannot back.
func (d *Dec) CountSized(per int) int {
	if per <= 0 {
		per = 1
	}
	return d.Count((len(d.b) - d.off) / per)
}

// Raw returns the next n bytes without copying.
func (d *Dec) Raw(n int) []byte { return d.take(n) }

// ReadInto fills p from the stream.
func (d *Dec) ReadInto(p []byte) {
	src := d.take(len(p))
	if src != nil {
		copy(p, src)
	}
}

// Blob reads a length-prefixed byte slice (copied). The length is
// bounded by the bytes remaining, so no unvalidated allocation occurs.
func (d *Dec) Blob() []byte {
	n := d.Count(len(d.b) - d.off)
	p := d.take(n)
	if p == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, p)
	return out
}

// Page reads a payload written by Enc.Page into a fresh slice of at
// most max bytes. A zero-compressed page allocates its length directly
// (bounded by max, not by bytes on the wire — callers cap max at the
// geometry's page size so a hostile flag cannot size an allocation).
func (d *Dec) Page(max int) []byte {
	if d.Bool() {
		n := d.Count(max)
		if d.err != nil {
			return nil
		}
		return make([]byte, n)
	}
	p := d.Blob()
	if len(p) > max {
		d.fail("page of %d bytes exceeds %d", len(p), max)
		return nil
	}
	return p
}

// PageInto reads a payload written by Enc.Page into dst without
// allocating, returning the payload length. The length must equal
// len(dst) exactly; zero-compressed pages clear dst in place.
func (d *Dec) PageInto(dst []byte) int {
	if d.Bool() {
		n := d.Count(len(dst))
		if d.err != nil {
			return 0
		}
		if n != len(dst) {
			d.fail("page of %d bytes into %d", n, len(dst))
			return 0
		}
		for i := range dst {
			dst[i] = 0
		}
		return n
	}
	n := d.Count(len(dst))
	if d.err != nil {
		return 0
	}
	if n != len(dst) {
		d.fail("page of %d bytes into %d", n, len(dst))
		return 0
	}
	d.ReadInto(dst)
	return n
}

// String reads a length-prefixed string of at most max bytes.
func (d *Dec) String(max int) string {
	n := d.Count(max)
	p := d.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

// Finish fails unless the whole section was consumed (a layer that
// leaves trailing bytes decoded against the wrong layout).
func (d *Dec) Finish() error {
	if d.err == nil && d.off != len(d.b) {
		d.fail("%d trailing bytes", len(d.b)-d.off)
	}
	return d.err
}

// Encode writes img to w:
//
//	magic "HAMC" | u32 version | platform string | i64 simTime
//	| i64 warmup | u32 nSections | nSections × (name string
//	| u64 payloadLen | payload)
//
// Strings are u64-length-prefixed like every other count.
func Encode(w io.Writer, img *Image) error {
	if len(img.Sections) > MaxSections {
		return fmt.Errorf("%w: %d sections exceeds limit %d", ErrCorrupt, len(img.Sections), MaxSections)
	}
	var h Enc
	h.Raw(Magic[:])
	h.U32(uint32(img.Version))
	h.String(img.Platform)
	h.I64(img.SimTime)
	h.I64(img.Warmup)
	h.U32(uint32(len(img.Sections)))
	for _, s := range img.Sections {
		if len(s.Name) > MaxSectionName {
			return fmt.Errorf("%w: section name %q too long", ErrCorrupt, s.Name)
		}
		h.String(s.Name)
		h.U64(uint64(len(s.Data)))
		h.Raw(s.Data)
	}
	_, err := w.Write(h.Bytes())
	return err
}

// readChunked reads exactly n bytes, growing the buffer in 1 MiB steps
// so a lying length field costs at most one chunk before the short
// read surfaces as ErrCorrupt — the same incremental-allocation rule
// the trace decoder applies to access counts.
func readChunked(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	c0 := n
	if c0 > chunk {
		c0 = chunk
	}
	buf := make([]byte, 0, c0)
	for uint64(len(buf)) < n {
		c := n - uint64(len(buf))
		if c > chunk {
			c = chunk
		}
		old := len(buf)
		buf = append(buf, make([]byte, c)...)
		if _, err := io.ReadFull(r, buf[old:]); err != nil {
			return nil, fmt.Errorf("%w: truncated payload", ErrCorrupt)
		}
	}
	return buf, nil
}

// readHeaderString reads a u64-length-prefixed string bounded by max.
func readHeaderString(r io.Reader, max int) (string, error) {
	var lenBuf [8]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", fmt.Errorf("%w: truncated string length", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint64(lenBuf[:])
	if n > uint64(max) {
		return "", fmt.Errorf("%w: string length %d exceeds limit %d", ErrCorrupt, n, max)
	}
	p, err := readChunked(r, n)
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// Decode reads a checkpoint container from r. It validates the magic,
// the schema version and every count before allocating from them;
// malformed input fails with an error wrapping ErrBadHeader or
// ErrCorrupt before any section payload is interpreted.
func Decode(r io.Reader) (*Image, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short read", ErrBadHeader)
	}
	if !IsMagic(hdr[:4]) {
		return nil, fmt.Errorf("%w: not a checkpoint container", ErrBadHeader)
	}
	version := binary.LittleEndian.Uint32(hdr[4:])
	if version != SchemaVersion {
		return nil, fmt.Errorf("%w: unsupported schema version %d (have %d)", ErrBadHeader, version, SchemaVersion)
	}
	img := &Image{Version: int(version)}
	var err error
	if img.Platform, err = readHeaderString(r, MaxPlatformName); err != nil {
		return nil, err
	}
	var fixed [20]byte // simTime, warmup, nSections
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	img.SimTime = int64(binary.LittleEndian.Uint64(fixed[0:]))
	img.Warmup = int64(binary.LittleEndian.Uint64(fixed[8:]))
	nsec := binary.LittleEndian.Uint32(fixed[16:])
	if nsec > MaxSections {
		return nil, fmt.Errorf("%w: %d sections exceeds limit %d", ErrCorrupt, nsec, MaxSections)
	}
	for i := uint32(0); i < nsec; i++ {
		name, err := readHeaderString(r, MaxSectionName)
		if err != nil {
			return nil, err
		}
		var lenBuf [8]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated section length", ErrCorrupt)
		}
		size := binary.LittleEndian.Uint64(lenBuf[:])
		if size > MaxSectionBytes {
			return nil, fmt.Errorf("%w: section %q length %d exceeds limit %d", ErrCorrupt, name, size, int64(MaxSectionBytes))
		}
		data, err := readChunked(r, size)
		if err != nil {
			return nil, err
		}
		img.Sections = append(img.Sections, Section{Name: name, Data: data})
	}
	return img, nil
}
