package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func sampleImage() *Image {
	img := &Image{Version: SchemaVersion, Platform: "hams-LE", SimTime: 123456, Warmup: 512}
	var a, b Enc
	a.U64(42)
	a.I64(-7)
	a.F64(3.5)
	a.Bool(true)
	a.String("tenant")
	a.Blob([]byte{1, 2, 3})
	img.Add("core/ctl", &a)
	b.Count(2)
	b.U32(9)
	b.U32(10)
	img.Add("mem/nvdimm", &b)
	return img
}

func TestRoundTrip(t *testing.T) {
	img := sampleImage()
	var buf bytes.Buffer
	if err := Encode(&buf, img); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Version != img.Version || got.Platform != img.Platform ||
		got.SimTime != img.SimTime || got.Warmup != img.Warmup {
		t.Fatalf("header mismatch: %+v vs %+v", got, img)
	}
	if len(got.Sections) != len(img.Sections) {
		t.Fatalf("got %d sections, want %d", len(got.Sections), len(img.Sections))
	}
	for i, s := range img.Sections {
		if got.Sections[i].Name != s.Name || !bytes.Equal(got.Sections[i].Data, s.Data) {
			t.Fatalf("section %d differs", i)
		}
	}
	d, err := got.Section("core/ctl")
	if err != nil {
		t.Fatalf("section: %v", err)
	}
	if v := d.U64(); v != 42 {
		t.Fatalf("u64 = %d", v)
	}
	if v := d.I64(); v != -7 {
		t.Fatalf("i64 = %d", v)
	}
	if v := d.F64(); v != 3.5 {
		t.Fatalf("f64 = %v", v)
	}
	if !d.Bool() {
		t.Fatal("bool = false")
	}
	if v := d.String(64); v != "tenant" {
		t.Fatalf("string = %q", v)
	}
	if v := d.Blob(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("blob = %v", v)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if _, err := got.Section("no/such"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing section error = %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := Decode(strings.NewReader("SMAH\x01\x00\x00\x00rest")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}

func TestUnknownVersionRejected(t *testing.T) {
	if _, err := Decode(strings.NewReader("HAMC\x02\x00\x00\x00rest")); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}

// TestHugeCountRejected is the count-OOM regression for the container
// layer: every length field a hostile image can inflate — platform
// name, section count, section name, section payload — must fail
// cleanly without the decoder sizing an allocation from the lie.
func TestHugeCountRejected(t *testing.T) {
	le := binary.LittleEndian
	u64 := func(v uint64) []byte { b := make([]byte, 8); le.PutUint64(b, v); return b }
	u32 := func(v uint32) []byte { b := make([]byte, 4); le.PutUint32(b, v); return b }
	hdr := append([]byte("HAMC"), u32(SchemaVersion)...)

	cases := map[string][]byte{
		// Platform-name length 2^60.
		"platform-name": append(append([]byte{}, hdr...), u64(1<<60)...),
		// Section count 2^32-1 (> MaxSections).
		"section-count": bytes.Join([][]byte{hdr, u64(0), u64(0), u64(0), u32(1<<32 - 1)}, nil),
		// Section-name length 2^50.
		"section-name": bytes.Join([][]byte{hdr, u64(0), u64(0), u64(0), u32(1), u64(1 << 50)}, nil),
		// Section payload claiming 2^40 bytes with none attached: the
		// chunked reader must fail at the first short read, not allocate
		// a terabyte up front.
		"section-payload": bytes.Join([][]byte{
			hdr, u64(0), u64(0), u64(0), u32(1),
			u64(4), []byte("core"), u64(1 << 40),
		}, nil),
		// Payload length over MaxSectionBytes is rejected before any read.
		"section-payload-limit": bytes.Join([][]byte{
			hdr, u64(0), u64(0), u64(0), u32(1),
			u64(4), []byte("core"), u64(MaxSectionBytes + 1),
		}, nil),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestDecCountBounds(t *testing.T) {
	var e Enc
	e.Count(1 << 40)
	d := NewDec(e.Bytes())
	if n := d.Count(100); n != 0 {
		t.Fatalf("count = %d, want 0", n)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", d.Err())
	}

	// CountSized bounds by the bytes actually remaining: a count of a
	// million 8-byte items over an 8-byte payload cannot pass.
	var e2 Enc
	e2.Count(1 << 20)
	e2.U64(7)
	d2 := NewDec(e2.Bytes())
	if n := d2.CountSized(8); n != 0 || d2.Err() == nil {
		t.Fatalf("CountSized = %d err %v, want rejection", n, d2.Err())
	}

	// And a backed count passes.
	var e3 Enc
	e3.Count(2)
	e3.U64(1)
	e3.U64(2)
	d3 := NewDec(e3.Bytes())
	if n := d3.CountSized(8); n != 2 || d3.Err() != nil {
		t.Fatalf("CountSized = %d err %v, want 2", n, d3.Err())
	}
}

func TestDecStickyError(t *testing.T) {
	d := NewDec([]byte{1, 2})
	_ = d.U64() // short
	if d.Err() == nil {
		t.Fatal("short read not detected")
	}
	// Every later read stays zero, no panic.
	if d.U64() != 0 || d.Bool() || d.Raw(4) != nil || d.String(8) != "" {
		t.Fatal("reads after failure must return zero values")
	}
}

func TestFinishRejectsTrailing(t *testing.T) {
	var e Enc
	e.U64(1)
	e.U64(2)
	d := NewDec(e.Bytes())
	_ = d.U64()
	if err := d.Finish(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("finish = %v, want ErrCorrupt on trailing bytes", err)
	}
}

func TestSampler(t *testing.T) {
	var z Sampler
	if z.Enabled() {
		t.Fatal("zero sampler enabled")
	}
	if !z.Sampled(12345) {
		t.Fatal("zero sampler must observe everything")
	}
	s := Sampler{Measure: 10, Skip: 90}
	if !s.Enabled() || s.Period() != 100 {
		t.Fatalf("sampler = %+v", s)
	}
	for _, tc := range []struct {
		t    int64
		want bool
	}{{0, true}, {9, true}, {10, false}, {99, false}, {100, true}, {-5, true}} {
		if got := s.Sampled(tc.t); got != tc.want {
			t.Errorf("Sampled(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}
