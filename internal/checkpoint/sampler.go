package checkpoint

// Sampler is a SMARTS-style interval schedule (Wunderlich et al.,
// ISCA '03) driven by the simulated clock: starting at the measured
// phase's origin, windows of Measure nanoseconds are observed and the
// following Skip nanoseconds are fast-forwarded past — the simulation
// still executes (functional warming keeps every cache and device
// model exact), but statistics collection is gated to the measured
// windows. The zero Sampler observes everything.
type Sampler struct {
	Measure int64 // observed window length, ns
	Skip    int64 // unobserved gap between windows, ns
}

// Enabled reports whether the schedule actually skips anything.
func (s Sampler) Enabled() bool { return s.Measure > 0 && s.Skip > 0 }

// Period returns one measure+skip cycle length.
func (s Sampler) Period() int64 { return s.Measure + s.Skip }

// Sampled reports whether an event at offset t (nanoseconds since the
// measured phase's origin) falls inside an observed window.
func (s Sampler) Sampled(t int64) bool {
	if !s.Enabled() {
		return true
	}
	if t < 0 {
		t = 0
	}
	return t%s.Period() < s.Measure
}
