package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzCheckpointReader drives Decode with arbitrary bytes. The
// invariants: no panic, no unbounded allocation (the container limits
// make a lying count fail before it is trusted), and anything that
// decodes re-encodes and re-decodes losslessly.
func FuzzCheckpointReader(f *testing.F) {
	// A small valid image.
	var valid bytes.Buffer
	if err := Encode(&valid, sampleImage()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Truncations, bare headers, wrong magic/version, garbage.
	f.Add(valid.Bytes()[:len(valid.Bytes())-3])
	f.Add([]byte("HAMC\x01\x00\x00\x00"))
	f.Add([]byte("HAMC\x02\x00\x00\x00"))
	f.Add([]byte("SMAH\x01\x00\x00\x00"))
	f.Add([]byte("not a checkpoint"))
	// The count-OOM shapes from TestHugeCountRejected.
	f.Add([]byte("HAMC\x01\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte("HAMC\x01\x00\x00\x00" +
		"\x00\x00\x00\x00\x00\x00\x00\x00" + // platform ""
		"\x00\x00\x00\x00\x00\x00\x00\x00" + // simTime
		"\x00\x00\x00\x00\x00\x00\x00\x00" + // warmup
		"\xff\xff\xff\xff")) // 2^32-1 sections

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(img.Sections) > MaxSections {
			t.Fatalf("%d sections escaped the bound", len(img.Sections))
		}
		var buf bytes.Buffer
		if err := Encode(&buf, img); err != nil {
			t.Fatalf("re-encode of decoded image failed: %v", err)
		}
		img2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if img2.Platform != img.Platform || img2.SimTime != img.SimTime ||
			img2.Warmup != img.Warmup || len(img2.Sections) != len(img.Sections) {
			t.Fatal("round trip not lossless")
		}
		for i := range img.Sections {
			if img2.Sections[i].Name != img.Sections[i].Name ||
				!bytes.Equal(img2.Sections[i].Data, img.Sections[i].Data) {
				t.Fatalf("section %d not lossless", i)
			}
		}
	})
}
