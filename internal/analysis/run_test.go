package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// fakeAnalyzer reports at every identifier named "boom" — enough to
// exercise the driver's suppression plumbing without type-checking.
var fakeAnalyzer = &Analyzer{
	Name: "fake",
	Doc:  "flags identifiers named boom",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "boom" {
					pass.Reportf(id.Pos(), "boom sighted")
				}
				return true
			})
		}
		return nil
	},
}

func runOn(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := types.NewPackage("hams/internal/core", "core")
	findings, err := RunPackage(fset, []*ast.File{f}, pkg, &types.Info{}, "hams", []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func wantMessages(t *testing.T, got []Finding, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d findings %v, want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if !strings.Contains(got[i].Message, w) {
			t.Errorf("finding %d = %q, want substring %q", i, got[i].Message, w)
		}
	}
}

func TestSuppressSameLine(t *testing.T) {
	findings := runOn(t, `package core
var boom int //hamslint:allow fake — reviewed: test exception
`)
	wantMessages(t, findings)
}

func TestSuppressLineAbove(t *testing.T) {
	findings := runOn(t, `package core

//hamslint:allow fake — reviewed: test exception
var boom int
`)
	wantMessages(t, findings)
}

func TestSuppressTooFarAway(t *testing.T) {
	// A directive two lines up does not reach; it is also unused.
	findings := runOn(t, `package core

//hamslint:allow fake — reviewed: test exception

var boom int
`)
	wantMessages(t, findings,
		"unused hamslint:allow fake",
		"boom sighted",
	)
}

func TestSuppressSeparatorVariants(t *testing.T) {
	findings := runOn(t, `package core
var boom int //hamslint:allow fake -- ascii double dash separator
var x = boom //hamslint:allow fake: colon separator
`)
	wantMessages(t, findings)
}

func TestMalformedDirective(t *testing.T) {
	findings := runOn(t, `package core

//hamslint:allow
var ok int
`)
	wantMessages(t, findings, "malformed hamslint:allow")
	if findings[0].Analyzer != driverName {
		t.Errorf("malformed directive attributed to %q, want %q", findings[0].Analyzer, driverName)
	}
}

func TestMissingReason(t *testing.T) {
	findings := runOn(t, `package core

//hamslint:allow fake
var boom int
`)
	// A reasonless directive is rejected outright, so it does NOT
	// suppress: both the grammar error and the finding surface.
	wantMessages(t, findings, "needs a reason", "boom sighted")
}

func TestUnknownAnalyzer(t *testing.T) {
	findings := runOn(t, `package core

//hamslint:allow bogus — no such checker
var boom int
`)
	wantMessages(t, findings, "unknown analyzer bogus", "boom sighted")
}

func TestUnusedDirective(t *testing.T) {
	findings := runOn(t, `package core

//hamslint:allow fake — stale: the code it covered is gone
var quiet int
`)
	wantMessages(t, findings, "unused hamslint:allow fake")
}

func TestProseMentionIsNotADirective(t *testing.T) {
	// Doc comments that merely talk about the directive (with the
	// conventional space after //) must not parse as one.
	findings := runOn(t, `package core

// Use hamslint:allow <analyzer> — <reason> to suppress findings.
var quiet int
`)
	wantMessages(t, findings)
}

func TestFindingsSortedByPosition(t *testing.T) {
	findings := runOn(t, `package core

var z = boom
var a = boom
`)
	if len(findings) != 2 || findings[0].Pos.Line >= findings[1].Pos.Line {
		t.Fatalf("findings not position-sorted: %v", findings)
	}
}

func TestTestFileDirectivesIgnored(t *testing.T) {
	// Analyzers never fire in _test.go files, so directives there are
	// dead by construction and must not be judged unused either.
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a_test.go", `package core

//hamslint:allow fake — dead in a test file
var boom int
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := types.NewPackage("hams/internal/core", "core")
	findings, err := RunPackage(fset, []*ast.File{f}, pkg, &types.Info{}, "hams", []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	// The fake analyzer itself does not skip test files (real
	// analyzers do via SourceFiles), so "boom sighted" still appears —
	// but no unused-directive finding may.
	for _, fd := range findings {
		if strings.Contains(fd.Message, "unused hamslint:allow") {
			t.Errorf("test-file directive judged unused: %v", fd)
		}
	}
}
