package validatefirst_test

import (
	"testing"

	"hams/internal/analysis/analysistest"
	"hams/internal/analysis/validatefirst"
)

func TestValidateFirst(t *testing.T) {
	analysistest.Run(t, validatefirst.Analyzer,
		"hams/cmd/tool",     // positives, good orderings, closure carve-out, suppression
		"hams/internal/api", // scope negative: library packages stay silent
	)
}
