// Package validatefirst enforces the repo's CLI/API convention: every
// flag and spec validation error exits 2 (or returns field errors)
// before any file is created or any simulation work starts. A binary
// that truncates its output file and then rejects a flag leaves debris
// behind; a binary that simulates for a minute before noticing a typo
// wastes it. PR 5 retrofitted exactly this into hamssim/hamstrace
// ("workload validated before truncating output files"); this analyzer
// keeps the convention from regressing.
//
// Scope: functions in cmd/* main packages. Within any function that
// performs validation (a call whose name starts or ends with
// "Validate", or RenderFlagErrors — the convention's error renderer),
// no file-creating or engine-starting call may appear earlier in the
// source than the function's last validation call. Calls inside nested
// function literals are ignored (they run later, after validation).
package validatefirst

import (
	"go/ast"
	"go/token"
	"strings"

	"hams/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "validatefirst",
	Doc: "in cmd/ mains, flags file creation or engine starts that are " +
		"reachable before the last Validate/flag-check call",
	Run: run,
}

// sideEffects maps package path → function names that create files or
// start simulation work.
var sideEffects = map[string]map[string]bool{
	"os": {
		"Create": true, "OpenFile": true, "WriteFile": true,
		"Mkdir": true, "MkdirAll": true, "Truncate": true,
	},
	"hams/internal/experiments": {
		"RunOne": true, "RunTarget": true, "RunScenarios": true,
	},
	"hams/internal/api":    {"Execute": true},
	"hams/internal/replay": {"Run": true, "Warmup": true},
}

func run(pass *analysis.Pass) error {
	if !analysis.CommandMain(pass.RelPath()) || pass.Pkg.Name() != "main" {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

type siteKind int

const (
	kindValidate siteKind = iota
	kindSideEffect
)

type site struct {
	kind siteKind
	pos  token.Pos
	name string
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var sites []site
	// Walk the function body, skipping nested function literals:
	// a closure handed to the engine runs after validation by
	// construction.
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := validationCall(pass, call); ok {
				sites = append(sites, site{kindValidate, call.Pos(), name})
			} else if name, ok := sideEffectCall(pass, call); ok {
				sites = append(sites, site{kindSideEffect, call.Pos(), name})
			}
			return true
		})
	}
	walk(fd.Body)

	var lastValidate token.Pos
	for _, s := range sites {
		if s.kind == kindValidate && s.pos > lastValidate {
			lastValidate = s.pos
		}
	}
	if lastValidate == token.NoPos {
		return // function does no validation; nothing to order against
	}
	for _, s := range sites {
		if s.kind == kindSideEffect && s.pos < lastValidate {
			pass.Reportf(s.pos, "%s called before the last validation call in %s: validation errors must exit 2 before any file is created or simulation starts; hoist the checks above this call",
				s.name, fd.Name.Name)
		}
	}
}

// validationCall recognizes the convention's validation surface:
// api.Validate, qos.ValidateSchedule, spec builders' Validate methods,
// and RenderFlagErrors (only ever called on a validation failure).
func validationCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	name := calleeName(call)
	if name == "" {
		return "", false
	}
	if strings.HasPrefix(name, "Validate") || strings.HasSuffix(name, "Validate") || name == "RenderFlagErrors" {
		return name, true
	}
	return "", false
}

func sideEffectCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	names := sideEffects[normalizePath(pass, fn.Pkg().Path())]
	if names == nil || !names[fn.Name()] {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

// normalizePath maps the package path into the "hams/…" namespace the
// sideEffects table uses, so the analyzer works unchanged inside the
// smoke-test fixture modules (module smoke → smoke/internal/api).
func normalizePath(pass *analysis.Pass, path string) string {
	if rest, ok := strings.CutPrefix(path, pass.Module+"/"); ok {
		return "hams/" + rest
	}
	return path
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
