// Stub of the engine entry points for the validatefirst fixtures.
package experiments

type Options struct{ Scale float64 }

func RunOne(o Options, platform, workload string) error { return nil }

func RunTarget(o Options, name string) error { return nil }
