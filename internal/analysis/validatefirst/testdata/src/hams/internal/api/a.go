// Scope-negative fixture: validatefirst only governs cmd/ mains; a
// library package ordering a create before a validate is its own
// design decision.
package api

import "os"

type Spec struct{ Out string }

func Validate(s Spec) error { return nil }

func Materialize(s Spec) error {
	f, err := os.Create(s.Out)
	if err != nil {
		return err
	}
	defer f.Close()
	return Validate(s)
}
