// Fixtures for validatefirst: cmd/ mains must finish all validation
// (exit 2) before creating files or starting simulation work.
package main

import (
	"os"

	"hams/internal/experiments"
)

type spec struct{ out string }

func Validate(s spec) error { return nil }

func main() {}

// Violations: side effects reachable before the last validation call.

func realMainCreatesEarly(s spec) int {
	f, err := os.Create(s.out) // want `os.Create called before the last validation call in realMainCreatesEarly`
	if err != nil {
		return 1
	}
	defer f.Close()
	if err := Validate(s); err != nil {
		return 2
	}
	return 0
}

func realMainRunsEarly(s spec) int {
	if err := experiments.RunOne(experiments.Options{}, "hams-LE", "bfs"); err != nil { // want `experiments.RunOne called before the last validation call in realMainRunsEarly`
		return 1
	}
	if err := Validate(s); err != nil {
		return 2
	}
	return 0
}

// Convention-following shapes: accepted.

func realMainGood(s spec) int {
	if err := Validate(s); err != nil {
		return 2
	}
	f, err := os.Create(s.out)
	if err != nil {
		return 1
	}
	defer f.Close()
	return runGood(s)
}

func runGood(s spec) int {
	if err := experiments.RunTarget(experiments.Options{}, "all"); err != nil {
		return 1
	}
	return 0
}

// A closure handed onward runs after validation by construction; its
// body is not ordered against the enclosing function's checks.
func realMainClosure(s spec) (int, func() error) {
	work := func() error {
		_, err := os.Create(s.out)
		return err
	}
	if err := Validate(s); err != nil {
		return 2, nil
	}
	return 0, work
}

// Suppression round-trip: an intentional early create (e.g. probing
// writability is the validation) is documented in place.
func realMainProbe(s spec) int {
	//hamslint:allow validatefirst — the create IS the validation: probing output writability before work
	f, err := os.Create(s.out)
	if err != nil {
		return 2
	}
	f.Close()
	if err := Validate(s); err != nil {
		return 2
	}
	return 0
}
