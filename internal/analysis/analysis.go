// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough framework to express the
// repo's standing contracts (determinism, wire safety, validate-first,
// the simulated/host stats split) as independent analyzers and drive
// them from `go vet -vettool=hamslint`.
//
// The x/tools module is deliberately not vendored — the container
// builds offline — so the Analyzer/Pass/Diagnostic surface below
// mirrors the upstream names and semantics closely enough that a
// future migration is mechanical: an Analyzer is a named Run function
// over a type-checked package, reporting position-anchored
// diagnostics.
//
// Framework-level policy (shared by every analyzer, applied by Run in
// run.go rather than per-analyzer):
//
//   - Test files (*_test.go) are exempt. The contracts govern what
//     the simulator produces, not how tests probe it.
//   - A finding may be suppressed by an adjacent
//     `//hamslint:allow <analyzer> — <reason>` comment; the reason is
//     mandatory and unused suppressions are themselves findings (see
//     suppress.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// An Analyzer describes one checker: a name (used in diagnostics and
// suppression comments), a doc string, and a Run function invoked once
// per type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //hamslint:allow comments. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of what the analyzer
	// enforces and why.
	Doc string

	// Run inspects one package via the Pass and reports findings
	// through pass.Report. The error return is for operational
	// failures (never for findings).
	Run func(pass *Pass) error
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Module is the module path the package belongs to ("hams" for
	// this repo). Scope decisions are module-relative so the same
	// analyzers work unchanged on the smoke-test fixture modules.
	Module string

	// Report delivers one finding. The driver owns suppression
	// filtering; analyzers always report.
	Report func(Diagnostic)
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// RelPath is the package path relative to the module: "" for the
// module root, "internal/sim" for hams/internal/sim. go vet hands test
// variants paths like "hams/internal/sim [hams/internal/sim.test]" and
// external test packages like "hams/internal/sim_test"; both are
// normalized onto the package under test so scope decisions are
// uniform.
func (p *Pass) RelPath() string {
	return relPath(p.Module, p.Pkg.Path())
}

func relPath(module, pkgPath string) string {
	// "pkg [pkg.test]" → "pkg"
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	pkgPath = strings.TrimSuffix(pkgPath, "_test")
	if pkgPath == module {
		return ""
	}
	if rest, ok := strings.CutPrefix(pkgPath, module+"/"); ok {
		return rest
	}
	// Foreign package (stdlib or another module): return the full
	// path; it will not match any module-relative scope.
	return pkgPath
}

// IsTestFile reports whether the file is a *_test.go file, which every
// analyzer exempts.
func (p *Pass) IsTestFile(f *ast.File) bool {
	name := filepath.Base(p.Fset.Position(f.Package).Filename)
	return strings.HasSuffix(name, "_test.go")
}

// SourceFiles returns the package's non-test files, the analyzers'
// working set.
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !p.IsTestFile(f) {
			out = append(out, f)
		}
	}
	return out
}

// CalleeFunc resolves the called function or method of a call
// expression, or nil if it cannot be determined (e.g. a call through a
// function-typed variable).
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	return fn
}
