package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression policy.
//
// A finding may be silenced by an adjacent comment:
//
//	//hamslint:allow <analyzer> — <reason>
//
// on the same line as the finding or on the line directly above it.
// The separator may be an em dash, "--", or ":"; the reason is
// mandatory — a suppression is a reviewed exception, and the review
// lives in the reason. Malformed suppressions (missing reason, unknown
// analyzer) and suppressions that silence nothing are findings in
// their own right, so dead exceptions cannot accumulate.

const allowPrefix = "hamslint:allow"

// An allowComment is one parsed //hamslint:allow directive.
type allowComment struct {
	pos      token.Pos // of the comment
	line     int       // line the comment sits on
	analyzer string    // analyzer it names
	reason   string    // justification text ("" = malformed)
	used     bool      // did it suppress at least one finding?
}

// parseAllows extracts every hamslint:allow directive from the file.
// Malformed directives are reported immediately via report.
func parseAllows(fset *token.FileSet, f *ast.File, known map[string]bool, report func(Diagnostic)) []*allowComment {
	var out []*allowComment
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			// Directive form only: "//hamslint:allow", no space after
			// "//" — prose that merely mentions the directive (doc
			// comments, quoted examples) must not parse as one.
			if !strings.HasPrefix(c.Text, "//"+allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"+allowPrefix))
			name, reason := splitAllow(rest)
			switch {
			case name == "":
				report(Diagnostic{Pos: c.Pos(), Message: "malformed hamslint:allow: want //hamslint:allow <analyzer> — <reason>"})
				continue
			case !known[name]:
				report(Diagnostic{Pos: c.Pos(), Message: "hamslint:allow names unknown analyzer " + name})
				continue
			case reason == "":
				report(Diagnostic{Pos: c.Pos(), Message: "hamslint:allow " + name + " needs a reason: //hamslint:allow " + name + " — <why this exception is sound>"})
				continue
			}
			out = append(out, &allowComment{
				pos:      c.Pos(),
				line:     fset.Position(c.Pos()).Line,
				analyzer: name,
				reason:   reason,
			})
		}
	}
	return out
}

// splitAllow splits "maporder — reason text" into name and reason,
// accepting "—", "--", or ":" as the separator (or none: first word is
// the name, the rest the reason).
func splitAllow(s string) (name, reason string) {
	name, reason, _ = strings.Cut(s, " ")
	name = strings.TrimSuffix(name, ":") // "maporder: reason" form
	for _, sep := range []string{"—", "--", ":"} {
		reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(reason), sep))
	}
	return name, strings.TrimSpace(reason)
}

// suppressor filters one package's diagnostics through its allow
// directives.
type suppressor struct {
	fset *token.FileSet
	// allows by file token range; matched by position.
	byFile map[*token.File][]*allowComment
}

func newSuppressor(fset *token.FileSet, files []*ast.File, known map[string]bool, report func(Diagnostic)) *suppressor {
	s := &suppressor{fset: fset, byFile: make(map[*token.File][]*allowComment)}
	for _, f := range files {
		tf := fset.File(f.Package)
		if tf == nil {
			continue
		}
		s.byFile[tf] = parseAllows(fset, f, known, report)
	}
	return s
}

// suppressed reports whether a finding from analyzer at pos is covered
// by an allow directive on the same or the preceding line, marking the
// directive used.
func (s *suppressor) suppressed(analyzer string, pos token.Pos) bool {
	tf := s.fset.File(pos)
	if tf == nil {
		return false
	}
	line := s.fset.Position(pos).Line
	hit := false
	for _, a := range s.byFile[tf] {
		if a.analyzer == analyzer && (a.line == line || a.line == line-1) {
			a.used = true
			hit = true
		}
	}
	return hit
}
