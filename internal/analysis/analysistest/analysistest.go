// Package analysistest runs one analyzer over fixture packages under
// testdata/src and checks its findings against `// want "regexp"`
// markers, mirroring golang.org/x/tools/go/analysis/analysistest
// closely enough that fixtures would port unchanged.
//
// Fixture layout (x/tools convention):
//
//	<analyzer>/testdata/src/<import/path>/*.go
//
// The import path is meaningful: hamslint analyzers scope themselves
// by module-relative package path, so a fixture under
// testdata/src/hams/internal/core exercises the determinism scope and
// one under testdata/src/hams/internal/api exercises the allowlist.
//
// Each expected finding is declared on its line:
//
//	for k := range m { // want `range over map`
//
// The marker text is a regular expression matched against the finding
// message; multiple markers on one line expect multiple findings.
// Fixtures may import other fixture packages (resolved under
// testdata/src) and the standard library (type-checked from $GOROOT
// source, so the harness works offline).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hams/internal/analysis"

	// Register the full suite's analyzer names so fixtures may carry
	// suppression comments for sibling analyzers without tripping the
	// unknown-analyzer check.
	_ "hams/internal/analysis/suite"
)

// Module is the module path fixtures are attributed to; scope checks
// are module-relative, so testdata/src/hams/internal/core is treated
// exactly like the real internal/core.
const Module = "hams"

// sharedFset backs every fixture load in the process; the stdlib
// source importer is expensive (it type-checks from $GOROOT/src), so
// one instance is shared.
var (
	sharedFset = token.NewFileSet()
	stdOnce    sync.Once
	stdImp     types.Importer
)

func stdImporter() types.Importer {
	stdOnce.Do(func() { stdImp = importer.ForCompiler(sharedFset, "source", nil) })
	return stdImp
}

// fixtureImporter resolves fixture-local packages from root, falling
// back to the stdlib source importer.
type fixtureImporter struct {
	root  string
	cache map[string]*types.Package
	infos map[string]*loaded
}

type loaded struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		l, err := fi.load(path, dir)
		if err != nil {
			return nil, err
		}
		return l.pkg, nil
	}
	return stdImporter().Import(path)
}

func (fi *fixtureImporter) load(path, dir string) (*loaded, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: fi}
	pkg, err := conf.Check(path, sharedFset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	l := &loaded{files: files, pkg: pkg, info: info}
	fi.cache[path] = pkg
	fi.infos[path] = l
	return l, nil
}

// Run loads each fixture package under testdata/src, runs the analyzer
// through the full driver (suppression policy included), and checks
// findings against the want markers.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	root := filepath.Join("testdata", "src")
	fi := &fixtureImporter{
		root:  root,
		cache: make(map[string]*types.Package),
		infos: make(map[string]*loaded),
	}
	for _, path := range pkgPaths {
		dir := filepath.Join(root, filepath.FromSlash(path))
		l, err := fi.load(path, dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		findings, err := analysis.RunPackage(sharedFset, l.files, l.pkg, l.info, Module, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		check(t, path, l.files, findings)
	}
}

type want struct {
	re   *regexp.Regexp
	text string
	hit  bool
}

// check compares findings against want markers, both keyed by
// file:line.
func check(t *testing.T, pkgPath string, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	wants := make(map[string][]*want) // "file:line" → expectations
	for _, f := range files {
		fname := sharedFset.Position(f.Package).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// "// want `re`" may be a comment of its own or ride
				// at the end of another comment (e.g. after a
				// hamslint:allow directive, whose unused-check finding
				// anchors to the directive's own line).
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				text := strings.TrimSpace(strings.TrimPrefix(c.Text[idx:], "// want"))
				line := sharedFset.Position(c.Pos()).Line
				key := fmt.Sprintf("%s:%d", fname, line)
				for _, pat := range parseWant(t, text) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re, text: pat})
				}
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.hit && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding [%s]: %s", key, f.Analyzer, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s: expected finding matching %q, got none (package %s)", key, w.text, pkgPath)
			}
		}
	}
}

// parseWant extracts the quoted or backquoted patterns from a want
// comment body.
func parseWant(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("unterminated want pattern: %s", s)
			}
			pat, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("bad want pattern %s: %v", s[:end+1], err)
			}
			out = append(out, pat)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("unterminated want pattern: %s", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("bad want pattern start: %s", s)
		}
	}
	return out
}
