package analysis

import "strings"

// DeterministicPackages are the module-relative packages whose output
// must be a pure function of the job spec: every simulated stat they
// produce has to be bit-for-bit identical across worker counts,
// dispatch order, replay, and checkpoint/restore. maporder and
// hostclock enforce their contracts only here.
//
// Deliberately absent:
//
//   - internal/report — the sanctioned host-speed channel (WallNS,
//     HostUnitsPerSec, Created timestamps).
//   - internal/runner — measures per-cell wall time by design; its
//     determinism obligation (DeriveSeed, canonical reassembly) is
//     pinned by parallel goldens, not by these analyzers.
//   - internal/workload, internal/api, internal/bus, … — feed or wrap
//     the engine; their RNGs are seeded per spec and covered by the
//     golden tests.
//   - cmd/* — host-facing binaries (progress output, wall-clock UX).
var DeterministicPackages = []string{
	"internal/sim",
	"internal/core",
	"internal/ftl",
	"internal/mem",
	"internal/nvme",
	"internal/ssd",
	"internal/qos",
	"internal/replay",
	"internal/trace",
	"internal/checkpoint",
	"internal/stats",
	"internal/experiments",
}

// DecoderPackages are the packages that parse attacker-controlled wire
// formats (trace containers, checkpoint images, NVMe command rings);
// wirebound enforces bounds-before-allocation only here.
var DecoderPackages = []string{
	"internal/trace",
	"internal/checkpoint",
	"internal/nvme",
}

// Deterministic reports whether the module-relative package path rel
// (as returned by Pass.RelPath) is inside the determinism scope.
// Subpackages inherit their parent's scope (internal/core/tagstore is
// as determinism-critical as internal/core).
func Deterministic(rel string) bool { return inScope(rel, DeterministicPackages) }

// Decoder reports whether rel is one of the wire-decoder packages.
func Decoder(rel string) bool { return inScope(rel, DecoderPackages) }

// CommandMain reports whether rel is a cmd/ binary package, the scope
// of the validatefirst convention.
func CommandMain(rel string) bool {
	return rel == "cmd" || strings.HasPrefix(rel, "cmd/")
}

func inScope(rel string, pkgs []string) bool {
	for _, p := range pkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}
