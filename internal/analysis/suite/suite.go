// Package suite assembles the hamslint analyzer set. It exists as its
// own package (rather than a list in internal/analysis) so the
// framework does not import its own analyzers.
package suite

import (
	"hams/internal/analysis"
	"hams/internal/analysis/hostclock"
	"hams/internal/analysis/maporder"
	"hams/internal/analysis/statszero"
	"hams/internal/analysis/validatefirst"
	"hams/internal/analysis/wirebound"
)

// Analyzers is the full hamslint suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	maporder.Analyzer,
	hostclock.Analyzer,
	wirebound.Analyzer,
	validatefirst.Analyzer,
	statszero.Analyzer,
}

func init() {
	names := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		names[i] = a.Name
	}
	analysis.RegisterNames(names)
}
