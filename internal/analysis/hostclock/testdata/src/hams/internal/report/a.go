// Scope-negative fixture: hams/internal/report is the sanctioned
// host-speed channel and sits outside the determinism scope — wall
// clock use here is the package's job.
package report

import "time"

func stamp() time.Time { return time.Now().UTC() }

func wall(start time.Time) int64 { return int64(time.Since(start)) }
