// Positive and negative fixtures for hostclock inside the determinism
// scope (hams/internal/sim).
package sim

import (
	crand "crypto/rand"
	"math/rand"
	"os"
	"time"
)

// Config stands in for the spec-derived plumbing seeds must trace to.
type Config struct{ Seed int64 }

// DeriveSeed mirrors runner.DeriveSeed for the fixture.
func DeriveSeed(base int64, key string) int64 { return base ^ int64(len(key)) }

// Host clock: flagged.

func wallClock() int64 {
	t := time.Now() // want `time.Now in determinism-critical package`
	return t.UnixNano()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in determinism-critical package`
}

func ticker() {
	_ = time.NewTicker(time.Second) // want `time.NewTicker in determinism-critical package`
}

// Host entropy: flagged.

func globalRand() int {
	return rand.Intn(10) // want `math/rand.Intn in determinism-critical package`
}

func processID() int {
	return os.Getpid() // want `os.Getpid in determinism-critical package`
}

func cryptoEntropy(b []byte) {
	crand.Read(b) // want `crypto/rand.Read in determinism-critical package`
}

// Seed provenance: a bare constant seed bypasses DeriveSeed.

func literalSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `bare constant seed`
}

// Spec-derived seeds: accepted.

func configSeed(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}

func derivedSeed(base int64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(base, "cell")))
}

func localDerived(cfg Config) *rand.Rand {
	seed := cfg.Seed + 1
	return rand.New(rand.NewSource(seed))
}

// Methods on an explicit Rand are fine anywhere — determinism rides on
// the seed, not the call.
func drawn(rng *rand.Rand) int { return rng.Intn(10) }

// Durations and sim-time arithmetic do not touch the host clock.
func simTime(d time.Duration) time.Duration { return 2 * d }

// Suppression round-trip.

func suppressedWall() int64 {
	//hamslint:allow hostclock — progress logging only; value never reaches a stat
	return time.Now().UnixNano()
}

func unusedSuppression(d time.Duration) time.Duration {
	//hamslint:allow hostclock — nothing on the next line uses the host clock // want `unused hamslint:allow hostclock`
	return 3 * d
}
