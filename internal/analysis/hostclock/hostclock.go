// Package hostclock forbids host time and host entropy inside the
// determinism scope. Simulated results must be a pure function of the
// job spec; the wall clock, the global math/rand source (runtime-seeded
// since Go 1.20), math/rand/v2 (always runtime-seeded), crypto/rand,
// and process identity all leak host state into what should be a
// closed system — the bug class behind PR 4's wall-time-in-stats find.
//
// The sanctioned escapes are structural, not suppressions:
//
//   - internal/report and internal/runner own the host-speed channel
//     (cell wall times, HostUnitsPerSec) and sit outside the scope;
//   - cmd/* binaries are host-facing and sit outside the scope;
//   - explicit RNGs seeded from the job spec — rand.New(
//     rand.NewSource(seed)) where seed traces to runner.DeriveSeed or
//     a config/struct field — are allowed; a bare literal seed is not,
//     because it bypasses the per-cell seed-derivation contract.
package hostclock

import (
	"go/ast"
	"go/types"

	"hams/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hostclock",
	Doc: "forbids time.Now/global math/rand/os.Getpid-style host state in " +
		"determinism-critical packages; RNG seeds must trace to DeriveSeed or a config field",
	Run: run,
}

// forbidden maps package path → function names that leak host state.
// An empty set means every package-level function is forbidden except
// the constructors listed in allowedCtors.
var forbidden = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true,
		"Tick": true, "NewTicker": true, "NewTimer": true,
		"After": true, "AfterFunc": true,
	},
	"os":           {"Getpid": true, "Getppid": true},
	"math/rand":    nil, // global source: runtime-seeded, nondeterministic
	"math/rand/v2": nil,
	"crypto/rand":  nil,
}

// allowedCtors are the explicit-source constructors: deterministic as
// long as their seed is, which seedTraceable checks separately.
var allowedCtors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.Deterministic(pass.RelPath()) {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path, name := fn.Pkg().Path(), fn.Name()
			names, hot := forbidden[path]
			if !hot || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch {
			case names != nil && !names[name]:
				return true
			case names == nil && allowedCtors[name]:
				checkSeed(pass, call)
				return true
			}
			pass.Reportf(call.Pos(), "%s.%s in determinism-critical package %s: results must be a pure function of the job spec; simulated time lives on the sim clock, entropy must derive from the spec seed",
				path, name, pass.Pkg.Path())
			return true
		})
	}
	return nil
}

// checkSeed vets the seed expression of rand.NewSource / rand.NewPCG /
// rand.NewChaCha8. A seed is traceable when it mentions a DeriveSeed
// call, a field or method of some value (config plumbing), or any
// variable — all of which tie it to the job spec upstream. A bare
// constant seed is flagged: per-cell seeds must come through
// runner.DeriveSeed so cells stay decorrelated and replay-stable.
func checkSeed(pass *analysis.Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn.Name() == "New" || fn.Name() == "NewZipf" || len(call.Args) == 0 {
		return // source/seed vetted at its own construction site
	}
	for _, arg := range call.Args {
		if !constantOnly(pass, arg) {
			return
		}
	}
	pass.Reportf(call.Pos(), "%s.%s with a bare constant seed in determinism-critical package %s: derive the seed via runner.DeriveSeed or carry it in a config field",
		fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
}

// constantOnly reports whether the expression is built solely from
// constants — no variables, fields, or calls to trace a spec seed
// through.
func constantOnly(pass *analysis.Pass, e ast.Expr) bool {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		// A named constant reference still counts as constant-only
		// unless it is declared outside this package (config-style
		// exported knobs count as plumbing).
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok && c.Pkg() != nil && c.Pkg() != pass.Pkg {
				return false
			}
		}
		return true
	}
	return false
}
