package hostclock_test

import (
	"testing"

	"hams/internal/analysis/analysistest"
	"hams/internal/analysis/hostclock"
)

func TestHostClock(t *testing.T) {
	analysistest.Run(t, hostclock.Analyzer,
		"hams/internal/sim",    // positives, seed provenance, suppression round-trip
		"hams/internal/report", // allowlisted host-speed channel stays silent
	)
}
