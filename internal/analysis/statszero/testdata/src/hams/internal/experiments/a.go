// Fixtures for statszero: outside internal/report, nothing may write
// the host-speed fields of report.Cell.
package experiments

import "hams/internal/report"

// Violations.

func literalWrite(sim, wall int64) report.Cell {
	return report.Cell{
		Key:    "bfs",
		SimNS:  sim,
		WallNS: wall, // want `report.Cell.WallNS written outside the Recorder path`
	}
}

func fieldWrite(c *report.Cell, unitsPerSec float64) {
	c.HostUnitsPerSec = unitsPerSec // want `report.Cell.HostUnitsPerSec written outside the Recorder path`
}

func valueFieldWrite(c report.Cell) report.Cell {
	c.WallNS = 7 // want `report.Cell.WallNS written outside the Recorder path`
	return c
}

// Negatives: simulated-channel fields are fair game anywhere, and
// host-field *reads* are fine.

func simWrite(c *report.Cell, simNS, units int64) {
	c.SimNS = simNS
	c.Units = units
}

func literalSimOnly(sim int64) report.Cell {
	return report.Cell{Key: "srad", SimNS: sim}
}

func hostRead(c report.Cell) int64 { return c.WallNS }

// A WallNS field on an unrelated type is not report.Cell.
type timing struct{ WallNS int64 }

func otherType(t *timing) { t.WallNS = 1 }

// Suppression round-trip: the runner-engine glue carries a reasoned
// allow; the unused variant below is itself flagged.

func sanctionedGlue(c *report.Cell, wall int64) {
	//hamslint:allow statszero — engine→Recorder glue: the one sanctioned host-channel write
	c.WallNS = wall
}

func cleanButSuppressed(c *report.Cell, simNS int64) {
	//hamslint:allow statszero — stale directive // want `unused hamslint:allow statszero`
	c.SimNS = simNS
}
