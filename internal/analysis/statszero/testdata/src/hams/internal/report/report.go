// Stub of the real report package for the statszero fixtures. The
// analyzer exempts internal/report wholesale — the Recorder path here
// is the one sanctioned writer of the host-speed fields — so the
// writes below are negatives by scope.
package report

type Cell struct {
	Key             string
	SimNS           int64
	Units           int64
	WallNS          int64
	HostUnitsPerSec float64
}

type Recorder struct{ cells []Cell }

func (r *Recorder) Add(c Cell, wallNS int64) {
	c.WallNS = wallNS // exempt: the Recorder path owns the host channel
	if wallNS > 0 {
		c.HostUnitsPerSec = float64(c.Units) / (float64(wallNS) / 1e9)
	}
	r.cells = append(r.cells, c)
}

func Canonical(c Cell) Cell {
	c.WallNS = 0
	c.HostUnitsPerSec = 0
	return c
}
