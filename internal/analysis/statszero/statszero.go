// Package statszero keeps the simulated/host stats split honest.
// report.Cell carries two channels: simulated stats (deterministic,
// byte-compared by the bench gate) and the host-speed channel (WallNS,
// HostUnitsPerSec — volatile by nature, zeroed by Canonical). The
// split only works if host-dependent fields are written in exactly one
// place: the Recorder path inside internal/report (Recorder.Add
// derives HostUnitsPerSec; CanonicalCells zeroes both). Any other
// writer can leak wall-clock noise into a field the gate treats as
// deterministic — PR 2 found exactly this (wall time folded into a
// stats field) at bring-up.
//
// The analyzer flags, outside internal/report, any composite literal
// or field assignment that writes report.Cell.WallNS or
// report.Cell.HostUnitsPerSec. The single sanctioned feed — the
// runner-engine glue that copies the measured runner.Result.Wall into
// the cell on its way into the Recorder — carries an explicit
// hamslint:allow.
package statszero

import (
	"go/ast"
	"go/types"

	"hams/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "statszero",
	Doc: "flags writes to report.Cell host-dependent fields (WallNS, " +
		"HostUnitsPerSec) outside the sanctioned Recorder path",
	Run: run,
}

// hostFields are the report.Cell fields owned by the host-speed
// channel.
var hostFields = map[string]bool{"WallNS": true, "HostUnitsPerSec": true}

func run(pass *analysis.Pass) error {
	// internal/report owns the channel; everywhere else in the
	// module (engine glue, cmd binaries) is checked — the scope is
	// deliberately wider than the determinism list.
	if pass.RelPath() == "internal/report" {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkLiteral(pass, n)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	if !isCell(pass, pass.TypesInfo.TypeOf(lit)) {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !hostFields[key.Name] {
			continue
		}
		pass.Reportf(kv.Pos(), "report.Cell.%s written outside the Recorder path: host-dependent fields are derived in Recorder.Add and zeroed by Canonical; route wall readings through the runner result instead", key.Name)
	}
}

func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || !hostFields[sel.Sel.Name] {
			continue
		}
		if !isCell(pass, pass.TypesInfo.TypeOf(sel.X)) {
			continue
		}
		pass.Reportf(sel.Pos(), "report.Cell.%s written outside the Recorder path: host-dependent fields are derived in Recorder.Add and zeroed by Canonical; route wall readings through the runner result instead", sel.Sel.Name)
	}
}

// isCell reports whether t is report.Cell (or a pointer/alias to it)
// from this module's internal/report package.
func isCell(pass *analysis.Pass, t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Cell" || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pass.Module+"/internal/report"
}
