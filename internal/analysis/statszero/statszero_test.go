package statszero_test

import (
	"testing"

	"hams/internal/analysis/analysistest"
	"hams/internal/analysis/statszero"
)

func TestStatsZero(t *testing.T) {
	analysistest.Run(t, statszero.Analyzer,
		"hams/internal/experiments", // positives, negatives, suppression round-trips
		"hams/internal/report",      // scope negative: the Recorder path is exempt
	)
}
