// Package maporder flags `range` over a map inside the determinism
// scope. Go randomizes map iteration order per run, so any map-order
// dependence there breaks the bit-for-bit contract — the exact bug
// class behind the PR 2 FTL-flush fix (map-order writes during
// ssd.Device Flush/PowerFail produced run-dependent journal layouts).
//
// A range over a map is accepted without a suppression when the loop
// is provably order-insensitive:
//
//   - every statement only writes map/set entries (m[k] = v,
//     delete(m, k)) or commutatively accumulates integers
//     (n += x, n++, n |= x, …) — reordering iterations cannot change
//     the outcome;
//   - or the loop only collects keys/values into a slice that is
//     sorted by the immediately following statement (the canonical
//     collect-then-sort fix idiom).
//
// Everything else needs either a rewrite onto a deterministic order
// or an explicit `//hamslint:allow maporder — <reason>`.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"hams/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map in determinism-critical packages unless the " +
		"loop body is provably order-insensitive or carries a hamslint:allow",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.Deterministic(pass.RelPath()) {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		exempt := sortExempt(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if exempt[rs] || orderInsensitive(pass, rs.Body.List) {
				return true
			}
			pass.Reportf(rs.For, "range over map %s in determinism-critical package %s: iteration order is randomized; iterate a sorted key slice or prove the body order-insensitive",
				render(rs.X), pass.Pkg.Path())
			return true
		})
	}
	return nil
}

func render(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return render(e.X) + "." + e.Sel.Name
	default:
		return "expression"
	}
}

// orderInsensitive reports whether every statement in the body commutes
// across iterations.
func orderInsensitive(pass *analysis.Pass, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !stmtInsensitive(pass, s) {
			return false
		}
	}
	return true
}

func stmtInsensitive(pass *analysis.Pass, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return assignInsensitive(pass, s)
	case *ast.IncDecStmt:
		return isIntLike(pass.TypesInfo.TypeOf(s.X))
	case *ast.ExprStmt:
		// delete(m, k) removes an entry keyed by this iteration;
		// deletions commute.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil || callsFunction(s.Cond) {
			return false
		}
		if !orderInsensitive(pass, s.Body.List) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return orderInsensitive(pass, e.List)
		case *ast.IfStmt:
			return stmtInsensitive(pass, e)
		}
		return false
	case *ast.BlockStmt:
		return orderInsensitive(pass, s.List)
	case *ast.BranchStmt:
		// `continue` skips an iteration; skipping commutes. `break`
		// depends on which iteration came first.
		return s.Tok == token.CONTINUE
	}
	return false
}

// assignInsensitive accepts map/set writes (m[k] = v: each iteration
// owns its key) and commutative integer accumulation (n += x, n |= x,
// n &= x, n ^= x, n *= x — all commutative and associative over
// integers; float accumulation is order-dependent through rounding and
// is rejected).
func assignInsensitive(pass *analysis.Pass, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ASSIGN:
		for _, lhs := range s.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				return false
			}
			t := pass.TypesInfo.TypeOf(ix.X)
			if t == nil {
				return false
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return false
			}
		}
		return true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		return len(s.Lhs) == 1 && isIntLike(pass.TypesInfo.TypeOf(s.Lhs[0]))
	}
	return false
}

func isIntLike(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func callsFunction(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// sortExempt finds map ranges of the collect-then-sort idiom: the body
// only appends to one slice, and the statement immediately after the
// loop sorts that slice.
func sortExempt(pass *analysis.Pass, f *ast.File) map[*ast.RangeStmt]bool {
	exempt := make(map[*ast.RangeStmt]bool)
	scan := func(list []ast.Stmt) {
		for i, s := range list {
			rs, ok := s.(*ast.RangeStmt)
			if !ok || i+1 >= len(list) {
				continue
			}
			slice := appendTarget(pass, rs.Body.List)
			if slice == nil {
				continue
			}
			if sortsSlice(pass, list[i+1], slice) {
				exempt[rs] = true
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			scan(n.List)
		case *ast.CaseClause:
			scan(n.Body)
		case *ast.CommClause:
			scan(n.Body)
		}
		return true
	})
	return exempt
}

// appendTarget returns the variable appended to when the body is
// exactly one `x = append(x, …)` statement, else nil.
func appendTarget(pass *analysis.Pass, body []ast.Stmt) *types.Var {
	if len(body) != 1 {
		return nil
	}
	as, ok := body[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	v, _ := pass.TypesInfo.ObjectOf(lhs).(*types.Var)
	return v
}

// sortsSlice reports whether stmt is a sort call (sort.*, slices.Sort*)
// whose first argument mentions the slice variable.
func sortsSlice(pass *analysis.Pass, stmt ast.Stmt, slice *types.Var) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
	default:
		return false
	}
	mentions := false
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == slice {
			mentions = true
		}
		return !mentions
	})
	return mentions
}
