// Positive and negative fixtures for maporder inside the determinism
// scope (hams/internal/core).
package core

import "sort"

// Order-sensitive bodies: flagged.

func collectWithoutSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m in determinism-critical package`
		keys = append(keys, k)
	}
	return keys
}

func firstError(m map[string]int) string {
	for k, v := range m { // want `range over map m in determinism-critical package`
		if v < 0 {
			return k
		}
	}
	return ""
}

func floatAccumulation(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `range over map m in determinism-critical package`
		total += v // float addition is rounding-order dependent
	}
	return total
}

// Order-insensitive bodies: accepted without suppression.

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func intAccumulation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func counterAndSet(m map[string]int, set map[string]struct{}) int {
	n := 0
	for k, v := range m {
		if v > 0 {
			set[k] = struct{}{}
			n++
		}
	}
	return n
}

func mapToMap(src map[string]int, dst map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func pruneNegative(m map[string]int) {
	for k, v := range m {
		if v < 0 {
			delete(m, k)
		}
	}
}

func continueOnly(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v == 0 {
			continue
		}
		n += v
	}
	return n
}

// Suppression round-trip: the directive silences the finding; an
// unused directive is itself a finding.

func suppressed(m map[string]int) []string {
	var keys []string
	//hamslint:allow maporder — order feeds a set union downstream; proven insensitive in TestUnion
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func unusedDirective(m map[string]int) int {
	total := 0
	//hamslint:allow maporder — nothing here actually trips the analyzer // want `unused hamslint:allow maporder`
	for _, v := range m {
		total += v
	}
	return total
}

// Ranging over slices is always fine.
func sliceRange(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}
