// Scope-negative fixture: hams/internal/api is outside the
// determinism scope, so even a blatantly order-sensitive map range is
// not maporder's business (api error aggregation has its own
// conventions).
package api

func firstKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
