package maporder_test

import (
	"testing"

	"hams/internal/analysis/analysistest"
	"hams/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer,
		"hams/internal/core", // positive + order-insensitive negatives + suppression round-trip
		"hams/internal/api",  // scope negative: out-of-scope package stays silent
	)
}
