// Scope-negative fixture: hams/internal/ftl is not a wire decoder;
// sizing an allocation from a computed count is normal engine work.
package ftl

import "encoding/binary"

func fromComputed(b []byte) []uint64 {
	n := binary.LittleEndian.Uint64(b)
	return make([]uint64, n)
}
