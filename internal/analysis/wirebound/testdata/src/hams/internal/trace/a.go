// Positive and negative fixtures for wirebound in a decoder package
// (hams/internal/trace).
package trace

import "encoding/binary"

const maxCount = 1 << 20

// Dec mirrors the checkpoint decoder's primitive shape.
type Dec struct {
	b   []byte
	off int
}

func (d *Dec) u32() uint32 {
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *Dec) u64() uint64 {
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *Dec) u16() uint16 {
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func checkCount(n uint64) error { return nil }

// Unbounded wire counts sizing allocations: flagged.

func unboundedMake(d *Dec) []uint64 {
	n := d.u64()
	return make([]uint64, n) // want `make sized by wire-read value n with no preceding bounds check`
}

func unboundedMakeDirect(d *Dec) []byte {
	return make([]byte, d.u32()) // want `make sized by wire-read value u32\(\) with no preceding bounds check`
}

func unboundedMap(d *Dec) map[uint64]int {
	n := int(d.u32())
	return make(map[uint64]int, n) // want `make sized by wire-read value n with no preceding bounds check`
}

func unboundedAppendLoop(d *Dec) []uint64 {
	n := d.u64()
	var out []uint64
	for i := uint64(0); i < n; i++ { // want `append loop bounded by wire-read value n with no preceding bounds check`
		out = append(out, d.u64())
	}
	return out
}

// Bounds-checked counts: accepted.

func boundedMake(d *Dec) ([]uint64, bool) {
	n := d.u64()
	if n > maxCount {
		return nil, false
	}
	return make([]uint64, n), true
}

func boundedAgainstLen(d *Dec, buf []byte) []byte {
	n := d.u32()
	if uint64(n) > uint64(len(buf)) {
		return nil
	}
	return make([]byte, n)
}

func checkedByHelper(d *Dec) ([]uint64, error) {
	n := d.u64()
	if err := checkCount(n); err != nil {
		return nil, err
	}
	return make([]uint64, n), nil
}

func boundedAppendLoop(d *Dec) []uint64 {
	n := d.u64()
	if n > maxCount {
		return nil
	}
	out := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.u64())
	}
	return out
}

// 16-bit reads are intrinsically bounded (≤ 64 KiB): accepted.
func shortLabel(d *Dec) []byte {
	n := int(d.u16())
	return make([]byte, n)
}

// Constant-sized allocations never depend on the wire.
func fixedHeader() []byte { return make([]byte, 32) }

// Suppression round-trip.

func suppressedMake(d *Dec) []uint64 {
	n := d.u64()
	//hamslint:allow wirebound — caller mmaps the file; n is bounded by the file size upstream
	return make([]uint64, n)
}
