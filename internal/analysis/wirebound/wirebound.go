// Package wirebound enforces bounds-before-allocation in the wire
// decoders (trace containers, checkpoint images, NVMe rings). An
// integer read off the wire is attacker-controlled; sizing an
// allocation or an append loop with it before comparing it against a
// bound lets a 12-byte file demand gigabytes — the exact class behind
// PR 3's unbounded access-count OOM and the reason PR 9's checkpoint
// sections are bounds-checked.
//
// The analysis is function-local taint tracking:
//
//   - sources: 32/64-bit wire reads — binary.*Endian.Uint32/Uint64,
//     binary.ReadUvarint/ReadVarint, and the repo's Dec.U32/U64/
//     I64 primitives. 8/16-bit reads are intrinsically bounded
//     (≤ 64 KiB) and are not sources. Dec.Count/CountSized take an
//     explicit max and are the sanctioned bounded read.
//   - propagation: through assignments, conversions, and arithmetic.
//   - sanitizers: a comparison of the tainted value against a
//     constant, len/cap, or another untainted bound, before the use;
//     or passing it to a checker function (name contains Check/Valid/
//     Bound/Limit).
//   - sinks: make(len/cap), and `for i := …; i < n` loops whose body
//     appends.
package wirebound

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"hams/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wirebound",
	Doc: "flags allocations and append loops sized by a wire-read integer " +
		"that was never compared against a bound",
	Run: run,
}

// sourceName matches decoder primitives that yield an unbounded 32/64
// bit integer straight off the wire.
var sourceName = regexp.MustCompile(`^(Uint32|Uint64|U32|U64|I64|ReadUvarint|ReadVarint|readU32|readU64|u32|u64|i64)$`)

// checkerName matches helper functions whose job is validating a
// count; passing a tainted value through one sanitizes it.
var checkerName = regexp.MustCompile(`(?i)(check|valid|bound|limit|clamp)`)

func run(pass *analysis.Pass) error {
	if !analysis.Decoder(pass.RelPath()) {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// taintState tracks, per variable object, where it became tainted and
// where (if anywhere) it was sanitized.
type taintState struct {
	pass      *analysis.Pass
	tainted   map[*types.Var]token.Pos // first tainting position
	sanitized map[*types.Var]token.Pos // first sanitizing position
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	st := &taintState{
		pass:      pass,
		tainted:   make(map[*types.Var]token.Pos),
		sanitized: make(map[*types.Var]token.Pos),
	}

	// Pass 1: propagate taint through assignments to a fixed point
	// (covers n := d.U64(); m := int(n); …), then record sanitizing
	// comparisons.
	for {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			if !st.exprTainted(as.Rhs[0]) {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v, ok := st.pass.TypesInfo.ObjectOf(id).(*types.Var); ok && isIntLike(v.Type()) {
						if _, seen := st.tainted[v]; !seen {
							st.tainted[v] = as.Pos()
							changed = true
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			st.recordComparison(n)
		case *ast.CallExpr:
			st.recordCheckerCall(n)
		}
		return true
	})

	// Pass 2: flag sinks.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			st.checkMake(n)
		case *ast.ForStmt:
			st.checkAppendLoop(n)
		}
		return true
	})
}

// exprTainted reports whether the expression contains a wire-read call
// or a tainted variable.
func (st *taintState) exprTainted(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if st.isSource(n) {
				found = true
				return false
			}
		case *ast.Ident:
			if v, ok := st.pass.TypesInfo.ObjectOf(n).(*types.Var); ok {
				if _, t := st.tainted[v]; t {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func (st *taintState) isSource(call *ast.CallExpr) bool {
	fn := st.pass.CalleeFunc(call)
	if fn == nil {
		return false
	}
	return sourceName.MatchString(fn.Name())
}

// varsIn collects the tainted variables mentioned in e.
func (st *taintState) varsIn(e ast.Expr) []*types.Var {
	var out []*types.Var
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := st.pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
				if _, t := st.tainted[v]; t {
					out = append(out, v)
				}
			}
		}
		return true
	})
	return out
}

// recordComparison sanitizes tainted variables compared against a
// bound: the other operand must be constant, len/cap, or untainted —
// `i < n` with i a fresh loop counter does not bound n.
func (st *taintState) recordComparison(b *ast.BinaryExpr) {
	switch b.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	st.sanitizeAgainst(b.X, b.Y)
	st.sanitizeAgainst(b.Y, b.X)
}

func (st *taintState) sanitizeAgainst(val, bound ast.Expr) {
	vars := st.varsIn(val)
	if len(vars) == 0 {
		return
	}
	if !st.isBound(bound) {
		return
	}
	for _, v := range vars {
		if _, ok := st.sanitized[v]; !ok {
			st.sanitized[v] = val.Pos()
		}
	}
}

// isBound reports whether the comparison operand is a legitimate
// limit: a constant expression, a len/cap call, or any expression free
// of tainted variables and of fresh loop counters. The conservative
// carve-out: a bare untainted *local integer variable* like a loop
// index does not count, because `i < n` is iteration, not validation —
// unless it is itself compared to something constant elsewhere (then n
// inherits nothing anyway).
func (st *taintState) isBound(e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := st.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true // constant or named constant
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			return true
		}
		// uint64(len(buf)) and friends
		for _, a := range e.Args {
			if st.isBound(a) {
				return true
			}
		}
		return false
	case *ast.SelectorExpr:
		// A field limit (d.max, cfg.MaxSections) is a bound.
		return len(st.varsIn(e)) == 0
	case *ast.BinaryExpr:
		return st.isBound(e.X) && st.isBound(e.Y)
	}
	return false
}

// recordCheckerCall sanitizes variables passed to validation helpers.
func (st *taintState) recordCheckerCall(call *ast.CallExpr) {
	fn := st.pass.CalleeFunc(call)
	if fn == nil || !checkerName.MatchString(fn.Name()) {
		return
	}
	for _, a := range call.Args {
		for _, v := range st.varsIn(a) {
			if _, ok := st.sanitized[v]; !ok {
				st.sanitized[v] = call.Pos()
			}
		}
	}
}

// unguardedAt reports whether e mentions a tainted variable with no
// sanitizer before pos, or is itself a direct wire-read call.
func (st *taintState) unguardedAt(e ast.Expr, pos token.Pos) (string, bool) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && st.isSource(call) {
		if fn := st.pass.CalleeFunc(call); fn != nil {
			return fn.Name() + "()", true
		}
	}
	for _, v := range st.varsIn(e) {
		if sp, ok := st.sanitized[v]; !ok || sp > pos {
			return v.Name(), true
		}
	}
	return "", false
}

func (st *taintState) checkMake(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return
	}
	if b, ok := st.pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return
	}
	for _, arg := range call.Args[1:] { // len and cap positions
		if name, bad := st.unguardedAt(arg, call.Pos()); bad {
			st.pass.Reportf(call.Pos(), "make sized by wire-read value %s with no preceding bounds check: a hostile input can demand an arbitrary allocation; compare against a limit first (see Dec.Count)", name)
			return
		}
	}
}

// checkAppendLoop flags `for i := 0; i < n; i++ { … append … }` with a
// tainted, unsanitized n — the PR 3 OOM shape.
func (st *taintState) checkAppendLoop(fs *ast.ForStmt) {
	cond, ok := fs.Cond.(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch cond.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
	default:
		return
	}
	hasAppend := false
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if b, ok := st.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					hasAppend = true
				}
			}
		}
		return !hasAppend
	})
	if !hasAppend {
		return
	}
	for _, side := range []ast.Expr{cond.X, cond.Y} {
		for _, v := range st.varsIn(side) {
			if sp, ok := st.sanitized[v]; !ok || sp > fs.Pos() {
				st.pass.Reportf(fs.For, "append loop bounded by wire-read value %s with no preceding bounds check: a hostile count can grow the slice without limit; validate %s against a bound first", v.Name(), v.Name())
				return
			}
		}
	}
}

func isIntLike(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
