package wirebound_test

import (
	"testing"

	"hams/internal/analysis/analysistest"
	"hams/internal/analysis/wirebound"
)

func TestWireBound(t *testing.T) {
	analysistest.Run(t, wirebound.Analyzer,
		"hams/internal/trace", // positives, bounded negatives, suppression round-trip
		"hams/internal/ftl",   // scope negative: non-decoder package stays silent
	)
}
