package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Finding is one post-suppression diagnostic attributed to its
// analyzer — the unit the driver prints and CI gates on.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// driverName attributes framework-level findings (malformed or unused
// suppressions) in output and fixtures.
const driverName = "hamslint"

// RunPackage runs the analyzers over one type-checked package,
// applies the suppression policy, and returns the surviving findings
// sorted by position. module is the package's module path ("hams").
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, module string, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
		ran[a.Name] = true
	}
	// The directive grammar is checked against the full suite so a
	// single-analyzer run (analysistest) never misreads a sibling's
	// directive as unknown.
	for _, a := range AllNames() {
		known[a] = true
	}

	var findings []Finding
	collect := func(name string) func(Diagnostic) {
		return func(d Diagnostic) {
			findings = append(findings, Finding{Analyzer: name, Pos: fset.Position(d.Pos), Message: d.Message})
		}
	}

	// Suppression directives live in non-test files only (analyzers
	// never fire in test files, so a test-file directive is dead by
	// construction).
	var srcFiles []*ast.File
	probe := &Pass{Fset: fset, Files: files}
	for _, f := range files {
		if !probe.IsTestFile(f) {
			srcFiles = append(srcFiles, f)
		}
	}
	sup := newSuppressor(fset, srcFiles, known, collect(driverName))

	for _, a := range analyzers {
		report := collect(a.Name)
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Module:    module,
			Report: func(d Diagnostic) {
				if !sup.suppressed(a.Name, d.Pos) {
					report(d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path(), a.Name, err)
		}
	}

	// Only directives for analyzers that actually ran can be judged
	// unused; a partial run (one analyzer under analysistest) must
	// not condemn its siblings' directives.
	sup.unusedAmong(ran, collect(driverName))

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// allNames is populated by the suite package at init time so the
// suppression grammar knows the full analyzer vocabulary even when
// only a subset runs.
var allNames []string

// RegisterNames records the full suite's analyzer names (called once
// by the suite package).
func RegisterNames(names []string) { allNames = names }

// AllNames returns the registered suite analyzer names.
func AllNames() []string { return allNames }

// unusedAmong reports unused directives restricted to analyzers in ran.
func (s *suppressor) unusedAmong(ran map[string]bool, report func(Diagnostic)) {
	for _, allows := range s.byFile {
		for _, a := range allows {
			if !a.used && ran[a.analyzer] {
				report(Diagnostic{Pos: a.pos, Message: "unused hamslint:allow " + a.analyzer + ": nothing on this or the next line trips the analyzer; delete the comment"})
			}
		}
	}
}
