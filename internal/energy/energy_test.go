package energy

import (
	"testing"

	"hams/internal/dram"
	"hams/internal/flash"
	"hams/internal/sim"
)

func TestComputeComponentsPositive(t *testing.T) {
	p := DefaultParams()
	in := Inputs{
		Elapsed: sim.Second,
		Cores:   4,
		CPUBusy: 2 * sim.Second,
		DRAM:    dram.Stats{RowMisses: 1000, BytesRead: 1 << 20, BytesWrite: 1 << 20},
		Flash:   flash.Stats{Reads: 100, Programs: 50, Erases: 2},
	}
	b := Compute(p, in)
	if b.CPU <= 0 || b.NVDIMM <= 0 || b.ZNAND <= 0 {
		t.Fatalf("non-positive components: %+v", b)
	}
	if b.InternalDRAM != 0 {
		t.Fatal("no internal DRAM requested")
	}
	in.HasIntDRAM = true
	b2 := Compute(p, in)
	if b2.InternalDRAM <= 0 {
		t.Fatal("internal DRAM energy missing")
	}
	if b2.Total() <= b.Total() {
		t.Fatal("internal DRAM must add energy")
	}
}

func TestIdleEnergyChargedWhenCoresWait(t *testing.T) {
	p := DefaultParams()
	busy := Compute(p, Inputs{Elapsed: sim.Second, Cores: 4, CPUBusy: 4 * sim.Second})
	idle := Compute(p, Inputs{Elapsed: sim.Second, Cores: 4, CPUBusy: 0})
	if idle.CPU >= busy.CPU {
		t.Fatalf("idle CPU energy (%f) must be below busy (%f)", idle.CPU, busy.CPU)
	}
	if idle.CPU <= 0 {
		t.Fatal("idle cores still draw power")
	}
}

func TestIdleClampNonNegative(t *testing.T) {
	p := DefaultParams()
	// CPUBusy exceeding Cores*Elapsed must not produce negative idle.
	b := Compute(p, Inputs{Elapsed: sim.Second, Cores: 1, CPUBusy: 5 * sim.Second})
	if b.CPU < p.CPUBusyW*5 {
		t.Fatalf("CPU energy %f below busy floor", b.CPU)
	}
}

func TestMoreFlashOpsMoreEnergy(t *testing.T) {
	p := DefaultParams()
	small := Compute(p, Inputs{Elapsed: sim.Second, Flash: flash.Stats{Programs: 10}})
	big := Compute(p, Inputs{Elapsed: sim.Second, Flash: flash.Stats{Programs: 1000}})
	if big.ZNAND <= small.ZNAND {
		t.Fatal("program energy not accumulating")
	}
}

func TestBreakdownAddAndTotal(t *testing.T) {
	a := Breakdown{CPU: 1, NVDIMM: 2, InternalDRAM: 3, ZNAND: 4}
	b := Breakdown{CPU: 10, NVDIMM: 20, InternalDRAM: 30, ZNAND: 40}
	a.Add(b)
	if a.Total() != 110 {
		t.Fatalf("Total = %f", a.Total())
	}
}

func TestInternalDRAMPowerIs17PercentOverFlashComplex(t *testing.T) {
	p := DefaultParams()
	if p.InternalDRAMW <= 2.0 || p.InternalDRAMW > 2.35 {
		t.Fatalf("InternalDRAMW = %f, want ~2.0*1.17", p.InternalDRAMW)
	}
}
