// Package energy implements the component-level energy accounting of
// §VI-A: CPU and cache energy in the McPAT style (busy/idle power ×
// time), NVDIMM/DRAM energy from per-access and background terms in
// the MICRON power-calculator style, SSD-internal DRAM background
// power (the paper: the internal DRAM draws 17 % more power than a
// 32-chip flash complex), and Z-NAND per-operation energies derived
// from datasheet numbers.
package energy

import (
	"hams/internal/dram"
	"hams/internal/flash"
	"hams/internal/sim"
)

// Params carries the power/energy coefficients.
type Params struct {
	// CPU (per core).
	CPUBusyW float64
	CPUIdleW float64

	// DRAM / NVDIMM.
	DRAMActivatePJ float64 // per row activation (miss)
	DRAMRWPJPerB   float64 // per byte transferred
	DRAMBackgndW   float64 // per module background

	// SSD-internal DRAM (when present).
	InternalDRAMW float64

	// Z-NAND / flash per-op energies.
	FlashReadUJ  float64
	FlashProgUJ  float64
	FlashEraseUJ float64
	FlashIdleW   float64
}

// DefaultParams returns coefficients consistent with the paper's
// sources (McPAT for a 2 GHz quad-core, MICRON TN-40-07 for DDR4,
// Z-NAND ISSCC numbers for flash).
func DefaultParams() Params {
	flashComplexW := 2.0 // 32-chip complex ballpark idle+active mix
	return Params{
		CPUBusyW:       4.0,
		CPUIdleW:       1.2,
		DRAMActivatePJ: 350,
		DRAMRWPJPerB:   25,
		DRAMBackgndW:   1.5,
		InternalDRAMW:  flashComplexW * 1.17, // +17% over the flash complex
		FlashReadUJ:    8,
		FlashProgUJ:    45,
		FlashEraseUJ:   120,
		FlashIdleW:     0.4,
	}
}

// Breakdown is the Fig. 19 decomposition, in joules.
type Breakdown struct {
	CPU          float64
	NVDIMM       float64 // system memory (DRAM or NVDIMM)
	InternalDRAM float64
	ZNAND        float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.CPU + b.NVDIMM + b.InternalDRAM + b.ZNAND
}

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.CPU += o.CPU
	b.NVDIMM += o.NVDIMM
	b.InternalDRAM += o.InternalDRAM
	b.ZNAND += o.ZNAND
}

// Inputs gathers the activity counters of one run.
type Inputs struct {
	Elapsed    sim.Time
	Cores      int
	CPUBusy    sim.Time // summed busy time across cores
	DRAM       dram.Stats
	Flash      flash.Stats
	HasIntDRAM bool
}

// Compute converts activity into joules.
func Compute(p Params, in Inputs) Breakdown {
	var b Breakdown
	secs := in.Elapsed.Seconds()
	busySecs := in.CPUBusy.Seconds()
	idleSecs := float64(in.Cores)*secs - busySecs
	if idleSecs < 0 {
		idleSecs = 0
	}
	b.CPU = p.CPUBusyW*busySecs + p.CPUIdleW*idleSecs

	activations := float64(in.DRAM.RowMisses)
	bytes := float64(in.DRAM.BytesRead + in.DRAM.BytesWrite)
	b.NVDIMM = activations*p.DRAMActivatePJ*1e-12 +
		bytes*p.DRAMRWPJPerB*1e-12 +
		p.DRAMBackgndW*secs

	if in.HasIntDRAM {
		b.InternalDRAM = p.InternalDRAMW * secs
	}

	b.ZNAND = float64(in.Flash.Reads)*p.FlashReadUJ*1e-6 +
		float64(in.Flash.Programs)*p.FlashProgUJ*1e-6 +
		float64(in.Flash.Erases)*p.FlashEraseUJ*1e-6 +
		p.FlashIdleW*secs
	return b
}
