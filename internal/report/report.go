// Package report serializes experiment runs into versioned
// BENCH_<name>.json artifacts and diffs two artifacts for per-cell
// performance regressions. The schema is documented in EXPERIMENTS.md;
// CI commits a baseline artifact and fails the build when a cell's
// simulated throughput drops beyond a threshold.
package report

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"
)

// SchemaVersion identifies the artifact layout; Compare refuses to
// diff artifacts across schema versions.
const SchemaVersion = 1

// Cell is the per-cell record of an artifact: one (platform, workload,
// config) point of one target, with its simulated metrics and host
// cost.
type Cell struct {
	// Key is the cell's stable identity ("<target>/<cell path>");
	// Compare matches cells across artifacts by Key.
	Key      string `json:"key"`
	Target   string `json:"target"`
	Platform string `json:"platform,omitempty"`
	Workload string `json:"workload,omitempty"`
	// Scenario names the multi-tenant mix for `mixed` cells; per-tenant
	// latency percentiles ride in Extra (see EXPERIMENTS.md).
	Scenario string `json:"scenario,omitempty"`
	// WallNS is host wall time spent producing the cell. It is
	// nondeterministic and is zeroed by Canonical.
	WallNS int64 `json:"wall_ns"`
	// HostUnitsPerSec is host-side throughput — work items per second
	// of wall clock (Units / WallNS). It measures the simulator, not
	// the simulated system, and is gated separately by `hamsbench
	// compare -host-threshold` with a loose, regression-only bar.
	// Nondeterministic; zeroed by Canonical. Only meaningful for
	// hermetic cells (serial runs, Workers == 1): under parallel
	// workers the wall times are contended and incomparable.
	HostUnitsPerSec float64 `json:"host_units_per_sec,omitempty"`
	// SimNS is the simulated elapsed time of the run.
	SimNS int64 `json:"sim_ns,omitempty"`
	// Units and UnitsPerSec are work items (pages or SQL ops) and
	// simulated throughput; UnitsPerSec is what Compare gates on.
	Units       int64   `json:"units,omitempty"`
	UnitsPerSec float64 `json:"units_per_sec,omitempty"`
	HitRate     float64 `json:"hit_rate,omitempty"`
	EnergyJ     float64 `json:"energy_j,omitempty"`
	// Extra carries target-specific metrics (e.g. Fig. 5 latency).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Artifact is one serialized harness invocation.
type Artifact struct {
	Schema  int       `json:"schema"`
	Name    string    `json:"name"`
	GitRev  string    `json:"git_rev,omitempty"`
	Created time.Time `json:"created_at,omitempty"`
	Scale   float64   `json:"scale"`
	Seed    int64     `json:"seed"`
	Workers int       `json:"workers,omitempty"`
	Cells   []Cell    `json:"cells"`
}

// Canonical returns a copy with every volatile field zeroed: creation
// time, git revision, worker count, and per-cell host wall times. Two
// runs of the same code at the same scale/seed must produce identical
// Canonical artifacts regardless of parallelism — the determinism
// tests compare these bytes.
func (a Artifact) Canonical() Artifact {
	a.Created = time.Time{}
	a.GitRev = ""
	a.Workers = 0
	cells := make([]Cell, len(a.Cells))
	copy(cells, a.Cells)
	for i := range cells {
		cells[i].WallNS = 0
		cells[i].HostUnitsPerSec = 0
	}
	a.Cells = cells
	return a
}

// CanonicalJSON renders the canonical form for byte comparison.
func (a Artifact) CanonicalJSON() ([]byte, error) {
	return json.MarshalIndent(a.Canonical(), "", "  ")
}

// GitRev reports the VCS revision baked into the binary, or "" when
// built without VCS stamping (e.g. go test).
func GitRev() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	rev, modified := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if rev != "" && modified {
		rev += "+dirty"
	}
	return rev
}

// Recorder collects cells from concurrent targets; the engine appends
// results in canonical order, so a Recorder filled from sequential
// target runs is deterministic.
type Recorder struct {
	mu    sync.Mutex
	cells []Cell
}

// Add appends one cell record, deriving the host-throughput channel
// from the cell's wall time and unit count.
func (r *Recorder) Add(c Cell) {
	if c.WallNS > 0 && c.Units > 0 && c.HostUnitsPerSec == 0 {
		c.HostUnitsPerSec = float64(c.Units) / (float64(c.WallNS) / 1e9)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cells = append(r.cells, c)
}

// Len reports how many cells have been recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cells)
}

// Cells returns a copy of the recorded cells in record order.
func (r *Recorder) Cells() []Cell {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Cell, len(r.cells))
	copy(out, r.cells)
	return out
}

// CanonicalCells returns a copy of cells with the volatile host-side
// fields zeroed, the per-cell analogue of Artifact.Canonical: two runs
// of the same configuration must produce byte-identical canonical cell
// sets regardless of host timing or how the cells were submitted (CLI
// flags vs the job API) — the parity contract the api tests pin.
func CanonicalCells(cells []Cell) []Cell {
	out := make([]Cell, len(cells))
	copy(out, cells)
	for i := range out {
		out[i].WallNS = 0
		out[i].HostUnitsPerSec = 0
	}
	return out
}

// Artifact assembles the recorded cells into an artifact.
func (r *Recorder) Artifact(name string, scale float64, seed int64, workers int) Artifact {
	r.mu.Lock()
	cells := make([]Cell, len(r.cells))
	copy(cells, r.cells)
	r.mu.Unlock()
	return Artifact{
		Schema:  SchemaVersion,
		Name:    name,
		GitRev:  GitRev(),
		Created: time.Now().UTC(),
		Scale:   scale,
		Seed:    seed,
		Workers: workers,
		Cells:   cells,
	}
}

// WriteFile serializes an artifact to path.
func WriteFile(path string, a Artifact) error {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads an artifact from path.
func Load(path string) (Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Artifact{}, err
	}
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil {
		return Artifact{}, fmt.Errorf("report: %s: %w", path, err)
	}
	return a, nil
}

// Regression is one cell whose throughput dropped beyond the
// threshold, or that disappeared from the new artifact.
type Regression struct {
	Key     string
	Base    float64 // baseline units/sec
	New     float64 // new units/sec; 0 with Missing set
	Delta   float64 // fractional drop, (Base-New)/Base
	Missing bool    // cell present in base but absent from new
}

func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%s: cell missing from new artifact (base %.1f units/s)", r.Key, r.Base)
	}
	return fmt.Sprintf("%s: %.1f -> %.1f units/s (-%.1f%%)", r.Key, r.Base, r.New, r.Delta*100)
}

// Delta is one cell's base-vs-new throughput comparison.
type Delta struct {
	Key  string
	Base float64 // baseline units/sec
	New  float64 // new units/sec; 0 with Missing set
	// Drop is the fractional throughput drop, (Base-New)/Base:
	// positive means the new artifact is slower.
	Drop    float64
	Missing bool // cell present in base but absent from new
}

// Deltas diffs two artifacts cell-by-cell, returning one row per
// baseline cell with throughput, sorted by key. Cells without
// throughput (static tables, latency-only panels) are skipped.
// Comparing different scales, seeds, or schema versions is an error —
// the throughputs would not be commensurable.
func Deltas(base, cur Artifact) ([]Delta, error) {
	if base.Schema != cur.Schema {
		return nil, fmt.Errorf("report: schema mismatch: base v%d vs new v%d", base.Schema, cur.Schema)
	}
	if base.Scale != cur.Scale || base.Seed != cur.Seed {
		return nil, fmt.Errorf("report: incomparable artifacts: base scale=%g seed=%d vs new scale=%g seed=%d",
			base.Scale, base.Seed, cur.Scale, cur.Seed)
	}
	curBy := make(map[string]Cell, len(cur.Cells))
	for _, c := range cur.Cells {
		curBy[c.Key] = c
	}
	var ds []Delta
	for _, b := range base.Cells {
		if b.UnitsPerSec <= 0 {
			continue
		}
		c, ok := curBy[b.Key]
		if !ok {
			ds = append(ds, Delta{Key: b.Key, Base: b.UnitsPerSec, Missing: true})
			continue
		}
		ds = append(ds, Delta{
			Key:  b.Key,
			Base: b.UnitsPerSec,
			New:  c.UnitsPerSec,
			Drop: (b.UnitsPerSec - c.UnitsPerSec) / b.UnitsPerSec,
		})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Key < ds[j].Key })
	return ds, nil
}

// HostDeltas diffs the host-side throughput channel (wall-clock
// units/sec — the simulator's own speed). Unlike Deltas it is
// regression-only and deliberately forgiving: cells missing a host
// reading on either side are skipped, never flagged (profiled runs,
// pre-channel baselines), and the gate only applies to hermetic
// artifacts — both runs serial (Workers <= 1), since wall times
// measured under parallel workers are contended and incomparable.
func HostDeltas(base, cur Artifact) ([]Delta, error) {
	if base.Schema != cur.Schema {
		return nil, fmt.Errorf("report: schema mismatch: base v%d vs new v%d", base.Schema, cur.Schema)
	}
	if base.Scale != cur.Scale || base.Seed != cur.Seed {
		return nil, fmt.Errorf("report: incomparable artifacts: base scale=%g seed=%d vs new scale=%g seed=%d",
			base.Scale, base.Seed, cur.Scale, cur.Seed)
	}
	if base.Workers != 1 || cur.Workers != 1 {
		return nil, fmt.Errorf("report: host-throughput gate needs serial artifacts (-parallel 1): base workers=%d, new workers=%d",
			base.Workers, cur.Workers)
	}
	curBy := make(map[string]Cell, len(cur.Cells))
	for _, c := range cur.Cells {
		curBy[c.Key] = c
	}
	var ds []Delta
	for _, b := range base.Cells {
		if b.HostUnitsPerSec <= 0 {
			continue
		}
		c, ok := curBy[b.Key]
		if !ok || c.HostUnitsPerSec <= 0 {
			continue
		}
		ds = append(ds, Delta{
			Key:  b.Key,
			Base: b.HostUnitsPerSec,
			New:  c.HostUnitsPerSec,
			Drop: (b.HostUnitsPerSec - c.HostUnitsPerSec) / b.HostUnitsPerSec,
		})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Key < ds[j].Key })
	return ds, nil
}

// SetDiff reports how two artifacts' cell-key sets diverge: keys
// present only in cur (added) and only in base (removed), both
// sorted. Unlike Deltas it covers every cell — including
// throughput-free ones — so the compare gate can refuse a comparison
// whose baseline no longer describes the candidate's target list
// instead of silently skipping the unmatched cells.
func SetDiff(base, cur Artifact) (added, removed []string) {
	baseBy := make(map[string]bool, len(base.Cells))
	for _, c := range base.Cells {
		baseBy[c.Key] = true
	}
	curBy := make(map[string]bool, len(cur.Cells))
	for _, c := range cur.Cells {
		curBy[c.Key] = true
		if !baseBy[c.Key] {
			added = append(added, c.Key)
		}
	}
	for _, c := range base.Cells {
		if !curBy[c.Key] {
			removed = append(removed, c.Key)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}

// Threshold filters deltas down to the regressions: cells whose drop
// exceeds the threshold (a fraction, e.g. 0.15) and cells that
// vanished from the new artifact.
func Threshold(ds []Delta, threshold float64) []Regression {
	var regs []Regression
	for _, d := range ds {
		if d.Missing {
			regs = append(regs, Regression{Key: d.Key, Base: d.Base, Missing: true})
		} else if d.Drop > threshold {
			regs = append(regs, Regression{Key: d.Key, Base: d.Base, New: d.New, Delta: d.Drop})
		}
	}
	return regs
}

// Compare returns every baseline cell whose simulated throughput
// regressed by more than threshold in cur, plus cells that vanished.
func Compare(base, cur Artifact, threshold float64) ([]Regression, error) {
	ds, err := Deltas(base, cur)
	if err != nil {
		return nil, err
	}
	return Threshold(ds, threshold), nil
}

// Markdown renders a delta table as GitHub-flavored markdown for CI
// step summaries: every compared cell with its throughput change,
// regressions beyond the threshold flagged, and a one-line verdict.
func Markdown(title string, ds []Delta, threshold float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", title)
	if len(ds) == 0 {
		b.WriteString("No comparable cells (baseline has no throughput records).\n")
		return b.String()
	}
	b.WriteString("| cell | baseline u/s | new u/s | delta |\n")
	b.WriteString("|---|---:|---:|---:|\n")
	regressed := 0
	for _, d := range ds {
		if d.Missing {
			regressed++
			fmt.Fprintf(&b, "| %s | %.1f | — | ⚠️ missing |\n", d.Key, d.Base)
			continue
		}
		mark := ""
		if d.Drop > threshold {
			regressed++
			mark = " ⚠️"
		}
		chg := -d.Drop * 100
		if chg == 0 {
			chg = 0 // normalize -0.0 from exact-match cells
		}
		fmt.Fprintf(&b, "| %s | %.1f | %.1f | %+.1f%%%s |\n", d.Key, d.Base, d.New, chg, mark)
	}
	if regressed > 0 {
		fmt.Fprintf(&b, "\n**%d of %d cell(s) regressed beyond %.0f%%.**\n", regressed, len(ds), threshold*100)
	} else {
		fmt.Fprintf(&b, "\n%d cell(s) compared, none regressed beyond %.0f%%.\n", len(ds), threshold*100)
	}
	return b.String()
}
