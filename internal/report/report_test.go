package report

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleArtifact() Artifact {
	return Artifact{
		Schema: SchemaVersion, Name: "test", Scale: 1e-6, Seed: 42, Workers: 8,
		GitRev: "abc123", Created: time.Date(2026, 7, 27, 0, 0, 0, 0, time.UTC),
		Cells: []Cell{
			{Key: "fig20/a/seqSel/4KB", Target: "fig20", Platform: "hams-TE", Workload: "seqSel",
				WallNS: 12345, SimNS: 1000, Units: 100, UnitsPerSec: 5000, HitRate: 0.94, EnergyJ: 1.5},
			{Key: "fig5/a/ULL-Flash/rndRd", Target: "fig5", Platform: "ULL-Flash",
				WallNS: 999, Extra: map[string]float64{"avg_lat_us": 12.5}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	a := sampleArtifact()
	if err := WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := a.CanonicalJSON()
	gj, _ := got.CanonicalJSON()
	if !bytes.Equal(aj, gj) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", aj, gj)
	}
	if got.Cells[0].HitRate != 0.94 || got.Cells[1].Extra["avg_lat_us"] != 12.5 {
		t.Fatalf("cell fields lost: %+v", got.Cells)
	}
}

func TestCanonicalZeroesVolatileFields(t *testing.T) {
	a := sampleArtifact()
	c := a.Canonical()
	if !c.Created.IsZero() || c.GitRev != "" || c.Workers != 0 {
		t.Fatalf("volatile header fields kept: %+v", c)
	}
	for _, cell := range c.Cells {
		if cell.WallNS != 0 {
			t.Fatalf("wall time kept in %s", cell.Key)
		}
	}
	// Canonical must not mutate the original.
	if a.Cells[0].WallNS != 12345 || a.Workers != 8 {
		t.Fatal("Canonical mutated its receiver")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := sampleArtifact()
	cur := sampleArtifact()
	cur.Cells[0].UnitsPerSec = 4000 // -20% vs 5000
	regs, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Key != "fig20/a/seqSel/4KB" {
		t.Fatalf("regs = %+v", regs)
	}
	if regs[0].Delta < 0.19 || regs[0].Delta > 0.21 {
		t.Fatalf("delta = %v, want ~0.20", regs[0].Delta)
	}

	// Within threshold: no flag.
	cur.Cells[0].UnitsPerSec = 4500 // -10%
	regs, err = Compare(base, cur, 0.15)
	if err != nil || len(regs) != 0 {
		t.Fatalf("within-threshold drop flagged: %+v err=%v", regs, err)
	}

	// Improvements never flag.
	cur.Cells[0].UnitsPerSec = 9000
	regs, _ = Compare(base, cur, 0.15)
	if len(regs) != 0 {
		t.Fatalf("improvement flagged: %+v", regs)
	}
}

func TestCompareFlagsMissingCells(t *testing.T) {
	base := sampleArtifact()
	cur := sampleArtifact()
	cur.Cells = cur.Cells[1:] // drop the throughput cell
	regs, err := Compare(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("regs = %+v", regs)
	}
}

// TestSetDiff pins the divergence detector the compare gate runs
// before thresholding: cell keys only in the candidate come back as
// added, keys only in the baseline as removed, both sorted.
func TestSetDiff(t *testing.T) {
	base := sampleArtifact()
	cur := sampleArtifact()
	if added, removed := SetDiff(base, cur); len(added)+len(removed) != 0 {
		t.Fatalf("identical artifacts diverge: +%v -%v", added, removed)
	}
	cur.Cells = append(cur.Cells[1:],
		Cell{Key: "autoqos/stream+latency/auto@hams-LE"},
		Cell{Key: "autoqos/stream+latency/shared@hams-LE"})
	added, removed := SetDiff(base, cur)
	wantAdded := []string{
		"autoqos/stream+latency/auto@hams-LE",
		"autoqos/stream+latency/shared@hams-LE",
	}
	wantRemoved := []string{"fig20/a/seqSel/4KB"}
	if !stringSliceEq(added, wantAdded) || !stringSliceEq(removed, wantRemoved) {
		t.Fatalf("SetDiff = +%v -%v, want +%v -%v", added, removed, wantAdded, wantRemoved)
	}
}

func stringSliceEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCompareRejectsIncomparable(t *testing.T) {
	base := sampleArtifact()
	cur := sampleArtifact()
	cur.Scale = 2e-6
	if _, err := Compare(base, cur, 0.15); err == nil {
		t.Fatal("scale mismatch accepted")
	}
	cur = sampleArtifact()
	cur.Seed = 7
	if _, err := Compare(base, cur, 0.15); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	cur = sampleArtifact()
	cur.Schema = SchemaVersion + 1
	if _, err := Compare(base, cur, 0.15); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestRecorderCollects(t *testing.T) {
	var r Recorder
	r.Add(Cell{Key: "a"})
	r.Add(Cell{Key: "b"})
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	a := r.Artifact("n", 1e-6, 42, 4)
	if a.Schema != SchemaVersion || len(a.Cells) != 2 || a.Cells[0].Key != "a" {
		t.Fatalf("artifact = %+v", a)
	}
	if a.Created.IsZero() {
		t.Fatal("no creation time")
	}
}

func TestDeltasRowPerThroughputCell(t *testing.T) {
	base := sampleArtifact()
	cur := sampleArtifact()
	cur.Cells[0].UnitsPerSec = 5500 // +10%
	ds, err := Deltas(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	// Only the throughput cell produces a row; the latency-only cell
	// is skipped.
	if len(ds) != 1 || ds[0].Key != "fig20/a/seqSel/4KB" {
		t.Fatalf("deltas = %+v", ds)
	}
	if ds[0].Drop > -0.09 || ds[0].Drop < -0.11 {
		t.Fatalf("drop = %v, want ~-0.10 (improvement)", ds[0].Drop)
	}
}

func TestMarkdownFlagsRegressions(t *testing.T) {
	ds := []Delta{
		{Key: "a", Base: 100, New: 95, Drop: 0.05},
		{Key: "b", Base: 100, New: 50, Drop: 0.50},
		{Key: "c", Base: 100, Missing: true},
	}
	md := Markdown("gate", ds, 0.15)
	if !strings.Contains(md, "### gate") || !strings.Contains(md, "| cell |") {
		t.Fatalf("markdown shape wrong:\n%s", md)
	}
	if !strings.Contains(md, "2 of 3 cell(s) regressed") {
		t.Fatalf("verdict wrong:\n%s", md)
	}
	if strings.Count(md, "⚠️") != 2 {
		t.Fatalf("regression markers wrong:\n%s", md)
	}
	clean := Markdown("gate", ds[:1], 0.15)
	if !strings.Contains(clean, "none regressed") {
		t.Fatalf("clean verdict wrong:\n%s", clean)
	}
}
