// Package cpu models the processor side of the evaluation platform
// (Table II): quad-core 2 GHz cores with 64 KB L1D and a shared 2 MB
// L2, a base CPI for non-memory instructions, and a driver that
// interleaves the cores against a shared memory system in global time
// order. The cache hierarchy filters the workload's access stream so
// only true misses reach the platform under test, exactly as gem5 did
// for the paper.
package cpu

import (
	"hams/internal/mem"
)

// CacheConfig sizes one level.
type CacheConfig struct {
	SizeBytes uint64
	Ways      int
	LineBytes uint64
}

// L1D64K is the Table II L1 data cache.
func L1D64K() CacheConfig { return CacheConfig{SizeBytes: 64 * mem.KiB, Ways: 4, LineBytes: 64} }

// L2_2M is the Table II shared L2.
func L2_2M() CacheConfig { return CacheConfig{SizeBytes: 2 * mem.MiB, Ways: 8, LineBytes: 64} }

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// Cache is a set-associative write-back, write-allocate cache.
type Cache struct {
	cfg   CacheConfig
	sets  [][]line
	nsets uint64
	tick  uint64

	hits, misses int64
}

// NewCache builds a cache from cfg.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.Ways <= 0 {
		cfg.Ways = 1
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 64
	}
	nsets := cfg.SizeBytes / cfg.LineBytes / uint64(cfg.Ways)
	if nsets == 0 {
		nsets = 1
	}
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets, nsets: nsets}
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() uint64 { return c.cfg.LineBytes }

// Hits and Misses report counters.
func (c *Cache) Hits() int64   { return c.hits }
func (c *Cache) Misses() int64 { return c.misses }

// Lookup accesses the line containing addr. On a miss it installs the
// line and returns the evicted dirty victim's address (ok=false when
// nothing dirty was displaced).
func (c *Cache) Lookup(addr uint64, write bool) (hit bool, victim uint64, victimDirty bool) {
	c.tick++
	lineAddr := addr / c.cfg.LineBytes
	set := lineAddr % c.nsets
	tag := lineAddr / c.nsets
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.hits++
			ways[i].lru = c.tick
			if write {
				ways[i].dirty = true
			}
			return true, 0, false
		}
	}
	c.misses++
	// Choose victim: first invalid, else least recently used.
	vi := 0
	for i := range ways {
		if !ways[i].valid {
			vi = i
			break
		}
		if ways[i].lru < ways[vi].lru {
			vi = i
		}
	}
	v := ways[vi]
	if v.valid && v.dirty {
		victim = (v.tag*c.nsets + set) * c.cfg.LineBytes
		victimDirty = true
	}
	ways[vi] = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	return false, victim, victimDirty
}

// Flush invalidates everything, returning dirty line addresses.
func (c *Cache) Flush() []uint64 {
	var dirty []uint64
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.valid && l.dirty {
				dirty = append(dirty, (l.tag*c.nsets+uint64(s))*c.cfg.LineBytes)
			}
			*l = line{}
		}
	}
	return dirty
}
