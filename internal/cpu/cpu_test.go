package cpu

import (
	"testing"

	"hams/internal/mem"
	"hams/internal/sim"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 64})
	hit, _, _ := c.Lookup(0, false)
	if hit {
		t.Fatal("cold cache must miss")
	}
	hit, _, _ = c.Lookup(32, false) // same line
	if !hit {
		t.Fatal("same-line access must hit")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, 1 set of interest: lines 0, S, 2S map to set 0 where
	// S = nsets*64.
	c := NewCache(CacheConfig{SizeBytes: 256, Ways: 2, LineBytes: 64}) // 2 sets
	s := uint64(2 * 64)
	c.Lookup(0, true)               // set0 way0, dirty
	c.Lookup(s, false)              // set0 way1
	c.Lookup(0, false)              // touch line 0 (now MRU)
	_, v, d := c.Lookup(2*s, false) // evicts line s (LRU, clean)
	if d {
		t.Fatalf("expected clean victim, got dirty at %#x", v)
	}
	// Line 0 must still be resident.
	if hit, _, _ := c.Lookup(0, false); !hit {
		t.Fatal("LRU evicted the MRU line")
	}
}

func TestCacheDirtyVictim(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 128, Ways: 1, LineBytes: 64}) // 2 sets, direct
	s := uint64(2 * 64)
	c.Lookup(0, true) // dirty
	_, v, d := c.Lookup(s, false)
	if !d || v != 0 {
		t.Fatalf("victim=%#x dirty=%v, want 0,true", v, d)
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 256, Ways: 2, LineBytes: 64})
	c.Lookup(0, true)
	c.Lookup(64, false)
	dirty := c.Flush()
	if len(dirty) != 1 || dirty[0] != 0 {
		t.Fatalf("dirty = %v", dirty)
	}
	if hit, _, _ := c.Lookup(0, false); hit {
		t.Fatal("flush did not invalidate")
	}
}

// flatMem is a fixed-latency memory system for runner tests.
type flatMem struct {
	lat      sim.Time
	accesses int
	writes   int
	res      *sim.Resource
}

func (f *flatMem) Access(t sim.Time, a mem.Access) (MemResult, error) {
	f.accesses++
	if a.Op == mem.Write {
		f.writes++
	}
	_, done := f.res.Acquire(t, f.lat)
	return MemResult{Done: done, Mem: f.lat}, nil
}

// sliceStream replays a fixed set of steps.
type sliceStream struct {
	steps []Step
	i     int
}

func (s *sliceStream) Next() (Step, bool) {
	if s.i >= len(s.steps) {
		return Step{}, false
	}
	st := s.steps[s.i]
	s.i++
	return st, true
}

func TestRunnerCountsInstructions(t *testing.T) {
	m := &flatMem{lat: 100, res: sim.NewResource()}
	r := NewRunner(DefaultConfig(), m)
	st, err := r.Run([]Stream{&sliceStream{steps: []Step{
		{Compute: 100, Acc: []mem.Access{{Addr: 0, Size: 8, Op: mem.Read}}},
		{Compute: 50, Acc: []mem.Access{{Addr: 1 << 30, Size: 8, Op: mem.Read}}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 152 {
		t.Fatalf("instructions = %d, want 152", st.Instructions)
	}
	if st.MemAccesses != 2 {
		t.Fatalf("mem accesses = %d", st.MemAccesses)
	}
	if st.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestRunnerCacheFiltersMemTraffic(t *testing.T) {
	m := &flatMem{lat: 1000, res: sim.NewResource()}
	r := NewRunner(DefaultConfig(), m)
	// 100 accesses to one line: only the first reaches memory.
	steps := make([]Step, 100)
	for i := range steps {
		steps[i] = Step{Acc: []mem.Access{{Addr: 0, Size: 8, Op: mem.Read}}}
	}
	st, err := r.Run([]Stream{&sliceStream{steps: steps}})
	if err != nil {
		t.Fatal(err)
	}
	if m.accesses != 1 {
		t.Fatalf("memory saw %d accesses, want 1", m.accesses)
	}
	if st.L1Hits != 99 {
		t.Fatalf("L1 hits = %d", st.L1Hits)
	}
}

func TestRunnerDirtyEvictionReachesMemory(t *testing.T) {
	m := &flatMem{lat: 100, res: sim.NewResource()}
	cfg := DefaultConfig()
	cfg.L1 = CacheConfig{SizeBytes: 128, Ways: 1, LineBytes: 64}
	cfg.L2 = CacheConfig{SizeBytes: 256, Ways: 1, LineBytes: 64}
	r := NewRunner(cfg, m)
	// Write a line, then march over conflicting lines to force the
	// dirty line out of both levels.
	var steps []Step
	steps = append(steps, Step{Acc: []mem.Access{{Addr: 0, Size: 8, Op: mem.Write}}})
	for i := 1; i <= 8; i++ {
		steps = append(steps, Step{Acc: []mem.Access{{Addr: uint64(i) * 256, Size: 8, Op: mem.Read}}})
	}
	if _, err := r.Run([]Stream{&sliceStream{steps: steps}}); err != nil {
		t.Fatal(err)
	}
	if m.writes == 0 {
		t.Fatal("dirty eviction never reached the memory system")
	}
}

// pipelinedMem serves any number of requests concurrently at a fixed
// latency — an idealized non-blocking memory system whose stalls
// overlap completely across cores.
type pipelinedMem struct{ lat sim.Time }

func (p *pipelinedMem) Access(t sim.Time, a mem.Access) (MemResult, error) {
	return MemResult{Done: t + p.lat, Mem: p.lat}, nil
}

// TestRunnerOverlapStall: two cores missing to a fully pipelined
// memory at the same instants stall concurrently, so nearly all of
// the second core's stall is overlap; one core alone reports none.
func TestRunnerOverlapStall(t *testing.T) {
	mkSteps := func(base uint64) []Step {
		steps := make([]Step, 8)
		for i := range steps {
			// Distinct lines, no compute: every access misses L1/L2
			// and stalls on memory immediately.
			steps[i] = Step{Acc: []mem.Access{{Addr: base + uint64(i)*4096, Size: 8, Op: mem.Read}}}
		}
		return steps
	}
	solo, err := NewRunner(DefaultConfig(), &pipelinedMem{lat: 10000}).
		Run([]Stream{&sliceStream{steps: mkSteps(0)}})
	if err != nil {
		t.Fatal(err)
	}
	if solo.OverlapStall != 0 {
		t.Fatalf("single core reported OverlapStall %v, want 0", solo.OverlapStall)
	}
	duo, err := NewRunner(DefaultConfig(), &pipelinedMem{lat: 10000}).
		Run([]Stream{
			&sliceStream{steps: mkSteps(0)},
			&sliceStream{steps: mkSteps(1 << 30)},
		})
	if err != nil {
		t.Fatal(err)
	}
	if duo.OverlapStall == 0 {
		t.Fatal("concurrent stalls reported no overlap")
	}
	if duo.OverlapStall > duo.MemStall/2 {
		t.Fatalf("OverlapStall %v exceeds half of MemStall %v", duo.OverlapStall, duo.MemStall)
	}
	// With full pipelining the two cores stall in near-lockstep: the
	// overlapped share must be close to one core's stall time.
	if duo.OverlapStall < duo.MemStall/3 {
		t.Fatalf("OverlapStall %v too small for lockstep stalls (MemStall %v)", duo.OverlapStall, duo.MemStall)
	}
}

// TestRunnerOverlapStallDisjoint: stalls disjoint in simulated time
// must report zero overlap even when processing order diverges from
// start-time order (a large compute phase advances one core's clock
// before its stall is attributed).
func TestRunnerOverlapStallDisjoint(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TLB.Entries = 0 // no TLB noise; stall windows stay exact
	st, err := NewRunner(cfg, &pipelinedMem{lat: 10000}).Run([]Stream{
		// Core 0: ~155us of compute, then a 10us stall — processed
		// first (tie-break at t=0) even though its stall starts last.
		&sliceStream{steps: []Step{{Compute: 310000, Acc: []mem.Access{{Addr: 0, Size: 8, Op: mem.Read}}}}},
		// Core 1: stalls [0, 10us] — entirely before core 0's stall.
		&sliceStream{steps: []Step{{Acc: []mem.Access{{Addr: 1 << 30, Size: 8, Op: mem.Read}}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.OverlapStall != 0 {
		t.Fatalf("disjoint stalls reported OverlapStall %v, want 0 (MemStall %v)",
			st.OverlapStall, st.MemStall)
	}
}

func TestRunnerMultiCoreInterleavesInOrder(t *testing.T) {
	// A memory system that asserts nondecreasing arrival times.
	m := &orderCheckMem{}
	r := NewRunner(DefaultConfig(), m)
	mk := func(base uint64) Stream {
		var steps []Step
		for i := 0; i < 50; i++ {
			steps = append(steps, Step{
				Compute: int64(i % 7),
				Acc:     []mem.Access{{Addr: base + uint64(i)*4096, Size: 8, Op: mem.Read}},
			})
		}
		return &sliceStream{steps: steps}
	}
	_, err := r.Run([]Stream{mk(0), mk(1 << 30), mk(2 << 30), mk(3 << 30)})
	if err != nil {
		t.Fatal(err)
	}
	if m.violations != 0 {
		t.Fatalf("%d out-of-order arrivals", m.violations)
	}
	if m.n == 0 {
		t.Fatal("no traffic reached memory")
	}
}

type orderCheckMem struct {
	last       sim.Time
	violations int
	n          int
}

func (o *orderCheckMem) Access(t sim.Time, a mem.Access) (MemResult, error) {
	o.n++
	if t < o.last {
		o.violations++
	}
	o.last = t
	return MemResult{Done: t + 50, Mem: 50}, nil
}

func TestIPCAndMIPS(t *testing.T) {
	st := Stats{Instructions: 2_000_000, Elapsed: sim.Time(1_000_000)} // 2 instr/ns over 1ms
	cfg := DefaultConfig()
	// 4 cores at 2GHz = 8 cycles/ns; 2 instr/ns => IPC 0.25.
	if got := st.IPC(cfg); got < 0.24 || got > 0.26 {
		t.Fatalf("IPC = %f", got)
	}
	if got := st.MIPS(); got < 1999 || got > 2001 {
		t.Fatalf("MIPS = %f", got)
	}
}

func TestRunnerEmptyStreams(t *testing.T) {
	r := NewRunner(DefaultConfig(), &flatMem{lat: 1, res: sim.NewResource()})
	st, err := r.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 0 {
		t.Fatal("phantom instructions")
	}
}

func TestTLBMissPenalty(t *testing.T) {
	// Two runners differing only in TLB page size walk the same
	// sparse stream; the small-page one must pay more walk time.
	mk := func(pageBytes uint64) sim.Time {
		cfg := DefaultConfig()
		cfg.TLB = TLBConfig{Entries: 16, Ways: 2, PageBytes: pageBytes, MissLat: 100}
		m := &flatMem{lat: 10, res: sim.NewResource()}
		r := NewRunner(cfg, m)
		var steps []Step
		for i := 0; i < 400; i++ {
			steps = append(steps, Step{Acc: []mem.Access{{Addr: uint64(i*7919) % (1 << 24), Size: 8, Op: mem.Read}}})
		}
		st, err := r.Run([]Stream{&sliceStream{steps: steps}})
		if err != nil {
			t.Fatal(err)
		}
		if st.TLBMisses == 0 {
			t.Fatal("no TLB misses on a sparse stream")
		}
		return st.Elapsed
	}
	small := mk(4096)
	big := mk(1 << 20)
	if small <= big {
		t.Fatalf("4KB pages (%v) should be slower than 1MB pages (%v)", small, big)
	}
}

func TestTLBDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TLB.Entries = 0
	m := &flatMem{lat: 10, res: sim.NewResource()}
	r := NewRunner(cfg, m)
	st, err := r.Run([]Stream{&sliceStream{steps: []Step{
		{Acc: []mem.Access{{Addr: 0, Size: 8, Op: mem.Read}}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if st.TLBMisses != 0 || st.TLBHits != 0 {
		t.Fatal("disabled TLB recorded activity")
	}
}
