package cpu

import (
	"hams/internal/mem"
	"hams/internal/sim"
)

// Step is one unit of workload progress on a core: some non-memory
// compute instructions followed by memory accesses.
type Step struct {
	Compute int64 // non-memory instructions
	Acc     []mem.Access
}

// Stream feeds one core. Next returns false when the thread finishes.
type Stream interface {
	Next() (Step, bool)
}

// MemSystem is the platform under test. Access returns the completion
// time and a latency decomposition for the breakdown figures.
type MemSystem interface {
	Access(t sim.Time, a mem.Access) (MemResult, error)
}

// MemResult decomposes one memory-system access.
type MemResult struct {
	Done sim.Time
	OS   sim.Time // software-stack time (mmap path)
	Mem  sim.Time // DRAM/NVDIMM array time
	DMA  sim.Time // interface transfer time
	SSD  sim.Time // device-internal time
	// Throttle is QoS pacing debt owed by the issuing core. The runner
	// applies it at the end of the current step — pacing the throttled
	// core's issue rate without backdating any in-flight access, so
	// other cores' arrival timestamps stay truthful.
	Throttle sim.Time
}

// TLBConfig sizes the per-core TLB. A small page size shrinks TLB
// coverage and raises walk traffic — the effect the paper cites for
// the 4 KB point of Fig. 20a.
type TLBConfig struct {
	Entries   int
	Ways      int
	PageBytes uint64
	MissLat   sim.Time // page-walk penalty (PTEs mostly cache-resident)
}

// DefaultTLB is a 1024-entry, 4-way TLB over 4 KiB pages.
func DefaultTLB() TLBConfig {
	return TLBConfig{Entries: 1024, Ways: 4, PageBytes: 4 * mem.KiB, MissLat: 40}
}

// Config sets the core parameters (Table II).
type Config struct {
	Cores  int
	FreqHz float64
	CPI    float64 // base CPI of non-memory instructions
	L1     CacheConfig
	L2     CacheConfig
	L1Lat  sim.Time
	L2Lat  sim.Time
	TLB    TLBConfig
}

// DefaultConfig is the quad-core ARM v8 @ 2 GHz of Table II.
func DefaultConfig() Config {
	return Config{
		Cores:  4,
		FreqHz: 2e9,
		CPI:    1.0,
		L1:     L1D64K(),
		L2:     L2_2M(),
		L1Lat:  2,  // ~4 cycles
		L2Lat:  10, // ~20 cycles
		TLB:    DefaultTLB(),
	}
}

// Stats aggregates a run.
type Stats struct {
	Instructions int64
	MemAccesses  int64
	L1Hits       int64
	L1Misses     int64
	L2Hits       int64
	L2Misses     int64
	TLBHits      int64
	TLBMisses    int64
	Elapsed      sim.Time
	ComputeTime  sim.Time
	MemStall     sim.Time
	// OverlapStall is the portion of MemStall spent while at least one
	// other core's memory stall was also outstanding — the
	// memory-level parallelism the platform exposed. Per-core stall
	// accounting (MemStall) charges overlapped waits twice; the
	// system-level cost of the memory system is approximately
	// MemStall - OverlapStall. A blocking miss pipeline serializes
	// conflicting misses and shrinks this; MSHRs grow it.
	OverlapStall sim.Time
	BusyTime     sim.Time // sum over cores of non-idle time

	OSTime  sim.Time
	MemTime sim.Time
	DMATime sim.Time
	SSDTime sim.Time
	// ThrottleStall is the total QoS pacing debt applied to cores
	// (zero unless a scenario throttles a class).
	ThrottleStall sim.Time
}

// IPC returns aggregate instructions per core-cycle.
func (s Stats) IPC(cfg Config) float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	cycles := float64(s.Elapsed) * cfg.FreqHz / 1e9 * float64(cfg.Cores)
	return float64(s.Instructions) / cycles
}

// MIPS returns millions of instructions per second of wall time.
func (s Stats) MIPS() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Instructions) / (float64(s.Elapsed) / 1e3) // instr/ns*1e3
}

type coreState struct {
	stream Stream
	l1     *Cache
	tlb    *Cache // a TLB is a small set-associative cache of pages
	now    sim.Time
	done   bool
	class  uint8 // QoS class tagged onto every access the core issues

	// Most recent memory-stall interval, for overlap attribution.
	stallStart, stallEnd sim.Time
}

// AccessObserver receives every memory access a core issues, with the
// issuing core's index (stream order), the access, and its issue and
// completion times. Observers are passive: they see the same values
// the runner accounts with and must not mutate shared state the
// simulation reads — the replay scenario engine uses one to build
// per-tenant latency histograms.
type AccessObserver func(core int, a mem.Access, issue, done sim.Time)

// Runner drives N cores against one memory system.
type Runner struct {
	cfg     Config
	mem     MemSystem
	l2      *Cache
	obs     AccessObserver
	classes []uint8
	start   sim.Time
}

// NewRunner builds a runner.
func NewRunner(cfg Config, m MemSystem) *Runner {
	return &Runner{cfg: cfg, mem: m, l2: NewCache(cfg.L2)}
}

// Observe registers an access observer; nil disables observation.
// Observation never changes simulated results.
func (r *Runner) Observe(fn AccessObserver) { r.obs = fn }

// SetStart sets the simulated instant cores begin issuing at (default
// 0). A measured phase resuming after a warm-up — live or from a
// restored checkpoint — starts its cores at the platform's quiesced
// clock so arrival timestamps continue the same timeline; Elapsed and
// BusyTime count from this origin, covering only the measured phase.
func (r *Runner) SetStart(t sim.Time) { r.start = t }

// SetClasses assigns each core (by stream index) the QoS class tagged
// onto every memory-system access it issues — including the L1/L2
// victim writebacks its traffic triggers, which mirrors hardware MBM
// attributing a writeback to the evicting core's RMID. Cores beyond
// the slice (and a nil slice) use the default class 0, so replaying
// without a class map is unchanged.
func (r *Runner) SetClasses(classes []uint8) { r.classes = classes }

// Run executes the streams (one per core; extra streams are ignored,
// missing ones leave cores idle) until all are exhausted. Cores are
// advanced in global time order so the shared memory system always
// sees nondecreasing arrival times.
func (r *Runner) Run(streams []Stream) (Stats, error) {
	var st Stats
	cores := make([]*coreState, 0, r.cfg.Cores)
	for i := 0; i < r.cfg.Cores && i < len(streams); i++ {
		cs := &coreState{stream: streams[i], l1: NewCache(r.cfg.L1), now: r.start}
		if i < len(r.classes) {
			cs.class = r.classes[i]
		}
		if r.cfg.TLB.Entries > 0 {
			cs.tlb = NewCache(CacheConfig{
				SizeBytes: uint64(r.cfg.TLB.Entries) * r.cfg.TLB.PageBytes,
				Ways:      r.cfg.TLB.Ways,
				LineBytes: r.cfg.TLB.PageBytes,
			})
		}
		cores = append(cores, cs)
	}
	if len(cores) == 0 {
		return st, nil
	}
	nsPerInstr := r.cfg.CPI / r.cfg.FreqHz * 1e9

	// scratch holds other cores' stall intervals clipped to the one
	// being attributed (overlapStall); hoisted out of the loop.
	scratch := make([][2]sim.Time, 0, len(cores))
	active := len(cores)
	for active > 0 {
		// Pick the core with the smallest local time (ties break to the
		// lowest index, keeping the schedule deterministic).
		ci := -1
		for i, cs := range cores {
			if cs.done {
				continue
			}
			if ci < 0 || cs.now < cores[ci].now {
				ci = i
			}
		}
		c := cores[ci]
		step, ok := c.stream.Next()
		if !ok {
			c.done = true
			active--
			continue
		}
		// Compute phase.
		if step.Compute > 0 {
			d := sim.Time(float64(step.Compute) * nsPerInstr)
			c.now += d
			st.ComputeTime += d
			st.Instructions += step.Compute
		}
		// Memory phase: one load/store instruction per cache line
		// touched (an 8 B load and a 64 B line are both one
		// instruction; a 4 KiB copy is 64 of them).
		var stepThrottle sim.Time
		for _, a := range step.Acc {
			lines := int64(mem.AlignUp(a.Addr+uint64(a.Size), r.cfg.L1.LineBytes)-mem.AlignDown(a.Addr, r.cfg.L1.LineBytes)) / int64(r.cfg.L1.LineBytes)
			if lines < 1 {
				lines = 1
			}
			st.Instructions += lines
			st.MemAccesses++
			done, mr, err := r.serveAccess(c, a, &st)
			if err != nil {
				return st, err
			}
			if r.obs != nil {
				r.obs(ci, a, c.now, done)
			}
			stall := done - c.now
			if stall > 0 {
				st.MemStall += stall
				st.OverlapStall += overlapStall(cores, ci, c.now, done, &scratch)
				c.stallStart, c.stallEnd = c.now, done
			}
			c.now = done
			st.OSTime += mr.OS
			st.MemTime += mr.Mem
			st.DMATime += mr.DMA
			st.SSDTime += mr.SSD
			stepThrottle += mr.Throttle
		}
		// QoS pacing debt lands at the step boundary: the throttled
		// core idles here (its next step issues later), while every
		// access it already issued keeps its physical timestamps.
		if stepThrottle > 0 {
			c.now += stepThrottle
			st.MemStall += stepThrottle
			st.ThrottleStall += stepThrottle
		}
	}
	for _, cs := range cores {
		if cs.now > st.Elapsed {
			st.Elapsed = cs.now
		}
		st.BusyTime += cs.now - r.start
	}
	st.Elapsed -= r.start
	st.L2Hits = r.l2.Hits()
	st.L2Misses = r.l2.Misses()
	for _, cs := range cores {
		st.L1Hits += cs.l1.Hits()
		st.L1Misses += cs.l1.Misses()
	}
	return st, nil
}

// overlapStall measures how much of core ci's stall [s, e) intersects
// the union of the other cores' most recent stall intervals — the
// cross-core memory-level parallelism the platform exposed. Stalls
// are attributed as they are processed, which is not strictly
// start-time order (a step's compute phase advances the core's clock
// first), so each core keeps its latest interval and only genuine
// intersections count: disjoint stalls never register as overlap. A
// stall spanning several already-processed intervals of one other
// core counts only the latest — a conservative undercount; overlap
// with intervals processed later is attributed when those are.
func overlapStall(cores []*coreState, ci int, s, e sim.Time, scratch *[][2]sim.Time) sim.Time {
	ivs := (*scratch)[:0]
	for j, o := range cores {
		if j == ci || o.stallEnd <= s || o.stallStart >= e {
			continue
		}
		lo, hi := o.stallStart, o.stallEnd
		if lo < s {
			lo = s
		}
		if hi > e {
			hi = e
		}
		ivs = append(ivs, [2]sim.Time{lo, hi})
	}
	*scratch = ivs
	if len(ivs) == 0 {
		return 0
	}
	// Measure the union of the clipped intervals (a handful of cores:
	// insertion sort by start, then sweep).
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j][0] < ivs[j-1][0]; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	var total sim.Time
	curLo, curHi := ivs[0][0], ivs[0][1]
	for _, iv := range ivs[1:] {
		if iv[0] > curHi {
			total += curHi - curLo
			curLo, curHi = iv[0], iv[1]
			continue
		}
		if iv[1] > curHi {
			curHi = iv[1]
		}
	}
	return total + curHi - curLo
}

// serveAccess walks one access through L1/L2 and, on an L2 miss,
// through the memory system (including dirty-victim write-backs).
func (r *Runner) serveAccess(c *coreState, a mem.Access, st *Stats) (sim.Time, MemResult, error) {
	now := c.now
	line := c.l1.LineBytes()
	start := mem.AlignDown(a.Addr, line)
	end := mem.AlignUp(a.Addr+uint64(a.Size), line)
	var agg MemResult
	// Address translation: a TLB miss pays the page-walk penalty once
	// per page touched by the access.
	if c.tlb != nil {
		pstart := mem.AlignDown(a.Addr, r.cfg.TLB.PageBytes)
		pend := mem.AlignUp(a.Addr+uint64(a.Size), r.cfg.TLB.PageBytes)
		for pa := pstart; pa < pend; pa += r.cfg.TLB.PageBytes {
			if hit, _, _ := c.tlb.Lookup(pa, false); !hit {
				now += r.cfg.TLB.MissLat
				st.TLBMisses++
			} else {
				st.TLBHits++
			}
		}
	}
	for la := start; la < end; la += line {
		write := a.Op == mem.Write
		l1hit, v1, d1 := c.l1.Lookup(la, write)
		now += r.cfg.L1Lat
		if l1hit {
			continue
		}
		if d1 {
			// Dirty L1 victim drains into the (mostly inclusive) L2.
			if h2, v2, dd2 := r.l2.Lookup(v1, true); !h2 && dd2 {
				wb, err := r.mem.Access(now, mem.Access{Addr: v2, Size: uint32(line), Op: mem.Write, Class: c.class})
				if err != nil {
					return now, agg, err
				}
				agg.Throttle += wb.Throttle
			}
		}
		l2hit, v2, d2 := r.l2.Lookup(la, write)
		now += r.cfg.L2Lat
		if l2hit {
			continue
		}
		if d2 {
			// L2 dirty victim writes back to the memory system. The
			// write-back buffer hides it from the core's critical path
			// but it still occupies the memory system — and any MBA
			// debt it accrues still paces the evicting core.
			wb, err := r.mem.Access(now, mem.Access{Addr: v2, Size: uint32(line), Op: mem.Write, Class: c.class})
			if err != nil {
				return now, agg, err
			}
			agg.Throttle += wb.Throttle
		}
		// L2 miss: fetch the line from the memory system.
		mr, err := r.mem.Access(now, mem.Access{Addr: la, Size: uint32(line), Op: mem.Read, Class: c.class})
		if err != nil {
			return now, agg, err
		}
		agg.OS += mr.OS
		agg.Mem += mr.Mem
		agg.DMA += mr.DMA
		agg.SSD += mr.SSD
		agg.Throttle += mr.Throttle
		now = mr.Done
	}
	return now, agg, nil
}
