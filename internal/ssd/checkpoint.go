package ssd

import (
	"fmt"

	"hams/internal/checkpoint"
)

// SaveState serializes the device: the flash array and FTL, the HIL
// pool and buffer-bus horizons, the internal DRAM buffer (recency
// index plus every slot's payload and dirty bit) and the activity
// stats. The miss-path scratch page is host-side staging and is not
// serialized.
func (d *Device) SaveState(enc *checkpoint.Enc) {
	d.arr.SaveState(enc, d.ftl.Live)
	d.ftl.SaveState(enc)
	d.hil.SaveState(enc)
	d.bufBus.SaveState(enc)
	enc.Bool(d.buf != nil)
	if d.buf != nil {
		d.buf.SaveState(enc)
		enc.Count(len(d.bufData))
		for i := range d.bufData {
			// Page-compressed: a read-mostly buffer is dominated by the
			// zero pages that reads of never-written LBAs return.
			enc.Page(d.bufData[i][:d.bufLen[i]])
			enc.Bool(d.bufDirty[i])
		}
	}
	enc.I64(d.stats.Reads)
	enc.I64(d.stats.Writes)
	enc.I64(d.stats.BufferHits)
	enc.I64(d.stats.BufferMisses)
	enc.I64(d.stats.BufferEvicts)
	enc.I64(d.stats.Flushes)
	enc.I64(d.stats.FUAWrites)
	enc.I64(d.stats.DirtyLost)
	enc.I64(int64(d.stats.BufferResident))
}

// RestoreState overlays the device. Buffer presence is structural
// (BufferBytes in the config); slot payloads are validated against the
// page size.
func (d *Device) RestoreState(dec *checkpoint.Dec) error {
	if err := d.arr.RestoreState(dec); err != nil {
		return err
	}
	if err := d.ftl.RestoreState(dec); err != nil {
		return err
	}
	if err := d.hil.RestoreState(dec); err != nil {
		return err
	}
	if err := d.bufBus.RestoreState(dec); err != nil {
		return err
	}
	hasBuf := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if hasBuf != (d.buf != nil) {
		return fmt.Errorf("%w: internal buffer presence mismatch", checkpoint.ErrMismatch)
	}
	if d.buf != nil {
		if err := d.buf.RestoreState(dec); err != nil {
			return err
		}
		slots := dec.Count(d.bufCap)
		if err := dec.Err(); err != nil {
			return err
		}
		pageBytes := int(d.cfg.Geometry.PageBytes)
		d.bufData = d.bufData[:0]
		d.bufLen = d.bufLen[:0]
		d.bufDirty = d.bufDirty[:0]
		for i := 0; i < slots; i++ {
			p := dec.Page(pageBytes)
			dirty := dec.Bool()
			if err := dec.Err(); err != nil {
				return err
			}
			// Dec.Page already returns a fresh buffer; adopt it directly
			// (restore is allocation-bound) and pad only short payloads
			// up to the full slot size writes expect.
			data := p
			if len(p) != pageBytes {
				data = make([]byte, pageBytes)
				copy(data, p)
			}
			d.bufData = append(d.bufData, data)
			d.bufLen = append(d.bufLen, len(p))
			d.bufDirty = append(d.bufDirty, dirty)
		}
		if slots != d.buf.Slots() {
			return fmt.Errorf("%w: %d buffer payloads for %d LRU slots", checkpoint.ErrCorrupt, slots, d.buf.Slots())
		}
	}
	d.stats.Reads = dec.I64()
	d.stats.Writes = dec.I64()
	d.stats.BufferHits = dec.I64()
	d.stats.BufferMisses = dec.I64()
	d.stats.BufferEvicts = dec.I64()
	d.stats.Flushes = dec.I64()
	d.stats.FUAWrites = dec.I64()
	d.stats.DirtyLost = dec.I64()
	d.stats.BufferResident = int(dec.I64())
	return dec.Err()
}
