// Package ssd assembles a solid-state drive from the firmware layers
// the paper describes (§II-C): a host interface layer (HIL) that parses
// commands and splits requests, an internal DRAM buffer/cache in front
// of the channels, the FTL, and the flash interface layer (FIL) —
// realized by the flash array's channel/die occupancy model. Device
// configs are provided for the ULL-Flash (Z-NAND, 512 MB buffer), the
// buffer-less ULL-Flash of advanced HAMS, an Intel-750-class NVMe SSD
// and a SATA SSD.
package ssd

import (
	"fmt"

	"hams/internal/flash"
	"hams/internal/ftl"
	"hams/internal/mem"
	"hams/internal/sim"
)

// Config describes one device.
type Config struct {
	Name        string
	Geometry    flash.Geometry
	Timing      flash.Timing
	FTL         ftl.Config
	BufferBytes uint64   // internal DRAM buffer capacity; 0 = none
	BufferGBs   float64  // internal DRAM bandwidth
	BufferLat   sim.Time // internal DRAM access setup
	HILOverhead sim.Time // firmware time per command
	HILSlots    int      // firmware parallelism
	Supercap    bool     // flush buffer to flash on power failure
}

// ULLFlash returns the 800 GB-class Z-NAND archive with its 512 MB
// internal DRAM (Table II). The Z-NAND dual-channel 2 KB striping
// (§II-C: a 4 KB request is split across two channels, halving DMA
// latency) is folded into the channel transfer rate.
func ULLFlash() Config {
	t := flash.ZNAND()
	t.ChanGBs *= 2 // dual-channel 2 KB striping halves transfer time
	return Config{
		Name:        "ULL-Flash",
		Geometry:    flash.ULLGeometry(),
		Timing:      t,
		FTL:         ftl.DefaultConfig(),
		BufferBytes: 512 << 20,
		BufferGBs:   12.8,
		BufferLat:   100,
		HILOverhead: 1 * sim.Microsecond,
		HILSlots:    4,
		Supercap:    true,
	}
}

// ULLFlashNoBuffer is the advanced-HAMS variant: internal DRAM removed
// (the NVDIMM buffers instead), command/address/data registers front
// the flash (§IV-C).
func ULLFlashNoBuffer() Config {
	c := ULLFlash()
	c.Name = "ULL-Flash (bufferless)"
	c.BufferBytes = 0
	return c
}

// NVMeSSD approximates the Intel 750 baseline: TLC-class media, fewer
// channels, a throughput-oriented firmware with higher per-command
// cost.
func NVMeSSD() Config {
	g := flash.ULLGeometry()
	g.Channels = 8
	g.PackagesPerC = 1 // 16 dies: the shallower parallelism that makes
	// its latency climb with queue depth (Fig. 5b)
	return Config{
		Name:        "NVMe-SSD",
		Geometry:    g,
		Timing:      flash.VNANDTLC(),
		FTL:         ftl.DefaultConfig(),
		BufferBytes: 512 << 20,
		BufferGBs:   8,
		BufferLat:   150,
		HILOverhead: 5 * sim.Microsecond,
		HILSlots:    8,
	}
}

// SATASSD approximates the SATA baseline (the link cost lives in
// pcie.SATA6G; media here is slower TLC with shallow parallelism).
func SATASSD() Config {
	g := flash.ULLGeometry()
	g.Channels = 4
	t := flash.VNANDTLC()
	t.ChanGBs = 0.4
	return Config{
		Name:        "SATA-SSD",
		Geometry:    g,
		Timing:      t,
		FTL:         ftl.DefaultConfig(),
		BufferBytes: 256 << 20,
		BufferGBs:   4,
		BufferLat:   300,
		HILOverhead: 20 * sim.Microsecond,
		HILSlots:    1,
	}
}

// Stats carries device-level counters.
type Stats struct {
	Reads, Writes  int64
	BufferHits     int64
	BufferMisses   int64
	BufferEvicts   int64
	Flushes        int64
	FUAWrites      int64
	DirtyLost      int64 // dirty buffer pages dropped at power failure
	BufferResident int
}

// Device is one SSD. The internal DRAM buffer is a flat LRU
// (mem.PageLRU) with slot-owned page buffers: inserts copy into the
// slot's buffer and evictions recycle it, so steady-state buffer
// traffic allocates nothing. Entries store variable-length data (a
// 64 B write replaces whatever the slot held), tracked in bufLen.
type Device struct {
	cfg Config
	arr *flash.Array
	ftl *ftl.FTL

	hil      *sim.Pool
	bufBus   *sim.Resource
	buf      *mem.PageLRU
	bufData  [][]byte // slot -> owned page-capacity buffer
	bufLen   []int    // slot -> stored byte count
	bufDirty []bool
	bufCap   int    // entries
	scratch  []byte // miss-path staging (one page)

	stats Stats
}

// New builds a device from cfg.
func New(cfg Config) *Device {
	if cfg.HILSlots <= 0 {
		cfg.HILSlots = 1
	}
	arr := flash.New(cfg.Geometry, cfg.Timing)
	d := &Device{
		cfg:    cfg,
		arr:    arr,
		ftl:    ftl.New(arr, cfg.FTL),
		hil:    sim.NewPool(cfg.HILSlots),
		bufBus: sim.NewResource(),
	}
	if cfg.BufferBytes > 0 {
		d.buf = mem.NewPageLRU()
		d.bufCap = int(cfg.BufferBytes / cfg.Geometry.PageBytes)
		d.scratch = make([]byte, cfg.Geometry.PageBytes)
	}
	return d
}

// Name returns the device name.
func (d *Device) Name() string { return d.cfg.Name }

// PageBytes returns the device's logical page size.
func (d *Device) PageBytes() uint64 { return d.cfg.Geometry.PageBytes }

// HasBuffer reports whether the device carries internal DRAM.
func (d *Device) HasBuffer() bool { return d.bufCap > 0 }

// Capacity returns the exported capacity in bytes.
func (d *Device) Capacity() uint64 {
	return d.ftl.ExportedPages() * d.cfg.Geometry.PageBytes
}

// Stats returns a copy of the counters with residency filled in.
func (d *Device) Stats() Stats {
	s := d.stats
	if d.buf != nil {
		s.BufferResident = d.buf.Len()
	}
	return s
}

// FTLStats exposes the translation-layer counters.
func (d *Device) FTLStats() ftl.Stats { return d.ftl.Stats() }

// FlashStats exposes the media counters (for the energy model).
func (d *Device) FlashStats() flash.Stats { return d.arr.Stats() }

// hilEnter charges firmware parse/split time.
func (d *Device) hilEnter(t sim.Time) sim.Time {
	_, done := d.hil.Acquire(t, d.cfg.HILOverhead)
	return done
}

func (d *Device) bufAccess(t sim.Time, bytes int64) sim.Time {
	_, done := d.bufBus.Acquire(t+d.cfg.BufferLat, sim.Bandwidth(bytes, d.cfg.BufferGBs))
	return done
}

// bufInsert places a page in the internal DRAM, evicting the LRU dirty
// page to flash when full. Returns the time the insert completes (the
// eviction program runs in the background on the flash resources).
func (d *Device) bufInsert(t sim.Time, lba uint64, data []byte, dirty bool) sim.Time {
	if slot, ok := d.buf.Get(lba); ok {
		d.bufLen[slot] = copy(d.bufData[slot], data)
		d.bufDirty[slot] = d.bufDirty[slot] || dirty
		d.buf.MoveToFront(slot)
		return d.bufAccess(t, int64(len(data)))
	}
	for d.buf.Len() >= d.bufCap {
		vlba, vslot := d.buf.RemoveBack()
		d.stats.BufferEvicts++
		if d.bufDirty[vslot] {
			// Background write-back: occupies flash, does not gate t.
			if _, err := d.ftl.Write(t, vlba, d.bufData[vslot][:d.bufLen[vslot]]); err != nil {
				// Media full: surface by dropping; callers see ErrFull
				// on their own writes. Data loss accounting only.
				d.stats.DirtyLost++
			}
		}
	}
	slot := d.buf.InsertFront(lba)
	for int(slot) >= len(d.bufData) {
		d.bufData = append(d.bufData, nil)
		d.bufLen = append(d.bufLen, 0)
		d.bufDirty = append(d.bufDirty, false)
	}
	if d.bufData[slot] == nil {
		d.bufData[slot] = make([]byte, d.cfg.Geometry.PageBytes)
	}
	d.bufLen[slot] = copy(d.bufData[slot], data)
	d.bufDirty[slot] = dirty
	return d.bufAccess(t, int64(len(data)))
}

// Write stores one logical page. With fua (or on a buffer-less
// device) the data is programmed to flash before completion; otherwise
// it completes once it lands in the internal DRAM.
func (d *Device) Write(t sim.Time, lba uint64, data []byte, fua bool) (sim.Time, error) {
	now := d.hilEnter(t)
	d.stats.Writes++
	if fua {
		d.stats.FUAWrites++
	}
	if d.bufCap > 0 && !fua {
		return d.bufInsert(now, lba, data, true), nil
	}
	if d.bufCap > 0 {
		// FUA on a buffered device: write through.
		done := d.bufInsert(now, lba, data, false)
		fdone, err := d.ftl.Write(done, lba, data)
		if err != nil {
			return fdone, err
		}
		if slot, ok := d.buf.Get(lba); ok {
			d.bufDirty[slot] = false
		}
		return fdone, nil
	}
	return d.ftl.Write(now, lba, data)
}

// Read returns one logical page (first `bytes` transferred; 0 = all).
func (d *Device) Read(t sim.Time, lba uint64, bytes uint32) (sim.Time, []byte) {
	n := d.PageBytes()
	if d.bufCap > 0 {
		if slot, ok := d.buf.Get(lba); ok {
			n = uint64(d.bufLen[slot])
		}
	}
	buf := make([]byte, n)
	done := d.ReadInto(t, lba, bytes, buf)
	return done, buf
}

// ReadInto performs Read without allocating: up to one page of content
// lands in dst, zero-filled past the stored bytes. A nil dst charges
// timing (and buffer-state effects) only.
func (d *Device) ReadInto(t sim.Time, lba uint64, bytes uint32, dst []byte) sim.Time {
	now := d.hilEnter(t)
	d.stats.Reads++
	n := int64(bytes)
	if n == 0 || n > int64(d.PageBytes()) {
		n = int64(d.PageBytes())
	}
	if d.bufCap > 0 {
		if slot, ok := d.buf.Get(lba); ok {
			d.stats.BufferHits++
			d.buf.MoveToFront(slot)
			m := copy(dst, d.bufData[slot][:d.bufLen[slot]])
			for i := m; i < len(dst); i++ {
				dst[i] = 0
			}
			return d.bufAccess(now, n)
		}
		d.stats.BufferMisses++
		done := d.ftl.ReadInto(now, lba, bytes, d.scratch)
		done = d.bufInsert(done, lba, d.scratch, false)
		m := copy(dst, d.scratch)
		for i := m; i < len(dst); i++ {
			dst[i] = 0
		}
		return done
	}
	return d.ftl.ReadInto(now, lba, bytes, dst)
}

// Flush forces every dirty buffered page to flash, returning when the
// last program completes.
func (d *Device) Flush(t sim.Time) sim.Time {
	d.stats.Flushes++
	now := d.hilEnter(t)
	latest := now
	if d.buf == nil {
		return latest
	}
	// Walk the LRU order (oldest first): FTL page allocation and
	// flash-channel timing depend on write order, so the flush order
	// must be deterministic run to run.
	for slot := d.buf.TailSlot(); slot >= 0; slot = d.buf.PrevOf(slot) {
		if !d.bufDirty[slot] {
			continue
		}
		done, err := d.ftl.Write(now, d.buf.PageOf(slot), d.bufData[slot][:d.bufLen[slot]])
		if err == nil {
			d.bufDirty[slot] = false
			if done > latest {
				latest = done
			}
		}
	}
	return latest
}

// Peek returns the current content of lba (buffer first, then flash)
// without any timing effect.
func (d *Device) Peek(lba uint64) []byte {
	if d.buf != nil {
		if slot, ok := d.buf.Get(lba); ok {
			return append([]byte(nil), d.bufData[slot][:d.bufLen[slot]]...)
		}
	}
	return d.ftl.Peek(lba)
}

// Trim drops lba from the buffer and the FTL mapping. Used to model a
// torn write: a DMA that was in flight when power failed leaves the
// target page unreadable until the journal replay rewrites it.
func (d *Device) Trim(lba uint64) {
	if d.buf != nil {
		if slot, ok := d.buf.Get(lba); ok {
			d.buf.Remove(slot)
		}
	}
	d.ftl.Trim(lba)
}

// DropCaches flushes dirty pages and empties the internal DRAM buffer
// (used by device characterization so reads exercise the flash path,
// as they do once the working set exceeds the 512 MB buffer).
func (d *Device) DropCaches(t sim.Time) sim.Time {
	done := d.Flush(t)
	if d.buf != nil {
		d.buf = mem.NewPageLRU() // slot buffers in bufData are reused
	}
	return done
}

// PowerFail models sudden power loss. With a supercap the internal
// DRAM is streamed to flash (data preserved); without one, dirty pages
// are lost. It returns the number of dirty pages that were at risk.
func (d *Device) PowerFail() int {
	if d.buf == nil {
		return 0
	}
	dirty := 0
	// LRU order, not insertion order: the supercap path writes to
	// flash, and write order must be deterministic (see Flush).
	for slot := d.buf.TailSlot(); slot >= 0; slot = d.buf.PrevOf(slot) {
		if !d.bufDirty[slot] {
			continue
		}
		dirty++
		if d.cfg.Supercap {
			if _, err := d.ftl.Write(0, d.buf.PageOf(slot), d.bufData[slot][:d.bufLen[slot]]); err == nil {
				d.bufDirty[slot] = false
				continue
			}
		}
		d.stats.DirtyLost++
	}
	if !d.cfg.Supercap {
		// Volatile buffer contents are gone.
		d.buf = mem.NewPageLRU()
	}
	return dirty
}

// DirtyLost reports pages dropped across the device's lifetime.
func (d *Device) DirtyLost() int64 { return d.stats.DirtyLost }

func (d *Device) String() string {
	return fmt.Sprintf("%s(%.0fGB, buffer %dMB)", d.cfg.Name,
		float64(d.Capacity())/(1<<30), d.cfg.BufferBytes>>20)
}
