// Package ssd assembles a solid-state drive from the firmware layers
// the paper describes (§II-C): a host interface layer (HIL) that parses
// commands and splits requests, an internal DRAM buffer/cache in front
// of the channels, the FTL, and the flash interface layer (FIL) —
// realized by the flash array's channel/die occupancy model. Device
// configs are provided for the ULL-Flash (Z-NAND, 512 MB buffer), the
// buffer-less ULL-Flash of advanced HAMS, an Intel-750-class NVMe SSD
// and a SATA SSD.
package ssd

import (
	"container/list"
	"fmt"

	"hams/internal/flash"
	"hams/internal/ftl"
	"hams/internal/sim"
)

// Config describes one device.
type Config struct {
	Name        string
	Geometry    flash.Geometry
	Timing      flash.Timing
	FTL         ftl.Config
	BufferBytes uint64   // internal DRAM buffer capacity; 0 = none
	BufferGBs   float64  // internal DRAM bandwidth
	BufferLat   sim.Time // internal DRAM access setup
	HILOverhead sim.Time // firmware time per command
	HILSlots    int      // firmware parallelism
	Supercap    bool     // flush buffer to flash on power failure
}

// ULLFlash returns the 800 GB-class Z-NAND archive with its 512 MB
// internal DRAM (Table II). The Z-NAND dual-channel 2 KB striping
// (§II-C: a 4 KB request is split across two channels, halving DMA
// latency) is folded into the channel transfer rate.
func ULLFlash() Config {
	t := flash.ZNAND()
	t.ChanGBs *= 2 // dual-channel 2 KB striping halves transfer time
	return Config{
		Name:        "ULL-Flash",
		Geometry:    flash.ULLGeometry(),
		Timing:      t,
		FTL:         ftl.DefaultConfig(),
		BufferBytes: 512 << 20,
		BufferGBs:   12.8,
		BufferLat:   100,
		HILOverhead: 1 * sim.Microsecond,
		HILSlots:    4,
		Supercap:    true,
	}
}

// ULLFlashNoBuffer is the advanced-HAMS variant: internal DRAM removed
// (the NVDIMM buffers instead), command/address/data registers front
// the flash (§IV-C).
func ULLFlashNoBuffer() Config {
	c := ULLFlash()
	c.Name = "ULL-Flash (bufferless)"
	c.BufferBytes = 0
	return c
}

// NVMeSSD approximates the Intel 750 baseline: TLC-class media, fewer
// channels, a throughput-oriented firmware with higher per-command
// cost.
func NVMeSSD() Config {
	g := flash.ULLGeometry()
	g.Channels = 8
	g.PackagesPerC = 1 // 16 dies: the shallower parallelism that makes
	// its latency climb with queue depth (Fig. 5b)
	return Config{
		Name:        "NVMe-SSD",
		Geometry:    g,
		Timing:      flash.VNANDTLC(),
		FTL:         ftl.DefaultConfig(),
		BufferBytes: 512 << 20,
		BufferGBs:   8,
		BufferLat:   150,
		HILOverhead: 5 * sim.Microsecond,
		HILSlots:    8,
	}
}

// SATASSD approximates the SATA baseline (the link cost lives in
// pcie.SATA6G; media here is slower TLC with shallow parallelism).
func SATASSD() Config {
	g := flash.ULLGeometry()
	g.Channels = 4
	t := flash.VNANDTLC()
	t.ChanGBs = 0.4
	return Config{
		Name:        "SATA-SSD",
		Geometry:    g,
		Timing:      t,
		FTL:         ftl.DefaultConfig(),
		BufferBytes: 256 << 20,
		BufferGBs:   4,
		BufferLat:   300,
		HILOverhead: 20 * sim.Microsecond,
		HILSlots:    1,
	}
}

// Stats carries device-level counters.
type Stats struct {
	Reads, Writes  int64
	BufferHits     int64
	BufferMisses   int64
	BufferEvicts   int64
	Flushes        int64
	FUAWrites      int64
	DirtyLost      int64 // dirty buffer pages dropped at power failure
	BufferResident int
}

type bufEntry struct {
	lba   uint64
	data  []byte
	dirty bool
	elem  *list.Element
}

// Device is one SSD.
type Device struct {
	cfg Config
	arr *flash.Array
	ftl *ftl.FTL

	hil    *sim.Pool
	bufBus *sim.Resource
	buf    map[uint64]*bufEntry
	lru    *list.List // front = most recent
	bufCap int        // entries

	stats Stats
}

// New builds a device from cfg.
func New(cfg Config) *Device {
	if cfg.HILSlots <= 0 {
		cfg.HILSlots = 1
	}
	arr := flash.New(cfg.Geometry, cfg.Timing)
	d := &Device{
		cfg:    cfg,
		arr:    arr,
		ftl:    ftl.New(arr, cfg.FTL),
		hil:    sim.NewPool(cfg.HILSlots),
		bufBus: sim.NewResource(),
	}
	if cfg.BufferBytes > 0 {
		d.buf = make(map[uint64]*bufEntry)
		d.lru = list.New()
		d.bufCap = int(cfg.BufferBytes / cfg.Geometry.PageBytes)
	}
	return d
}

// Name returns the device name.
func (d *Device) Name() string { return d.cfg.Name }

// PageBytes returns the device's logical page size.
func (d *Device) PageBytes() uint64 { return d.cfg.Geometry.PageBytes }

// HasBuffer reports whether the device carries internal DRAM.
func (d *Device) HasBuffer() bool { return d.bufCap > 0 }

// Capacity returns the exported capacity in bytes.
func (d *Device) Capacity() uint64 {
	return d.ftl.ExportedPages() * d.cfg.Geometry.PageBytes
}

// Stats returns a copy of the counters with residency filled in.
func (d *Device) Stats() Stats {
	s := d.stats
	if d.buf != nil {
		s.BufferResident = len(d.buf)
	}
	return s
}

// FTLStats exposes the translation-layer counters.
func (d *Device) FTLStats() ftl.Stats { return d.ftl.Stats() }

// FlashStats exposes the media counters (for the energy model).
func (d *Device) FlashStats() flash.Stats { return d.arr.Stats() }

// hilEnter charges firmware parse/split time.
func (d *Device) hilEnter(t sim.Time) sim.Time {
	_, done := d.hil.Acquire(t, d.cfg.HILOverhead)
	return done
}

func (d *Device) bufAccess(t sim.Time, bytes int64) sim.Time {
	_, done := d.bufBus.Acquire(t+d.cfg.BufferLat, sim.Bandwidth(bytes, d.cfg.BufferGBs))
	return done
}

// bufInsert places a page in the internal DRAM, evicting the LRU dirty
// page to flash when full. Returns the time the insert completes (the
// eviction program runs in the background on the flash resources).
func (d *Device) bufInsert(t sim.Time, lba uint64, data []byte, dirty bool) sim.Time {
	if e, ok := d.buf[lba]; ok {
		e.data = data
		e.dirty = e.dirty || dirty
		d.lru.MoveToFront(e.elem)
		return d.bufAccess(t, int64(len(data)))
	}
	for len(d.buf) >= d.bufCap {
		back := d.lru.Back()
		victim := back.Value.(*bufEntry)
		d.lru.Remove(back)
		delete(d.buf, victim.lba)
		d.stats.BufferEvicts++
		if victim.dirty {
			// Background write-back: occupies flash, does not gate t.
			if _, err := d.ftl.Write(t, victim.lba, victim.data); err != nil {
				// Media full: surface by dropping; callers see ErrFull
				// on their own writes. Data loss accounting only.
				d.stats.DirtyLost++
			}
		}
	}
	e := &bufEntry{lba: lba, data: data, dirty: dirty}
	e.elem = d.lru.PushFront(e)
	d.buf[lba] = e
	return d.bufAccess(t, int64(len(data)))
}

// Write stores one logical page. With fua (or on a buffer-less
// device) the data is programmed to flash before completion; otherwise
// it completes once it lands in the internal DRAM.
func (d *Device) Write(t sim.Time, lba uint64, data []byte, fua bool) (sim.Time, error) {
	now := d.hilEnter(t)
	d.stats.Writes++
	if fua {
		d.stats.FUAWrites++
	}
	if d.bufCap > 0 && !fua {
		return d.bufInsert(now, lba, cloneBytes(data), true), nil
	}
	if d.bufCap > 0 {
		// FUA on a buffered device: write through.
		done := d.bufInsert(now, lba, cloneBytes(data), false)
		fdone, err := d.ftl.Write(done, lba, data)
		if err != nil {
			return fdone, err
		}
		if e, ok := d.buf[lba]; ok {
			e.dirty = false
		}
		return fdone, nil
	}
	return d.ftl.Write(now, lba, data)
}

// Read returns one logical page (first `bytes` transferred; 0 = all).
func (d *Device) Read(t sim.Time, lba uint64, bytes uint32) (sim.Time, []byte) {
	now := d.hilEnter(t)
	d.stats.Reads++
	n := int64(bytes)
	if n == 0 || n > int64(d.PageBytes()) {
		n = int64(d.PageBytes())
	}
	if d.bufCap > 0 {
		if e, ok := d.buf[lba]; ok {
			d.stats.BufferHits++
			d.lru.MoveToFront(e.elem)
			return d.bufAccess(now, n), cloneBytes(e.data)
		}
		d.stats.BufferMisses++
		done, data := d.ftl.Read(now, lba, bytes)
		done = d.bufInsert(done, lba, data, false)
		return done, cloneBytes(data)
	}
	return d.ftl.Read(now, lba, bytes)
}

// Flush forces every dirty buffered page to flash, returning when the
// last program completes.
func (d *Device) Flush(t sim.Time) sim.Time {
	d.stats.Flushes++
	now := d.hilEnter(t)
	latest := now
	if d.buf == nil {
		return latest
	}
	// Walk the LRU list (oldest first) rather than the map: FTL page
	// allocation and flash-channel timing depend on write order, so
	// flushing in map-iteration order would make device timing
	// nondeterministic run to run.
	for el := d.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*bufEntry)
		if !e.dirty {
			continue
		}
		done, err := d.ftl.Write(now, e.lba, e.data)
		if err == nil {
			e.dirty = false
			if done > latest {
				latest = done
			}
		}
	}
	return latest
}

// Peek returns the current content of lba (buffer first, then flash)
// without any timing effect.
func (d *Device) Peek(lba uint64) []byte {
	if d.buf != nil {
		if e, ok := d.buf[lba]; ok {
			return cloneBytes(e.data)
		}
	}
	return d.ftl.Peek(lba)
}

// Trim drops lba from the buffer and the FTL mapping. Used to model a
// torn write: a DMA that was in flight when power failed leaves the
// target page unreadable until the journal replay rewrites it.
func (d *Device) Trim(lba uint64) {
	if d.buf != nil {
		if e, ok := d.buf[lba]; ok {
			d.lru.Remove(e.elem)
			delete(d.buf, lba)
		}
	}
	d.ftl.Trim(lba)
}

// DropCaches flushes dirty pages and empties the internal DRAM buffer
// (used by device characterization so reads exercise the flash path,
// as they do once the working set exceeds the 512 MB buffer).
func (d *Device) DropCaches(t sim.Time) sim.Time {
	done := d.Flush(t)
	if d.buf != nil {
		d.buf = make(map[uint64]*bufEntry)
		d.lru = list.New()
	}
	return done
}

// PowerFail models sudden power loss. With a supercap the internal
// DRAM is streamed to flash (data preserved); without one, dirty pages
// are lost. It returns the number of dirty pages that were at risk.
func (d *Device) PowerFail() int {
	if d.buf == nil {
		return 0
	}
	dirty := 0
	// LRU order, not map order: the supercap path writes to flash, and
	// write order must be deterministic (see Flush).
	for el := d.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*bufEntry)
		if !e.dirty {
			continue
		}
		dirty++
		if d.cfg.Supercap {
			if _, err := d.ftl.Write(0, e.lba, e.data); err == nil {
				e.dirty = false
				continue
			}
		}
		d.stats.DirtyLost++
	}
	if !d.cfg.Supercap {
		// Volatile buffer contents are gone.
		d.buf = make(map[uint64]*bufEntry)
		d.lru = list.New()
	}
	return dirty
}

// DirtyLost reports pages dropped across the device's lifetime.
func (d *Device) DirtyLost() int64 { return d.stats.DirtyLost }

func cloneBytes(b []byte) []byte {
	c := make([]byte, len(b))
	copy(c, b)
	return c
}

func (d *Device) String() string {
	return fmt.Sprintf("%s(%.0fGB, buffer %dMB)", d.cfg.Name,
		float64(d.Capacity())/(1<<30), d.cfg.BufferBytes>>20)
}
