package ssd

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"hams/internal/flash"
	"hams/internal/ftl"
	"hams/internal/sim"
)

// tinyCfg returns a small, fast device for unit tests.
func tinyCfg(bufPages int) Config {
	g := flash.Geometry{
		Channels: 2, PackagesPerC: 1, DiesPerPkg: 1, PlanesPerDie: 1,
		BlocksPerPln: 16, PagesPerBlk: 16, PageBytes: 4096,
	}
	c := Config{
		Name: "tiny", Geometry: g, Timing: flash.ZNAND(),
		FTL: ftl.DefaultConfig(), HILOverhead: 500, HILSlots: 2,
		BufferGBs: 12.8, BufferLat: 100, Supercap: true,
	}
	if bufPages > 0 {
		c.BufferBytes = uint64(bufPages) * 4096
	}
	return c
}

func TestWriteReadThroughBuffer(t *testing.T) {
	d := New(tinyCfg(8))
	data := []byte("buffered page")
	done, err := d.Write(0, 3, data, false)
	if err != nil {
		t.Fatal(err)
	}
	// Buffered write must complete far faster than a flash program.
	if done >= flash.ZNAND().TProg {
		t.Fatalf("buffered write took %v, should avoid flash program", done)
	}
	rdDone, got := d.Read(done, 3, 0)
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatalf("got %q", got[:len(data)])
	}
	// Buffer hit: far faster than a flash read.
	if rdDone-done >= flash.ZNAND().TRead {
		t.Fatalf("buffer read hit took %v", rdDone-done)
	}
	st := d.Stats()
	if st.BufferHits != 1 {
		t.Fatalf("BufferHits = %d", st.BufferHits)
	}
}

func TestBufferlessWriteGoesToFlash(t *testing.T) {
	d := New(tinyCfg(0))
	done, err := d.Write(0, 3, []byte("direct"), false)
	if err != nil {
		t.Fatal(err)
	}
	if done < flash.ZNAND().TProg {
		t.Fatalf("bufferless write took %v, must include program (%v)", done, flash.ZNAND().TProg)
	}
	if d.HasBuffer() {
		t.Fatal("HasBuffer on bufferless device")
	}
}

func TestFUAForcesFlashProgram(t *testing.T) {
	d := New(tinyCfg(8))
	done, err := d.Write(0, 3, []byte("fua"), true)
	if err != nil {
		t.Fatal(err)
	}
	if done < flash.ZNAND().TProg {
		t.Fatalf("FUA write took %v, must include program", done)
	}
	if d.Stats().FUAWrites != 1 {
		t.Fatal("FUAWrites not counted")
	}
}

func TestBufferEvictionWritesBack(t *testing.T) {
	d := New(tinyCfg(4))
	var now sim.Time
	for i := uint64(0); i < 10; i++ {
		done, err := d.Write(now, i, []byte{byte(i)}, false)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if d.Stats().BufferEvicts == 0 {
		t.Fatal("expected evictions")
	}
	// Every page must still read back correctly (evicted from flash,
	// resident from buffer).
	for i := uint64(0); i < 10; i++ {
		_, got := d.Read(now, i, 0)
		if got[0] != byte(i) {
			t.Fatalf("lba %d = %d", i, got[0])
		}
	}
}

func TestFlushClearsDirty(t *testing.T) {
	d := New(tinyCfg(8))
	d.Write(0, 1, []byte{0xA}, false)
	d.Write(0, 2, []byte{0xB}, false)
	done := d.Flush(0)
	if done < flash.ZNAND().TProg {
		t.Fatalf("flush took %v, must program dirty pages", done)
	}
	// After flush, a power failure without supercap loses nothing.
	if risk := d.PowerFail(); risk != 0 {
		t.Fatalf("dirty at power fail after flush = %d", risk)
	}
}

func TestPowerFailSupercapPreservesData(t *testing.T) {
	d := New(tinyCfg(8))
	d.Write(0, 7, []byte{0x42}, false)
	risk := d.PowerFail()
	if risk != 1 {
		t.Fatalf("risk = %d, want 1", risk)
	}
	if d.DirtyLost() != 0 {
		t.Fatal("supercap device lost data")
	}
	_, got := d.Read(0, 7, 0)
	if got[0] != 0x42 {
		t.Fatalf("after powerfail read = %d", got[0])
	}
}

func TestPowerFailWithoutSupercapLosesDirty(t *testing.T) {
	cfg := tinyCfg(8)
	cfg.Supercap = false
	d := New(cfg)
	d.Write(0, 7, []byte{0x42}, false)
	d.PowerFail()
	if d.DirtyLost() != 1 {
		t.Fatalf("DirtyLost = %d, want 1", d.DirtyLost())
	}
	_, got := d.Read(0, 7, 0)
	if got[0] == 0x42 {
		t.Fatal("volatile buffer survived power failure")
	}
}

func TestULLFasterThanNVMeSSD(t *testing.T) {
	ull := New(ULLFlash())
	nv := New(NVMeSSD())
	// Force buffer misses by reading never-written LBAs via flash:
	// write first so the read is mapped, then read a *different* run.
	var du, dn sim.Time
	ull.Write(0, 0, make([]byte, 4096), true)
	nv.Write(0, 0, make([]byte, 4096), true)
	s1, _ := ull.Read(1_000_000_000, 0, 0)
	s2, _ := nv.Read(1_000_000_000, 0, 0)
	du, dn = s1-1_000_000_000, s2-1_000_000_000
	_ = du
	_ = dn
	// ULL write path (FUA) must beat NVMe SSD write path.
	wu, _ := ull.Write(2_000_000_000, 1, make([]byte, 4096), true)
	wn, _ := nv.Write(2_000_000_000, 1, make([]byte, 4096), true)
	if wu >= wn {
		t.Fatalf("ULL FUA write (%v) must beat NVMe (%v)", wu-2_000_000_000, wn-2_000_000_000)
	}
}

func TestDeviceConfigsSane(t *testing.T) {
	for _, cfg := range []Config{ULLFlash(), ULLFlashNoBuffer(), NVMeSSD(), SATASSD()} {
		d := New(cfg)
		if d.Capacity() == 0 {
			t.Fatalf("%s: zero capacity", cfg.Name)
		}
		if d.PageBytes() != 4096 {
			t.Fatalf("%s: page bytes %d", cfg.Name, d.PageBytes())
		}
	}
	if New(ULLFlashNoBuffer()).HasBuffer() {
		t.Fatal("advanced-HAMS device must be bufferless")
	}
}

func TestHILParallelismLimitsConcurrency(t *testing.T) {
	cfg := tinyCfg(64)
	cfg.HILSlots = 1
	cfg.HILOverhead = 10 * sim.Microsecond
	d := New(cfg)
	d.Write(0, 0, []byte{1}, false)
	done, _ := d.Write(0, 1, []byte{2}, false)
	if done < 20*sim.Microsecond {
		t.Fatalf("single HIL slot must serialize: %v", done)
	}
}

// Property: any interleaving of writes and reads over a small LBA set
// returns last-written data (write-back buffer + FTL coherence).
func TestBufferFTLCoherenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(tinyCfg(4)) // tiny buffer: constant eviction traffic
		shadow := make(map[uint64]byte)
		var now sim.Time
		for i := 0; i < 200; i++ {
			lba := uint64(rng.Intn(16))
			if rng.Intn(2) == 0 {
				v := byte(rng.Intn(256))
				done, err := d.Write(now, lba, []byte{v}, rng.Intn(4) == 0)
				if err != nil {
					return false
				}
				shadow[lba] = v
				now = done
			} else {
				done, got := d.Read(now, lba, 0)
				want, ok := shadow[lba]
				if ok && got[0] != want {
					return false
				}
				now = done
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
