package api

import (
	"context"
	"fmt"

	"hams/internal/experiments"
	"hams/internal/replay"
	"hams/internal/report"
	"hams/internal/runner"
)

// ExecOptions carries the execution environment of one job — the
// pieces that belong to the host (hamsd or a CLI), not to the spec.
type ExecOptions struct {
	// Ctx cancels dispatch of pending cells; nil = Background.
	Ctx context.Context
	// Runner, when set, executes cell batches on a shared pool instead
	// of a per-job engine (hamsd). nil honors spec.Parallel.
	Runner runner.CellRunner
	// Traces resolves TenantSpec.Trace references; nil fails any
	// trace-backed scenario.
	Traces TraceResolver
	// Checkpoints resolves JobSpec.Checkpoint references; nil fails
	// any checkpoint-backed scenario.
	Checkpoints CheckpointResolver
	// Progress fires once per completed cell, in completion order,
	// possibly concurrently (see experiments.Options.Progress).
	Progress func(report.Cell)
}

// Execute runs a validated JobSpec to completion and returns every
// result cell in canonical order. This is the one execution path
// behind hamsd jobs; the CLIs call the same builders plus the same
// experiments entry points, so for equal specs the cell sets are
// byte-identical (pinned by the parity tests).
func Execute(spec JobSpec, eo ExecOptions) ([]report.Cell, error) {
	o, err := spec.ExperimentOptions()
	if err != nil {
		return nil, err
	}
	rec := &report.Recorder{}
	o.Recorder = rec
	o.Ctx = eo.Ctx
	o.Runner = eo.Runner
	o.Progress = eo.Progress

	switch spec.Kind {
	case KindRun:
		popt, err := spec.PlatformOptions()
		if err != nil {
			return nil, err
		}
		if _, err := experiments.RunOne(o, spec.Platform, spec.Workload, popt); err != nil {
			return nil, err
		}
	case KindScenario:
		sc, err := spec.Scenario(eo.Traces, eo.Checkpoints)
		if err != nil {
			return nil, err
		}
		if _, err := experiments.RunScenarios(o, []replay.Scenario{sc}); err != nil {
			return nil, err
		}
	case KindTarget:
		for _, name := range experiments.ExpandTargets(spec.Targets) {
			if _, err := experiments.RunTarget(name, o); err != nil {
				return nil, fmt.Errorf("target %s: %w", name, err)
			}
		}
	default:
		return nil, fmt.Errorf("api: unknown kind %q", spec.Kind)
	}
	return rec.Cells(), nil
}
