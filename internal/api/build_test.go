package api

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hams/internal/checkpoint"
	"hams/internal/core/tagstore"
	"hams/internal/platform"
	"hams/internal/qos"
	"hams/internal/replay"
	"hams/internal/report"
	"hams/internal/workload"
)

func TestPlatformOptionsMirrorsSpec(t *testing.T) {
	spec := JobSpec{
		Kind: KindRun, Platform: "hams-LE", Workload: "seqRd",
		PageBytes: 1 << 16, Ways: 4, Banks: 2, Policy: "clock",
		MSHRs: 4, QueueDepth: 8, NVDIMM: 1 << 20,
	}
	p, err := spec.PlatformOptions()
	if err != nil {
		t.Fatal(err)
	}
	want := platform.Options{
		HAMSPage: 1 << 16, HAMSWays: 4, HAMSBanks: 2, HAMSPolicy: tagstore.Clock,
		HAMSMSHRs: 4, HAMSQueueDepth: 8, HAMSNVDIMM: 1 << 20,
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("got %+v, want %+v", p, want)
	}
}

// TestPlatformOptionsRunQoS pins the hamssim single-class semantics:
// a mask and/or throttle folds into a one-class table; no budget at
// all (or an explicit full mask with no throttle) stays unbounded.
func TestPlatformOptionsRunQoS(t *testing.T) {
	spec := JobSpec{Kind: KindRun, Platform: "hams-LE", Workload: "seqRd",
		QoSMasks: map[string]string{"workload": "0x3"},
		QoSMBps:  map[string]float64{"workload": 200}}
	p, err := spec.PlatformOptions()
	if err != nil {
		t.Fatal(err)
	}
	if p.HAMSQoS == nil || len(p.HAMSQoS.Classes) != 1 {
		t.Fatalf("want a one-class table, got %+v", p.HAMSQoS)
	}
	if c := p.HAMSQoS.Classes[0]; c != (qos.Class{Name: "workload", WayMask: 0x3, MBps: 200}) {
		t.Fatalf("class = %+v", c)
	}

	for _, s := range []JobSpec{
		{Kind: KindRun, Platform: "hams-LE", Workload: "seqRd"},
		{Kind: KindRun, Platform: "hams-LE", Workload: "seqRd",
			QoSMasks: map[string]string{"workload": "full"}},
	} {
		p, err := s.PlatformOptions()
		if err != nil {
			t.Fatal(err)
		}
		if p.HAMSQoS != nil {
			t.Fatalf("unbounded spec grew a table: %+v", p.HAMSQoS)
		}
	}
}

func TestScenarioBuildsTenantsAndTable(t *testing.T) {
	spec := validScenario()
	sc, err := spec.Scenario(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "pair" || sc.Platform != "hams-LE" {
		t.Fatalf("scenario identity: %+v", sc)
	}
	want := []replay.Tenant{
		{Name: "a", Workload: "rndRd"},
		{Name: "b", Workload: "seqWr", Class: "bulk"},
	}
	if !reflect.DeepEqual(sc.Tenants, want) {
		t.Fatalf("tenants = %+v, want %+v", sc.Tenants, want)
	}
	if sc.QoS == nil || len(sc.QoS.Classes) != 1 ||
		sc.QoS.Classes[0] != (qos.Class{Name: "bulk", WayMask: 0x3, MBps: 100}) {
		t.Fatalf("qos table = %+v", sc.QoS)
	}
}

// recordTrace writes a small v2 container to a temp file and returns
// its path.
func recordTrace(t *testing.T, wl string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), wl+".trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	o := workload.DefaultOptions()
	o.Scale = 1e-7
	o.Seed = 42
	if _, err := replay.RecordWorkload(f, wl, o, replay.AllThreads); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestScenarioSoleUnnamedTraceTenant pins the hamstrace-replay shape:
// one unnamed trace tenant expands via the container's own labels.
func TestScenarioSoleUnnamedTraceTenant(t *testing.T) {
	path := recordTrace(t, "seqRd")
	spec := JobSpec{Kind: KindScenario, Platform: "hams-LE",
		Tenants: []TenantSpec{{Trace: path}}}
	if err := Validate(spec); err != nil {
		t.Fatal(err)
	}
	sc, err := spec.Scenario(FileTraces{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Tenants) == 0 {
		t.Fatal("no tenants expanded from trace")
	}
	for _, ten := range sc.Tenants {
		if ten.Trace == nil {
			t.Fatalf("tenant %q lost its trace", ten.Name)
		}
	}
	if sc.Name != "scenario" {
		t.Fatalf("default name = %q", sc.Name)
	}
}

func TestScenarioTraceWithoutResolver(t *testing.T) {
	spec := JobSpec{Kind: KindScenario, Platform: "hams-LE",
		Tenants: []TenantSpec{{Trace: "x.trace"}}}
	if _, err := spec.Scenario(nil, nil); err == nil {
		t.Fatal("want an error without a resolver")
	}
	if _, err := spec.Scenario(FileTraces{}, nil); err == nil {
		t.Fatal("want an error for a missing file")
	}
}

// TestScenarioCheckpointResolution: a checkpoint reference resolves
// through the seam into Scenario.Checkpoint (and its warm-up carries
// through), a nil resolver fails loudly, and a file resolver surfaces
// open/decode errors with the reference in the message.
func TestScenarioCheckpointResolution(t *testing.T) {
	base := JobSpec{Kind: KindScenario, Platform: "hams-LE", Name: "restored",
		Tenants: []TenantSpec{{Name: "seqRd", Workload: "seqRd", Seed: 7}}}

	warm := base
	warm.Warmup = 20
	sc, err := warm.Scenario(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Warmup != 20 {
		t.Fatalf("Warmup lost in build: %d", sc.Warmup)
	}
	img, err := replay.Warmup(sc, replay.Options{Scale: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "warm.ckpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkpoint.Encode(f, img); err != nil {
		t.Fatal(err)
	}
	f.Close()

	spec := base
	spec.Checkpoint = path
	if err := Validate(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Scenario(nil, nil); err == nil {
		t.Fatal("want an error without a checkpoint resolver")
	}
	sc, err = spec.Scenario(nil, FileCheckpoints{})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Checkpoint == nil || sc.Checkpoint.Warmup != 20 {
		t.Fatalf("checkpoint not resolved: %+v", sc.Checkpoint)
	}

	spec.Checkpoint = filepath.Join(t.TempDir(), "missing.ckpt")
	if _, err := spec.Scenario(nil, FileCheckpoints{}); err == nil {
		t.Fatal("want an error for a missing image file")
	}
}

func TestExperimentOptionsDefaults(t *testing.T) {
	o, err := JobSpec{Kind: KindTarget, Targets: []string{"table1"}}.ExperimentOptions()
	if err != nil {
		t.Fatal(err)
	}
	if o.Scale != 3e-6 || o.Seed != 42 {
		t.Fatalf("zero spec should map to harness defaults, got scale %g seed %d", o.Scale, o.Seed)
	}
	o, err = JobSpec{Kind: KindTarget, Targets: []string{"qos"}, Scale: 1e-7, Seed: 7,
		Parallel: 3, MSHRs: 4,
		QoSMasks: map[string]string{"latency": "0xc"},
		QoSMBps:  map[string]float64{"stream": 50}}.ExperimentOptions()
	if err != nil {
		t.Fatal(err)
	}
	if o.Scale != 1e-7 || o.Seed != 7 || o.Parallel != 3 || o.MSHRs != 4 {
		t.Fatalf("explicit fields lost: %+v", o)
	}
	if o.QoSMasks["latency"] != 0xc || o.QoSMBps["stream"] != 50 {
		t.Fatalf("qos overrides lost: masks %v mbps %v", o.QoSMasks, o.QoSMBps)
	}
}

// TestExecuteDeterministicAcrossWorkerCounts is the package-level half
// of the parity guarantee: the same spec yields byte-identical
// canonical cells no matter how the cells are scheduled.
func TestExecuteDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := JobSpec{Kind: KindScenario, Platform: "hams-LE", Name: "pair",
		Scale: 1e-7,
		Tenants: []TenantSpec{
			{Name: "a", Workload: "rndRd"},
			{Name: "b", Workload: "seqWr"},
		}}
	if err := Validate(spec); err != nil {
		t.Fatal(err)
	}
	serial := spec
	serial.Parallel = 1
	parallel := spec
	parallel.Parallel = 4
	c1, err := Execute(serial, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Execute(parallel, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) == 0 {
		t.Fatal("no cells")
	}
	if !reflect.DeepEqual(report.CanonicalCells(c1), report.CanonicalCells(c2)) {
		t.Fatalf("worker count changed cells:\n%+v\nvs\n%+v", c1, c2)
	}
	if c1[0].Key != "mixed/pair@hams-LE" {
		t.Fatalf("scenario cell key = %q, want mixed/pair@hams-LE", c1[0].Key)
	}
}

// TestExecuteRunMatchesRunOne pins that a run job's single cell is the
// exact cell the hamssim path produces.
func TestExecuteRunMatchesRunOne(t *testing.T) {
	spec := JobSpec{Kind: KindRun, Platform: "hams-LE", Workload: "seqRd", Scale: 1e-7}
	if err := Validate(spec); err != nil {
		t.Fatal(err)
	}
	cells, err := Execute(spec, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Key != "run/seqRd@hams-LE" {
		t.Fatalf("cells = %+v", cells)
	}
	var progressed []report.Cell
	cells2, err := Execute(spec, ExecOptions{Progress: func(c report.Cell) {
		progressed = append(progressed, c)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(report.CanonicalCells(cells), report.CanonicalCells(cells2)) {
		t.Fatal("progress hook changed the result cells")
	}
	if len(progressed) != 1 || progressed[0].Key != cells[0].Key {
		t.Fatalf("progress stream = %+v", progressed)
	}
}
