// Package api defines the versioned, serializable job-description
// schema shared by every front end of the simulator: the hamsd HTTP
// daemon decodes JobSpec from POST /v1/jobs bodies, and the CLIs
// (hamsbench, hamssim, hamstrace) assemble the same JobSpec from their
// flags — so a flag set and a JSON body are one decode path and
// produce byte-identical runs (pinned by the CLI-vs-API parity tests).
//
// The package owns three things:
//
//   - the wire types (JobSpec, TenantSpec, ClassSpec, JobStatus) and
//     their schema version;
//   - Validate, the single structured-field-error validator — CLIs
//     render its errors to stderr and exit 2, hamsd returns them as
//     HTTP 400 JSON;
//   - the builders (PlatformOptions, Scenario, ExperimentOptions) and
//     Execute, which turn a validated spec into platform options,
//     replay scenarios and experiment cells.
//
// Schema versioning follows the trace-v2 container rules (see
// EXPERIMENTS.md): the version only bumps on incompatible layout
// changes; decoders accept the current version (and 0, meaning
// "current") and refuse anything else with a field error rather than
// guessing.
package api

import (
	"fmt"
	"os"
	"time"

	"hams/internal/checkpoint"
	"hams/internal/trace"
)

// SchemaVersion identifies the JobSpec wire layout. A spec carrying 0
// is read as the current version (hand-written curl bodies omit it);
// any other mismatch is a validation error.
const SchemaVersion = 1

// Job kinds: what a JobSpec asks the engine to do.
const (
	// KindRun is one workload on one platform — the hamssim shape.
	KindRun = "run"
	// KindScenario is a multi-tenant replay scenario (synthetic
	// workloads and/or uploaded traces co-located on one platform) —
	// the hamstrace-replay / mixed shape.
	KindScenario = "scenario"
	// KindTarget runs named experiment targets (fig5, mixed, qos, …)
	// — the hamsbench shape; one job may emit many cells.
	KindTarget = "target"
)

// JobSpec is the versioned job description. Exactly one kind's field
// group applies; Validate rejects cross-kind field use so a malformed
// body fails loudly instead of being half-ignored.
type JobSpec struct {
	// Schema is the wire-layout version (0 = current; see
	// SchemaVersion).
	Schema int `json:"schema,omitempty"`
	// Kind selects the job shape: run, scenario, or target.
	Kind string `json:"kind"`
	// Client names the submitter's class of service for hamsd
	// admission control (per-client in-flight caps — the same tenancy
	// notion as the QoS CLOS table). Empty = the default class.
	Client string `json:"client,omitempty"`

	// Scale multiplies Table III instruction counts (0 = the CLI
	// default, 3e-6). Seed fixes workload randomness (0 = 42).
	Scale float64 `json:"scale,omitempty"`
	Seed  int64   `json:"seed,omitempty"`
	// Parallel is the engine worker count for this job (0 =
	// GOMAXPROCS, 1 = serial). Ignored when the executor supplies a
	// shared pool (hamsd).
	Parallel int `json:"parallel,omitempty"`

	// Platform knobs (kinds run and scenario; see platform.Options).
	Platform   string `json:"platform,omitempty"`
	PageBytes  uint64 `json:"page_bytes,omitempty"`
	Ways       int    `json:"ways,omitempty"`
	Banks      int    `json:"banks,omitempty"`
	Policy     string `json:"policy,omitempty"`
	MSHRs      int    `json:"mshrs,omitempty"`
	QueueDepth int    `json:"queue_depth,omitempty"`
	NVDIMM     uint64 `json:"nvdimm_bytes,omitempty"`

	// Workload names the Table III workload of a run job.
	Workload string `json:"workload,omitempty"`

	// Targets lists experiment targets of a target job ("all"
	// expands).
	Targets []string `json:"targets,omitempty"`

	// QoSMasks / QoSMBps assign per-class way masks (hex like "0xfc",
	// binary like "0b1010", or "full") and archive-bandwidth caps in
	// MB/s. For target jobs they override the qos target's isolated
	// policy (hamsbench -qos-masks/-qos-mbps); for run jobs they bound
	// the whole workload as a single class of service (hamssim
	// -qos-mask/-qos-mbps, at most one class name).
	QoSMasks map[string]string  `json:"qos_masks,omitempty"`
	QoSMBps  map[string]float64 `json:"qos_mbps,omitempty"`

	// Scenario jobs: Name labels the scenario, Tenants are its
	// traffic sources, QoS is its CLOS table.
	Name    string       `json:"name,omitempty"`
	Tenants []TenantSpec `json:"tenants,omitempty"`
	QoS     []ClassSpec  `json:"qos,omitempty"`

	// Checkpoint references a platform checkpoint image to restore the
	// scenario from instead of running a warm-up phase: an uploaded
	// checkpoint ID under hamsd (POST /v1/checkpoints), a file path
	// under the CLIs (CheckpointResolver decides). The image carries
	// its own warm-up length, so Checkpoint and Warmup are mutually
	// exclusive. Scenario jobs only. Added in schema v1's lifetime as
	// a purely additive field, like QoSPolicy.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Warmup splits a scenario run into a warm-up phase (each tenant
	// thread's first Warmup steps, statistics discarded) and a
	// measured phase that alone is reported — replay.Scenario.Warmup.
	// Scenario jobs only; additive.
	Warmup int64 `json:"warmup,omitempty"`

	// QoSPolicy schedules runtime class reprogrammings on the
	// simulated clock (kinds run and scenario). Entries must be
	// strictly after t=0 — the initial table IS the t=0 state — and
	// nondecreasing in time; each change rewrites one class's way mask
	// and bandwidth cap mid-run with CAT/MBA-MSR semantics (next
	// victim selection; accrued throttle debt kept). Added in schema
	// v1's lifetime as a purely additive field: absent means no
	// timeline, so v1 decoders and encoders interoperate unchanged.
	QoSPolicy []PolicyChangeSpec `json:"qos_policy,omitempty"`
	// SLO attaches the AIMD feedback controller. For scenario jobs
	// Class names the victim tenant class to defend; for target jobs
	// (the autoqos target) Class stays empty — the target owns its
	// victim — and only the p99 objective applies. Additive, like
	// QoSPolicy.
	SLO *SLOSpec `json:"slo,omitempty"`
}

// PolicyChangeSpec is one scheduled runtime reprogramming of a QoS
// class (the wire form of replay.PolicyChange).
type PolicyChangeSpec struct {
	// AtNS is the simulated time of the change in nanoseconds
	// (strictly positive; the schedule is nondecreasing).
	AtNS int64 `json:"at_ns"`
	// Class names the class to reprogram.
	Class string `json:"class"`
	// WayMask is the new CAT capacity mask in its CLI/wire spelling
	// ("0xfc", "0b1010"); empty or "full" means all ways.
	WayMask string `json:"way_mask,omitempty"`
	// MBps is the new MBA-style archive-bandwidth cap (0 =
	// unthrottled).
	MBps float64 `json:"mbps,omitempty"`
}

// SLOSpec is the wire form of the feedback controller's objective
// (qos.SLO with only the victim class and the p99 target exposed; the
// AIMD actuation bounds keep their library defaults).
type SLOSpec struct {
	Class       string `json:"class,omitempty"`
	TargetP99NS int64  `json:"target_p99_ns"`
}

// TenantSpec is one traffic source of a scenario job: exactly one of
// Workload (synthetic Table III) or Trace (a recorded container) is
// set. It mirrors replay.Tenant field-for-field; see that type for
// semantics.
type TenantSpec struct {
	// Name labels the tenant (unique within the scenario). An unnamed
	// tenant is allowed only as the scenario's sole, trace-backed
	// entry: it expands to one tenant per recorded tenant label, the
	// hamstrace-replay behavior.
	Name     string `json:"name,omitempty"`
	Workload string `json:"workload,omitempty"`
	// Trace references a recorded v2 container: an uploaded-trace ID
	// under hamsd, a file path under the CLIs (TraceResolver decides).
	Trace      string  `json:"trace,omitempty"`
	TraceLabel string  `json:"trace_label,omitempty"`
	Class      string  `json:"class,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	Base       uint64  `json:"base,omitempty"`
	Scale      float64 `json:"scale,omitempty"`
	HotBytes   uint64  `json:"hot_bytes,omitempty"`
	HotFrac    float64 `json:"hot_fraction,omitempty"`
}

// ClassSpec is one CLOS of a scenario job's QoS table (qos.Class with
// the mask in its CLI/wire spelling).
type ClassSpec struct {
	Name string `json:"name"`
	// WayMask is the CAT capacity mask ("0xfc", "0b1010"); empty or
	// "full" means all ways.
	WayMask string `json:"way_mask,omitempty"`
	// MBps is the MBA-style archive-bandwidth cap (0 = unthrottled).
	MBps float64 `json:"mbps,omitempty"`
}

// Job states reported by JobStatus.State.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobStatus is the wire form of one submitted job's lifecycle, served
// by GET /v1/jobs/{id} and returned by POST /v1/jobs.
type JobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Kind   string `json:"kind"`
	Client string `json:"client,omitempty"`
	// Cells counts result cells produced so far (streamable at
	// GET /v1/jobs/{id}/cells before the job finishes).
	Cells     int       `json:"cells"`
	Submitted time.Time `json:"submitted_at,omitzero"`
	Started   time.Time `json:"started_at,omitzero"`
	Finished  time.Time `json:"finished_at,omitzero"`
	Error     string    `json:"error,omitempty"`
}

// TraceResolver turns a TenantSpec.Trace reference into a decoded
// container. hamsd resolves IDs against its upload store; the CLIs
// resolve file paths (FileTraces).
type TraceResolver interface {
	Trace(ref string) (*trace.File, error)
}

// FileTraces resolves trace references as filesystem paths — the CLI
// side of the TraceResolver seam.
type FileTraces struct{}

// Trace opens and decodes the container at path ref.
func (FileTraces) Trace(ref string) (*trace.File, error) {
	f, err := os.Open(ref)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tf, err := trace.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("api: trace %s: %w", ref, err)
	}
	return tf, nil
}

// CheckpointResolver turns a JobSpec.Checkpoint reference into a
// decoded platform image. hamsd resolves IDs against its upload store
// — by ID only, the same no-arbitrary-file rule as traces; the CLIs
// resolve file paths (FileCheckpoints).
type CheckpointResolver interface {
	Checkpoint(ref string) (*checkpoint.Image, error)
}

// FileCheckpoints resolves checkpoint references as filesystem paths —
// the CLI side of the CheckpointResolver seam.
type FileCheckpoints struct{}

// Checkpoint opens and decodes the image at path ref.
func (FileCheckpoints) Checkpoint(ref string) (*checkpoint.Image, error) {
	f, err := os.Open(ref)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	img, err := checkpoint.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("api: checkpoint %s: %w", ref, err)
	}
	return img, nil
}
