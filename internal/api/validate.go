package api

import (
	"fmt"
	"strings"

	"hams/internal/core/tagstore"
	"hams/internal/experiments"
	"hams/internal/platform"
	"hams/internal/qos"
	"hams/internal/workload"
)

// FieldError names one malformed JobSpec field. Field is the JSON
// field path ("mshrs", "tenants[2].workload"); CLIs map it back to
// their flag spelling when rendering.
type FieldError struct {
	Field string `json:"field"`
	Msg   string `json:"error"`
}

func (e FieldError) Error() string { return e.Field + ": " + e.Msg }

// Errors is the full set of field errors of one Validate call. hamsd
// serializes it into the HTTP 400 body; CLIs print one line per entry.
type Errors []FieldError

func (es Errors) Error() string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.Error()
	}
	return strings.Join(parts, "; ")
}

// AsErrors unwraps an error into field errors, wrapping non-Validate
// errors under a catch-all field so every failure renders uniformly.
func AsErrors(err error) Errors {
	if err == nil {
		return nil
	}
	if es, ok := err.(Errors); ok {
		return es
	}
	return Errors{{Field: "spec", Msg: err.Error()}}
}

// Validate checks a JobSpec structurally — every malformed-input case
// the CLIs used to reject ad hoc with exit 2 — and returns nil or an
// Errors value listing every problem at once (a curl user should not
// fix fields one 400 at a time). It is pure: nothing is constructed,
// no trace references are resolved (the resolver does that at execute
// or upload time), so it is safe to call on every request.
func Validate(spec JobSpec) error {
	var es Errors
	add := func(field, format string, args ...any) {
		es = append(es, FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}

	if spec.Schema != 0 && spec.Schema != SchemaVersion {
		add("schema", "unsupported schema version %d (this build speaks %d)", spec.Schema, SchemaVersion)
	}
	switch spec.Kind {
	case KindRun, KindScenario, KindTarget:
	case "":
		add("kind", "required: one of %q, %q, %q", KindRun, KindScenario, KindTarget)
	default:
		add("kind", "unknown kind %q (want %q, %q or %q)", spec.Kind, KindRun, KindScenario, KindTarget)
	}
	if spec.Scale < 0 {
		add("scale", "want a non-negative scale, got %g", spec.Scale)
	}
	if spec.Seed < 0 {
		add("seed", "want a non-negative seed, got %d", spec.Seed)
	}
	if spec.Parallel < 0 {
		add("parallel", "want a non-negative worker count, got %d", spec.Parallel)
	}
	if spec.Ways < 0 {
		add("ways", "want a non-negative associativity, got %d", spec.Ways)
	}
	if spec.Banks < 0 {
		add("banks", "want a non-negative bank count, got %d", spec.Banks)
	}
	if spec.MSHRs < 0 {
		add("mshrs", "want a non-negative depth, got %d", spec.MSHRs)
	}
	if spec.QueueDepth < 0 {
		add("queue_depth", "want a non-negative cap, got %d", spec.QueueDepth)
	}
	if _, err := tagstore.ParsePolicy(spec.Policy); err != nil {
		add("policy", "%v", err)
	}

	// Per-class QoS assignment values are syntax-checked for every
	// kind; which classes they may address is kind-specific below.
	masks := make(map[string]uint64, len(spec.QoSMasks))
	for _, name := range qos.AssignmentNames(spec.QoSMasks) {
		if name == "" {
			add("qos_masks", "empty class name")
			continue
		}
		m, err := qos.ParseMask(spec.QoSMasks[name])
		if err != nil {
			add("qos_masks", "class %q: %v", name, err)
			continue
		}
		masks[name] = m
	}
	mbps := make(map[string]float64, len(spec.QoSMBps))
	for name, v := range spec.QoSMBps {
		if name == "" {
			add("qos_mbps", "empty class name")
			continue
		}
		if v <= 0 {
			add("qos_mbps", "class %q: want a positive MB/s value, got %g", name, v)
			continue
		}
		mbps[name] = v
	}

	// Policy-timeline entries are syntax-checked for every kind; which
	// classes they may address is kind-specific below.
	var prevAt int64
	for i, ch := range spec.QoSPolicy {
		field := fmt.Sprintf("qos_policy[%d]", i)
		if ch.AtNS <= 0 {
			add(field+".at_ns", "change scheduled at %dns; changes must be strictly after t=0 (the initial table is the t=0 state — past-time changes are rejected, never applied late)", ch.AtNS)
		} else if ch.AtNS < prevAt {
			add(field+".at_ns", "change at %dns is before the previous change at %dns (schedule must be nondecreasing)", ch.AtNS, prevAt)
		} else {
			prevAt = ch.AtNS
		}
		if ch.Class == "" {
			add(field+".class", "required")
		}
		if _, err := qos.ParseMask(ch.WayMask); err != nil {
			add(field+".way_mask", "%v", err)
		}
		if ch.MBps < 0 {
			add(field+".mbps", "want a non-negative MB/s value, got %g", ch.MBps)
		}
	}
	if spec.SLO != nil && spec.SLO.TargetP99NS <= 0 {
		add("slo.target_p99_ns", "want a positive p99 objective in ns, got %d", spec.SLO.TargetP99NS)
	}
	if spec.Warmup < 0 {
		add("warmup", "want a non-negative warm-up length in steps, got %d", spec.Warmup)
	}
	// A checkpoint image records its own warm-up length; restating one
	// alongside it is either redundant or contradictory, so the wire
	// contract keeps them exclusive.
	if spec.Checkpoint != "" && spec.Warmup != 0 {
		add("warmup", "mutually exclusive with checkpoint (the image records its own warm-up)")
	}

	switch spec.Kind {
	case KindRun:
		if spec.Platform == "" {
			add("platform", "required for run jobs")
		} else if !platform.Known(spec.Platform) {
			add("platform", "unknown platform %q (have %s)", spec.Platform, strings.Join(platform.AllNames(), ", "))
		}
		if spec.Workload == "" {
			add("workload", "required for run jobs")
		} else if _, err := workload.ByName(spec.Workload); err != nil {
			add("workload", "%v", err)
		}
		if len(spec.Targets) > 0 {
			add("targets", "not valid for run jobs")
		}
		if len(spec.Tenants) > 0 {
			add("tenants", "not valid for run jobs (use kind %q)", KindScenario)
		}
		if len(spec.QoS) > 0 {
			add("qos", "not valid for run jobs (use qos_masks/qos_mbps for the single-class budget)")
		}
		// A run job is one class of service: at most one name across
		// both assignment maps (hamssim's -qos-mask/-qos-mbps shape).
		names := make(map[string]bool)
		for n := range spec.QoSMasks {
			names[n] = true
		}
		for n := range spec.QoSMBps {
			names[n] = true
		}
		if len(names) > 1 {
			add("qos_masks", "run jobs take a single class of service, got %d names", len(names))
		}
		// The policy timeline must reprogram that single class (it may
		// also be the only thing defining it).
		for i, ch := range spec.QoSPolicy {
			if ch.Class == "" {
				continue
			}
			if len(names) > 0 && !names[ch.Class] {
				add(fmt.Sprintf("qos_policy[%d].class", i), "run jobs have a single class of service; %q does not match the qos_masks/qos_mbps class", ch.Class)
			} else if len(names) == 0 && ch.Class != spec.QoSPolicy[0].Class {
				add(fmt.Sprintf("qos_policy[%d].class", i), "run jobs have a single class of service; %q does not match %q", ch.Class, spec.QoSPolicy[0].Class)
			}
		}
		if spec.SLO != nil {
			add("slo", "not valid for run jobs (a single class has no victim/aggressor split; use kind %q or the autoqos target)", KindScenario)
		}
		if spec.Checkpoint != "" {
			add("checkpoint", "not valid for run jobs (use kind %q)", KindScenario)
		}
		if spec.Warmup != 0 {
			add("warmup", "not valid for run jobs (use kind %q)", KindScenario)
		}

	case KindTarget:
		if len(spec.Targets) == 0 {
			add("targets", "required for target jobs (e.g. [\"mixed\"] or [\"all\"])")
		}
		for i, t := range spec.Targets {
			if t != "all" && !experiments.KnownTarget(t) {
				add(fmt.Sprintf("targets[%d]", i), "unknown target %q (have %s, all)", t, strings.Join(experiments.TargetNames(), ", "))
			}
		}
		if spec.Platform != "" {
			add("platform", "not valid for target jobs (targets pin their own platforms)")
		}
		if spec.Workload != "" {
			add("workload", "not valid for target jobs")
		}
		if len(spec.Tenants) > 0 {
			add("tenants", "not valid for target jobs (use kind %q)", KindScenario)
		}
		if len(spec.QoS) > 0 {
			add("qos", "not valid for target jobs (qos_masks/qos_mbps override the qos target's policy)")
		}
		// Overrides must address the qos target's classes — same check
		// hamsbench runs before any cell.
		if len(masks) > 0 || len(mbps) > 0 {
			if err := experiments.ValidateQoSOverrides(masks, mbps); err != nil {
				add("qos_masks", "%v", err)
			}
		}
		if len(spec.QoSPolicy) > 0 {
			add("qos_policy", "not valid for target jobs (targets pin their own scenarios; use kind %q)", KindScenario)
		}
		if spec.SLO != nil {
			if spec.SLO.Class != "" {
				add("slo.class", "not valid for target jobs (the autoqos target owns its victim class)")
			}
			autoqos := false
			for _, t := range experiments.ExpandTargets(spec.Targets) {
				if t == "autoqos" {
					autoqos = true
				}
			}
			if !autoqos {
				add("slo", "only meaningful with the autoqos target in targets")
			}
		}

		if spec.Checkpoint != "" {
			add("checkpoint", "not valid for target jobs (hamsbench -from-checkpoint feeds the sampled target; use kind %q for restore jobs)", KindScenario)
		}
		if spec.Warmup != 0 {
			add("warmup", "not valid for target jobs (targets pin their own scenarios; use kind %q)", KindScenario)
		}

	case KindScenario:
		if spec.Platform == "" {
			add("platform", "required for scenario jobs")
		} else if !platform.Known(spec.Platform) {
			add("platform", "unknown platform %q (have %s)", spec.Platform, strings.Join(platform.AllNames(), ", "))
		}
		if spec.Workload != "" {
			add("workload", "not valid for scenario jobs (name workloads per tenant)")
		}
		if len(spec.Targets) > 0 {
			add("targets", "not valid for scenario jobs")
		}
		if len(spec.QoSMasks) > 0 || len(spec.QoSMBps) > 0 {
			add("qos_masks", "not valid for scenario jobs (define classes in the qos table)")
		}
		validateClasses(spec, add)
		validateTenants(spec, add)
		classes := make(map[string]bool, len(spec.QoS))
		for _, c := range spec.QoS {
			classes[c.Name] = true
		}
		if len(spec.QoSPolicy) > 0 && len(spec.QoS) == 0 {
			add("qos_policy", "requires a qos table to reprogram")
		}
		for i, ch := range spec.QoSPolicy {
			if ch.Class != "" && len(spec.QoS) > 0 && !classes[ch.Class] {
				add(fmt.Sprintf("qos_policy[%d].class", i), "unknown QoS class %q (declare it in the qos table)", ch.Class)
			}
		}
		if spec.SLO != nil {
			if len(spec.QoS) == 0 {
				add("slo", "requires a qos table (the controller reprograms its classes)")
			}
			if spec.SLO.Class == "" {
				add("slo.class", "required for scenario jobs (names the victim class to defend)")
			} else if len(spec.QoS) > 0 && !classes[spec.SLO.Class] {
				add("slo.class", "unknown QoS class %q (declare it in the qos table)", spec.SLO.Class)
			}
		}
	}

	if len(es) > 0 {
		return es
	}
	return nil
}

// validateClasses checks a scenario job's CLOS table.
func validateClasses(spec JobSpec, add func(field, format string, args ...any)) {
	if len(spec.QoS) > qos.MaxClasses {
		add("qos", "at most %d classes, got %d", qos.MaxClasses, len(spec.QoS))
	}
	seen := make(map[string]bool, len(spec.QoS))
	for i, c := range spec.QoS {
		field := fmt.Sprintf("qos[%d]", i)
		if c.Name == "" {
			add(field+".name", "required")
		} else if seen[c.Name] {
			add(field+".name", "duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		if _, err := qos.ParseMask(c.WayMask); err != nil {
			add(field+".way_mask", "%v", err)
		}
		if c.MBps < 0 {
			add(field+".mbps", "want a non-negative MB/s value, got %g", c.MBps)
		}
	}
}

// validateTenants checks a scenario job's traffic sources.
func validateTenants(spec JobSpec, add func(field, format string, args ...any)) {
	if len(spec.Tenants) == 0 {
		add("tenants", "required for scenario jobs")
		return
	}
	classes := make(map[string]bool, len(spec.QoS))
	for _, c := range spec.QoS {
		classes[c.Name] = true
	}
	names := make(map[string]bool, len(spec.Tenants))
	for i, t := range spec.Tenants {
		field := fmt.Sprintf("tenants[%d]", i)
		switch {
		case t.Workload != "" && t.Trace != "":
			add(field, "workload and trace are mutually exclusive")
		case t.Workload == "" && t.Trace == "":
			add(field, "want exactly one of workload or trace")
		}
		if t.Workload != "" {
			if _, err := workload.ByName(t.Workload); err != nil {
				add(field+".workload", "%v", err)
			}
		}
		if t.Name == "" {
			// The hamstrace shape: one unnamed trace tenant expanding
			// to the container's recorded tenant labels.
			if t.Trace == "" {
				add(field+".name", "required for workload tenants")
			} else if len(spec.Tenants) > 1 {
				add(field+".name", "required when a scenario has several tenants")
			}
		} else if names[t.Name] {
			add(field+".name", "duplicate tenant %q", t.Name)
		}
		names[t.Name] = true
		if t.TraceLabel != "" && t.Trace == "" {
			add(field+".trace_label", "only valid with a trace")
		}
		if t.Class != "" && !classes[t.Class] {
			add(field+".class", "unknown QoS class %q (declare it in the qos table)", t.Class)
		}
		if t.Seed < 0 {
			add(field+".seed", "want a non-negative seed, got %d", t.Seed)
		}
		if t.Scale < 0 {
			add(field+".scale", "want a non-negative scale, got %g", t.Scale)
		}
		if t.HotFrac < 0 || t.HotFrac > 1 {
			add(field+".hot_fraction", "want a fraction in [0, 1], got %g", t.HotFrac)
		}
	}
}
