package api

import (
	"fmt"

	"hams/internal/core/tagstore"
	"hams/internal/experiments"
	"hams/internal/platform"
	"hams/internal/qos"
	"hams/internal/replay"
	"hams/internal/sim"
)

// The builders in this file turn a validated JobSpec into the engine's
// native option structs. They are the extracted common half of what
// each CLI used to assemble from its flags inline — hamssim, hamstrace
// and hamsbench now build a JobSpec and call these, so a flag set and
// a JSON body are literally one construction path. Call Validate
// first; the builders still surface parse errors rather than panic,
// but they do not re-check cross-field rules.

// PlatformOptions builds the platform option set of a run or scenario
// job. For run jobs a single-class QoS budget (qos_masks/qos_mbps with
// one name) becomes a one-class table bounding the whole workload, the
// hamssim -qos-mask/-qos-mbps semantics.
func (s JobSpec) PlatformOptions() (platform.Options, error) {
	pol, err := tagstore.ParsePolicy(s.Policy)
	if err != nil {
		return platform.Options{}, fmt.Errorf("api: policy: %w", err)
	}
	p := platform.Options{
		HAMSPage:       s.PageBytes,
		HAMSWays:       s.Ways,
		HAMSBanks:      s.Banks,
		HAMSPolicy:     pol,
		HAMSMSHRs:      s.MSHRs,
		HAMSQueueDepth: s.QueueDepth,
		HAMSNVDIMM:     s.NVDIMM,
	}
	if s.Kind == KindRun {
		cls, err := s.runClass()
		if err != nil {
			return platform.Options{}, err
		}
		if cls == nil && len(s.QoSPolicy) > 0 {
			// A timeline with no static budget still needs the class to
			// exist: the policy's class name defines a full-mask,
			// unthrottled class for the changes to reprogram.
			cls = &qos.Class{Name: s.QoSPolicy[0].Class}
		}
		if cls != nil {
			p.HAMSQoS = &qos.Table{Classes: []qos.Class{*cls}}
		}
		if len(s.QoSPolicy) > 0 {
			timeline, err := s.qosTimeline(func(name string) (qos.ClassID, bool) {
				return 0, cls != nil && name == cls.Name
			})
			if err != nil {
				return platform.Options{}, err
			}
			p.HAMSQoSPolicy = timeline
		}
	}
	return p, nil
}

// qosTimeline resolves the wire policy schedule into qos.TimedChange
// entries via the given class-name resolver.
func (s JobSpec) qosTimeline(byName func(string) (qos.ClassID, bool)) ([]qos.TimedChange, error) {
	out := make([]qos.TimedChange, len(s.QoSPolicy))
	for i, ch := range s.QoSPolicy {
		id, ok := byName(ch.Class)
		if !ok {
			return nil, fmt.Errorf("api: qos_policy[%d]: unknown QoS class %q", i, ch.Class)
		}
		mask, err := qos.ParseMask(ch.WayMask)
		if err != nil {
			return nil, fmt.Errorf("api: qos_policy[%d].way_mask: %w", i, err)
		}
		out[i] = qos.TimedChange{At: sim.Time(ch.AtNS), Class: id, Mask: mask, MBps: ch.MBps}
	}
	return out, nil
}

// runClass folds a run job's single-name qos_masks/qos_mbps entries
// into one qos.Class, or nil when neither bounds anything (an explicit
// empty/"full" mask with no throttle is the unbounded default, exactly
// as hamssim treats its flag defaults).
func (s *JobSpec) runClass() (*qos.Class, error) {
	name := ""
	for _, n := range qos.AssignmentNames(s.QoSMasks) {
		name = n
	}
	for n := range s.QoSMBps {
		name = n
	}
	if name == "" {
		return nil, nil
	}
	mask, err := qos.ParseMask(s.QoSMasks[name])
	if err != nil {
		return nil, fmt.Errorf("api: qos_masks: %w", err)
	}
	mbps := s.QoSMBps[name]
	if mask == 0 && mbps <= 0 {
		return nil, nil
	}
	return &qos.Class{Name: name, WayMask: mask, MBps: mbps}, nil
}

// qosTable builds a scenario job's CLOS table (nil when the spec
// declares no classes: unpartitioned sharing).
func (s JobSpec) qosTable() (*qos.Table, error) {
	if len(s.QoS) == 0 {
		return nil, nil
	}
	t := &qos.Table{Classes: make([]qos.Class, len(s.QoS))}
	for i, c := range s.QoS {
		mask, err := qos.ParseMask(c.WayMask)
		if err != nil {
			return nil, fmt.Errorf("api: qos[%d].way_mask: %w", i, err)
		}
		t.Classes[i] = qos.Class{Name: c.Name, WayMask: mask, MBps: c.MBps}
	}
	return t, nil
}

// Scenario materializes a scenario job: trace references resolve
// through tr, a checkpoint reference resolves through cr (nil cr
// fails any checkpoint-backed spec), and a sole unnamed trace tenant
// expands to one tenant per recorded label (replay.FromFile — the
// hamstrace-replay shape).
func (s JobSpec) Scenario(tr TraceResolver, cr CheckpointResolver) (replay.Scenario, error) {
	popt, err := s.PlatformOptions()
	if err != nil {
		return replay.Scenario{}, err
	}
	table, err := s.qosTable()
	if err != nil {
		return replay.Scenario{}, err
	}
	sc := replay.Scenario{
		Name:     s.Name,
		Platform: s.Platform,
		PlatOpts: popt,
		QoS:      table,
		Warmup:   s.Warmup,
	}
	if sc.Name == "" {
		sc.Name = "scenario"
	}
	if s.Checkpoint != "" {
		if cr == nil {
			return replay.Scenario{}, fmt.Errorf("api: no checkpoint resolver for %q", s.Checkpoint)
		}
		img, err := cr.Checkpoint(s.Checkpoint)
		if err != nil {
			return replay.Scenario{}, fmt.Errorf("api: checkpoint: %w", err)
		}
		sc.Checkpoint = img
	}
	for i, ch := range s.QoSPolicy {
		mask, err := qos.ParseMask(ch.WayMask)
		if err != nil {
			return replay.Scenario{}, fmt.Errorf("api: qos_policy[%d].way_mask: %w", i, err)
		}
		sc.Policy = append(sc.Policy, replay.PolicyChange{
			At: sim.Time(ch.AtNS), Class: ch.Class, Mask: mask, MBps: ch.MBps,
		})
	}
	if s.SLO != nil {
		sc.SLO = &qos.SLO{Class: s.SLO.Class, TargetP99: sim.Time(s.SLO.TargetP99NS)}
	}
	for i, t := range s.Tenants {
		if t.Trace == "" {
			sc.Tenants = append(sc.Tenants, replay.Tenant{
				Name:     t.Name,
				Workload: t.Workload,
				Seed:     t.Seed,
				Class:    t.Class,
				Base:     t.Base,
				Scale:    t.Scale,
				Hot:      t.HotBytes,
				HotFrac:  t.HotFrac,
			})
			continue
		}
		if tr == nil {
			return replay.Scenario{}, fmt.Errorf("api: tenants[%d]: no trace resolver for %q", i, t.Trace)
		}
		tf, err := tr.Trace(t.Trace)
		if err != nil {
			return replay.Scenario{}, fmt.Errorf("api: tenants[%d]: %w", i, err)
		}
		if t.Name == "" {
			// The unnamed sole-tenant form: the container's own labels
			// name the tenants. Class/Base still apply to every one.
			for _, exp := range replay.FromFile(tf) {
				exp.Class = t.Class
				exp.Base = t.Base
				sc.Tenants = append(sc.Tenants, exp)
			}
			continue
		}
		sc.Tenants = append(sc.Tenants, replay.Tenant{
			Name:       t.Name,
			Trace:      tf,
			TraceLabel: t.TraceLabel,
			Class:      t.Class,
			Base:       t.Base,
		})
	}
	return sc, nil
}

// ExperimentOptions builds the harness options of a job. Zero scale
// and seed map to the harness defaults (3e-6, 42) — the same defaults
// every CLI flag set carries.
func (s JobSpec) ExperimentOptions() (experiments.Options, error) {
	o := experiments.DefaultOptions()
	if s.Scale > 0 {
		o.Scale = s.Scale
	}
	if s.Seed != 0 {
		o.Seed = s.Seed
	}
	o.Parallel = s.Parallel
	o.MSHRs = s.MSHRs
	if s.SLO != nil {
		o.SLOTargetP99 = sim.Time(s.SLO.TargetP99NS)
	}
	if s.Kind == KindTarget {
		// Target jobs thread qos_masks/qos_mbps through to the qos
		// target as policy overrides rather than a platform table.
		if len(s.QoSMasks) > 0 {
			masks := make(map[string]uint64, len(s.QoSMasks))
			for name, v := range s.QoSMasks {
				m, err := qos.ParseMask(v)
				if err != nil {
					return o, fmt.Errorf("api: qos_masks: class %q: %w", name, err)
				}
				masks[name] = m
			}
			o.QoSMasks = masks
		}
		if len(s.QoSMBps) > 0 {
			mbps := make(map[string]float64, len(s.QoSMBps))
			for name, v := range s.QoSMBps {
				mbps[name] = v
			}
			o.QoSMBps = mbps
		}
	}
	return o, nil
}
