package api

import (
	"fmt"
	"io"
	"strings"
)

// RenderFlagErrors prints err's field errors one per line as
// "<prog>: <flag>: <msg>" — the CLI rendering of the same Errors
// value hamsd returns as HTTP 400 JSON. flags maps a JSON field name
// to that CLI's flag spelling (e.g. "qos_masks" → "-qos-mask" in
// hamssim, or "platform" → the bare positional word); unmapped fields
// default to "-" plus the field name with underscores dashed.
func RenderFlagErrors(w io.Writer, prog string, err error, flags map[string]string) {
	for _, fe := range AsErrors(err) {
		base, rest := splitField(fe.Field)
		label, ok := flags[base]
		if !ok {
			label = "-" + strings.ReplaceAll(base, "_", "-")
		}
		fmt.Fprintf(w, "%s: %s%s: %s\n", prog, label, rest, fe.Msg)
	}
}

// splitField separates a field path's leading name from its index and
// sub-field suffix: "tenants[2].workload" → ("tenants", "[2].workload").
func splitField(field string) (base, rest string) {
	if i := strings.IndexAny(field, "[."); i >= 0 {
		return field[:i], field[i:]
	}
	return field, ""
}
