package api

import (
	"encoding/json"
	"strings"
	"testing"
)

// validSpecs are well-formed specs of each kind, reused as the
// mutation base of the malformed-input table.
func validRun() JobSpec {
	return JobSpec{Kind: KindRun, Platform: "hams-LE", Workload: "seqRd"}
}

func validTarget() JobSpec {
	return JobSpec{Kind: KindTarget, Targets: []string{"mixed", "qos"}}
}

func validScenario() JobSpec {
	return JobSpec{
		Kind: KindScenario, Platform: "hams-LE", Name: "pair",
		Tenants: []TenantSpec{
			{Name: "a", Workload: "rndRd"},
			{Name: "b", Workload: "seqWr", Class: "bulk"},
		},
		QoS: []ClassSpec{{Name: "bulk", WayMask: "0x3", MBps: 100}},
	}
}

func TestValidateAcceptsWellFormedSpecs(t *testing.T) {
	for _, spec := range []JobSpec{
		validRun(),
		validTarget(),
		validScenario(),
		{Kind: KindRun, Schema: SchemaVersion, Platform: "mmap", Workload: "BFS",
			Scale: 1e-6, Seed: 7, Parallel: 2, PageBytes: 1 << 16, Ways: 4, Banks: 2,
			Policy: "clock", MSHRs: 4, QueueDepth: 8,
			QoSMasks: map[string]string{"workload": "0x3"},
			QoSMBps:  map[string]float64{"workload": 200}},
		{Kind: KindTarget, Targets: []string{"all"},
			QoSMasks: map[string]string{"latency": "0xc"},
			QoSMBps:  map[string]float64{"stream": 50}},
		// Sole unnamed trace tenant: the hamstrace-replay shape.
		{Kind: KindScenario, Platform: "hams-LE",
			Tenants: []TenantSpec{{Trace: "t.trace"}}},
		// Dynamic QoS: a policy timeline and an SLO on a scenario job.
		func() JobSpec {
			s := validScenario()
			s.QoSPolicy = []PolicyChangeSpec{
				{AtNS: 1e6, Class: "bulk", WayMask: "0x1", MBps: 100},
				{AtNS: 2e6, Class: "bulk", WayMask: "full"},
			}
			s.SLO = &SLOSpec{Class: "bulk", TargetP99NS: 5000}
			return s
		}(),
		// A run job's timeline may be the only thing naming its class.
		func() JobSpec {
			s := validRun()
			s.QoSPolicy = []PolicyChangeSpec{{AtNS: 1e6, Class: "workload", WayMask: "0x3"}}
			return s
		}(),
		// A target job carries only the p99 objective, with autoqos on.
		{Kind: KindTarget, Targets: []string{"autoqos"},
			SLO: &SLOSpec{TargetP99NS: 5000}},
		// A phase-split scenario, and the same shape restored from a
		// checkpoint image (which records its own warm-up length).
		func() JobSpec {
			s := validScenario()
			s.Warmup = 500
			return s
		}(),
		func() JobSpec {
			s := validScenario()
			s.Checkpoint = "warm.ckpt"
			return s
		}(),
	} {
		if err := Validate(spec); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", spec, err)
		}
	}
}

// TestValidateRejectsMalformedSpecs is the every-malformed-input-case
// table: each entry mutates a valid spec one way and names the field
// the error must land on.
func TestValidateRejectsMalformedSpecs(t *testing.T) {
	cases := []struct {
		name  string
		spec  JobSpec
		field string // a FieldError.Field that must be present
	}{
		{"empty kind", JobSpec{}, "kind"},
		{"unknown kind", JobSpec{Kind: "batch"}, "kind"},
		{"future schema", func() JobSpec { s := validRun(); s.Schema = 99; return s }(), "schema"},
		{"negative scale", func() JobSpec { s := validRun(); s.Scale = -1; return s }(), "scale"},
		{"negative seed", func() JobSpec { s := validRun(); s.Seed = -1; return s }(), "seed"},
		{"negative parallel", func() JobSpec { s := validRun(); s.Parallel = -1; return s }(), "parallel"},
		{"negative ways", func() JobSpec { s := validRun(); s.Ways = -1; return s }(), "ways"},
		{"negative banks", func() JobSpec { s := validRun(); s.Banks = -1; return s }(), "banks"},
		{"negative mshrs", func() JobSpec { s := validRun(); s.MSHRs = -1; return s }(), "mshrs"},
		{"negative queue depth", func() JobSpec { s := validRun(); s.QueueDepth = -1; return s }(), "queue_depth"},
		{"bad policy", func() JobSpec { s := validRun(); s.Policy = "fifo"; return s }(), "policy"},
		{"bad mask syntax", func() JobSpec {
			s := validRun()
			s.QoSMasks = map[string]string{"workload": "xyz"}
			return s
		}(), "qos_masks"},
		{"zero mask", func() JobSpec {
			s := validRun()
			s.QoSMasks = map[string]string{"workload": "0x0"}
			return s
		}(), "qos_masks"},
		{"empty mask class name", func() JobSpec {
			s := validRun()
			s.QoSMasks = map[string]string{"": "0x3"}
			return s
		}(), "qos_masks"},
		{"non-positive mbps", func() JobSpec {
			s := validRun()
			s.QoSMBps = map[string]float64{"workload": 0}
			return s
		}(), "qos_mbps"},

		{"run without platform", func() JobSpec { s := validRun(); s.Platform = ""; return s }(), "platform"},
		{"run unknown platform", func() JobSpec { s := validRun(); s.Platform = "pdp11"; return s }(), "platform"},
		{"run without workload", func() JobSpec { s := validRun(); s.Workload = ""; return s }(), "workload"},
		{"run unknown workload", func() JobSpec { s := validRun(); s.Workload = "nope"; return s }(), "workload"},
		{"run with targets", func() JobSpec { s := validRun(); s.Targets = []string{"fig5"}; return s }(), "targets"},
		{"run with tenants", func() JobSpec {
			s := validRun()
			s.Tenants = []TenantSpec{{Name: "a", Workload: "rndRd"}}
			return s
		}(), "tenants"},
		{"run with qos table", func() JobSpec {
			s := validRun()
			s.QoS = []ClassSpec{{Name: "a"}}
			return s
		}(), "qos"},
		{"run with two classes", func() JobSpec {
			s := validRun()
			s.QoSMasks = map[string]string{"a": "0x1", "b": "0x2"}
			return s
		}(), "qos_masks"},

		{"target without targets", JobSpec{Kind: KindTarget}, "targets"},
		{"target unknown name", JobSpec{Kind: KindTarget, Targets: []string{"fig99"}}, "targets[0]"},
		{"target with platform", func() JobSpec { s := validTarget(); s.Platform = "mmap"; return s }(), "platform"},
		{"target with workload", func() JobSpec { s := validTarget(); s.Workload = "seqRd"; return s }(), "workload"},
		{"target with tenants", func() JobSpec {
			s := validTarget()
			s.Tenants = []TenantSpec{{Name: "a", Workload: "rndRd"}}
			return s
		}(), "tenants"},
		{"target with qos table", func() JobSpec {
			s := validTarget()
			s.QoS = []ClassSpec{{Name: "a"}}
			return s
		}(), "qos"},
		{"target override unknown class", func() JobSpec {
			s := validTarget()
			s.QoSMasks = map[string]string{"nosuch": "0x3"}
			return s
		}(), "qos_masks"},

		{"scenario without platform", func() JobSpec { s := validScenario(); s.Platform = ""; return s }(), "platform"},
		{"scenario unknown platform", func() JobSpec { s := validScenario(); s.Platform = "pdp11"; return s }(), "platform"},
		{"scenario with workload", func() JobSpec { s := validScenario(); s.Workload = "seqRd"; return s }(), "workload"},
		{"scenario with targets", func() JobSpec { s := validScenario(); s.Targets = []string{"qos"}; return s }(), "targets"},
		{"scenario with mask overrides", func() JobSpec {
			s := validScenario()
			s.QoSMasks = map[string]string{"bulk": "0x1"}
			return s
		}(), "qos_masks"},
		{"scenario without tenants", func() JobSpec { s := validScenario(); s.Tenants = nil; return s }(), "tenants"},
		{"tenant with both sources", func() JobSpec {
			s := validScenario()
			s.Tenants[0].Trace = "t.trace"
			return s
		}(), "tenants[0]"},
		{"tenant with neither source", func() JobSpec {
			s := validScenario()
			s.Tenants[0].Workload = ""
			return s
		}(), "tenants[0]"},
		{"tenant unknown workload", func() JobSpec {
			s := validScenario()
			s.Tenants[0].Workload = "nope"
			return s
		}(), "tenants[0].workload"},
		{"unnamed workload tenant", func() JobSpec {
			s := validScenario()
			s.Tenants[0].Name = ""
			return s
		}(), "tenants[0].name"},
		{"unnamed trace tenant among several", func() JobSpec {
			s := validScenario()
			s.Tenants[0] = TenantSpec{Trace: "t.trace"}
			return s
		}(), "tenants[0].name"},
		{"duplicate tenant names", func() JobSpec {
			s := validScenario()
			s.Tenants[1].Name = "a"
			return s
		}(), "tenants[1].name"},
		{"trace label without trace", func() JobSpec {
			s := validScenario()
			s.Tenants[0].TraceLabel = "x"
			return s
		}(), "tenants[0].trace_label"},
		{"tenant unknown class", func() JobSpec {
			s := validScenario()
			s.Tenants[0].Class = "gold"
			return s
		}(), "tenants[0].class"},
		{"tenant negative seed", func() JobSpec {
			s := validScenario()
			s.Tenants[0].Seed = -1
			return s
		}(), "tenants[0].seed"},
		{"tenant negative scale", func() JobSpec {
			s := validScenario()
			s.Tenants[0].Scale = -1
			return s
		}(), "tenants[0].scale"},
		{"tenant hot fraction out of range", func() JobSpec {
			s := validScenario()
			s.Tenants[0].HotFrac = 1.5
			return s
		}(), "tenants[0].hot_fraction"},
		{"negative warmup", func() JobSpec {
			s := validScenario()
			s.Warmup = -1
			return s
		}(), "warmup"},
		{"checkpoint and warmup together", func() JobSpec {
			s := validScenario()
			s.Checkpoint = "warm.ckpt"
			s.Warmup = 500
			return s
		}(), "warmup"},
		{"run with checkpoint", func() JobSpec { s := validRun(); s.Checkpoint = "warm.ckpt"; return s }(), "checkpoint"},
		{"run with warmup", func() JobSpec { s := validRun(); s.Warmup = 500; return s }(), "warmup"},
		{"target with checkpoint", func() JobSpec { s := validTarget(); s.Checkpoint = "warm.ckpt"; return s }(), "checkpoint"},
		{"target with warmup", func() JobSpec { s := validTarget(); s.Warmup = 500; return s }(), "warmup"},
		{"class without name", func() JobSpec {
			s := validScenario()
			s.QoS = append(s.QoS, ClassSpec{WayMask: "0x1"})
			return s
		}(), "qos[1].name"},
		{"duplicate class names", func() JobSpec {
			s := validScenario()
			s.QoS = append(s.QoS, ClassSpec{Name: "bulk"})
			return s
		}(), "qos[1].name"},
		{"class bad mask", func() JobSpec {
			s := validScenario()
			s.QoS[0].WayMask = "xyz"
			return s
		}(), "qos[0].way_mask"},
		{"class negative mbps", func() JobSpec {
			s := validScenario()
			s.QoS[0].MBps = -1
			return s
		}(), "qos[0].mbps"},
		{"policy change at t=0", func() JobSpec {
			s := validScenario()
			s.QoSPolicy = []PolicyChangeSpec{{AtNS: 0, Class: "bulk"}}
			return s
		}(), "qos_policy[0].at_ns"},
		{"policy change in the past", func() JobSpec {
			s := validScenario()
			s.QoSPolicy = []PolicyChangeSpec{{AtNS: -5, Class: "bulk"}}
			return s
		}(), "qos_policy[0].at_ns"},
		{"policy schedule decreasing", func() JobSpec {
			s := validScenario()
			s.QoSPolicy = []PolicyChangeSpec{
				{AtNS: 2e6, Class: "bulk"},
				{AtNS: 1e6, Class: "bulk"},
			}
			return s
		}(), "qos_policy[1].at_ns"},
		{"policy change without class", func() JobSpec {
			s := validScenario()
			s.QoSPolicy = []PolicyChangeSpec{{AtNS: 1e6}}
			return s
		}(), "qos_policy[0].class"},
		{"policy change bad mask", func() JobSpec {
			s := validScenario()
			s.QoSPolicy = []PolicyChangeSpec{{AtNS: 1e6, Class: "bulk", WayMask: "xyz"}}
			return s
		}(), "qos_policy[0].way_mask"},
		{"policy change negative mbps", func() JobSpec {
			s := validScenario()
			s.QoSPolicy = []PolicyChangeSpec{{AtNS: 1e6, Class: "bulk", MBps: -1}}
			return s
		}(), "qos_policy[0].mbps"},
		{"policy change unknown class", func() JobSpec {
			s := validScenario()
			s.QoSPolicy = []PolicyChangeSpec{{AtNS: 1e6, Class: "gold"}}
			return s
		}(), "qos_policy[0].class"},
		{"scenario policy without table", func() JobSpec {
			s := validScenario()
			s.QoS = nil
			s.Tenants[1].Class = ""
			s.QoSPolicy = []PolicyChangeSpec{{AtNS: 1e6, Class: "bulk"}}
			return s
		}(), "qos_policy"},
		{"non-positive slo target", func() JobSpec {
			s := validScenario()
			s.SLO = &SLOSpec{Class: "bulk"}
			return s
		}(), "slo.target_p99_ns"},
		{"scenario slo without table", func() JobSpec {
			s := validScenario()
			s.QoS = nil
			s.Tenants[1].Class = ""
			s.SLO = &SLOSpec{Class: "bulk", TargetP99NS: 5000}
			return s
		}(), "slo"},
		{"scenario slo without class", func() JobSpec {
			s := validScenario()
			s.SLO = &SLOSpec{TargetP99NS: 5000}
			return s
		}(), "slo.class"},
		{"scenario slo unknown class", func() JobSpec {
			s := validScenario()
			s.SLO = &SLOSpec{Class: "gold", TargetP99NS: 5000}
			return s
		}(), "slo.class"},
		{"run policy second class", func() JobSpec {
			s := validRun()
			s.QoSPolicy = []PolicyChangeSpec{
				{AtNS: 1e6, Class: "a"},
				{AtNS: 2e6, Class: "b"},
			}
			return s
		}(), "qos_policy[1].class"},
		{"run policy off the budget class", func() JobSpec {
			s := validRun()
			s.QoSMasks = map[string]string{"workload": "0x3"}
			s.QoSPolicy = []PolicyChangeSpec{{AtNS: 1e6, Class: "other"}}
			return s
		}(), "qos_policy[0].class"},
		{"run with slo", func() JobSpec {
			s := validRun()
			s.SLO = &SLOSpec{TargetP99NS: 5000}
			return s
		}(), "slo"},
		{"target with policy", func() JobSpec {
			s := validTarget()
			s.QoSPolicy = []PolicyChangeSpec{{AtNS: 1e6, Class: "stream"}}
			return s
		}(), "qos_policy"},
		{"target slo with class", func() JobSpec {
			s := JobSpec{Kind: KindTarget, Targets: []string{"autoqos"},
				SLO: &SLOSpec{Class: "latency", TargetP99NS: 5000}}
			return s
		}(), "slo.class"},
		{"target slo without autoqos", func() JobSpec {
			s := validTarget()
			s.SLO = &SLOSpec{TargetP99NS: 5000}
			return s
		}(), "slo"},
		{"too many classes", func() JobSpec {
			s := validScenario()
			s.QoS = nil
			for i := 0; i < 17; i++ {
				s.QoS = append(s.QoS, ClassSpec{Name: string(rune('a' + i))})
			}
			s.Tenants[1].Class = "b"
			return s
		}(), "qos"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.spec)
			if err == nil {
				t.Fatalf("Validate accepted malformed spec %+v", tc.spec)
			}
			es, ok := err.(Errors)
			if !ok {
				t.Fatalf("Validate returned %T, want Errors", err)
			}
			for _, e := range es {
				if e.Field == tc.field {
					return
				}
			}
			t.Fatalf("no error on field %q; got %v", tc.field, es)
		})
	}
}

// TestValidateReportsAllErrorsAtOnce pins the everything-in-one-pass
// contract: a spec broken three ways yields three field errors, not
// one 400 per fix attempt.
func TestValidateReportsAllErrorsAtOnce(t *testing.T) {
	spec := validRun()
	spec.Platform = "pdp11"
	spec.Workload = "nope"
	spec.MSHRs = -1
	err := Validate(spec)
	es, ok := err.(Errors)
	if !ok {
		t.Fatalf("got %T (%v), want Errors", err, err)
	}
	if len(es) != 3 {
		t.Fatalf("got %d errors (%v), want 3", len(es), es)
	}
}

func TestErrorsRenderAsFieldColonMessage(t *testing.T) {
	es := Errors{{Field: "mshrs", Msg: "want a non-negative depth, got -1"}}
	if got := es.Error(); !strings.Contains(got, "mshrs: want a non-negative depth") {
		t.Fatalf("Error() = %q", got)
	}
	b, err := json.Marshal(es)
	if err != nil {
		t.Fatal(err)
	}
	if want := `[{"field":"mshrs","error":"want a non-negative depth, got -1"}]`; string(b) != want {
		t.Fatalf("json = %s, want %s", b, want)
	}
}

func TestAsErrorsWrapsForeignErrors(t *testing.T) {
	if AsErrors(nil) != nil {
		t.Fatal("AsErrors(nil) != nil")
	}
	es := AsErrors(Validate(JobSpec{}))
	if len(es) == 0 || es[0].Field != "kind" {
		t.Fatalf("AsErrors passthrough broken: %v", es)
	}
	es = AsErrors(json.Unmarshal([]byte("{"), &JobSpec{}))
	if len(es) != 1 || es[0].Field != "spec" {
		t.Fatalf("AsErrors wrap broken: %v", es)
	}
}

// TestJobSpecJSONRoundTrip pins the wire field names: a renamed Go
// field must not silently rename the JSON schema.
func TestJobSpecJSONRoundTrip(t *testing.T) {
	in := []byte(`{
		"schema": 1, "kind": "scenario", "client": "ci",
		"scale": 1e-6, "seed": 7, "parallel": 2,
		"platform": "hams-LE", "page_bytes": 65536, "ways": 4, "banks": 2,
		"policy": "clock", "mshrs": 4, "queue_depth": 8, "nvdimm_bytes": 1024,
		"name": "pair",
		"tenants": [
			{"name": "a", "workload": "rndRd", "class": "bulk", "seed": 3,
			 "base": 4096, "scale": 2e-6, "hot_bytes": 1024, "hot_fraction": 0.5},
			{"name": "b", "trace": "upload-1", "trace_label": "oltp"}
		],
		"qos": [{"name": "bulk", "way_mask": "0x3", "mbps": 100}],
		"qos_policy": [{"at_ns": 2000000, "class": "bulk", "way_mask": "0x1", "mbps": 50}],
		"slo": {"class": "bulk", "target_p99_ns": 5000}
	}`)
	var spec JobSpec
	if err := json.Unmarshal(in, &spec); err != nil {
		t.Fatal(err)
	}
	if spec.Schema != 1 || spec.Kind != KindScenario || spec.Client != "ci" ||
		spec.PageBytes != 65536 || spec.QueueDepth != 8 || spec.NVDIMM != 1024 {
		t.Fatalf("top-level decode lost fields: %+v", spec)
	}
	a := spec.Tenants[0]
	if a.HotBytes != 1024 || a.HotFrac != 0.5 || a.Base != 4096 {
		t.Fatalf("tenant decode lost fields: %+v", a)
	}
	if spec.Tenants[1].TraceLabel != "oltp" {
		t.Fatalf("trace_label lost: %+v", spec.Tenants[1])
	}
	if spec.QoS[0].WayMask != "0x3" || spec.QoS[0].MBps != 100 {
		t.Fatalf("class decode lost fields: %+v", spec.QoS[0])
	}
	if len(spec.QoSPolicy) != 1 ||
		spec.QoSPolicy[0] != (PolicyChangeSpec{AtNS: 2000000, Class: "bulk", WayMask: "0x1", MBps: 50}) {
		t.Fatalf("qos_policy decode lost fields: %+v", spec.QoSPolicy)
	}
	if spec.SLO == nil || *spec.SLO != (SLOSpec{Class: "bulk", TargetP99NS: 5000}) {
		t.Fatalf("slo decode lost fields: %+v", spec.SLO)
	}
	out, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back JobSpec
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if string(out) == "" || back.Tenants[0] != a {
		t.Fatalf("round trip changed tenant: %+v vs %+v", back.Tenants[0], a)
	}
}
