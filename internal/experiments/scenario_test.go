package experiments

import (
	"strings"
	"testing"

	"hams/internal/report"
)

// The replay target's cells each verify live-vs-replayed bit equality
// internally; here we pin the artifact shape the CI gate consumes.
func TestReplayTargetCells(t *testing.T) {
	o := tiny
	o.Recorder = &report.Recorder{}
	tabs, err := Replay(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || !strings.Contains(tabs[0].String(), "bit-identical") {
		t.Fatalf("replay table missing determinism column:\n%v", tabs)
	}
	art := o.Recorder.Artifact("replay", o.Scale, o.Seed, o.Parallel)
	if len(art.Cells) != len(replayPairs) {
		t.Fatalf("replay recorded %d cells, want %d", len(art.Cells), len(replayPairs))
	}
	c := art.Cells[0]
	if c.Key != "replay/seqRd@hams-LE" || c.Platform != "hams-LE" || c.Workload != "seqRd" {
		t.Fatalf("first cell mislabeled: %+v", c)
	}
	for _, c := range art.Cells {
		if c.UnitsPerSec <= 0 {
			t.Fatalf("cell %s has no throughput", c.Key)
		}
		if _, ok := c.Extra["p95_ns"]; !ok {
			t.Fatalf("cell %s missing latency percentiles: %+v", c.Key, c.Extra)
		}
	}
}

// The mixed target: scenario cells carry the scenario identity and
// per-tenant latency percentiles in Extra, keyed by tenant name.
func TestMixedTargetCells(t *testing.T) {
	o := tiny
	o.Recorder = &report.Recorder{}
	tabs, err := Mixed(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 {
		t.Fatalf("mixed returned %d tables", len(tabs))
	}
	scs := DefaultScenarios()
	art := o.Recorder.Artifact("mixed", o.Scale, o.Seed, o.Parallel)
	if len(art.Cells) != len(scs) {
		t.Fatalf("mixed recorded %d cells, want %d", len(art.Cells), len(scs))
	}
	c := art.Cells[0]
	if c.Key != "mixed/rd+wr@hams-LE" || c.Scenario != "rd+wr" || c.Platform != "hams-LE" {
		t.Fatalf("first cell mislabeled: %+v", c)
	}
	for i, c := range art.Cells {
		if c.UnitsPerSec <= 0 {
			t.Fatalf("cell %s has no throughput", c.Key)
		}
		for _, ten := range scs[i].Tenants {
			if _, ok := c.Extra["p95_ns:"+ten.Name]; !ok {
				t.Fatalf("cell %s missing p95 for tenant %s: %+v", c.Key, ten.Name, c.Extra)
			}
		}
	}
}

// Two tenants running the same workload in one scenario must not walk
// identical address streams: per-tenant seed derivation decorrelates
// them, and the result stays deterministic.
func TestMixedSameWorkloadTenantsDecorrelated(t *testing.T) {
	sc := DefaultScenarios()[0]
	sc.Name = "twins"
	sc.Tenants = sc.Tenants[:0:0]
	sc.Tenants = append(sc.Tenants,
		DefaultScenarios()[0].Tenants[0], DefaultScenarios()[0].Tenants[0])
	sc.Tenants[1].Name = "reader2"
	out, err := mixedCell(tiny, sc, 77)
	if err != nil {
		t.Fatal(err)
	}
	a, b := out.rep.Tenants[0], out.rep.Tenants[1]
	if a.Units == 0 || b.Units == 0 {
		t.Fatalf("twin tenants made no progress: %+v %+v", a, b)
	}
	// Identical streams would finish in lockstep with identical
	// latency distributions; decorrelated ones cannot match on every
	// percentile and the mean simultaneously.
	if a.Mean == b.Mean && a.P50 == b.P50 && a.P95 == b.P95 && a.P99 == b.P99 && a.Max == b.Max {
		t.Fatalf("twin tenants look stream-correlated: %+v vs %+v", a, b)
	}
}
