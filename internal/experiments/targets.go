package experiments

import (
	"fmt"

	"hams/internal/stats"
)

// This file is the single name→target dispatch table. It used to live
// in cmd/hamsbench; it moved here so the CLI and the job API
// (internal/api) resolve and run the exact same target set — a
// hamsbench invocation and a POST /v1/jobs body naming the same
// targets produce byte-identical BENCH cells.

// TargetNames lists every experiment target in canonical order (the
// order `all` expands to).
func TargetNames() []string {
	return []string{"table1", "table2", "table3", "fig5", "fig6", "fig7",
		"fig10", "fig16", "fig17", "fig18", "fig19", "fig20", "headline",
		"ablation", "sweep", "replay", "mixed", "qos", "autoqos", "mlp",
		"sampled"}
}

// KnownTarget reports whether RunTarget accepts the name.
func KnownTarget(name string) bool {
	for _, t := range TargetNames() {
		if t == name {
			return true
		}
	}
	return false
}

// ExpandTargets resolves "all" and drops repeats (first occurrence
// wins): a target run twice would record duplicate cell keys into the
// artifact, breaking the key-uniqueness the compare gate relies on.
func ExpandTargets(targets []string) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(t string) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, tgt := range targets {
		if tgt == "all" {
			for _, t := range TargetNames() {
				add(t)
			}
			continue
		}
		add(tgt)
	}
	return out
}

// RunTarget executes one named target and returns its rendered
// tables; cells land in o.Recorder when set. The qos target runs
// without its markdown summary here — hamsbench layers that on via
// QoSWithSummary.
func RunTarget(name string, o Options) ([]*stats.Table, error) {
	one := func(t *stats.Table, e error) ([]*stats.Table, error) {
		return []*stats.Table{t}, e
	}
	switch name {
	case "table1", "table2", "table3":
		return StaticTables(o, name)
	case "fig5":
		return Fig5(o)
	case "fig6":
		return Fig6(o)
	case "fig7":
		return Fig7(o)
	case "fig10":
		return one(Fig10(o))
	case "fig16":
		return Fig16(o)
	case "fig17":
		return one(Fig17(o))
	case "fig18":
		return one(Fig18(o))
	case "fig19":
		return one(Fig19(o))
	case "fig20":
		return Fig20(o)
	case "headline":
		return one(Headline(o))
	case "ablation":
		return one(Ablation(o))
	case "sweep":
		return AssocShardSweep(o)
	case "mlp":
		return MLPSweep(o)
	case "replay":
		return Replay(o)
	case "mixed":
		return Mixed(o)
	case "qos":
		return QoS(o)
	case "autoqos":
		return AutoQoS(o)
	case "sampled":
		return Sampled(o)
	default:
		return nil, fmt.Errorf("experiments: unknown target %q", name)
	}
}
