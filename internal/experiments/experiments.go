// Package experiments regenerates every table and figure of the
// paper's evaluation (§III and §VI). Each FigN function runs the
// relevant workload × platform matrix and renders the same rows/series
// the paper plots; EXPERIMENTS.md records paper-vs-measured shapes.
package experiments

import (
	"context"
	"fmt"

	"hams/internal/checkpoint"
	"hams/internal/cpu"
	"hams/internal/energy"
	"hams/internal/platform"
	"hams/internal/report"
	"hams/internal/runner"
	"hams/internal/sim"
	"hams/internal/stats"
	"hams/internal/workload"
)

// Options tunes a harness invocation.
type Options struct {
	// Scale multiplies Table III instruction counts (default 3e-6).
	Scale float64
	// Seed fixes workload randomness. Targets that run through the
	// concurrent engine derive each cell's seed from this value and
	// the cell's workload (runner.DeriveSeed), so results are
	// identical for any worker count.
	Seed int64
	// Parallel is the engine worker count: 0 = GOMAXPROCS, 1 = serial.
	Parallel int
	// Shuffle, when nonzero, deterministically permutes cell dispatch
	// order (determinism testing; see runner.Engine.ShuffleSeed).
	Shuffle int64
	// Recorder, when set, collects one report.Cell per engine cell for
	// BENCH artifact serialization.
	Recorder *report.Recorder
	// Ctx stops dispatch of pending cells when cancelled (already
	// in-flight cells run to completion — the simulator core does not
	// poll the context); nil = Background.
	Ctx context.Context

	// Runner, when set, executes every engine cell batch instead of a
	// per-target Engine built from Parallel/Shuffle — how hamsd
	// multiplexes many concurrent jobs onto one shared runner.Pool.
	// Determinism is unaffected: results are a pure function of the
	// cells, not of which pool ran them.
	Runner runner.CellRunner
	// Progress, when set, is invoked once per completed engine cell
	// with the cell's artifact record — the mid-run hook behind hamsd
	// result streaming and `hamsbench -progress`. It fires in
	// completion order from worker goroutines (possibly concurrently)
	// and must not block for long; the returned tables and recorded
	// artifacts are identical with or without it.
	Progress func(report.Cell)

	// QoSMasks / QoSMBps override the `qos` target's isolated-policy
	// way masks and bandwidth throttles per class name (hamsbench
	// -qos-masks / -qos-mbps). nil keeps the built-in policy.
	QoSMasks map[string]uint64
	QoSMBps  map[string]float64

	// SLOTargetP99 overrides the `autoqos` target's rolling-p99
	// objective for the feedback-controlled cell (hamsbench -slo-p99);
	// 0 keeps the built-in target.
	SLOTargetP99 sim.Time

	// Checkpoint, when set, pre-pays the sampled target's warm-up:
	// the fan-out cell restores its N cells from this image instead of
	// warming up live once (hamsbench -from-checkpoint). The image
	// must come from the sampled scenario at the same seed — produced
	// by SampledCheckpoint / hamsbench -checkpoint — or the cell fails
	// (a structural mismatch refuses the restore; a same-shape image
	// from another seed trips the live-twin bit-identity check). nil
	// keeps the self-contained behavior.
	Checkpoint *checkpoint.Image

	// MSHRs, when nonzero, overrides the per-bank MSHR depth of every
	// HAMS matrix cell that does not pin its own (hamsbench -mshrs):
	// a one-flag way to regenerate any figure under the non-blocking
	// miss pipeline. 0 keeps each target's own configuration — the
	// blocking pipeline unless the cell opts in (the mlp sweep).
	MSHRs int
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// DefaultOptions returns harness defaults sized so the full figure set
// completes in minutes on a laptop.
func DefaultOptions() Options { return Options{Scale: 3e-6, Seed: 42} }

func (o Options) wl() workload.Options {
	w := workload.DefaultOptions()
	if o.Scale > 0 {
		w.Scale = o.Scale
	}
	w.Seed = o.Seed
	return w
}

// applyMSHRs threads the -mshrs override into a platform option set
// that has not pinned its own depth (the mlp sweep pins one per
// cell). Every HAMS-cell path — the run matrix, and the replay,
// mixed and qos scenario targets — routes its options through here.
func (o Options) applyMSHRs(p platform.Options) platform.Options {
	if o.MSHRs != 0 && p.HAMSMSHRs == 0 {
		p.HAMSMSHRs = o.MSHRs
	}
	return p
}

// RunResult captures one workload × platform run.
type RunResult struct {
	Platform string
	Workload string
	CPU      cpu.Stats
	Units    int64 // pages (micro/Rodinia) or SQL ops
	Energy   energy.Breakdown
	Plat     platform.Platform
}

// UnitsPerSec returns work items per second of simulated time.
func (r RunResult) UnitsPerSec() float64 {
	secs := r.CPU.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.Units) / secs
}

// Run executes one workload on one platform.
func Run(platName, wlName string, o Options, popt platform.Options, wopt *workload.Options) (RunResult, error) {
	spec, err := workload.ByName(wlName)
	if err != nil {
		return RunResult{}, err
	}
	plat, err := platform.New(platName, popt)
	if err != nil {
		return RunResult{}, err
	}
	wo := o.wl()
	if wopt != nil {
		wo = *wopt
	}
	for _, hr := range spec.HotRegions(wo) {
		plat.Warm(hr.Base, hr.Size)
	}
	streams := spec.Streams(wo)
	ccfg := cpu.DefaultConfig()
	// The system page size sets the MMU translation granularity
	// (Fig. 20a varies it): HAMS maps MoS pages; everything else runs
	// on the 4 KiB default.
	if pg := platform.MappingPage(platName, popt); pg != 0 {
		ccfg.TLB.PageBytes = pg
	}
	runner := cpu.NewRunner(ccfg, plat)
	st, err := runner.Run(streams)
	if err != nil {
		return RunResult{}, fmt.Errorf("%s on %s: %w", wlName, platName, err)
	}
	var units int64
	for _, s := range streams {
		if p, ok := s.(workload.Progress); ok {
			units += p.Units()
		}
	}
	in := plat.EnergyInputs()
	in.Elapsed = st.Elapsed
	in.Cores = cpu.DefaultConfig().Cores
	in.CPUBusy = busyTime(st)
	eb := energy.Compute(energy.DefaultParams(), in)
	return RunResult{
		Platform: platName, Workload: wlName,
		CPU: st, Units: units, Energy: eb, Plat: plat,
	}, nil
}

// busyTime estimates the cores' active (non-stalled) time: compute
// plus cache-access time. Memory-system stalls count as idle — for
// mmap the process is context-switched out; for hardware paths the
// core clock-gates in the stall.
func busyTime(st cpu.Stats) sim.Time {
	cfg := cpu.DefaultConfig()
	cache := sim.Time(st.L1Hits+st.L1Misses)*cfg.L1Lat +
		sim.Time(st.L2Hits+st.L2Misses)*cfg.L2Lat
	return st.ComputeTime + cache
}

// workloadsOf filters Table III by suite kinds.
func workloadsOf(kinds ...workload.Kind) []workload.Spec {
	var out []workload.Spec
	for _, s := range workload.All() {
		for _, k := range kinds {
			if s.Kind == k {
				out = append(out, s)
			}
		}
	}
	return out
}

// Table1 renders the paper's feature-comparison table (static).
func Table1() *stats.Table {
	t := stats.NewTable("Table I: persistent-memory feature comparison",
		"type", "capacity", "OS intervention", "performance", "byte-addressable")
	t.AddRow("NVDIMM-N", "low", "no", "DRAM-like", "yes")
	t.AddRow("NVDIMM-F", "high", "yes", "slow", "no")
	t.AddRow("NVDIMM-P", "medium", "yes", "medium", "yes")
	t.AddRow("HAMS", "high", "no", "DRAM-like", "yes")
	return t
}

// Table2 renders the simulator configuration (Table II).
func Table2() *stats.Table {
	t := stats.NewTable("Table II: simulated system", "component", "configuration")
	t.AddRow("CPU", "quad-core, 2 GHz, base CPI 1.0")
	t.AddRow("cache", "64KB L1D per core / 2MB shared L2")
	t.AddRow("memory", "NVDIMM-N, DDR4-2133, 8 GB, 128 KB MoS pages")
	t.AddRow("storage", "ULL-Flash, 512 MB buffer, 800 GB-class")
	t.AddRow("flash", "Z-NAND: 3 us read, 100 us program")
	t.AddRow("interconnect", "PCIe 3.0 x4 (loose) / shared DDR4 (tight)")
	return t
}

// Table3 renders the workload characteristics (Table III).
func Table3() *stats.Table {
	t := stats.NewTable("Table III: workload characteristics",
		"workload", "suite", "threads", "instr (paper)", "load", "store", "dataset")
	for _, s := range workload.All() {
		t.AddRow(s.Name, s.Kind.String(), fmt.Sprint(s.Threads),
			fmt.Sprintf("%dG", s.Instructions/1e9),
			stats.F(s.LoadRatio), stats.F(s.StoreRatio),
			fmt.Sprintf("%dGB", s.DatasetBytes>>30))
	}
	return t
}
