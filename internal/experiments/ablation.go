package experiments

import (
	"fmt"

	"hams/internal/mem"
	"hams/internal/platform"
	"hams/internal/stats"
)

// Ablation quantifies the design choices DESIGN.md calls out, each as
// a throughput ratio against the corresponding default configuration.
//
//   - hardware automation: hams-LE vs the §VII software-assisted
//     variant (hams-SW) that takes a page fault per miss;
//   - Z-NAND medium: the archive with Z-NAND vs conventional TLC;
//   - channel parallelism: 16 vs 4 flash channels;
//   - PRP clone pool: 64 vs 4 slots (hazard-management headroom);
//   - MoS page size: 128 KiB vs 4 KiB and 1 MiB (Fig. 20a endpoints).
func Ablation(o Options) (*stats.Table, error) {
	t := stats.NewTable("Ablation: design choices (throughput ratio, variant / default)",
		"design choice", "workload", "default", "variant", "ratio")

	type row struct {
		label    string
		workload string
		basePlat string
		baseOpt  platform.Options
		varPlat  string
		varOpt   platform.Options
	}
	rows := []row{
		{"hardware automation (vs page-fault per miss)", "update",
			"hams-LE", platform.Options{}, "hams-SW", platform.Options{}},
		{"hardware automation (vs page-fault per miss)", "seqRd",
			"hams-LE", platform.Options{}, "hams-SW", platform.Options{}},
		{"Z-NAND medium (vs TLC archive)", "seqRd",
			"hams-TE", platform.Options{}, "hams-TE", platform.Options{ArchiveTLC: true}},
		{"Z-NAND medium (vs TLC archive)", "rndIns",
			"hams-TE", platform.Options{}, "hams-TE", platform.Options{ArchiveTLC: true}},
		{"16 flash channels (vs 4)", "seqRd",
			"hams-TE", platform.Options{}, "hams-TE", platform.Options{ArchiveChannels: 4}},
		{"PRP pool 64 slots (vs 4)", "rndIns",
			"hams-LE", platform.Options{}, "hams-LE", platform.Options{HAMSPRPSlots: 4}},
		{"128 KiB MoS page (vs 4 KiB)", "seqSel",
			"hams-TE", platform.Options{}, "hams-TE", platform.Options{HAMSPage: 4 * mem.KiB}},
		{"128 KiB MoS page (vs 1 MiB)", "rndIns",
			"hams-TE", platform.Options{}, "hams-TE", platform.Options{HAMSPage: mem.MiB}},
	}
	// Each row is two engine cells (base + variant); keys carry the row
	// index because several rows reuse the same base configuration.
	var cells []matrixCell
	for i, r := range rows {
		cells = append(cells,
			matrixCell{key: fmt.Sprintf("r%02d/base", i),
				platform: r.basePlat, workload: r.workload, popt: r.baseOpt},
			matrixCell{key: fmt.Sprintf("r%02d/variant", i),
				platform: r.varPlat, workload: r.workload, popt: r.varOpt})
	}
	res, err := runMatrix(o, "ablation", cells)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		base, v := res[2*i], res[2*i+1]
		ratio := 0.0
		if base.UnitsPerSec() > 0 {
			ratio = v.UnitsPerSec() / base.UnitsPerSec()
		}
		t.AddRow(r.label, r.workload,
			fmt.Sprintf("%s %.0f/s", r.basePlat, base.UnitsPerSec()),
			fmt.Sprintf("%.0f/s", v.UnitsPerSec()),
			stats.Ratio(ratio))
	}
	return t, nil
}
