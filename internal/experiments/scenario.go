package experiments

import (
	"bytes"
	"context"
	"fmt"

	"hams/internal/platform"
	"hams/internal/replay"
	"hams/internal/report"
	"hams/internal/runner"
	"hams/internal/stats"
	"hams/internal/trace"
)

// This file hosts the two trace/scenario targets:
//
//   - `replay`: for each (platform, workload) pair, run the workload
//     live, push the identical streams through the v2 trace codec
//     (record → encode → decode), replay the trace on a fresh
//     platform, and REQUIRE the replayed simulated stats to match the
//     live run bit-for-bit. The determinism guarantee of the replay
//     subsystem is thus enforced on every CI bench run, not just in
//     unit tests.
//
//   - `mixed`: multi-tenant interleaved scenarios — N tenants
//     (synthetic workloads and/or traces) co-located on one platform,
//     with per-tenant p50/p95/p99 access-latency breakdowns showing
//     the interference the shared MoS cache and archive impose.

// replayPairs is the (platform, workload) matrix of the replay target:
// one workload per generator family plus the mmap software baseline,
// so the codec and the determinism check cover every stream shape.
var replayPairs = []struct{ platform, workload string }{
	{"hams-LE", "seqRd"},
	{"hams-LE", "rndRd"},
	{"hams-LE", "rndIns"},
	{"hams-LE", "BFS"},
	{"mmap", "rndRd"},
}

// replayOut is one replay cell's output (the live run is verified
// inside the cell and dropped — only the replayed result renders).
type replayOut struct {
	platform, workload string
	steps              int64
	rep                replay.Result
	cell               report.Cell
}

func (r replayOut) reportCell() report.Cell { return r.cell }

// Replay runs the record→replay determinism matrix as engine cells.
func Replay(o Options) ([]*stats.Table, error) {
	jobs := make([]cellJob, len(replayPairs))
	for i, p := range replayPairs {
		pair := p
		jobs[i] = cellJob{
			key:     pair.workload + "@" + pair.platform,
			seedKey: pair.workload,
			fn: func(ctx context.Context, seed int64) (any, error) {
				return replayCell(o, pair.platform, pair.workload, seed)
			},
		}
	}
	vals, err := runCellJobs(o, "replay", jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Replay: record→replay determinism (trace v2 codec)",
		"workload", "platform", "steps", "units/s", "p50", "p95", "p99", "live≡replay")
	for _, v := range vals {
		r, ok := v.(replayOut)
		if !ok {
			return nil, fmt.Errorf("experiments: replay cell returned %T", v)
		}
		ten := r.rep.Tenants[0]
		t.AddRow(r.workload, r.platform, fmt.Sprint(r.steps),
			fmt.Sprintf("%.0f", r.rep.UnitsPerSec()),
			fmt.Sprintf("%dns", ten.P50), fmt.Sprintf("%dns", ten.P95), fmt.Sprintf("%dns", ten.P99),
			"bit-identical")
	}
	return []*stats.Table{t}, nil
}

// replayCell runs one workload live, round-trips its streams through
// the trace container, replays, and verifies bit-for-bit equality.
func replayCell(o Options, platName, wlName string, seed int64) (replayOut, error) {
	co := o
	co.Seed = seed
	popt := o.applyMSHRs(platform.Options{})
	live, err := Run(platName, wlName, co, popt, nil)
	if err != nil {
		return replayOut{}, err
	}
	var buf bytes.Buffer
	steps, err := replay.RecordWorkload(&buf, wlName, co.wl(), replay.AllThreads)
	if err != nil {
		return replayOut{}, fmt.Errorf("recording %s: %w", wlName, err)
	}
	f, err := trace.Decode(&buf)
	if err != nil {
		return replayOut{}, fmt.Errorf("decoding %s trace: %w", wlName, err)
	}
	rep, err := replay.Run(replay.Scenario{
		Name:     wlName,
		Platform: platName,
		PlatOpts: popt,
		Tenants:  []replay.Tenant{{Name: wlName, Trace: f}},
	}, replay.Options{})
	if err != nil {
		return replayOut{}, err
	}
	if rep.CPU != live.CPU {
		return replayOut{}, fmt.Errorf("replay determinism violated on %s/%s: live %+v vs replayed %+v",
			platName, wlName, live.CPU, rep.CPU)
	}
	if rep.Units != live.Units {
		return replayOut{}, fmt.Errorf("replay determinism violated on %s/%s: live units %d vs replayed %d",
			platName, wlName, live.Units, rep.Units)
	}
	if rep.Energy.Total() != live.Energy.Total() {
		return replayOut{}, fmt.Errorf("replay determinism violated on %s/%s: live energy %g vs replayed %g",
			platName, wlName, live.Energy.Total(), rep.Energy.Total())
	}
	ten := rep.Tenants[0]
	return replayOut{
		platform: platName, workload: wlName, steps: steps, rep: rep,
		cell: report.Cell{
			Platform:    platName,
			Workload:    wlName,
			SimNS:       int64(rep.CPU.Elapsed),
			Units:       rep.Units,
			UnitsPerSec: rep.UnitsPerSec(),
			EnergyJ:     rep.Energy.Total(),
			Extra: map[string]float64{
				"p50_ns": float64(ten.P50),
				"p95_ns": float64(ten.P95),
				"p99_ns": float64(ten.P99),
			},
		},
	}, nil
}

// DefaultScenarios are the built-in multi-tenant mixes of the `mixed`
// target. Co-located tenants share the platform's entire memory
// system, so per-tenant p95/p99 exposes the interference a noisy
// neighbor imposes through the MoS cache and archive bandwidth.
func DefaultScenarios() []replay.Scenario {
	return []replay.Scenario{
		{Name: "rd+wr", Platform: "hams-LE", Tenants: []replay.Tenant{
			{Name: "reader", Workload: "rndRd"},
			{Name: "writer", Workload: "seqWr"},
		}},
		{Name: "db+graph", Platform: "hams-LE", Tenants: []replay.Tenant{
			{Name: "oltp", Workload: "rndIns"},
			{Name: "graph", Workload: "BFS"},
		}},
		{Name: "tri", Platform: "hams-LE", Tenants: []replay.Tenant{
			{Name: "reader", Workload: "rndRd"},
			{Name: "oltp", Workload: "update"},
			{Name: "kmeans", Workload: "KMN"},
		}},
		{Name: "rd+wr", Platform: "mmap", Tenants: []replay.Tenant{
			{Name: "reader", Workload: "rndRd"},
			{Name: "writer", Workload: "seqWr"},
		}},
	}
}

// mixedOut is one scenario cell's output.
type mixedOut struct {
	rep  replay.Result
	cell report.Cell
}

func (m mixedOut) reportCell() report.Cell { return m.cell }

// Mixed runs the multi-tenant scenarios as engine cells.
func Mixed(o Options) ([]*stats.Table, error) {
	return RunScenarios(o, DefaultScenarios())
}

// RunScenarios executes arbitrary scenarios through the engine and
// renders per-tenant latency breakdowns. Cell keys are
// "<scenario>@<platform>"; seeds derive from the scenario name alone,
// so the same mix stays stream-paired across platforms.
func RunScenarios(o Options, scs []replay.Scenario) ([]*stats.Table, error) {
	jobs := make([]cellJob, len(scs))
	for i, sc := range scs {
		sc := sc
		jobs[i] = cellJob{
			key:     sc.Name + "@" + sc.Platform,
			seedKey: sc.Name,
			fn: func(ctx context.Context, seed int64) (any, error) {
				return mixedCell(o, sc, seed)
			},
		}
	}
	vals, err := runCellJobs(o, "mixed", jobs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Mixed: multi-tenant scenarios (per-tenant latency breakdown)",
		"scenario", "platform", "tenant", "threads", "units", "p50", "p95", "p99", "units/s")
	for _, v := range vals {
		m, ok := v.(mixedOut)
		if !ok {
			return nil, fmt.Errorf("experiments: mixed cell returned %T", v)
		}
		threads := 0
		for _, ten := range m.rep.Tenants {
			threads += ten.Threads
			t.AddRow(m.rep.Scenario, m.rep.Platform, ten.Name, fmt.Sprint(ten.Threads),
				fmt.Sprint(ten.Units),
				fmt.Sprintf("%dns", ten.P50), fmt.Sprintf("%dns", ten.P95), fmt.Sprintf("%dns", ten.P99),
				"")
		}
		t.AddRow(m.rep.Scenario, m.rep.Platform, "(all)", fmt.Sprint(threads),
			fmt.Sprint(m.rep.Units), "", "", "",
			fmt.Sprintf("%.0f", m.rep.UnitsPerSec()))
	}
	return []*stats.Table{t}, nil
}

// mixedCell runs one scenario with per-tenant seeds derived from the
// cell seed and each tenant's name (unique within a scenario), so
// reordering or inserting tenants never reseeds the others.
func mixedCell(o Options, sc replay.Scenario, seed int64) (mixedOut, error) {
	tenants := make([]replay.Tenant, len(sc.Tenants))
	copy(tenants, sc.Tenants)
	for i := range tenants {
		if tenants[i].Trace == nil && tenants[i].Seed == 0 {
			tenants[i].Seed = runner.DeriveSeed(seed, tenants[i].Name)
		}
	}
	sc.Tenants = tenants
	sc.PlatOpts = o.applyMSHRs(sc.PlatOpts)
	rep, err := replay.Run(sc, replay.Options{Scale: o.Scale, Seed: seed})
	if err != nil {
		return mixedOut{}, err
	}
	extra := make(map[string]float64, 4*len(rep.Tenants))
	for _, ten := range rep.Tenants {
		extra["p50_ns:"+ten.Name] = float64(ten.P50)
		extra["p95_ns:"+ten.Name] = float64(ten.P95)
		extra["p99_ns:"+ten.Name] = float64(ten.P99)
		extra["units:"+ten.Name] = float64(ten.Units)
	}
	return mixedOut{
		rep: rep,
		cell: report.Cell{
			Platform:    rep.Platform,
			Scenario:    rep.Scenario,
			SimNS:       int64(rep.CPU.Elapsed),
			Units:       rep.Units,
			UnitsPerSec: rep.UnitsPerSec(),
			EnergyJ:     rep.Energy.Total(),
			Extra:       extra,
		},
	}, nil
}
