package experiments

import (
	"context"
	"fmt"
	"strings"

	"hams/internal/qos"
	"hams/internal/replay"
	"hams/internal/report"
	"hams/internal/sim"
	"hams/internal/stats"
)

// This file hosts the `autoqos` target: the dynamic-QoS closed loop
// against the static policy sweep. The same stream+latency co-location
// scenario as the `qos` target runs under five policies — the four
// static CLOS tables (shared/cat/mba/cat+mba, numerically identical to
// the `qos` target's cells since the seeds derive from the same key)
// plus "auto": an initially partitioned table driven by the SLO
// feedback controller (internal/qos.Controller), which adapts the
// streamer's way mask and bandwidth cap at runtime to hold the
// service's rolling p99 at the target while letting the streamer draw
// every MB/s the target tolerates.
//
// The auto cell's extras carry the controller trajectory (reconfig
// count, final mask/cap per class); AutoQoSMarkdown renders the
// controller-vs-static delta table for CI step summaries. The CI
// acceptance relation — auto victim p99 ≤ the best static policy's
// while auto aggressor units/s strictly exceeds static cat+mba — is
// pinned by TestAutoQoSAcceptance.

// autoVariantName labels the feedback-controlled cell.
const autoVariantName = "auto"

// Built-in SLO for the auto cell (CLI-overridable target via
// -slo-p99). The initial table starts fully partitioned — the service
// holds 7 of 8 ways, the streamer 1, uncapped — and the controller
// meters the streamer's archive bandwidth from there: the victim's
// working set fits its partition, so its tail is pure bank/archive
// contention, exactly the axis an MBA cap controls.
const (
	autoVictimMask    = 0xfe
	autoAggressorMask = 0x01
	// autoSLOTargetP99 is the default rolling-p99 objective, sized
	// between the cat+mba tail floor (~3.3µs at bench scale) and the
	// cat-only tail (~9µs) of the built-in scenario: tight enough that
	// the controller clamps the streamer's bursts (holding the victim's
	// full-run p99 under every static policy's), loose enough that the
	// cap recovers to MaxMBps between bursts instead of oscillating.
	autoSLOTargetP99 = 6 * sim.Microsecond
)

// autoSLO assembles the controller objective for the auto cell.
func autoSLO(o Options) qos.SLO {
	target := sim.Time(autoSLOTargetP99)
	if o.SLOTargetP99 > 0 {
		target = o.SLOTargetP99
	}
	return qos.SLO{
		Class:     qosVictim,
		TargetP99: target,
		Window:    512,
		MinMBps:   50,
		MaxMBps:   4000,
		AddMBps:   200,
		MinWays:   1,
		Hold:      2,
	}
}

// autoTable is the auto cell's initial CLOS table.
func autoTable() *qos.Table {
	return &qos.Table{Classes: []qos.Class{
		{Name: qosVictim, WayMask: autoVictimMask},
		{Name: qosAggressor, WayMask: autoAggressorMask},
	}}
}

// AutoQoS runs the dynamic-vs-static sweep (console tables only).
func AutoQoS(o Options) ([]*stats.Table, error) {
	tables, _, err := AutoQoSWithSummary(o)
	return tables, err
}

// AutoQoSWithSummary runs the sweep and also renders the markdown
// controller-vs-static delta table for CI step summaries.
func AutoQoSWithSummary(o Options) ([]*stats.Table, string, error) {
	if err := ValidateQoSOverrides(o.QoSMasks, o.QoSMBps); err != nil {
		return nil, "", err
	}
	variants := qosVariants(o)
	jobs := make([]cellJob, 0, len(variants)+1)
	for _, v := range variants {
		v := v
		jobs = append(jobs, cellJob{
			key:     qosScenario + "/" + v.name + "@" + qosPlatform,
			seedKey: qosScenario,
			fn: func(ctx context.Context, seed int64) (any, error) {
				return qosCell(o, v, seed)
			},
		})
	}
	jobs = append(jobs, cellJob{
		key:     qosScenario + "/" + autoVariantName + "@" + qosPlatform,
		seedKey: qosScenario,
		fn: func(ctx context.Context, seed int64) (any, error) {
			return autoQoSCell(o, seed)
		},
	})
	vals, err := runCellJobs(o, "autoqos", jobs)
	if err != nil {
		return nil, "", err
	}
	t := stats.NewTable("AutoQoS: SLO feedback control vs static CLOS policies",
		"scenario", "policy", "tenant", "p50", "p95", "p99", "occ(pages)", "fill MB/s", "throttled", "units/s", "reconfigs")
	outs := make([]qosOut, 0, len(vals))
	for _, val := range vals {
		q, ok := val.(qosOut)
		if !ok {
			return nil, "", fmt.Errorf("experiments: autoqos cell returned %T", val)
		}
		outs = append(outs, q)
		for _, ten := range q.rep.Tenants {
			t.AddRow(q.rep.Scenario, q.variant, ten.Name,
				fmt.Sprintf("%dns", ten.P50), fmt.Sprintf("%dns", ten.P95), fmt.Sprintf("%dns", ten.P99),
				fmt.Sprint(ten.QoS.Occupancy),
				stats.F(ten.QoS.FillMBps(q.rep.CPU.Elapsed)),
				fmt.Sprintf("%v", ten.QoS.ThrottleNS),
				"", "")
		}
		t.AddRow(q.rep.Scenario, q.variant, "(all)", "", "", "", "", "", "",
			fmt.Sprintf("%.0f", q.rep.UnitsPerSec()),
			fmt.Sprint(q.rep.QoSReconfigs))
	}
	return []*stats.Table{t}, AutoQoSMarkdown(outs), nil
}

// autoQoSCell runs the feedback-controlled variant.
func autoQoSCell(o Options, seed int64) (qosOut, error) {
	v := qosVariant{name: autoVariantName, qos: autoTable()}
	sc := qosScenarioFor(v, seed)
	sc.PlatOpts = o.applyMSHRs(sc.PlatOpts)
	slo := autoSLO(o)
	sc.SLO = &slo
	rep, err := replay.Run(sc, replay.Options{Seed: seed})
	if err != nil {
		return qosOut{}, err
	}
	extra := make(map[string]float64, 9*len(rep.Tenants)+1+2*len(rep.QoSFinal))
	for _, ten := range rep.Tenants {
		extra["p50_ns:"+ten.Name] = float64(ten.P50)
		extra["p95_ns:"+ten.Name] = float64(ten.P95)
		extra["p99_ns:"+ten.Name] = float64(ten.P99)
		extra["units:"+ten.Name] = float64(ten.Units)
		extra["occ_pages:"+ten.Name] = float64(ten.QoS.Occupancy)
		extra["occ_peak:"+ten.Name] = float64(ten.QoS.OccupancyPeak)
		extra["fill_mbps:"+ten.Name] = ten.QoS.FillMBps(rep.CPU.Elapsed)
		extra["wb_mbps:"+ten.Name] = ten.QoS.WBMBps(rep.CPU.Elapsed)
		extra["throttle_ns:"+ten.Name] = float64(ten.QoS.ThrottleNS)
	}
	// Controller trajectory: how many reprogrammings it issued and
	// where the policy ended up. Masks serialize as their numeric value
	// (0 = full, matching qos.FormatMask's input convention).
	extra["reconfigs"] = float64(rep.QoSReconfigs)
	extra["slo_target_p99_ns"] = float64(slo.TargetP99)
	for _, cl := range rep.QoSFinal {
		extra["final_mask:"+cl.Name] = float64(cl.WayMask)
		extra["final_mbps:"+cl.Name] = cl.MBps
	}
	return qosOut{
		variant: autoVariantName,
		rep:     rep,
		cell: report.Cell{
			Platform:    rep.Platform,
			Scenario:    qosScenario + "/" + autoVariantName,
			SimNS:       int64(rep.CPU.Elapsed),
			Units:       rep.Units,
			UnitsPerSec: rep.UnitsPerSec(),
			EnergyJ:     rep.Energy.Total(),
			Extra:       extra,
		},
	}, nil
}

// AutoQoSMarkdown renders the controller-vs-static delta table: the
// victim's tail under every policy next to the aggressor's progress,
// with the controller's trajectory on the auto row.
func AutoQoSMarkdown(outs []qosOut) string {
	var auto *qosOut
	for i := range outs {
		if outs[i].variant == autoVariantName {
			auto = &outs[i]
		}
	}
	var b strings.Builder
	b.WriteString("### AutoQoS: SLO feedback control vs static policies\n\n")
	if auto == nil || len(outs) == 0 {
		b.WriteString("No feedback-controlled cell recorded.\n")
		return b.String()
	}
	autop99 := tenantStat(auto.rep, qosVictim).P99
	b.WriteString("| policy | victim p99 | Δp99 vs auto | aggressor units | aggressor fill MB/s | reconfigs | final streamer cap |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|\n")
	for _, q := range outs {
		vict := tenantStat(q.rep, qosVictim)
		aggr := tenantStat(q.rep, qosAggressor)
		delta := "—"
		if q.variant != autoVariantName && autop99 > 0 {
			delta = fmt.Sprintf("%+.1f%%", (float64(vict.P99)-float64(autop99))/float64(autop99)*100)
		}
		reconfigs, finalCap := "—", "—"
		if q.variant == autoVariantName {
			reconfigs = fmt.Sprint(q.rep.QoSReconfigs)
			for _, cl := range q.rep.QoSFinal {
				if cl.Name == qosAggressor {
					if cl.MBps > 0 {
						finalCap = fmt.Sprintf("%.0f MB/s", cl.MBps)
					} else {
						finalCap = "uncapped"
					}
				}
			}
		}
		fmt.Fprintf(&b, "| %s | %dns | %s | %d | %.0f | %s | %s |\n",
			q.variant, vict.P99, delta, aggr.Units,
			aggr.QoS.FillMBps(q.rep.CPU.Elapsed), reconfigs, finalCap)
	}
	return b.String()
}
