package experiments

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"time"

	"hams/internal/checkpoint"
	"hams/internal/mem"
	"hams/internal/platform"
	"hams/internal/replay"
	"hams/internal/report"
	"hams/internal/runner"
	"hams/internal/sim"
	"hams/internal/stats"
)

// This file hosts the `sampled` target: SMARTS-style sampled
// simulation on top of the checkpoint subsystem (internal/checkpoint).
// Two cells on one co-location scenario:
//
//	split    a phase-split run (warm-up + measured phase) with interval
//	         sampling enabled — the cell pins both the full measured
//	         percentiles and the sampled ones, plus their relative
//	         error, and fails if sampling drifts past the pinned bounds
//	         (observation gating must never perturb the simulation, so
//	         both views come from the same run).
//	fanout   the warm-up amortization gate: N measured cells run once
//	         each from live warm-ups and once from a single shared
//	         checkpoint; every restored result must be bit-identical to
//	         its live counterpart AND the checkpointed path must beat
//	         per-cell live warm-up by ≥2× wall clock. Wall times feed
//	         only the markdown summary (never cell extras — BENCH cells
//	         stay byte-identical across hosts).
//
// The scenario intensities are fixed, independent of Options.Scale,
// because the amortization physics need the warm-up to dominate the
// measured phase (~8:1) — see EXPERIMENTS.md.

const (
	sampledScenario = "warm+measure"
	sampledPlatform = "hams-LE"
	// The per-thread warm-up lengths. The service's streams run ~2920
	// steps and the streamer's ~3015 at the pinned scales. The split
	// cell keeps a longer measured phase (~220-315 steps/thread) so the
	// sampled percentiles have enough observations to stay inside the
	// error bounds; the fan-out cell trims it to the last ~2-5% so the
	// warm-up dominates the cost being amortized. Footprints are pinned
	// (svc over 24 MiB, bulk over 48 MiB — just past the 64 MiB cache,
	// so evictions stay in play) rather than sprayed over a huge
	// address space: restore materializes every touched frame and
	// buffer slot, and an unbounded footprint makes save/restore cost
	// eat the amortization the warm-up buys.
	sampledWarmupSplit  = 2700
	sampledWarmupFanout = 2900
	// sampledFanout is N, the number of measured cells one warm-up is
	// amortized over.
	sampledFanout = 8
	// sampledSpeedupFloor is the CI gate: restoring N cells from one
	// checkpoint must beat N live warm-ups by at least this factor
	// (the configuration above yields ~2.5-3×; 2× leaves headroom for
	// host noise without letting the win regress to parity — the floor
	// the EXPERIMENTS.md checkpoint section documents).
	sampledSpeedupFloor = 2.0
	// Sampling error bounds the split cell enforces per tenant, as
	// fractions of the full-run value. SMARTS gates mean performance,
	// so the mean is bounded tightly, and p50 with it (the bulk of the
	// distribution is stable under interval sampling). The high
	// quantiles — p95, p99, max — ride the log-bucketed tail staircase
	// (p95 ≈ 2 ns, p99 ≈ 128 ns, max ≈ 200 µs here), where a tiny
	// shift in sampled tail mass jumps the percentile a whole bucket
	// and the relative error with it; they are recorded in the cell
	// extras but not gated.
	sampledMeanErrBound = 0.10
	sampledP50ErrBound  = 0.10
)

// sampledGateWallClock arms the fan-out cell's wall-clock speedup
// floor. The determinism tests disarm it: under instrumentation
// (-race) host timing ratios are meaningless, and the cells' contents
// — which is what those tests compare — do not depend on it.
var sampledGateWallClock = true

// sampledSampler is the split cell's interval schedule: observe 2 µs,
// skip 8 µs — a 1-in-5 duty cycle whose short period packs hundreds
// of windows into the measured phase at the pinned scales, so bursty
// miss clusters are interleaved rather than caught whole.
func sampledSampler() checkpoint.Sampler {
	return checkpoint.Sampler{
		Measure: 2 * int64(sim.Microsecond),
		Skip:    8 * int64(sim.Microsecond),
	}
}

// sampledScenarioFor assembles the co-location the target runs: a
// hot-set random-read service next to a random-write streamer on a
// small MoS cache with the non-blocking miss pipeline, so the warm-up
// leaves nontrivial state in every layer the checkpoint carries.
func sampledScenarioFor(seed int64, warmup int64) replay.Scenario {
	return replay.Scenario{
		Name:     sampledScenario,
		Platform: sampledPlatform,
		PlatOpts: platform.Options{HAMSWays: 4, HAMSNVDIMM: 64 * mem.MiB, HAMSMSHRs: 4},
		Tenants: []replay.Tenant{
			{
				Name: "svc", Workload: "rndRd",
				Seed:  runner.DeriveSeed(seed, "svc"),
				Scale: 4e-5, Dataset: 24 * mem.MiB, Hot: 4 * mem.MiB, HotFrac: 0.8,
			},
			{
				Name: "bulk", Workload: "rndWr",
				Seed:  runner.DeriveSeed(seed, "bulk"),
				Scale: 3e-5, Dataset: 48 * mem.MiB, Base: mem.GiB,
			},
		},
		Warmup: warmup,
	}
}

// sampledOut is one cell's output.
type sampledOut struct {
	kind string
	rep  replay.Result
	cell report.Cell
	// fan-out wall times (markdown only).
	liveWall, fanWall time.Duration
}

func (s sampledOut) reportCell() report.Cell { return s.cell }

// Sampled runs the target (console tables only).
func Sampled(o Options) ([]*stats.Table, error) {
	tables, _, err := SampledWithSummary(o)
	return tables, err
}

// SampledWithSummary runs the target and renders the warm-up
// amortization markdown for CI step summaries.
func SampledWithSummary(o Options) ([]*stats.Table, string, error) {
	jobs := []cellJob{
		{
			key:     sampledScenario + "/split@" + sampledPlatform,
			seedKey: sampledScenario,
			fn: func(ctx context.Context, seed int64) (any, error) {
				return sampledSplitCell(o, seed)
			},
		},
		{
			key:     sampledScenario + "/fanout@" + sampledPlatform,
			seedKey: sampledScenario,
			fn: func(ctx context.Context, seed int64) (any, error) {
				return sampledFanoutCell(o, seed)
			},
		},
	}
	vals, err := runCellJobs(o, "sampled", jobs)
	if err != nil {
		return nil, "", err
	}
	outs := make([]sampledOut, 0, len(vals))
	for _, v := range vals {
		s, ok := v.(sampledOut)
		if !ok {
			return nil, "", fmt.Errorf("experiments: sampled cell returned %T", v)
		}
		outs = append(outs, s)
	}
	t := stats.NewTable("Sampled simulation: checkpointed warm-up + interval measurement",
		"cell", "tenant", "mean", "p50", "p99", "sampled p50", "sampled p99", "accesses", "sampled")
	for _, s := range outs {
		for i, ten := range s.rep.Tenants {
			sp50, sp99, sacc := "—", "—", "—"
			if i < len(s.rep.Sampled) {
				sm := s.rep.Sampled[i]
				sp50 = fmt.Sprintf("%dns", sm.P50)
				sp99 = fmt.Sprintf("%dns", sm.P99)
				sacc = fmt.Sprint(sm.Accesses)
			}
			t.AddRow(s.kind, ten.Name,
				fmt.Sprintf("%dns", ten.Mean), fmt.Sprintf("%dns", ten.P50), fmt.Sprintf("%dns", ten.P99),
				sp50, sp99, fmt.Sprint(ten.Accesses), sacc)
		}
	}
	return []*stats.Table{t}, SampledMarkdown(outs), nil
}

// relErr is |a-b| / b, 0 when both are 0.
func relErr(a, b sim.Time) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	d := float64(a) - float64(b)
	if d < 0 {
		d = -d
	}
	return d / float64(b)
}

// sampledSplitCell runs the phase-split scenario with interval
// sampling and pins the sampled-vs-full error inside the bounds.
func sampledSplitCell(o Options, seed int64) (sampledOut, error) {
	sc := sampledScenarioFor(seed, sampledWarmupSplit)
	sc.PlatOpts = o.applyMSHRs(sc.PlatOpts)
	sc.Sample = sampledSampler()
	rep, err := replay.Run(sc, replay.Options{Seed: seed})
	if err != nil {
		return sampledOut{}, err
	}
	if rep.CPU.Instructions == 0 || len(rep.Sampled) != len(rep.Tenants) {
		return sampledOut{}, fmt.Errorf("experiments: sampled split cell measured nothing")
	}
	extra := make(map[string]float64, 10*len(rep.Tenants)+2)
	extra["warmup_steps"] = float64(sampledWarmupSplit)
	extra["sample_measure_ns"] = float64(sc.Sample.Measure)
	extra["sample_skip_ns"] = float64(sc.Sample.Skip)
	for i, ten := range rep.Tenants {
		sm := rep.Sampled[i]
		if sm.Accesses == 0 || sm.Accesses >= ten.Accesses {
			return sampledOut{}, fmt.Errorf("experiments: tenant %s: sampled %d of %d accesses, want a strict nonempty subset",
				ten.Name, sm.Accesses, ten.Accesses)
		}
		meanErr := relErr(sm.Mean, ten.Mean)
		p50Err := relErr(sm.P50, ten.P50)
		if meanErr > sampledMeanErrBound || p50Err > sampledP50ErrBound {
			return sampledOut{}, fmt.Errorf("experiments: tenant %s: sampling error out of bounds (mean %.3f, p50 %.3f)",
				ten.Name, meanErr, p50Err)
		}
		extra["p50_ns:"+ten.Name] = float64(ten.P50)
		extra["p95_ns:"+ten.Name] = float64(ten.P95)
		extra["p99_ns:"+ten.Name] = float64(ten.P99)
		extra["mean_ns:"+ten.Name] = float64(ten.Mean)
		extra["sampled_p50_ns:"+ten.Name] = float64(sm.P50)
		extra["sampled_p95_ns:"+ten.Name] = float64(sm.P95)
		extra["sampled_p99_ns:"+ten.Name] = float64(sm.P99)
		extra["sampled_mean_ns:"+ten.Name] = float64(sm.Mean)
		extra["sampled_accesses:"+ten.Name] = float64(sm.Accesses)
		extra["accesses:"+ten.Name] = float64(ten.Accesses)
		extra["units:"+ten.Name] = float64(ten.Units)
	}
	return sampledOut{
		kind: "split",
		rep:  rep,
		cell: report.Cell{
			Platform:    rep.Platform,
			Scenario:    sampledScenario + "/split",
			SimNS:       int64(rep.CPU.Elapsed),
			Units:       rep.Units,
			UnitsPerSec: rep.UnitsPerSec(),
			EnergyJ:     rep.Energy.Total(),
			Extra:       extra,
		},
	}, nil
}

// SampledCheckpoint runs the sampled scenario's warm-up phase once at
// the fan-out configuration and returns the quiesced image — the
// producer half of hamsbench -checkpoint. The seed derivation matches
// the fan-out cell's exactly, so a saved image feeds a later
// -from-checkpoint run of the same -seed without a mismatch.
func SampledCheckpoint(o Options) (*checkpoint.Image, error) {
	seed := runner.DeriveSeed(o.Seed, sampledScenario)
	sc := sampledScenarioFor(seed, sampledWarmupFanout)
	sc.PlatOpts = o.applyMSHRs(sc.PlatOpts)
	return replay.Warmup(sc, replay.Options{Seed: seed})
}

// sampledFanoutCell is the amortization gate. It runs the same
// measured phase sampledFanout times the expensive way (live warm-up
// per cell) and the checkpointed way (one warm-up, N restores),
// demands bit-identical results, and enforces the wall-clock floor.
// With Options.Checkpoint set (hamsbench -from-checkpoint) the
// warm-up is pre-paid: the provided image replaces the Warmup call,
// and a mismatched image fails the restore rather than the gate.
func sampledFanoutCell(o Options, seed int64) (sampledOut, error) {
	sc := sampledScenarioFor(seed, sampledWarmupFanout)
	sc.PlatOpts = o.applyMSHRs(sc.PlatOpts)
	ro := replay.Options{Seed: seed}

	// The fan-out cell's whole point is a wall-clock amortization
	// claim (N restores cheaper than N warm-ups); these readings feed
	// only the host-speed floor and the -sampled-summary markdown —
	// never a deterministic cell field, which statszero enforces.
	//hamslint:allow hostclock — wall-clock amortization floor: host-speed channel by design
	liveStart := time.Now()
	lives := make([]replay.Result, sampledFanout)
	for i := range lives {
		var err error
		if lives[i], err = replay.Run(sc, ro); err != nil {
			return sampledOut{}, err
		}
	}
	liveWall := time.Since(liveStart) //hamslint:allow hostclock — wall-clock amortization floor: host-speed channel by design

	fanStart := time.Now() //hamslint:allow hostclock — wall-clock amortization floor: host-speed channel by design
	img := o.Checkpoint
	if img == nil {
		var err error
		if img, err = replay.Warmup(sc, ro); err != nil {
			return sampledOut{}, err
		}
	}
	restored := make([]replay.Result, sampledFanout)
	for i := range restored {
		rsc := sampledScenarioFor(seed, 0)
		rsc.PlatOpts = o.applyMSHRs(rsc.PlatOpts)
		rsc.Checkpoint = img
		var err error
		if restored[i], err = replay.Run(rsc, ro); err != nil {
			return sampledOut{}, err
		}
	}
	fanWall := time.Since(fanStart) //hamslint:allow hostclock — wall-clock amortization floor: host-speed channel by design

	for i := range restored {
		if !reflect.DeepEqual(lives[i], restored[i]) {
			return sampledOut{}, fmt.Errorf("experiments: fan-out cell %d diverged from its live warm-up twin", i)
		}
	}
	if lives[0].CPU.Instructions == 0 || lives[0].Units == 0 {
		return sampledOut{}, fmt.Errorf("experiments: fan-out measured phase did no work")
	}
	speedup := float64(liveWall) / float64(fanWall)
	if sampledGateWallClock && speedup < sampledSpeedupFloor {
		return sampledOut{}, fmt.Errorf("experiments: checkpoint fan-out speedup %.2fx below the %.1fx floor (live %v, fan-out %v)",
			speedup, sampledSpeedupFloor, liveWall, fanWall)
	}

	rep := lives[0]
	extra := make(map[string]float64, 3*len(rep.Tenants)+3)
	// Deterministic amortization facts only — wall times go to the
	// markdown summary, never into the artifact.
	extra["fanout_cells"] = float64(sampledFanout)
	extra["warmup_steps"] = float64(sampledWarmupFanout)
	extra["checkpoint_sim_ns"] = float64(img.SimTime)
	for _, ten := range rep.Tenants {
		extra["p99_ns:"+ten.Name] = float64(ten.P99)
		extra["units:"+ten.Name] = float64(ten.Units)
		extra["accesses:"+ten.Name] = float64(ten.Accesses)
	}
	return sampledOut{
		kind:     "fanout",
		rep:      rep,
		liveWall: liveWall,
		fanWall:  fanWall,
		cell: report.Cell{
			Platform:    rep.Platform,
			Scenario:    sampledScenario + "/fanout",
			SimNS:       int64(rep.CPU.Elapsed),
			Units:       rep.Units,
			UnitsPerSec: rep.UnitsPerSec(),
			EnergyJ:     rep.Energy.Total(),
			Extra:       extra,
		},
	}, nil
}

// SampledMarkdown renders the warm-up amortization table for CI step
// summaries. This is the only place wall-clock figures surface.
func SampledMarkdown(outs []sampledOut) string {
	var b strings.Builder
	b.WriteString("### Checkpointed warm-up amortization\n\n")
	var fan *sampledOut
	for i := range outs {
		if outs[i].kind == "fanout" {
			fan = &outs[i]
		}
	}
	if fan == nil {
		b.WriteString("No fan-out cell recorded.\n")
		return b.String()
	}
	speedup := float64(fan.liveWall) / float64(fan.fanWall)
	b.WriteString("| cells | warm-up steps/thread | live warm-ups | 1 checkpoint + restores | speedup |\n")
	b.WriteString("|---:|---:|---:|---:|---:|\n")
	fmt.Fprintf(&b, "| %d | %d | %v | %v | %.2fx |\n\n",
		sampledFanout, sampledWarmupFanout,
		fan.liveWall.Round(time.Millisecond), fan.fanWall.Round(time.Millisecond), speedup)
	for _, s := range outs {
		if s.kind != "split" {
			continue
		}
		b.WriteString("Interval sampling (observe 2 µs / skip 8 µs) vs the full measured phase:\n\n")
		b.WriteString("| tenant | full p99 | sampled p99 | full accesses | sampled |\n")
		b.WriteString("|---|---:|---:|---:|---:|\n")
		for i, ten := range s.rep.Tenants {
			if i >= len(s.rep.Sampled) {
				continue
			}
			sm := s.rep.Sampled[i]
			fmt.Fprintf(&b, "| %s | %dns | %dns | %d | %d |\n",
				ten.Name, ten.P99, sm.P99, ten.Accesses, sm.Accesses)
		}
	}
	return b.String()
}
