package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hams/internal/mem"
	"hams/internal/platform"
	"hams/internal/qos"
	"hams/internal/replay"
	"hams/internal/report"
	"hams/internal/runner"
	"hams/internal/stats"
)

// This file hosts the `qos` target: partitioned vs. unpartitioned
// multi-tenant co-location. One scenario — a streaming tenant next to
// a latency-sensitive service on a deliberately small MoS cache — is
// swept across four CLOS policies:
//
//	shared   free-for-all (the PR 3 `mixed` behavior, monitoring only)
//	cat      way partitioning: the service keeps 6 of 8 ways
//	mba      bandwidth throttling: the streamer capped at 100 MB/s
//	cat+mba  both — the full RDT-style isolation policy
//
// Per-tenant latency percentiles plus the MBM-style occupancy and
// bandwidth counters land in report.Cell.Extra, and the CI step
// summary renders the victim's p99 across policies (QoSMarkdown).

// qosVariant is one CLOS policy applied to the scenario.
type qosVariant struct {
	name string
	qos  *qos.Table
}

// qosClassNames are the CLOS labels of the built-in scenario; CLI
// overrides must address one of them.
var qosClassNames = []string{"latency", "stream"}

// qosVictim/qosAggressor name the scenario's tenants; the victim's
// p99 is the headline isolation metric.
const (
	qosVictim    = "latency"
	qosAggressor = "stream"
	qosScenario  = "stream+latency"
	qosPlatform  = "hams-LE"
)

// Built-in isolated-policy parameters (CLI-overridable): the service
// keeps ways 2-7, the streamer ways 0-1 and a 100 MB/s archive cap.
const (
	qosVictimMask    = 0xfc
	qosAggressorMask = 0x03
	qosAggressorMBps = 100
)

// ValidateQoSOverrides rejects -qos-masks/-qos-mbps entries that do
// not address a class of the built-in scenario, before anything runs.
// Entries are checked in sorted-name order so the error reported for a
// multi-typo invocation is the same on every run (map-order iteration
// here made the message flap; caught by hamslint/maporder).
func ValidateQoSOverrides(masks map[string]uint64, mbps map[string]float64) error {
	known := make(map[string]bool, len(qosClassNames))
	for _, n := range qosClassNames {
		known[n] = true
	}
	for _, name := range sortedNames(masks) {
		if !known[name] {
			return fmt.Errorf("experiments: -qos-masks: unknown class %q (have %s)",
				name, strings.Join(qosClassNames, ", "))
		}
	}
	for _, name := range sortedNames(mbps) {
		if !known[name] {
			return fmt.Errorf("experiments: -qos-mbps: unknown class %q (have %s)",
				name, strings.Join(qosClassNames, ", "))
		}
		if v := mbps[name]; v <= 0 {
			return fmt.Errorf("experiments: -qos-mbps: class %q: throttle must be positive, got %g", name, v)
		}
	}
	return nil
}

// sortedNames returns the map's keys in sorted order, the repo-wide
// idiom for deterministic iteration over user-supplied maps.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// qosTable assembles one variant's CLOS table. partitioned applies
// way masks, throttled applies the MBps cap; o's override maps
// replace the built-in values per class name.
func qosTable(o Options, partitioned, throttled bool) *qos.Table {
	mask := func(name string, def uint64) uint64 {
		if !partitioned {
			return 0 // full mask
		}
		if v, ok := o.QoSMasks[name]; ok {
			return v
		}
		return def
	}
	rate := func(name string, def float64) float64 {
		if !throttled {
			return 0
		}
		if v, ok := o.QoSMBps[name]; ok {
			return v
		}
		return def
	}
	return &qos.Table{Classes: []qos.Class{
		{Name: qosVictim, WayMask: mask(qosVictim, qosVictimMask), MBps: rate(qosVictim, 0)},
		{Name: qosAggressor, WayMask: mask(qosAggressor, qosAggressorMask), MBps: rate(qosAggressor, qosAggressorMBps)},
	}}
}

// qosVariants builds the policy sweep.
func qosVariants(o Options) []qosVariant {
	return []qosVariant{
		{"shared", qosTable(o, false, false)},
		{"cat", qosTable(o, true, false)},
		{"mba", qosTable(o, false, true)},
		{"cat+mba", qosTable(o, true, true)},
	}
}

// qosScenarioFor assembles the co-location scenario under one policy.
// The geometry (8-way tag array over a 64 MiB NVDIMM: 384 cache pages
// in 48 sets) and the tenant intensities are fixed — independent of
// Options.Scale — because the isolation physics need the streamer to
// sweep the cache several times within the service's lifetime; see
// EXPERIMENTS.md. Tenant seeds derive from the cell seed so the
// variants stay stream-paired.
func qosScenarioFor(v qosVariant, seed int64) replay.Scenario {
	return replay.Scenario{
		Name:     qosScenario,
		Platform: qosPlatform,
		PlatOpts: platform.Options{HAMSWays: 8, HAMSNVDIMM: 64 * mem.MiB},
		Tenants: []replay.Tenant{
			{
				// The latency-sensitive service: a graph workload whose
				// 16 MiB working set (4 MiB × 4 threads) fits its 6-way
				// partition, with no cold traffic of its own — every
				// miss it suffers is inflicted by the neighbor.
				Name: qosVictim, Workload: "BFS", Class: qosVictim,
				Seed:  runner.DeriveSeed(seed, qosVictim),
				Scale: 1e-5, Hot: 4 * mem.MiB, HotFrac: 1.0,
			},
			{
				// The streaming tenant: sequential writes sweeping the
				// whole cache from a disjoint 64 GiB-offset footprint,
				// at 10× the service's intensity.
				Name: qosAggressor, Workload: "seqWr", Class: qosAggressor,
				Seed:  runner.DeriveSeed(seed, qosAggressor),
				Scale: 1e-4, Base: 64 * mem.GiB,
			},
		},
		QoS: v.qos,
	}
}

// qosOut is one policy cell's output.
type qosOut struct {
	variant string
	rep     replay.Result
	cell    report.Cell
}

func (q qosOut) reportCell() report.Cell { return q.cell }

// QoS runs the isolation sweep (console tables only).
func QoS(o Options) ([]*stats.Table, error) {
	tables, _, err := QoSWithSummary(o)
	return tables, err
}

// QoSWithSummary runs the isolation sweep and also renders the
// markdown victim-delta table for CI step summaries.
func QoSWithSummary(o Options) ([]*stats.Table, string, error) {
	if err := ValidateQoSOverrides(o.QoSMasks, o.QoSMBps); err != nil {
		return nil, "", err
	}
	variants := qosVariants(o)
	jobs := make([]cellJob, len(variants))
	for i, v := range variants {
		v := v
		jobs[i] = cellJob{
			key:     qosScenario + "/" + v.name + "@" + qosPlatform,
			seedKey: qosScenario,
			fn: func(ctx context.Context, seed int64) (any, error) {
				return qosCell(o, v, seed)
			},
		}
	}
	vals, err := runCellJobs(o, "qos", jobs)
	if err != nil {
		return nil, "", err
	}
	t := stats.NewTable("QoS: RDT-style isolation — partitioned vs unpartitioned co-location",
		"scenario", "policy", "tenant", "p50", "p95", "p99", "occ(pages)", "fill MB/s", "wb MB/s", "throttled", "units/s")
	outs := make([]qosOut, 0, len(vals))
	for _, val := range vals {
		q, ok := val.(qosOut)
		if !ok {
			return nil, "", fmt.Errorf("experiments: qos cell returned %T", val)
		}
		outs = append(outs, q)
		for _, ten := range q.rep.Tenants {
			t.AddRow(q.rep.Scenario, q.variant, ten.Name,
				fmt.Sprintf("%dns", ten.P50), fmt.Sprintf("%dns", ten.P95), fmt.Sprintf("%dns", ten.P99),
				fmt.Sprint(ten.QoS.Occupancy),
				stats.F(ten.QoS.FillMBps(q.rep.CPU.Elapsed)),
				stats.F(ten.QoS.WBMBps(q.rep.CPU.Elapsed)),
				fmt.Sprintf("%v", ten.QoS.ThrottleNS),
				"")
		}
		t.AddRow(q.rep.Scenario, q.variant, "(all)", "", "", "", "", "", "", "",
			fmt.Sprintf("%.0f", q.rep.UnitsPerSec()))
	}
	return []*stats.Table{t}, QoSMarkdown(outs), nil
}

// qosCell runs one policy variant.
func qosCell(o Options, v qosVariant, seed int64) (qosOut, error) {
	sc := qosScenarioFor(v, seed)
	sc.PlatOpts = o.applyMSHRs(sc.PlatOpts)
	rep, err := replay.Run(sc, replay.Options{Seed: seed})
	if err != nil {
		return qosOut{}, err
	}
	extra := make(map[string]float64, 8*len(rep.Tenants))
	for _, ten := range rep.Tenants {
		extra["p50_ns:"+ten.Name] = float64(ten.P50)
		extra["p95_ns:"+ten.Name] = float64(ten.P95)
		extra["p99_ns:"+ten.Name] = float64(ten.P99)
		extra["units:"+ten.Name] = float64(ten.Units)
		extra["occ_pages:"+ten.Name] = float64(ten.QoS.Occupancy)
		extra["occ_peak:"+ten.Name] = float64(ten.QoS.OccupancyPeak)
		extra["fill_mbps:"+ten.Name] = ten.QoS.FillMBps(rep.CPU.Elapsed)
		extra["wb_mbps:"+ten.Name] = ten.QoS.WBMBps(rep.CPU.Elapsed)
		extra["throttle_ns:"+ten.Name] = float64(ten.QoS.ThrottleNS)
	}
	return qosOut{
		variant: v.name,
		rep:     rep,
		cell: report.Cell{
			Platform:    rep.Platform,
			Scenario:    qosScenario + "/" + v.name,
			SimNS:       int64(rep.CPU.Elapsed),
			Units:       rep.Units,
			UnitsPerSec: rep.UnitsPerSec(),
			EnergyJ:     rep.Energy.Total(),
			Extra:       extra,
		},
	}, nil
}

// QoSMarkdown renders the partitioned-vs-unpartitioned isolation
// delta table: the victim's tail latency under every policy, relative
// to the unpartitioned baseline.
func QoSMarkdown(outs []qosOut) string {
	var shared *qosOut
	for i := range outs {
		if outs[i].variant == "shared" {
			shared = &outs[i]
		}
	}
	var b strings.Builder
	b.WriteString("### QoS isolation: victim tail latency by policy\n\n")
	if shared == nil || len(outs) == 0 {
		b.WriteString("No shared-baseline cell recorded.\n")
		return b.String()
	}
	basep99 := tenantStat(shared.rep, qosVictim).P99
	b.WriteString("| policy | victim p95 | victim p99 | Δp99 vs shared | victim occupancy | streamer fill MB/s | streamer throttled |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---:|\n")
	for _, q := range outs {
		vict := tenantStat(q.rep, qosVictim)
		aggr := tenantStat(q.rep, qosAggressor)
		delta := "—"
		if q.variant != "shared" && basep99 > 0 {
			delta = fmt.Sprintf("%+.1f%%", (float64(vict.P99)-float64(basep99))/float64(basep99)*100)
		}
		fmt.Fprintf(&b, "| %s | %dns | %dns | %s | %d pages | %.0f | %v |\n",
			q.variant, vict.P95, vict.P99, delta, vict.QoS.Occupancy,
			aggr.QoS.FillMBps(q.rep.CPU.Elapsed), aggr.QoS.ThrottleNS)
	}
	return b.String()
}

// tenantStat finds a tenant's stats block by name.
func tenantStat(r replay.Result, name string) replay.TenantStats {
	for _, t := range r.Tenants {
		if t.Name == name {
			return t
		}
	}
	return replay.TenantStats{}
}
