package experiments

import (
	"fmt"
	"strings"
	"testing"

	"hams/internal/platform"
)

// quick is a fast option set for shape tests.
var quick = Options{Scale: 1e-6, Seed: 7}

func TestRunProducesWork(t *testing.T) {
	r, err := Run("hams-TE", "seqRd", quick, platform.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.CPU.Instructions == 0 || r.Units == 0 || r.CPU.Elapsed <= 0 {
		t.Fatalf("empty run: %+v", r.CPU)
	}
	if r.UnitsPerSec() <= 0 {
		t.Fatal("no throughput")
	}
	if r.Energy.Total() <= 0 {
		t.Fatal("no energy")
	}
}

func TestRunUnknownNamesFail(t *testing.T) {
	if _, err := Run("bogus", "seqRd", quick, platform.Options{}, nil); err == nil {
		t.Fatal("unknown platform accepted")
	}
	if _, err := Run("oracle", "bogus", quick, platform.Options{}, nil); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// Shape: the paper's core ordering on the software-vs-hardware axis.
func TestShapeHAMSBeatsMmap(t *testing.T) {
	wins := 0
	workloads := []string{"seqRd", "seqWr", "update", "BFS", "rndRd"}
	for _, wl := range workloads {
		base, err := Run("mmap", wl, quick, platform.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run("hams-TE", wl, quick, platform.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.CPU.MIPS() > base.CPU.MIPS() {
			wins++
		}
	}
	if wins < len(workloads)-1 {
		t.Fatalf("hams-TE won only %d/%d workloads vs mmap", wins, len(workloads))
	}
}

// Shape: extend mode outperforms persist mode (§VI-C: persist adds
// ~34% memory delay).
func TestShapeExtendBeatsPersist(t *testing.T) {
	for _, pair := range [][2]string{{"hams-LE", "hams-LP"}, {"hams-TE", "hams-TP"}} {
		e, err := Run(pair[0], "seqWr", quick, platform.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Run(pair[1], "seqWr", quick, platform.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if e.CPU.Elapsed > p.CPU.Elapsed {
			t.Fatalf("%s (%v) slower than %s (%v)", pair[0], e.CPU.Elapsed, pair[1], p.CPU.Elapsed)
		}
	}
}

// Shape: tight topology beats loose (the DDR4-vs-PCIe datapath).
func TestShapeTightBeatsLoose(t *testing.T) {
	le, err := Run("hams-LE", "seqRd", quick, platform.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	te, err := Run("hams-TE", "seqRd", quick, platform.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if te.CPU.Elapsed >= le.CPU.Elapsed {
		t.Fatalf("hams-TE (%v) not faster than hams-LE (%v)", te.CPU.Elapsed, le.CPU.Elapsed)
	}
}

// Shape: oracle upper-bounds every platform.
func TestShapeOracleUpperBound(t *testing.T) {
	or, err := Run("oracle", "rndRd", quick, platform.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pn := range []string{"mmap", "hams-TE", "flatflash-M", "optane-M"} {
		r, err := Run(pn, "rndRd", quick, platform.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.CPU.Elapsed < or.CPU.Elapsed {
			t.Fatalf("%s (%v) beat the oracle (%v)", pn, r.CPU.Elapsed, or.CPU.Elapsed)
		}
	}
}

// Shape: HAMS saves energy vs mmap (§VI-C: 41%/45% lower).
func TestShapeHAMSSavesEnergy(t *testing.T) {
	base, err := Run("mmap", "seqWr", quick, platform.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run("hams-TE", "seqWr", quick, platform.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Energy.Total() >= base.Energy.Total() {
		t.Fatalf("hams-TE energy %.3f >= mmap %.3f", r.Energy.Total(), base.Energy.Total())
	}
}

// Shape: the loose topology's DMA share exceeds the tight topology's
// (Fig. 10a motivation for advanced HAMS).
func TestShapeLooseDMAShareHigher(t *testing.T) {
	share := func(pn string) float64 {
		r, err := Run(pn, "seqRd", quick, platform.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		cs := r.Plat.(hamsExposer).Controller().Stats()
		den := float64(cs.NVDIMMTime + cs.DMATime + cs.SSDTime + cs.WaitTime)
		if den == 0 {
			return 0
		}
		return float64(cs.DMATime) / den
	}
	l, tt := share("hams-LE"), share("hams-TE")
	if l <= tt {
		t.Fatalf("loose DMA share %.2f <= tight %.2f", l, tt)
	}
}

func TestStaticTables(t *testing.T) {
	for _, tb := range []string{Table1().String(), Table2().String(), Table3().String()} {
		if len(strings.Split(strings.TrimSpace(tb), "\n")) < 4 {
			t.Fatalf("table too short:\n%s", tb)
		}
	}
	if !strings.Contains(Table3().String(), "seqRd") {
		t.Fatal("Table3 missing workloads")
	}
}

func TestFig5Tables(t *testing.T) {
	tabs, err := Fig5(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("Fig5 returned %d tables", len(tabs))
	}
	// 5b has 6 depth rows.
	if rows := strings.Count(tabs[1].String(), "\n"); rows < 8 {
		t.Fatalf("Fig5b too short:\n%s", tabs[1])
	}
}

func TestFig20PageSizeSweepRuns(t *testing.T) {
	// A smaller sweep through the same code path as Fig20a: both
	// extreme page sizes must run and produce throughput.
	for _, pg := range []uint64{4096, 1 << 20} {
		r, err := Run("hams-TE", "rndSel", quick, platform.Options{HAMSPage: pg}, nil)
		if err != nil {
			t.Fatalf("page %d: %v", pg, err)
		}
		if r.Units == 0 {
			t.Fatalf("page %d: no ops", pg)
		}
	}
}

func TestHitRateNearPaper(t *testing.T) {
	// §VI-C: NVDIMM hit rate ~94% on average. Accept a broad band.
	r, err := Run("hams-TE", "update", quick, platform.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hr := r.Plat.(hamsExposer).Controller().Stats().HitRate()
	if hr < 0.80 || hr > 1.0 {
		t.Fatalf("hit rate %.3f outside [0.80, 1.0]", hr)
	}
}

// Acceptance: a set-associative sharded geometry must strictly beat
// the seed's direct-mapped single bank on the rndWr hit rate.
func TestSweepAssociativityBeatsDirectMappedOnRndWr(t *testing.T) {
	points := []SweepPoint{
		{Ways: 1, Banks: 1},
		{Ways: 4, Banks: 4},
	}
	res, err := RunSweep(quick, []string{"rndWr"}, points)
	if err != nil {
		t.Fatal(err)
	}
	direct, assoc := res[0], res[1]
	if assoc.HitRate() <= direct.HitRate() {
		t.Fatalf("4-way × 4-bank hit rate %.6f not above direct-mapped %.6f",
			assoc.HitRate(), direct.HitRate())
	}
	if assoc.Run.UnitsPerSec() <= direct.Run.UnitsPerSec() {
		t.Fatalf("4-way × 4-bank throughput %.0f/s not above direct-mapped %.0f/s",
			assoc.Run.UnitsPerSec(), direct.Run.UnitsPerSec())
	}
}

func TestSweepTableShape(t *testing.T) {
	tabs, err := AssocShardSweep(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("sweep returned %d tables, want 3", len(tabs))
	}
	for _, tab := range tabs {
		countRows(t, tab, len(DefaultSweepPoints()))
	}
	if !strings.Contains(tabs[0].String(), "clock") || !strings.Contains(tabs[0].String(), "random") {
		t.Fatalf("sweep missing policy rows:\n%s", tabs[0])
	}
}

func TestAblationTable(t *testing.T) {
	tab, err := Ablation(quick)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "hardware automation") || !strings.Contains(out, "Z-NAND") {
		t.Fatalf("ablation table incomplete:\n%s", out)
	}
}

// Shape: hardware automation must beat the §VII software-assisted
// variant (page fault per miss).
func TestShapeHardwareAutomationWins(t *testing.T) {
	hw, err := Run("hams-LE", "seqRd", quick, platform.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Run("hams-SW", "seqRd", quick, platform.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sw.CPU.Elapsed <= hw.CPU.Elapsed {
		t.Fatalf("hams-SW (%v) not slower than hams-LE (%v)", sw.CPU.Elapsed, hw.CPU.Elapsed)
	}
}

// Shape: a TLC archive must be slower than Z-NAND (the ULL-Flash
// premise of the whole design).
func TestShapeZNANDMatters(t *testing.T) {
	z, err := Run("hams-TE", "seqRd", quick, platform.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tlc, err := Run("hams-TE", "seqRd", quick, platform.Options{ArchiveTLC: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tlc.UnitsPerSec() >= z.UnitsPerSec() {
		t.Fatalf("TLC archive (%f/s) not slower than Z-NAND (%f/s)", tlc.UnitsPerSec(), z.UnitsPerSec())
	}
}

// tiny runs the heavyweight figure functions end to end at a scale
// where the whole set costs a few seconds.
var tiny = Options{Scale: 2e-7, Seed: 3}

func countRows(t *testing.T, tab fmt.Stringer, want int) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(tab.String()), "\n")
	if got := len(lines) - 3; got != want { // title + header + separator
		t.Fatalf("rows = %d, want %d\n%s", got, want, tab)
	}
}

func TestFig6RowCounts(t *testing.T) {
	tabs, err := Fig6(tiny)
	if err != nil {
		t.Fatal(err)
	}
	countRows(t, tabs[0], 4) // 4 micro workloads
	countRows(t, tabs[1], 5) // 5 SQLite workloads
}

func TestFig7RowCounts(t *testing.T) {
	tabs, err := Fig7(tiny)
	if err != nil {
		t.Fatal(err)
	}
	countRows(t, tabs[0], 9)
	countRows(t, tabs[1], 9)
}

func TestFig16RowCounts(t *testing.T) {
	tabs, err := Fig16(tiny)
	if err != nil {
		t.Fatal(err)
	}
	countRows(t, tabs[0], 7) // micro + rodinia
	countRows(t, tabs[1], 5) // sqlite
}

func TestFig17Fig18Fig19RowCounts(t *testing.T) {
	t17, err := Fig17(tiny)
	if err != nil {
		t.Fatal(err)
	}
	countRows(t, t17, 12*5)
	t18, err := Fig18(tiny)
	if err != nil {
		t.Fatal(err)
	}
	countRows(t, t18, 12*4)
	t19, err := Fig19(tiny)
	if err != nil {
		t.Fatal(err)
	}
	countRows(t, t19, 12*5)
}

func TestFig20RowCounts(t *testing.T) {
	tabs, err := Fig20(tiny)
	if err != nil {
		t.Fatal(err)
	}
	countRows(t, tabs[0], 5)
	countRows(t, tabs[1], 5)
}

func TestHeadlineRowCount(t *testing.T) {
	tab, err := Headline(tiny)
	if err != nil {
		t.Fatal(err)
	}
	countRows(t, tab, 4)
}
