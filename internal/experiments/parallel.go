package experiments

import (
	"context"
	"fmt"

	"hams/internal/platform"
	"hams/internal/report"
	"hams/internal/runner"
	"hams/internal/stats"
	"hams/internal/workload"
)

// cellJob is one engine cell of a figure: a stable key (unique within
// the target), the workload name whose seed stream the cell draws
// (empty = no randomness), and the work itself. fn receives the
// derived per-cell seed so results cannot depend on execution order.
type cellJob struct {
	key     string
	seedKey string
	fn      func(ctx context.Context, seed int64) (any, error)
}

// reportable lets non-RunResult cell outputs (e.g. Fig. 5 device
// sweeps) contribute metrics to the BENCH artifact.
type reportable interface{ reportCell() report.Cell }

// runCellJobs executes a target's cells through the worker-pool
// engine, records them into o.Recorder, and returns the outputs in
// canonical (input) order.
func runCellJobs(o Options, target string, jobs []cellJob) ([]any, error) {
	cells := make([]runner.Cell, len(jobs))
	for i, j := range jobs {
		seed := o.Seed
		if j.seedKey != "" {
			seed = runner.DeriveSeed(o.Seed, j.seedKey)
		}
		fn := j.fn
		cells[i] = runner.Cell{
			Key: target + "/" + j.key,
			Fn:  func(ctx context.Context) (any, error) { return fn(ctx, seed) },
		}
	}
	var cr runner.CellRunner = runner.Engine{Workers: o.Parallel, ShuffleSeed: o.Shuffle}
	if o.Runner != nil {
		cr = o.Runner
	}
	var onResult func(runner.Result)
	if o.Progress != nil {
		onResult = func(r runner.Result) { o.Progress(reportCellFor(target, r)) }
	}
	results, err := cr.RunCells(o.ctx(), cells, onResult)
	if err != nil {
		// Name a failing cell: in a 100+-cell matrix "unknown platform"
		// alone would leave the bad configuration to bisection.
		for _, r := range results {
			if r.Err != nil {
				return nil, fmt.Errorf("cell %s: %w", r.Key, r.Err)
			}
		}
		return nil, err
	}
	out := make([]any, len(results))
	for i, r := range results {
		out[i] = r.Value
		if o.Recorder != nil {
			o.Recorder.Add(reportCellFor(target, r))
		}
	}
	return out, nil
}

// reportCellFor converts one engine result into its artifact record.
// Cells with metrics implement reportable (matrix cells via matrixOut,
// device sweeps via fig5Point); anything else — the static tables —
// records identity and wall time only.
func reportCellFor(target string, r runner.Result) report.Cell {
	var c report.Cell
	if v, ok := r.Value.(reportable); ok {
		c = v.reportCell()
	}
	// The one sanctioned WallNS feed: the runner's measured wall time
	// enters the cell here on its way into Recorder.Add, which derives
	// HostUnitsPerSec from it; Canonical zeroes both again.
	//hamslint:allow statszero — engine→Recorder glue, the single sanctioned host-channel write
	c.Key, c.Target, c.WallNS = r.Key, target, int64(r.Wall)
	return c
}

// runReportCell extracts one Run's artifact metrics. It must be called
// while the result still holds its platform (Plat carries the hit-rate
// counters).
func runReportCell(v RunResult) report.Cell {
	c := report.Cell{
		Platform:    v.Platform,
		Workload:    v.Workload,
		SimNS:       int64(v.CPU.Elapsed),
		Units:       v.Units,
		UnitsPerSec: v.UnitsPerSec(),
		EnergyJ:     v.Energy.Total(),
	}
	if h, ok := v.Plat.(hamsExposer); ok {
		c.HitRate = h.Controller().Stats().HitRate()
	}
	return c
}

// matrixCell is the common cell shape: one Run of a workload on a
// platform under a config. keepPlat retains the simulated platform on
// the result for callers that read controller stats afterwards (the
// sweep); all other cells drop it inside the worker so a wide matrix
// doesn't hold every platform's device state until the figure renders.
type matrixCell struct {
	key      string
	platform string
	workload string
	popt     platform.Options
	wopt     *workload.Options
	keepPlat bool
	// extra, when set, records target-specific metrics into the BENCH
	// cell; it runs inside the worker while the platform is still
	// attached to the result.
	extra func(RunResult) map[string]float64
}

// matrixOut pairs a cell's RunResult with its artifact record,
// precomputed while the platform was still attached.
type matrixOut struct {
	run  RunResult
	cell report.Cell
}

func (m matrixOut) reportCell() report.Cell { return m.cell }

// runMatrix executes a (platform × workload × config) matrix through
// the engine and returns RunResults in cell order. Each cell's
// workload seed derives from (Options.Seed, workload name), so the
// same workload stays stream-paired across platforms and configs —
// the paired-comparison property every "X vs Y" figure relies on.
func runMatrix(o Options, target string, cells []matrixCell) ([]RunResult, error) {
	jobs := make([]cellJob, len(cells))
	for i, c := range cells {
		mc := c
		mc.popt = o.applyMSHRs(mc.popt)
		jobs[i] = cellJob{
			key:     mc.key,
			seedKey: mc.workload,
			fn: func(ctx context.Context, seed int64) (any, error) {
				co := o
				co.Seed = seed
				wopt := mc.wopt
				if wopt != nil {
					w := *wopt
					w.Seed = seed
					wopt = &w
				}
				r, err := Run(mc.platform, mc.workload, co, mc.popt, wopt)
				if err != nil {
					return nil, err
				}
				out := matrixOut{run: r, cell: runReportCell(r)}
				if mc.extra != nil {
					out.cell.Extra = mc.extra(r)
				}
				if !mc.keepPlat {
					out.run.Plat = nil
				}
				return out, nil
			},
		}
	}
	vals, err := runCellJobs(o, target, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]RunResult, len(vals))
	for i, v := range vals {
		mo, ok := v.(matrixOut)
		if !ok {
			return nil, fmt.Errorf("experiments: %s cell %s returned %T", target, cells[i].key, v)
		}
		out[i] = mo.run
	}
	return out, nil
}

// RunOne executes a single workload × platform run as one engine cell
// (key "run/<workload>@<platform>") — the execution path of job-API
// `run` jobs and the hamssim CLI, shared so a flag set and a JSON body
// produce byte-identical runs. Unlike matrix cells the workload seed
// is Options.Seed itself (no per-cell derivation): a one-shot run has
// no sibling cells to stay decorrelated from, and hamssim's documented
// -seed semantics predate the engine.
func RunOne(o Options, platName, wlName string, popt platform.Options) (RunResult, error) {
	popt = o.applyMSHRs(popt)
	jobs := []cellJob{{
		key: wlName + "@" + platName,
		fn: func(ctx context.Context, seed int64) (any, error) {
			co := o
			co.Seed = seed
			r, err := Run(platName, wlName, co, popt, nil)
			if err != nil {
				return nil, err
			}
			out := matrixOut{run: r, cell: runReportCell(r)}
			out.run.Plat = nil
			return out, nil
		},
	}}
	vals, err := runCellJobs(o, "run", jobs)
	if err != nil {
		return RunResult{}, err
	}
	mo, ok := vals[0].(matrixOut)
	if !ok {
		return RunResult{}, fmt.Errorf("experiments: run cell returned %T", vals[0])
	}
	return mo.run, nil
}

// StaticTables renders the paper's static tables (I-III) through the
// engine — each table is one cell, so even the static targets report
// wall time into the artifact and exercise the concurrent path.
func StaticTables(o Options, names ...string) ([]*stats.Table, error) {
	builders := map[string]func() *stats.Table{
		"table1": Table1, "table2": Table2, "table3": Table3,
	}
	jobs := make([]cellJob, len(names))
	for i, n := range names {
		build, ok := builders[n]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown static table %q", n)
		}
		jobs[i] = cellJob{key: n, fn: func(ctx context.Context, seed int64) (any, error) {
			return build(), nil
		}}
	}
	vals, err := runCellJobs(o, "tables", jobs)
	if err != nil {
		return nil, err
	}
	out := make([]*stats.Table, len(vals))
	for i, v := range vals {
		out[i] = v.(*stats.Table)
	}
	return out, nil
}
