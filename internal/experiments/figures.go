package experiments

import (
	"context"
	"fmt"

	"hams/internal/core"
	"hams/internal/cpu"
	"hams/internal/mem"
	"hams/internal/osmodel"
	"hams/internal/pcie"
	"hams/internal/platform"
	"hams/internal/report"
	"hams/internal/sim"
	"hams/internal/ssd"
	"hams/internal/stats"
	"hams/internal/workload"
)

// ---------------------------------------------------------------------
// Fig. 5: ULL-Flash vs NVMe SSD device-level characterization.

// qdPoint is one queue-depth measurement.
type qdPoint struct {
	AvgLatUS float64
	BWMBs    float64
}

// sweepDevice runs a closed-loop 4 KB workload at the given queue
// depth against a device behind a PCIe link.
func sweepDevice(devCfg ssd.Config, depth int, nOps int, seq, write bool) qdPoint {
	dev := ssd.New(devCfg)
	link := pcie.New(pcie.Gen3x4())
	// Precondition: fill the target range so reads hit mapped pages
	// (the paper fully preconditions the media, §VI-A).
	span := uint64(nOps) * 4
	for lba := uint64(0); lba < span; lba++ {
		dev.Write(0, lba, make([]byte, 4096), false)
	}
	dev.Flush(0)
	if !write {
		// Reads must exercise the flash path: a real run's working
		// set dwarfs the 512 MB internal DRAM.
		dev.DropCaches(0)
	}
	start := sim.Time(1 * sim.Second) // let preconditioning drain
	inflight := make([]sim.Time, depth)
	for i := range inflight {
		inflight[i] = start
	}
	var totalLat sim.Time
	var lastDone sim.Time
	rng := uint64(12345)
	for i := 0; i < nOps; i++ {
		// Earliest-free slot models the host keeping `depth` in flight.
		slot := 0
		for s := range inflight {
			if inflight[s] < inflight[slot] {
				slot = s
			}
		}
		issue := inflight[slot]
		var lba uint64
		if seq {
			lba = uint64(i) % span
		} else {
			rng = rng*6364136223846793005 + 1442695040888963407
			lba = (rng >> 11) % span
		}
		var done sim.Time
		if write {
			d := link.ToDevice(issue, 4096)
			d2, _ := dev.Write(d, lba, make([]byte, 4096), false)
			done = d2
		} else {
			d, _ := dev.Read(issue, lba, 0)
			done = link.ToHost(d, 4096)
		}
		totalLat += done - issue
		inflight[slot] = done
		if done > lastDone {
			lastDone = done
		}
	}
	elapsed := (lastDone - start).Seconds()
	p := qdPoint{AvgLatUS: float64(totalLat) / float64(nOps) / 1000}
	if elapsed > 0 {
		p.BWMBs = float64(nOps) * 4096 / elapsed / 1e6
	}
	return p
}

// fig5Point is one device-sweep cell output, carrying enough identity
// to serialize into the BENCH artifact.
type fig5Point struct {
	dev   string
	label string
	nOps  int
	p     qdPoint
}

func (f fig5Point) reportCell() report.Cell {
	return report.Cell{
		Platform:    f.dev,
		Workload:    f.label,
		Units:       int64(f.nOps),
		UnitsPerSec: f.p.BWMBs * 1e6 / 4096, // 4 KB IOs/s
		Extra:       map[string]float64{"avg_lat_us": f.p.AvgLatUS, "bw_mbs": f.p.BWMBs},
	}
}

// Fig5 regenerates the three panels of Figure 5. Every (device, depth,
// mode) point is an independent engine cell.
func Fig5(o Options) ([]*stats.Table, error) {
	nOps := 400
	depths := []int{1, 2, 4, 8, 16, 32}
	devs := []struct {
		name string
		cfg  func() ssd.Config
	}{{"ULL-Flash", ssd.ULLFlash}, {"NVMe-SSD", ssd.NVMeSSD}}
	modes := []struct {
		label      string
		seq, write bool
	}{{"seqRd", true, false}, {"rndRd", false, false}, {"seqWr", true, true}, {"rndWr", false, true}}

	var jobs []cellJob
	for _, d := range devs {
		for _, wr := range []bool{false, true} {
			rw := "rndRd"
			if wr {
				rw = "rndWr"
			}
			jobs = append(jobs, cellJob{
				key: fmt.Sprintf("a/%s/%s", d.name, rw),
				fn: func(ctx context.Context, seed int64) (any, error) {
					return fig5Point{d.name, "qd1-" + rw, nOps, sweepDevice(d.cfg(), 1, nOps, false, wr)}, nil
				},
			})
		}
	}
	for _, depth := range depths {
		for _, d := range devs {
			for _, m := range modes {
				jobs = append(jobs, cellJob{
					key: fmt.Sprintf("bc/qd%d/%s/%s", depth, d.name, m.label),
					fn: func(ctx context.Context, seed int64) (any, error) {
						return fig5Point{d.name, fmt.Sprintf("qd%d-%s", depth, m.label), nOps,
							sweepDevice(d.cfg(), depth, nOps, m.seq, m.write)}, nil
					},
				})
			}
		}
	}
	vals, err := runCellJobs(o, "fig5", jobs)
	if err != nil {
		return nil, err
	}

	a := stats.NewTable("Fig. 5a: 4KB access latency (us), QD1", "device", "read", "write")
	a.AddRow("ULL-Flash", stats.F(vals[0].(fig5Point).p.AvgLatUS), stats.F(vals[1].(fig5Point).p.AvgLatUS))
	a.AddRow("NVMe-SSD", stats.F(vals[2].(fig5Point).p.AvgLatUS), stats.F(vals[3].(fig5Point).p.AvgLatUS))

	b := stats.NewTable("Fig. 5b: latency vs queue depth (us)",
		"depth", "ULL seqRd", "ULL rndRd", "ULL seqWr", "ULL rndWr",
		"NVMe seqRd", "NVMe rndRd", "NVMe seqWr", "NVMe rndWr")
	c := stats.NewTable("Fig. 5c: bandwidth vs queue depth (MB/s)",
		"depth", "ULL seqRd", "ULL rndRd", "ULL seqWr", "ULL rndWr",
		"NVMe seqRd", "NVMe rndRd", "NVMe seqWr", "NVMe rndWr")
	i := 4 // past panel a
	for _, d := range depths {
		lat := []string{fmt.Sprint(d)}
		bw := []string{fmt.Sprint(d)}
		for range devs {
			for range modes {
				p := vals[i].(fig5Point).p
				i++
				lat = append(lat, stats.F(p.AvgLatUS))
				bw = append(bw, stats.F(p.BWMBs))
			}
		}
		b.AddRow(lat...)
		c.AddRow(bw...)
	}
	return []*stats.Table{a, b, c}, nil
}

// ---------------------------------------------------------------------
// Fig. 6: MMF-based system performance across SSDs.

// Fig6 regenerates both panels.
func Fig6(o Options) ([]*stats.Table, error) {
	ssds := []string{"sata", "nvme", "ull"}
	labels := []string{"SATA-SSD", "NVMe-SSD", "ULL-Flash"}

	a := stats.NewTable("Fig. 6a: mmap-bench bandwidth (MB/s)",
		append([]string{"workload"}, labels...)...)
	for _, wl := range []string{"seqRd", "rndRd", "seqWr", "rndWr"} {
		row := []string{wl}
		for _, s := range ssds {
			r, err := Run("mmap", wl, o, platform.Options{MmapSSD: s}, nil)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.F(r.UnitsPerSec()*4096/1e6)) // pages/s -> MB/s
		}
		a.AddRow(row...)
	}

	b := stats.NewTable("Fig. 6b: SQLite latency per op (us)",
		append([]string{"workload"}, labels...)...)
	for _, wl := range []string{"seqSel", "rndSel", "seqIns", "rndIns", "update"} {
		row := []string{wl}
		for _, s := range ssds {
			r, err := Run("mmap", wl, o, platform.Options{MmapSSD: s}, nil)
			if err != nil {
				return nil, err
			}
			if r.Units > 0 {
				row = append(row, stats.F(float64(r.CPU.Elapsed)/1000/float64(r.Units)))
			} else {
				row = append(row, "-")
			}
		}
		b.AddRow(row...)
	}
	return []*stats.Table{a, b}, nil
}

// ---------------------------------------------------------------------
// Fig. 7: software overheads and bypass IPC.

var fig7Workloads = []string{"rndRd", "rndWr", "seqRd", "seqWr", "rndIns", "seqIns", "update", "rndSel", "seqSel"}

// mmfExposer lets the harness reach the MMF model inside the mmap
// platform without exporting the concrete type.
type mmfExposer interface{ MMF() *osmodel.MMF }

// Fig7 regenerates the execution breakdown (a) and bypass IPC (b).
func Fig7(o Options) ([]*stats.Table, error) {
	a := stats.NewTable("Fig. 7a: mmap execution breakdown (shares) + degradation vs NVDIMM",
		"workload", "mmap", "I/O stack", "SSD", "CPU", "degradation")
	for _, wl := range fig7Workloads {
		r, err := Run("mmap", wl, o, platform.Options{}, nil)
		if err != nil {
			return nil, err
		}
		ms := r.Plat.(mmfExposer).MMF().Stats()
		total := float64(r.CPU.Elapsed)
		if total <= 0 {
			continue
		}
		sh := stats.Shares(float64(ms.MmapTime), float64(ms.StackTime), float64(ms.SSDTime),
			total-float64(ms.MmapTime+ms.StackTime+ms.SSDTime))
		or, err := Run("oracle", wl, o, platform.Options{}, nil)
		if err != nil {
			return nil, err
		}
		deg := 1 - float64(or.CPU.Elapsed)/total
		a.AddRow(wl, stats.Pct(sh[0]), stats.Pct(sh[1]), stats.Pct(sh[2]), stats.Pct(sh[3]), stats.Pct(deg))
	}

	b := stats.NewTable("Fig. 7b: IPC of bypass strategies",
		"workload", "NVDIMM", "ULL", "ULL-buff")
	for _, wl := range fig7Workloads {
		row := []string{wl}
		for _, pn := range []string{"oracle", "ull-direct", "ull-buff"} {
			r, err := Run(pn, wl, o, platform.Options{}, nil)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.4f", r.CPU.IPC(cpu.DefaultConfig())))
		}
		b.AddRow(row...)
	}
	return []*stats.Table{a, b}, nil
}

// ---------------------------------------------------------------------
// Fig. 10a: DMA share of AMAT under baseline (loose) HAMS.

// hamsExposer reaches the controller inside a HAMS platform.
type hamsExposer interface{ Controller() *core.Controller }

// Fig10 regenerates the DMA-overhead fractions.
func Fig10(o Options) (*stats.Table, error) {
	t := stats.NewTable("Fig. 10a: interface/DMA share of memory access time (hams-L)",
		"workload", "DMA share")
	for _, wl := range fig7Workloads {
		r, err := Run("hams-LE", wl, o, platform.Options{}, nil)
		if err != nil {
			return nil, err
		}
		cs := r.Plat.(hamsExposer).Controller().Stats()
		den := float64(cs.NVDIMMTime + cs.DMATime + cs.SSDTime + cs.WaitTime)
		if den <= 0 {
			t.AddRow(wl, "-")
			continue
		}
		t.AddRow(wl, stats.Pct(float64(cs.DMATime)/den))
	}
	return t, nil
}

// ---------------------------------------------------------------------
// Fig. 16: application performance across the 11 platforms.

// Fig16 regenerates both panels: K pages/s (micro + Rodinia) and SQL
// ops/s (SQLite). The full 11-platform × 12-workload matrix runs as
// independent engine cells — the heaviest figure and the biggest win
// from parallelism.
func Fig16(o Options) ([]*stats.Table, error) {
	plats := platform.Names()
	micro := workloadsOf(workload.Micro, workload.Rodinia)
	sqlite := workloadsOf(workload.SQLite)

	var cells []matrixCell
	for _, s := range append(append([]workload.Spec{}, micro...), sqlite...) {
		for _, pn := range plats {
			cells = append(cells, matrixCell{
				key: s.Name + "/" + pn, platform: pn, workload: s.Name,
			})
		}
	}
	res, err := runMatrix(o, "fig16", cells)
	if err != nil {
		return nil, err
	}

	a := stats.NewTable("Fig. 16a: app performance (K pages/s)",
		append([]string{"workload"}, plats...)...)
	i := 0
	for _, s := range micro {
		row := []string{s.Name}
		for range plats {
			row = append(row, stats.F(res[i].UnitsPerSec()/1000))
			i++
		}
		a.AddRow(row...)
	}

	b := stats.NewTable("Fig. 16b: SQLite performance (ops/s)",
		append([]string{"workload"}, plats...)...)
	for _, s := range sqlite {
		row := []string{s.Name}
		for range plats {
			row = append(row, stats.F(res[i].UnitsPerSec()))
			i++
		}
		b.AddRow(row...)
	}
	return []*stats.Table{a, b}, nil
}

// ---------------------------------------------------------------------
// Fig. 17: system-level execution-time breakdown.

var fig17Plats = []string{"mmap", "hams-LP", "hams-LE", "hams-TP", "hams-TE"}

// Fig17 regenerates the normalized execution breakdown.
func Fig17(o Options) (*stats.Table, error) {
	t := stats.NewTable("Fig. 17: execution time breakdown, normalized to mmap",
		"workload", "platform", "OS", "SSD", "app", "norm. total")
	for _, wl := range workload.Names() {
		spec, err := workload.ByName(wl)
		if err != nil {
			return nil, err
		}
		threads := float64(spec.Threads)
		var mmapElapsed float64
		for _, pn := range fig17Plats {
			r, err := Run(pn, wl, o, platform.Options{}, nil)
			if err != nil {
				return nil, err
			}
			total := float64(r.CPU.Elapsed)
			if pn == "mmap" {
				mmapElapsed = total
			}
			// OS/SSD times accumulate across cores; fold them back to
			// wall-clock shares before normalizing to the mmap bar.
			osT := float64(r.CPU.OSTime) / threads
			ssdT := float64(r.CPU.SSDTime+r.CPU.DMATime) / threads
			app := total - osT - ssdT
			if app < 0 {
				app = 0
			}
			norm := 0.0
			if mmapElapsed > 0 {
				norm = total / mmapElapsed
			}
			t.AddRow(wl, pn,
				stats.F(osT/mmapElapsed), stats.F(ssdT/mmapElapsed), stats.F(app/mmapElapsed),
				stats.F(norm))
		}
	}
	return t, nil
}

// ---------------------------------------------------------------------
// Fig. 18: memory access delay breakdown across HAMS variants.

// Fig18 regenerates the NVDIMM/DMA/SSD decomposition, normalized to
// hams-LP per workload.
func Fig18(o Options) (*stats.Table, error) {
	t := stats.NewTable("Fig. 18: memory delay breakdown (normalized to hams-LP)",
		"workload", "platform", "NVDIMM", "DMA", "SSD", "wait", "norm. total")
	hamses := []string{"hams-LP", "hams-LE", "hams-TP", "hams-TE"}
	for _, wl := range workload.Names() {
		var base float64
		for _, pn := range hamses {
			r, err := Run(pn, wl, o, platform.Options{}, nil)
			if err != nil {
				return nil, err
			}
			cs := r.Plat.(hamsExposer).Controller().Stats()
			total := float64(cs.NVDIMMTime + cs.DMATime + cs.SSDTime + cs.WaitTime)
			if pn == "hams-LP" {
				base = total
			}
			if base <= 0 {
				t.AddRow(wl, pn, "-", "-", "-", "-", "-")
				continue
			}
			t.AddRow(wl, pn,
				stats.F(float64(cs.NVDIMMTime)/base), stats.F(float64(cs.DMATime)/base),
				stats.F(float64(cs.SSDTime)/base), stats.F(float64(cs.WaitTime)/base),
				stats.F(total/base))
		}
	}
	return t, nil
}

// ---------------------------------------------------------------------
// Fig. 19: energy breakdown normalized to mmap.

// Fig19 regenerates the four-component energy decomposition.
func Fig19(o Options) (*stats.Table, error) {
	t := stats.NewTable("Fig. 19: energy breakdown (normalized to mmap)",
		"workload", "platform", "CPU", "NVDIMM", "int. DRAM", "Z-NAND", "norm. total")
	for _, wl := range workload.Names() {
		var base float64
		for _, pn := range fig17Plats {
			r, err := Run(pn, wl, o, platform.Options{}, nil)
			if err != nil {
				return nil, err
			}
			e := r.Energy
			if pn == "mmap" {
				base = e.Total()
			}
			if base <= 0 {
				continue
			}
			t.AddRow(wl, pn,
				stats.F(e.CPU/base), stats.F(e.NVDIMM/base),
				stats.F(e.InternalDRAM/base), stats.F(e.ZNAND/base),
				stats.F(e.Total()/base))
		}
	}
	return t, nil
}

// ---------------------------------------------------------------------
// Fig. 20: sensitivity — page sizes and large footprints.

// Fig20 regenerates both panels: the page-size sweep (a) and the
// 44 GB-footprint stress (b), each cell independent on the engine.
func Fig20(o Options) ([]*stats.Table, error) {
	pages := []uint64{4 * mem.KiB, 16 * mem.KiB, 64 * mem.KiB, 128 * mem.KiB, 256 * mem.KiB, 1 * mem.MiB}
	sqlite := []string{"seqSel", "rndSel", "seqIns", "rndIns", "update"}
	stressPlats := []string{"mmap", "hams-TE", "oracle"}

	var cells []matrixCell
	for _, wl := range sqlite {
		for _, pg := range pages {
			cells = append(cells, matrixCell{
				key:      fmt.Sprintf("a/%s/%dKB", wl, pg/mem.KiB),
				platform: "hams-TE", workload: wl,
				popt: platform.Options{HAMSPage: pg},
			})
		}
	}
	for _, wl := range sqlite {
		for _, pn := range stressPlats {
			wo := o.wl()
			wo.DatasetBytes = 44 * mem.GiB
			wo.HotBytes = 12 * mem.GiB // footprint outgrows the NVDIMM
			cells = append(cells, matrixCell{
				key:      fmt.Sprintf("b/%s/%s", wl, pn),
				platform: pn, workload: wl, wopt: &wo,
			})
		}
	}
	res, err := runMatrix(o, "fig20", cells)
	if err != nil {
		return nil, err
	}

	a := stats.NewTable("Fig. 20a: SQLite ops/s vs MoS page size (hams-TE)",
		"workload", "4KB", "16KB", "64KB", "128KB", "256KB", "1MB")
	i := 0
	for _, wl := range sqlite {
		row := []string{wl}
		for range pages {
			row = append(row, stats.F(res[i].UnitsPerSec()))
			i++
		}
		a.AddRow(row...)
	}

	b := stats.NewTable("Fig. 20b: 44GB-footprint stress (ops/s)",
		"workload", "mmap", "hams-TE", "oracle")
	for _, wl := range sqlite {
		row := []string{wl}
		for range stressPlats {
			row = append(row, stats.F(res[i].UnitsPerSec()))
			i++
		}
		b.AddRow(row...)
	}
	return []*stats.Table{a, b}, nil
}

// ---------------------------------------------------------------------
// Headline: §VI-B / conclusion numbers.

// Headline reports the paper's abstract-level claims: MIPS and energy
// of the HAMS variants relative to mmap, averaged over all workloads.
func Headline(o Options) (*stats.Table, error) {
	t := stats.NewTable("Headline: HAMS vs software (mmap) NVDIMM design",
		"platform", "avg MIPS ratio", "avg energy ratio", "avg NVDIMM hit rate")
	plats := []string{"hams-LP", "hams-LE", "hams-TP", "hams-TE"}
	type agg struct {
		mips, energyR, hit float64
		n                  int
	}
	sums := make(map[string]*agg)
	for _, pn := range plats {
		sums[pn] = &agg{}
	}
	for _, wl := range workload.Names() {
		base, err := Run("mmap", wl, o, platform.Options{}, nil)
		if err != nil {
			return nil, err
		}
		for _, pn := range plats {
			r, err := Run(pn, wl, o, platform.Options{}, nil)
			if err != nil {
				return nil, err
			}
			s := sums[pn]
			if base.CPU.MIPS() > 0 {
				s.mips += r.CPU.MIPS() / base.CPU.MIPS()
			}
			if base.Energy.Total() > 0 {
				s.energyR += r.Energy.Total() / base.Energy.Total()
			}
			s.hit += r.Plat.(hamsExposer).Controller().Stats().HitRate()
			s.n++
		}
	}
	for _, pn := range plats {
		s := sums[pn]
		if s.n == 0 {
			continue
		}
		n := float64(s.n)
		t.AddRow(pn, stats.Ratio(s.mips/n), stats.Ratio(s.energyR/n), stats.Pct(s.hit/n))
	}
	return t, nil
}
