package experiments

import (
	"bytes"
	"strings"
	"testing"

	"hams/internal/report"
)

// sampledArtifact runs the sampled target with a recorder and returns
// the canonical artifact bytes. The fan-out cell's wall-clock speedup
// floor is disarmed for the duration: under test instrumentation host
// timing ratios mean nothing, and the floor gates a ratio, never the
// cell contents these tests compare.
func sampledArtifact(t *testing.T, o Options) []byte {
	t.Helper()
	defer func(prev bool) { sampledGateWallClock = prev }(sampledGateWallClock)
	sampledGateWallClock = false
	o.Recorder = &report.Recorder{}
	if _, err := Sampled(o); err != nil {
		t.Fatal(err)
	}
	art := o.Recorder.Artifact("sampled", o.Scale, o.Seed, o.Parallel)
	b, err := art.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Satellite: the sampled target's cells — the sampling-error numbers
// and the restored-run results the fan-out cell publishes — are
// byte-identical for any worker count and any dispatch order.
func TestSampledParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled target runs full warm-ups; skipped in -short")
	}
	serial := Options{Seed: tiny.Seed, Parallel: 1}
	want := sampledArtifact(t, serial)
	for _, key := range []string{
		`"sampled/warm+measure/split@hams-LE"`,
		`"sampled/warm+measure/fanout@hams-LE"`,
	} {
		if !bytes.Contains(want, []byte(key)) {
			t.Fatalf("artifact missing cell %s:\n%s", key, want[:min(len(want), 600)])
		}
	}
	for _, o := range []Options{
		{Seed: tiny.Seed, Parallel: 8},
		{Seed: tiny.Seed, Parallel: 3, Shuffle: 777},
	} {
		if got := sampledArtifact(t, o); !bytes.Equal(got, want) {
			t.Fatalf("sampled artifact diverged for parallel=%d shuffle=%d", o.Parallel, o.Shuffle)
		}
	}
}

// The summary markdown must carry the amortization table (speedup
// column included) and the per-tenant sampling comparison.
func TestSampledMarkdownShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled target runs full warm-ups; skipped in -short")
	}
	defer func(prev bool) { sampledGateWallClock = prev }(sampledGateWallClock)
	sampledGateWallClock = false
	_, md, err := SampledWithSummary(Options{Seed: tiny.Seed, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"| cells | warm-up steps/thread |",
		"speedup",
		"| svc |",
		"| bulk |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("summary markdown missing %q:\n%s", want, md)
		}
	}
}
