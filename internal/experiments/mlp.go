package experiments

import (
	"fmt"

	"hams/internal/mem"
	"hams/internal/platform"
	"hams/internal/stats"
	"hams/internal/workload"
)

// This file hosts the `mlp` target: the memory-level-parallelism
// sweep over the non-blocking miss pipeline. Each cell runs a
// miss-heavy workload on hams-LE with a deliberately small NVDIMM (so
// the MoS cache thrashes) across MSHR depth 1/2/4/8 crossed with an
// NVMe queue-depth cap. Depth 1 is the paper's blocking pipeline —
// every cell at depth 1 must keep reproducing the baseline
// bit-for-bit; the deeper rows quantify what deferring writebacks
// behind demand fills and coalescing misses buys, and the peak
// queue-depth column shows the parallelism actually driven into the
// device.

// MLPPoint is one MSHR-depth × queue-depth configuration.
type MLPPoint struct {
	MSHRs      int
	QueueDepth int // 0 = unbounded
}

func (p MLPPoint) label() string {
	if p.QueueDepth == 0 {
		return fmt.Sprintf("mshr%d", max(p.MSHRs, 1))
	}
	return fmt.Sprintf("mshr%d-qd%d", max(p.MSHRs, 1), p.QueueDepth)
}

// DefaultMLPPoints spans the depth grid: the blocking pipeline,
// depth alone, and depth under a tight queue-depth cap (which shows
// when the NVMe queue, not the register file, is the limiter).
func DefaultMLPPoints() []MLPPoint {
	return []MLPPoint{
		{MSHRs: 1},
		{MSHRs: 2},
		{MSHRs: 4},
		{MSHRs: 8},
		{MSHRs: 4, QueueDepth: 2},
		{MSHRs: 8, QueueDepth: 4},
	}
}

// mlpNVDIMM shrinks the MoS cache (with a PRP pool sized to fit the
// smaller pinned region) so the workloads below evict constantly —
// the regime where the miss pipeline's structure shows.
const (
	mlpNVDIMM   = 32 * mem.MiB
	mlpPRPSlots = 32
	// mlpScale pins the sweep's instruction budget independently of
	// the CLI -scale: the cells must run long enough to fill the
	// cache and reach the eviction regime even at the CI gate's tiny
	// scale, or every depth row measures an empty cache warming up.
	mlpScale = 2e-6
)

// mlpWorkloads are write-heavy (dirty victims make the deferred
// writeback matter) plus a random-read control whose mostly-clean
// victims measure the pipeline's coalescing/hit-under-miss side
// alone. Sequential scans are omitted: they never wrap the shrunken
// cache within the pinned budget, so every row would measure warmup.
var mlpWorkloads = []string{"rndWr", "update", "rndRd"}

// MLPSweep runs the MSHR-depth × queue-depth grid and renders one
// table per workload: mean access latency, wait-queue pressure,
// coalescing/hit-under-miss activity and the peak NVMe queue depth.
func MLPSweep(o Options) ([]*stats.Table, error) {
	points := DefaultMLPPoints()
	// Miss-heavy traffic shape: 95% of the random traffic sprays a
	// 256 MiB dataset whose pages cannot stay resident in the
	// shrunken cache, so the controller lives in the miss/eviction
	// regime the pipeline structure governs (the default locality
	// model would keep every depth row measuring the same thing).
	wopt := workload.DefaultOptions()
	wopt.Scale = mlpScale
	wopt.HotFraction = 0.05
	wopt.HotBytes = 16 * mem.MiB
	wopt.DatasetBytes = 256 * mem.MiB
	var cells []matrixCell
	for _, wl := range mlpWorkloads {
		for i, p := range points {
			cells = append(cells, matrixCell{
				key:      fmt.Sprintf("%s/p%d-%s", wl, i, p.label()),
				platform: "hams-LE", workload: wl,
				popt: platform.Options{
					HAMSMSHRs:      p.MSHRs,
					HAMSQueueDepth: p.QueueDepth,
					HAMSNVDIMM:     mlpNVDIMM,
					HAMSPRPSlots:   mlpPRPSlots,
				},
				wopt:     &wopt,
				keepPlat: true, // the table reads controller stats
				extra:    mlpExtra,
			})
		}
	}
	res, err := runMatrix(o, "mlp", cells)
	if err != nil {
		return nil, err
	}
	byWL := map[string]*stats.Table{}
	var tabs []*stats.Table
	for i, r := range res {
		wl := mlpWorkloads[i/len(points)]
		tab, ok := byWL[wl]
		if !ok {
			tab = stats.NewTable(
				fmt.Sprintf("MLP: non-blocking miss pipeline on %s (hams-LE, %d MiB NVDIMM)", wl, mlpNVDIMM/mem.MiB),
				"pipeline", "mshrs", "qd cap", "hit rate", "avg access", "waitq", "mshr stalls",
				"coalesced", "hum", "peak qd", "units/s")
			byWL[wl] = tab
			tabs = append(tabs, tab)
		}
		p := points[i%len(points)]
		ctl := r.Plat.(hamsExposer).Controller()
		cs := ctl.Stats()
		qdCap := "-"
		if p.QueueDepth > 0 {
			qdCap = fmt.Sprint(p.QueueDepth)
		}
		var avg float64
		if cs.Accesses > 0 {
			avg = float64(cs.TotalTime) / float64(cs.Accesses)
		}
		tab.AddRow(p.label(), fmt.Sprint(max(p.MSHRs, 1)), qdCap,
			fmt.Sprintf("%.4f", cs.HitRate()),
			fmt.Sprintf("%.0fns", avg),
			fmt.Sprint(cs.WaitQ), fmt.Sprint(cs.MSHRStalls),
			fmt.Sprint(cs.Coalesced), fmt.Sprint(cs.HitUnderMiss),
			fmt.Sprint(ctl.PeakQueueDepth()),
			fmt.Sprintf("%.0f", r.UnitsPerSec()))
	}
	return tabs, nil
}

// mlpExtra records the sweep's pipeline metrics into the BENCH cell
// so the CI gate tracks them alongside throughput.
func mlpExtra(r RunResult) map[string]float64 {
	ctl := r.Plat.(hamsExposer).Controller()
	cs := ctl.Stats()
	extra := map[string]float64{
		"peak_qd":        float64(ctl.PeakQueueDepth()),
		"waitq":          float64(cs.WaitQ),
		"mshr_stalls":    float64(cs.MSHRStalls),
		"coalesced":      float64(cs.Coalesced),
		"hit_under_miss": float64(cs.HitUnderMiss),
		"overlap_ns":     float64(r.CPU.OverlapStall),
	}
	if cs.Accesses > 0 {
		extra["avg_access_ns"] = float64(cs.TotalTime) / float64(cs.Accesses)
	}
	return extra
}
