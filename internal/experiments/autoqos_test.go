package experiments

import (
	"strings"
	"testing"

	"hams/internal/replay"
	"hams/internal/runner"
)

// TestAutoQoSAcceptance is the dynamic-QoS acceptance pin, the relation
// the CI bench gate's autoqos cells encode: the feedback controller
// must hold the victim's tail at or under the best static policy's
// while letting the aggressor make strictly faster progress than the
// static cat+mba clamp — i.e. the closed loop dominates the static
// sweep on both axes instead of trading one for the other. Seed 42 is
// the gate's seed; the scenario geometry is pinned, so the cells are
// exact and deterministic.
func TestAutoQoSAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second isolation scenario")
	}
	o := Options{Seed: 42}
	seed := runner.DeriveSeed(o.Seed, qosScenario)

	static := make(map[string]replay.Result)
	for _, v := range qosVariants(o) {
		out, err := qosCell(Options{}, v, seed)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		static[v.name] = out.rep
	}
	autoOut, err := autoQoSCell(Options{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	auto := autoOut.rep

	// The controller actually ran a trajectory, and the cell carries it.
	if auto.QoSReconfigs == 0 {
		t.Fatal("controller never reprogrammed the table")
	}
	if autoOut.cell.Extra["reconfigs"] != float64(auto.QoSReconfigs) {
		t.Fatalf("cell reconfigs extra = %v, result says %d",
			autoOut.cell.Extra["reconfigs"], auto.QoSReconfigs)
	}
	if autoOut.cell.Extra["final_mask:"+qosAggressor] == 0 &&
		autoOut.cell.Extra["final_mbps:"+qosAggressor] == 0 {
		t.Fatal("cell extras carry no final streamer policy")
	}

	// Victim tail: the controller holds p99 at or under every static
	// policy, including the full cat+mba clamp.
	autoVict := tenantStat(auto, qosVictim)
	for name, rep := range static {
		if sv := tenantStat(rep, qosVictim); autoVict.P99 > sv.P99 {
			t.Errorf("auto victim p99 %dns above static %s's %dns",
				autoVict.P99, name, sv.P99)
		}
	}

	// Aggressor progress: every variant retires the same fixed unit
	// count, so progress is rate — units over simulated elapsed. The
	// controller must beat the static clamp it replaces.
	rate := func(rep replay.Result) float64 {
		return float64(tenantStat(rep, qosAggressor).Units) / rep.CPU.Elapsed.Seconds()
	}
	if ar, sr := rate(auto), rate(static["cat+mba"]); ar <= sr {
		t.Fatalf("auto aggressor rate %.0f units/s does not beat static cat+mba's %.0f",
			ar, sr)
	}
}

// TestAutoQoSMarkdown covers the CI step-summary rendering.
func TestAutoQoSMarkdown(t *testing.T) {
	if md := AutoQoSMarkdown(nil); !strings.Contains(md, "No feedback-controlled") {
		t.Fatalf("empty markdown = %q", md)
	}
}
