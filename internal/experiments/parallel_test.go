package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"hams/internal/report"
)

// renderAll runs every engine-ported target and concatenates the
// rendered tables — the byte stream the determinism contract covers.
func renderAll(t *testing.T, o Options) string {
	t.Helper()
	var b strings.Builder
	tabs, err := StaticTables(o, "table1", "table2", "table3")
	if err != nil {
		t.Fatal(err)
	}
	f5, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	f20, err := Fig20(o)
	if err != nil {
		t.Fatal(err)
	}
	abl, err := Ablation(o)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := AssocShardSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Replay(o)
	if err != nil {
		t.Fatal(err)
	}
	mx, err := Mixed(o)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := MLPSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tabs {
		b.WriteString(tb.String())
	}
	for _, tb := range f5 {
		b.WriteString(tb.String())
	}
	for _, tb := range f20 {
		b.WriteString(tb.String())
	}
	b.WriteString(abl.String())
	for _, tb := range sw {
		b.WriteString(tb.String())
	}
	for _, tb := range rp {
		b.WriteString(tb.String())
	}
	for _, tb := range mx {
		b.WriteString(tb.String())
	}
	for _, tb := range ml {
		b.WriteString(tb.String())
	}
	return b.String()
}

// The tentpole's acceptance bar: serial (-parallel=1), parallel
// (-parallel=8) and shuffled-dispatch runs must render byte-identical
// tables for every ported target.
func TestParallelMatchesSerialByteForByte(t *testing.T) {
	base := tiny
	serial := base
	serial.Parallel = 1
	want := renderAll(t, serial)
	for _, o := range []Options{
		{Scale: base.Scale, Seed: base.Seed, Parallel: 8},
		{Scale: base.Scale, Seed: base.Seed, Parallel: 0},
		{Scale: base.Scale, Seed: base.Seed, Parallel: 8, Shuffle: 12345},
		{Scale: base.Scale, Seed: base.Seed, Parallel: 3, Shuffle: 999},
	} {
		if got := renderAll(t, o); got != want {
			t.Fatalf("parallel=%d shuffle=%d output diverged from serial",
				o.Parallel, o.Shuffle)
		}
	}
}

// artifactBytes runs the ported targets with a recorder and returns
// the canonical (timestamp- and wall-time-free) artifact encoding.
func artifactBytes(t *testing.T, o Options) []byte {
	t.Helper()
	o.Recorder = &report.Recorder{}
	renderAll(t, o)
	art := o.Recorder.Artifact("determinism", o.Scale, o.Seed, o.Parallel)
	b, err := art.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Satellite: BENCH artifacts are byte-identical (modulo timestamps,
// which Canonical strips) for -parallel=1, -parallel=8, and shuffled
// worker completion order.
func TestArtifactBytesDeterministic(t *testing.T) {
	serial := Options{Scale: tiny.Scale, Seed: tiny.Seed, Parallel: 1}
	want := artifactBytes(t, serial)
	if !bytes.Contains(want, []byte(`"units_per_sec"`)) {
		t.Fatalf("artifact carries no throughput cells:\n%s", want[:min(len(want), 600)])
	}
	for _, o := range []Options{
		{Scale: tiny.Scale, Seed: tiny.Seed, Parallel: 8},
		{Scale: tiny.Scale, Seed: tiny.Seed, Parallel: 8, Shuffle: 4242},
	} {
		got := artifactBytes(t, o)
		if !bytes.Equal(got, want) {
			t.Fatalf("artifact bytes diverged for parallel=%d shuffle=%d", o.Parallel, o.Shuffle)
		}
	}
}

// Cancelling the harness context must abort figure generation with the
// context's error instead of hanging or finishing the matrix.
func TestFigureCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := tiny
	o.Ctx = ctx
	if _, err := Fig20(o); err == nil {
		t.Fatal("cancelled Fig20 returned no error")
	}
	if _, err := AssocShardSweep(o); err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
}

// The recorder must label cells with platform/workload identity and
// record simulated throughput for matrix cells.
func TestRecorderCellShape(t *testing.T) {
	o := tiny
	o.Recorder = &report.Recorder{}
	if _, err := Fig20(o); err != nil {
		t.Fatal(err)
	}
	art := o.Recorder.Artifact("fig20", o.Scale, o.Seed, o.Parallel)
	if len(art.Cells) != 45 { // 5 wl × 6 pages + 5 wl × 3 platforms
		t.Fatalf("fig20 recorded %d cells, want 45", len(art.Cells))
	}
	c := art.Cells[0]
	if c.Key != "fig20/a/seqSel/4KB" || c.Platform != "hams-TE" || c.Workload != "seqSel" {
		t.Fatalf("first cell mislabeled: %+v", c)
	}
	for _, c := range art.Cells {
		if c.UnitsPerSec <= 0 {
			t.Fatalf("cell %s has no throughput", c.Key)
		}
		if c.WallNS <= 0 {
			t.Fatalf("cell %s has no wall time", c.Key)
		}
	}
}
