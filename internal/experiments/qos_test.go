package experiments

import (
	"strings"
	"testing"

	"hams/internal/qos"
	"hams/internal/replay"
	"hams/internal/runner"
)

// TestQoSIsolationGolden is the isolation acceptance pin: in the qos
// target's own scenario (streaming tenant + latency-sensitive
// service), the full RDT policy (cat+mba) must deliver the victim a
// measurably lower p99 than free-for-all sharing, way partitioning
// must keep the victim's pages resident, and the throttle must have
// actually engaged. Everything here is simulated time, so the
// assertions are exact and deterministic — the same cells run in CI's
// bench gate (seed 42, the gate's seed).
func TestQoSIsolationGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second isolation scenario")
	}
	o := Options{Seed: 42}
	variants := qosVariants(o)
	seed := runner.DeriveSeed(o.Seed, qosScenario)
	byName := make(map[string]replay.Result, len(variants))
	for _, v := range variants {
		if v.name != "shared" && v.name != "cat+mba" {
			continue
		}
		out, err := qosCell(Options{}, v, seed)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		byName[v.name] = out.rep
	}
	shared, iso := byName["shared"], byName["cat+mba"]

	sharedVict := tenantStat(shared, qosVictim)
	isoVict := tenantStat(iso, qosVictim)
	// The headline: partitioning on beats partitioning off on victim
	// tail latency, with margin (measured ~2.7× at this seed).
	if isoVict.P99*3 >= sharedVict.P99*2 {
		t.Fatalf("victim p99 not measurably lower with QoS on: shared %dns vs cat+mba %dns",
			sharedVict.P99, isoVict.P99)
	}
	if isoVict.P95 >= sharedVict.P95 {
		t.Fatalf("victim p95 not lower with QoS on: shared %dns vs cat+mba %dns",
			sharedVict.P95, isoVict.P95)
	}
	// CAT: the victim's partition kept its working set resident; in
	// the free-for-all the streamer swept every victim page out.
	if sharedVict.QoS.Occupancy != 0 {
		t.Fatalf("shared: victim still owns %d pages (streamer should have swept them)",
			sharedVict.QoS.Occupancy)
	}
	if isoVict.QoS.Occupancy == 0 {
		t.Fatal("cat+mba: victim owns no pages despite its partition")
	}
	// MBA: the throttle engaged on the streamer and only the streamer.
	isoAggr := tenantStat(iso, qosAggressor)
	if isoAggr.QoS.ThrottleNS == 0 {
		t.Fatal("cat+mba: streamer was never throttled")
	}
	if isoVict.QoS.ThrottleNS != 0 {
		t.Fatalf("cat+mba: victim absorbed %v of throttle debt", isoVict.QoS.ThrottleNS)
	}
	// And the streamer's achieved bandwidth respects the cap (with
	// slack for the final in-flight transfer).
	if got := isoAggr.QoS.FillMBps(iso.CPU.Elapsed); got > qosAggressorMBps*1.05 {
		t.Fatalf("cat+mba: streamer fill bandwidth %.1f MB/s exceeds the %d MB/s cap", got, qosAggressorMBps)
	}
}

// TestQoSOverrideErrorDeterministic pins the fix hamslint/maporder
// forced: with several unknown classes in one invocation, the error
// must name the lexically-first one on every run, not whichever the
// map iterator yields. 32 repetitions would flap without the sorted
// iteration (map order is re-randomized per run and per map).
func TestQoSOverrideErrorDeterministic(t *testing.T) {
	for i := 0; i < 32; i++ {
		masks := map[string]uint64{"zeta": 1, "alpha": 2, "mid": 3}
		err := ValidateQoSOverrides(masks, nil)
		if err == nil {
			t.Fatal("unknown classes accepted")
		}
		if !strings.Contains(err.Error(), `unknown class "alpha"`) {
			t.Fatalf("iteration %d: error names %v, want the lexically-first class alpha", i, err)
		}
		mbps := map[string]float64{"zzz": 5, "bbb": 6}
		err = ValidateQoSOverrides(nil, mbps)
		if err == nil || !strings.Contains(err.Error(), `unknown class "bbb"`) {
			t.Fatalf("iteration %d: -qos-mbps error = %v, want it to name bbb", i, err)
		}
	}
}

// TestQoSMarkdownAndOverrides covers the CI summary rendering and the
// up-front override validation.
func TestQoSMarkdownAndOverrides(t *testing.T) {
	if err := ValidateQoSOverrides(map[string]uint64{"latency": 0xf0}, nil); err != nil {
		t.Fatalf("valid mask override rejected: %v", err)
	}
	if err := ValidateQoSOverrides(map[string]uint64{"nope": 1}, nil); err == nil {
		t.Fatal("unknown mask class accepted")
	}
	if err := ValidateQoSOverrides(nil, map[string]float64{"nope": 5}); err == nil {
		t.Fatal("unknown throttle class accepted")
	}
	if err := ValidateQoSOverrides(nil, map[string]float64{"stream": -1}); err == nil {
		t.Fatal("negative throttle accepted")
	}
	// Override plumbing: the isolated table reflects the CLI values.
	o := Options{
		QoSMasks: map[string]uint64{"latency": 0xf0, "stream": 0x0f},
		QoSMBps:  map[string]float64{"stream": 250},
	}
	tab := qosTable(o, true, true)
	if id, ok := tab.ByName("latency"); !ok || tab.Classes[id].WayMask != 0xf0 {
		t.Fatalf("mask override not applied: %+v", tab.Classes)
	}
	if id, ok := tab.ByName("stream"); !ok || tab.Classes[id].MBps != 250 {
		t.Fatalf("throttle override not applied: %+v", tab.Classes)
	}

	md := QoSMarkdown(nil)
	if !strings.Contains(md, "No shared-baseline") {
		t.Fatalf("empty markdown = %q", md)
	}
	// Table validation catches masks beyond the sweep's 8-way array
	// when the scenario is built (replay.Run -> core.New).
	bad := qosVariant{name: "cat", qos: &qos.Table{Classes: []qos.Class{
		{Name: qosVictim, WayMask: 1 << 20},
		{Name: qosAggressor},
	}}}
	if _, err := qosCell(Options{}, bad, 1); err == nil {
		t.Fatal("out-of-range mask accepted by scenario build")
	}
}
