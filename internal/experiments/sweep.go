package experiments

import (
	"fmt"

	"hams/internal/core"
	"hams/internal/core/tagstore"
	"hams/internal/platform"
	"hams/internal/stats"
)

// SweepPoint is one cache-geometry configuration of the
// associativity × shard sweep.
type SweepPoint struct {
	Ways   int
	Banks  int
	Policy tagstore.Policy
}

func (p SweepPoint) label() string {
	if p.Ways <= 1 {
		return fmt.Sprintf("direct ×%db", max(p.Banks, 1))
	}
	return fmt.Sprintf("%dw/%s ×%db", p.Ways, p.Policy, max(p.Banks, 1))
}

// DefaultSweepPoints spans the geometry grid the sweep evaluates: the
// paper's direct-mapped single bank, associativity alone, sharding
// alone, and both together (plus a policy comparison at 4-way).
func DefaultSweepPoints() []SweepPoint {
	return []SweepPoint{
		{Ways: 1, Banks: 1},
		{Ways: 2, Banks: 1, Policy: tagstore.LRU},
		{Ways: 4, Banks: 1, Policy: tagstore.LRU},
		{Ways: 1, Banks: 4},
		{Ways: 4, Banks: 4, Policy: tagstore.LRU},
		{Ways: 4, Banks: 4, Policy: tagstore.Clock},
		{Ways: 4, Banks: 4, Policy: tagstore.Random},
	}
}

// SweepResult is one workload × geometry run of the sweep.
type SweepResult struct {
	Workload string
	Point    SweepPoint
	Run      RunResult
	Core     core.Stats
}

// HitRate returns the MoS tag-array hit rate of the run.
func (r SweepResult) HitRate() float64 { return r.Core.HitRate() }

// AvgAccessNanos returns the mean controller access latency in ns.
func (r SweepResult) AvgAccessNanos() float64 {
	if r.Core.Accesses == 0 {
		return 0
	}
	return float64(r.Core.TotalTime) / float64(r.Core.Accesses)
}

// AssocShardSweep runs the associativity × shard grid on the random
// microbenchmarks and a SQLite workload against hams-LE, reporting
// hit rate, mean access latency and throughput per geometry. The
// direct-mapped single-bank row is the seed configuration; the other
// rows quantify what the tagstore/bank generalization buys.
func AssocShardSweep(o Options) ([]*stats.Table, error) {
	results, err := RunSweep(o, []string{"rndRd", "rndWr", "rndIns"}, DefaultSweepPoints())
	if err != nil {
		return nil, err
	}
	byWL := map[string]*stats.Table{}
	var tabs []*stats.Table
	for _, r := range results {
		tab, ok := byWL[r.Workload]
		if !ok {
			tab = stats.NewTable(
				fmt.Sprintf("Sweep: MoS cache geometry on %s (hams-LE)", r.Workload),
				"geometry", "ways", "banks", "policy", "hit rate", "avg access", "waitq", "evictions", "units/s")
			byWL[r.Workload] = tab
			tabs = append(tabs, tab)
		}
		tab.AddRow(r.Point.label(),
			fmt.Sprint(max(r.Point.Ways, 1)), fmt.Sprint(max(r.Point.Banks, 1)),
			r.Point.Policy.String(),
			fmt.Sprintf("%.4f", r.HitRate()),
			fmt.Sprintf("%.0fns", r.AvgAccessNanos()),
			fmt.Sprint(r.Core.WaitQ),
			fmt.Sprint(r.Core.Evictions),
			fmt.Sprintf("%.0f", r.Run.UnitsPerSec()))
	}
	return tabs, nil
}

// RunSweep executes every workload × geometry combination as
// independent engine cells. Keys carry the point index so arbitrary
// caller-supplied grids (even with repeated points) stay unique.
func RunSweep(o Options, workloads []string, points []SweepPoint) ([]SweepResult, error) {
	var cells []matrixCell
	for _, wl := range workloads {
		for i, p := range points {
			cells = append(cells, matrixCell{
				key:      fmt.Sprintf("%s/p%d-%s", wl, i, p.label()),
				platform: "hams-LE", workload: wl,
				popt: platform.Options{
					HAMSWays:   p.Ways,
					HAMSBanks:  p.Banks,
					HAMSPolicy: p.Policy,
				},
				keepPlat: true, // SweepResult reads controller stats
			})
		}
	}
	res, err := runMatrix(o, "sweep", cells)
	if err != nil {
		return nil, err
	}
	out := make([]SweepResult, 0, len(res))
	for i, r := range res {
		out = append(out, SweepResult{
			Workload: workloads[i/len(points)],
			Point:    points[i%len(points)],
			Run:      r,
			Core:     r.Plat.(hamsExposer).Controller().Stats(),
		})
	}
	return out, nil
}
