package qos

import (
	"fmt"

	"hams/internal/checkpoint"
	"hams/internal/sim"
)

// SaveState serializes the regulator: per-class rates (which runtime
// reprogramming may have changed since construction) and the accrued
// leaky-bucket debt.
func (th *Throttle) SaveState(enc *checkpoint.Enc) {
	enc.Count(len(th.nsPerByte))
	for i := range th.nsPerByte {
		enc.F64(th.nsPerByte[i])
		enc.I64(int64(th.nextFree[i]))
	}
}

// RestoreState overlays the regulator. The class count is structural.
func (th *Throttle) RestoreState(d *checkpoint.Dec) error {
	n := d.Count(len(th.nsPerByte))
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(th.nsPerByte) {
		return fmt.Errorf("%w: throttle has %d classes, image has %d", checkpoint.ErrMismatch, len(th.nsPerByte), n)
	}
	for i := 0; i < n; i++ {
		th.nsPerByte[i] = d.F64()
		th.nextFree[i] = sim.Time(d.I64())
	}
	return d.Err()
}

// SaveState serializes the class table: runtime reprogramming mutates
// masks and rates in place, so the table travels with the image.
func (t *Table) SaveState(enc *checkpoint.Enc) {
	enc.Count(len(t.Classes))
	for _, c := range t.Classes {
		enc.String(c.Name)
		enc.U64(c.WayMask)
		enc.F64(c.MBps)
	}
}

// RestoreState overlays the table. Class identity (count and names) is
// structural; only masks and rates are overlaid.
func (t *Table) RestoreState(d *checkpoint.Dec) error {
	n := d.Count(len(t.Classes))
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(t.Classes) {
		return fmt.Errorf("%w: table has %d classes, image has %d", checkpoint.ErrMismatch, len(t.Classes), n)
	}
	for i := range t.Classes {
		name := d.String(4096)
		mask := d.U64()
		mbps := d.F64()
		if err := d.Err(); err != nil {
			return err
		}
		if name != t.Classes[i].Name {
			return fmt.Errorf("%w: class %d is %q, image has %q", checkpoint.ErrMismatch, i, t.Classes[i].Name, name)
		}
		t.Classes[i].WayMask = mask
		t.Classes[i].MBps = mbps
	}
	return nil
}

// SaveState serializes the monitor: per-class counters, the sampling
// cadence (period doubles under compaction), and the sample history.
// The emit hook is wiring, not state.
func (m *Monitor) SaveState(enc *checkpoint.Enc) {
	enc.Count(len(m.stats))
	for i := range m.stats {
		s := &m.stats[i]
		enc.String(s.Name)
		enc.I64(s.Accesses)
		enc.I64(s.Hits)
		enc.I64(s.Misses)
		enc.I64(s.FillBytes)
		enc.I64(s.WBBytes)
		enc.I64(int64(s.ThrottleNS))
		enc.I64(s.Occupancy)
		enc.I64(s.OccupancyPeak)
	}
	enc.I64(int64(m.period))
	enc.I64(int64(m.next))
	enc.Bool(m.started)
	enc.Count(len(m.samples))
	for i := range m.samples {
		sm := &m.samples[i]
		enc.I64(int64(sm.At))
		for _, v := range sm.Occupancy {
			enc.I64(v)
		}
		for _, v := range sm.FillBytes {
			enc.I64(v)
		}
		for _, v := range sm.WBBytes {
			enc.I64(v)
		}
	}
	for _, v := range m.winFill {
		enc.I64(v)
	}
	for _, v := range m.winWB {
		enc.I64(v)
	}
}

// RestoreState overlays the monitor. Class count and names are
// structural; each sample carries one value per class.
func (m *Monitor) RestoreState(d *checkpoint.Dec) error {
	n := d.Count(len(m.stats))
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(m.stats) {
		return fmt.Errorf("%w: monitor has %d classes, image has %d", checkpoint.ErrMismatch, len(m.stats), n)
	}
	for i := range m.stats {
		s := &m.stats[i]
		name := d.String(4096)
		if d.Err() == nil && name != s.Name {
			return fmt.Errorf("%w: monitor class %d is %q, image has %q", checkpoint.ErrMismatch, i, s.Name, name)
		}
		s.Accesses = d.I64()
		s.Hits = d.I64()
		s.Misses = d.I64()
		s.FillBytes = d.I64()
		s.WBBytes = d.I64()
		s.ThrottleNS = sim.Time(d.I64())
		s.Occupancy = d.I64()
		s.OccupancyPeak = d.I64()
	}
	m.period = sim.Time(d.I64())
	m.next = sim.Time(d.I64())
	m.started = d.Bool()
	nsamp := d.Count(maxSamples)
	if err := d.Err(); err != nil {
		return err
	}
	m.samples = make([]Sample, nsamp)
	for i := range m.samples {
		sm := &m.samples[i]
		sm.At = sim.Time(d.I64())
		sm.Occupancy = make([]int64, n)
		sm.FillBytes = make([]int64, n)
		sm.WBBytes = make([]int64, n)
		for j := 0; j < n; j++ {
			sm.Occupancy[j] = d.I64()
		}
		for j := 0; j < n; j++ {
			sm.FillBytes[j] = d.I64()
		}
		for j := 0; j < n; j++ {
			sm.WBBytes[j] = d.I64()
		}
	}
	for i := range m.winFill {
		m.winFill[i] = d.I64()
	}
	for i := range m.winWB {
		m.winWB[i] = d.I64()
	}
	return d.Err()
}

// SaveState serializes the feedback controller: the rolling victim-
// latency window (with cursor and fill), the desired and last-emitted
// aggressor-group state, and the compliant-sample hold counter. The
// SLO itself is scenario configuration, rebuilt on restore.
func (c *Controller) SaveState(enc *checkpoint.Enc) {
	enc.Count(len(c.lat))
	for _, v := range c.lat {
		enc.I64(int64(v))
	}
	enc.I64(int64(c.idx))
	enc.I64(int64(c.count))
	enc.I64(int64(c.aggrWays))
	enc.F64(c.aggrCap)
	enc.I64(int64(c.curWays))
	enc.F64(c.curCap)
	enc.I64(int64(c.holds))
}

// RestoreState overlays the controller. The window size is structural
// (SLO.Window).
func (c *Controller) RestoreState(d *checkpoint.Dec) error {
	n := d.Count(len(c.lat))
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(c.lat) {
		return fmt.Errorf("%w: controller window is %d, image has %d", checkpoint.ErrMismatch, len(c.lat), n)
	}
	for i := range c.lat {
		c.lat[i] = sim.Time(d.I64())
	}
	c.idx = int(d.I64())
	c.count = int(d.I64())
	c.aggrWays = int(d.I64())
	c.aggrCap = d.F64()
	c.curWays = int(d.I64())
	c.curCap = d.F64()
	c.holds = int(d.I64())
	return d.Err()
}
