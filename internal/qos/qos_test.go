package qos

import (
	"strings"
	"testing"

	"hams/internal/sim"
)

func TestFullMask(t *testing.T) {
	cases := []struct {
		ways int
		want uint64
	}{{0, 1}, {1, 1}, {2, 3}, {4, 0xf}, {8, 0xff}, {64, ^uint64(0)}, {100, ^uint64(0)}}
	for _, c := range cases {
		if got := FullMask(c.ways); got != c.want {
			t.Errorf("FullMask(%d) = %#x, want %#x", c.ways, got, c.want)
		}
	}
}

func TestParseMask(t *testing.T) {
	good := map[string]uint64{
		"0xf0": 0xf0, "f0": 0xf0, "0XF0": 0xf0, "0b1010": 0b1010,
		"3": 3, " 0x3 ": 3, "": 0, "full": 0, "FULL": 0,
	}
	for in, want := range good {
		got, err := ParseMask(in)
		if err != nil || got != want {
			t.Errorf("ParseMask(%q) = %#x, %v; want %#x", in, got, err, want)
		}
	}
	for _, in := range []string{"0", "0x0", "zz", "0bxyz", "0x", "-4", "1.5"} {
		if _, err := ParseMask(in); err == nil {
			t.Errorf("ParseMask(%q) accepted", in)
		}
	}
}

func TestTableValidate(t *testing.T) {
	tb := &Table{Classes: []Class{
		{Name: "default"},
		{Name: "latency", WayMask: 0xc},
		{Name: "stream", WayMask: 0x3, MBps: 500},
	}}
	if err := tb.Validate(4); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	// Mask bits beyond the associativity are an error, not silently
	// dropped: on a 2-way array "latency" would get zero ways.
	if err := tb.Validate(2); err == nil {
		t.Fatal("mask beyond associativity accepted")
	}
	bad := []*Table{
		{Classes: []Class{}},
		{Classes: []Class{{Name: ""}}},
		{Classes: []Class{{Name: "a"}, {Name: "a"}}},
		{Classes: []Class{{Name: "a", MBps: -1}}},
	}
	for i, b := range bad {
		if err := b.Validate(4); err == nil {
			t.Errorf("bad table %d accepted", i)
		}
	}
	var nilTable *Table
	if err := nilTable.Validate(4); err != nil {
		t.Fatalf("nil table must validate: %v", err)
	}
}

func TestTableMasksAndNames(t *testing.T) {
	var nilTable *Table
	if m := nilTable.Masks(4); len(m) != 1 || m[0] != 0xf {
		t.Fatalf("nil table masks = %#x", m)
	}
	if n := nilTable.Names(); len(n) != 1 || n[0] != "default" {
		t.Fatalf("nil table names = %v", n)
	}
	tb := &Table{Classes: []Class{{Name: "d"}, {Name: "l", WayMask: 0xc}}}
	m := tb.Masks(4)
	if m[0] != 0xf || m[1] != 0xc {
		t.Fatalf("masks = %#x", m)
	}
}

func TestTableAddAndByName(t *testing.T) {
	tb := DefaultTable()
	id, err := tb.Add(Class{Name: "latency", WayMask: 0xc})
	if err != nil || id != 1 {
		t.Fatalf("Add = %d, %v", id, err)
	}
	if _, err := tb.Add(Class{Name: "latency"}); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if _, err := tb.Add(Class{}); err == nil {
		t.Fatal("unnamed Add accepted")
	}
	if got, ok := tb.ByName("latency"); !ok || got != 1 {
		t.Fatalf("ByName = %d, %v", got, ok)
	}
	if _, ok := tb.ByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestParseAssignments(t *testing.T) {
	m, err := ParseAssignments("a=0x3, b=0xc")
	if err != nil || m["a"] != "0x3" || m["b"] != "0xc" {
		t.Fatalf("ParseAssignments = %v, %v", m, err)
	}
	if m, err := ParseAssignments(""); err != nil || len(m) != 0 {
		t.Fatalf("empty = %v, %v", m, err)
	}
	for _, in := range []string{"a", "=3", "a=1,a=2"} {
		if _, err := ParseAssignments(in); err == nil {
			t.Errorf("ParseAssignments(%q) accepted", in)
		}
	}
	if names := AssignmentNames(m); strings.Join(names, ",") != "a,b" {
		t.Fatalf("AssignmentNames = %v", names)
	}
}

func TestThrottlePacing(t *testing.T) {
	tb := &Table{Classes: []Class{{Name: "d"}, {Name: "s", MBps: 1000}}} // 1 GB/s = 1 byte/ns
	th := NewThrottle(tb)

	// Unthrottled class: identity on time.
	if got := th.Admit(0, 100, 1<<20); got != 100 {
		t.Fatalf("unthrottled Admit = %d", got)
	}
	// First transfer starts immediately, reserves bytes/rate.
	if got := th.Admit(1, 0, 1000); got != 0 {
		t.Fatalf("first Admit = %d", got)
	}
	// Second transfer arriving early is pushed to the drain point.
	if got := th.Admit(1, 10, 1000); got != 1000 {
		t.Fatalf("early Admit = %d, want 1000", got)
	}
	// A transfer after the bucket drained is not delayed.
	if got := th.Admit(1, 5000, 1000); got != 5000 {
		t.Fatalf("late Admit = %d, want 5000", got)
	}
	// Zero/negative bytes and out-of-range classes are no-ops.
	if got := th.Admit(1, 5000, 0); got != 5000 {
		t.Fatalf("zero-byte Admit = %d", got)
	}
	if got := th.Admit(42, 7, 1000); got != 7 {
		t.Fatalf("out-of-range Admit = %d", got)
	}
}

func TestMonitorCountersAndOccupancy(t *testing.T) {
	tb := &Table{Classes: []Class{{Name: "d"}, {Name: "l"}}}
	m := NewMonitor(tb, 0)
	m.OnHit(0)
	m.OnMiss(1)
	m.OnFill(1, 100)
	m.OnWriteback(1, 50)
	m.OnThrottle(1, 7)
	m.Install(1, 0, false)
	m.Install(1, 0, false)
	m.Install(0, 1, true) // class 0 takes over one of class 1's slots

	st := m.Stats()
	if st[0].Hits != 1 || st[1].Misses != 1 {
		t.Fatalf("hit/miss: %+v", st)
	}
	if st[1].FillBytes != 100 || st[1].WBBytes != 50 || st[1].ThrottleNS != 7 {
		t.Fatalf("traffic: %+v", st[1])
	}
	if st[1].Occupancy != 1 || st[1].OccupancyPeak != 2 || st[0].Occupancy != 1 {
		t.Fatalf("occupancy: %+v", st)
	}
	// Out-of-range classes clamp to the default instead of panicking.
	m.OnHit(200)
	m.Install(200, 200, true)
	if got := m.Stats()[0].Hits; got != 2 {
		t.Fatalf("clamped hit count = %d", got)
	}
}

func TestMonitorSampling(t *testing.T) {
	m := NewMonitor(nil, 100)
	m.Tick(0) // arms the sampler
	m.OnFill(0, 64)
	m.Tick(250) // due at 100 and 200
	s := m.Samples()
	if len(s) != 2 || s[0].At != 100 || s[1].At != 200 {
		t.Fatalf("samples = %+v", s)
	}
	if s[0].FillBytes[0] != 64 || s[1].FillBytes[0] != 0 {
		t.Fatalf("window traffic: %+v", s)
	}
}

func TestMonitorCompaction(t *testing.T) {
	m := NewMonitor(nil, 1)
	m.Tick(0)
	m.OnFill(0, 1)
	m.Tick(sim.Time(4 * maxSamples))
	if len(m.Samples()) >= maxSamples {
		t.Fatalf("history not compacted: %d samples", len(m.Samples()))
	}
	if m.Period() <= 1 {
		t.Fatalf("period did not grow: %d", m.Period())
	}
	// Total window traffic is conserved across compaction.
	var total int64
	for _, s := range m.Samples() {
		total += s.FillBytes[0]
	}
	if total != 1 {
		t.Fatalf("compaction lost traffic: %d", total)
	}
}

func TestClassHelpers(t *testing.T) {
	c := Class{Name: "x", WayMask: 0x3, MBps: 10}
	if !c.Throttled() || !c.Partitioned(4) {
		t.Fatalf("helpers: %+v", c)
	}
	if (Class{WayMask: 0xf}).Partitioned(4) {
		t.Fatal("full mask reported partitioned")
	}
	if (Class{}).Partitioned(4) || (Class{}).Throttled() {
		t.Fatal("zero class reported restricted")
	}
	if FormatMask(0) != "full" || FormatMask(0xc) != "0xc" {
		t.Fatal("FormatMask")
	}
	if s := (ClassStats{FillBytes: 2e6}).FillMBps(sim.Second); s != 2 {
		t.Fatalf("FillMBps = %g", s)
	}
	if s := (ClassStats{WBBytes: 1e6}).WBMBps(0); s != 0 {
		t.Fatalf("WBMBps(0) = %g", s)
	}
}
