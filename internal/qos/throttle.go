package qos

import "hams/internal/sim"

// Throttle is the MBA-style bandwidth regulator the controller's bank
// router consults before composing a miss's NVMe traffic. Each class
// is paced by a deterministic virtual-time leaky bucket: a transfer of
// B bytes reserves B/rate seconds of the class's archive bandwidth,
// and a request arriving before the class's previous reservation has
// drained is delayed to the drain point. Unthrottled classes pass
// through untouched — Admit is the identity on time, so a table with
// no throttles cannot perturb the simulation.
type Throttle struct {
	nsPerByte []float64  // 0 = unthrottled
	nextFree  []sim.Time // per-class drain point of prior reservations
}

// NewThrottle builds the regulator for a table (nil = one unthrottled
// default class).
func NewThrottle(t *Table) *Throttle {
	n := t.Len()
	th := &Throttle{
		nsPerByte: make([]float64, n),
		nextFree:  make([]sim.Time, n),
	}
	if t != nil {
		for i, c := range t.Classes {
			if c.MBps > 0 {
				// MBps is 1e6 bytes per simulated second; sim.Time is ns.
				th.nsPerByte[i] = 1e3 / c.MBps
			}
		}
	}
	return th
}

// Admit charges bytes of archive traffic to class c at time now and
// returns the time the transfer may start (>= now). The delay, if
// any, is the MBA throttle's injected stall.
func (th *Throttle) Admit(c ClassID, now sim.Time, bytes int64) sim.Time {
	if int(c) >= len(th.nsPerByte) || th.nsPerByte[c] == 0 || bytes <= 0 {
		return now
	}
	start := now
	if th.nextFree[c] > start {
		start = th.nextFree[c]
	}
	th.nextFree[c] = start + sim.Time(float64(bytes)*th.nsPerByte[c])
	return start
}
