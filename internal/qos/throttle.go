package qos

import "hams/internal/sim"

// Throttle is the MBA-style bandwidth regulator the controller's bank
// router consults before composing a miss's NVMe traffic. Each class
// is paced by a deterministic virtual-time leaky bucket: a transfer of
// B bytes reserves B/rate seconds of the class's archive bandwidth,
// and a request arriving before the class's previous reservation has
// drained is delayed to the drain point. Unthrottled classes pass
// through untouched — Admit is the identity on time, so a table with
// no throttles cannot perturb the simulation.
type Throttle struct {
	nsPerByte []float64  // 0 = unthrottled
	nextFree  []sim.Time // per-class drain point of prior reservations
}

// NewThrottle builds the regulator for a table (nil = one unthrottled
// default class).
func NewThrottle(t *Table) *Throttle {
	n := t.Len()
	th := &Throttle{
		nsPerByte: make([]float64, n),
		nextFree:  make([]sim.Time, n),
	}
	if t != nil {
		for i, c := range t.Classes {
			if c.MBps > 0 {
				// MBps is 1e6 bytes per simulated second; sim.Time is ns.
				th.nsPerByte[i] = 1e3 / c.MBps
			}
		}
	}
	return th
}

// SetRate reprograms class c's bandwidth cap mid-run (the MBA-MSR
// rewrite of a runtime policy change). Only the rate changes: the
// class's drain point survives, so debt accrued under the old rate is
// never forgiven — a class that over-drew at a loose cap and is cut to
// a tight one still waits out every reservation it already made, and
// only traffic admitted after the change is paced at the new rate.
// mbps <= 0 lifts the throttle (again keeping accrued debt).
func (th *Throttle) SetRate(c ClassID, mbps float64) {
	if int(c) >= len(th.nsPerByte) {
		return
	}
	if mbps > 0 {
		th.nsPerByte[c] = 1e3 / mbps
	} else {
		th.nsPerByte[c] = 0
	}
}

// RateMBps returns class c's current cap (0 = unthrottled).
func (th *Throttle) RateMBps(c ClassID) float64 {
	if int(c) >= len(th.nsPerByte) || th.nsPerByte[c] == 0 {
		return 0
	}
	return 1e3 / th.nsPerByte[c]
}

// NextFree exposes class c's drain point — the earliest instant new
// traffic can start. Tests pin the debt-keeping contract of SetRate
// against it.
func (th *Throttle) NextFree(c ClassID) sim.Time {
	if int(c) >= len(th.nextFree) {
		return 0
	}
	return th.nextFree[c]
}

// Admit charges bytes of archive traffic to class c at time now and
// returns the time the transfer may start (>= now). The delay, if
// any, is the MBA throttle's injected stall.
func (th *Throttle) Admit(c ClassID, now sim.Time, bytes int64) sim.Time {
	if int(c) >= len(th.nsPerByte) || th.nsPerByte[c] == 0 || bytes <= 0 {
		return now
	}
	start := now
	if th.nextFree[c] > start {
		start = th.nextFree[c]
	}
	th.nextFree[c] = start + sim.Time(float64(bytes)*th.nsPerByte[c])
	return start
}
