package qos

import "hams/internal/sim"

// ClassStats is the MBM-style counter block of one class: cache
// events, archive traffic, throttle stalls, and tag-array occupancy.
// All counters are simulation-deterministic and purely observational —
// the monitor never feeds back into timing.
type ClassStats struct {
	Class ClassID
	Name  string

	Accesses int64 // page-granular requests tagged with the class
	Hits     int64
	Misses   int64

	// FillBytes / WBBytes are the archive traffic the class generated:
	// fills (archive→NVDIMM) and dirty-victim writebacks
	// (NVDIMM→archive). Like hardware MBM, a writeback is attributed
	// to the class that triggered the eviction, not to the victim
	// page's owner.
	FillBytes int64
	WBBytes   int64

	// ThrottleNS is the total delay the MBA throttle injected into the
	// class's requests.
	ThrottleNS sim.Time

	// Occupancy is the number of tag-array entries currently owned by
	// the class (the class that installed the resident page);
	// OccupancyPeak is its high-water mark.
	Occupancy     int64
	OccupancyPeak int64
}

// FillMBps returns the class's average fill bandwidth over elapsed
// simulated time, in 1e6 bytes/s.
func (s ClassStats) FillMBps(elapsed sim.Time) float64 { return mbps(s.FillBytes, elapsed) }

// WBMBps returns the class's average writeback bandwidth.
func (s ClassStats) WBMBps(elapsed sim.Time) float64 { return mbps(s.WBBytes, elapsed) }

func mbps(bytes int64, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / elapsed.Seconds()
}

// Sample is one periodic monitoring snapshot: per-class occupancy and
// the archive traffic accumulated since the previous sample.
type Sample struct {
	At        sim.Time
	Occupancy []int64
	FillBytes []int64
	WBBytes   []int64
}

// maxSamples bounds monitor memory: when the ring fills, every other
// sample is dropped and the period doubles, so a run of any simulated
// length keeps a bounded, evenly spaced history (deterministically —
// compaction depends only on sample count).
const maxSamples = 512

// Monitor aggregates per-class counters and samples them on simulated
// time. It is single-threaded like the controller that drives it.
type Monitor struct {
	stats   []ClassStats
	period  sim.Time
	next    sim.Time
	started bool
	samples []Sample
	winFill []int64 // traffic since the last sample
	winWB   []int64
	onEmit  func(Sample)
}

// DefaultSamplePeriod spaces MBM samples 100 µs of simulated time
// apart — a few hundred samples for the harness's scaled-down runs.
const DefaultSamplePeriod = 100 * sim.Microsecond

// NewMonitor builds a monitor for a table (nil = single default
// class). period <= 0 selects DefaultSamplePeriod.
func NewMonitor(t *Table, period sim.Time) *Monitor {
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	names := t.Names()
	m := &Monitor{
		stats:   make([]ClassStats, len(names)),
		period:  period,
		winFill: make([]int64, len(names)),
		winWB:   make([]int64, len(names)),
	}
	for i, n := range names {
		m.stats[i] = ClassStats{Class: ClassID(i), Name: n}
	}
	return m
}

// clamp folds out-of-range class IDs onto the default class, so a
// stray tag can never index out of bounds.
func (m *Monitor) clamp(c ClassID) int {
	if int(c) >= len(m.stats) {
		return 0
	}
	return int(c)
}

// OnHit records a page-granular hit for the class.
func (m *Monitor) OnHit(c ClassID) {
	i := m.clamp(c)
	m.stats[i].Accesses++
	m.stats[i].Hits++
}

// OnMiss records a page-granular miss.
func (m *Monitor) OnMiss(c ClassID) {
	i := m.clamp(c)
	m.stats[i].Accesses++
	m.stats[i].Misses++
}

// OnFill charges fill traffic (archive→NVDIMM) to the class.
func (m *Monitor) OnFill(c ClassID, bytes int64) {
	i := m.clamp(c)
	m.stats[i].FillBytes += bytes
	m.winFill[i] += bytes
}

// OnWriteback charges dirty-victim writeback traffic to the class
// that triggered the eviction.
func (m *Monitor) OnWriteback(c ClassID, bytes int64) {
	i := m.clamp(c)
	m.stats[i].WBBytes += bytes
	m.winWB[i] += bytes
}

// OnThrottle records an MBA-injected stall.
func (m *Monitor) OnThrottle(c ClassID, d sim.Time) {
	m.stats[m.clamp(c)].ThrottleNS += d
}

// Install moves tag-array ownership of one entry to class c. prev is
// the previous owner, meaningful only when prevValid (the slot held a
// valid entry before the install).
func (m *Monitor) Install(c ClassID, prev ClassID, prevValid bool) {
	if prevValid {
		m.stats[m.clamp(prev)].Occupancy--
	}
	i := m.clamp(c)
	m.stats[i].Occupancy++
	if m.stats[i].Occupancy > m.stats[i].OccupancyPeak {
		m.stats[i].OccupancyPeak = m.stats[i].Occupancy
	}
}

// Tick advances the sampler to simulated time now, emitting any due
// samples. Sampling is driven purely by sim time, so two identical
// runs produce identical sample streams.
func (m *Monitor) Tick(now sim.Time) {
	if !m.started {
		m.started = true
		m.next = now + m.period
		return
	}
	for now >= m.next {
		s := Sample{
			At:        m.next,
			Occupancy: make([]int64, len(m.stats)),
			FillBytes: make([]int64, len(m.stats)),
			WBBytes:   make([]int64, len(m.stats)),
		}
		for i := range m.stats {
			s.Occupancy[i] = m.stats[i].Occupancy
			s.FillBytes[i] = m.winFill[i]
			s.WBBytes[i] = m.winWB[i]
			m.winFill[i] = 0
			m.winWB[i] = 0
		}
		m.samples = append(m.samples, s)
		if m.onEmit != nil {
			m.onEmit(s)
		}
		m.next += m.period
		if len(m.samples) >= maxSamples {
			m.compact()
		}
	}
}

// OnEmit registers a callback invoked synchronously for every freshly
// emitted sample, before any history compaction — the hook the SLO
// feedback controller rides: it sees each window exactly once, at its
// native period, on the same single-threaded timeline that produced
// it. Only one callback is supported; nil unregisters.
func (m *Monitor) OnEmit(fn func(Sample)) { m.onEmit = fn }

// compact halves the sample history and doubles the period, merging
// each dropped sample's window traffic into its survivor.
func (m *Monitor) compact() {
	kept := m.samples[:0]
	for i := 0; i < len(m.samples); i += 2 {
		s := m.samples[i]
		if i+1 < len(m.samples) {
			nxt := m.samples[i+1]
			s.At = nxt.At
			s.Occupancy = nxt.Occupancy
			for j := range s.FillBytes {
				s.FillBytes[j] += nxt.FillBytes[j]
				s.WBBytes[j] += nxt.WBBytes[j]
			}
		}
		kept = append(kept, s)
	}
	m.samples = kept
	m.period *= 2
	m.next = m.samples[len(m.samples)-1].At + m.period
}

// Stats returns a copy of the per-class counters.
func (m *Monitor) Stats() []ClassStats {
	out := make([]ClassStats, len(m.stats))
	copy(out, m.stats)
	return out
}

// Samples returns the sample history (shared backing array; callers
// must not mutate).
func (m *Monitor) Samples() []Sample { return m.samples }

// Period returns the current sample period (it grows when the history
// compacts).
func (m *Monitor) Period() sim.Time { return m.period }
