package qos

import (
	"math"
	"strings"
	"testing"

	"hams/internal/sim"
)

// controllerTable is the two-class victim/aggressor shape every
// controller test actuates on: victim "svc" holds 3 of 4 ways, the
// streamer 1, uncapped.
func controllerTable() *Table {
	return &Table{Classes: []Class{
		{Name: "svc", WayMask: 0xe},
		{Name: "stream", WayMask: 0x1},
	}}
}

func TestNewControllerValidation(t *testing.T) {
	tb := controllerTable()
	good := SLO{Class: "svc", TargetP99: 1000}
	if _, err := NewController(good, tb, 4); err != nil {
		t.Fatalf("valid SLO rejected: %v", err)
	}
	bad := []SLO{
		{TargetP99: 1000},                // no class
		{Class: "nope", TargetP99: 1000}, // unknown class
		{Class: "svc"},                   // no target
		{Class: "svc", TargetP99: -5},    // negative target
		{Class: "svc", TargetP99: 1000, MinMBps: 100, MaxMBps: 50}, // ceiling < floor
		{Class: "svc", TargetP99: 1000, MinWays: 4},                // no ways left for the victim
	}
	for i, s := range bad {
		if _, err := NewController(s, tb, 4); err == nil {
			t.Errorf("bad SLO %d accepted: %+v", i, s)
		}
	}
	one := &Table{Classes: []Class{{Name: "svc"}}}
	if _, err := NewController(good, one, 4); err == nil {
		t.Fatal("one-class table accepted: nothing to actuate on")
	}
}

// feed pushes n identical victim latencies into the window.
func feed(c *Controller, lat sim.Time, n int) {
	for i := 0; i < n; i++ {
		c.Observe(0, lat)
	}
}

func TestControllerP99(t *testing.T) {
	c, err := NewController(SLO{Class: "svc", TargetP99: 1000, Window: 100}, controllerTable(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Below minObservations the estimate is withheld.
	feed(c, 500, minObservations-1)
	if got := c.P99(); got != 0 {
		t.Fatalf("p99 before min observations = %d, want 0", got)
	}
	c.Observe(0, 500)
	if got := c.P99(); got != 500 {
		t.Fatalf("uniform p99 = %d, want 500", got)
	}
	// Non-victim observations are filtered out.
	feed2 := func() { c.Observe(1, 1e9) }
	for i := 0; i < 200; i++ {
		feed2()
	}
	if got := c.P99(); got != 500 {
		t.Fatalf("aggressor latencies leaked into the victim window: p99 = %d", got)
	}
	// Nearest-rank p99 over 100 samples is the 99th smallest: one
	// outlier stays under the rank, two land on it.
	feed(c, 500, 99)
	c.Observe(0, 9000)
	if got := c.P99(); got != 500 {
		t.Fatalf("p99 with one outlier in 100 = %d, want 500", got)
	}
	c.Observe(0, 9000)
	if got := c.P99(); got != 9000 {
		t.Fatalf("p99 with two outliers in 100 = %d, want 9000", got)
	}
}

// TestControllerAIMD pins the multiplicative-decrease /
// additive-increase trajectory: cap seeding from measured bandwidth,
// halving on violation, way halving on gross violation, and AddMBps
// recovery after Hold compliant samples.
func TestControllerAIMD(t *testing.T) {
	slo := SLO{Class: "svc", TargetP99: 1000, Window: 64,
		MinMBps: 10, MaxMBps: 4000, AddMBps: 100, Hold: 2}
	c, err := NewController(slo, controllerTable(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// One sample window: the aggressor moved 200 bytes in 1µs = 200 MB/s.
	s := Sample{FillBytes: []int64{0, 150}, WBBytes: []int64{0, 50}}
	period := sim.Time(1000)

	// Mild violation (target < p99 <= 2×target): cap seeds from half the
	// measured bandwidth, ways stay. period.Seconds() rounds in binary,
	// so the MB/s checks carry a tolerance.
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-6 }
	feed(c, 1500, 64)
	acts := c.OnSample(s, period)
	if len(acts) != 1 || acts[0].Class != 1 || !approx(acts[0].MBps, 100) || acts[0].Mask != 0x1 {
		t.Fatalf("seed actions = %+v, want stream capped at 100 MB/s", acts)
	}
	if ways, cap := c.State(); ways != 1 || !approx(cap, 100) {
		t.Fatalf("state = %d ways, %.0f MB/s", ways, cap)
	}

	// Second violation halves the existing cap.
	if acts = c.OnSample(s, period); len(acts) != 1 || !approx(acts[0].MBps, 50) {
		t.Fatalf("halved actions = %+v, want 50 MB/s", acts)
	}

	// Repeated halving clamps at MinMBps, then stops emitting (no change).
	c.OnSample(s, period) // 25
	c.OnSample(s, period) // 12.5
	c.OnSample(s, period) // 10 (floor)
	if acts = c.OnSample(s, period); len(acts) != 0 {
		t.Fatalf("cap at floor still emitted %+v", acts)
	}
	if _, cap := c.State(); cap != 10 {
		t.Fatalf("cap = %.0f, want the 10 MB/s floor", cap)
	}

	// Compliance: the first compliant sample holds, the second adds
	// AddMBps back.
	feed(c, 500, 64)
	if acts = c.OnSample(s, period); len(acts) != 0 {
		t.Fatalf("first compliant sample acted: %+v", acts)
	}
	if acts = c.OnSample(s, period); len(acts) != 1 || acts[0].MBps != 110 {
		t.Fatalf("additive increase = %+v, want 110 MB/s", acts)
	}
}

// TestControllerGrossViolation pins the way-halving path and the
// victim-mask complement emitted alongside it.
func TestControllerGrossViolation(t *testing.T) {
	tb := &Table{Classes: []Class{
		{Name: "svc", WayMask: 0xf0},
		{Name: "stream", WayMask: 0x0f, MBps: 800},
	}}
	c, err := NewController(SLO{Class: "svc", TargetP99: 1000, Window: 64, MinMBps: 10}, tb, 8)
	if err != nil {
		t.Fatal(err)
	}
	feed(c, 5000, 64) // p99 = 5×target: gross
	acts := c.OnSample(Sample{}, 1000)
	// Aggressor drops 4→2 ways and halves its cap; the victim picks up
	// the complement.
	want := map[ClassID]Action{
		1: {Class: 1, Mask: 0x3, MBps: 400},
		0: {Class: 0, Mask: 0xfc, MBps: 0},
	}
	if len(acts) != 2 {
		t.Fatalf("actions = %+v", acts)
	}
	for _, a := range acts {
		if a != want[a.Class] {
			t.Fatalf("action %+v, want %+v", a, want[a.Class])
		}
	}
	// Way floor: repeated gross violations never starve below MinWays.
	for i := 0; i < 10; i++ {
		c.OnSample(Sample{}, 1000)
	}
	if ways, _ := c.State(); ways != 1 {
		t.Fatalf("ways = %d, want the MinWays floor 1", ways)
	}
}

func TestThrottleSetRateKeepsDebt(t *testing.T) {
	tb := &Table{Classes: []Class{{Name: "s", MBps: 1000}}} // 1 byte/ns
	th := NewThrottle(tb)
	// Accrue 1000ns of debt: 1000 bytes at 1 byte/ns from t=0.
	th.Admit(0, 0, 1000)
	if nf := th.NextFree(0); nf != 1000 {
		t.Fatalf("nextFree = %d, want 1000", nf)
	}
	// Halving the rate re-bases the slope but never forgives the debt.
	th.SetRate(0, 500)
	if nf := th.NextFree(0); nf != 1000 {
		t.Fatalf("SetRate forgave debt: nextFree = %d, want 1000", nf)
	}
	if got := th.RateMBps(0); got != 500 {
		t.Fatalf("RateMBps = %g", got)
	}
	// The next transfer pays the old debt and drains at the new rate:
	// admitted at 1000, 500 bytes at 2 ns/byte → nextFree 2000.
	if got := th.Admit(0, 10, 500); got != 1000 {
		t.Fatalf("Admit after SetRate = %d, want 1000", got)
	}
	if nf := th.NextFree(0); nf != 2000 {
		t.Fatalf("nextFree after re-based drain = %d, want 2000", nf)
	}
	// Lifting the throttle (0 MB/s) stops delaying but the accrued
	// window stays behind us.
	th.SetRate(0, 0)
	if got := th.Admit(0, 3000, 1<<20); got != 3000 {
		t.Fatalf("unthrottled Admit = %d", got)
	}
}

func TestTableCloneAndSet(t *testing.T) {
	orig := controllerTable()
	cl := orig.Clone()
	if err := cl.Set(1, 0x3, 250); err != nil {
		t.Fatal(err)
	}
	if cl.Classes[1].WayMask != 0x3 || cl.Classes[1].MBps != 250 {
		t.Fatalf("Set lost: %+v", cl.Classes[1])
	}
	if orig.Classes[1].WayMask != 0x1 || orig.Classes[1].MBps != 0 {
		t.Fatalf("Set leaked into the original table: %+v", orig.Classes[1])
	}
	if err := cl.Set(5, 0, 0); err == nil {
		t.Fatal("out-of-range class accepted")
	}
	if err := cl.Set(0, 0, -1); err == nil {
		t.Fatal("negative MBps accepted")
	}
	var nilTable *Table
	if nilTable.Clone() != nil {
		t.Fatal("nil Clone must stay nil")
	}
}

func TestParseSchedule(t *testing.T) {
	got, err := ParseSchedule("2ms:svc:0x3:100, 4ms:svc:full:0")
	if err != nil {
		t.Fatal(err)
	}
	want := []ScheduleEntry{
		{At: 2 * sim.Millisecond, Class: "svc", Mask: 0x3, MBps: 100},
		{At: 4 * sim.Millisecond, Class: "svc", Mask: 0, MBps: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("entries = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got, err := ParseSchedule(""); err != nil || got != nil {
		t.Fatalf("empty schedule = %+v, %v", got, err)
	}
	for _, in := range []string{
		"2ms:svc:0x3",        // missing field
		"2ms:svc:0x3:100:x",  // extra field
		"nope:svc:0x3:100",   // bad duration
		"2ms:svc:zz:100",     // bad mask
		"2ms:svc:0x3:banana", // bad MBps
	} {
		if _, err := ParseSchedule(in); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", in)
		}
	}
}

func TestValidateSchedule(t *testing.T) {
	ok := []TimedChange{{At: 100, Class: 1, Mask: 0x3}, {At: 100, Class: 0}, {At: 200, Class: 1, MBps: 50}}
	if err := ValidateSchedule(ok, 2, 4); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	cases := []struct {
		name    string
		changes []TimedChange
		wantSub string
	}{
		{"t=0", []TimedChange{{At: 0, Class: 0}}, "strictly after t=0"},
		{"negative", []TimedChange{{At: -5, Class: 0}}, "strictly after t=0"},
		{"decreasing", []TimedChange{{At: 200, Class: 0}, {At: 100, Class: 0}}, "nondecreasing"},
		{"class", []TimedChange{{At: 100, Class: 7}}, "class"},
		{"mask", []TimedChange{{At: 100, Class: 0, Mask: 0x10}}, "mask"},
		{"mbps", []TimedChange{{At: 100, Class: 0, MBps: -1}}, "MB/s"},
	}
	for _, c := range cases {
		err := ValidateSchedule(c.changes, 2, 4)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}
