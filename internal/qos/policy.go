package qos

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"hams/internal/sim"
)

// TimedChange is one scheduled runtime CLOS reprogramming with the
// class resolved to its ID — the form the MoS controller consumes. At
// simulated time At, class Class's way mask becomes Mask (0 = full)
// and its archive cap MBps (0 = unthrottled); both are rewritten
// together, like reprogramming the class's CAT/MBA MSR pair.
type TimedChange struct {
	At    sim.Time
	Class ClassID
	Mask  uint64
	MBps  float64
}

// ValidateSchedule checks a resolved policy timeline against a table
// of n classes on a ways-associative array. Every change must be
// strictly in the future (At > 0 — the t=0 state belongs in the
// initial table, so a zero or past time is a configuration error, not
// a change to apply late), nondecreasing in time, address a class the
// table defines, select no ways beyond the array, and carry a
// non-negative cap.
func ValidateSchedule(changes []TimedChange, n, ways int) error {
	full := FullMask(ways)
	var prev sim.Time
	for i, ch := range changes {
		if ch.At <= 0 {
			return fmt.Errorf("qos: policy[%d]: change scheduled at %v; changes must be strictly after t=0 (the initial table is the t=0 state)", i, ch.At)
		}
		if ch.At < prev {
			return fmt.Errorf("qos: policy[%d]: change at %v is before the previous change at %v (schedule must be nondecreasing)", i, ch.At, prev)
		}
		prev = ch.At
		if int(ch.Class) >= n {
			return fmt.Errorf("qos: policy[%d]: class %d out of range (table has %d)", i, ch.Class, n)
		}
		if ch.Mask&^full != 0 {
			return fmt.Errorf("qos: policy[%d]: mask %#x selects ways beyond the %d-way array", i, ch.Mask, ways)
		}
		if ch.MBps < 0 {
			return fmt.Errorf("qos: policy[%d]: negative throttle %.1f MB/s", i, ch.MBps)
		}
	}
	return nil
}

// ScheduleEntry is the name-keyed wire/CLI form of one scheduled
// change; the replay engine resolves Class against the scenario's
// table into a TimedChange.
type ScheduleEntry struct {
	At    sim.Time
	Class string
	Mask  uint64
	MBps  float64
}

// ParseSchedule parses the CLI policy-timeline syntax: comma-separated
// "at:class:mask:mbps" entries, e.g.
//
//	2ms:stream:0x03:100,4ms:stream:full:0
//
// at is a Go duration ("500us", "2ms"); mask uses ParseMask syntax
// (empty or "full" = all ways); mbps is the MBA cap in MB/s (empty or
// 0 = unthrottled). The empty string is an empty schedule. Ordering
// and class names are validated later against the table
// (ValidateSchedule), not here.
func ParseSchedule(s string) ([]ScheduleEntry, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []ScheduleEntry
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(part, ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("qos: malformed policy change %q (want at:class:mask:mbps, e.g. 2ms:stream:0x03:100)", part)
		}
		d, err := time.ParseDuration(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("qos: policy change %q: bad time %q (want a duration like 2ms)", part, fields[0])
		}
		cls := strings.TrimSpace(fields[1])
		if cls == "" {
			return nil, fmt.Errorf("qos: policy change %q: empty class name", part)
		}
		mask, err := ParseMask(fields[2])
		if err != nil {
			return nil, fmt.Errorf("qos: policy change %q: %v", part, err)
		}
		mbps := 0.0
		if v := strings.TrimSpace(fields[3]); v != "" {
			mbps, err = strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("qos: policy change %q: bad MB/s value %q", part, fields[3])
			}
		}
		out = append(out, ScheduleEntry{At: sim.Time(d.Nanoseconds()), Class: cls, Mask: mask, MBps: mbps})
	}
	return out, nil
}
