package qos

import (
	"fmt"
	"math/bits"
	"sort"

	"hams/internal/sim"
)

// SLO is the objective a feedback Controller holds: keep one class's
// (the victim's) rolling p99 latency at or under a target while
// letting every other class (the aggressor group) draw as much archive
// bandwidth as the target tolerates. The remaining fields bound the
// controller's actuation range; zero values select the defaults noted
// on each field.
type SLO struct {
	// Class names the victim whose latency the controller defends.
	Class string
	// TargetP99 is the rolling-p99 objective (required, > 0).
	TargetP99 sim.Time
	// Window is the victim-latency ring size the p99 is computed over
	// (default 512 observations).
	Window int
	// MinMBps / MaxMBps bound the aggressor-group bandwidth cap the
	// controller may program (defaults 8 and 1e6 MB/s). AddMBps is the
	// additive-increase step applied after Hold compliant samples
	// (default 64 MB/s).
	MinMBps, MaxMBps, AddMBps float64
	// MinWays is the floor on the aggressor group's way allocation
	// (default 1 — the group is never starved of the tag array).
	MinWays int
	// Hold is how many consecutive compliant samples must pass before
	// the controller relaxes the cap (default 2).
	Hold int
}

// Action is one class reprogramming the controller requests: set
// Class's way mask to Mask (0 = full, the Table convention) and its
// bandwidth cap to MBps (0 = unthrottled).
type Action struct {
	Class ClassID
	Mask  uint64
	MBps  float64
}

// minObservations is how many victim latencies must accumulate before
// the p99 estimate is trusted; earlier samples leave the policy alone.
const minObservations = 32

// Controller is the AIMD feedback loop of ROADMAP's dynamic-QoS item:
// it watches the victim's rolling p99 (fed by Observe from the same
// single-threaded completion stream the histograms consume) and each
// MBM sample (OnSample, driven off the monitor's sim-time ticker), and
// answers with CLOS reprogrammings — multiplicative decrease of the
// aggressor group's ways/cap on violation, additive increase of the
// cap after sustained compliance. Every input is a pure function of
// simulated time, so a replayed run reproduces the controller's
// trajectory — and therefore the simulation — bit-for-bit.
type Controller struct {
	slo    SLO
	victim ClassID
	nclass int
	ways   int

	// rolling victim-latency window
	lat     []sim.Time
	scratch []sim.Time
	idx     int
	count   int

	// desired aggressor-group state vs what was last emitted
	aggrWays int
	aggrCap  float64 // 0 = unthrottled
	curWays  int
	curCap   float64

	holds int
}

// NewController builds the feedback controller for a scenario's table
// on a ways-associative array. The table needs the victim class plus
// at least one other class to actuate on; the table itself is not
// retained — the controller only resolves names and initial state
// from it.
func NewController(slo SLO, t *Table, ways int) (*Controller, error) {
	if slo.Class == "" {
		return nil, fmt.Errorf("qos: SLO needs a victim class name")
	}
	victim, ok := t.ByName(slo.Class)
	if !ok {
		return nil, fmt.Errorf("qos: SLO class %q not in the table (have %v)", slo.Class, t.Names())
	}
	if t.Len() < 2 {
		return nil, fmt.Errorf("qos: SLO controller needs at least one non-victim class to actuate on")
	}
	if slo.TargetP99 <= 0 {
		return nil, fmt.Errorf("qos: SLO needs a positive p99 target (got %v)", slo.TargetP99)
	}
	if slo.Window <= 0 {
		slo.Window = 512
	}
	if slo.MinMBps <= 0 {
		slo.MinMBps = 8
	}
	if slo.MaxMBps <= 0 {
		slo.MaxMBps = 1e6
	}
	if slo.MaxMBps < slo.MinMBps {
		return nil, fmt.Errorf("qos: SLO cap ceiling %.1f MB/s below floor %.1f", slo.MaxMBps, slo.MinMBps)
	}
	if slo.AddMBps <= 0 {
		slo.AddMBps = 64
	}
	if slo.MinWays <= 0 {
		slo.MinWays = 1
	}
	if ways > 0 && slo.MinWays >= ways {
		return nil, fmt.Errorf("qos: SLO aggressor way floor %d leaves no ways for the victim on a %d-way array", slo.MinWays, ways)
	}
	if slo.Hold <= 0 {
		slo.Hold = 2
	}

	c := &Controller{
		slo:     slo,
		victim:  victim,
		nclass:  t.Len(),
		ways:    ways,
		lat:     make([]sim.Time, slo.Window),
		scratch: make([]sim.Time, 0, slo.Window),
	}

	// Initial aggressor-group state comes from the first non-victim
	// class; the controller programs the whole group uniformly from
	// here on, so a table whose aggressors start heterogeneous
	// converges to uniform at the first reprogramming.
	masks := t.Masks(ways)
	for i := range t.Classes {
		if ClassID(i) == victim {
			continue
		}
		c.aggrWays = bits.OnesCount64(masks[i])
		c.aggrCap = t.Classes[i].MBps
		break
	}
	c.curWays, c.curCap = c.aggrWays, c.aggrCap
	return c, nil
}

// Observe feeds one completed-request latency into the rolling window.
// Only the victim class is recorded; call it for every completion and
// the controller filters.
func (c *Controller) Observe(cls ClassID, lat sim.Time) {
	if cls != c.victim {
		return
	}
	c.lat[c.idx] = lat
	c.idx = (c.idx + 1) % len(c.lat)
	if c.count < len(c.lat) {
		c.count++
	}
}

// P99 returns the rolling p99 (nearest-rank) over the current window,
// or 0 while fewer than minObservations latencies have arrived.
func (c *Controller) P99() sim.Time {
	if c.count < minObservations {
		return 0
	}
	c.scratch = append(c.scratch[:0], c.lat[:c.count]...)
	sort.Slice(c.scratch, func(i, j int) bool { return c.scratch[i] < c.scratch[j] })
	rank := (99*c.count + 99) / 100 // ceil(0.99·n), nearest-rank
	if rank > c.count {
		rank = c.count
	}
	return c.scratch[rank-1]
}

// OnSample runs one control step against a fresh MBM sample covering
// `period` of simulated time, and returns the reprogrammings to apply
// (empty when the policy should stand). AIMD:
//
//   - violation (p99 > target): halve the aggressor cap, seeding an
//     uncapped group from its measured bandwidth in this window; a
//     gross violation (p99 > 2×target) additionally halves the
//     group's way allocation down to the MinWays floor.
//   - compliance for Hold consecutive samples: add AddMBps back onto
//     the cap, up to MaxMBps.
//
// The victim's mask is always the complement of the aggressor mask
// (or full when the group holds every way); its cap is never touched.
func (c *Controller) OnSample(s Sample, period sim.Time) []Action {
	p99 := c.P99()
	if p99 == 0 {
		return nil
	}
	if p99 > c.slo.TargetP99 {
		c.holds = 0
		if p99 > 2*c.slo.TargetP99 && c.aggrWays > c.slo.MinWays {
			c.aggrWays /= 2
			if c.aggrWays < c.slo.MinWays {
				c.aggrWays = c.slo.MinWays
			}
		}
		if c.aggrCap == 0 {
			c.aggrCap = clampCap(c.aggrBandwidth(s, period)/2, c.slo)
		} else {
			c.aggrCap = clampCap(c.aggrCap/2, c.slo)
		}
	} else {
		c.holds++
		if c.holds >= c.slo.Hold {
			c.holds = 0
			if c.aggrCap > 0 {
				c.aggrCap = clampCap(c.aggrCap+c.slo.AddMBps, c.slo)
			}
		}
	}
	return c.emit()
}

// aggrBandwidth is the aggressor group's archive bandwidth (fill +
// writeback) over one sample window, in MB/s.
func (c *Controller) aggrBandwidth(s Sample, period sim.Time) float64 {
	if period <= 0 {
		return 0
	}
	var bytes int64
	for i := 0; i < len(s.FillBytes) && i < c.nclass; i++ {
		if ClassID(i) == c.victim {
			continue
		}
		bytes += s.FillBytes[i] + s.WBBytes[i]
	}
	return float64(bytes) / 1e6 / period.Seconds()
}

func clampCap(v float64, slo SLO) float64 {
	if v < slo.MinMBps {
		return slo.MinMBps
	}
	if v > slo.MaxMBps {
		return slo.MaxMBps
	}
	return v
}

// emit diffs the desired aggressor-group state against what was last
// programmed and renders the delta as Actions.
func (c *Controller) emit() []Action {
	if c.aggrWays == c.curWays && c.aggrCap == c.curCap {
		return nil
	}
	waysChanged := c.aggrWays != c.curWays
	c.curWays, c.curCap = c.aggrWays, c.aggrCap

	aggrMask := FullMask(c.aggrWays)
	if c.aggrWays >= c.ways {
		aggrMask = 0 // full
	}
	var out []Action
	for i := 0; i < c.nclass; i++ {
		if ClassID(i) == c.victim {
			continue
		}
		out = append(out, Action{Class: ClassID(i), Mask: aggrMask, MBps: c.aggrCap})
	}
	if waysChanged {
		victimMask := uint64(0)
		if c.aggrWays < c.ways {
			victimMask = FullMask(c.ways) &^ FullMask(c.aggrWays)
		}
		out = append(out, Action{Class: c.victim, Mask: victimMask, MBps: 0})
	}
	return out
}

// State reports the controller's current aggressor-group programming
// (ways, cap) — surfaced in autoqos cell extras.
func (c *Controller) State() (ways int, capMBps float64) { return c.curWays, c.curCap }
