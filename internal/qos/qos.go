// Package qos is the simulator-side analogue of Intel RDT: it gives
// the multi-tenant scenario engine an isolation-policy layer over the
// shared MoS controller. A Class (CLOS) carries a tag-array way mask
// applied at replacement time — evictions for a class are confined to
// its permitted ways, overlapping masks are allowed, and a full mask
// reproduces the unpartitioned controller bit-for-bit — plus an
// MBA-style archive-bandwidth throttle injected at the bank router,
// and MBM-style monitoring (per-class tag-array occupancy and
// fill/writeback bandwidth sampled on simulated time).
//
// The package is pure policy: it owns no timing of its own beyond the
// throttle's delay injection, so a table whose every class has a full
// way mask and no throttle is guaranteed to leave the controller's
// simulated output unchanged.
package qos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ClassID indexes a class of service (CLOS). Requests are tagged with
// their class in mem.Access.Class; ID 0 is the default class every
// untagged request belongs to.
type ClassID = uint8

// MaxClasses bounds the table size (Intel CAT exposes 4-16 CLOS;
// the per-request tag is a uint8, so 256 is the hard ceiling).
const MaxClasses = 16

// FullMask selects every way of a ways-associative tag array — the
// "no partitioning" mask.
func FullMask(ways int) uint64 {
	if ways <= 0 {
		ways = 1
	}
	if ways >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(ways)) - 1
}

// Class is one class of service.
type Class struct {
	// Name labels the class in tables, CLI assignments and artifacts.
	Name string
	// WayMask is the CAT capacity bit-mask: bit w set = the class may
	// install into (and therefore evict from) way w of every set.
	// Zero means the full mask (no partitioning). Unlike hardware CAT
	// the mask need not be contiguous.
	WayMask uint64
	// MBps is the MBA-style throttle: the maximum archive bandwidth
	// (fill + writeback traffic, in 1e6 bytes per simulated second)
	// the class may draw through the bank router. Zero = unthrottled.
	MBps float64
}

// Throttled reports whether the class has a bandwidth limit.
func (c Class) Throttled() bool { return c.MBps > 0 }

// Partitioned reports whether the class has a restrictive way mask
// for the given associativity.
func (c Class) Partitioned(ways int) bool {
	return c.WayMask != 0 && c.WayMask&FullMask(ways) != FullMask(ways)
}

// Table is the CLOS table of one controller: Classes[id] defines class
// id. The zero-value table (no classes) behaves as a single default
// full-mask, unthrottled class.
type Table struct {
	Classes []Class
}

// DefaultTable returns a table holding only the default class.
func DefaultTable() *Table {
	return &Table{Classes: []Class{{Name: "default"}}}
}

// Len returns the class count (at least 1: the implicit default).
func (t *Table) Len() int {
	if t == nil || len(t.Classes) == 0 {
		return 1
	}
	return len(t.Classes)
}

// Add appends a class and returns its ID.
func (t *Table) Add(c Class) (ClassID, error) {
	if len(t.Classes) >= MaxClasses {
		return 0, fmt.Errorf("qos: class table full (%d classes)", MaxClasses)
	}
	if c.Name == "" {
		return 0, fmt.Errorf("qos: class needs a name")
	}
	if _, ok := t.ByName(c.Name); ok {
		return 0, fmt.Errorf("qos: duplicate class %q", c.Name)
	}
	t.Classes = append(t.Classes, c)
	return ClassID(len(t.Classes) - 1), nil
}

// Clone returns a deep copy of the table (nil clones to nil). The MoS
// controller clones the table it was configured with before applying
// any runtime mutation, so a policy timeline or feedback controller
// can never leak reprogrammed masks back into the caller's Scenario —
// which the live-vs-replay contract requires to be reusable with its
// initial classes intact.
func (t *Table) Clone() *Table {
	if t == nil {
		return nil
	}
	out := &Table{Classes: make([]Class, len(t.Classes))}
	copy(out.Classes, t.Classes)
	return out
}

// Set reprograms class id's way mask and bandwidth cap in place — the
// runtime-mutation entry point behind scheduled PolicyChanges and the
// feedback controller. The mask keeps the Table convention (0 = full);
// it is not validated against an associativity here — the controller
// applying the change owns that check (core.Controller.Reprogram).
func (t *Table) Set(id ClassID, mask uint64, mbps float64) error {
	if t == nil || int(id) >= len(t.Classes) {
		return fmt.Errorf("qos: class %d out of range", id)
	}
	if mbps < 0 {
		return fmt.Errorf("qos: class %q: negative throttle %.1f MB/s", t.Classes[id].Name, mbps)
	}
	t.Classes[id].WayMask = mask
	t.Classes[id].MBps = mbps
	return nil
}

// ByName resolves a class name to its ID.
func (t *Table) ByName(name string) (ClassID, bool) {
	if t == nil {
		return 0, false
	}
	for i, c := range t.Classes {
		if c.Name == name {
			return ClassID(i), true
		}
	}
	return 0, false
}

// Validate checks the table against a tag array of the given
// associativity: every class needs a unique non-empty name, a way mask
// that selects at least one way in [0, ways), and a non-negative
// throttle. Bits above the associativity are rejected rather than
// silently ignored — a mask like 0xf0 on a 4-way array would
// otherwise grant zero ways.
func (t *Table) Validate(ways int) error {
	if t == nil {
		return nil
	}
	if len(t.Classes) == 0 {
		return fmt.Errorf("qos: empty class table (drop the table instead)")
	}
	if len(t.Classes) > MaxClasses {
		return fmt.Errorf("qos: %d classes exceed the %d-CLOS limit", len(t.Classes), MaxClasses)
	}
	full := FullMask(ways)
	seen := make(map[string]bool, len(t.Classes))
	for i, c := range t.Classes {
		if c.Name == "" {
			return fmt.Errorf("qos: class %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("qos: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		if c.WayMask&^full != 0 {
			return fmt.Errorf("qos: class %q mask %#x selects ways beyond the %d-way array", c.Name, c.WayMask, ways)
		}
		if c.MBps < 0 {
			return fmt.Errorf("qos: class %q has negative throttle %.1f MB/s", c.Name, c.MBps)
		}
	}
	return nil
}

// Masks resolves the table into one effective way mask per class
// (zero masks become the full mask). A nil table resolves to a single
// default class.
func (t *Table) Masks(ways int) []uint64 {
	full := FullMask(ways)
	if t == nil || len(t.Classes) == 0 {
		return []uint64{full}
	}
	out := make([]uint64, len(t.Classes))
	for i, c := range t.Classes {
		if c.WayMask == 0 {
			out[i] = full
		} else {
			out[i] = c.WayMask & full
		}
	}
	return out
}

// Names returns the class names in ID order (a nil table reports the
// implicit default).
func (t *Table) Names() []string {
	if t == nil || len(t.Classes) == 0 {
		return []string{"default"}
	}
	out := make([]string, len(t.Classes))
	for i, c := range t.Classes {
		out[i] = c.Name
	}
	return out
}

// ParseMask parses a CAT-style capacity mask: hex with or without a
// 0x prefix ("0xf0", "f0"), or binary with a 0b prefix ("0b1010").
// The empty string and "full" mean the full mask (returned as 0, the
// Table convention for "no partitioning").
func ParseMask(s string) (uint64, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "full":
		return 0, nil
	}
	in := strings.TrimSpace(s)
	base := 16
	switch {
	case strings.HasPrefix(in, "0x"), strings.HasPrefix(in, "0X"):
		in, base = in[2:], 16
	case strings.HasPrefix(in, "0b"), strings.HasPrefix(in, "0B"):
		in, base = in[2:], 2
	}
	v, err := strconv.ParseUint(in, base, 64)
	if err != nil {
		return 0, fmt.Errorf("qos: malformed way mask %q (want hex like 0xf0 or binary like 0b1010)", s)
	}
	if v == 0 {
		return 0, fmt.Errorf("qos: way mask %q selects no ways", s)
	}
	return v, nil
}

// FormatMask renders a mask the way ParseMask reads it.
func FormatMask(m uint64) string {
	if m == 0 {
		return "full"
	}
	return fmt.Sprintf("%#x", m)
}

// ParseAssignments parses a CLI assignment list "name=value,name=value"
// (e.g. -qos-masks "latency=0xf0,stream=0x0f") into a name→value map,
// rejecting empty names, repeated names and malformed pairs. The
// value strings are returned verbatim for the caller to parse.
func ParseAssignments(s string) (map[string]string, error) {
	out := make(map[string]string)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(pair, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("qos: malformed assignment %q (want name=value)", pair)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("qos: repeated assignment for %q", name)
		}
		out[name] = strings.TrimSpace(val)
	}
	return out, nil
}

// AssignmentNames returns the map's keys sorted, for deterministic
// error messages and rendering.
func AssignmentNames(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
