// Package workload generates the paper's 12 evaluation workloads
// (Table III): the mmap microbenchmark (seqRd/rndRd/seqWr/rndWr,
// page-granular), the SQLite benchmark (seqSel/rndSel/seqIns/rndIns/
// update, fine-grained 8–100 B accesses over a B-tree-shaped address
// model), and three Rodinia kernels (BFS, KMN, NN). Each workload
// reproduces the instruction counts, load/store ratios, thread counts
// and dataset sizes of Table III; the harness scales instruction
// counts down (documented in EXPERIMENTS.md) since absolute run length
// does not affect the reported ratios.
package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"hams/internal/cpu"
	"hams/internal/mem"
)

// Kind groups workloads by suite.
type Kind int

const (
	Micro Kind = iota
	SQLite
	Rodinia
)

func (k Kind) String() string {
	switch k {
	case Micro:
		return "micro"
	case SQLite:
		return "sqlite"
	default:
		return "rodinia"
	}
}

// Spec describes one workload with its Table III characteristics.
type Spec struct {
	Name         string
	Kind         Kind
	Threads      int
	Instructions int64   // paper instruction count
	LoadRatio    float64 // fraction of instructions that are loads
	StoreRatio   float64 // fraction that are stores
	DatasetBytes uint64
	Sequential   bool
	WriteHeavy   bool
}

// All returns the 12 workloads of Table III.
func All() []Spec {
	const g = 1_000_000_000
	return []Spec{
		{Name: "seqRd", Kind: Micro, Threads: 1, Instructions: 67 * g, LoadRatio: 0.28, StoreRatio: 0.43, DatasetBytes: 16 * mem.GiB, Sequential: true},
		{Name: "rndRd", Kind: Micro, Threads: 4, Instructions: 69 * g, LoadRatio: 0.27, StoreRatio: 0.37, DatasetBytes: 16 * mem.GiB},
		{Name: "seqWr", Kind: Micro, Threads: 1, Instructions: 67 * g, LoadRatio: 0.28, StoreRatio: 0.43, DatasetBytes: 16 * mem.GiB, Sequential: true, WriteHeavy: true},
		{Name: "rndWr", Kind: Micro, Threads: 4, Instructions: 69 * g, LoadRatio: 0.27, StoreRatio: 0.37, DatasetBytes: 16 * mem.GiB, WriteHeavy: true},
		{Name: "seqSel", Kind: SQLite, Threads: 1, Instructions: 213 * g, LoadRatio: 0.26, StoreRatio: 0.20, DatasetBytes: 11 * mem.GiB, Sequential: true},
		{Name: "rndSel", Kind: SQLite, Threads: 1, Instructions: 213 * g, LoadRatio: 0.26, StoreRatio: 0.20, DatasetBytes: 11 * mem.GiB},
		{Name: "seqIns", Kind: SQLite, Threads: 1, Instructions: 40 * g, LoadRatio: 0.25, StoreRatio: 0.21, DatasetBytes: 11 * mem.GiB, Sequential: true, WriteHeavy: true},
		{Name: "rndIns", Kind: SQLite, Threads: 1, Instructions: 44 * g, LoadRatio: 0.25, StoreRatio: 0.21, DatasetBytes: 11 * mem.GiB, WriteHeavy: true},
		{Name: "update", Kind: SQLite, Threads: 1, Instructions: 244 * g, LoadRatio: 0.26, StoreRatio: 0.20, DatasetBytes: 11 * mem.GiB, WriteHeavy: true},
		{Name: "BFS", Kind: Rodinia, Threads: 4, Instructions: 192 * g, LoadRatio: 0.21, StoreRatio: 0.04, DatasetBytes: 9 * mem.GiB},
		{Name: "KMN", Kind: Rodinia, Threads: 4, Instructions: 38 * g, LoadRatio: 0.27, StoreRatio: 0.03, DatasetBytes: 5 * mem.GiB, Sequential: true},
		{Name: "NN", Kind: Rodinia, Threads: 4, Instructions: 145 * g, LoadRatio: 0.16, StoreRatio: 0.05, DatasetBytes: 7 * mem.GiB, Sequential: true},
	}
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names returns all workload names in Table III order.
func Names() []string {
	specs := All()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Options tunes stream generation.
type Options struct {
	// Scale multiplies the paper instruction count (default 1e-5:
	// 244 G instructions become 2.44 M).
	Scale float64
	// Seed makes streams deterministic.
	Seed int64
	// HotFraction is the share of random accesses that fall into the
	// hot region (locality model); HotBytes is its size.
	HotFraction float64
	HotBytes    uint64
	// DatasetBytes overrides the Table III footprint (used by the
	// Fig. 20b 44 GB stress test); 0 keeps the spec value.
	DatasetBytes uint64
	// PageBytes is the microbenchmark transfer unit.
	PageBytes uint64
}

// DefaultOptions returns the harness defaults.
func DefaultOptions() Options {
	return Options{
		Scale:       1e-5,
		Seed:        42,
		HotFraction: 0.80, // cold-traffic rate; yields ~90-95% NVDIMM hit rate
		HotBytes:    1 * mem.GiB,
		PageBytes:   4 * mem.KiB,
	}
}

// Streams materializes per-thread access streams for the workload.
func (s Spec) Streams(o Options) []cpu.Stream {
	if o.Scale == 0 {
		o.Scale = 1e-5
	}
	if o.PageBytes == 0 {
		o.PageBytes = 4 * mem.KiB
	}
	if o.HotBytes == 0 {
		o.HotBytes = 4 * mem.GiB
	}
	ds := s.DatasetBytes
	if o.DatasetBytes != 0 {
		ds = o.DatasetBytes
	}
	perThread := int64(float64(s.Instructions) * o.Scale / float64(s.Threads))
	out := make([]cpu.Stream, s.Threads)
	for i := 0; i < s.Threads; i++ {
		rng := rand.New(rand.NewSource(s.streamSeed(o.Seed, i)))
		base := spanFor(i, s.Threads, ds)
		switch s.Kind {
		case Micro:
			out[i] = newMicroStream(s, o, rng, base, perThread)
		case SQLite:
			out[i] = newKVStream(s, o, rng, ds, perThread)
		default:
			out[i] = newRodiniaStream(s, o, rng, base, perThread)
		}
	}
	return out
}

// streamSeed derives the deterministic seed for one thread's stream.
// Mixing the spec name in decorrelates workloads that share a base
// seed (with a plain per-thread offset, rndRd thread 0 and rndWr
// thread 0 would walk identical address sequences); every stream is
// still fully reproducible from Options.Seed alone.
func (s Spec) streamSeed(base int64, thread int) int64 {
	h := fnv.New64a()
	h.Write([]byte(s.Name))
	return (base ^ int64(h.Sum64()&0x7fffffffffffffff)) + int64(thread)*7919
}

// Region is an address range a workload keeps hot.
type Region struct {
	Base, Size uint64
}

// HotRegions returns the address ranges the workload re-touches — the
// working set that is resident once the run reaches steady state. The
// harness pre-warms platform caches with these ranges to stand in for
// the paper's 38-244 G-instruction warm phase (EXPERIMENTS.md).
func (s Spec) HotRegions(o Options) []Region {
	if o.HotBytes == 0 {
		o.HotBytes = DefaultOptions().HotBytes
	}
	ds := s.DatasetBytes
	if o.DatasetBytes != 0 {
		ds = o.DatasetBytes
	}
	if s.Kind == SQLite {
		inner := Region{Base: 0, Size: 64 * mem.MiB}
		if s.Sequential {
			// Sequential scans/inserts walk fresh leaves; only the
			// inner nodes stay hot.
			return []Region{inner}
		}
		// Inner nodes plus the hot (low-key) end of the leaf space.
		hot := uint64(1<<22) * 256
		if hot > ds-64*mem.MiB {
			hot = ds - 64*mem.MiB
		}
		return []Region{inner, {Base: 64 * mem.MiB, Size: hot}}
	}
	if s.Sequential {
		// Streaming workloads have no steady-state residency: every
		// page is touched once and replaced.
		return nil
	}
	var out []Region
	for i := 0; i < s.Threads; i++ {
		sp := spanFor(i, s.Threads, ds)
		n := o.HotBytes
		if n > sp.size {
			n = sp.size
		}
		out = append(out, Region{Base: sp.base, Size: n})
	}
	return out
}

// spanFor partitions the dataset across threads.
func spanFor(i, n int, ds uint64) span {
	sz := ds / uint64(n)
	return span{base: uint64(i) * sz, size: sz}
}

type span struct {
	base, size uint64
}

// pick returns a random address within the span with hot/cold skew.
func (sp span) pick(rng *rand.Rand, hotFrac float64, hotBytes uint64, align uint64) uint64 {
	limit := sp.size
	if hotBytes < limit && rng.Float64() < hotFrac {
		limit = hotBytes
	}
	a := sp.base + uint64(rng.Int63n(int64(limit)))
	return mem.AlignDown(a, align)
}
