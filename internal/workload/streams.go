package workload

import (
	"math/rand"

	"hams/internal/cpu"
	"hams/internal/mem"
)

const lineBytes = 64

// mixer emits the scratch accesses and compute padding that make each
// iteration match the workload's Table III load/store ratios. Scratch
// accesses cycle through a small per-thread buffer that stays resident
// in the CPU caches, exactly like user-space buffers do.
type mixer struct {
	scratchBase uint64
	scratchSize uint64
	cursor      uint64
}

func newMixer(base uint64) *mixer {
	return &mixer{scratchBase: base, scratchSize: 16 * mem.KiB}
}

func (m *mixer) scratchAccess(op mem.Op) mem.Access {
	a := mem.Access{Addr: m.scratchBase + m.cursor, Size: lineBytes, Op: op}
	m.cursor = (m.cursor + lineBytes) % m.scratchSize
	return a
}

// emit builds a step whose totals approximate the ratios: mapped
// accesses are given; scratch loads/stores and compute are derived.
func (m *mixer) emit(s Spec, mapped []mem.Access, totalInstr int64) cpu.Step {
	var mappedLoads, mappedStores int64
	for _, a := range mapped {
		lines := int64(mem.AlignUp(a.Addr+uint64(a.Size), lineBytes)-mem.AlignDown(a.Addr, lineBytes)) / lineBytes
		if a.Op == mem.Read {
			mappedLoads += lines
		} else {
			mappedStores += lines
		}
	}
	wantLoads := int64(s.LoadRatio * float64(totalInstr))
	wantStores := int64(s.StoreRatio * float64(totalInstr))
	step := cpu.Step{Acc: mapped}
	for l := mappedLoads; l < wantLoads; l++ {
		step.Acc = append(step.Acc, m.scratchAccess(mem.Read))
	}
	for st := mappedStores; st < wantStores; st++ {
		step.Acc = append(step.Acc, m.scratchAccess(mem.Write))
	}
	memInstr := wantLoads + wantStores
	if mappedLoads > wantLoads {
		memInstr += mappedLoads - wantLoads
	}
	if mappedStores > wantStores {
		memInstr += mappedStores - wantStores
	}
	step.Compute = totalInstr - memInstr
	if step.Compute < 0 {
		step.Compute = 0
	}
	return step
}

// instrOf returns the instruction cost of a step as the runner counts
// it (compute + one instruction per line touched).
func instrOf(step cpu.Step) int64 {
	n := step.Compute
	for _, a := range step.Acc {
		lines := int64(mem.AlignUp(a.Addr+uint64(a.Size), lineBytes)-mem.AlignDown(a.Addr, lineBytes)) / lineBytes
		if lines < 1 {
			lines = 1
		}
		n += lines
	}
	return n
}

// ---------------------------------------------------------------------
// mmap microbenchmark: page-granular sequential/random read/write.

type microStream struct {
	spec   Spec
	opts   Options
	rng    *rand.Rand
	sp     span
	mix    *mixer
	budget int64
	seqPos uint64
	iters  int64

	// Random mode touches bursts of pages inside a cluster — the
	// spatial locality real mmap workloads exhibit (and the reason
	// the paper's 128 KB MoS page wins, Fig. 20a).
	clusterAddr uint64
	clusterLeft int
}

func newMicroStream(s Spec, o Options, rng *rand.Rand, sp span, budget int64) *microStream {
	return &microStream{spec: s, opts: o, rng: rng, sp: sp, mix: newMixer(sp.base), budget: budget}
}

func (m *microStream) Next() (cpu.Step, bool) {
	if m.budget <= 0 {
		return cpu.Step{}, false
	}
	page := m.opts.PageBytes
	const clusterBytes = 256 * mem.KiB
	var addr uint64
	if m.spec.Sequential {
		addr = m.sp.base + m.seqPos
		m.seqPos = (m.seqPos + page) % (m.sp.size - page)
	} else {
		if m.clusterLeft <= 0 {
			m.clusterAddr = mem.AlignDown(m.sp.pick(m.rng, m.opts.HotFraction, m.opts.HotBytes, page), clusterBytes)
			m.clusterLeft = 8 + m.rng.Intn(48)
		}
		m.clusterLeft--
		addr = m.clusterAddr + uint64(m.rng.Intn(int(clusterBytes/page)))*page
		if addr+page > m.sp.base+m.sp.size {
			addr = m.sp.base
		}
	}
	op := mem.Read
	if m.spec.WriteHeavy {
		op = mem.Write
	}
	mapped := []mem.Access{{Addr: addr, Size: uint32(page), Op: op}}
	// One page copy touches page/64 lines on the mapped side; the
	// iteration's total instruction count is set so that the mapped
	// operation accounts for exactly its own Table III ratio (the
	// other side of the copy hits the user buffer, i.e. scratch).
	mappedLines := int64(page / lineBytes)
	ratio := m.spec.LoadRatio
	if op == mem.Write {
		ratio = m.spec.StoreRatio
	}
	total := int64(float64(mappedLines) / ratio)
	step := m.mix.emit(m.spec, mapped, total)
	m.budget -= instrOf(step)
	m.iters++
	return step, true
}

// PagesTouched reports iterations (pages) for pages/s metrics.
func (m *microStream) PagesTouched() int64 { return m.iters }

// ---------------------------------------------------------------------
// SQLite stand-in: B-tree-shaped key-value operations with 8-100 B
// accesses. The tree has a cached root, one inner level and a leaf
// level spread across the dataset.

type kvStream struct {
	spec   Spec
	opts   Options
	rng    *rand.Rand
	mix    *mixer
	ds     uint64
	budget int64
	seqKey uint64
	ops    int64

	// Cold accesses run through short sequential key ranges (range
	// scans / batched updates), giving the clustered index the
	// spatial locality real DBMS traffic has.
	coldKey  uint64
	coldLeft int
}

func newKVStream(s Spec, o Options, rng *rand.Rand, ds uint64, budget int64) *kvStream {
	return &kvStream{spec: s, opts: o, rng: rng, mix: newMixer(0), ds: ds, budget: budget}
}

// perOpInstr is the modeled instruction cost of one SQL operation;
// selects are DBMS-compute heavy (§III-B: rndSel/seqSel spend 83% of
// execution on DBMS computation).
func (k *kvStream) perOpInstr() int64 {
	switch k.spec.Name {
	case "seqSel", "rndSel":
		return 400
	case "update":
		return 250
	default: // inserts
		return 220
	}
}

func (k *kvStream) leafAddr(key uint64) uint64 {
	// Clustered index: sequential keys occupy adjacent 256 B leaf
	// entries (a B-tree keeps key order on disk), past the first
	// 64 MiB of inner nodes.
	innerBytes := uint64(64 * mem.MiB)
	leafSpace := k.ds - innerBytes
	return innerBytes + (key*256)%(leafSpace-4096)
}

func (k *kvStream) innerAddr(key uint64) uint64 {
	return ((key / 128) * 64) % (64 * mem.MiB)
}

func (k *kvStream) nextKey() uint64 {
	if k.spec.Sequential {
		k.seqKey++
		return k.seqKey
	}
	// Hot/cold skew: most touches land in a popular key range; cold
	// touches walk short sequential runs.
	if k.rng.Float64() < k.opts.HotFraction {
		return uint64(k.rng.Int63n(1 << 22))
	}
	if k.coldLeft <= 0 {
		k.coldKey = uint64(k.rng.Int63n(1 << 36))
		k.coldLeft = 12 + k.rng.Intn(24)
	}
	k.coldLeft--
	k.coldKey++
	return k.coldKey
}

func (k *kvStream) Next() (cpu.Step, bool) {
	if k.budget <= 0 {
		return cpu.Step{}, false
	}
	key := k.nextKey()
	var mapped []mem.Access
	// Root is cached (scratch); inner node read: 64 B.
	mapped = append(mapped, mem.Access{Addr: k.innerAddr(key), Size: 64, Op: mem.Read})
	leaf := k.leafAddr(key)
	switch k.spec.Name {
	case "seqSel", "rndSel":
		mapped = append(mapped, mem.Access{Addr: leaf, Size: 100, Op: mem.Read})
	case "update":
		mapped = append(mapped,
			mem.Access{Addr: leaf, Size: 100, Op: mem.Read},
			mem.Access{Addr: leaf, Size: 64, Op: mem.Write})
	default: // inserts: read leaf, write entry, occasionally split
		mapped = append(mapped,
			mem.Access{Addr: leaf, Size: 64, Op: mem.Read},
			mem.Access{Addr: leaf, Size: 100, Op: mem.Write})
		if k.ops%64 == 63 { // node split: write a fresh page
			mapped = append(mapped, mem.Access{Addr: k.leafAddr(key + 1<<40), Size: 4096, Op: mem.Write})
		}
	}
	step := k.mix.emit(k.spec, mapped, k.perOpInstr())
	k.budget -= instrOf(step)
	k.ops++
	return step, true
}

// Ops reports completed SQL operations for ops/s metrics.
func (k *kvStream) Ops() int64 { return k.ops }

// ---------------------------------------------------------------------
// Rodinia kernels.

type rodiniaStream struct {
	spec   Spec
	opts   Options
	rng    *rand.Rand
	sp     span
	mix    *mixer
	budget int64
	pos    uint64
	iters  int64
}

func newRodiniaStream(s Spec, o Options, rng *rand.Rand, sp span, budget int64) *rodiniaStream {
	return &rodiniaStream{spec: s, opts: o, rng: rng, sp: sp, mix: newMixer(sp.base), budget: budget}
}

func (r *rodiniaStream) Next() (cpu.Step, bool) {
	if r.budget <= 0 {
		return cpu.Step{}, false
	}
	var mapped []mem.Access
	var total int64
	switch r.spec.Name {
	case "BFS":
		// Visit a vertex: offsets read, a burst of neighbor IDs near
		// the frontier (CSR adjacency is contiguous), and a rare
		// visited-bit write. Every 64 visits the frontier jumps.
		if r.iters%64 == 0 || r.pos == 0 {
			r.pos = r.sp.pick(r.rng, r.opts.HotFraction, r.opts.HotBytes, 4096) - r.sp.base
		}
		off := r.sp.base + (r.pos+uint64(r.rng.Intn(32*1024)))%(r.sp.size-512)
		mapped = append(mapped, mem.Access{Addr: off, Size: 8, Op: mem.Read})
		mapped = append(mapped, mem.Access{Addr: off + 64, Size: 256, Op: mem.Read})
		if r.iters%8 == 0 {
			mapped = append(mapped, mem.Access{Addr: off + 8, Size: 8, Op: mem.Write})
		}
		total = 30
	case "KMN":
		// Stream a point vector; centroids live in scratch.
		mapped = append(mapped, mem.Access{Addr: r.sp.base + r.pos, Size: 128, Op: mem.Read})
		r.pos = (r.pos + 128) % (r.sp.size - 128)
		total = 24
	default: // NN: streaming scan, distance computation dominates
		mapped = append(mapped, mem.Access{Addr: r.sp.base + r.pos, Size: 64, Op: mem.Read})
		r.pos = (r.pos + 64) % (r.sp.size - 64)
		total = 20
	}
	step := r.mix.emit(r.spec, mapped, total)
	r.budget -= instrOf(step)
	r.iters++
	return step, true
}

// Iters reports kernel iterations (pages/s proxy for Fig. 16a uses
// 4 KiB-normalized progress).
func (r *rodiniaStream) Iters() int64 { return r.iters }

// Progress lets the harness read workload progress (pages or ops).
type Progress interface {
	// Units returns completed work items (pages for micro/Rodinia,
	// SQL operations for the KV workloads).
	Units() int64
}

func (m *microStream) Units() int64   { return m.iters }
func (k *kvStream) Units() int64      { return k.ops }
func (r *rodiniaStream) Units() int64 { return r.iters }
