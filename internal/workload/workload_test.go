package workload

import (
	"testing"

	"hams/internal/cpu"
	"hams/internal/mem"
)

func TestAllHasTwelveWorkloads(t *testing.T) {
	specs := All()
	if len(specs) != 12 {
		t.Fatalf("len = %d, want 12", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate %s", s.Name)
		}
		seen[s.Name] = true
		if s.Instructions <= 0 || s.Threads <= 0 || s.DatasetBytes == 0 {
			t.Fatalf("%s: incomplete spec %+v", s.Name, s)
		}
		if s.LoadRatio <= 0 || s.LoadRatio >= 1 || s.StoreRatio < 0 || s.StoreRatio >= 1 {
			t.Fatalf("%s: bad ratios", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("BFS")
	if err != nil || s.Kind != Rodinia {
		t.Fatalf("ByName(BFS) = %+v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestNamesOrder(t *testing.T) {
	n := Names()
	if n[0] != "seqRd" || n[len(n)-1] != "NN" {
		t.Fatalf("names = %v", n)
	}
}

func TestStreamsRespectThreadCount(t *testing.T) {
	for _, s := range All() {
		streams := s.Streams(DefaultOptions())
		if len(streams) != s.Threads {
			t.Fatalf("%s: %d streams, want %d", s.Name, len(streams), s.Threads)
		}
	}
}

func TestStreamsDeterministic(t *testing.T) {
	s, _ := ByName("rndRd")
	o := DefaultOptions()
	o.Scale = 1e-7
	a := drain(t, s.Streams(o)[0])
	b := drain(t, s.Streams(o)[0])
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Compute != b[i].Compute || len(a[i].Acc) != len(b[i].Acc) {
			t.Fatalf("step %d differs", i)
		}
		for j := range a[i].Acc {
			if a[i].Acc[j] != b[i].Acc[j] {
				t.Fatalf("step %d access %d differs", i, j)
			}
		}
	}
}

func TestStreamSeedsDecorrelateSpecs(t *testing.T) {
	// Two random workloads sharing Options.Seed must not replay the
	// same address sequence: the per-spec seed mixes the name in.
	rd, _ := ByName("rndRd")
	wr, _ := ByName("rndWr")
	o := DefaultOptions()
	o.Scale = 1e-7
	a := drain(t, rd.Streams(o)[0])
	b := drain(t, wr.Streams(o)[0])
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	same := 0
	for i := 0; i < n; i++ {
		if len(a[i].Acc) > 0 && len(b[i].Acc) > 0 && a[i].Acc[0].Addr == b[i].Acc[0].Addr {
			same++
		}
	}
	if same == n {
		t.Fatal("rndRd and rndWr walk identical address sequences under a shared seed")
	}
	// And per-thread streams of one spec must differ from each other.
	sA := rd.Streams(o)
	x, y := drain(t, sA[0]), drain(t, sA[1])
	n = min(len(x), len(y))
	same = 0
	for i := 0; i < n; i++ {
		if len(x[i].Acc) > 0 && len(y[i].Acc) > 0 && x[i].Acc[0].Addr-y[i].Acc[0].Addr == 0 {
			same++
		}
	}
	if same == n {
		t.Fatal("thread streams are identical")
	}
}

func TestStreamSeedChangesWithOptionsSeed(t *testing.T) {
	s, _ := ByName("rndWr")
	o1 := DefaultOptions()
	o1.Scale = 1e-7
	o2 := o1
	o2.Seed = o1.Seed + 1
	a := drain(t, s.Streams(o1)[0])
	b := drain(t, s.Streams(o2)[0])
	n := min(len(a), len(b))
	diff := false
	for i := 0; i < n; i++ {
		if len(a[i].Acc) > 0 && len(b[i].Acc) > 0 && a[i].Acc[0].Addr != b[i].Acc[0].Addr {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("changing Options.Seed did not change the stream")
	}
}

func drain(t *testing.T, s cpu.Stream) []cpu.Step {
	t.Helper()
	var out []cpu.Step
	for {
		st, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, st)
		if len(out) > 5_000_000 {
			t.Fatal("stream does not terminate")
		}
	}
}

// ratios measured over a drained stream must approximate Table III.
func TestInstructionMixMatchesTableIII(t *testing.T) {
	o := DefaultOptions()
	o.Scale = 2e-7
	for _, s := range All() {
		var loads, stores, compute int64
		for _, st := range s.Streams(o) {
			for {
				step, ok := st.Next()
				if !ok {
					break
				}
				compute += step.Compute
				for _, a := range step.Acc {
					lines := int64(mem.AlignUp(a.Addr+uint64(a.Size), 64)-mem.AlignDown(a.Addr, 64)) / 64
					if a.Op == mem.Read {
						loads += lines
					} else {
						stores += lines
					}
				}
			}
		}
		total := loads + stores + compute
		if total == 0 {
			t.Fatalf("%s: empty stream", s.Name)
		}
		lr := float64(loads) / float64(total)
		sr := float64(stores) / float64(total)
		if lr < s.LoadRatio-0.06 || lr > s.LoadRatio+0.06 {
			t.Errorf("%s: load ratio %.3f, want %.2f", s.Name, lr, s.LoadRatio)
		}
		if sr < s.StoreRatio-0.06 || sr > s.StoreRatio+0.06 {
			t.Errorf("%s: store ratio %.3f, want %.2f", s.Name, sr, s.StoreRatio)
		}
	}
}

func TestInstructionBudgetScales(t *testing.T) {
	s, _ := ByName("KMN")
	o := DefaultOptions()
	o.Scale = 1e-7
	small := totalInstr(t, s, o)
	o.Scale = 4e-7
	big := totalInstr(t, s, o)
	if big < 3*small || big > 5*small {
		t.Fatalf("scaling broken: %d vs %d", small, big)
	}
	// Budget should approximate Instructions*Scale.
	want := float64(s.Instructions) * o.Scale
	if float64(big) < 0.8*want || float64(big) > 1.25*want {
		t.Fatalf("budget %d, want ~%.0f", big, want)
	}
}

func totalInstr(t *testing.T, s Spec, o Options) int64 {
	t.Helper()
	var n int64
	for _, st := range s.Streams(o) {
		for {
			step, ok := st.Next()
			if !ok {
				break
			}
			n += instrOf(step)
		}
	}
	return n
}

func TestSequentialMicroIsSequential(t *testing.T) {
	s, _ := ByName("seqRd")
	o := DefaultOptions()
	o.Scale = 1e-7
	st := s.Streams(o)[0]
	var prev uint64
	first := true
	for {
		step, ok := st.Next()
		if !ok {
			break
		}
		a := step.Acc[0] // the mapped page access comes first
		if !first && a.Addr != prev+o.PageBytes && a.Addr >= prev {
			t.Fatalf("non-sequential stride: %#x after %#x", a.Addr, prev)
		}
		prev = a.Addr
		first = false
	}
}

func TestAccessesStayWithinDataset(t *testing.T) {
	o := DefaultOptions()
	o.Scale = 1e-7
	for _, s := range All() {
		for _, st := range s.Streams(o) {
			for {
				step, ok := st.Next()
				if !ok {
					break
				}
				for _, a := range step.Acc {
					if a.End() > s.DatasetBytes {
						t.Fatalf("%s: access %v beyond dataset %d", s.Name, a, s.DatasetBytes)
					}
				}
			}
		}
	}
}

func TestProgressInterface(t *testing.T) {
	o := DefaultOptions()
	o.Scale = 1e-7
	for _, s := range All() {
		st := s.Streams(o)[0]
		p, ok := st.(Progress)
		if !ok {
			t.Fatalf("%s: stream does not report progress", s.Name)
		}
		st.Next()
		st.Next()
		if p.Units() != 2 {
			t.Fatalf("%s: units = %d, want 2", s.Name, p.Units())
		}
	}
}

func TestKindString(t *testing.T) {
	if Micro.String() != "micro" || SQLite.String() != "sqlite" || Rodinia.String() != "rodinia" {
		t.Fatal("Kind.String")
	}
}

func TestFig20DatasetOverride(t *testing.T) {
	s, _ := ByName("update")
	o := DefaultOptions()
	o.Scale = 2e-6
	o.DatasetBytes = 44 * mem.GiB
	st := s.Streams(o)[0]
	maxAddr := uint64(0)
	for {
		step, ok := st.Next()
		if !ok {
			break
		}
		for _, a := range step.Acc {
			if a.End() > maxAddr {
				maxAddr = a.End()
			}
		}
	}
	if maxAddr <= 11*mem.GiB {
		t.Fatalf("override ignored: max addr %d", maxAddr)
	}
}
