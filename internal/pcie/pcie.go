// Package pcie models a PCIe link as used by NVMe storage: per-lane
// bandwidth, transaction-layer-packet (TLP) framing overhead and a
// maximum payload that forces large transfers to be segmented. The
// paper's key architectural point is that this 4 GB/s path (PCIe 3.0
// x4) caps baseline HAMS on cache misses while DDR4 offers 20 GB/s.
package pcie

import (
	"fmt"

	"hams/internal/sim"
)

// Config describes the link.
type Config struct {
	Lanes       int
	LaneGBs     float64  // effective per-lane bandwidth
	MaxPayload  int64    // TLP payload limit (bytes)
	TLPOverhead sim.Time // framing/encode time per TLP
	PropDelay   sim.Time // one-way propagation + root-complex latency
}

// Gen3x4 is the paper's storage link: 4 lanes, ~1 GB/s each.
func Gen3x4() Config {
	return Config{Lanes: 4, LaneGBs: 1.0, MaxPayload: 4096, TLPOverhead: 50, PropDelay: 250}
}

// SATA6G approximates a SATA 3.0 device link (600 MB/s, AHCI framing).
func SATA6G() Config {
	return Config{Lanes: 1, LaneGBs: 0.55, MaxPayload: 8192, TLPOverhead: 400, PropDelay: 1500}
}

// Link is a full-duplex point-to-point link; each direction is one
// FCFS resource.
type Link struct {
	cfg  Config
	up   *sim.Resource // device -> host
	down *sim.Resource // host -> device
	sent int64
	rcvd int64
}

// New builds a link.
func New(cfg Config) *Link {
	if cfg.Lanes <= 0 {
		cfg.Lanes = 1
	}
	return &Link{cfg: cfg, up: sim.NewResource(), down: sim.NewResource()}
}

// GBs returns the aggregate link bandwidth.
func (l *Link) GBs() float64 { return float64(l.cfg.Lanes) * l.cfg.LaneGBs }

func (l *Link) xferTime(bytes int64) sim.Time {
	if bytes <= 0 {
		return l.cfg.TLPOverhead
	}
	var t sim.Time
	for bytes > 0 {
		n := bytes
		if n > l.cfg.MaxPayload {
			n = l.cfg.MaxPayload
		}
		t += l.cfg.TLPOverhead + sim.Bandwidth(n, l.GBs())
		bytes -= n
	}
	return t
}

// ToDevice transfers bytes host->device starting at t; returns arrival.
func (l *Link) ToDevice(t sim.Time, bytes int64) sim.Time {
	_, done := l.down.Acquire(t, l.xferTime(bytes))
	l.sent += bytes
	return done + l.cfg.PropDelay
}

// ToHost transfers bytes device->host starting at t; returns arrival.
func (l *Link) ToHost(t sim.Time, bytes int64) sim.Time {
	_, done := l.up.Acquire(t, l.xferTime(bytes))
	l.rcvd += bytes
	return done + l.cfg.PropDelay
}

// MMIOWrite models a posted register write (e.g. a doorbell): it only
// pays propagation, no payload streaming.
func (l *Link) MMIOWrite(t sim.Time) sim.Time {
	_, done := l.down.Acquire(t, l.cfg.TLPOverhead)
	return done + l.cfg.PropDelay
}

// MSI models the device raising a message-signaled interrupt.
func (l *Link) MSI(t sim.Time) sim.Time {
	_, done := l.up.Acquire(t, l.cfg.TLPOverhead)
	return done + l.cfg.PropDelay
}

// BytesMoved reports totals (host->device, device->host).
func (l *Link) BytesMoved() (down, up int64) { return l.sent, l.rcvd }

func (l *Link) String() string {
	return fmt.Sprintf("pcie(x%d, %.1fGB/s)", l.cfg.Lanes, l.GBs())
}
