package pcie

import (
	"testing"

	"hams/internal/sim"
)

func TestGen3x4Bandwidth(t *testing.T) {
	l := New(Gen3x4())
	if l.GBs() != 4.0 {
		t.Fatalf("GBs = %f", l.GBs())
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	l := New(Gen3x4())
	d4k := l.ToHost(0, 4096)
	l2 := New(Gen3x4())
	d64k := l2.ToHost(0, 65536)
	if d64k <= d4k {
		t.Fatalf("64K (%v) must take longer than 4K (%v)", d64k, d4k)
	}
	// 64 KiB = 16 TLPs: segmentation overhead must appear.
	raw := sim.Bandwidth(65536, 4)
	if d64k <= raw {
		t.Fatalf("64K transfer (%v) must exceed raw bandwidth time (%v)", d64k, raw)
	}
}

func TestDirectionsIndependent(t *testing.T) {
	l := New(Gen3x4())
	up := l.ToHost(0, 4096)
	down := l.ToDevice(0, 4096)
	// Full duplex: both directions at t=0 finish at the same time.
	if up != down {
		t.Fatalf("up=%v down=%v; directions must not contend", up, down)
	}
}

func TestSameDirectionSerializes(t *testing.T) {
	l := New(Gen3x4())
	d1 := l.ToHost(0, 4096)
	d2 := l.ToHost(0, 4096)
	if d2 <= d1 {
		t.Fatalf("second transfer (%v) must queue behind first (%v)", d2, d1)
	}
}

func TestMMIOAndMSICheap(t *testing.T) {
	l := New(Gen3x4())
	dm := l.MMIOWrite(0)
	l2 := New(Gen3x4())
	dd := l2.ToDevice(0, 4096)
	if dm >= dd {
		t.Fatalf("doorbell (%v) must be cheaper than 4K payload (%v)", dm, dd)
	}
	if msi := l.MSI(1000); msi <= 1000 {
		t.Fatal("MSI must take time")
	}
}

func TestByteAccounting(t *testing.T) {
	l := New(Gen3x4())
	l.ToDevice(0, 100)
	l.ToHost(0, 200)
	down, up := l.BytesMoved()
	if down != 100 || up != 200 {
		t.Fatalf("down=%d up=%d", down, up)
	}
}

func TestSATASlowerThanPCIe(t *testing.T) {
	nvme := New(Gen3x4())
	sata := New(SATA6G())
	dn := nvme.ToHost(0, 65536)
	ds := sata.ToHost(0, 65536)
	if ds <= dn {
		t.Fatalf("SATA (%v) must be slower than PCIe x4 (%v)", ds, dn)
	}
}

func TestZeroByteTransferStillFramed(t *testing.T) {
	l := New(Gen3x4())
	if d := l.ToHost(0, 0); d <= 0 {
		t.Fatal("zero-byte transfer must still pay framing + propagation")
	}
}
