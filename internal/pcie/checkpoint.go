package pcie

import "hams/internal/checkpoint"

// SaveState serializes the link: both direction servers and the TLP
// counters.
func (l *Link) SaveState(enc *checkpoint.Enc) {
	l.up.SaveState(enc)
	l.down.SaveState(enc)
	enc.I64(l.sent)
	enc.I64(l.rcvd)
}

// RestoreState overlays the link.
func (l *Link) RestoreState(d *checkpoint.Dec) error {
	if err := l.up.RestoreState(d); err != nil {
		return err
	}
	if err := l.down.RestoreState(d); err != nil {
		return err
	}
	l.sent = d.I64()
	l.rcvd = d.I64()
	return d.Err()
}
