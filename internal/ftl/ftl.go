// Package ftl implements a page-level flash translation layer: LBA to
// PPN mapping, round-robin plane striping for write allocation, greedy
// garbage collection with over-provisioning, and wear/WAF accounting.
// Functional page data flows through the FTL into the flash array, so
// reads return exactly the bytes written — the property the HAMS
// persistency experiments rely on.
package ftl

import (
	"errors"
	"fmt"

	"hams/internal/flash"
	"hams/internal/sim"
)

// Config tunes the FTL.
type Config struct {
	// OPBlocksPerPlane is the per-plane reserve kept out of the
	// exported capacity so GC always has destination space.
	OPBlocksPerPlane int
	// GCLowWater triggers GC when a plane's free-block count drops to
	// this value.
	GCLowWater int
}

// DefaultConfig returns a 2-block reserve / low-water of 1.
func DefaultConfig() Config { return Config{OPBlocksPerPlane: 2, GCLowWater: 2} }

// ErrFull is returned when no garbage can be collected (every mapped
// page valid) and the device has no free pages left.
var ErrFull = errors.New("ftl: device full")

type activeBlock struct {
	block    int // -1 when none
	nextPage int
}

// Stats carries FTL activity counters.
type Stats struct {
	HostReads    int64
	HostWrites   int64
	GCWrites     int64 // relocations
	GCRuns       int64
	Erases       int64
	UnmappedRead int64
}

// FTL is the translation layer over one flash array.
type FTL struct {
	arr *flash.Array
	geo flash.Geometry
	cfg Config

	l2p map[uint64]flash.PPN
	p2l map[flash.PPN]uint64

	free    [][]int // per plane: free block indices
	active  []activeBlock
	valid   []int // per global block: valid page count
	planeRR int   // round-robin allocation cursor

	stats Stats
}

// New wraps arr with a translation layer.
func New(arr *flash.Array, cfg Config) *FTL {
	g := arr.Geo
	f := &FTL{
		arr:    arr,
		geo:    g,
		cfg:    cfg,
		l2p:    make(map[uint64]flash.PPN),
		p2l:    make(map[flash.PPN]uint64),
		free:   make([][]int, g.Planes()),
		active: make([]activeBlock, g.Planes()),
		valid:  make([]int, g.Blocks()),
	}
	for p := range f.free {
		blocks := make([]int, g.BlocksPerPln)
		for b := range blocks {
			blocks[b] = b
		}
		f.free[p] = blocks
		f.active[p] = activeBlock{block: -1}
	}
	return f
}

// PageBytes returns the mapping granularity.
func (f *FTL) PageBytes() uint64 { return f.geo.PageBytes }

// ExportedPages returns the logical capacity in pages (raw minus OP).
func (f *FTL) ExportedPages() uint64 {
	op := uint64(f.cfg.OPBlocksPerPlane * f.geo.Planes() * f.geo.PagesPerBlk)
	return f.geo.TotalPages() - op
}

// Stats returns a copy of the counters.
func (f *FTL) Stats() Stats { return f.stats }

// WAF returns the write amplification factor observed so far.
func (f *FTL) WAF() float64 {
	if f.stats.HostWrites == 0 {
		return 1
	}
	return float64(f.stats.HostWrites+f.stats.GCWrites) / float64(f.stats.HostWrites)
}

// Mapped reports whether lba has been written.
func (f *FTL) Mapped(lba uint64) bool {
	_, ok := f.l2p[lba]
	return ok
}

// planeCoords returns the Addr template for a global plane index.
func (f *FTL) planeCoords(plane int) flash.Addr {
	g := f.geo
	pln := plane % g.PlanesPerDie
	rest := plane / g.PlanesPerDie
	die := rest % g.DiesPerPkg
	rest /= g.DiesPerPkg
	pkg := rest % g.PackagesPerC
	ch := rest / g.PackagesPerC
	return flash.Addr{Channel: ch, Package: pkg, Die: die, Plane: pln}
}

func (f *FTL) blockIndex(plane, block int) int {
	return plane*f.geo.BlocksPerPln + block
}

// allocate returns the next PPN to program in the given plane, pulling
// a fresh block when the active one fills. Returns false if the plane
// has no free block and no active space.
func (f *FTL) allocate(plane int) (flash.PPN, bool) {
	ab := &f.active[plane]
	if ab.block == -1 || ab.nextPage >= f.geo.PagesPerBlk {
		if len(f.free[plane]) == 0 {
			return 0, false
		}
		ab.block = f.free[plane][0]
		f.free[plane] = f.free[plane][1:]
		ab.nextPage = 0
	}
	ad := f.planeCoords(plane)
	ad.Block = ab.block
	ad.Page = ab.nextPage
	ab.nextPage++
	return f.geo.Compose(ad), true
}

// invalidate drops the mapping of an old PPN (overwrite or trim).
func (f *FTL) invalidate(p flash.PPN) {
	delete(f.p2l, p)
	ad := f.geo.Decompose(p)
	plane := f.geo.GlobalDie(ad)*f.geo.PlanesPerDie + ad.Plane
	f.valid[f.blockIndex(plane, ad.Block)]--
}

// Write stores data (one logical page) at lba, arriving at t. It
// returns the completion time of the program, including any garbage
// collection performed inline.
func (f *FTL) Write(t sim.Time, lba uint64, data []byte) (sim.Time, error) {
	plane := f.planeRR
	f.planeRR = (f.planeRR + 1) % f.geo.Planes()

	now := t
	if len(f.free[plane]) <= f.cfg.GCLowWater {
		var err error
		now, err = f.collect(now, plane)
		if err != nil {
			return now, err
		}
	}
	ppn, ok := f.allocate(plane)
	if !ok {
		return now, ErrFull
	}
	if old, dup := f.l2p[lba]; dup {
		f.invalidate(old)
	}
	done, err := f.arr.ProgramPage(now, ppn, data)
	if err != nil {
		return done, fmt.Errorf("ftl: allocation handed out a dirty page: %w", err)
	}
	f.l2p[lba] = ppn
	f.p2l[ppn] = lba
	ad := f.geo.Decompose(ppn)
	pl := f.geo.GlobalDie(ad)*f.geo.PlanesPerDie + ad.Plane
	f.valid[f.blockIndex(pl, ad.Block)]++
	f.stats.HostWrites++
	return done, nil
}

// Read returns the data stored at lba (up to `bytes` transferred; 0 =
// full page) and the completion time. Reading an unwritten LBA returns
// a zero page but still pays the flash read — the evaluation
// preconditions the media ("we completely wrote all data-blocks into
// the flash-media", §VI-A), so every exported LBA is backed by a
// physical page. The pseudo-mapping lba→ppn preserves the channel
// striping of sequential preconditioning.
func (f *FTL) Read(t sim.Time, lba uint64, bytes uint32) (sim.Time, []byte) {
	ppn, ok := f.l2p[lba]
	if !ok {
		f.stats.UnmappedRead++
		pseudo := flash.PPN(lba % f.geo.TotalPages())
		done, _ := f.arr.ReadPage(t, pseudo, bytes)
		return done, make([]byte, f.geo.PageBytes)
	}
	done, data := f.arr.ReadPage(t, ppn, bytes)
	f.stats.HostReads++
	return done, data
}

// Peek returns the data stored at lba without any timing effect.
func (f *FTL) Peek(lba uint64) []byte {
	ppn, ok := f.l2p[lba]
	if !ok {
		return make([]byte, f.geo.PageBytes)
	}
	return f.arr.PeekPage(ppn)
}

// Trim discards the mapping for lba.
func (f *FTL) Trim(lba uint64) {
	if ppn, ok := f.l2p[lba]; ok {
		f.invalidate(ppn)
		delete(f.l2p, lba)
	}
}

// collect performs greedy GC in one plane until the free count rises
// above the low-water mark: pick the closed block with the fewest valid
// pages, relocate its valid pages, erase it.
func (f *FTL) collect(t sim.Time, plane int) (sim.Time, error) {
	now := t
	for len(f.free[plane]) <= f.cfg.GCLowWater {
		victim := f.pickVictim(plane)
		if victim < 0 {
			if len(f.free[plane]) > 0 {
				return now, nil // nothing to collect but we can still write
			}
			return now, ErrFull
		}
		f.stats.GCRuns++
		// Relocate valid pages.
		ad := f.planeCoords(plane)
		ad.Block = victim
		for pg := 0; pg < f.geo.PagesPerBlk; pg++ {
			ad.Page = pg
			ppn := f.geo.Compose(ad)
			lba, live := f.p2l[ppn]
			if !live {
				continue
			}
			rdDone, data := f.arr.ReadPage(now, ppn, 0)
			dst, ok := f.allocate(plane)
			if !ok {
				return now, ErrFull
			}
			progDone, err := f.arr.ProgramPage(rdDone, dst, data)
			if err != nil {
				return now, fmt.Errorf("ftl gc: %w", err)
			}
			f.invalidate(ppn)
			f.l2p[lba] = dst
			f.p2l[dst] = lba
			adDst := f.geo.Decompose(dst)
			pl := f.geo.GlobalDie(adDst)*f.geo.PlanesPerDie + adDst.Plane
			f.valid[f.blockIndex(pl, adDst.Block)]++
			f.stats.GCWrites++
			now = progDone
		}
		ad.Page = 0
		now = f.arr.EraseBlock(now, f.geo.Compose(ad))
		f.stats.Erases++
		f.free[plane] = append(f.free[plane], victim)
	}
	return now, nil
}

// pickVictim returns the closed block in plane with the fewest valid
// pages that is not the active block and not free, or -1 when every
// candidate is fully valid (nothing reclaimable) or none exists.
func (f *FTL) pickVictim(plane int) int {
	freeSet := make(map[int]bool, len(f.free[plane]))
	for _, b := range f.free[plane] {
		freeSet[b] = true
	}
	best, bestValid := -1, f.geo.PagesPerBlk
	for b := 0; b < f.geo.BlocksPerPln; b++ {
		if freeSet[b] || b == f.active[plane].block {
			continue
		}
		v := f.valid[f.blockIndex(plane, b)]
		if v < bestValid {
			best, bestValid = b, v
		}
	}
	return best
}

// FreeBlocks returns the free-block count of a plane (for tests).
func (f *FTL) FreeBlocks(plane int) int { return len(f.free[plane]) }
