// Package ftl implements a page-level flash translation layer: LBA to
// PPN mapping, round-robin plane striping for write allocation, greedy
// garbage collection with over-provisioning, and wear/WAF accounting.
// Functional page data flows through the FTL into the flash array, so
// reads return exactly the bytes written — the property the HAMS
// persistency experiments rely on.
package ftl

import (
	"errors"
	"fmt"

	"hams/internal/flash"
	"hams/internal/sim"
)

// Config tunes the FTL.
type Config struct {
	// OPBlocksPerPlane is the per-plane reserve kept out of the
	// exported capacity so GC always has destination space.
	OPBlocksPerPlane int
	// GCLowWater triggers GC when a plane's free-block count drops to
	// this value.
	GCLowWater int
}

// DefaultConfig returns a 2-block reserve / low-water of 1.
func DefaultConfig() Config { return Config{OPBlocksPerPlane: 2, GCLowWater: 2} }

// ErrFull is returned when no garbage can be collected (every mapped
// page valid) and the device has no free pages left.
var ErrFull = errors.New("ftl: device full")

type activeBlock struct {
	block    int // -1 when none
	nextPage int
}

// Stats carries FTL activity counters.
type Stats struct {
	HostReads    int64
	HostWrites   int64
	GCWrites     int64 // relocations
	GCRuns       int64
	Erases       int64
	UnmappedRead int64
}

// idxMap is a chunked radix table from a page-number key to a uint64
// value. It replaces the l2p/p2l maps: a lookup is two slice loads,
// and only the 2 KiB chunks a workload actually touches are
// materialized (the key spaces — exported LBAs and physical pages —
// are hundreds of millions of entries, almost all of them cold).
type idxMap struct {
	chunks [][]uint64
}

const (
	idxChunkBits = 8
	idxChunkSize = 1 << idxChunkBits
	idxChunkMask = idxChunkSize - 1
	idxNone      = ^uint64(0)
)

func (m *idxMap) get(k uint64) (uint64, bool) {
	ci := k >> idxChunkBits
	if ci >= uint64(len(m.chunks)) || m.chunks[ci] == nil {
		return 0, false
	}
	v := m.chunks[ci][k&idxChunkMask]
	return v, v != idxNone
}

func (m *idxMap) set(k, v uint64) {
	ci := k >> idxChunkBits
	for uint64(len(m.chunks)) <= ci {
		m.chunks = append(m.chunks, nil)
	}
	if m.chunks[ci] == nil {
		c := make([]uint64, idxChunkSize)
		for i := range c {
			c[i] = idxNone
		}
		m.chunks[ci] = c
	}
	m.chunks[ci][k&idxChunkMask] = v
}

func (m *idxMap) del(k uint64) {
	ci := k >> idxChunkBits
	if ci < uint64(len(m.chunks)) && m.chunks[ci] != nil {
		m.chunks[ci][k&idxChunkMask] = idxNone
	}
}

// FTL is the translation layer over one flash array.
type FTL struct {
	arr *flash.Array
	geo flash.Geometry
	cfg Config

	l2p idxMap // lba -> ppn
	p2l idxMap // ppn -> lba

	// The free-block bookkeeping reproduces the order of the seed's
	// explicit per-plane free lists ([0..N-1] popped from the front,
	// erased blocks appended at the back) without materializing them:
	// virgin blocks are a counter, recycled blocks a FIFO, and a per-
	// plane bitmap answers pickVictim's "is this block free?" probe.
	virginNext []int      // per plane: first never-allocated block
	recycled   [][]int    // per plane: erased blocks, FIFO order
	freeBit    [][]uint64 // per plane: 1 = free
	active     []activeBlock
	valid      []int // per global block: valid page count
	planeRR    int   // round-robin allocation cursor

	gcBuf []byte // relocation scratch (one page)

	stats Stats
}

// New wraps arr with a translation layer.
func New(arr *flash.Array, cfg Config) *FTL {
	g := arr.Geo
	f := &FTL{
		arr:        arr,
		geo:        g,
		cfg:        cfg,
		virginNext: make([]int, g.Planes()),
		recycled:   make([][]int, g.Planes()),
		freeBit:    make([][]uint64, g.Planes()),
		active:     make([]activeBlock, g.Planes()),
		valid:      make([]int, g.Blocks()),
		gcBuf:      make([]byte, g.PageBytes),
	}
	words := (g.BlocksPerPln + 63) / 64
	bits := make([]uint64, words*g.Planes())
	for i := range bits {
		bits[i] = ^uint64(0)
	}
	for p := range f.freeBit {
		f.freeBit[p] = bits[p*words : (p+1)*words]
		f.active[p] = activeBlock{block: -1}
	}
	return f
}

// PageBytes returns the mapping granularity.
func (f *FTL) PageBytes() uint64 { return f.geo.PageBytes }

// ExportedPages returns the logical capacity in pages (raw minus OP).
func (f *FTL) ExportedPages() uint64 {
	op := uint64(f.cfg.OPBlocksPerPlane * f.geo.Planes() * f.geo.PagesPerBlk)
	return f.geo.TotalPages() - op
}

// Stats returns a copy of the counters.
func (f *FTL) Stats() Stats { return f.stats }

// WAF returns the write amplification factor observed so far.
func (f *FTL) WAF() float64 {
	if f.stats.HostWrites == 0 {
		return 1
	}
	return float64(f.stats.HostWrites+f.stats.GCWrites) / float64(f.stats.HostWrites)
}

// Mapped reports whether lba has been written.
func (f *FTL) Mapped(lba uint64) bool {
	_, ok := f.l2p.get(lba)
	return ok
}

// Live reports whether ppn currently backs a mapped LBA. Programmed
// pages that fail this are stale: invalidated by an overwrite or trim,
// unreadable through the translation layer, waiting for GC to erase
// their block.
func (f *FTL) Live(p flash.PPN) bool {
	_, ok := f.p2l.get(uint64(p))
	return ok
}

// planeCoords returns the Addr template for a global plane index.
func (f *FTL) planeCoords(plane int) flash.Addr {
	g := f.geo
	pln := plane % g.PlanesPerDie
	rest := plane / g.PlanesPerDie
	die := rest % g.DiesPerPkg
	rest /= g.DiesPerPkg
	pkg := rest % g.PackagesPerC
	ch := rest / g.PackagesPerC
	return flash.Addr{Channel: ch, Package: pkg, Die: die, Plane: pln}
}

func (f *FTL) blockIndex(plane, block int) int {
	return plane*f.geo.BlocksPerPln + block
}

// freeCount returns the plane's free-block count (virgin + recycled).
func (f *FTL) freeCount(plane int) int {
	return (f.geo.BlocksPerPln - f.virginNext[plane]) + len(f.recycled[plane])
}

func (f *FTL) isFree(plane, block int) bool {
	return f.freeBit[plane][block>>6]&(1<<(uint(block)&63)) != 0
}

func (f *FTL) setFree(plane, block int, free bool) {
	if free {
		f.freeBit[plane][block>>6] |= 1 << (uint(block) & 63)
	} else {
		f.freeBit[plane][block>>6] &^= 1 << (uint(block) & 63)
	}
}

// popFree pulls the next free block in the plane, in the same order
// the seed's explicit list produced: virgin blocks 0..N-1 first, then
// recycled blocks in erase order.
func (f *FTL) popFree(plane int) (int, bool) {
	if f.virginNext[plane] < f.geo.BlocksPerPln {
		b := f.virginNext[plane]
		f.virginNext[plane]++
		f.setFree(plane, b, false)
		return b, true
	}
	r := f.recycled[plane]
	if len(r) == 0 {
		return 0, false
	}
	b := r[0]
	f.recycled[plane] = r[1:]
	f.setFree(plane, b, false)
	return b, true
}

// allocate returns the next PPN to program in the given plane, pulling
// a fresh block when the active one fills. Returns false if the plane
// has no free block and no active space.
func (f *FTL) allocate(plane int) (flash.PPN, bool) {
	ab := &f.active[plane]
	if ab.block == -1 || ab.nextPage >= f.geo.PagesPerBlk {
		b, ok := f.popFree(plane)
		if !ok {
			return 0, false
		}
		ab.block = b
		ab.nextPage = 0
	}
	ad := f.planeCoords(plane)
	ad.Block = ab.block
	ad.Page = ab.nextPage
	ab.nextPage++
	return f.geo.Compose(ad), true
}

// invalidate drops the mapping of an old PPN (overwrite or trim).
func (f *FTL) invalidate(p flash.PPN) {
	f.p2l.del(uint64(p))
	ad := f.geo.Decompose(p)
	plane := f.geo.GlobalDie(ad)*f.geo.PlanesPerDie + ad.Plane
	f.valid[f.blockIndex(plane, ad.Block)]--
}

// Write stores data (one logical page) at lba, arriving at t. It
// returns the completion time of the program, including any garbage
// collection performed inline.
func (f *FTL) Write(t sim.Time, lba uint64, data []byte) (sim.Time, error) {
	plane := f.planeRR
	f.planeRR = (f.planeRR + 1) % f.geo.Planes()

	now := t
	if f.freeCount(plane) <= f.cfg.GCLowWater {
		var err error
		now, err = f.collect(now, plane)
		if err != nil {
			return now, err
		}
	}
	ppn, ok := f.allocate(plane)
	if !ok {
		return now, ErrFull
	}
	if old, dup := f.l2p.get(lba); dup {
		f.invalidate(flash.PPN(old))
	}
	done, err := f.arr.ProgramPage(now, ppn, data)
	if err != nil {
		return done, fmt.Errorf("ftl: allocation handed out a dirty page: %w", err)
	}
	f.l2p.set(lba, uint64(ppn))
	f.p2l.set(uint64(ppn), lba)
	ad := f.geo.Decompose(ppn)
	pl := f.geo.GlobalDie(ad)*f.geo.PlanesPerDie + ad.Plane
	f.valid[f.blockIndex(pl, ad.Block)]++
	f.stats.HostWrites++
	return done, nil
}

// Read returns the data stored at lba (up to `bytes` transferred; 0 =
// full page) and the completion time. Reading an unwritten LBA returns
// a zero page but still pays the flash read — the evaluation
// preconditions the media ("we completely wrote all data-blocks into
// the flash-media", §VI-A), so every exported LBA is backed by a
// physical page. The pseudo-mapping lba→ppn preserves the channel
// striping of sequential preconditioning.
func (f *FTL) Read(t sim.Time, lba uint64, bytes uint32) (sim.Time, []byte) {
	buf := make([]byte, f.geo.PageBytes)
	done := f.ReadInto(t, lba, bytes, buf)
	return done, buf
}

// ReadInto is the allocation-free Read: the page content lands in dst
// (zero-filled past the stored data). A nil dst charges timing only.
func (f *FTL) ReadInto(t sim.Time, lba uint64, bytes uint32, dst []byte) sim.Time {
	ppn, ok := f.l2p.get(lba)
	if !ok {
		f.stats.UnmappedRead++
		pseudo := flash.PPN(lba % f.geo.TotalPages())
		done := f.arr.ReadPageInto(t, pseudo, bytes, nil)
		for i := range dst {
			dst[i] = 0
		}
		return done
	}
	done := f.arr.ReadPageInto(t, flash.PPN(ppn), bytes, dst)
	f.stats.HostReads++
	return done
}

// Peek returns the data stored at lba without any timing effect.
func (f *FTL) Peek(lba uint64) []byte {
	ppn, ok := f.l2p.get(lba)
	if !ok {
		return make([]byte, f.geo.PageBytes)
	}
	return f.arr.PeekPage(flash.PPN(ppn))
}

// Trim discards the mapping for lba.
func (f *FTL) Trim(lba uint64) {
	if ppn, ok := f.l2p.get(lba); ok {
		f.invalidate(flash.PPN(ppn))
		f.l2p.del(lba)
	}
}

// collect performs greedy GC in one plane until the free count rises
// above the low-water mark: pick the closed block with the fewest valid
// pages, relocate its valid pages, erase it.
func (f *FTL) collect(t sim.Time, plane int) (sim.Time, error) {
	now := t
	for f.freeCount(plane) <= f.cfg.GCLowWater {
		victim := f.pickVictim(plane)
		if victim < 0 {
			if f.freeCount(plane) > 0 {
				return now, nil // nothing to collect but we can still write
			}
			return now, ErrFull
		}
		f.stats.GCRuns++
		// Relocate valid pages.
		ad := f.planeCoords(plane)
		ad.Block = victim
		for pg := 0; pg < f.geo.PagesPerBlk; pg++ {
			ad.Page = pg
			ppn := f.geo.Compose(ad)
			lba, live := f.p2l.get(uint64(ppn))
			if !live {
				continue
			}
			rdDone := f.arr.ReadPageInto(now, ppn, 0, f.gcBuf)
			dst, ok := f.allocate(plane)
			if !ok {
				return now, ErrFull
			}
			progDone, err := f.arr.ProgramPage(rdDone, dst, f.gcBuf)
			if err != nil {
				return now, fmt.Errorf("ftl gc: %w", err)
			}
			f.invalidate(ppn)
			f.l2p.set(lba, uint64(dst))
			f.p2l.set(uint64(dst), lba)
			adDst := f.geo.Decompose(dst)
			pl := f.geo.GlobalDie(adDst)*f.geo.PlanesPerDie + adDst.Plane
			f.valid[f.blockIndex(pl, adDst.Block)]++
			f.stats.GCWrites++
			now = progDone
		}
		ad.Page = 0
		now = f.arr.EraseBlock(now, f.geo.Compose(ad))
		f.stats.Erases++
		f.recycled[plane] = append(f.recycled[plane], victim)
		f.setFree(plane, victim, true)
	}
	return now, nil
}

// pickVictim returns the closed block in plane with the fewest valid
// pages that is not the active block and not free, or -1 when every
// candidate is fully valid (nothing reclaimable) or none exists.
func (f *FTL) pickVictim(plane int) int {
	best, bestValid := -1, f.geo.PagesPerBlk
	act := f.active[plane].block
	for b := 0; b < f.geo.BlocksPerPln; b++ {
		if b == act || f.isFree(plane, b) {
			continue
		}
		v := f.valid[f.blockIndex(plane, b)]
		if v < bestValid {
			best, bestValid = b, v
		}
	}
	return best
}

// FreeBlocks returns the free-block count of a plane (for tests).
func (f *FTL) FreeBlocks(plane int) int { return f.freeCount(plane) }
