package ftl

import (
	"fmt"

	"hams/internal/checkpoint"
)

// saveIdxMap serializes a radix table: chunk count, then for each
// materialized chunk its index and raw values.
func saveIdxMap(enc *checkpoint.Enc, m *idxMap) {
	live := 0
	for _, c := range m.chunks {
		if c != nil {
			live++
		}
	}
	enc.Count(len(m.chunks))
	enc.Count(live)
	for ci, c := range m.chunks {
		if c == nil {
			continue
		}
		enc.U64(uint64(ci))
		for _, v := range c {
			enc.U64(v)
		}
	}
}

// maxIdxChunks caps the radix spine a restored map may span: 1<<21
// chunks of 256 keys cover half a billion LBAs/PPNs, ~2.5x the 800 GB
// geometry, while bounding the spine allocation a hostile image can
// force to ~50 MB.
const maxIdxChunks = 1 << 21

// restoreIdxMap replaces a radix table from the wire. The live-chunk
// count is bounded by the bytes remaining (each live chunk costs
// 8 + 8*256 wire bytes); the spine length by maxIdxChunks.
func restoreIdxMap(d *checkpoint.Dec, m *idxMap) error {
	total := d.Count(maxIdxChunks)
	live := d.CountSized(8 + 8*idxChunkSize)
	if err := d.Err(); err != nil {
		return err
	}
	m.chunks = make([][]uint64, total)
	for i := 0; i < live; i++ {
		ci := d.U64()
		if err := d.Err(); err != nil {
			return err
		}
		if ci >= uint64(total) {
			return fmt.Errorf("%w: idxMap chunk %d out of range", checkpoint.ErrCorrupt, ci)
		}
		c := make([]uint64, idxChunkSize)
		for j := range c {
			c[j] = d.U64()
		}
		m.chunks[ci] = c
	}
	return d.Err()
}

// SaveState serializes the translation layer: both radix maps, the
// free-block bookkeeping (virgin counters, recycled FIFOs, free
// bitmaps), active-block cursors, valid-page counts, the allocation
// round-robin cursor and the activity stats. The GC staging buffer is
// host-side scratch and is not serialized.
func (f *FTL) SaveState(enc *checkpoint.Enc) {
	saveIdxMap(enc, &f.l2p)
	saveIdxMap(enc, &f.p2l)
	enc.Count(len(f.virginNext))
	for _, v := range f.virginNext {
		enc.I64(int64(v))
	}
	for _, r := range f.recycled {
		enc.Count(len(r))
		for _, b := range r {
			enc.I64(int64(b))
		}
	}
	for _, words := range f.freeBit {
		enc.Count(len(words))
		for _, w := range words {
			enc.U64(w)
		}
	}
	enc.Count(len(f.active))
	for _, a := range f.active {
		enc.I64(int64(a.block))
		enc.I64(int64(a.nextPage))
	}
	enc.Count(len(f.valid))
	for _, v := range f.valid {
		enc.I64(int64(v))
	}
	enc.I64(int64(f.planeRR))
	enc.I64(f.stats.HostReads)
	enc.I64(f.stats.HostWrites)
	enc.I64(f.stats.GCWrites)
	enc.I64(f.stats.GCRuns)
	enc.I64(f.stats.Erases)
	enc.I64(f.stats.UnmappedRead)
}

// RestoreState overlays the translation layer. Per-plane slice lengths
// are structural (derived from the geometry at construction); the
// free bitmaps in particular are carved from one shared backing array,
// so values are copied into the existing sub-slices, never
// reallocated.
func (f *FTL) RestoreState(d *checkpoint.Dec) error {
	if err := restoreIdxMap(d, &f.l2p); err != nil {
		return err
	}
	if err := restoreIdxMap(d, &f.p2l); err != nil {
		return err
	}
	if err := structuralCount(d, "planes", len(f.virginNext)); err != nil {
		return err
	}
	for i := range f.virginNext {
		f.virginNext[i] = int(d.I64())
	}
	for p := range f.recycled {
		n := d.CountSized(8)
		if err := d.Err(); err != nil {
			return err
		}
		f.recycled[p] = f.recycled[p][:0]
		for i := 0; i < n; i++ {
			f.recycled[p] = append(f.recycled[p], int(d.I64()))
		}
	}
	for p := range f.freeBit {
		if err := structuralCount(d, "freeBit words", len(f.freeBit[p])); err != nil {
			return err
		}
		for i := range f.freeBit[p] {
			f.freeBit[p][i] = d.U64()
		}
	}
	if err := structuralCount(d, "active blocks", len(f.active)); err != nil {
		return err
	}
	for i := range f.active {
		f.active[i].block = int(d.I64())
		f.active[i].nextPage = int(d.I64())
	}
	if err := structuralCount(d, "blocks", len(f.valid)); err != nil {
		return err
	}
	for i := range f.valid {
		f.valid[i] = int(d.I64())
	}
	f.planeRR = int(d.I64())
	f.stats.HostReads = d.I64()
	f.stats.HostWrites = d.I64()
	f.stats.GCWrites = d.I64()
	f.stats.GCRuns = d.I64()
	f.stats.Erases = d.I64()
	f.stats.UnmappedRead = d.I64()
	return d.Err()
}

func structuralCount(d *checkpoint.Dec, what string, want int) error {
	n := d.Count(want)
	if err := d.Err(); err != nil {
		return err
	}
	if n != want {
		return fmt.Errorf("%w: %s count %d, want %d", checkpoint.ErrMismatch, what, n, want)
	}
	return nil
}
