package ftl

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"hams/internal/flash"
	"hams/internal/sim"
)

func tinyArray() *flash.Array {
	g := flash.Geometry{
		Channels: 2, PackagesPerC: 1, DiesPerPkg: 1, PlanesPerDie: 1,
		BlocksPerPln: 8, PagesPerBlk: 8, PageBytes: 4096,
	}
	return flash.New(g, flash.ZNAND())
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := New(tinyArray(), DefaultConfig())
	data := []byte("lba 42 payload")
	done, err := f.Write(0, 42, data)
	if err != nil {
		t.Fatal(err)
	}
	_, got := f.Read(done, 42, 0)
	if !bytes.Equal(got[:len(data)], data) {
		t.Fatalf("got %q", got[:len(data)])
	}
	if !f.Mapped(42) {
		t.Fatal("Mapped(42) = false")
	}
}

func TestUnmappedReadIsZeroButPaysMedia(t *testing.T) {
	f := New(tinyArray(), DefaultConfig())
	done, got := f.Read(100, 7, 0)
	// Preconditioned-media model: the read costs a flash access even
	// though no host data was ever written there.
	if done < 100+flash.ZNAND().TRead {
		t.Fatalf("unmapped read too cheap: %v", done-100)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unmapped read must be zero")
		}
	}
	if f.Stats().UnmappedRead != 1 {
		t.Fatal("UnmappedRead not counted")
	}
}

func TestOverwriteReturnsNewData(t *testing.T) {
	f := New(tinyArray(), DefaultConfig())
	var now sim.Time
	for i := 0; i < 5; i++ {
		d, err := f.Write(now, 9, []byte(fmt.Sprintf("version %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		now = d
	}
	_, got := f.Read(now, 9, 0)
	if !bytes.Equal(got[:9], []byte("version 4")) {
		t.Fatalf("got %q", got[:9])
	}
}

func TestTrim(t *testing.T) {
	f := New(tinyArray(), DefaultConfig())
	f.Write(0, 5, []byte{1})
	f.Trim(5)
	if f.Mapped(5) {
		t.Fatal("still mapped after trim")
	}
	_, got := f.Read(0, 5, 0)
	if got[0] != 0 {
		t.Fatal("trimmed LBA must read zero")
	}
	f.Trim(5) // double trim is a no-op
}

func TestGCReclaimsOverwrittenSpace(t *testing.T) {
	f := New(tinyArray(), DefaultConfig())
	// Logical capacity is tiny; hammer one small LBA set far beyond
	// raw capacity. Without GC this would exhaust free blocks.
	var now sim.Time
	for i := 0; i < 500; i++ {
		d, err := f.Write(now, uint64(i%8), []byte{byte(i)})
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		now = d
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("expected GC to run")
	}
	if f.WAF() < 1 {
		t.Fatalf("WAF = %f", f.WAF())
	}
	// Data integrity after heavy GC.
	for l := uint64(0); l < 8; l++ {
		_, got := f.Read(now, l, 0)
		last := 499 - ((499 - int(l)) % 8) // last i < 500 with i%8 == l
		if want := byte(last); got[0] != want {
			t.Fatalf("lba %d = %d, want %d", l, got[0], want)
		}
	}
}

func TestDeviceFullWithAllValidData(t *testing.T) {
	f := New(tinyArray(), Config{OPBlocksPerPlane: 0, GCLowWater: 0})
	var now sim.Time
	var err error
	total := int(f.ExportedPages()) + 2*8*8 // beyond raw capacity, unique LBAs
	full := false
	for i := 0; i < total; i++ {
		now, err = f.Write(now, uint64(i), []byte{1})
		if err == ErrFull {
			full = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !full {
		t.Fatal("expected ErrFull when all data valid")
	}
}

func TestWritesStripeAcrossPlanes(t *testing.T) {
	f := New(tinyArray(), DefaultConfig())
	d0, _ := f.Write(0, 0, []byte{1})
	d1, _ := f.Write(0, 1, []byte{2})
	// Two planes (2 channels x 1 die x 1 plane): consecutive writes
	// should land on different channels and overlap almost fully.
	if d1 > d0+sim.Bandwidth(4096, flash.ZNAND().ChanGBs)+100 {
		t.Fatalf("writes serialized: %v vs %v", d0, d1)
	}
}

func TestExportedPagesExcludesOP(t *testing.T) {
	arr := tinyArray()
	f := New(arr, DefaultConfig())
	raw := arr.Geo.TotalPages()
	if f.ExportedPages() >= raw {
		t.Fatalf("exported %d >= raw %d", f.ExportedPages(), raw)
	}
}

func TestWAFStartsAtOne(t *testing.T) {
	f := New(tinyArray(), DefaultConfig())
	if f.WAF() != 1 {
		t.Fatalf("WAF = %f", f.WAF())
	}
}

// Property: after an arbitrary write/overwrite/trim sequence, every
// mapped LBA reads back the last value written.
func TestFTLLinearizabilityProperty(t *testing.T) {
	f2 := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := New(tinyArray(), DefaultConfig())
		shadow := make(map[uint64]byte)
		var now sim.Time
		for i := 0; i < 300; i++ {
			lba := uint64(rng.Intn(12))
			switch rng.Intn(3) {
			case 0, 1:
				v := byte(rng.Intn(256))
				d, err := f.Write(now, lba, []byte{v})
				if err != nil {
					return false
				}
				now = d
				shadow[lba] = v
			case 2:
				f.Trim(lba)
				delete(shadow, lba)
			}
		}
		for lba, v := range shadow {
			_, got := f.Read(now, lba, 0)
			if got[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: valid-page accounting never goes negative and GC preserves
// the invariant that every l2p entry has a consistent reverse mapping.
func TestMappingBijectionProperty(t *testing.T) {
	f2 := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := New(tinyArray(), DefaultConfig())
		var now sim.Time
		for i := 0; i < 200; i++ {
			d, err := f.Write(now, uint64(rng.Intn(10)), []byte{byte(i)})
			if err != nil {
				return false
			}
			now = d
		}
		// Spot-check bijection through the public API: every mapped
		// LBA must read back *something* unique (programmed bytes).
		seen := make(map[byte]bool)
		for l := uint64(0); l < 10; l++ {
			if !f.Mapped(l) {
				continue
			}
			_, got := f.Read(now, l, 0)
			if seen[got[0]] {
				return false // two LBAs resolved to the same page
			}
			seen[got[0]] = true
		}
		return true
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
