package ftl

import (
	"testing"

	"hams/internal/flash"
	"hams/internal/sim"
)

func benchArray() *flash.Array {
	g := flash.Geometry{
		Channels: 4, PackagesPerC: 1, DiesPerPkg: 2, PlanesPerDie: 1,
		BlocksPerPln: 64, PagesPerBlk: 64, PageBytes: 4096,
	}
	return flash.New(g, flash.ZNAND())
}

// BenchmarkTranslateRead measures the L2P lookup plus media read for a
// mapped LBA — the archive-side cost of every cache fill. ReadInto is
// the hot-path form: the destination is caller scratch, so the
// translate+read pair allocates nothing.
func BenchmarkTranslateRead(b *testing.B) {
	f := New(benchArray(), DefaultConfig())
	const mapped = 256
	buf := make([]byte, f.PageBytes())
	var now sim.Time
	for lba := uint64(0); lba < mapped; lba++ {
		d, err := f.Write(now, lba, buf)
		if err != nil {
			b.Fatal(err)
		}
		now = d
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = f.ReadInto(now, uint64(i)%mapped, 0, buf)
	}
}

// BenchmarkTranslateWrite measures the out-of-place update path:
// allocate a flash page, program it, remap the LBA and invalidate the
// old copy (GC included whenever the free pool drains).
func BenchmarkTranslateWrite(b *testing.B) {
	f := New(benchArray(), DefaultConfig())
	const working = 256
	buf := make([]byte, f.PageBytes())
	var now sim.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := f.Write(now, uint64(i)%working, buf)
		if err != nil {
			b.Fatal(err)
		}
		now = d
	}
}

// TestTranslateReadZeroAllocs pins the fill-path contract: reading a
// mapped LBA into caller scratch allocates nothing.
func TestTranslateReadZeroAllocs(t *testing.T) {
	f := New(benchArray(), DefaultConfig())
	const mapped = 64
	buf := make([]byte, f.PageBytes())
	var now sim.Time
	for lba := uint64(0); lba < mapped; lba++ {
		d, err := f.Write(now, lba, buf)
		if err != nil {
			t.Fatal(err)
		}
		now = d
	}
	var lba uint64
	avg := testing.AllocsPerRun(200, func() {
		now = f.ReadInto(now, lba%mapped, 0, buf)
		lba++
	})
	if avg != 0 {
		t.Fatalf("mapped ReadInto allocates %.1f/op, want 0", avg)
	}
}
