package platform

import (
	"fmt"

	"hams/internal/checkpoint"
	"hams/internal/core"
)

// checkpointable is the private capability the HAMS variants share.
// Other platforms (mmap, optane, flatflash, oracle, …) hold no state a
// SMARTS-style workflow needs to resume — their caches are warmed
// structurally — so Save refuses them rather than writing a misleading
// partial image.
type checkpointable interface {
	Controller() *core.Controller
}

// Save quiesces p and captures its full architectural state into a
// versioned image. warmup records how much leading work (in generator
// steps per thread) produced this state; restore-side scenarios use it
// to fast-forward their streams to the same point.
func Save(p Platform, warmup int64) (*checkpoint.Image, error) {
	cp, ok := p.(checkpointable)
	if !ok {
		return nil, fmt.Errorf("%w: platform %q has no checkpointable state", checkpoint.ErrUnsupported, p.Name())
	}
	img := &checkpoint.Image{
		Version:  checkpoint.SchemaVersion,
		Platform: p.Name(),
		Warmup:   warmup,
	}
	if err := cp.Controller().SaveCheckpoint(img); err != nil {
		return nil, err
	}
	return img, nil
}

// Restore overlays img onto a freshly built p. The platform must be
// constructed with the same name and geometry the image was saved
// from; any divergence is ErrMismatch, detected before state is
// touched where possible.
func Restore(p Platform, img *checkpoint.Image) error {
	cp, ok := p.(checkpointable)
	if !ok {
		return fmt.Errorf("%w: platform %q has no checkpointable state", checkpoint.ErrUnsupported, p.Name())
	}
	if img.Platform != p.Name() {
		return fmt.Errorf("%w: image was saved from %q, restoring onto %q", checkpoint.ErrMismatch, img.Platform, p.Name())
	}
	return cp.Controller().RestoreCheckpoint(img)
}
