package platform

import (
	"testing"

	"hams/internal/mem"
	"hams/internal/sim"
)

func mk(t *testing.T, name string) Platform {
	t.Helper()
	p, err := New(name, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllNamedPlatformsConstruct(t *testing.T) {
	for _, n := range Names() {
		p := mk(t, n)
		if p.Name() != n {
			t.Fatalf("Name() = %q, want %q", p.Name(), n)
		}
		r, err := p.Access(0, mem.Access{Addr: 4096, Size: 64, Op: mem.Read})
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if r.Done <= 0 {
			t.Fatalf("%s: zero latency", n)
		}
	}
	for _, n := range []string{"ull-direct", "ull-buff"} {
		mk(t, n)
	}
	if _, err := New("bogus", Options{}); err == nil {
		t.Fatal("expected error for unknown platform")
	}
}

func TestOracleFastest(t *testing.T) {
	a := mem.Access{Addr: 1 << 20, Size: 64, Op: mem.Read}
	oracle := mk(t, "oracle")
	ro, _ := oracle.Access(0, a)
	for _, n := range []string{"mmap", "flatflash-P", "nvdimm-C", "hams-LE", "hams-TE"} {
		p := mk(t, n)
		r, err := p.Access(0, a)
		if err != nil {
			t.Fatal(err)
		}
		if r.Done < ro.Done {
			t.Fatalf("%s cold access (%v) beat oracle (%v)", n, r.Done, ro.Done)
		}
	}
}

func TestHAMSHitsApproachOracle(t *testing.T) {
	h := mk(t, "hams-TE")
	o := mk(t, "oracle")
	a := mem.Access{Addr: 0, Size: 64, Op: mem.Read}
	r1, _ := h.Access(0, a) // miss
	r2, _ := h.Access(r1.Done, a)
	hitLat := r2.Done - r1.Done
	ro, _ := o.Access(0, a)
	// NVDIMM hit within ~3x of raw DRAM (tag compare + notify).
	if hitLat > 3*ro.Done {
		t.Fatalf("HAMS hit %v vs oracle %v", hitLat, ro.Done)
	}
}

func TestMmapSlowestOnColdMiss(t *testing.T) {
	m := mk(t, "mmap")
	h := mk(t, "hams-TE")
	a := mem.Access{Addr: 1 << 24, Size: 64, Op: mem.Read}
	rm, _ := m.Access(0, a)
	rh, _ := h.Access(0, a)
	if rm.Done <= rh.Done {
		t.Fatalf("mmap cold miss (%v) must exceed hams-TE (%v)", rm.Done, rh.Done)
	}
	if rm.OS == 0 {
		t.Fatal("mmap miss must charge OS time")
	}
	if rh.OS != 0 {
		t.Fatal("HAMS must not charge OS time")
	}
}

func TestMmapSSDVariants(t *testing.T) {
	a := mem.Access{Addr: 1 << 24, Size: 64, Op: mem.Read}
	var lats []sim.Time
	for _, s := range []string{"ull", "nvme", "sata"} {
		p, err := New("mmap", Options{MmapSSD: s})
		if err != nil {
			t.Fatal(err)
		}
		r, _ := p.Access(0, a)
		lats = append(lats, r.Done)
	}
	if !(lats[0] < lats[1] && lats[1] < lats[2]) {
		t.Fatalf("expected ULL < NVMe < SATA cold miss, got %v", lats)
	}
}

func TestOptaneMBeatsOptanePOnReuse(t *testing.T) {
	pp := mk(t, "optane-P")
	pm := mk(t, "optane-M")
	a := mem.Access{Addr: 4096, Size: 8, Op: mem.Read}
	var tp, tm sim.Time
	for i := 0; i < 20; i++ {
		rp, _ := pp.Access(tp, a)
		tp = rp.Done
		rm, _ := pm.Access(tm, a)
		tm = rm.Done
	}
	if tm >= tp {
		t.Fatalf("optane-M (%v) must beat optane-P (%v) on a hot line", tm, tp)
	}
}

func TestOptaneFineGrainWastesBandwidth(t *testing.T) {
	p := mk(t, "optane-P")
	r8, _ := p.Access(0, mem.Access{Addr: 0, Size: 8, Op: mem.Read})
	p2 := mk(t, "optane-P")
	r256, _ := p2.Access(0, mem.Access{Addr: 0, Size: 256, Op: mem.Read})
	// Both touch one 256 B internal block: equal latency.
	if r8.Done != r256.Done {
		t.Fatalf("8B (%v) vs 256B (%v): block mismatch model broken", r8.Done, r256.Done)
	}
}

func TestFlatflashMMIOIsMicroseconds(t *testing.T) {
	p := mk(t, "flatflash-P")
	// Warm the SSD-internal DRAM.
	r1, _ := p.Access(0, mem.Access{Addr: 0, Size: 64, Op: mem.Write})
	r2, _ := p.Access(r1.Done, mem.Access{Addr: 0, Size: 64, Op: mem.Read})
	lat := r2.Done - r1.Done
	if lat < 4*sim.Microsecond || lat > 20*sim.Microsecond {
		t.Fatalf("flatflash 64B access = %v, want ~4.8us", lat)
	}
}

func TestFlatflashMPromotesHotPages(t *testing.T) {
	p := mk(t, "flatflash-M")
	a := mem.Access{Addr: 8192, Size: 64, Op: mem.Read}
	var now sim.Time
	var last sim.Time
	for i := 0; i < 4; i++ {
		r, _ := p.Access(now, a)
		last = r.Done - now
		now = r.Done
	}
	// After promotion the access must be DRAM-fast.
	if last > sim.Microsecond {
		t.Fatalf("hot access still %v after promotion", last)
	}
}

func TestNvdimmCWaitsForRefreshWindow(t *testing.T) {
	p := mk(t, "nvdimm-C")
	r, _ := p.Access(100, mem.Access{Addr: 1 << 20, Size: 64, Op: mem.Read})
	// Miss cost includes waiting for the 7.8us boundary + 48us move.
	if r.Done < 48*sim.Microsecond {
		t.Fatalf("nvdimm-C miss = %v, want >= 48us migration", r.Done)
	}
	// Second access to the same page is a DRAM hit.
	r2, _ := p.Access(r.Done, mem.Access{Addr: 1 << 20, Size: 64, Op: mem.Read})
	if r2.Done-r.Done > sim.Microsecond {
		t.Fatalf("nvdimm-C hit = %v", r2.Done-r.Done)
	}
}

func TestULLBuffBeatsULLDirect(t *testing.T) {
	d := mk(t, "ull-direct")
	b := mk(t, "ull-buff")
	a := mem.Access{Addr: 0, Size: 64, Op: mem.Read}
	var td, tb sim.Time
	for i := 0; i < 10; i++ {
		rd, _ := d.Access(td, a)
		td = rd.Done
		rb, _ := b.Access(tb, a)
		tb = rb.Done
	}
	if tb >= td {
		t.Fatalf("ull-buff (%v) must beat ull-direct (%v) on reuse", tb, td)
	}
}

func TestEnergyInputsNonEmpty(t *testing.T) {
	for _, n := range Names() {
		p := mk(t, n)
		var now sim.Time
		for i := 0; i < 8; i++ {
			r, err := p.Access(now, mem.Access{Addr: uint64(i) * (1 << 20), Size: 64, Op: mem.Write})
			if err != nil {
				t.Fatal(err)
			}
			now = r.Done
		}
		in := p.EnergyInputs()
		activity := in.DRAM.BytesRead + in.DRAM.BytesWrite + in.Flash.Reads + in.Flash.Programs + in.DRAM.Reads + in.DRAM.Writes
		// flatflash-P's writes land in the SSD-internal DRAM (covered
		// by its background-power flag); optane-P's media energy is
		// synthesized from bytes moved.
		if activity == 0 && !in.HasIntDRAM && n != "optane-P" {
			t.Fatalf("%s: no energy activity recorded", n)
		}
	}
}

func TestHAMSPageSizeOption(t *testing.T) {
	p, err := New("hams-TE", Options{HAMSPage: 4 * mem.KiB})
	if err != nil {
		t.Fatal(err)
	}
	hp := p.(*hamsPlatform)
	if hp.Controller().PageBytes() != 4*mem.KiB {
		t.Fatalf("page bytes = %d", hp.Controller().PageBytes())
	}
}
