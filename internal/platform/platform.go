// Package platform assembles the eleven evaluated systems of §VI-A
// behind one interface: mmap (the MMF baseline), optane-P/M,
// flatflash-P/M, nvdimm-C, the four HAMS variants (hams-LP/LE/TP/TE)
// and the 512 GB-NVDIMM oracle — plus the §III-C bypass strategies
// (NVDIMM / ULL / ULL-buff) used by Fig. 7b.
package platform

import (
	"fmt"

	"hams/internal/core"
	"hams/internal/core/tagstore"
	"hams/internal/cpu"
	"hams/internal/dram"
	"hams/internal/energy"
	"hams/internal/flash"
	"hams/internal/mem"
	"hams/internal/osmodel"
	"hams/internal/pcie"
	"hams/internal/qos"
	"hams/internal/sim"
	"hams/internal/ssd"
)

// Platform is a memory system under test.
type Platform interface {
	cpu.MemSystem
	Name() string
	// Warm pre-populates the platform's caches with a hot address
	// range, untimed — the harness's stand-in for the steady state a
	// full-length run would reach (see EXPERIMENTS.md).
	Warm(base, size uint64)
	// EnergyInputs folds the platform's device activity into the
	// energy model's inputs (CPU fields are filled by the harness).
	EnergyInputs() energy.Inputs
}

// Options tunes platform construction.
type Options struct {
	// HAMSPage overrides the MoS page size (Fig. 20a); 0 = 128 KiB.
	HAMSPage uint64
	// HAMSPRPSlots overrides the PRP clone-pool size (ablation).
	HAMSPRPSlots int
	// HAMSWays overrides the MoS tag-array associativity; 0 = the
	// paper's direct-mapped organization.
	HAMSWays int
	// HAMSBanks shards the MoS space across independent controller
	// banks; 0 = the paper's single bank.
	HAMSBanks int
	// HAMSPolicy selects the replacement policy when HAMSWays > 1.
	HAMSPolicy tagstore.Policy
	// HAMSMSHRs sizes each bank's miss-status-register file; 0 or 1 =
	// the paper's blocking miss pipeline, >= 2 enables the
	// non-blocking pipeline (deferred writebacks, miss coalescing,
	// hit-under-miss) with that many outstanding misses per bank.
	HAMSMSHRs int
	// HAMSQueueDepth caps outstanding NVMe commands per bank queue
	// pair; 0 = unbounded (the paper's configuration).
	HAMSQueueDepth int
	// HAMSQoS enables the RDT-style isolation layer on the HAMS
	// variants: per-class way masks confine replacement, per-class
	// MBps limits throttle archive traffic, and the controller
	// monitors per-class occupancy/bandwidth. nil = no QoS (other
	// platforms ignore the table).
	HAMSQoS *qos.Table
	// HAMSQoSPolicy is a sim-time-scheduled timeline of runtime class
	// reprogrammings, latched deterministically at request arrivals
	// (requires HAMSQoS; other platforms ignore it).
	HAMSQoSPolicy []qos.TimedChange
	// HAMSQoSController attaches an SLO feedback controller driven off
	// the MBM sample ticker (requires HAMSQoS; other platforms ignore
	// it).
	HAMSQoSController *qos.Controller
	// HAMSNVDIMM overrides the NVDIMM module size (cache-pressure
	// ablation; the QoS isolation cells use it to provoke contention
	// at bench scale); 0 = the paper's 8 GiB. The pinned region
	// shrinks with the module when the default would not fit.
	HAMSNVDIMM uint64
	// ArchiveChannels overrides the ULL-Flash channel count (ablation).
	ArchiveChannels int
	// ArchiveTLC swaps the archive medium to conventional TLC flash
	// (ablation: what HAMS would be without Z-NAND).
	ArchiveTLC bool
	// MmapSSD selects the storage behind the MMF baseline:
	// "ull" (default), "nvme", "sata" (Fig. 6).
	MmapSSD string
	// OracleBytes sizes the oracle NVDIMM (default 512 GiB).
	OracleBytes uint64
}

// Names lists the Fig. 16 platform order.
func Names() []string {
	return []string{
		"mmap", "flatflash-P", "flatflash-M", "hams-LP", "hams-LE",
		"nvdimm-C", "optane-P", "optane-M", "hams-TP", "hams-TE", "oracle",
	}
}

// AllNames lists every name New accepts: the Fig. 16 platforms plus
// the §III-C bypass strategies and the software HAMS prototype.
// Validators (the job API, CLIs) check against this list so an
// unknown platform is rejected before any simulation state is built.
func AllNames() []string {
	return append(Names(), "hams-SW", "ull-direct", "ull-buff")
}

// Known reports whether New accepts the platform name.
func Known(name string) bool {
	for _, n := range AllNames() {
		if n == name {
			return true
		}
	}
	return false
}

// MappingPage returns the MMU translation granularity a platform maps
// memory with: the HAMS variants map whole MoS pages (Fig. 20a varies
// the size); 0 means the harness's 4 KiB system default. Every driver
// of cpu.Runner (live experiments and trace replay alike) must apply
// the same granularity or identical streams would translate
// differently.
func MappingPage(name string, o Options) uint64 {
	switch name {
	case "hams-LP", "hams-LE", "hams-TP", "hams-TE", "hams-SW":
		if o.HAMSPage != 0 {
			return o.HAMSPage
		}
		return 128 * 1024
	}
	return 0
}

// New constructs a platform by its paper name.
func New(name string, o Options) (Platform, error) {
	switch name {
	case "mmap":
		return newMmap(o)
	case "oracle":
		return newOracle(o)
	case "hams-LP":
		return newHAMS(core.Persist, core.Loose, o)
	case "hams-LE":
		return newHAMS(core.Extend, core.Loose, o)
	case "hams-TP":
		return newHAMS(core.Persist, core.Tight, o)
	case "hams-TE":
		return newHAMS(core.Extend, core.Tight, o)
	case "optane-P":
		return newOptane(false), nil
	case "optane-M":
		return newOptane(true), nil
	case "flatflash-P":
		return newFlatFlash(false), nil
	case "flatflash-M":
		return newFlatFlash(true), nil
	case "nvdimm-C":
		return newNVDIMMC(), nil
	case "hams-SW":
		return newHAMSSoftware(o)
	case "ull-direct":
		return newULLDirect(false), nil
	case "ull-buff":
		return newULLDirect(true), nil
	default:
		return nil, fmt.Errorf("platform: unknown platform %q", name)
	}
}

// ---------------------------------------------------------------------
// mmap: the MMF software baseline.

type mmapPlatform struct {
	mmf *osmodel.MMF
}

func newMmap(o Options) (*mmapPlatform, error) {
	cfg := osmodel.DefaultConfig()
	switch o.MmapSSD {
	case "", "ull":
		cfg.SSD = ssd.ULLFlash()
		cfg.Link = pcie.Gen3x4()
	case "nvme":
		cfg.SSD = ssd.NVMeSSD()
		cfg.Link = pcie.Gen3x4()
	case "sata":
		cfg.SSD = ssd.SATASSD()
		cfg.Link = pcie.SATA6G()
	default:
		return nil, fmt.Errorf("platform: unknown mmap SSD %q", o.MmapSSD)
	}
	return &mmapPlatform{mmf: osmodel.New(cfg)}, nil
}

func (p *mmapPlatform) Name() string { return "mmap" }

func (p *mmapPlatform) Access(t sim.Time, a mem.Access) (cpu.MemResult, error) {
	r := p.mmf.Access(t, a)
	return cpu.MemResult{Done: r.Done, OS: r.OS, Mem: r.Mem, SSD: r.SSD}, nil
}

// Warm pre-populates the OS page cache.
func (p *mmapPlatform) Warm(base, size uint64) { p.mmf.Warm(base, size) }

func (p *mmapPlatform) EnergyInputs() energy.Inputs {
	return energy.Inputs{
		DRAM:       p.mmf.DRAM().Stats(),
		Flash:      p.mmf.Device().FlashStats(),
		HasIntDRAM: p.mmf.Device().HasBuffer(),
	}
}

// MMF exposes the underlying model (Fig. 7a uses its breakdown).
func (p *mmapPlatform) MMF() *osmodel.MMF { return p.mmf }

// ---------------------------------------------------------------------
// oracle: a 512 GB NVDIMM serving everything at DRAM speed.

type oraclePlatform struct {
	d *dram.DDR4
}

func newOracle(o Options) (*oraclePlatform, error) {
	cfg := dram.DefaultConfig()
	cfg.Functional = false
	cfg.Capacity = 512 * mem.GiB
	if o.OracleBytes != 0 {
		cfg.Capacity = o.OracleBytes
	}
	return &oraclePlatform{d: dram.New(cfg)}, nil
}

func (p *oraclePlatform) Name() string { return "oracle" }

func (p *oraclePlatform) Access(t sim.Time, a mem.Access) (cpu.MemResult, error) {
	done := p.d.Access(t, a.Addr, a.Size, a.Op)
	return cpu.MemResult{Done: done, Mem: done - t}, nil
}

// Warm is a no-op: the oracle NVDIMM holds everything already.
func (p *oraclePlatform) Warm(base, size uint64) {}

func (p *oraclePlatform) EnergyInputs() energy.Inputs {
	return energy.Inputs{DRAM: p.d.Stats()}
}

// ---------------------------------------------------------------------
// hams-*: the four HAMS variants wrap the core controller.

type hamsPlatform struct {
	name string
	ctl  *core.Controller
}

func newHAMS(m core.Mode, tp core.Topology, o Options) (*hamsPlatform, error) {
	cfg := core.DefaultConfig(m, tp)
	if o.HAMSPage != 0 {
		cfg.PageBytes = o.HAMSPage
	}
	if o.HAMSPRPSlots != 0 {
		cfg.PRPSlots = o.HAMSPRPSlots
	}
	if o.HAMSWays != 0 {
		cfg.Ways = o.HAMSWays
	}
	if o.HAMSBanks != 0 {
		cfg.Banks = o.HAMSBanks
	}
	if o.HAMSMSHRs != 0 {
		cfg.MSHRs = o.HAMSMSHRs
	}
	if o.HAMSQueueDepth != 0 {
		cfg.QueueDepth = o.HAMSQueueDepth
	}
	cfg.Replacement = o.HAMSPolicy
	cfg.QoS = o.HAMSQoS
	cfg.QoSPolicy = o.HAMSQoSPolicy
	cfg.QoSController = o.HAMSQoSController
	if o.HAMSNVDIMM != 0 {
		cfg.NVDIMM.DRAM.Capacity = o.HAMSNVDIMM
		// Keep the pinned region (queues + PRP pools) a quarter of a
		// small module so most of it remains MoS cache.
		if cfg.PinnedBytes >= o.HAMSNVDIMM {
			cfg.PinnedBytes = o.HAMSNVDIMM / 4
		}
	}
	if o.ArchiveChannels != 0 {
		cfg.SSD.Geometry.Channels = o.ArchiveChannels
	}
	if o.ArchiveTLC {
		cfg.SSD.Timing = flash.VNANDTLC()
	}
	ctl, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	name := "hams-"
	if tp == core.Loose {
		name += "L"
	} else {
		name += "T"
	}
	if m == core.Persist {
		name += "P"
	} else {
		name += "E"
	}
	return &hamsPlatform{name: name, ctl: ctl}, nil
}

func (p *hamsPlatform) Name() string { return p.name }

func (p *hamsPlatform) Access(t sim.Time, a mem.Access) (cpu.MemResult, error) {
	r, err := p.ctl.Access(t, a)
	if err != nil {
		return cpu.MemResult{}, err
	}
	return cpu.MemResult{
		Done:     r.Done,
		Mem:      r.NVDIMM,
		DMA:      r.DMA,
		SSD:      r.SSD + r.Wait,
		Throttle: r.Throttle,
	}, nil
}

// Warm installs the range into the MoS tag array as clean/valid.
func (p *hamsPlatform) Warm(base, size uint64) { p.ctl.Warm(base, size) }

// WarmClass warms on behalf of a QoS class: installs stay inside the
// class's way partition (the replay engine uses it so a partitioned
// tenant's steady state lands where the live run would build it).
func (p *hamsPlatform) WarmClass(base, size uint64, cls qos.ClassID) {
	p.ctl.WarmClass(base, size, cls)
}

func (p *hamsPlatform) EnergyInputs() energy.Inputs {
	return energy.Inputs{
		DRAM:       p.ctl.NVDIMM().Stats(),
		Flash:      p.ctl.Device().FlashStats(),
		HasIntDRAM: p.ctl.Device().HasBuffer(),
	}
}

// Controller exposes the HAMS core (Fig. 18 reads its stats).
func (p *hamsPlatform) Controller() *core.Controller { return p.ctl }

// ---------------------------------------------------------------------
// hams-SW: the software-assisted alternative the paper dismisses in
// §VII — the same NVDIMM-cache-over-ULL-Flash datapath, but every
// cache miss is a page fault the OS must service (context switches and
// fault handling on the critical path). The gap to hams-LE measures
// the value of hardware automation.

type hamsSWPlatform struct {
	ctl   *core.Controller
	costs osmodel.Costs
}

func newHAMSSoftware(o Options) (*hamsSWPlatform, error) {
	cfg := core.DefaultConfig(core.Extend, core.Loose)
	if o.HAMSPage != 0 {
		cfg.PageBytes = o.HAMSPage
	}
	if o.HAMSMSHRs != 0 {
		cfg.MSHRs = o.HAMSMSHRs
	}
	if o.HAMSQueueDepth != 0 {
		cfg.QueueDepth = o.HAMSQueueDepth
	}
	cfg.QoS = o.HAMSQoS
	cfg.QoSPolicy = o.HAMSQoSPolicy
	cfg.QoSController = o.HAMSQoSController
	ctl, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &hamsSWPlatform{ctl: ctl, costs: osmodel.DefaultCosts()}, nil
}

func (p *hamsSWPlatform) Name() string { return "hams-SW" }

func (p *hamsSWPlatform) Access(t sim.Time, a mem.Access) (cpu.MemResult, error) {
	r, err := p.ctl.Access(t, a)
	if err != nil {
		return cpu.MemResult{}, err
	}
	res := cpu.MemResult{Done: r.Done, Mem: r.NVDIMM, DMA: r.DMA, SSD: r.SSD + r.Wait, Throttle: r.Throttle}
	if !r.Hit {
		// The OS services the fault: trap + switches around the block.
		sw := p.costs.FaultEntry + 2*p.costs.ContextSwitch
		res.Done += sw
		res.OS += sw
	}
	return res, nil
}

// Warm installs the hot range into the MoS tag array.
func (p *hamsSWPlatform) Warm(base, size uint64) { p.ctl.Warm(base, size) }

// WarmClass warms on behalf of a QoS class (see hamsPlatform).
func (p *hamsSWPlatform) WarmClass(base, size uint64, cls qos.ClassID) {
	p.ctl.WarmClass(base, size, cls)
}

func (p *hamsSWPlatform) EnergyInputs() energy.Inputs {
	return energy.Inputs{
		DRAM:       p.ctl.NVDIMM().Stats(),
		Flash:      p.ctl.Device().FlashStats(),
		HasIntDRAM: p.ctl.Device().HasBuffer(),
	}
}

// Controller exposes the core (shared with hamsPlatform for stats).
func (p *hamsSWPlatform) Controller() *core.Controller { return p.ctl }
