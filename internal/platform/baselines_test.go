package platform

import (
	"testing"

	"hams/internal/mem"
	"hams/internal/sim"
)

func TestDRAMCacheInsertEvictLRU(t *testing.T) {
	c := newDRAMCache(4*4096, 4096, 1) // 4 pages
	for p := uint64(0); p < 4; p++ {
		if v, d := c.insert(p, p == 0); d {
			t.Fatalf("eviction before full: %d", v)
		}
	}
	// Page 0 (dirty) is the LRU: the next insert must evict it and
	// report the dirty victim for write-back.
	if v, d := c.insert(4, false); !d || v != 0 {
		t.Fatalf("eviction = (%d, %v), want dirty victim 0", v, d)
	}
	// Page 1 (clean) is LRU now: silent eviction.
	if _, d := c.insert(5, false); d {
		t.Fatal("clean eviction reported dirty")
	}
	// Re-inserting a resident page must refresh it, not evict.
	if _, d := c.insert(5, true); d {
		t.Fatal("refresh caused eviction")
	}
	if slot, ok := c.resident(5 * 4096); !ok || !c.dirty[slot] {
		t.Fatal("refresh did not mark dirty")
	}
}

func TestDRAMCachePromotionThreshold(t *testing.T) {
	c := newDRAMCache(16*4096, 4096, 2)
	if c.shouldPromote(0) {
		t.Fatal("promoted on first touch with promoteN=2")
	}
	if !c.shouldPromote(0) {
		t.Fatal("not promoted on second touch")
	}
	// Counter resets after promotion.
	if c.shouldPromote(0) {
		t.Fatal("promoted again on a single touch")
	}
}

func TestDRAMCacheWarmBounded(t *testing.T) {
	c := newDRAMCache(8*4096, 4096, 1)
	c.warm(0, 100*4096) // more than capacity
	if c.lru.Len() != 8 {
		t.Fatalf("warm overfilled: %d pages", c.lru.Len())
	}
}

func TestHAMSSoftwareSlower(t *testing.T) {
	hw := mk(t, "hams-LE")
	sw := mk(t, "hams-SW")
	a := mem.Access{Addr: 1 << 24, Size: 64, Op: mem.Read}
	rh, err := hw.Access(0, a)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sw.Access(0, a)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Done <= rh.Done {
		t.Fatalf("hams-SW miss (%v) not slower than hams-LE (%v)", rs.Done, rh.Done)
	}
	if rs.OS == 0 {
		t.Fatal("hams-SW miss must charge OS time")
	}
	// Hits pay no software cost in either.
	rh2, _ := hw.Access(rh.Done, a)
	rs2, _ := sw.Access(rs.Done, a)
	if rs2.OS != 0 {
		t.Fatal("hams-SW hit charged OS time")
	}
	if (rs2.Done-rs.Done)-(rh2.Done-rh.Done) > 100 {
		t.Fatal("hams-SW hit path diverges from hams-LE")
	}
}

func TestHAMSSoftwareWarmAndEnergy(t *testing.T) {
	p := mk(t, "hams-SW")
	p.Warm(0, 1<<24)
	r, err := p.Access(0, mem.Access{Addr: 0, Size: 64, Op: mem.Read})
	if err != nil {
		t.Fatal(err)
	}
	if r.OS != 0 {
		t.Fatal("warmed access must not fault")
	}
	if p.EnergyInputs().DRAM.Reads == 0 {
		t.Fatal("no DRAM activity recorded")
	}
}

func TestArchiveTLCOptionSlowsMisses(t *testing.T) {
	z, err := New("hams-TE", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tlc, err := New("hams-TE", Options{ArchiveTLC: true})
	if err != nil {
		t.Fatal(err)
	}
	a := mem.Access{Addr: 1 << 24, Size: 64, Op: mem.Read}
	rz, _ := z.Access(0, a)
	rt, _ := tlc.Access(0, a)
	if rt.Done <= rz.Done {
		t.Fatalf("TLC miss (%v) not slower than Z-NAND (%v)", rt.Done, rz.Done)
	}
}

func TestArchiveChannelsOption(t *testing.T) {
	p, err := New("hams-TE", Options{ArchiveChannels: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Sequential misses across many pages: fewer channels serialize.
	var now2 sim.Time
	for i := 0; i < 4; i++ {
		r, err := p.Access(now2, mem.Access{Addr: uint64(i) * 128 * mem.KiB, Size: 64, Op: mem.Read})
		if err != nil {
			t.Fatal(err)
		}
		now2 = r.Done
	}
	d, err := New("hams-TE", Options{})
	if err != nil {
		t.Fatal(err)
	}
	var nowD sim.Time
	for i := 0; i < 4; i++ {
		r, err := d.Access(nowD, mem.Access{Addr: uint64(i) * 128 * mem.KiB, Size: 64, Op: mem.Read})
		if err != nil {
			t.Fatal(err)
		}
		nowD = r.Done
	}
	if now2 <= nowD {
		t.Fatalf("2-channel archive (%v) not slower than 16-channel (%v)", now2, nowD)
	}
}

func TestOptanePXPBufferBackpressure(t *testing.T) {
	p := mk(t, "optane-P").(*optanePlatform)
	// A burst of large writes must eventually hit drain backpressure:
	// later writes complete visibly slower than the first.
	first, _ := p.Access(0, mem.Access{Addr: 0, Size: 4096, Op: mem.Write})
	var prev sim.Time
	for i := 1; i <= 16; i++ {
		r, _ := p.Access(0, mem.Access{Addr: uint64(i) * 8192, Size: 4096, Op: mem.Write})
		prev = r.Done
	}
	if prev <= first.Done {
		t.Fatalf("no XPBuffer backpressure: first=%v later=%v", first.Done, prev)
	}
}

func TestNvdimmCMissAlignsToRefreshWindow(t *testing.T) {
	p := mk(t, "nvdimm-C").(*nvdimmCPlatform)
	// A miss arriving just after a window boundary waits ~tREFI.
	r1, _ := p.Access(1, mem.Access{Addr: 1 << 26, Size: 64, Op: mem.Read})
	if r1.Done < p.tREFI {
		t.Fatalf("miss at t=1 finished %v, before the next window %v", r1.Done, p.tREFI)
	}
}
