package platform

import (
	"hams/internal/cpu"
	"hams/internal/dram"
	"hams/internal/energy"
	"hams/internal/mem"
	"hams/internal/sim"
	"hams/internal/ssd"
)

// zeroLine / zeroPage4K are shared write payloads for the baselines'
// functional-data-free device traffic (their DRAM models are
// non-functional and the devices copy on write, so a shared zero
// buffer is safe and saves an allocation per write).
var (
	zeroLine   [64]byte
	zeroPage4K [4 * mem.KiB]byte
)

// ---------------------------------------------------------------------
// dramCache: a page-granular LRU DRAM cache used by optane-M,
// flatflash-M and nvdimm-C. Backed by a real DDR4 timing model; the
// backend fetches/evicts pages on the slow side. The residency index
// is a flat mem.PageLRU with a slot-indexed dirty bit — note that, as
// in the seed, plain residency probes do not touch recency; only
// insert() refreshes it.

type dramCache struct {
	d         *dram.DDR4
	pageBytes uint64
	capPages  int
	lru       *mem.PageLRU
	dirty     []bool
	promoteN  int // touches before promotion (1 = always cache)
	touches   map[uint64]int
}

func newDRAMCache(capBytes, pageBytes uint64, promoteN int) *dramCache {
	cfg := dram.DefaultConfig()
	cfg.Functional = false
	cfg.Capacity = capBytes
	if promoteN < 1 {
		promoteN = 1
	}
	return &dramCache{
		d:         dram.New(cfg),
		pageBytes: pageBytes,
		capPages:  int(capBytes / pageBytes),
		lru:       mem.NewPageLRU(),
		promoteN:  promoteN,
		touches:   make(map[uint64]int),
	}
}

// resident returns the slot holding addr's page without touching
// recency.
func (c *dramCache) resident(addr uint64) (int32, bool) {
	return c.lru.Get(addr / c.pageBytes)
}

func (c *dramCache) markDirty(slot int32) { c.dirty[slot] = true }

// shouldPromote counts a touch and reports whether the page earned a
// slot in the cache.
func (c *dramCache) shouldPromote(addr uint64) bool {
	pg := addr / c.pageBytes
	c.touches[pg]++
	if c.touches[pg] >= c.promoteN {
		delete(c.touches, pg)
		return true
	}
	return false
}

// warm fills the cache with the pages of [base, base+size) untimed.
func (c *dramCache) warm(base, size uint64) {
	end := base + size
	for addr := base / c.pageBytes * c.pageBytes; addr < end; addr += c.pageBytes {
		if c.lru.Len() >= c.capPages {
			return
		}
		c.insert(addr/c.pageBytes, false)
	}
}

// insert places a page, returning the evicted dirty page (ok=false if
// none; with multiple evictions the last dirty victim wins, as in the
// seed).
func (c *dramCache) insert(page uint64, dirty bool) (uint64, bool) {
	if slot, ok := c.lru.Get(page); ok {
		c.dirty[slot] = c.dirty[slot] || dirty
		c.lru.MoveToFront(slot)
		return 0, false
	}
	var victim uint64
	victimDirty := false
	for c.lru.Len() >= c.capPages {
		vpage, vslot := c.lru.RemoveBack()
		if c.dirty[vslot] {
			victim, victimDirty = vpage, true
			c.dirty[vslot] = false
		}
	}
	slot := c.lru.InsertFront(page)
	for int(slot) >= len(c.dirty) {
		c.dirty = append(c.dirty, false)
	}
	c.dirty[slot] = dirty
	return victim, victimDirty
}

// ---------------------------------------------------------------------
// optane-P / optane-M: Optane DC PMM (App Direct) with its 256 B
// internal block and small XPBuffer; optane-M adds an 8 GB DRAM cache
// in front (sacrificing persistency), per [29]/[66].

type optanePlatform struct {
	name     string
	media    *sim.Resource
	wdrain   *sim.Resource
	cache    *dramCache // nil for optane-P
	readLat  sim.Time
	writeLat sim.Time
	blockB   uint64
	xpBufB   int64
	drainGBs float64

	reads, writes int64
	bytesMoved    int64
	energyDRAM    dram.Stats
}

func newOptane(withDRAM bool) *optanePlatform {
	p := &optanePlatform{
		name:     "optane-P",
		media:    sim.NewResource(),
		wdrain:   sim.NewResource(),
		readLat:  300,
		writeLat: 100,
		blockB:   256,
		xpBufB:   16 * 1024,
		drainGBs: 2.3,
	}
	if withDRAM {
		p.name = "optane-M"
		p.cache = newDRAMCache(8*mem.GiB, 4*mem.KiB, 1)
	}
	return p
}

func (p *optanePlatform) Name() string { return p.name }

// mediaAccess charges one access against the PMM media: every touched
// 256 B internal block costs full block bandwidth — the request-size
// mismatch that hurts Optane on fine-grained workloads (§VI-B).
func (p *optanePlatform) mediaAccess(t sim.Time, a mem.Access) sim.Time {
	blocks := int64(mem.AlignUp(a.Addr+uint64(a.Size), p.blockB)-mem.AlignDown(a.Addr, p.blockB)) / int64(p.blockB)
	p.bytesMoved += blocks * int64(p.blockB)
	if a.Op == mem.Read {
		p.reads += blocks
		_, done := p.media.Acquire(t, sim.Time(blocks)*p.readLat)
		return done
	}
	p.writes += blocks
	// Writes land in the XPBuffer quickly but drain slowly; when the
	// drain backlog exceeds the buffer, the write stalls behind it.
	drain := sim.Bandwidth(blocks*int64(p.blockB), p.drainGBs)
	_, drainDone := p.wdrain.Acquire(t, drain)
	visible := t + sim.Time(blocks)*p.writeLat
	backlog := drainDone - t
	if backlog > sim.Bandwidth(p.xpBufB, p.drainGBs) {
		visible = drainDone // buffer full: write-through behavior
	}
	return visible
}

func (p *optanePlatform) Access(t sim.Time, a mem.Access) (cpu.MemResult, error) {
	if p.cache == nil {
		done := p.mediaAccess(t, a)
		return cpu.MemResult{Done: done, SSD: done - t}, nil
	}
	if slot, ok := p.cache.resident(a.Addr); ok {
		done := p.cache.d.Access(t, a.Addr, a.Size, a.Op)
		if a.Op == mem.Write {
			p.cache.markDirty(slot)
		}
		return cpu.MemResult{Done: done, Mem: done - t}, nil
	}
	// Miss: fetch the 4 KiB page from the media, evict dirty victim.
	pageAddr := mem.AlignDown(a.Addr, p.cache.pageBytes)
	fetchDone := p.mediaAccess(t, mem.Access{Addr: pageAddr, Size: uint32(p.cache.pageBytes), Op: mem.Read})
	if victim, dirty := p.cache.insert(pageAddr/p.cache.pageBytes, a.Op == mem.Write); dirty {
		p.mediaAccess(fetchDone, mem.Access{Addr: victim * p.cache.pageBytes, Size: uint32(p.cache.pageBytes), Op: mem.Write})
	}
	land := p.cache.d.Bulk(fetchDone, pageAddr, uint32(p.cache.pageBytes), mem.Write)
	done := p.cache.d.Access(land, a.Addr, a.Size, a.Op)
	return cpu.MemResult{Done: done, Mem: done - fetchDone, SSD: fetchDone - t}, nil
}

// Warm pre-populates the DRAM cache (no-op for optane-P).
func (p *optanePlatform) Warm(base, size uint64) {
	if p.cache != nil {
		p.cache.warm(base, size)
	}
}

func (p *optanePlatform) EnergyInputs() energy.Inputs {
	in := energy.Inputs{}
	if p.cache != nil {
		in.DRAM = p.cache.d.Stats()
	}
	// Optane media energy is folded into the NVDIMM bucket via a
	// synthetic byte count (the paper's Fig. 19 has no Optane bar;
	// energy for optane platforms is reported but not decomposed).
	in.DRAM.BytesRead += p.bytesMoved
	return in
}

// ---------------------------------------------------------------------
// flatflash-P / flatflash-M: byte-addressable SSD over MMIO [1].

type flatflashPlatform struct {
	name    string
	dev     *ssd.Device
	mmioLat sim.Time
	mmio    *sim.Resource
	cache   *dramCache // flatflash-M promotes hot pages to host DRAM
}

func newFlatFlash(hostCache bool) *flatflashPlatform {
	p := &flatflashPlatform{
		name:    "flatflash-P",
		dev:     ssd.New(ssd.ULLFlash()),
		mmioLat: 4800 - 100, // 4.8 us per 64 B access incl. device DRAM
		mmio:    sim.NewResource(),
	}
	if hostCache {
		p.name = "flatflash-M"
		p.cache = newDRAMCache(8*mem.GiB, 4*mem.KiB, 2)
	}
	return p
}

func (p *flatflashPlatform) Name() string { return p.name }

// mmioAccess is one cache-line access tunneled over PCIe MMIO: 4.8 us
// when the SSD-internal DRAM holds the page, plus Z-NAND time when not.
func (p *flatflashPlatform) mmioAccess(t sim.Time, a mem.Access) sim.Time {
	lines := int64(mem.AlignUp(a.Addr+uint64(a.Size), 64)-mem.AlignDown(a.Addr, 64)) / 64
	lba := a.Addr / p.dev.PageBytes()
	var devDone sim.Time
	if a.Op == mem.Read {
		devDone = p.dev.ReadInto(t, lba, 64, nil)
	} else {
		devDone, _ = p.dev.Write(t, lba, zeroLine[:], false)
	}
	_, mmioDone := p.mmio.Acquire(t, sim.Time(lines)*p.mmioLat)
	if devDone > mmioDone {
		return devDone
	}
	return mmioDone
}

func (p *flatflashPlatform) Access(t sim.Time, a mem.Access) (cpu.MemResult, error) {
	if p.cache == nil {
		done := p.mmioAccess(t, a)
		return cpu.MemResult{Done: done, SSD: done - t}, nil
	}
	if slot, ok := p.cache.resident(a.Addr); ok {
		done := p.cache.d.Access(t, a.Addr, a.Size, a.Op)
		if a.Op == mem.Write {
			p.cache.markDirty(slot)
		}
		return cpu.MemResult{Done: done, Mem: done - t}, nil
	}
	done := p.mmioAccess(t, a)
	res := cpu.MemResult{Done: done, SSD: done - t}
	if p.cache.shouldPromote(a.Addr) {
		// Migrate the hot page into host DRAM (background copy).
		pageAddr := mem.AlignDown(a.Addr, p.cache.pageBytes)
		d := p.dev.ReadInto(done, pageAddr/p.cache.pageBytes, 0, nil)
		land := p.cache.d.Bulk(d, pageAddr, uint32(p.cache.pageBytes), mem.Write)
		if victim, dirty := p.cache.insert(pageAddr/p.cache.pageBytes, a.Op == mem.Write); dirty {
			// FlatFlash cannot guarantee persistency for host-cached
			// dirty pages; the write-back is best-effort.
			p.dev.Write(land, victim*p.cache.pageBytes/p.dev.PageBytes(), zeroPage4K[:p.cache.pageBytes], false)
		}
	}
	return res, nil
}

// Warm pre-populates the host DRAM cache (no-op for flatflash-P).
func (p *flatflashPlatform) Warm(base, size uint64) {
	if p.cache != nil {
		p.cache.warm(base, size)
	}
}

func (p *flatflashPlatform) EnergyInputs() energy.Inputs {
	in := energy.Inputs{Flash: p.dev.FlashStats(), HasIntDRAM: true}
	if p.cache != nil {
		in.DRAM = p.cache.d.Stats()
	}
	return in
}

// ---------------------------------------------------------------------
// nvdimm-C: flash on the DRAM PHY, with page migration restricted to
// DRAM refresh windows [42].

type nvdimmCPlatform struct {
	cache  *dramCache
	dev    *ssd.Device
	tREFI  sim.Time
	migLat sim.Time
}

func newNVDIMMC() *nvdimmCPlatform {
	return &nvdimmCPlatform{
		cache:  newDRAMCache(8*mem.GiB, 4*mem.KiB, 1),
		dev:    ssd.New(ssd.ULLFlashNoBuffer()),
		tREFI:  7800,
		migLat: 48 * sim.Microsecond, // [42]: up to 48 us per page move
	}
}

func (p *nvdimmCPlatform) Name() string { return "nvdimm-C" }

func (p *nvdimmCPlatform) Access(t sim.Time, a mem.Access) (cpu.MemResult, error) {
	if slot, ok := p.cache.resident(a.Addr); ok {
		done := p.cache.d.Access(t, a.Addr, a.Size, a.Op)
		if a.Op == mem.Write {
			p.cache.markDirty(slot)
		}
		return cpu.MemResult{Done: done, Mem: done - t}, nil
	}
	// Miss: wait for the next refresh window, then migrate.
	window := ((t + p.tREFI - 1) / p.tREFI) * p.tREFI
	devDone := p.dev.ReadInto(window, a.Addr/p.dev.PageBytes(), 0, nil)
	migDone := devDone + p.migLat
	if victim, dirty := p.cache.insert(a.Addr/p.cache.pageBytes, a.Op == mem.Write); dirty {
		p.dev.Write(migDone, victim*p.cache.pageBytes/p.dev.PageBytes(), zeroPage4K[:p.cache.pageBytes], false)
	}
	done := p.cache.d.Access(migDone, a.Addr, a.Size, a.Op)
	return cpu.MemResult{Done: done, Mem: done - migDone, SSD: devDone - window, DMA: migDone - devDone + (window - t)}, nil
}

// Warm pre-populates the DRAM cache.
func (p *nvdimmCPlatform) Warm(base, size uint64) { p.cache.warm(base, size) }

func (p *nvdimmCPlatform) EnergyInputs() energy.Inputs {
	return energy.Inputs{DRAM: p.cache.d.Stats(), Flash: p.dev.FlashStats()}
}

// ---------------------------------------------------------------------
// ull-direct / ull-buff: the Fig. 7b bypass strategies — serve every
// L2 miss straight from the ULL-Flash (optionally behind a small page
// buffer) with no other machinery.

type ullDirectPlatform struct {
	name  string
	dev   *ssd.Device
	cache *dramCache
}

func newULLDirect(buffered bool) *ullDirectPlatform {
	p := &ullDirectPlatform{name: "ull-direct", dev: ssd.New(ssd.ULLFlashNoBuffer())}
	if buffered {
		p.name = "ull-buff"
		p.cache = newDRAMCache(64*mem.MiB, 4*mem.KiB, 1)
	}
	return p
}

func (p *ullDirectPlatform) Name() string { return p.name }

func (p *ullDirectPlatform) Access(t sim.Time, a mem.Access) (cpu.MemResult, error) {
	if p.cache != nil {
		if _, ok := p.cache.resident(a.Addr); ok {
			done := p.cache.d.Access(t, a.Addr, a.Size, a.Op)
			return cpu.MemResult{Done: done, Mem: done - t}, nil
		}
	}
	lba := a.Addr / p.dev.PageBytes()
	var done sim.Time
	if a.Op == mem.Read {
		done = p.dev.ReadInto(t, lba, 0, nil)
	} else {
		done, _ = p.dev.Write(t, lba, zeroLine[:], false)
	}
	if p.cache != nil {
		p.cache.insert(a.Addr/p.cache.pageBytes, false)
	}
	return cpu.MemResult{Done: done, SSD: done - t}, nil
}

// Warm pre-populates the page buffer (no-op for ull-direct).
func (p *ullDirectPlatform) Warm(base, size uint64) {
	if p.cache != nil {
		p.cache.warm(base, size)
	}
}

func (p *ullDirectPlatform) EnergyInputs() energy.Inputs {
	in := energy.Inputs{Flash: p.dev.FlashStats()}
	if p.cache != nil {
		in.DRAM = p.cache.d.Stats()
	}
	return in
}
