package sim

import "testing"

// benchHandler is a persistent sim.Handler; OnEvent only counts, so
// the benchmarks below time the heap, not the callback.
type benchHandler struct{ fired int64 }

func (h *benchHandler) OnEvent(at Time, a0, a1 int64) { h.fired++ }

// BenchmarkScheduleCallAdvance measures the steady-state event loop:
// one ScheduleCall plus the AdvanceTo that fires it, with the heap
// kept shallow (the common simulator shape: a handful of busy-clear /
// completion events pending at once).
func BenchmarkScheduleCallAdvance(b *testing.B) {
	e := NewEngine()
	h := &benchHandler{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := Time(i) * 10
		e.ScheduleCall(t+5, h, 0, int64(i))
		e.AdvanceTo(t + 10)
	}
	if h.fired != int64(b.N) {
		b.Fatalf("fired %d, want %d", h.fired, b.N)
	}
}

// BenchmarkScheduleCallDeepHeap keeps ~1024 events pending, so every
// push/pop pays the full sift depth of a realistically loaded heap.
func BenchmarkScheduleCallDeepHeap(b *testing.B) {
	const depth = 1024
	e := NewEngine()
	h := &benchHandler{}
	for i := 0; i < depth; i++ {
		e.ScheduleCall(Time(i)*10+5, h, 0, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := Time(i) * 10
		e.ScheduleCall(t+depth*10+5, h, 0, int64(i))
		e.AdvanceTo(t + 10)
	}
	b.StopTimer()
	e.Drain()
}

// BenchmarkScheduleClosureAdvance is the closure-form counterpart of
// BenchmarkScheduleCallAdvance — the before/after pair documents what
// ScheduleCall buys on the hot path.
func BenchmarkScheduleClosureAdvance(b *testing.B) {
	e := NewEngine()
	var fired int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := Time(i) * 10
		e.Schedule(t+5, func(Time) { fired++ })
		e.AdvanceTo(t + 10)
	}
	if fired != int64(b.N) {
		b.Fatalf("fired %d, want %d", fired, b.N)
	}
}

// TestScheduleCallZeroAllocs pins the allocation-free contract of the
// handler-form event loop: once the heap slice has grown its spare
// capacity, schedule+fire allocates nothing.
func TestScheduleCallZeroAllocs(t *testing.T) {
	e := NewEngine()
	h := &benchHandler{}
	var now Time
	// Warm the heap's spare capacity.
	for i := 0; i < 64; i++ {
		e.ScheduleCall(now+5, h, 0, int64(i))
		now += 10
		e.AdvanceTo(now)
	}
	avg := testing.AllocsPerRun(200, func() {
		e.ScheduleCall(now+5, h, 0, 0)
		now += 10
		e.AdvanceTo(now)
	})
	if avg != 0 {
		t.Fatalf("schedule+fire allocates %.1f/op, want 0", avg)
	}
}
