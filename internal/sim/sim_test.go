package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleFiresInOrder(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(30, func(now Time) { fired = append(fired, now) })
	e.Schedule(10, func(now Time) { fired = append(fired, now) })
	e.Schedule(20, func(now Time) { fired = append(fired, now) })
	e.AdvanceTo(25)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 20 {
		t.Fatalf("fired = %v, want [10 20]", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v, want 25", e.Now())
	}
	e.AdvanceTo(100)
	if len(fired) != 3 || fired[2] != 30 {
		t.Fatalf("fired = %v, want third event at 30", fired)
	}
}

func TestEqualTimeEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(Time) { order = append(order, i) })
	}
	e.AdvanceTo(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestScheduleInPastClampsToNow(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(100)
	var at Time = -1
	e.Schedule(50, func(now Time) { at = now })
	e.AdvanceTo(100)
	if at != 100 {
		t.Fatalf("past event fired at %v, want 100", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func(now Time) {
		fired = append(fired, now)
		e.Schedule(now+5, func(n2 Time) { fired = append(fired, n2) })
	})
	e.AdvanceTo(20)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [10 15]", fired)
	}
}

func TestNestedSchedulingBeyondHorizonDefers(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func(now Time) {
		e.Schedule(now+100, func(n2 Time) { fired = append(fired, n2) })
	})
	e.AdvanceTo(20)
	if len(fired) != 0 {
		t.Fatalf("event beyond horizon fired early: %v", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.AdvanceTo(200)
	if len(fired) != 1 || fired[0] != 110 {
		t.Fatalf("fired = %v, want [110]", fired)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func(Time) { fired = true })
	e.Cancel(ev)
	e.AdvanceTo(20)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel and cancel-after-fire must not panic.
	e.Cancel(ev)
	ev2 := e.Schedule(30, func(Time) {})
	e.AdvanceTo(40)
	e.Cancel(ev2)
}

func TestDrain(t *testing.T) {
	e := NewEngine()
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i*10), func(Time) {})
	}
	n := e.Drain()
	if n != 5 {
		t.Fatalf("Drain fired %d, want 5", n)
	}
	if e.Now() != 50 {
		t.Fatalf("Now() = %v, want 50", e.Now())
	}
}

func TestCancelMiddleEventPreservesOrder(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func(n Time) { fired = append(fired, n) })
	mid := e.Schedule(20, func(n Time) { fired = append(fired, n) })
	e.Schedule(30, func(n Time) { fired = append(fired, n) })
	e.Cancel(mid)
	e.AdvanceTo(40)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 30 {
		t.Fatalf("fired = %v, want [10 30]", fired)
	}
}

func TestCancelFromInsideCallback(t *testing.T) {
	e := NewEngine()
	fired := false
	var victim EventID
	e.Schedule(10, func(Time) { e.Cancel(victim) })
	victim = e.Schedule(20, func(Time) { fired = true })
	e.AdvanceTo(30)
	if fired {
		t.Fatal("event cancelled by an earlier callback still fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after cancel-in-callback", e.Pending())
	}
}

func TestDrainFiresNestedEvents(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(10, func(now Time) {
		fired = append(fired, now)
		e.Schedule(now+100, func(n2 Time) { fired = append(fired, n2) })
	})
	n := e.Drain()
	if n != 2 {
		t.Fatalf("Drain fired %d, want 2 (nested event included)", n)
	}
	if len(fired) != 2 || fired[1] != 110 || e.Now() != 110 {
		t.Fatalf("fired = %v, now = %v", fired, e.Now())
	}
}

func TestDrainEmptyIsNoop(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(42)
	if n := e.Drain(); n != 0 {
		t.Fatalf("Drain on empty heap fired %d", n)
	}
	if e.Now() != 42 {
		t.Fatalf("Drain moved the clock to %v", e.Now())
	}
}

func TestPastEventsFireInScheduleOrder(t *testing.T) {
	// Several events scheduled in the past all clamp to now and must
	// fire in the order they were scheduled, before any future event.
	e := NewEngine()
	e.AdvanceTo(100)
	var fired []int
	e.Schedule(150, func(Time) { fired = append(fired, 99) })
	for i := 0; i < 3; i++ {
		i := i
		e.Schedule(Time(10*i), func(Time) { fired = append(fired, i) })
	}
	e.AdvanceTo(200)
	want := []int{0, 1, 2, 99}
	if len(fired) != 4 {
		t.Fatalf("fired = %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestAfterSchedulesRelativeToNow(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(100)
	var at Time = -1
	e.After(25, func(now Time) { at = now })
	if next := e.NextEventAt(); next != 125 {
		t.Fatalf("NextEventAt = %v, want 125", next)
	}
	e.AdvanceTo(200)
	if at != 125 {
		t.Fatalf("After fired at %v, want 125", at)
	}
	if e.NextEventAt() != MaxTime {
		t.Fatal("NextEventAt on empty heap must be MaxTime")
	}
}

func TestAdvanceToNeverRewinds(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(100)
	e.AdvanceTo(50)
	if e.Now() != 100 {
		t.Fatalf("Now() = %v, want 100 (no rewind)", e.Now())
	}
}

func TestEngineReset(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func(Time) {})
	e.AdvanceTo(5)
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d", e.Now(), e.Pending())
	}
}

func TestResourceFCFS(t *testing.T) {
	r := NewResource()
	s, d := r.Acquire(0, 10)
	if s != 0 || d != 10 {
		t.Fatalf("first: start=%v done=%v", s, d)
	}
	// Arrives while busy: queues.
	s, d = r.Acquire(5, 10)
	if s != 10 || d != 20 {
		t.Fatalf("second: start=%v done=%v, want 10,20", s, d)
	}
	// Arrives after idle: starts immediately.
	s, d = r.Acquire(50, 5)
	if s != 50 || d != 55 {
		t.Fatalf("third: start=%v done=%v, want 50,55", s, d)
	}
	if r.Served() != 3 {
		t.Fatalf("Served() = %d, want 3", r.Served())
	}
	if r.BusyTime() != 25 {
		t.Fatalf("BusyTime() = %v, want 25", r.BusyTime())
	}
	if r.QueueDelay() != 5 {
		t.Fatalf("QueueDelay() = %v, want 5", r.QueueDelay())
	}
}

func TestResourcePeekDoesNotReserve(t *testing.T) {
	r := NewResource()
	r.Acquire(0, 100)
	if got := r.Peek(10); got != 100 {
		t.Fatalf("Peek(10) = %v, want 100", got)
	}
	if got := r.Peek(200); got != 200 {
		t.Fatalf("Peek(200) = %v, want 200", got)
	}
	if r.Served() != 1 {
		t.Fatal("Peek changed state")
	}
}

func TestPoolDispatchesToEarliestFree(t *testing.T) {
	p := NewPool(2)
	_, d1 := p.Acquire(0, 10)
	_, d2 := p.Acquire(0, 10)
	if d1 != 10 || d2 != 10 {
		t.Fatalf("two servers should run in parallel: %v %v", d1, d2)
	}
	s3, d3 := p.Acquire(0, 10)
	if s3 != 10 || d3 != 20 {
		t.Fatalf("third request: start=%v done=%v, want 10,20", s3, d3)
	}
}

func TestPoolAcquireServer(t *testing.T) {
	p := NewPool(4)
	_, d := p.AcquireServer(2, 5, 7)
	if d != 12 {
		t.Fatalf("done = %v, want 12", d)
	}
	if p.ServerNextFree(2) != 12 {
		t.Fatalf("ServerNextFree(2) = %v", p.ServerNextFree(2))
	}
	if p.ServerNextFree(0) != 0 {
		t.Fatalf("ServerNextFree(0) = %v, want 0", p.ServerNextFree(0))
	}
	s, _ := p.AcquireServer(2, 5, 1)
	if s != 12 {
		t.Fatalf("queued start = %v, want 12", s)
	}
}

func TestPoolMinSize(t *testing.T) {
	p := NewPool(0)
	if p.Size() != 1 {
		t.Fatalf("Size() = %d, want clamped to 1", p.Size())
	}
}

func TestBandwidth(t *testing.T) {
	// 4 KB at 4 GB/s = 1024 ns.
	if got := Bandwidth(4096, 4); got != 1024 {
		t.Fatalf("Bandwidth(4096, 4) = %v, want 1024", got)
	}
	// 4 KB at 20 GB/s ≈ 205 ns (rounded).
	if got := Bandwidth(4096, 20); got != 205 {
		t.Fatalf("Bandwidth(4096, 20) = %v, want 205", got)
	}
	if got := Bandwidth(0, 4); got != 0 {
		t.Fatalf("Bandwidth(0,4) = %v, want 0", got)
	}
	if got := Bandwidth(100, 0); got != 0 {
		t.Fatalf("Bandwidth(100,0) = %v, want 0", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

// recorder collects handler events for ScheduleCall tests.
type recorder struct {
	got [][3]int64
}

func (r *recorder) OnEvent(at Time, a0, a1 int64) {
	r.got = append(r.got, [3]int64{int64(at), a0, a1})
}

func TestScheduleCallFiresWithArgs(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	e.ScheduleCall(20, r, 7, 8)
	e.ScheduleCall(10, r, 1, 2)
	e.AdvanceTo(30)
	want := [][3]int64{{10, 1, 2}, {20, 7, 8}}
	if len(r.got) != 2 || r.got[0] != want[0] || r.got[1] != want[1] {
		t.Fatalf("got %v, want %v", r.got, want)
	}
}

func TestScheduleCallPassesScheduledTime(t *testing.T) {
	// An event scheduled in the past clamps to now; the handler must
	// receive the clamped (effective) schedule time.
	e := NewEngine()
	e.AdvanceTo(100)
	r := &recorder{}
	e.ScheduleCall(50, r, 0, 0)
	e.AdvanceTo(100)
	if len(r.got) != 1 || r.got[0][0] != 100 {
		t.Fatalf("got %v, want at=100", r.got)
	}
}

func TestScheduleCallAndScheduleShareOrdering(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	var order []int64
	e.Schedule(5, func(Time) { order = append(order, -1) })
	e.ScheduleCall(5, r, 10, 0)
	e.Schedule(5, func(Time) { order = append(order, -2) })
	e.AdvanceTo(5)
	if len(r.got) != 1 {
		t.Fatalf("handler events = %v", r.got)
	}
	// Closure at seq1 fired first, handler second, closure at seq3 last.
	if len(order) != 2 || order[0] != -1 || order[1] != -2 {
		t.Fatalf("closure order = %v", order)
	}
}

func TestCancelScheduleCall(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	id := e.ScheduleCall(10, r, 1, 1)
	e.Cancel(id)
	e.AdvanceTo(20)
	if len(r.got) != 0 {
		t.Fatalf("cancelled handler event fired: %v", r.got)
	}
	e.Cancel(id) // double cancel is a no-op
	e.Cancel(0)  // zero id is a no-op
}

// Property: for any set of events, AdvanceTo(max) fires all of them in
// nondecreasing timestamp order.
func TestEventOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []Time
		var max Time
		for _, r := range raw {
			at := Time(r)
			if at > max {
				max = at
			}
			e.Schedule(at, func(now Time) { fired = append(fired, now) })
		}
		e.AdvanceTo(max)
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a FCFS resource fed nondecreasing arrivals never has a
// request start before its arrival nor before the previous completion.
func TestResourceFCFSProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource()
		var arrive, prevDone Time
		for i := 0; i < int(n); i++ {
			arrive += Time(rng.Intn(50))
			svc := Time(rng.Intn(30) + 1)
			start, done := r.Acquire(arrive, svc)
			if start < arrive || start < prevDone || done != start+svc {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a Pool of k servers is work-conserving: total busy time
// never exceeds k * makespan, and equals the sum of service times.
func TestPoolWorkConservationProperty(t *testing.T) {
	f := func(seed int64, n uint8, k uint8) bool {
		servers := int(k%8) + 1
		rng := rand.New(rand.NewSource(seed))
		p := NewPool(servers)
		var arrive, makespan, totalSvc Time
		for i := 0; i < int(n); i++ {
			arrive += Time(rng.Intn(20))
			svc := Time(rng.Intn(30) + 1)
			totalSvc += svc
			_, done := p.Acquire(arrive, svc)
			if done > makespan {
				makespan = done
			}
		}
		if p.BusyTime() != totalSvc {
			return false
		}
		return p.BusyTime() <= Time(servers)*makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
