package sim

// Resource models a single FCFS server. A request arriving at time t
// with service time s begins at max(t, nextFree) and completes at
// begin+s. Arrivals must be presented in nondecreasing time order for
// the FCFS semantics to be exact; the multi-core driver guarantees this
// by always advancing the core with the smallest local time.
type Resource struct {
	nextFree Time
	busy     Time // accumulated busy time, for utilization stats
	served   int64
	waited   Time // accumulated queueing delay
}

// NewResource returns an idle resource.
func NewResource() *Resource { return &Resource{} }

// Acquire reserves the server for a request arriving at t with service
// time service. It returns the start and completion times.
func (r *Resource) Acquire(t, service Time) (start, done Time) {
	start = t
	if r.nextFree > start {
		start = r.nextFree
	}
	done = start + service
	r.nextFree = done
	r.busy += service
	r.served++
	r.waited += start - t
	return start, done
}

// Peek returns the time at which a request arriving at t would start
// service, without reserving anything.
func (r *Resource) Peek(t Time) Time {
	if r.nextFree > t {
		return r.nextFree
	}
	return t
}

// NextFree returns the time at which the server becomes idle.
func (r *Resource) NextFree() Time { return r.nextFree }

// BusyTime returns the total time the server has spent in service.
func (r *Resource) BusyTime() Time { return r.busy }

// Served returns the number of requests serviced.
func (r *Resource) Served() int64 { return r.served }

// QueueDelay returns the accumulated time requests spent waiting.
func (r *Resource) QueueDelay() Time { return r.waited }

// Utilization returns busy time divided by elapsed time up to now.
func (r *Resource) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(r.busy) / float64(now)
}

// Reset returns the resource to the idle state and clears statistics.
func (r *Resource) Reset() { *r = Resource{} }

// Pool models k identical FCFS servers (e.g. flash dies behind one
// scheduler, or the per-queue parallelism of an NVMe device). A request
// is dispatched to the earliest-free server.
type Pool struct {
	servers []Time
	busy    Time
	served  int64
}

// NewPool returns a pool of k idle servers. k must be >= 1.
func NewPool(k int) *Pool {
	if k < 1 {
		k = 1
	}
	return &Pool{servers: make([]Time, k)}
}

// Size returns the number of servers in the pool.
func (p *Pool) Size() int { return len(p.servers) }

// Acquire dispatches a request arriving at t with the given service
// time to the earliest-free server, returning start and completion.
func (p *Pool) Acquire(t, service Time) (start, done Time) {
	best := 0
	for i, nf := range p.servers {
		if nf < p.servers[best] {
			best = i
		}
		_ = nf
	}
	start = t
	if p.servers[best] > start {
		start = p.servers[best]
	}
	done = start + service
	p.servers[best] = done
	p.busy += service
	p.served++
	return start, done
}

// AcquireServer reserves a specific server (e.g. a die addressed by the
// FTL). It returns start and completion times.
func (p *Pool) AcquireServer(i int, t, service Time) (start, done Time) {
	start = t
	if p.servers[i] > start {
		start = p.servers[i]
	}
	done = start + service
	p.servers[i] = done
	p.busy += service
	p.served++
	return start, done
}

// ServerNextFree returns when server i becomes idle.
func (p *Pool) ServerNextFree(i int) Time { return p.servers[i] }

// BusyTime returns the total service time accumulated across servers.
func (p *Pool) BusyTime() Time { return p.busy }

// Served returns the number of requests serviced.
func (p *Pool) Served() int64 { return p.served }

// Reset idles every server and clears statistics.
func (p *Pool) Reset() {
	for i := range p.servers {
		p.servers[i] = 0
	}
	p.busy = 0
	p.served = 0
}

// Bandwidth converts a byte count and a rate in GB/s into a transfer
// duration. Rates are decimal gigabytes (1e9 bytes) per second, as in
// the paper's interface budgets (PCIe 3.0 x4 = 4 GB/s, DDR4 = 20 GB/s).
func Bandwidth(bytes int64, gbps float64) Time {
	if gbps <= 0 || bytes <= 0 {
		return 0
	}
	ns := float64(bytes) / gbps // bytes / (bytes/ns) since 1 GB/s = 1 B/ns
	return Time(ns + 0.5)
}
