package sim

import (
	"fmt"

	"hams/internal/checkpoint"
)

// SaveState serializes the clock and the scheduling cursor. The event
// heap itself is never serialized: callers quiesce (Drain) first, so
// Pending() is zero at every save boundary. seq travels with the image
// because it tie-breaks equal-time events — a restored run must hand
// out the same sequence numbers the live run would.
func (e *Engine) SaveState(enc *checkpoint.Enc) {
	enc.I64(int64(e.now))
	enc.I64(e.seq)
}

// RestoreState overlays the clock and cursor, discarding any pending
// events (the image was taken quiesced, so a freshly built engine has
// none worth keeping).
func (e *Engine) RestoreState(d *checkpoint.Dec) error {
	e.now = Time(d.I64())
	e.seq = d.I64()
	e.nodes = e.nodes[:0]
	return d.Err()
}

// SaveState serializes the server horizon and its counters.
func (r *Resource) SaveState(enc *checkpoint.Enc) {
	enc.I64(int64(r.nextFree))
	enc.I64(int64(r.busy))
	enc.I64(r.served)
	enc.I64(int64(r.waited))
}

// RestoreState overlays the server horizon and counters.
func (r *Resource) RestoreState(d *checkpoint.Dec) error {
	r.nextFree = Time(d.I64())
	r.busy = Time(d.I64())
	r.served = d.I64()
	r.waited = Time(d.I64())
	return d.Err()
}

// SaveState serializes every server's horizon plus the pool counters.
func (p *Pool) SaveState(enc *checkpoint.Enc) {
	enc.Count(len(p.servers))
	for _, s := range p.servers {
		enc.I64(int64(s))
	}
	enc.I64(int64(p.busy))
	enc.I64(p.served)
}

// RestoreState overlays the pool. The server count is structural (it
// comes from configuration, not the wire), so a mismatch is corruption.
func (p *Pool) RestoreState(d *checkpoint.Dec) error {
	n := d.Count(len(p.servers))
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(p.servers) {
		return fmt.Errorf("%w: pool has %d servers, image has %d", checkpoint.ErrMismatch, len(p.servers), n)
	}
	for i := range p.servers {
		p.servers[i] = Time(d.I64())
	}
	p.busy = Time(d.I64())
	p.served = d.I64()
	return d.Err()
}
