// Package sim provides the timing substrate used by every device model
// in the HAMS simulator: a virtual nanosecond clock, an event heap for
// deferred state mutation, and occupancy-based queueing resources.
//
// The simulator uses a hybrid style. Device service times are computed
// analytically by Resource/Pool occupancy models (a request arriving at
// time t on a busy server starts at max(t, nextFree)), which is exact
// for FCFS servers fed with nondecreasing arrival times. Anything that
// must mutate shared state at a future instant (busy-bit clearing,
// wait-queue release, refresh windows) is registered on the Engine's
// event heap and applied lazily by AdvanceTo before the next access.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in nanoseconds.
type Time int64

// Common durations, in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time in microseconds as a float.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// MaxTime is the largest representable simulation time.
const MaxTime = Time(1<<63 - 1)

// Event is a deferred callback. Fn runs when the engine clock reaches At.
type Event struct {
	At Time
	Fn func(Time)

	seq int64 // tie-break so equal-time events run in schedule order
	idx int
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and the event heap.
// The zero value is ready to use at time zero.
type Engine struct {
	now    Time
	events eventHeap
	seq    int64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule registers fn to run at time at. Scheduling in the past (at <
// now) runs the callback at the current time on the next AdvanceTo.
func (e *Engine) Schedule(at Time, fn func(Time)) *Event {
	if at < e.now {
		at = e.now
	}
	ev := &Event{At: at, Fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After registers fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func(Time)) *Event {
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 || ev.idx >= len(e.events) || e.events[ev.idx] != ev {
		return
	}
	heap.Remove(&e.events, ev.idx)
	ev.idx = -1
}

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.events) }

// NextEventAt returns the timestamp of the earliest pending event, or
// MaxTime when the heap is empty.
func (e *Engine) NextEventAt() Time {
	if len(e.events) == 0 {
		return MaxTime
	}
	return e.events[0].At
}

// AdvanceTo moves the clock forward to t, firing every event with
// At <= t in timestamp order. Events scheduled by fired callbacks are
// honored if they also fall at or before t. AdvanceTo never moves the
// clock backwards.
func (e *Engine) AdvanceTo(t Time) {
	for len(e.events) > 0 && e.events[0].At <= t {
		ev := heap.Pop(&e.events).(*Event)
		ev.idx = -1
		if ev.At > e.now {
			e.now = ev.At
		}
		ev.Fn(e.now)
	}
	if t > e.now {
		e.now = t
	}
}

// Drain fires every pending event in order and leaves the clock at the
// time of the last event. It returns the number of events fired.
func (e *Engine) Drain() int {
	n := 0
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		ev.idx = -1
		if ev.At > e.now {
			e.now = ev.At
		}
		ev.Fn(e.now)
		n++
	}
	return n
}

// Reset clears all pending events and rewinds the clock to zero.
func (e *Engine) Reset() {
	e.now = 0
	e.events = nil
	e.seq = 0
}
