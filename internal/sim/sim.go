// Package sim provides the timing substrate used by every device model
// in the HAMS simulator: a virtual nanosecond clock, an event heap for
// deferred state mutation, and occupancy-based queueing resources.
//
// The simulator uses a hybrid style. Device service times are computed
// analytically by Resource/Pool occupancy models (a request arriving at
// time t on a busy server starts at max(t, nextFree)), which is exact
// for FCFS servers fed with nondecreasing arrival times. Anything that
// must mutate shared state at a future instant (busy-bit clearing,
// wait-queue release, refresh windows) is registered on the Engine's
// event heap and applied lazily by AdvanceTo before the next access.
//
// The heap is a value-typed 4-ary min-heap ordered by (At, seq): nodes
// live inline in one slice, so scheduling an event allocates nothing in
// steady state (the slice's spare capacity is the free list) and firing
// order is the same total order the previous pointer-heap used. Hot
// paths schedule through ScheduleCall with a persistent Handler to
// avoid closure captures; Schedule keeps the closure form for tests and
// cold paths.
package sim

import (
	"fmt"
)

// Time is a simulation timestamp in nanoseconds.
type Time int64

// Common durations, in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time in microseconds as a float.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// MaxTime is the largest representable simulation time.
const MaxTime = Time(1<<63 - 1)

// Handler receives deferred events scheduled with ScheduleCall. A
// single persistent object (a controller bank, a device) implements it
// and demultiplexes on a0/a1, so the hot path never allocates a
// closure per event.
type Handler interface {
	// OnEvent runs when the clock reaches the event. at is the time the
	// event was scheduled for (the clock may already be there); a0 and
	// a1 are the arguments given to ScheduleCall.
	OnEvent(at Time, a0, a1 int64)
}

// EventID identifies a scheduled event for Cancel. The zero EventID
// never matches a real event.
type EventID int64

// eventNode is one pending event, stored by value in the heap slice.
type eventNode struct {
	at  Time
	seq int64 // tie-break so equal-time events run in schedule order
	h   Handler
	a0  int64
	a1  int64
	fn  func(Time)
}

// Engine owns the virtual clock and the event heap.
// The zero value is ready to use at time zero.
type Engine struct {
	now   Time
	nodes []eventNode // 4-ary min-heap ordered by (at, seq)
	seq   int64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

func (e *Engine) less(i, j int) bool {
	if e.nodes[i].at != e.nodes[j].at {
		return e.nodes[i].at < e.nodes[j].at
	}
	return e.nodes[i].seq < e.nodes[j].seq
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		p := (i - 1) >> 2
		if !e.less(i, p) {
			break
		}
		e.nodes[i], e.nodes[p] = e.nodes[p], e.nodes[i]
		i = p
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.nodes)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for k := c + 1; k < hi; k++ {
			if e.less(k, m) {
				m = k
			}
		}
		if !e.less(m, i) {
			break
		}
		e.nodes[i], e.nodes[m] = e.nodes[m], e.nodes[i]
		i = m
	}
}

func (e *Engine) push(n eventNode) {
	e.nodes = append(e.nodes, n)
	e.siftUp(len(e.nodes) - 1)
}

// popMin removes and returns the earliest node. len(e.nodes) must be > 0.
func (e *Engine) popMin() eventNode {
	top := e.nodes[0]
	last := len(e.nodes) - 1
	e.nodes[0] = e.nodes[last]
	e.nodes[last] = eventNode{} // release fn/h references
	e.nodes = e.nodes[:last]
	if last > 0 {
		e.siftDown(0)
	}
	return top
}

// Schedule registers fn to run at time at. Scheduling in the past (at <
// now) runs the callback at the current time on the next AdvanceTo.
func (e *Engine) Schedule(at Time, fn func(Time)) EventID {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.push(eventNode{at: at, seq: e.seq, fn: fn})
	return EventID(e.seq)
}

// ScheduleCall registers h.OnEvent(at, a0, a1) to run at time at. It is
// the allocation-free form of Schedule: the handler is a persistent
// object, so no closure is captured per event.
func (e *Engine) ScheduleCall(at Time, h Handler, a0, a1 int64) EventID {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.push(eventNode{at: at, seq: e.seq, h: h, a0: a0, a1: a1})
	return EventID(e.seq)
}

// After registers fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func(Time)) EventID {
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired,
// already-cancelled or zero EventID is a no-op. Cancel is O(n) over
// pending events — it exists for tests and recovery paths, never the
// per-access hot path.
func (e *Engine) Cancel(id EventID) {
	if id == 0 {
		return
	}
	for i := range e.nodes {
		if e.nodes[i].seq == int64(id) {
			last := len(e.nodes) - 1
			e.nodes[i] = e.nodes[last]
			e.nodes[last] = eventNode{}
			e.nodes = e.nodes[:last]
			if i < last {
				e.siftDown(i)
				e.siftUp(i)
			}
			return
		}
	}
}

// Pending reports the number of events still queued.
func (e *Engine) Pending() int { return len(e.nodes) }

// NextEventAt returns the timestamp of the earliest pending event, or
// MaxTime when the heap is empty.
func (e *Engine) NextEventAt() Time {
	if len(e.nodes) == 0 {
		return MaxTime
	}
	return e.nodes[0].at
}

// fire pops the earliest node, advances the clock to it and runs it.
func (e *Engine) fire() {
	n := e.popMin()
	if n.at > e.now {
		e.now = n.at
	}
	if n.fn != nil {
		n.fn(e.now)
	} else {
		n.h.OnEvent(n.at, n.a0, n.a1)
	}
}

// AdvanceTo moves the clock forward to t, firing every event with
// At <= t in timestamp order. Events scheduled by fired callbacks are
// honored if they also fall at or before t. AdvanceTo never moves the
// clock backwards.
func (e *Engine) AdvanceTo(t Time) {
	for len(e.nodes) > 0 && e.nodes[0].at <= t {
		e.fire()
	}
	if t > e.now {
		e.now = t
	}
}

// Drain fires every pending event in order and leaves the clock at the
// time of the last event. It returns the number of events fired.
func (e *Engine) Drain() int {
	n := 0
	for len(e.nodes) > 0 {
		e.fire()
		n++
	}
	return n
}

// Reset clears all pending events and rewinds the clock to zero.
func (e *Engine) Reset() {
	e.now = 0
	e.nodes = nil
	e.seq = 0
}
